package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestRegistryIdempotentGetters(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("x_total", "help", "lock", "a")
	c2 := r.Counter("x_total", "", "lock", "a")
	if c1 != c2 {
		t.Error("same (name, labels) returned distinct counters")
	}
	c3 := r.Counter("x_total", "", "lock", "b")
	if c1 == c3 {
		t.Error("different labels returned the same counter")
	}
	g1 := r.Gauge("y", "", "k", "v")
	if g1 != r.Gauge("y", "", "k", "v") {
		t.Error("gauge getter not idempotent")
	}
	h1 := r.Histogram("z_ns", "")
	if h1 != r.Histogram("z_ns", "") {
		t.Error("histogram getter not idempotent")
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m_total", "")
	defer func() {
		if recover() == nil {
			t.Error("redeclaring a counter as a gauge should panic")
		}
	}()
	r.Gauge("m_total", "")
}

func TestLabelCanonicalization(t *testing.T) {
	// Order-insensitive: {a,b} and {b,a} are the same series.
	r := NewRegistry()
	c1 := r.Counter("n_total", "", "a", "1", "b", "2")
	c2 := r.Counter("n_total", "", "b", "2", "a", "1")
	if c1 != c2 {
		t.Error("label order created distinct series")
	}
	if got := labelString([]string{"b", "2", "a", "1"}); got != `a="1",b="2"` {
		t.Errorf("labelString = %q", got)
	}
}

func TestCounterIgnoresNegativeAdd(t *testing.T) {
	var c Counter
	c.Add(5)
	c.Add(-3)
	if c.Value() != 5 {
		t.Errorf("Value = %d, want 5", c.Value())
	}
}

// TestRegistryConcurrency hammers creation and updates from many
// goroutines; run with -race to check the lock-free update claim.
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	const workers = 8
	const iters = 1000
	locknames := []string{"a", "b", "c", "d"}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				name := locknames[(w+i)%len(locknames)]
				r.Counter("conc_total", "h", "lock", name).Inc()
				r.Gauge("conc_gauge", "h").Set(int64(i))
				r.Histogram("conc_ns", "h", "lock", name).Observe(int64(i))
			}
		}(w)
	}
	// Concurrent scrapes against concurrent updates.
	var scrape sync.WaitGroup
	scrape.Add(1)
	go func() {
		defer scrape.Done()
		for i := 0; i < 50; i++ {
			var sb strings.Builder
			if err := r.WritePrometheus(&sb); err != nil {
				t.Error(err)
			}
		}
	}()
	wg.Wait()
	scrape.Wait()

	var total int64
	for _, name := range locknames {
		total += r.Counter("conc_total", "", "lock", name).Value()
	}
	if total != workers*iters {
		t.Errorf("counted %d increments, want %d", total, workers*iters)
	}
	var hcount int64
	for _, name := range locknames {
		hcount += r.Histogram("conc_ns", "", "lock", name).Count()
	}
	if hcount != workers*iters {
		t.Errorf("histograms saw %d samples, want %d", hcount, workers*iters)
	}
}

func TestExternalCollector(t *testing.T) {
	r := NewRegistry()
	r.Counter("native_total", "").Add(7)
	v := int64(41)
	r.AddExternal(func(add func(Sample)) {
		add(Sample{Name: "ext_total", Kind: KindCounter, Value: float64(v)})
		add(Sample{Name: "ext_gauge", Kind: KindGauge, Labels: []string{"k", "x"}, Value: 3})
		// Colliding with a registry family is dropped, not merged.
		add(Sample{Name: "native_total", Kind: KindCounter, Value: 100})
	})
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"ext_total 41", `ext_gauge{k="x"} 3`, "native_total 7"} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "native_total 100") {
		t.Error("external overrode a registry family")
	}

	// Externals are read at scrape time, not registration time.
	v = 42
	sb.Reset()
	_ = r.WritePrometheus(&sb)
	if !strings.Contains(sb.String(), "ext_total 42") {
		t.Error("external not re-collected on second scrape")
	}
}
