// Package obs is the unified telemetry layer: a lock-free metrics
// registry (labeled counters, gauges, and log2 latency histograms
// generalizing profile.Histogram), Prometheus-text and JSON exposition,
// an embeddable HTTP server (/metrics, /locks, /policies, /trace plus
// net/http/pprof), and a Chrome/Perfetto trace-event exporter that turns
// profile.TraceRing snapshots and ksim virtual-clock runs into loadable
// timelines.
//
// The paper's §3.2 pitch is that C3 makes kernel locks observable on
// demand; obs extends that from per-lock wait/hold stats to every layer
// of the reproduction: the policy VM, livepatch epochs, framework safety
// checks, and the simulator. Metric creation takes a registry mutex
// (setup path); every update on the hot path is a plain atomic, so
// instrumentation composes with user policies without lock-ordering
// hazards.
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"concord/internal/profile"
)

// MetricKind classifies a metric family for exposition.
type MetricKind int

// The metric kinds.
const (
	KindCounter MetricKind = iota
	KindGauge
	KindHistogram
)

// String implements fmt.Stringer (the JSON exposition's "type" field).
func (k MetricKind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "?"
}

// Counter is a monotonically increasing metric.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Bump adds one and returns the new value, for callers that also use
// the counter as a cheap sequence (e.g. trace sampling).
func (c *Counter) Bump() int64 { return c.v.Add(1) }

// Add adds delta (negative deltas are ignored: counters only go up).
func (c *Counter) Add(delta int64) {
	if delta > 0 {
		c.v.Add(delta)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds delta.
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a lock-free log2 latency histogram (the registry-managed
// generalization of the profiler's per-lock histogram; same buckets,
// same atomics).
type Histogram struct {
	profile.Histogram
}

// Observe records one sample (nanoseconds).
func (h *Histogram) Observe(ns int64) { h.Record(ns) }

// Sample is one externally collected metric point, merged into the
// exposition at scrape time. Externals let subsystems that already keep
// their own atomic counters (the policy VM's per-program ExecStats, the
// trace ring's loss counter) surface them without double accounting.
type Sample struct {
	Name   string
	Kind   MetricKind
	Labels []string // alternating key, value
	Value  float64
}

// family groups every labeled series of one metric name.
type family struct {
	name string
	help string
	kind MetricKind

	mu     sync.Mutex
	series map[string]*series // canonical label string -> series
}

type series struct {
	labels string // canonical {k="v",...} form, "" for unlabeled
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// Registry holds metric families. Creation methods are safe for
// concurrent use and idempotent: the same (name, labels) always returns
// the same metric instance. Instrumentation should look its metrics up
// once and hold the pointers; updates are then single atomic operations.
type Registry struct {
	mu        sync.Mutex
	families  map[string]*family
	externals []func(add func(Sample))
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// labelString canonicalizes alternating key/value pairs. Panics on an
// odd count — label sets are compile-time shapes, not runtime data.
func labelString(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	if len(labels)%2 != 0 {
		panic(fmt.Sprintf("obs: odd label list %q", labels))
	}
	parts := make([]string, 0, len(labels)/2)
	for i := 0; i < len(labels); i += 2 {
		parts = append(parts, fmt.Sprintf("%s=%q", labels[i], escapeLabel(labels[i+1])))
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

func (r *Registry) familyFor(name, help string, kind MetricKind) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind, series: make(map[string]*series)}
		r.families[name] = f
	} else if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q redeclared as %s (was %s)", name, kind, f.kind))
	}
	if f.help == "" {
		f.help = help
	}
	return f
}

func (f *family) seriesFor(labels []string) *series {
	key := labelString(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	s := f.series[key]
	if s == nil {
		s = &series{labels: key}
		switch f.kind {
		case KindCounter:
			s.c = &Counter{}
		case KindGauge:
			s.g = &Gauge{}
		case KindHistogram:
			s.h = &Histogram{}
		}
		f.series[key] = s
	}
	return s
}

// Counter returns (creating if needed) the counter name{labels...}.
// Labels are alternating key, value strings.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	return r.familyFor(name, help, KindCounter).seriesFor(labels).c
}

// Gauge returns (creating if needed) the gauge name{labels...}.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	return r.familyFor(name, help, KindGauge).seriesFor(labels).g
}

// Histogram returns (creating if needed) the histogram name{labels...}.
func (r *Registry) Histogram(name, help string, labels ...string) *Histogram {
	return r.familyFor(name, help, KindHistogram).seriesFor(labels).h
}

// AddExternal registers a collector invoked at exposition time. The
// collector calls add once per sample; samples must be counters or
// gauges (histograms must live in the registry).
func (r *Registry) AddExternal(fn func(add func(Sample))) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.externals = append(r.externals, fn)
}

// snapshot returns families sorted by name with series sorted by label
// string, externals merged in — the exposition order of both formats.
func (r *Registry) snapshot() []*family {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	externals := make([]func(add func(Sample)), len(r.externals))
	copy(externals, r.externals)
	r.mu.Unlock()

	// Externals are merged through throwaway families so both exporters
	// see one uniform shape.
	ext := make(map[string]*family)
	for _, fn := range externals {
		fn(func(s Sample) {
			if s.Kind == KindHistogram {
				return // histograms must live in the registry
			}
			f := ext[s.Name]
			if f == nil {
				f = &family{name: s.Name, kind: s.Kind, series: make(map[string]*series)}
				ext[s.Name] = f
			}
			sr := f.seriesFor(s.Labels)
			switch s.Kind {
			case KindCounter:
				sr.c.Add(int64(s.Value))
			case KindGauge:
				sr.g.Set(int64(s.Value))
			}
		})
	}
	taken := make(map[string]bool, len(fams))
	for _, f := range fams {
		taken[f.name] = true
	}
	for name, f := range ext {
		if !taken[name] {
			fams = append(fams, f)
		}
	}
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}

// sortedSeries returns a family's series sorted by label string.
func (f *family) sortedSeries() []*series {
	f.mu.Lock()
	out := make([]*series, 0, len(f.series))
	for _, s := range f.series {
		out = append(out, s)
	}
	f.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].labels < out[j].labels })
	return out
}
