package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestServerEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("up_total", "help").Add(5)

	s := NewServer(reg)
	s.HandleJSON("/locks", func() (any, error) {
		return []LockRow{{Lock: "l1", Acquisitions: 2}}, nil
	})
	s.HandleRaw("/trace", "application/json", func() ([]byte, error) {
		return []byte(`{"traceEvents":[]}`), nil
	})
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	base := "http://" + s.Addr()

	code, body := get(t, base+"/metrics")
	if code != http.StatusOK || !strings.Contains(body, "up_total 5") {
		t.Errorf("/metrics: %d %q", code, body)
	}

	code, body = get(t, base+"/metrics?format=json")
	if code != http.StatusOK {
		t.Fatalf("/metrics?format=json: %d", code)
	}
	var fams []map[string]any
	if err := json.Unmarshal([]byte(body), &fams); err != nil {
		t.Errorf("JSON metrics do not parse: %v", err)
	}

	code, body = get(t, base+"/locks")
	if code != http.StatusOK {
		t.Fatalf("/locks: %d", code)
	}
	var rows []LockRow
	if err := json.Unmarshal([]byte(body), &rows); err != nil || len(rows) != 1 || rows[0].Lock != "l1" {
		t.Errorf("/locks body %q (err %v)", body, err)
	}

	code, body = get(t, base+"/trace")
	if code != http.StatusOK || !strings.Contains(body, "traceEvents") {
		t.Errorf("/trace: %d %q", code, body)
	}

	code, _ = get(t, base+"/debug/pprof/")
	if code != http.StatusOK {
		t.Errorf("/debug/pprof/: %d", code)
	}
}

func TestServerDoubleStart(t *testing.T) {
	s := NewServer(NewRegistry())
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Start("127.0.0.1:0"); err == nil {
		t.Error("second Start should fail")
	}
}

func TestServerHandlerErrors(t *testing.T) {
	s := NewServer(NewRegistry())
	s.HandleJSON("/boom", func() (any, error) { return nil, io.ErrUnexpectedEOF })
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	code, _ := get(t, "http://"+s.Addr()+"/boom")
	if code != http.StatusInternalServerError {
		t.Errorf("/boom: %d, want 500", code)
	}
}
