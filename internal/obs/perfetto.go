package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"concord/internal/ksim"
	"concord/internal/profile"
)

// The Chrome trace-event JSON format (loadable by chrome://tracing and
// ui.perfetto.dev). We emit complete ("X") duration events: a lock
// acquisition becomes a "wait <lock>" slice from enqueue to acquisition
// and a "hold <lock>" slice from acquisition to release, on a track per
// task (real runs) or per simulated proc (ksim runs).

// chromeEvent is one trace event; field names are the format's.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"` // microseconds
	Dur  float64        `json:"dur,omitempty"`
	PID  int64          `json:"pid"`
	TID  int64          `json:"tid"`
	Cat  string         `json:"cat,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// Track IDs: one synthetic "process" per event source.
const (
	pidLocks = 1 // real lock events from a TraceRing
	pidKsim  = 2 // virtual-clock events from a ksim run
)

// TraceBuilder accumulates events from any mix of sources and renders
// one loadable timeline.
type TraceBuilder struct {
	events []chromeEvent
	meta   map[string]chromeEvent // dedup key -> metadata event
}

// NewTraceBuilder returns an empty builder.
func NewTraceBuilder() *TraceBuilder {
	return &TraceBuilder{meta: make(map[string]chromeEvent)}
}

func (b *TraceBuilder) nameTrack(pid, tid int64, process, thread string) {
	pkey := fmt.Sprintf("p%d", pid)
	if _, ok := b.meta[pkey]; !ok {
		b.meta[pkey] = chromeEvent{
			Name: "process_name", Ph: "M", PID: pid, TID: 0,
			Args: map[string]any{"name": process},
		}
	}
	tkey := fmt.Sprintf("p%d.t%d", pid, tid)
	if _, ok := b.meta[tkey]; !ok {
		b.meta[tkey] = chromeEvent{
			Name: "thread_name", Ph: "M", PID: pid, TID: tid,
			Args: map[string]any{"name": thread},
		}
	}
}

// AddLockRecords renders a TraceRing snapshot: each acquired record with
// a wait becomes a wait slice, each release with a hold becomes a hold
// slice. lockName resolves lock IDs to labels and may be nil.
func (b *TraceBuilder) AddLockRecords(recs []profile.TraceRecord, lockName func(uint64) string) {
	name := func(id uint64) string {
		if lockName != nil {
			if n := lockName(id); n != "" {
				return n
			}
		}
		return fmt.Sprintf("lock#%d", id)
	}
	for _, rec := range recs {
		var slice string
		var durNS int64
		switch {
		case rec.Op == profile.TraceAcquired && rec.WaitNS > 0:
			slice, durNS = "wait ", rec.WaitNS
		case rec.Op == profile.TraceRelease && rec.HoldNS > 0:
			slice, durNS = "hold ", rec.HoldNS
		default:
			continue
		}
		b.nameTrack(pidLocks, rec.TaskID, "locks", fmt.Sprintf("task %d", rec.TaskID))
		b.events = append(b.events, chromeEvent{
			Name: slice + name(rec.LockID), Ph: "X", Cat: "lock",
			TS: float64(rec.NowNS-durNS) / 1e3, Dur: float64(durNS) / 1e3,
			PID: pidLocks, TID: rec.TaskID,
			Args: map[string]any{"cpu": rec.CPU, "lock_id": rec.LockID},
		})
	}
}

// AddSimSlices renders a ksim virtual-clock run (Engine.TraceSlices)
// onto per-proc tracks under the "ksim" process.
func (b *TraceBuilder) AddSimSlices(slices []ksim.SimSlice) {
	for _, s := range slices {
		b.nameTrack(pidKsim, int64(s.Proc), "ksim", fmt.Sprintf("proc %d", s.Proc))
		b.events = append(b.events, chromeEvent{
			Name: s.Name, Ph: "X", Cat: "ksim",
			TS: float64(s.StartNS) / 1e3, Dur: float64(s.DurNS) / 1e3,
			PID: pidKsim, TID: int64(s.Proc),
			Args: map[string]any{"cpu": s.CPU},
		})
	}
}

// Len reports how many slice events have been added.
func (b *TraceBuilder) Len() int { return len(b.events) }

// Encode renders the accumulated events as Chrome trace JSON.
func (b *TraceBuilder) Encode(w io.Writer) error {
	all := make([]chromeEvent, 0, len(b.meta)+len(b.events))
	metaKeys := make([]string, 0, len(b.meta))
	for k := range b.meta {
		metaKeys = append(metaKeys, k)
	}
	sort.Strings(metaKeys)
	for _, k := range metaKeys {
		all = append(all, b.meta[k])
	}
	events := make([]chromeEvent, len(b.events))
	copy(events, b.events)
	sort.SliceStable(events, func(i, j int) bool { return events[i].TS < events[j].TS })
	all = append(all, events...)
	return json.NewEncoder(w).Encode(map[string]any{
		"traceEvents":     all,
		"displayTimeUnit": "ns",
	})
}

// JSON renders the accumulated events as a byte slice.
func (b *TraceBuilder) JSON() ([]byte, error) {
	var buf bytes.Buffer
	if err := b.Encode(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
