package obs

import (
	"encoding/json"
	"strconv"
	"strings"
	"testing"
)

func TestPrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("req_total", "requests", "lock", "l1").Add(3)
	r.Gauge("depth", "queue depth").Set(-2)
	h := r.Histogram("wait_ns", "wait time", "lock", "l1")
	h.Observe(100)  // bucket 7 (le 127)
	h.Observe(5)    // bucket 3 (le 7)
	h.Observe(5000) // bucket 13 (le 8191)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()

	for _, want := range []string{
		"# HELP req_total requests",
		"# TYPE req_total counter",
		`req_total{lock="l1"} 3`,
		"# TYPE depth gauge",
		"depth -2",
		"# TYPE wait_ns histogram",
		`wait_ns_bucket{lock="l1",le="7"} 1`,
		`wait_ns_bucket{lock="l1",le="127"} 2`,
		`wait_ns_bucket{lock="l1",le="8191"} 3`,
		`wait_ns_bucket{lock="l1",le="+Inf"} 3`,
		`wait_ns_sum{lock="l1"} 5105`,
		`wait_ns_count{lock="l1"} 3`,
		`wait_ns_max{lock="l1"} 5000`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

// TestPrometheusBucketsCumulative checks the histogram invariants every
// Prometheus consumer assumes: bucket counts are monotonically
// non-decreasing in le order and the +Inf bucket equals _count.
func TestPrometheusBucketsCumulative(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_ns", "")
	for i := int64(1); i <= 1000; i++ {
		h.Observe(i * 17)
	}

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	var prev int64 = -1
	var inf int64 = -1
	for _, line := range strings.Split(sb.String(), "\n") {
		if !strings.HasPrefix(line, "lat_ns_bucket") {
			continue
		}
		fields := strings.Fields(line)
		n, err := strconv.ParseInt(fields[len(fields)-1], 10, 64)
		if err != nil {
			t.Fatalf("bad bucket line %q: %v", line, err)
		}
		if n < prev {
			t.Errorf("bucket counts decreased: %q after %d", line, prev)
		}
		prev = n
		if strings.Contains(line, `le="+Inf"`) {
			inf = n
		}
	}
	if inf != 1000 {
		t.Errorf("+Inf bucket = %d, want 1000", inf)
	}
}

func TestJSONExport(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "a counter").Add(9)
	h := r.Histogram("h_ns", "a histogram", "lock", "l1")
	h.Observe(1000)
	h.Observe(2000)

	var sb strings.Builder
	if err := r.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var fams []struct {
		Name   string `json:"name"`
		Type   string `json:"type"`
		Series []struct {
			Labels string   `json:"labels"`
			Value  *float64 `json:"value"`
			Count  int64    `json:"count"`
			Sum    int64    `json:"sum"`
			Max    int64    `json:"max"`
			P99    int64    `json:"p99"`
			Bucket []struct {
				UpperBound int64 `json:"le"`
				Count      int64 `json:"count"`
			} `json:"buckets"`
		} `json:"series"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &fams); err != nil {
		t.Fatalf("JSON exposition does not parse: %v", err)
	}
	if len(fams) != 2 {
		t.Fatalf("got %d families, want 2", len(fams))
	}
	// Families are name-sorted: c_total before h_ns.
	if fams[0].Name != "c_total" || *fams[0].Series[0].Value != 9 {
		t.Errorf("counter family wrong: %+v", fams[0])
	}
	hs := fams[1].Series[0]
	if fams[1].Name != "h_ns" || hs.Count != 2 || hs.Sum != 3000 || hs.Max != 2000 {
		t.Errorf("histogram family wrong: %+v", fams[1])
	}
	if hs.Labels != `lock="l1"` {
		t.Errorf("labels = %q", hs.Labels)
	}
	var n int64
	for _, b := range hs.Bucket {
		n += b.Count // JSON buckets are non-cumulative
	}
	if n != 2 {
		t.Errorf("bucket counts sum to %d, want 2", n)
	}
}
