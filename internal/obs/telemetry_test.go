package obs

import (
	"runtime"
	"strings"
	"sync"
	"testing"

	"concord/internal/locks"
	"concord/internal/schedfuzz/schedstats"
	"concord/internal/syncx/park"
	"concord/internal/task"
	"concord/internal/topology"
)

func TestTelemetryLockHooks(t *testing.T) {
	tel := NewTelemetry()
	lock := locks.NewShflLock("hot")
	lock.HookSlot().Replace("telemetry", tel.LockHooks("hot"))

	topo := topology.New(2, 2)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tk := task.New(topo)
			for i := 0; i < 200; i++ {
				lock.Lock(tk)
				lock.Unlock(tk)
			}
		}()
	}
	wg.Wait()

	rows := tel.LockRows()
	if len(rows) != 1 {
		t.Fatalf("got %d rows, want 1", len(rows))
	}
	r := rows[0]
	if r.Lock != "hot" || r.Acquisitions != 800 || r.Releases != 800 {
		t.Errorf("row = %+v", r)
	}
	if r.HoldMaxNS <= 0 {
		t.Error("hold histogram never observed")
	}
	// The same events landed in the trace ring.
	if len(tel.Ring.Snapshot()) == 0 {
		t.Error("trace ring empty")
	}
	// And in the Prometheus exposition.
	var sb strings.Builder
	if err := tel.Registry.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`concord_lock_acquisitions_total{lock="hot"} 800`,
		`concord_lock_hold_ns_count{lock="hot"} 800`,
		`concord_lock_wait_ns_bucket{lock="hot",le="+Inf"} 800`,
		"concord_trace_records_lost_total",
	} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

func TestTelemetryLockHooksCached(t *testing.T) {
	tel := NewTelemetry()
	if tel.LockHooks("a") != tel.LockHooks("a") {
		t.Error("LockHooks not cached per lock")
	}
	if tel.LockHooks("a") == tel.LockHooks("b") {
		t.Error("distinct locks share a hook table")
	}
}

func TestTelemetryComposesWithPolicy(t *testing.T) {
	// A behavioural policy composed before telemetry keeps its decisions
	// while telemetry still counts.
	tel := NewTelemetry()
	cmpCalls := 0
	user := &locks.Hooks{
		Name:    "user",
		CmpNode: func(*locks.ShuffleInfo) bool { cmpCalls++; return false },
	}
	h := locks.ComposeHooks(user, tel.LockHooks("l"))
	if h.CmpNode == nil {
		t.Fatal("composition dropped the user's CmpNode")
	}
	h.CmpNode(&locks.ShuffleInfo{})
	if cmpCalls != 1 {
		t.Error("user CmpNode not invoked")
	}
	h.OnAcquired(&locks.Event{WaitNS: 50})
	if got := tel.Registry.Histogram("concord_lock_wait_ns", "", "lock", "l").Count(); got != 1 {
		t.Errorf("wait histogram count = %d, want 1", got)
	}
}

func TestLockRowsSortedByWait(t *testing.T) {
	tel := NewTelemetry()
	cold := tel.LockHooks("cold")
	hot := tel.LockHooks("hot")
	for i := 0; i < 10; i++ {
		hot.OnAcquired(&locks.Event{WaitNS: 10_000})
		cold.OnAcquired(&locks.Event{WaitNS: 10})
	}
	rows := tel.LockRows()
	if len(rows) != 2 || rows[0].Lock != "hot" {
		t.Errorf("rows not sorted by total wait: %+v", rows)
	}
}

func TestTelemetryTraceJSON(t *testing.T) {
	tel := NewTelemetry()
	h := tel.LockHooks("l")
	h.OnAcquired(&locks.Event{LockID: 3, NowNS: 1000, WaitNS: 400})
	h.OnRelease(&locks.Event{LockID: 3, NowNS: 2000, HoldNS: 900})
	data, err := tel.TraceJSON(func(uint64) string { return "l" })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "wait l") || !strings.Contains(string(data), "hold l") {
		t.Errorf("trace missing slices: %s", data)
	}
}

func TestTelemetryExportsParkAndPoolCounters(t *testing.T) {
	// Drive one contended blocking acquisition so the park and pool
	// counters are nonzero, then check they surface in a scrape.
	topo := topology.New(2, 4)
	l := locks.NewShflLock("tel-park", locks.WithBlocking(true), locks.WithSpinBudget(0))
	holder := task.New(topo)
	l.Lock(holder)
	base := park.Snapshot()
	// Two waiters: the queue head spins on the lock word, so only a
	// non-head waiter exercises the park path.
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tk := task.New(topo)
			l.Lock(tk)
			l.Unlock(tk)
		}()
	}
	// Hold until a waiter has demonstrably parked (not merely queued),
	// so the scrape below is guaranteed a nonzero park/unpark pair.
	for park.Snapshot().Parks == base.Parks {
		runtime.Gosched()
	}
	l.Unlock(holder)
	wg.Wait()

	tel := NewTelemetry()
	var sb strings.Builder
	if err := tel.Registry.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, name := range []string{
		"concord_park_yields_total",
		"concord_park_parks_total",
		"concord_park_unparks_total",
		"concord_park_rescues_total",
		"concord_qnode_allocs_total",
	} {
		if !strings.Contains(out, name) {
			t.Errorf("scrape missing %s:\n%s", name, out)
		}
	}
	// The blocking acquisition above must be visible as at least one park
	// and one unpark (process-global counters, so >= not ==).
	for _, frag := range []string{"concord_park_parks_total 0\n", "concord_park_unparks_total 0\n"} {
		if strings.Contains(out, frag) {
			t.Errorf("counter unexpectedly zero: %s\n%s", frag, out)
		}
	}
}

// TestSchedFuzzCountersExported: the schedule fuzzer's counters (kept
// in the schedstats leaf package to break the obs<-schedfuzz cycle)
// must appear in every scrape.
func TestSchedFuzzCountersExported(t *testing.T) {
	base := schedstats.Snapshot()
	schedstats.AddDecision()
	schedstats.AddForcedPark()
	schedstats.AddFailure()

	tel := NewTelemetry()
	var sb strings.Builder
	if err := tel.Registry.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, name := range []string{
		"concord_schedfuzz_decisions_total",
		"concord_schedfuzz_forced_parks_total",
		"concord_schedfuzz_failures_total",
	} {
		if !strings.Contains(out, name) {
			t.Errorf("scrape missing %s:\n%s", name, out)
		}
	}
	now := schedstats.Snapshot()
	if now.Decisions <= base.Decisions || now.ForcedParks <= base.ForcedParks ||
		now.Failures <= base.Failures {
		t.Errorf("counters did not advance: %+v -> %+v", base, now)
	}
}
