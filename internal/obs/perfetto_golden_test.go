package obs

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"concord/internal/profile"
)

var updateTrace = flag.Bool("update", false, "rewrite golden trace under testdata/")

// TestTraceBuilderGolden pins the exact Perfetto JSON for a fixed lock
// trace: wait slices and hold slices side by side on per-task tracks,
// metadata naming, microsecond conversion, and stable event ordering.
// Any change to the timeline shape shows up as a golden diff — rerun
// with `go test ./internal/obs -run Golden -update` after reviewing.
func TestTraceBuilderGolden(t *testing.T) {
	b := NewTraceBuilder()
	// Two tasks on one lock: task 1 waits then holds; task 2 enqueues
	// during the hold, waits longer, then holds in turn. The release
	// records carry hold durations so the timeline shows both span
	// kinds interleaved.
	recs := []profile.TraceRecord{
		{Op: profile.TraceAcquire, NowNS: 1_000, LockID: 7, TaskID: 1, CPU: 0},
		{Op: profile.TraceContended, NowNS: 1_100, LockID: 7, TaskID: 1, CPU: 0},
		{Op: profile.TraceAcquired, NowNS: 3_000, WaitNS: 2_000, LockID: 7, TaskID: 1, CPU: 0},
		{Op: profile.TraceAcquire, NowNS: 4_000, LockID: 7, TaskID: 2, CPU: 1},
		{Op: profile.TraceRelease, NowNS: 8_000, HoldNS: 5_000, LockID: 7, TaskID: 1, CPU: 0},
		{Op: profile.TraceAcquired, NowNS: 8_500, WaitNS: 4_500, LockID: 7, TaskID: 2, CPU: 1},
		{Op: profile.TraceRelease, NowNS: 10_000, HoldNS: 1_500, LockID: 7, TaskID: 2, CPU: 1},
	}
	b.AddLockRecords(recs, func(id uint64) string {
		if id == 7 {
			return "mmap_sem"
		}
		return ""
	})
	if b.Len() != 4 {
		t.Fatalf("Len = %d, want 2 wait + 2 hold slices", b.Len())
	}
	got, err := b.JSON()
	if err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "lock_trace.golden.json")
	if *updateTrace {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden (run with -update): %v", err)
	}
	if string(got) != string(want) {
		t.Errorf("trace drifted from %s:\n--- got ---\n%s\n--- want ---\n%s", golden, got, want)
	}
}
