package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"
)

// Server is the embeddable telemetry HTTP endpoint. A fresh server
// exposes /metrics (Prometheus text, or JSON with ?format=json) and the
// standard net/http/pprof handlers under /debug/pprof/; callers add
// JSON and raw endpoints (/locks, /policies, /trace) with HandleJSON
// and HandleRaw. The concord facade wires a fully populated server via
// concord.NewTelemetryServer.
type Server struct {
	reg *Registry
	mux *http.ServeMux

	mu   sync.Mutex
	ln   net.Listener
	http *http.Server
}

// NewServer returns a server exposing reg.
func NewServer(reg *Registry) *Server {
	s := &Server{reg: reg, mux: http.NewServeMux()}
	s.mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			_ = reg.WriteJSON(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return s
}

// Registry returns the registry the server exposes.
func (s *Server) Registry() *Registry { return s.reg }

// HandleJSON serves fn's result as JSON at path.
func (s *Server) HandleJSON(path string, fn func() (any, error)) {
	s.mux.HandleFunc(path, func(w http.ResponseWriter, r *http.Request) {
		v, err := fn()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(v)
	})
}

// HandleRaw serves fn's bytes at path with the given content type.
func (s *Server) HandleRaw(path, contentType string, fn func() ([]byte, error)) {
	s.mux.HandleFunc(path, func(w http.ResponseWriter, r *http.Request) {
		data, err := fn()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", contentType)
		_, _ = w.Write(data)
	})
}

// Handler returns the server's mux, for embedding into an existing
// http.Server instead of Start.
func (s *Server) Handler() http.Handler { return s.mux }

// Start listens on addr (host:port; port 0 picks a free port) and
// serves in a background goroutine until Close.
func (s *Server) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	s.mu.Lock()
	if s.ln != nil {
		s.mu.Unlock()
		ln.Close()
		return fmt.Errorf("obs: server already started on %s", s.ln.Addr())
	}
	s.ln = ln
	s.http = &http.Server{Handler: s.mux, ReadHeaderTimeout: 5 * time.Second}
	srv := s.http
	s.mu.Unlock()
	go func() { _ = srv.Serve(ln) }()
	return nil
}

// Addr returns the bound address after Start ("" before).
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops a started server.
func (s *Server) Close() error {
	s.mu.Lock()
	srv := s.http
	s.ln, s.http = nil, nil
	s.mu.Unlock()
	if srv == nil {
		return nil
	}
	return srv.Close()
}
