package obs

import (
	"encoding/json"
	"math"
	"sort"
	"testing"

	"concord/internal/ksim"
	"concord/internal/profile"
)

// decodeTrace parses builder output into the generic trace-event shape.
func decodeTrace(t *testing.T, data []byte) []struct {
	Name string  `json:"name"`
	Ph   string  `json:"ph"`
	TS   float64 `json:"ts"`
	Dur  float64 `json:"dur"`
	PID  int64   `json:"pid"`
	TID  int64   `json:"tid"`
} {
	t.Helper()
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			TS   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			PID  int64   `json:"pid"`
			TID  int64   `json:"tid"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("trace JSON does not parse: %v", err)
	}
	if doc.DisplayTimeUnit != "ns" {
		t.Errorf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	return doc.TraceEvents
}

func TestTraceBuilderLockRecords(t *testing.T) {
	b := NewTraceBuilder()
	recs := []profile.TraceRecord{
		{Op: profile.TraceAcquired, NowNS: 1000, WaitNS: 400, LockID: 7, TaskID: 1, CPU: 3},
		{Op: profile.TraceRelease, NowNS: 2000, HoldNS: 1000, LockID: 7, TaskID: 1, CPU: 3},
		{Op: profile.TraceAcquire, NowNS: 500, LockID: 7, TaskID: 2},  // no slice
		{Op: profile.TraceAcquired, NowNS: 600, LockID: 7, TaskID: 2}, // zero wait: no slice
	}
	b.AddLockRecords(recs, func(id uint64) string {
		if id == 7 {
			return "mmap_sem"
		}
		return ""
	})
	if b.Len() != 2 {
		t.Fatalf("Len = %d, want 2 slices", b.Len())
	}
	data, err := b.JSON()
	if err != nil {
		t.Fatal(err)
	}
	events := decodeTrace(t, data)

	var wait, hold, meta int
	for _, ev := range events {
		switch {
		case ev.Ph == "M":
			meta++
		case ev.Name == "wait mmap_sem":
			wait++
			if ev.TS != 0.6 || ev.Dur != 0.4 { // [1000-400, 1000] ns in µs
				t.Errorf("wait slice at ts=%v dur=%v", ev.TS, ev.Dur)
			}
		case ev.Name == "hold mmap_sem":
			hold++
			if ev.TS != 1.0 || ev.Dur != 1.0 {
				t.Errorf("hold slice at ts=%v dur=%v", ev.TS, ev.Dur)
			}
		default:
			t.Errorf("unexpected event %+v", ev)
		}
	}
	if wait != 1 || hold != 1 {
		t.Errorf("wait=%d hold=%d, want 1/1", wait, hold)
	}
	if meta < 2 {
		t.Errorf("want process_name + thread_name metadata, got %d M events", meta)
	}
}

// TestTraceWellNested verifies the property Perfetto's track renderer
// requires: on any one track (pid, tid), slices either nest or are
// disjoint — no partial overlap.
func TestTraceWellNested(t *testing.T) {
	// Realistic stream: contended handoffs where task N's wait overlaps
	// task N-1's hold (fine: different tracks), plus back-to-back
	// wait/hold pairs per task (must be disjoint on one track).
	b := NewTraceBuilder()
	var recs []profile.TraceRecord
	now := int64(0)
	for round := 0; round < 20; round++ {
		for task := int64(1); task <= 4; task++ {
			wait := int64(300 * task)
			hold := int64(500)
			now += wait
			recs = append(recs, profile.TraceRecord{Op: profile.TraceAcquired, NowNS: now, WaitNS: wait, LockID: 1, TaskID: task})
			now += hold
			recs = append(recs, profile.TraceRecord{Op: profile.TraceRelease, NowNS: now, HoldNS: hold, LockID: 1, TaskID: task})
		}
	}
	b.AddLockRecords(recs, nil)
	data, err := b.JSON()
	if err != nil {
		t.Fatal(err)
	}
	events := decodeTrace(t, data)

	type track struct{ pid, tid int64 }
	type slice struct{ start, end int64 }
	byTrack := map[track][]slice{}
	for _, ev := range events {
		if ev.Ph != "X" {
			continue
		}
		k := track{ev.PID, ev.TID}
		// Compare in integer nanoseconds: the µs floats carry rounding
		// noise far below the format's meaningful resolution.
		start := int64(math.Round(ev.TS * 1e3))
		end := start + int64(math.Round(ev.Dur*1e3))
		byTrack[k] = append(byTrack[k], slice{start, end})
	}
	if len(byTrack) != 4 {
		t.Fatalf("got %d tracks, want 4", len(byTrack))
	}
	for k, slices := range byTrack {
		sort.Slice(slices, func(i, j int) bool {
			if slices[i].start != slices[j].start {
				return slices[i].start < slices[j].start
			}
			return slices[i].end > slices[j].end
		})
		var stack []int64 // open slice end times
		for _, s := range slices {
			for len(stack) > 0 && stack[len(stack)-1] <= s.start {
				stack = stack[:len(stack)-1]
			}
			if len(stack) > 0 && s.end > stack[len(stack)-1] {
				t.Fatalf("track %+v: slice [%v,%v] partially overlaps enclosing slice ending %v",
					k, s.start, s.end, stack[len(stack)-1])
			}
			stack = append(stack, s.end)
		}
	}
}

func TestTraceBuilderSimSlices(t *testing.T) {
	b := NewTraceBuilder()
	b.AddSimSlices([]ksim.SimSlice{
		{Name: "wait sim_lock", Proc: 0, CPU: 2, StartNS: 1000, DurNS: 500},
		{Name: "hold sim_lock", Proc: 0, CPU: 2, StartNS: 1500, DurNS: 700},
		{Name: "hold sim_lock", Proc: 1, CPU: 9, StartNS: 100, DurNS: 50},
	})
	data, err := b.JSON()
	if err != nil {
		t.Fatal(err)
	}
	events := decodeTrace(t, data)
	var x int
	var prevTS float64 = -1
	for _, ev := range events {
		if ev.Ph != "X" {
			continue
		}
		x++
		if ev.PID != pidKsim {
			t.Errorf("sim slice on pid %d", ev.PID)
		}
		if ev.TS < prevTS {
			t.Error("events not time-sorted")
		}
		prevTS = ev.TS
	}
	if x != 3 {
		t.Errorf("got %d slices, want 3", x)
	}
}

func TestTraceBuilderEmpty(t *testing.T) {
	data, err := NewTraceBuilder().JSON()
	if err != nil {
		t.Fatal(err)
	}
	if events := decodeTrace(t, data); len(events) != 0 {
		t.Errorf("empty builder produced %d events", len(events))
	}
}
