package obs

import (
	"sort"
	"sync"

	"concord/internal/faultinject"
	"concord/internal/locks"
	"concord/internal/profile"
	"concord/internal/schedfuzz/schedstats"
	"concord/internal/syncx/park"
)

// traceRingOrder sizes the telemetry trace ring (2^13 = 8192 records).
const traceRingOrder = 13

// traceSampleMask thins ring recording to 1 event in (mask+1): always
// the first event, then every 8th. Aggregates are never sampled.
const traceSampleMask = 7

// Telemetry bundles one registry with the pre-created cross-layer
// instruments the framework records into, the per-lock hook tables, and
// a trace ring for Perfetto export. Create it with NewTelemetry and hand
// it to Framework.EnableTelemetry (or use the concord.WithTelemetry
// facade option, which does both).
type Telemetry struct {
	Registry *Registry
	Ring     *profile.TraceRing

	// Framework lifecycle instruments (internal/core records these).
	PolicyLoads      *Counter // policies verified and registered
	Attaches         *Counter // policy attach operations
	Detaches         *Counter // policy detach operations
	PolicyFaults     *Counter // runtime policy execution faults
	SafetyFallbacks  *Counter // fault-triggered detaches to default behaviour
	SafetyTrips      *Counter // lock invariant checks that quarantined a policy
	PatchTransitions *Counter // livepatch hook-table replacements
	PoliciesLoaded   *Gauge
	LocksRegistered  *Gauge
	DrainLatency     *Histogram // livepatch epoch drain, ns

	// Supervisor / robustness instruments (internal/core records these).
	BreakerOpens     *Counter // breaker transitions closed/half-open -> open
	Reattaches       *Counter // half-open probation re-attach attempts
	BreakerCloses    *Counter // probations survived; breaker back to closed
	Quarantines      *Counter // policies permanently quarantined
	WatchdogTrips    *Counter // hook latency budget violations
	DrainTimeouts    *Counter // livepatch drains that exceeded their deadline
	TransitionAborts *Counter // attach/switch transitions aborted before commit

	mu        sync.Mutex
	lockStats map[string]*lockMetrics
	lockHooks map[string]*locks.Hooks
}

// lockMetrics is the cached per-lock instrument set behind one hook
// table; all updates are single atomics.
type lockMetrics struct {
	acquisitions *Counter
	contentions  *Counter
	releases     *Counter
	readAcqs     *Counter
	wait         *Histogram
	hold         *Histogram
}

// NewTelemetry builds a registry pre-populated with the cross-layer
// instruments, so every acceptance-relevant metric is visible (at zero)
// from the first scrape.
func NewTelemetry() *Telemetry {
	reg := NewRegistry()
	t := &Telemetry{
		Registry: reg,
		Ring:     profile.NewTraceRing(traceRingOrder),
		PolicyLoads: reg.Counter("concord_policy_loads_total",
			"Policies verified and registered with the framework"),
		Attaches: reg.Counter("concord_attaches_total",
			"Policy attach operations (livepatch installs)"),
		Detaches: reg.Counter("concord_detaches_total",
			"Policy detach operations"),
		PolicyFaults: reg.Counter("concord_policy_faults_total",
			"Runtime policy execution faults"),
		SafetyFallbacks: reg.Counter("concord_safety_fallbacks_total",
			"Fault-triggered detaches falling back to default lock behaviour"),
		SafetyTrips: reg.Counter("concord_safety_trips_total",
			"Lock invariant checks that quarantined an attached policy"),
		PatchTransitions: reg.Counter("concord_livepatch_transitions_total",
			"Livepatch hook-table replacements"),
		PoliciesLoaded: reg.Gauge("concord_policies_loaded",
			"Policies currently loaded"),
		LocksRegistered: reg.Gauge("concord_locks_registered",
			"Locks currently registered"),
		DrainLatency: reg.Histogram("concord_livepatch_drain_ns",
			"Livepatch epoch drain latency: patch publication to full quiescence of the old hooks"),
		BreakerOpens: reg.Counter("concord_breaker_opens_total",
			"Policy circuit breaker transitions to open (fault detach with retry pending)"),
		Reattaches: reg.Counter("concord_reattaches_total",
			"Half-open probation re-attach attempts after breaker backoff"),
		BreakerCloses: reg.Counter("concord_breaker_closes_total",
			"Probations survived: breaker returned to closed"),
		Quarantines: reg.Counter("concord_quarantines_total",
			"Policies permanently quarantined after exhausting retries or safety escalation"),
		WatchdogTrips: reg.Counter("concord_watchdog_trips_total",
			"Hook executions that exceeded the supervisor latency budget"),
		DrainTimeouts: reg.Counter("concord_drain_timeouts_total",
			"Livepatch drains that exceeded their deadline and were rolled back"),
		TransitionAborts: reg.Counter("concord_transition_aborts_total",
			"Attach/switch transitions aborted before commit"),
		lockStats: make(map[string]*lockMetrics),
		lockHooks: make(map[string]*locks.Hooks),
	}
	ring := t.Ring
	reg.AddExternal(func(add func(Sample)) {
		add(Sample{Name: "concord_trace_records_lost_total", Kind: KindCounter,
			Value: float64(ring.Overwritten())})
	})
	reg.AddExternal(func(add func(Sample)) {
		for _, s := range faultinject.Sites() {
			if n := s.Fires(); n != 0 {
				add(Sample{Name: "concord_faults_injected_total", Kind: KindCounter,
					Labels: []string{"site", s.Name()}, Value: float64(n)})
			}
		}
	})
	// Waiter-parking and queue-node-pool counters from the lock hot path.
	// Both layers count only cold events (parks, pool misses), so reading
	// them here costs the hot path nothing.
	reg.AddExternal(func(add func(Sample)) {
		ps := park.Snapshot()
		add(Sample{Name: "concord_park_yields_total", Kind: KindCounter,
			Value: float64(ps.Yields)})
		add(Sample{Name: "concord_park_parks_total", Kind: KindCounter,
			Value: float64(ps.Parks)})
		add(Sample{Name: "concord_park_unparks_total", Kind: KindCounter,
			Value: float64(ps.Unparks)})
		add(Sample{Name: "concord_park_rescues_total", Kind: KindCounter,
			Value: float64(ps.Rescues)})
		add(Sample{Name: "concord_qnode_allocs_total", Kind: KindCounter,
			Value: float64(locks.QnodeAllocs())})
	})
	// Schedule-fuzzer counters live in the schedstats leaf package so
	// the fuzzer (which sits above obs in the import graph) can count
	// without a cycle.
	reg.AddExternal(func(add func(Sample)) {
		ss := schedstats.Snapshot()
		add(Sample{Name: "concord_schedfuzz_decisions_total", Kind: KindCounter,
			Value: float64(ss.Decisions)})
		add(Sample{Name: "concord_schedfuzz_forced_parks_total", Kind: KindCounter,
			Value: float64(ss.ForcedParks)})
		add(Sample{Name: "concord_schedfuzz_failures_total", Kind: KindCounter,
			Value: float64(ss.Failures)})
	})
	return t
}

func (t *Telemetry) metricsFor(lockName string) *lockMetrics {
	t.mu.Lock()
	defer t.mu.Unlock()
	m := t.lockStats[lockName]
	if m == nil {
		reg := t.Registry
		m = &lockMetrics{
			acquisitions: reg.Counter("concord_lock_acquisitions_total",
				"Lock acquisitions", "lock", lockName),
			contentions: reg.Counter("concord_lock_contentions_total",
				"Contended lock acquisitions", "lock", lockName),
			releases: reg.Counter("concord_lock_releases_total",
				"Lock releases", "lock", lockName),
			readAcqs: reg.Counter("concord_lock_read_acquisitions_total",
				"Shared (reader) acquisitions", "lock", lockName),
			wait: reg.Histogram("concord_lock_wait_ns",
				"Time from lock request to acquisition", "lock", lockName),
			hold: reg.Histogram("concord_lock_hold_ns",
				"Time the lock was held", "lock", lockName),
		}
		t.lockStats[lockName] = m
	}
	return m
}

// LockHooks returns the (cached) hook table instrumenting one lock:
// counters plus wait/hold histograms into the registry, and raw events
// into the trace ring. The framework composes it after any user policy
// and profiler, so instrumentation stacks rather than replaces.
//
// The table is deliberately flat and sparse — this is the hot path. It
// leaves OnAcquire nil (so locks skip building that event entirely;
// acquisitions are counted in OnAcquired, which fires exactly once per
// acquisition), it records into the ring only the acquired/release
// events the Perfetto builder renders as slices, and it samples those
// 1-in-(traceSampleMask+1) using the counters as the sample clock. The
// counters and histograms stay exact; only the raw-event timeline is
// thinned, which its best-effort ring contract already allows.
func (t *Telemetry) LockHooks(lockName string) *locks.Hooks {
	t.mu.Lock()
	cached := t.lockHooks[lockName]
	t.mu.Unlock()
	if cached != nil {
		return cached
	}

	m := t.metricsFor(lockName)
	ring := t.Ring
	h := &locks.Hooks{
		Name: "telemetry",
		OnContended: func(ev *locks.Event) {
			m.contentions.Inc()
		},
		OnAcquired: func(ev *locks.Event) {
			n := m.acquisitions.Bump()
			m.wait.Observe(ev.WaitNS)
			if ev.Reader {
				m.readAcqs.Inc()
			}
			if (n-1)&traceSampleMask == 0 {
				ring.Record(traceRecord(profile.TraceAcquired, ev))
			}
		},
		OnRelease: func(ev *locks.Event) {
			n := m.releases.Bump()
			m.hold.Observe(ev.HoldNS)
			if (n-1)&traceSampleMask == 0 {
				ring.Record(traceRecord(profile.TraceRelease, ev))
			}
		},
	}

	t.mu.Lock()
	if prior := t.lockHooks[lockName]; prior != nil {
		h = prior // lost a racing build; keep one canonical table
	} else {
		t.lockHooks[lockName] = h
	}
	t.mu.Unlock()
	return h
}

// traceRecord converts a hook event into a ring record.
func traceRecord(op profile.TraceOp, ev *locks.Event) profile.TraceRecord {
	tr := profile.TraceRecord{
		NowNS: ev.NowNS, LockID: ev.LockID, Op: op,
		WaitNS: ev.WaitNS, HoldNS: ev.HoldNS,
	}
	if ev.Task != nil {
		tr.TaskID = ev.Task.ID()
		tr.CPU = int32(ev.Task.CPU())
	}
	return tr
}

// LockRow is one lock's aggregated telemetry, the unit of the /locks
// endpoint and `concordctl top`.
type LockRow struct {
	Lock    string `json:"lock"`
	Policy  string `json:"policy,omitempty"`
	Breaker string `json:"breaker,omitempty"`
	// Tier is the attached policy's execution tier ("jit", "vm", "mixed",
	// "native"; "jit!"/"vm!" when a SetTier override forces one), filled
	// by core from the attachment.
	Tier string `json:"tier,omitempty"`
	// CostBoundNS is the attached policy's static worst-case cost bound
	// (max across its programs), filled by core from the analysis report.
	CostBoundNS  int64 `json:"cost_bound_ns,omitempty"`
	Acquisitions int64 `json:"acquisitions"`
	Contentions  int64 `json:"contentions"`
	Releases     int64 `json:"releases"`
	ReadAcqs     int64 `json:"read_acquisitions"`
	WaitTotalNS  int64 `json:"wait_total_ns"`
	WaitMeanNS   int64 `json:"wait_mean_ns"`
	WaitP99NS    int64 `json:"wait_p99_ns"`
	HoldMeanNS   int64 `json:"hold_mean_ns"`
	HoldMaxNS    int64 `json:"hold_max_ns"`
	// Recent* come from the continuous profiler's freshest window (not
	// cumulative like the fields above), filled by core when continuous
	// profiling is enabled; RecentWindowNS is the window length.
	RecentContentionPerMille int64 `json:"recent_contention_per_mille,omitempty"`
	RecentWaitP99NS          int64 `json:"recent_wait_p99_ns,omitempty"`
	RecentWindowNS           int64 `json:"recent_window_ns,omitempty"`
}

// LockRows returns one row per instrumented lock, sorted by total wait
// time (most contended first) — the lockstat ordering `top` prints.
func (t *Telemetry) LockRows() []LockRow {
	t.mu.Lock()
	names := make([]string, 0, len(t.lockStats))
	stats := make([]*lockMetrics, 0, len(t.lockStats))
	for n, m := range t.lockStats {
		names = append(names, n)
		stats = append(stats, m)
	}
	t.mu.Unlock()

	rows := make([]LockRow, len(names))
	for i, m := range stats {
		rows[i] = LockRow{
			Lock:         names[i],
			Acquisitions: m.acquisitions.Value(),
			Contentions:  m.contentions.Value(),
			Releases:     m.releases.Value(),
			ReadAcqs:     m.readAcqs.Value(),
			WaitTotalNS:  m.wait.Sum(),
			WaitMeanNS:   m.wait.Mean(),
			WaitP99NS:    m.wait.Percentile(99),
			HoldMeanNS:   m.hold.Mean(),
			HoldMaxNS:    m.hold.Max(),
		}
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].WaitTotalNS != rows[j].WaitTotalNS {
			return rows[i].WaitTotalNS > rows[j].WaitTotalNS
		}
		return rows[i].Lock < rows[j].Lock
	})
	return rows
}

// TraceJSON renders the telemetry ring as a Perfetto-loadable timeline.
// lockName resolves lock IDs to names and may be nil.
func (t *Telemetry) TraceJSON(lockName func(uint64) string) ([]byte, error) {
	b := NewTraceBuilder()
	b.AddLockRecords(t.Ring.Snapshot(), lockName)
	return b.JSON()
}
