package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"

	"concord/internal/profile"
)

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4). Histograms export cumulative buckets with the
// exact inclusive upper bounds of the log2 buckets, plus _sum, _count
// and a companion _max gauge.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, f := range r.snapshot() {
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		for _, s := range f.sortedSeries() {
			var err error
			switch f.kind {
			case KindCounter:
				err = writeSample(w, f.name, s.labels, "", float64(s.c.Value()))
			case KindGauge:
				err = writeSample(w, f.name, s.labels, "", float64(s.g.Value()))
			case KindHistogram:
				err = writePromHistogram(w, f.name, s.labels, &s.h.Histogram)
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// writeSample emits one exposition line, merging an extra label (used
// for histogram le) into the label set.
func writeSample(w io.Writer, name, labels, extra string, v float64) error {
	switch {
	case labels == "" && extra == "":
		_, err := fmt.Fprintf(w, "%s %s\n", name, formatValue(v))
		return err
	case labels == "":
		_, err := fmt.Fprintf(w, "%s{%s} %s\n", name, extra, formatValue(v))
		return err
	case extra == "":
		_, err := fmt.Fprintf(w, "%s{%s} %s\n", name, labels, formatValue(v))
		return err
	default:
		_, err := fmt.Fprintf(w, "%s{%s,%s} %s\n", name, labels, extra, formatValue(v))
		return err
	}
}

func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

func writePromHistogram(w io.Writer, name, labels string, h *profile.Histogram) error {
	buckets := h.Buckets()
	var cum int64
	for i, n := range buckets {
		cum += n
		bound := profile.BucketUpperBound(i)
		le := fmt.Sprintf(`le="%d"`, bound)
		if i == len(buckets)-1 {
			le = `le="+Inf"`
		}
		if err := writeSample(w, name+"_bucket", labels, le, float64(cum)); err != nil {
			return err
		}
	}
	if err := writeSample(w, name+"_sum", labels, "", float64(h.Sum())); err != nil {
		return err
	}
	if err := writeSample(w, name+"_count", labels, "", float64(h.Count())); err != nil {
		return err
	}
	return writeSample(w, name+"_max", labels, "", float64(h.Max()))
}

// jsonBucket is one histogram bucket in the JSON exposition.
type jsonBucket struct {
	UpperBound int64 `json:"le"`
	Count      int64 `json:"count"` // non-cumulative
}

// jsonSeries is one labeled series in the JSON exposition.
type jsonSeries struct {
	Labels string       `json:"labels,omitempty"`
	Value  *float64     `json:"value,omitempty"`
	Count  int64        `json:"count,omitempty"`
	Sum    int64        `json:"sum,omitempty"`
	Max    int64        `json:"max,omitempty"`
	P50    int64        `json:"p50,omitempty"`
	P99    int64        `json:"p99,omitempty"`
	Bucket []jsonBucket `json:"buckets,omitempty"`
}

// jsonFamily is one metric family in the JSON exposition.
type jsonFamily struct {
	Name   string       `json:"name"`
	Type   string       `json:"type"`
	Help   string       `json:"help,omitempty"`
	Series []jsonSeries `json:"series"`
}

// WriteJSON renders the registry as a JSON array of metric families.
func (r *Registry) WriteJSON(w io.Writer) error {
	var out []jsonFamily
	for _, f := range r.snapshot() {
		jf := jsonFamily{Name: f.name, Type: f.kind.String(), Help: f.help}
		for _, s := range f.sortedSeries() {
			js := jsonSeries{Labels: s.labels}
			switch f.kind {
			case KindCounter:
				v := float64(s.c.Value())
				js.Value = &v
			case KindGauge:
				v := float64(s.g.Value())
				js.Value = &v
			case KindHistogram:
				h := &s.h.Histogram
				js.Count, js.Sum, js.Max = h.Count(), h.Sum(), h.Max()
				js.P50, js.P99 = h.Percentile(50), h.Percentile(99)
				for i, n := range h.Buckets() {
					if n != 0 {
						js.Bucket = append(js.Bucket, jsonBucket{UpperBound: profile.BucketUpperBound(i), Count: n})
					}
				}
			}
			jf.Series = append(jf.Series, js)
		}
		out = append(out, jf)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
