package workloads

import (
	"runtime"
	"sync"
	"time"

	"concord/internal/locks"
	"concord/internal/task"
	"concord/internal/topology"
)

// InheritConfig parameterizes RunLockInheritance.
type InheritConfig struct {
	ChainWorkers  int // acquire L1 then L2 (rename-style operation)
	L2Workers     int // crowd L2's queue
	VictimWorkers int // need only L1, suffer when chain holders stall on L2
	Duration      time.Duration
}

// InheritResult separates the per-class outcomes.
type InheritResult struct {
	ChainOps, L2Ops, VictimOps int64
}

// RunLockInheritance reproduces the multi-lock pathology of §3.1.1
// ("Lock inheritance"): chain workers hold L1 while queueing for a
// crowded L2, stalling victims that only need L1. An inheritance policy
// on L2 (prioritizing waiters that already hold locks) shortens the
// L1 hold time and revives the victims.
func RunLockInheritance(l1, l2 locks.Lock, topo *topology.Topology, cfg InheritConfig) InheritResult {
	var res InheritResult
	var mu sync.Mutex
	var wg sync.WaitGroup
	deadline := time.Now().Add(cfg.Duration)

	runClass := func(n int, count *int64, body func(tk *task.T)) {
		for w := 0; w < n; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				tk := task.New(topo)
				var ops int64
				for time.Now().Before(deadline) {
					body(tk)
					ops++
					runtime.Gosched()
				}
				mu.Lock()
				*count += ops
				mu.Unlock()
			}(w)
		}
	}
	runClass(cfg.ChainWorkers, &res.ChainOps, func(tk *task.T) {
		l1.Lock(tk)
		l2.Lock(tk)
		spinWork(64)
		l2.Unlock(tk)
		l1.Unlock(tk)
	})
	runClass(cfg.L2Workers, &res.L2Ops, func(tk *task.T) {
		l2.Lock(tk)
		spinWork(64)
		l2.Unlock(tk)
	})
	runClass(cfg.VictimWorkers, &res.VictimOps, func(tk *task.T) {
		l1.Lock(tk)
		spinWork(16)
		l1.Unlock(tk)
	})
	wg.Wait()
	return res
}

// SubversionConfig parameterizes RunSchedulerSubversion.
type SubversionConfig struct {
	Hogs     int // long critical sections
	Mice     int // short critical sections
	HogWork  int
	MiceWork int
	Duration time.Duration
}

// SubversionResult separates hog and mouse progress.
type SubversionResult struct {
	HogOps, MiceOps int64
	// HogCSNS / MiceCSNS are total critical-section time per class.
	HogCSNS, MiceCSNS int64
}

// RunSchedulerSubversion reproduces the scheduler-subversion workload of
// §3.1.2 (after Patel et al.): tasks with 10×+ critical sections
// dominate lock occupancy under FIFO; an SCL-style occupancy policy
// restores short tasks' progress.
func RunSchedulerSubversion(lock locks.Lock, topo *topology.Topology, cfg SubversionConfig) SubversionResult {
	var res SubversionResult
	var mu sync.Mutex
	var wg sync.WaitGroup
	deadline := time.Now().Add(cfg.Duration)

	runClass := func(n, work int, ops, cs *int64) {
		for w := 0; w < n; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				tk := task.New(topo)
				var myOps, myCS int64
				for time.Now().Before(deadline) {
					lock.Lock(tk)
					t0 := time.Now()
					spinWork(work)
					myCS += time.Since(t0).Nanoseconds()
					lock.Unlock(tk)
					myOps++
					runtime.Gosched()
				}
				mu.Lock()
				*ops += myOps
				*cs += myCS
				mu.Unlock()
			}()
		}
	}
	runClass(cfg.Hogs, cfg.HogWork, &res.HogOps, &res.HogCSNS)
	runClass(cfg.Mice, cfg.MiceWork, &res.MiceOps, &res.MiceCSNS)
	wg.Wait()
	return res
}

// spinWork burns a deterministic amount of CPU.
func spinWork(n int) int64 {
	var sink int64
	for i := 0; i < n; i++ {
		sink += int64(i ^ (i << 3))
	}
	return sink
}

// RenameConfig parameterizes RunRenameChain.
type RenameConfig struct {
	// ChainLen is how many locks a rename-style operation acquires in
	// order (the paper: "a process in Linux can acquire up to 12 locks
	// (e.g., rename operation)").
	ChainLen int
	// Renamers run the full chain; PointWorkers hammer one lock each.
	Renamers     int
	PointWorkers int // spread round-robin across the chain's locks
	Duration     time.Duration
}

// RenameResult reports per-class progress and rename latency.
type RenameResult struct {
	RenameOps    int64
	PointOps     int64
	RenameWaitNS int64 // cumulative time spent blocked across all chain hops
}

// MeanRenameWait returns the mean blocked time per rename operation.
func (r RenameResult) MeanRenameWait() time.Duration {
	if r.RenameOps == 0 {
		return 0
	}
	return time.Duration(r.RenameWaitNS / r.RenameOps)
}

// RunRenameChain reproduces the deep-chain pathology of §3.1.1: renamers
// acquire ChainLen locks in order while point workers crowd each lock's
// queue. With FIFO queues a renamer holding i locks still waits at the
// back of lock i+1's queue; the inheritance policy (attached by the
// caller to the chain's locks) moves it forward, shortening the window
// in which it holds everyone else back.
func RunRenameChain(chain []locks.Lock, topo *topology.Topology, cfg RenameConfig) RenameResult {
	if cfg.ChainLen <= 0 || cfg.ChainLen > len(chain) {
		cfg.ChainLen = len(chain)
	}
	var res RenameResult
	var mu sync.Mutex
	var wg sync.WaitGroup
	deadline := time.Now().Add(cfg.Duration)

	for w := 0; w < cfg.Renamers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tk := task.New(topo)
			var ops, wait int64
			for time.Now().Before(deadline) {
				t0 := time.Now()
				for i := 0; i < cfg.ChainLen; i++ {
					chain[i].Lock(tk)
				}
				wait += time.Since(t0).Nanoseconds()
				spinWork(32) // the rename itself
				for i := cfg.ChainLen - 1; i >= 0; i-- {
					chain[i].Unlock(tk)
				}
				ops++
				runtime.Gosched()
			}
			mu.Lock()
			res.RenameOps += ops
			res.RenameWaitNS += wait
			mu.Unlock()
		}()
	}
	for w := 0; w < cfg.PointWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tk := task.New(topo)
			l := chain[w%cfg.ChainLen]
			var ops int64
			for time.Now().Before(deadline) {
				l.Lock(tk)
				spinWork(16)
				runtime.Gosched() // let queues form on small hosts
				l.Unlock(tk)
				ops++
			}
			mu.Lock()
			res.PointOps += ops
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	return res
}
