package workloads

import (
	"testing"
	"testing/quick"
	"time"

	"concord/internal/locks"
	"concord/internal/task"
	"concord/internal/topology"
)

func topo() *topology.Topology { return topology.New(4, 4) }

func TestHashTableSemantics(t *testing.T) {
	tp := topo()
	h := NewHashTable(locks.NewShflLock("ht"), 6)
	tk := task.New(tp)

	if _, ok := h.Get(tk, 1); ok {
		t.Fatal("get on empty table")
	}
	h.Put(tk, 1, 100)
	h.Put(tk, 2, 200)
	if v, ok := h.Get(tk, 1); !ok || v != 100 {
		t.Fatalf("get 1: %d %v", v, ok)
	}
	h.Put(tk, 1, 111) // update
	if v, _ := h.Get(tk, 1); v != 111 {
		t.Fatalf("update lost: %d", v)
	}
	if h.Len(tk) != 2 {
		t.Fatalf("Len = %d", h.Len(tk))
	}
	if !h.Delete(tk, 1) || h.Delete(tk, 1) {
		t.Fatal("delete semantics")
	}
	if h.Len(tk) != 1 {
		t.Fatalf("Len after delete = %d", h.Len(tk))
	}
}

func TestHashTablePropertyPutGet(t *testing.T) {
	tp := topo()
	h := NewHashTable(locks.NewTASLock("ht"), 4)
	tk := task.New(tp)
	f := func(k, v uint64) bool {
		h.Put(tk, k, v)
		got, ok := h.Get(tk, k)
		return ok && got == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRunHashTable(t *testing.T) {
	tp := topo()
	res := RunHashTable(locks.NewShflLock("ht"), tp, HashTableConfig{
		Workers: 4, OpsPerWorker: 500, ReadFraction: 0.8,
	})
	if res.Ops != 4*500 {
		t.Errorf("Ops = %d, want 2000", res.Ops)
	}
	if res.OpsPerMSec() <= 0 {
		t.Error("no throughput")
	}
}

func TestMMSemantics(t *testing.T) {
	tp := topo()
	m := NewMM(locks.NewRWSem("mmap_sem"), 1024)
	tk := task.New(tp)

	if m.PageFault(tk, 0) {
		t.Fatal("fault on unmapped address succeeded")
	}
	if !m.Mmap(tk, 0, 16) {
		t.Fatal("mmap failed")
	}
	if m.Mmap(tk, 8*PageSize, 4) {
		t.Fatal("overlapping mmap accepted")
	}
	if !m.PageFault(tk, 5*PageSize+123) {
		t.Fatal("fault inside mapping failed")
	}
	if m.PageFault(tk, 16*PageSize) {
		t.Fatal("fault past end succeeded")
	}
	if !m.Munmap(tk, 0) {
		t.Fatal("munmap failed")
	}
	if m.PageFault(tk, 5*PageSize) {
		t.Fatal("fault after munmap succeeded")
	}
	if m.Munmap(tk, 0) {
		t.Fatal("double munmap succeeded")
	}
	if m.Faults() != 1 {
		t.Errorf("Faults = %d, want 1", m.Faults())
	}
}

func TestMMVMAOrdering(t *testing.T) {
	tp := topo()
	m := NewMM(locks.NewRWSem("s"), 4096)
	tk := task.New(tp)
	// Insert out of order; lookups must still work (sorted VMA list).
	if !m.Mmap(tk, 100*PageSize, 10) || !m.Mmap(tk, 10*PageSize, 10) || !m.Mmap(tk, 50*PageSize, 10) {
		t.Fatal("mmap failed")
	}
	for _, page := range []uint64{12, 55, 105} {
		if !m.PageFault(tk, page*PageSize) {
			t.Errorf("fault at page %d failed", page)
		}
	}
	for _, page := range []uint64{5, 30, 70, 200} {
		if m.PageFault(tk, page*PageSize) {
			t.Errorf("fault at unmapped page %d succeeded", page)
		}
	}
}

func TestRunPageFault2AllRWLocks(t *testing.T) {
	tp := topology.Paper()
	cases := []struct {
		name string
		sem  locks.RWLock
	}{
		{"rwsem", locks.NewRWSem("s")},
		{"bravo", locks.NewBRAVO("b", locks.NewRWSem("u"))},
		{"persocket", locks.NewPerSocketRWLock("p", tp)},
		{"shflrw", locks.NewShflRWLock("sr")},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res := RunPageFault2(tc.sem, tp, PageFault2Config{
				Workers: 4, FaultsPerWorker: 300, PagesPerWorker: 32,
			})
			if res.Ops != 4*300 {
				t.Errorf("Ops = %d, want 1200", res.Ops)
			}
		})
	}
}

func TestRunPageFault2WithWriters(t *testing.T) {
	tp := topo()
	res := RunPageFault2(locks.NewBRAVO("b", locks.NewRWSem("u")), tp, PageFault2Config{
		Workers: 4, FaultsPerWorker: 200, PagesPerWorker: 16, WriterEvery: 50,
	})
	if res.Ops != 4*200 {
		t.Errorf("Ops = %d, want 800", res.Ops)
	}
}

func TestRunLock2(t *testing.T) {
	tp := topo()
	res := RunLock2(locks.NewShflLock("l"), tp, Lock2Config{
		Workers: 6, OpsPerWorker: 400, CSWork: 16, OutsideWork: 16,
	})
	if res.Ops != 6*400 {
		t.Errorf("Ops = %d", res.Ops)
	}
	min, max := res.MinMaxOps()
	if min != 400 || max != 400 {
		t.Errorf("per-task = %d..%d, want 400..400", min, max)
	}
}

func TestRunLockInheritance(t *testing.T) {
	tp := topo()
	l1 := locks.NewShflLock("L1")
	l2 := locks.NewShflLock("L2")
	res := RunLockInheritance(l1, l2, tp, InheritConfig{
		ChainWorkers: 2, L2Workers: 4, VictimWorkers: 2,
		Duration: 100 * time.Millisecond,
	})
	if res.ChainOps == 0 || res.L2Ops == 0 || res.VictimOps == 0 {
		t.Errorf("a class starved: %+v", res)
	}
}

func TestRunSchedulerSubversion(t *testing.T) {
	tp := topo()
	l := locks.NewShflLock("l")
	res := RunSchedulerSubversion(l, tp, SubversionConfig{
		Hogs: 2, Mice: 4, HogWork: 2000, MiceWork: 50,
		Duration: 100 * time.Millisecond,
	})
	if res.HogOps == 0 || res.MiceOps == 0 {
		t.Errorf("a class starved: %+v", res)
	}
	if res.HogCSNS == 0 {
		t.Error("no hog CS time recorded")
	}
}

func TestRunRenameChain(t *testing.T) {
	tp := topo()
	chain := make([]locks.Lock, 12)
	for i := range chain {
		chain[i] = locks.NewShflLock("chain")
	}
	res := RunRenameChain(chain, tp, RenameConfig{
		ChainLen: 12, Renamers: 2, PointWorkers: 6,
		Duration: 100 * time.Millisecond,
	})
	if res.RenameOps == 0 || res.PointOps == 0 {
		t.Errorf("a class starved: %+v", res)
	}
	if res.MeanRenameWait() <= 0 {
		t.Error("no wait recorded")
	}
}

func TestRenameChainInheritancePolicy(t *testing.T) {
	// Smoke-test that attaching the inheritance policy to every chain
	// lock keeps everything live (the throughput comparison is the
	// bench's job — on 1 CPU it is noise).
	tp := topo()
	chain := make([]locks.Lock, 6)
	for i := range chain {
		l := locks.NewShflLock("chain", locks.WithMaxRounds(4))
		l.HookSlot().Replace("inherit", locks.InheritanceHooks())
		chain[i] = l
	}
	res := RunRenameChain(chain, tp, RenameConfig{
		ChainLen: 6, Renamers: 2, PointWorkers: 6,
		Duration: 100 * time.Millisecond,
	})
	if res.RenameOps == 0 || res.PointOps == 0 {
		t.Errorf("a class starved: %+v", res)
	}
	for _, l := range chain {
		if got := l.(*locks.ShflLock).SafetyError(); got != "" {
			t.Errorf("safety tripped: %s", got)
		}
	}
}
