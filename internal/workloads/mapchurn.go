package workloads

import (
	"encoding/binary"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"concord/internal/policy"
)

// MapChurnConfig parameterizes RunMapResizeChurn.
type MapChurnConfig struct {
	Workers int
	// TotalKeys is the number of distinct keys churned through the map
	// across all workers (default 1<<20). Far larger than any sane
	// preallocation, which is the point: only online resize plus
	// tombstone compaction lets a fixed-start map survive it.
	TotalKeys int64
	// LiveWindow is how many keys each worker keeps resident before
	// deleting the oldest (default 1024). Workers × LiveWindow bounds
	// live occupancy; everything beyond it is tombstone churn.
	LiveWindow int64
	// MeasureAlloc brackets the run with MemStats. Resize migration
	// allocates the shadow tables, so the amortized figure is nonzero
	// but must stay far below one allocation per operation.
	MeasureAlloc bool
}

func (c *MapChurnConfig) setDefaults() {
	if c.Workers <= 0 {
		c.Workers = 8
	}
	if c.TotalKeys <= 0 {
		c.TotalKeys = 1 << 20
	}
	if c.LiveWindow <= 0 {
		c.LiveWindow = 1024
	}
}

// RunMapResizeChurn streams cfg.TotalKeys distinct keys through m:
// worker w owns keys congruent to w mod Workers, inserts each, and
// deletes its key from LiveWindow insertions ago, so the live set stays
// bounded while the distinct-key count grows without limit. On a
// fixed-capacity map this hits ErrMapFull as soon as distinct keys
// exceed preallocation (tombstones alone don't save it — dead slots
// poison probe chains until compaction); a growable map must complete
// the full churn. The first map error aborts the run and is returned.
//
// Each insert is counted as one op; deletes ride along uncounted, so
// ops/ms is distinct keys per millisecond.
func RunMapResizeChurn(m policy.Map, cfg MapChurnConfig) (Result, error) {
	cfg.setDefaults()
	workers := cfg.Workers
	perWorker := cfg.TotalKeys / int64(workers)

	res := Result{PerTask: make([]int64, workers)}
	var firstErr atomic.Pointer[error]
	fail := func(err error) {
		e := err
		firstErr.CompareAndSwap(nil, &e)
	}
	var wg sync.WaitGroup
	var before, after runtime.MemStats
	if cfg.MeasureAlloc {
		runtime.ReadMemStats(&before)
	}
	t0 := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var key [8]byte
			val := []uint64{1}
			for j := int64(0); j < perWorker; j++ {
				if firstErr.Load() != nil {
					return
				}
				k := int64(w) + j*int64(workers)
				binary.LittleEndian.PutUint64(key[:], uint64(k))
				if err := m.Update(key[:], val, w); err != nil {
					fail(err)
					return
				}
				res.PerTask[w]++
				if old := j - cfg.LiveWindow; old >= 0 {
					k = int64(w) + old*int64(workers)
					binary.LittleEndian.PutUint64(key[:], uint64(k))
					if err := m.Delete(key[:]); err != nil {
						fail(err)
						return
					}
				}
				if j&1023 == 1023 {
					runtime.Gosched()
				}
			}
		}(w)
	}
	wg.Wait()
	res.Duration = time.Since(t0)
	if cfg.MeasureAlloc {
		runtime.ReadMemStats(&after)
	}
	for _, v := range res.PerTask {
		res.Ops += v
	}
	if cfg.MeasureAlloc && res.Ops > 0 {
		res.AllocsPerOp = float64(after.Mallocs-before.Mallocs) / float64(res.Ops)
	}
	if ep := firstErr.Load(); ep != nil {
		return res, *ep
	}
	return res, nil
}
