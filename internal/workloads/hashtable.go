// Package workloads ports the paper's evaluation workloads (§5) to run
// against the real lock implementations: the will-it-scale
// microbenchmarks page_fault2 and lock2 [9], the global-lock hash table
// of Triplett et al. [54], and the scenario workloads behind the §3 use
// cases (multi-lock rename chains, bimodal critical sections).
//
// Each workload runs worker goroutines with virtual CPU identities from
// internal/topology, so NUMA policies behave as they would with real
// thread pinning regardless of the host's CPU count.
package workloads

import (
	"runtime"
	"sync"
	"time"

	"concord/internal/locks"
	"concord/internal/task"
	"concord/internal/topology"
)

// Result aggregates one workload run against real locks.
type Result struct {
	Ops      int64
	PerTask  []int64
	Duration time.Duration
	// AllocsPerOp is heap allocations per operation over the measured
	// phase; only populated by workloads that opt into measuring it
	// (RunMapPlane with MeasureAlloc), zero elsewhere.
	AllocsPerOp float64
}

// OpsPerMSec returns throughput in operations per millisecond.
func (r Result) OpsPerMSec() float64 {
	if r.Duration <= 0 {
		return 0
	}
	return float64(r.Ops) / (float64(r.Duration.Nanoseconds()) / 1e6)
}

// MinMaxOps reports the least/most ops completed by any worker.
func (r Result) MinMaxOps() (min, max int64) {
	if len(r.PerTask) == 0 {
		return 0, 0
	}
	min, max = r.PerTask[0], r.PerTask[0]
	for _, v := range r.PerTask[1:] {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	return min, max
}

// HashTable is the resizable-hash-table benchmark's data structure [54]
// reduced to its locking essence: a bucketed table protected by one
// global lock. It is the Figure 2(c) workload.
type HashTable struct {
	lock    locks.Lock
	buckets [][]kv
	mask    uint64
}

type kv struct {
	k, v uint64
}

// NewHashTable builds a table with 2^order buckets protected by lock.
func NewHashTable(lock locks.Lock, order uint) *HashTable {
	n := uint64(1) << order
	return &HashTable{lock: lock, buckets: make([][]kv, n), mask: n - 1}
}

func (h *HashTable) bucket(k uint64) *[]kv {
	k *= 0x9e3779b97f4a7c15
	return &h.buckets[(k>>32)&h.mask]
}

// Put inserts or updates a key under the global lock.
func (h *HashTable) Put(t *task.T, k, v uint64) {
	h.lock.Lock(t)
	b := h.bucket(k)
	for i := range *b {
		if (*b)[i].k == k {
			(*b)[i].v = v
			h.lock.Unlock(t)
			return
		}
	}
	*b = append(*b, kv{k, v})
	h.lock.Unlock(t)
}

// Get looks a key up under the global lock.
func (h *HashTable) Get(t *task.T, k uint64) (uint64, bool) {
	h.lock.Lock(t)
	b := h.bucket(k)
	for i := range *b {
		if (*b)[i].k == k {
			v := (*b)[i].v
			h.lock.Unlock(t)
			return v, true
		}
	}
	h.lock.Unlock(t)
	return 0, false
}

// Delete removes a key under the global lock.
func (h *HashTable) Delete(t *task.T, k uint64) bool {
	h.lock.Lock(t)
	b := h.bucket(k)
	for i := range *b {
		if (*b)[i].k == k {
			(*b)[i] = (*b)[len(*b)-1]
			*b = (*b)[:len(*b)-1]
			h.lock.Unlock(t)
			return true
		}
	}
	h.lock.Unlock(t)
	return false
}

// Len counts entries (takes the lock).
func (h *HashTable) Len(t *task.T) int {
	h.lock.Lock(t)
	n := 0
	for i := range h.buckets {
		n += len(h.buckets[i])
	}
	h.lock.Unlock(t)
	return n
}

// HashTableConfig parameterizes RunHashTable.
type HashTableConfig struct {
	Workers      int
	OpsPerWorker int
	Keys         uint64  // key space size
	ReadFraction float64 // fraction of Get operations
	TableOrder   uint
}

// RunHashTable drives the global-lock hash table with a mixed workload
// and returns its throughput (Figure 2(c), Table F2c).
func RunHashTable(lock locks.Lock, topo *topology.Topology, cfg HashTableConfig) Result {
	if cfg.TableOrder == 0 {
		cfg.TableOrder = 10
	}
	if cfg.Keys == 0 {
		cfg.Keys = 4096
	}
	h := NewHashTable(lock, cfg.TableOrder)

	res := Result{PerTask: make([]int64, cfg.Workers)}
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tk := task.New(topo)
			rng := uint64(w)*0x9e3779b97f4a7c15 + 1
			next := func() uint64 {
				rng ^= rng << 13
				rng ^= rng >> 7
				rng ^= rng << 17
				return rng
			}
			for i := 0; i < cfg.OpsPerWorker; i++ {
				k := next() % cfg.Keys
				if float64(next()%1000)/1000 < cfg.ReadFraction {
					h.Get(tk, k)
				} else if next()&1 == 0 {
					h.Put(tk, k, uint64(i))
				} else {
					h.Delete(tk, k)
				}
				res.PerTask[w]++
				if i&63 == 0 {
					runtime.Gosched()
				}
			}
		}(w)
	}
	wg.Wait()
	res.Duration = time.Since(start)
	for _, v := range res.PerTask {
		res.Ops += v
	}
	return res
}
