//go:build race

package workloads

// raceEnabled reports that this test binary was built with -race. The
// race runtime forces otherwise stack-allocated program state to
// escape, so exact allocs/op pins only hold in normal builds.
const raceEnabled = true
