package workloads

import (
	"encoding/binary"
	"errors"
	"testing"

	"concord/internal/locks"
	"concord/internal/policy"
)

func TestRunOCCReadHeavySpeculates(t *testing.T) {
	l := locks.NewRWSem("occ-wl")
	l.OCCSetMode(locks.OCCOn)
	res := RunOCCReadHeavy(l, topo(), OCCReadHeavyConfig{
		Workers: 4, OpsPerWorker: 2048, WriterEvery: 128,
	})
	if res.Ops != 4*2048 {
		t.Fatalf("ops = %d, want %d", res.Ops, 4*2048)
	}
	st := l.OCCStats()
	if st.Reads == 0 {
		t.Fatalf("forced-on lock never validated a speculative read: %+v", st)
	}
}

func TestRunOCCReadHeavyAblation(t *testing.T) {
	l := locks.NewRWSem("occ-wl-off")
	l.OCCSetMode(locks.OCCOff)
	res := RunOCCReadHeavy(l, topo(), OCCReadHeavyConfig{
		Workers: 4, OpsPerWorker: 1024, WriterEvery: 128,
	})
	if res.Ops != 4*1024 {
		t.Fatalf("ops = %d, want %d", res.Ops, 4*1024)
	}
	if st := l.OCCStats(); st.Reads != 0 || st.Aborts != 0 {
		t.Fatalf("forced-off lock speculated: %+v", st)
	}
}

func TestRunMapResizeChurnGrowable(t *testing.T) {
	m := policy.NewGrowableHashMap("churn-g", 8, 8, 256)
	res, err := RunMapResizeChurn(m, MapChurnConfig{
		Workers: 4, TotalKeys: 1 << 14, LiveWindow: 512,
	})
	if err != nil {
		t.Fatalf("growable churn failed: %v", err)
	}
	if res.Ops != 1<<14 {
		t.Fatalf("ops = %d, want %d", res.Ops, 1<<14)
	}
	// The most recent key of worker 0 is resident, the oldest deleted.
	var key [8]byte
	last := int64(0) + (res.PerTask[0]-1)*4
	binary.LittleEndian.PutUint64(key[:], uint64(last))
	if m.Lookup(key[:], 0) == nil {
		t.Fatalf("key %d vanished from the live window", last)
	}
	binary.LittleEndian.PutUint64(key[:], 0)
	if m.Lookup(key[:], 0) != nil {
		t.Fatal("key 0 survived its deletion window")
	}
}

func TestRunMapResizeChurnFixedCapacityFills(t *testing.T) {
	// The same churn against a preallocated map is the negative control:
	// the live set alone exceeds capacity, so it must report ErrMapFull
	// rather than quietly dropping keys.
	m := policy.NewHashMap("churn-fixed", 8, 8, 256)
	_, err := RunMapResizeChurn(m, MapChurnConfig{
		Workers: 4, TotalKeys: 1 << 13, LiveWindow: 512,
	})
	if !errors.Is(err, policy.ErrMapFull) {
		t.Fatalf("fixed-capacity churn: err = %v, want ErrMapFull", err)
	}
}
