//go:build !race

package workloads

const raceEnabled = false
