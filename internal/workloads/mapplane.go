package workloads

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"concord/internal/policy"
)

// MapPlaneConfig parameterizes RunMapPlane.
type MapPlaneConfig struct {
	Workers      int
	OpsPerWorker int
	Keys         int64 // distinct keys the workers hash into the map
	NumCPUs      int   // virtual CPUs; worker w runs as CPU w % NumCPUs
	MeasureAlloc bool  // bracket the measured phase with MemStats
}

func (c *MapPlaneConfig) setDefaults() {
	if c.Workers <= 0 {
		c.Workers = 8
	}
	if c.OpsPerWorker <= 0 {
		c.OpsPerWorker = 4096
	}
	if c.Keys <= 0 {
		c.Keys = 256
	}
	if c.NumCPUs <= 0 {
		c.NumCPUs = 8
	}
}

// MapPlaneProgram assembles and verifies the counting policy RunMapPlane
// drives: derive a key from task_id, bump its counter with map_add, read
// it back with map_lookup — and every 33rd op, delete the key first so
// it is reinserted. This is the shape of the shipped profiler policies
// (profile-waits) plus eviction churn, reduced to pure map-plane work so
// the cell measures helper/map overhead rather than lock contention.
// The churn arm is what keeps insert-path allocation in the measurement:
// without it a warmed map never inserts and every implementation looks
// alloc-free in steady state.
func MapPlaneProgram(m policy.Map, keys int64) (*policy.Program, error) {
	if keys <= 0 {
		return nil, fmt.Errorf("mapplane: keys must be positive")
	}
	src := fmt.Sprintf(`
		call  task_id
		mov   r7, r0
		mod   r0, %d
		stxdw [fp-8], r0
		mod   r7, 33
		jne   r7, 0, add
		ldmap r1, plane
		mov   r2, fp
		add   r2, -8
		call  map_delete
	add:
		ldmap r1, plane
		mov   r2, fp
		add   r2, -8
		mov   r3, 1
		call  map_add
		ldmap r1, plane
		mov   r2, fp
		add   r2, -8
		call  map_lookup
		mov   r0, 0
		exit
	`, keys)
	p, err := policy.Assemble("mapplane", policy.KindLockAcquired, src,
		map[string]policy.Map{"plane": m})
	if err != nil {
		return nil, err
	}
	if _, err := policy.Verify(p); err != nil {
		return nil, err
	}
	return p, nil
}

// RunMapPlane drives the natively-compiled counting policy against m
// from cfg.Workers goroutines and reports program executions per unit
// time (each op is one map_add + one map_lookup through the full helper
// path). Workers warm the map first — every key is inserted before the
// clock starts — so the measured phase is the steady state a long-lived
// profiler policy sees. The map must have 8-byte keys and ≥8-byte
// values and at least cfg.Keys entries.
func RunMapPlane(m policy.Map, cfg MapPlaneConfig) Result {
	cfg.setDefaults()
	prog, err := MapPlaneProgram(m, cfg.Keys)
	if err != nil {
		panic(err) // spec error: misuse of the harness, not a runtime condition
	}
	fn := policy.MustCompileNative(prog)
	layout := policy.LayoutFor(policy.KindLockAcquired)

	res := Result{PerTask: make([]int64, cfg.Workers)}
	var warm, measured sync.WaitGroup
	start := make(chan struct{})
	warm.Add(cfg.Workers)
	measured.Add(cfg.Workers)
	for w := 0; w < cfg.Workers; w++ {
		go func(w int) {
			ctx := policy.Ctx{Layout: layout, Words: make([]uint64, len(layout.Fields))}
			// Worker w walks the key space with stride Workers, so keys
			// interleave across workers and hot counters are genuinely
			// shared (the contention per-CPU maps exist to remove).
			seq := int64(w)
			env := &policy.FuncEnv{
				CPUFn: func() int { return w % cfg.NumCPUs },
				TaskIDFn: func() int64 {
					id := seq
					seq += int64(cfg.Workers)
					return id
				},
			}
			// Warmup: one full pass over the key space populates every
			// slot this worker will touch (inserts happen here, not in
			// the measured phase).
			warmOps := int(cfg.Keys)
			for i := 0; i < warmOps; i++ {
				if _, err := fn(&ctx, env); err != nil {
					panic(err)
				}
			}
			warm.Done()
			<-start
			for i := 0; i < cfg.OpsPerWorker; i++ {
				if _, err := fn(&ctx, env); err != nil {
					panic(err)
				}
				res.PerTask[w]++
				if i&255 == 255 {
					runtime.Gosched()
				}
			}
			measured.Done()
		}(w)
	}
	warm.Wait()

	var before, after runtime.MemStats
	if cfg.MeasureAlloc {
		runtime.ReadMemStats(&before)
	}
	t0 := time.Now()
	close(start)
	measured.Wait()
	res.Duration = time.Since(t0)
	if cfg.MeasureAlloc {
		runtime.ReadMemStats(&after)
	}
	for _, v := range res.PerTask {
		res.Ops += v
	}
	if cfg.MeasureAlloc && res.Ops > 0 {
		res.AllocsPerOp = float64(after.Mallocs-before.Mallocs) / float64(res.Ops)
	}
	return res
}
