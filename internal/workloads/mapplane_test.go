package workloads

import (
	"testing"

	"concord/internal/policy"
)

// mapPlaneKinds is the roster the map-plane tests and benchmarks run:
// every hash kind the bench matrix measures, sized for a 64-key space.
func mapPlaneTestKinds() []struct {
	name string
	mk   func() policy.Map
} {
	return []struct {
		name string
		mk   func() policy.Map
	}{
		{"hash", func() policy.Map { return policy.NewHashMap("plane", 8, 8, 128) }},
		{"percpu_hash", func() policy.Map { return policy.NewPerCPUHashMap("plane", 8, 8, 128, 4) }},
		{"locked_hash", func() policy.Map { return policy.NewLockedHashMap("plane", 8, 8, 128) }},
	}
}

func TestMapPlaneCounts(t *testing.T) {
	for _, mp := range mapPlaneTestKinds() {
		t.Run(mp.name, func(t *testing.T) {
			m := mp.mk()
			res := RunMapPlane(m, MapPlaneConfig{
				Workers: 4, OpsPerWorker: 512, Keys: 64, NumCPUs: 4,
			})
			if want := int64(4 * 512); res.Ops != want {
				t.Fatalf("ops = %d, want %d", res.Ops, want)
			}
			if res.Duration <= 0 {
				t.Fatal("non-positive duration")
			}
		})
	}
}

// TestMapPlaneZeroAlloc drives the full compiled helper path — native
// program, map_delete/map_add/map_lookup through execHelper — and pins
// the preallocated kinds at zero heap allocations per op, churn
// included. This is the whole point of the data plane: a profiling
// policy on a lock hot path must never wake the allocator.
func TestMapPlaneZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation heap-escapes compiled program state; the pin holds in normal builds")
	}
	for _, mp := range mapPlaneTestKinds() {
		if mp.name == "locked_hash" {
			continue // inserts intern a string key; covered by the policy-level pin
		}
		t.Run(mp.name, func(t *testing.T) {
			res := RunMapPlane(mp.mk(), MapPlaneConfig{
				Workers: 2, OpsPerWorker: 4096, Keys: 64, NumCPUs: 2,
				MeasureAlloc: true,
			})
			// Runtime bookkeeping outside the op loop (goroutine exit,
			// timer) can register a handful of mallocs; amortized over
			// thousands of ops the data plane itself must contribute none.
			if res.AllocsPerOp > 0.01 {
				t.Fatalf("allocs/op = %.4f, want 0", res.AllocsPerOp)
			}
		})
	}
}

func BenchmarkMapPlane(b *testing.B) {
	for _, mp := range mapPlaneTestKinds() {
		b.Run(mp.name, func(b *testing.B) {
			m := mp.mk()
			prog, err := MapPlaneProgram(m, 64)
			if err != nil {
				b.Fatal(err)
			}
			fn := policy.MustCompileNative(prog)
			layout := policy.LayoutFor(policy.KindLockAcquired)
			ctx := policy.Ctx{Layout: layout, Words: make([]uint64, len(layout.Fields))}
			var seq int64
			env := &policy.FuncEnv{
				CPUFn:    func() int { return 0 },
				TaskIDFn: func() int64 { seq++; return seq },
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := fn(&ctx, env); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
