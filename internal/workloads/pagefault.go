package workloads

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"concord/internal/locks"
	"concord/internal/task"
	"concord/internal/topology"
)

// PageSize is the simulated page size.
const PageSize = 4096

// VMA is one virtual memory area of the mini address space.
type VMA struct {
	Start, End uint64 // [Start, End), page aligned
}

// MM is a miniature memory-management subsystem: an address space whose
// VMA list is protected by an mmap_sem readers-writer lock, with page
// faults taking it shared and mmap/munmap taking it exclusive — the
// locking structure behind will-it-scale's page_fault2 (Figure 2(a))
// and the §3.1.1 page-faulting lock-switching use case.
type MM struct {
	sem  locks.RWLock
	vmas []VMA // sorted by Start; guarded by sem

	// pages tracks installed PTEs; sized at New time, entries written
	// atomically under the read lock (faults on different pages are
	// independent, as in a real mm).
	pages []atomic.Uint32

	faults      atomic.Int64
	mapOps      atomic.Int64
	faultErrors atomic.Int64
}

// NewMM builds an address space of totalPages pages guarded by sem.
func NewMM(sem locks.RWLock, totalPages int) *MM {
	return &MM{sem: sem, pages: make([]atomic.Uint32, totalPages)}
}

// Sem exposes the mmap_sem (so experiments can patch or profile it).
func (m *MM) Sem() locks.RWLock { return m.sem }

// Faults reports the number of successful page faults.
func (m *MM) Faults() int64 { return m.faults.Load() }

// findVMA returns the VMA containing addr; caller holds sem.
func (m *MM) findVMA(addr uint64) *VMA {
	i := sort.Search(len(m.vmas), func(i int) bool { return m.vmas[i].End > addr })
	if i < len(m.vmas) && m.vmas[i].Start <= addr {
		return &m.vmas[i]
	}
	return nil
}

// Mmap maps [start, start+pages*PageSize) — the writer path.
func (m *MM) Mmap(t *task.T, start uint64, pages int) bool {
	end := start + uint64(pages)*PageSize
	m.sem.Lock(t)
	defer m.sem.Unlock(t)
	// Reject overlap.
	for i := range m.vmas {
		if m.vmas[i].Start < end && start < m.vmas[i].End {
			return false
		}
	}
	m.vmas = append(m.vmas, VMA{Start: start, End: end})
	sort.Slice(m.vmas, func(i, j int) bool { return m.vmas[i].Start < m.vmas[j].Start })
	m.mapOps.Add(1)
	return true
}

// Munmap removes the mapping that starts at start.
func (m *MM) Munmap(t *task.T, start uint64) bool {
	m.sem.Lock(t)
	defer m.sem.Unlock(t)
	for i := range m.vmas {
		if m.vmas[i].Start == start {
			m.vmas = append(m.vmas[:i], m.vmas[i+1:]...)
			m.mapOps.Add(1)
			return true
		}
	}
	return false
}

// PageFault handles a fault at addr: mmap_sem shared, VMA walk, PTE
// install. Returns false for an unmapped address (SIGSEGV).
func (m *MM) PageFault(t *task.T, addr uint64) bool {
	m.sem.RLock(t)
	vma := m.findVMA(addr)
	if vma == nil {
		m.sem.RUnlock(t)
		m.faultErrors.Add(1)
		return false
	}
	page := addr / PageSize
	if int(page) < len(m.pages) {
		m.pages[page].Add(1) // install/refresh the PTE
	}
	m.sem.RUnlock(t)
	m.faults.Add(1)
	return true
}

// PageFault2Config parameterizes RunPageFault2.
type PageFault2Config struct {
	Workers         int
	FaultsPerWorker int
	PagesPerWorker  int
	// WriterEvery injects one mmap/munmap per this many faults per
	// worker (0 = read-only, the page_fault2 default).
	WriterEvery int
}

// RunPageFault2 is the will-it-scale page_fault2 port: every worker
// faults over its own window of a shared mapping, all serializing on
// mmap_sem's read side (Figure 2(a), Table F2a).
func RunPageFault2(sem locks.RWLock, topo *topology.Topology, cfg PageFault2Config) Result {
	if cfg.PagesPerWorker == 0 {
		cfg.PagesPerWorker = 128
	}
	totalPages := cfg.Workers * cfg.PagesPerWorker
	m := NewMM(sem, totalPages+cfg.Workers*2)

	// One big shared mapping, like page_fault2's single mmap region.
	init := task.New(topo)
	if !m.Mmap(init, 0, totalPages) {
		panic("workloads: initial mmap failed")
	}

	res := Result{PerTask: make([]int64, cfg.Workers)}
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tk := task.New(topo)
			base := uint64(w*cfg.PagesPerWorker) * PageSize
			for i := 0; i < cfg.FaultsPerWorker; i++ {
				addr := base + uint64(i%cfg.PagesPerWorker)*PageSize
				if m.PageFault(tk, addr) {
					res.PerTask[w]++
				}
				if cfg.WriterEvery > 0 && i%cfg.WriterEvery == cfg.WriterEvery-1 {
					extra := uint64(totalPages+w*2) * PageSize
					m.Mmap(tk, extra, 1)
					m.Munmap(tk, extra)
				}
				if i&63 == 0 {
					runtime.Gosched()
				}
			}
		}(w)
	}
	wg.Wait()
	res.Duration = time.Since(start)
	for _, v := range res.PerTask {
		res.Ops += v
	}
	return res
}

// Lock2Config parameterizes RunLock2.
type Lock2Config struct {
	Workers      int
	OpsPerWorker int
	CSWork       int // spins of trivial work inside the critical section
	OutsideWork  int // spins outside
}

// RunLock2 is the will-it-scale lock2 port: a tight acquire/release loop
// on one global lock, the write-side stress of Figure 2(b) (Table F2b).
func RunLock2(lock locks.Lock, topo *topology.Topology, cfg Lock2Config) Result {
	res := Result{PerTask: make([]int64, cfg.Workers)}
	var shared int64
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tk := task.New(topo)
			var sink int64
			for i := 0; i < cfg.OpsPerWorker; i++ {
				lock.Lock(tk)
				shared++
				for s := 0; s < cfg.CSWork; s++ {
					sink += int64(s)
				}
				lock.Unlock(tk)
				for s := 0; s < cfg.OutsideWork; s++ {
					sink -= int64(s)
				}
				res.PerTask[w]++
				if i&31 == 0 {
					runtime.Gosched()
				}
			}
			_ = sink
		}(w)
	}
	wg.Wait()
	res.Duration = time.Since(start)
	for _, v := range res.PerTask {
		res.Ops += v
	}
	if shared != int64(cfg.Workers*cfg.OpsPerWorker) {
		panic("workloads: lock2 lost updates — mutual exclusion broken")
	}
	return res
}
