package workloads

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"concord/internal/locks"
	"concord/internal/task"
	"concord/internal/topology"
)

// OptRWLock is a readers-writer lock carrying the optimistic read tier
// (locks.RWSem, locks.SwitchableRWLock).
type OptRWLock interface {
	locks.RWLock
	OptRead(t *task.T, fn func())
}

// OCCReadHeavyConfig parameterizes RunOCCReadHeavy.
type OCCReadHeavyConfig struct {
	Workers      int
	OpsPerWorker int
	// WriterEvery injects one exclusive full-table update per this many
	// ops per worker (default 512): enough writer traffic that
	// speculation has real invalidations to survive, little enough that
	// the mix stays read-dominated — the profile shape occ-gate.pol
	// promotes on.
	WriterEvery int
	// Slots is the shared table size each read section sums (default
	// 64): long enough that a torn snapshot is possible in principle,
	// which is what sequence validation exists to reject.
	Slots int
	// MeasureAlloc brackets the measured phase with MemStats; the
	// speculative read path must stay at 0 allocs/op.
	MeasureAlloc bool
}

func (c *OCCReadHeavyConfig) setDefaults() {
	if c.Workers <= 0 {
		c.Workers = 8
	}
	if c.OpsPerWorker <= 0 {
		c.OpsPerWorker = 4096
	}
	if c.WriterEvery <= 0 {
		c.WriterEvery = 512
	}
	if c.Slots <= 0 {
		c.Slots = 64
	}
}

// RunOCCReadHeavy drives a read-dominated mix against one rwsem-class
// lock: each op is either a read section summing a shared table (the
// common case) or an exclusive writer bumping every slot. Reads go
// through OptRead, so the measured throughput depends on the lock's
// optimistic tier: promoted or forced on, validated speculative
// sections bypass the reader path entirely; forced off (`lockbench
// -occ off`), every read pays the full pessimistic RLock — the
// ablation pair behind the occ_read_heavy regression cell.
//
// Table slots are word-atomic on both sides because a speculative
// section runs concurrently with the writer by design; sequence
// validation discards torn sums, it does not prevent the race.
func RunOCCReadHeavy(l OptRWLock, topo *topology.Topology, cfg OCCReadHeavyConfig) Result {
	cfg.setDefaults()
	shared := make([]atomic.Uint64, cfg.Slots)

	res := Result{PerTask: make([]int64, cfg.Workers)}
	var warm, measured sync.WaitGroup
	start := make(chan struct{})
	warm.Add(cfg.Workers)
	measured.Add(cfg.Workers)
	for w := 0; w < cfg.Workers; w++ {
		go func(w int) {
			tk := task.New(topo)
			// The read closure is hoisted out of the op loop so the
			// steady state allocates nothing per operation.
			var sum uint64
			read := func() {
				sum = 0
				for s := range shared {
					sum += shared[s].Load()
				}
			}
			var sink uint64
			op := func(i int) {
				if i%cfg.WriterEvery == cfg.WriterEvery-1 {
					l.Lock(tk)
					for s := range shared {
						shared[s].Add(1)
					}
					l.Unlock(tk)
				} else {
					l.OptRead(tk, read)
					sink += sum
				}
			}
			// Warmup settles parker timers and the promotion state
			// before the clock starts.
			for i := 0; i < cfg.WriterEvery; i++ {
				op(i)
			}
			warm.Done()
			<-start
			for i := 0; i < cfg.OpsPerWorker; i++ {
				op(i)
				res.PerTask[w]++
				if i&255 == 255 {
					runtime.Gosched()
				}
			}
			_ = sink
			measured.Done()
		}(w)
	}
	warm.Wait()

	var before, after runtime.MemStats
	if cfg.MeasureAlloc {
		runtime.ReadMemStats(&before)
	}
	t0 := time.Now()
	close(start)
	measured.Wait()
	res.Duration = time.Since(t0)
	if cfg.MeasureAlloc {
		runtime.ReadMemStats(&after)
	}
	for _, v := range res.PerTask {
		res.Ops += v
	}
	if cfg.MeasureAlloc && res.Ops > 0 {
		res.AllocsPerOp = float64(after.Mallocs-before.Mallocs) / float64(res.Ops)
	}
	return res
}
