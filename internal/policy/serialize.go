package policy

import (
	"encoding/json"
	"fmt"
)

// Serialized program format: what concordctl stores in and loads from the
// policy repository directory (the paper's "BPF file system" analogue,
// Figure 1 step 5). Maps are serialized as specifications and re-created
// empty on load, exactly like map definitions in an eBPF object file.

// MapSpec describes a map without its contents.
type MapSpec struct {
	// Type is "array", "percpu_array", "hash", "percpu_hash" or
	// "locked_hash".
	Type       string `json:"type"`
	Name       string `json:"name"`
	KeySize    int    `json:"key_size"`
	ValueSize  int    `json:"value_size"`
	MaxEntries int    `json:"max_entries"`
	NumCPUs    int    `json:"num_cpus,omitempty"`
	// Growable marks hash kinds that resize online past MaxEntries.
	// Absent in specs persisted before online resize existed, which
	// json decodes as false — exactly the old fixed-capacity contract.
	Growable bool `json:"growable,omitempty"`
}

// SpecOf extracts the specification of a map.
func SpecOf(m Map) MapSpec {
	spec := MapSpec{
		Name:       m.Name(),
		KeySize:    m.KeySize(),
		ValueSize:  m.ValueSize(),
		MaxEntries: m.MaxEntries(),
	}
	switch mm := m.(type) {
	case *ArrayMap:
		spec.Type = "array"
	case *PerCPUArrayMap:
		spec.Type = "percpu_array"
		spec.NumCPUs = mm.NumCPUs()
	case *HashMap:
		spec.Type = "hash"
		spec.Growable = mm.Growable()
	case *PerCPUHashMap:
		spec.Type = "percpu_hash"
		spec.NumCPUs = mm.NumCPUs()
		spec.Growable = mm.Growable()
	case *LockedHashMap:
		spec.Type = "locked_hash"
	default:
		spec.Type = "hash"
	}
	return spec
}

// Build creates an empty map from the specification.
func (s MapSpec) Build() (m Map, err error) {
	defer func() {
		if r := recover(); r != nil { // checkSpec panics become errors
			m, err = nil, fmt.Errorf("policy: bad map spec %q: %v", s.Name, r)
		}
	}()
	switch s.Type {
	case "array":
		return NewArrayMap(s.Name, s.ValueSize, s.MaxEntries), nil
	case "percpu_array":
		n := s.NumCPUs
		if n <= 0 {
			n = 1
		}
		return NewPerCPUArrayMap(s.Name, s.ValueSize, s.MaxEntries, n), nil
	case "hash":
		if s.KeySize > MaxHashKeySize {
			// Specs persisted before the lock-free kind existed could
			// carry keys beyond its word-compare bound; keep loading
			// them via the locked kind, which supports unbounded keys.
			return NewLockedHashMap(s.Name, s.KeySize, s.ValueSize, s.MaxEntries), nil
		}
		if s.Growable {
			return NewGrowableHashMap(s.Name, s.KeySize, s.ValueSize, s.MaxEntries), nil
		}
		return NewHashMap(s.Name, s.KeySize, s.ValueSize, s.MaxEntries), nil
	case "percpu_hash":
		n := s.NumCPUs
		if n <= 0 {
			n = 1
		}
		if s.Growable {
			return NewGrowablePerCPUHashMap(s.Name, s.KeySize, s.ValueSize, s.MaxEntries, n), nil
		}
		return NewPerCPUHashMap(s.Name, s.KeySize, s.ValueSize, s.MaxEntries, n), nil
	case "locked_hash":
		return NewLockedHashMap(s.Name, s.KeySize, s.ValueSize, s.MaxEntries), nil
	}
	return nil, fmt.Errorf("policy: unknown map type %q", s.Type)
}

// serializedInsn is the on-disk instruction encoding.
type serializedInsn struct {
	Op  uint16 `json:"op"`
	Dst uint8  `json:"dst"`
	Src uint8  `json:"src"`
	Off int16  `json:"off"`
	Imm int64  `json:"imm"`
}

// serializedProgram is the on-disk program encoding.
type serializedProgram struct {
	Name  string           `json:"name"`
	Kind  string           `json:"kind"`
	Insns []serializedInsn `json:"insns"`
	Maps  []MapSpec        `json:"maps"`
}

// Marshal encodes the program (instructions plus map specs) as JSON.
func Marshal(p *Program) ([]byte, error) {
	sp := serializedProgram{Name: p.Name, Kind: p.Kind.String()}
	for _, in := range p.Insns {
		sp.Insns = append(sp.Insns, serializedInsn{
			Op: uint16(in.Op), Dst: uint8(in.Dst), Src: uint8(in.Src),
			Off: in.Off, Imm: in.Imm,
		})
	}
	for _, m := range p.Maps {
		sp.Maps = append(sp.Maps, SpecOf(m))
	}
	return json.MarshalIndent(sp, "", "  ")
}

// Unmarshal decodes a program, recreating its maps empty. The program is
// NOT verified; callers must Verify before execution.
func Unmarshal(data []byte) (*Program, error) {
	var sp serializedProgram
	if err := json.Unmarshal(data, &sp); err != nil {
		return nil, fmt.Errorf("policy: decode: %w", err)
	}
	kind, ok := KindByName(sp.Kind)
	if !ok {
		return nil, fmt.Errorf("policy: unknown program kind %q", sp.Kind)
	}
	p := &Program{Name: sp.Name, Kind: kind}
	for _, si := range sp.Insns {
		p.Insns = append(p.Insns, Instruction{
			Op: Op(si.Op), Dst: Reg(si.Dst), Src: Reg(si.Src),
			Off: si.Off, Imm: si.Imm,
		})
	}
	for _, ms := range sp.Maps {
		m, err := ms.Build()
		if err != nil {
			return nil, err
		}
		p.Maps = append(p.Maps, m)
	}
	return p, nil
}
