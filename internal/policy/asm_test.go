package policy

import (
	"strings"
	"testing"
)

func TestAssembleNUMAPolicy(t *testing.T) {
	src := `
		; NUMA-aware cmp_node: group nodes from the shuffler's socket
		mov   r6, r1
		ldxdw r2, [r6+curr_socket]
		ldxdw r3, [r6+shuffler_socket]
		jeq   r2, r3, group
		mov   r0, 0
		exit
	group:
		mov   r0, 1
		exit
	`
	p, err := Assemble("numa", KindCmpNode, src, nil)
	if err != nil {
		t.Fatal(err)
	}
	mustVerify(t, p)

	ctx := NewCtx(KindCmpNode).Set("curr_socket", 2).Set("shuffler_socket", 2)
	if got, _ := Exec(p, ctx, nil); got != 1 {
		t.Errorf("same socket: got %d, want 1", got)
	}
	ctx.Set("curr_socket", 5)
	if got, _ := Exec(p, ctx, nil); got != 0 {
		t.Errorf("cross socket: got %d, want 0", got)
	}
}

func TestAssembleWithMaps(t *testing.T) {
	m := NewArrayMap("hits", 8, 4)
	src := `
		stw   [rfp-4], 0
		ldmap r1, hits
		mov   r2, rfp
		add   r2, -4
		mov   r3, 1
		call  map_add
		mov   r0, 0
		exit
	`
	p, err := Assemble("hits", KindLockAcquired, src, map[string]Map{"hits": m})
	if err != nil {
		t.Fatal(err)
	}
	mustVerify(t, p)
	for i := 0; i < 3; i++ {
		if _, err := Exec(p, NewCtx(KindLockAcquired), nil); err != nil {
			t.Fatal(err)
		}
	}
	if got := m.At(0)[0]; got != 3 {
		t.Errorf("hits = %d, want 3", got)
	}
}

func TestAssembleAllALUAndJumps(t *testing.T) {
	src := `
		mov r2, 10
		add r2, 5
		sub r2, 1
		mul r2, 2
		div r2, 7      ; 28/7 = 4
		mod r2, 3      ; 4%3 = 1
		or  r2, 8      ; 9
		and r2, 13     ; 9
		xor r2, 1      ; 8
		lsh r2, 1      ; 16
		rsh r2, 2      ; 4
		arsh r2, 1     ; 2
		neg r2         ; -2
		neg r2         ; 2
		mov r3, r2
		jge r3, 2, ok
		mov r0, 0
		exit
	ok:
		jset r3, 2, ok2
		mov r0, 0
		exit
	ok2:
		mov r0, r3
		exit
	`
	p, err := Assemble("alu", KindLockAcquire, src, nil)
	if err != nil {
		t.Fatal(err)
	}
	mustVerify(t, p)
	if got, err := Exec(p, NewCtx(KindLockAcquire), nil); err != nil || got != 2 {
		t.Errorf("got %d, %v; want 2", got, err)
	}
}

func TestAssembleComments(t *testing.T) {
	src := "mov r0, 1 // trailing\n; full line\nexit ; done\n"
	p, err := Assemble("c", KindLockAcquire, src, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Insns) != 2 {
		t.Errorf("got %d insns, want 2", len(p.Insns))
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"bad-mnemonic", "frobnicate r1, 2\nexit", "unknown mnemonic"},
		{"bad-register", "mov r99, 2\nexit", "bad register"},
		{"bad-helper", "call not_a_helper\nexit", "unknown helper"},
		{"bad-map", "ldmap r1, nope\nexit", "unknown map"},
		{"bad-label", "ja missing\nexit", "undefined label"},
		{"dup-label", "x:\nmov r0,0\nx:\nexit", "duplicate label"},
		{"bad-mem", "ldxdw r1, r2+8\nexit", "bad memory operand"},
		{"bad-imm", "mov r1, banana\nexit", "bad operand"},
		{"exit-operands", "exit r0", "takes no operands"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Assemble(tc.name, KindLockAcquire, tc.src, nil)
			if err == nil {
				t.Fatal("want error")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestDisassemblyRoundTrip(t *testing.T) {
	m := NewArrayMap("m", 8, 1)
	p := NewBuilder("rt", KindLockAcquired).
		StoreStackImm(OpStW, -4, 0).
		LoadMapPtr(R1, m).
		MovReg(R2, RFP).
		AddImm(R2, -4).
		Call(HelperMapLookup).
		JmpImm(OpJeqImm, R0, 0, "out").
		Raw(Instruction{Op: OpLdxDW, Dst: R3, Src: R0, Off: 0}).
		ReturnReg(R3).
		Label("out").
		ReturnImm(0).
		MustProgram()
	text := p.String()
	for _, want := range []string{"ldmap", "call map_lookup", "jeq r0, 0", "exit", "stw"} {
		if !strings.Contains(text, want) {
			t.Errorf("disassembly missing %q:\n%s", want, text)
		}
	}
}

func TestAssembleNumericCtxOffset(t *testing.T) {
	// Numeric offsets are accepted where field names are unknown.
	f, _ := LayoutFor(KindCmpNode).FieldByName("queue_len")
	src := "ldxdw r2, [r1+" + itoa(f.Off) + "]\nmov r0, r2\nexit"
	p, err := Assemble("num", KindCmpNode, src, nil)
	if err != nil {
		t.Fatal(err)
	}
	mustVerify(t, p)
	ctx := NewCtx(KindCmpNode).Set("queue_len", 42)
	if got, _ := Exec(p, ctx, nil); got != 42 {
		t.Errorf("got %d, want 42", got)
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b []byte
	for v > 0 {
		b = append([]byte{byte('0' + v%10)}, b...)
		v /= 10
	}
	return string(b)
}
