package policy

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"concord/internal/faultinject"
)

// ErrNotVerified is returned when executing a program that has not passed
// the verifier. The framework never does this; the check is
// defense-in-depth for direct VM users.
var ErrNotVerified = errors.New("policy: program has not been verified")

// RuntimeError reports a fault during execution. For a verified program
// every RuntimeError indicates a bug in the verifier or VM (they are the
// "impossible" paths); the framework reacts by detaching the policy and
// falling back to default behaviour, the runtime analogue of the paper's
// safety checks.
type RuntimeError struct {
	Name string
	PC   int
	Msg  string
}

// Error implements error.
func (e *RuntimeError) Error() string {
	return fmt.Sprintf("policy vm: program %q: pc %d: %s", e.Name, e.PC, e.Msg)
}

// rtVal is a runtime register value with its dynamic type. Along any
// single execution path the dynamic type equals the verifier's static
// type, so these checks can only fire on verifier bugs.
type rtVal struct {
	v      uint64   // scalar value, or pointer offset
	typ    regType  // dynamic type
	mapIdx int      // for map pointers/values
	val    []uint64 // backing words for tPtrMapValue
}

// VM executes verified programs. A VM is stateless and safe for
// concurrent use; per-run state lives on the goroutine stack.
type VM struct{}

// Exec runs a verified program against a hook context and environment,
// returning the program's R0.
func (VM) Exec(p *Program, ctx *Ctx, env Env) (uint64, error) {
	if !p.verified {
		return 0, ErrNotVerified
	}
	if env == nil {
		env = DefaultEnv
	}
	if ctx == nil || ctx.Layout.Kind != p.Kind {
		return 0, &RuntimeError{Name: p.Name, PC: -1, Msg: "context kind mismatch"}
	}

	var (
		regs  [NumRegs]rtVal
		stack [StackSize]byte
	)
	regs[R1] = rtVal{typ: tPtrCtx}
	regs[RFP] = rtVal{typ: tPtrStack}

	st := &p.stats
	st.Runs.Add(1)
	if faultinject.PolicyTrap.Enabled() {
		if flt, ok := faultinject.PolicyTrap.Fire(); ok {
			st.Faults.Add(1)
			return 0, &RuntimeError{Name: p.Name, PC: -1,
				Msg: fmt.Sprintf("injected trap: %v", flt.Err)}
		}
	}
	var steps int
	defer func() { st.Insns.Add(int64(steps)) }()

	fault := func(pc int, format string, args ...any) (uint64, error) {
		st.Faults.Add(1)
		return 0, &RuntimeError{Name: p.Name, PC: pc, Msg: fmt.Sprintf(format, args...)}
	}

	n := len(p.Insns)
	// Verified programs are loop-free: each instruction executes at most
	// once, so n iterations bound the run. Keep an explicit budget as a
	// final backstop.
	for pc := 0; pc < n; steps++ {
		if steps > n {
			return fault(pc, "step budget exceeded (verifier bug)")
		}
		in := p.Insns[pc]

		switch {
		case in.Op == OpExit:
			if regs[R0].typ != tScalar {
				return fault(pc, "exit with non-scalar R0")
			}
			return regs[R0].v, nil

		case in.Op == OpCall:
			r0, err := execHelper(p, HelperID(in.Imm), &regs, stack[:], env)
			if err != nil {
				return fault(pc, "%v", err)
			}
			regs[R0] = r0
			for r := R1; r <= R5; r++ {
				regs[r] = rtVal{}
			}
			pc++

		case in.Op == OpLoadMapPtr:
			regs[in.Dst] = rtVal{typ: tConstMapPtr, mapIdx: int(in.Imm)}
			pc++

		case in.Op == OpJa:
			pc += 1 + int(in.Off)

		case in.Op.IsCondJump():
			a := regs[in.Dst]
			var b uint64
			if in.Op.UsesSrcReg() {
				b = regs[in.Src].v
			} else {
				b = uint64(in.Imm)
			}
			// Null checks compare the pointer representation: a null map
			// value has a nil backing slice.
			av := a.v
			if a.typ == tPtrMapValueOrNull {
				if a.val == nil {
					av = 0
				} else {
					av = 1 // any non-zero stand-in
				}
			}
			if condTaken(in.Op, av, b) {
				// Refine maybe-null pointers exactly as the verifier did.
				if a.typ == tPtrMapValueOrNull {
					regs[in.Dst] = refineNull(a, in.Op == OpJneImm)
				}
				pc += 1 + int(in.Off)
			} else {
				if a.typ == tPtrMapValueOrNull {
					regs[in.Dst] = refineNull(a, in.Op == OpJeqImm)
				}
				pc++
			}

		case in.Op.IsLoad():
			ptr := regs[in.Src]
			size := in.Op.AccessSize()
			var v uint64
			switch ptr.typ {
			case tPtrStack:
				idx := int(int64(ptr.v)) + int(in.Off) + StackSize
				if idx < 0 || idx+size > StackSize {
					return fault(pc, "stack load out of bounds")
				}
				v = loadBytes(stack[idx:idx+size], size)
			case tPtrCtx:
				off := int(int64(ptr.v)) + int(in.Off)
				if off%8 != 0 || off/8 >= len(ctx.Words) || off < 0 {
					return fault(pc, "ctx load out of bounds")
				}
				v = ctx.Words[off/8]
			case tPtrMapValue:
				off := int(int64(ptr.v)) + int(in.Off)
				if size != 8 || off%8 != 0 || off < 0 || off/8 >= len(ptr.val) {
					return fault(pc, "map value load out of bounds")
				}
				v = atomic.LoadUint64(&ptr.val[off/8])
			default:
				return fault(pc, "load through %s", ptr.typ)
			}
			regs[in.Dst] = rtVal{typ: tScalar, v: v}
			pc++

		case in.Op.IsStore():
			ptr := regs[in.Dst]
			size := in.Op.AccessSize()
			var v uint64
			if in.Op.UsesSrcReg() {
				v = regs[in.Src].v
			} else {
				v = uint64(in.Imm)
			}
			switch ptr.typ {
			case tPtrStack:
				idx := int(int64(ptr.v)) + int(in.Off) + StackSize
				if idx < 0 || idx+size > StackSize {
					return fault(pc, "stack store out of bounds")
				}
				storeBytes(stack[idx:idx+size], size, v)
			case tPtrMapValue:
				off := int(int64(ptr.v)) + int(in.Off)
				if size != 8 || off%8 != 0 || off < 0 || off/8 >= len(ptr.val) {
					return fault(pc, "map value store out of bounds")
				}
				atomic.StoreUint64(&ptr.val[off/8], v)
			default:
				return fault(pc, "store through %s", ptr.typ)
			}
			pc++

		case in.Op.IsALU():
			var src rtVal
			if in.Op.UsesSrcReg() {
				src = regs[in.Src]
			} else {
				src = rtVal{typ: tScalar, v: uint64(in.Imm)}
			}
			switch in.Op {
			case OpMovImm, OpMovReg:
				regs[in.Dst] = src
			default:
				dst := regs[in.Dst]
				if dst.typ.isPointer() {
					// Verified pointer arithmetic: adjust the offset.
					delta := int64(src.v)
					if in.Op == OpSubImm || in.Op == OpSubReg {
						delta = -delta
					}
					dst.v = uint64(int64(dst.v) + delta)
					regs[in.Dst] = dst
				} else {
					regs[in.Dst] = rtVal{typ: tScalar, v: aluExec(in.Op, dst.v, src.v)}
				}
			}
			pc++

		default:
			return fault(pc, "unhandled opcode %s", in.Op)
		}
	}
	return fault(n-1, "fell off the end (verifier bug)")
}

func refineNull(a rtVal, nonNull bool) rtVal {
	if nonNull {
		return rtVal{typ: tPtrMapValue, mapIdx: a.mapIdx, val: a.val}
	}
	return rtVal{typ: tScalar, v: 0}
}

func condTaken(op Op, a, b uint64) bool {
	switch op {
	case OpJeqImm, OpJeqReg:
		return a == b
	case OpJneImm, OpJneReg:
		return a != b
	case OpJgtImm, OpJgtReg:
		return a > b
	case OpJgeImm, OpJgeReg:
		return a >= b
	case OpJltImm, OpJltReg:
		return a < b
	case OpJleImm, OpJleReg:
		return a <= b
	case OpJsgtImm, OpJsgtReg:
		return int64(a) > int64(b)
	case OpJsgeImm, OpJsgeReg:
		return int64(a) >= int64(b)
	case OpJsltImm, OpJsltReg:
		return int64(a) < int64(b)
	case OpJsleImm, OpJsleReg:
		return int64(a) <= int64(b)
	case OpJsetImm, OpJsetReg:
		return a&b != 0
	}
	return false
}

func aluExec(op Op, a, b uint64) uint64 {
	switch op {
	case OpAddImm, OpAddReg:
		return a + b
	case OpSubImm, OpSubReg:
		return a - b
	case OpMulImm, OpMulReg:
		return a * b
	case OpDivImm, OpDivReg:
		if b == 0 {
			return 0
		}
		return a / b
	case OpModImm, OpModReg:
		if b == 0 {
			return a
		}
		return a % b
	case OpAndImm, OpAndReg:
		return a & b
	case OpOrImm, OpOrReg:
		return a | b
	case OpXorImm, OpXorReg:
		return a ^ b
	case OpLshImm, OpLshReg:
		return a << (b & 63)
	case OpRshImm, OpRshReg:
		return a >> (b & 63)
	case OpArshImm, OpArshReg:
		return uint64(int64(a) >> (b & 63))
	case OpNeg:
		return -a
	}
	return 0
}

func loadBytes(b []byte, size int) uint64 {
	switch size {
	case 1:
		return uint64(b[0])
	case 2:
		return uint64(binary.LittleEndian.Uint16(b))
	case 4:
		return uint64(binary.LittleEndian.Uint32(b))
	default:
		return binary.LittleEndian.Uint64(b)
	}
}

func storeBytes(b []byte, size int, v uint64) {
	switch size {
	case 1:
		b[0] = byte(v)
	case 2:
		binary.LittleEndian.PutUint16(b, uint16(v))
	case 4:
		binary.LittleEndian.PutUint32(b, uint32(v))
	default:
		binary.LittleEndian.PutUint64(b, v)
	}
}

// stackRegion extracts an initialized stack region addressed by a stack
// pointer register (verified in bounds).
func stackRegion(stack []byte, ptr rtVal, size int) ([]byte, error) {
	idx := int(int64(ptr.v)) + StackSize
	if idx < 0 || idx+size > StackSize {
		return nil, fmt.Errorf("stack buffer out of bounds")
	}
	return stack[idx : idx+size], nil
}

func execHelper(p *Program, h HelperID, regs *[NumRegs]rtVal, stack []byte, env Env) (rtVal, error) {
	p.stats.HelperCalls.Add(1)
	// Fault-injection sites, compiled to nil-checks when disarmed. Both
	// the interpreter and native-compiled programs funnel helper calls
	// through here, so one site covers both execution paths.
	if faultinject.PolicyHelper.Enabled() {
		if flt, ok := faultinject.PolicyHelper.Fire(); ok {
			if flt.Delay > 0 {
				time.Sleep(flt.Delay)
			}
			return rtVal{}, fmt.Errorf("helper %s: %w", h, flt.Err)
		}
	}
	if h >= HelperMapLookup && h <= HelperMapAdd {
		p.stats.MapOps.Add(1)
		if faultinject.PolicyMapOp.Enabled() {
			if flt, ok := faultinject.PolicyMapOp.Fire(); ok {
				return rtVal{}, fmt.Errorf("map op %s: %w", h, flt.Err)
			}
		}
	}
	scalar := func(v uint64) rtVal { return rtVal{typ: tScalar, v: v} }
	mapArg := func() (Map, int, error) {
		r1 := regs[R1]
		if r1.typ != tConstMapPtr || r1.mapIdx >= len(p.Maps) {
			return nil, 0, fmt.Errorf("%s: R1 is not a map", h)
		}
		return p.Maps[r1.mapIdx], r1.mapIdx, nil
	}

	switch h {
	case HelperMapLookup:
		m, idx, err := mapArg()
		if err != nil {
			return rtVal{}, err
		}
		key, err := stackRegion(stack, regs[R2], m.KeySize())
		if err != nil {
			return rtVal{}, err
		}
		return rtVal{typ: tPtrMapValueOrNull, mapIdx: idx, val: m.Lookup(key, env.CPU())}, nil

	case HelperMapUpdate:
		m, _, err := mapArg()
		if err != nil {
			return rtVal{}, err
		}
		key, err := stackRegion(stack, regs[R2], m.KeySize())
		if err != nil {
			return rtVal{}, err
		}
		raw, err := stackRegion(stack, regs[R3], m.ValueSize())
		if err != nil {
			return rtVal{}, err
		}
		// Every builtin map implements rawUpdater, decoding the stack
		// bytes straight into its value arena — the hook data plane
		// stays allocation-free. The word-slice fallback only runs for
		// custom Map implementations.
		if ru, ok := m.(rawUpdater); ok {
			if err := ru.UpdateRaw(key, raw, env.CPU()); err != nil {
				return scalar(^uint64(0)), nil // -1, errno style
			}
			return scalar(0), nil
		}
		words := make([]uint64, m.ValueSize()/8)
		for i := range words {
			words[i] = binary.LittleEndian.Uint64(raw[i*8:])
		}
		if err := m.Update(key, words, env.CPU()); err != nil {
			return scalar(^uint64(0)), nil // -1, errno style
		}
		return scalar(0), nil

	case HelperMapDelete:
		m, _, err := mapArg()
		if err != nil {
			return rtVal{}, err
		}
		key, err := stackRegion(stack, regs[R2], m.KeySize())
		if err != nil {
			return rtVal{}, err
		}
		if err := m.Delete(key); err != nil {
			return scalar(^uint64(0)), nil
		}
		return scalar(0), nil

	case HelperMapAdd:
		m, _, err := mapArg()
		if err != nil {
			return rtVal{}, err
		}
		key, err := stackRegion(stack, regs[R2], m.KeySize())
		if err != nil {
			return rtVal{}, err
		}
		var v []uint64
		if ml, ok := m.(interface {
			LookupOrInit(key []byte, cpu int) []uint64
		}); ok {
			// Atomic insert-if-absent so counting policies need no
			// userspace priming and first touches cannot race.
			v = ml.LookupOrInit(key, env.CPU())
		} else {
			v = m.Lookup(key, env.CPU())
		}
		if v == nil {
			return scalar(^uint64(0)), nil
		}
		atomic.AddUint64(&v[0], regs[R3].v)
		return scalar(0), nil

	case HelperKtimeNS:
		return scalar(uint64(env.NowNS())), nil
	case HelperCPU:
		return scalar(uint64(env.CPU())), nil
	case HelperNUMANode:
		return scalar(uint64(env.NUMANode())), nil
	case HelperTaskID:
		return scalar(uint64(env.TaskID())), nil
	case HelperTaskPrio:
		return scalar(uint64(env.TaskPriority())), nil
	case HelperRand:
		return scalar(env.Rand()), nil
	case HelperTrace:
		env.Trace(regs[R1].v)
		return scalar(0), nil
	case HelperLockStats:
		// Optional-interface probe: environments without windowed
		// profile visibility read 0, keeping profile-gated policies
		// runnable (on their low-contention branch) everywhere.
		if r, ok := env.(LockStatReader); ok {
			return scalar(r.LockStat(regs[R1].v)), nil
		}
		return scalar(0), nil
	case HelperOCCSet:
		// Same optional-interface shape as lock_stats_read: without a
		// routed lock the helper reports "no change", so occ-gating
		// policies run (inertly) on any environment.
		if r, ok := env.(OCCSetter); ok {
			return scalar(r.OCCSet(regs[R1].v)), nil
		}
		return scalar(0), nil
	}
	return rtVal{}, fmt.Errorf("unknown helper %d", int64(h))
}

// Exec is a package-level convenience running p on the shared stateless VM.
func Exec(p *Program, ctx *Ctx, env Env) (uint64, error) {
	return VM{}.Exec(p, ctx, env)
}
