// Package policy implements cBPF, the verified policy bytecode that plays
// the role eBPF plays in the paper's Concord prototype (§4): userspace
// expresses a lock policy as a small program; a static verifier proves it
// safe (bounded execution, typed memory access, whitelisted helpers); and
// the framework then runs it at lock hook points.
//
// The machine is a deliberately close cousin of eBPF:
//
//   - eleven 64-bit registers, R0..R10; R10 is the read-only frame pointer
//   - a 512-byte per-invocation stack
//   - a read-only context record describing the hook invocation
//   - maps (array / hash / per-CPU array) as the only persistent state
//   - helper calls as the only way to reach the outside world
//
// Like classic eBPF (pre-5.3), all jumps must be *forward*, so every
// verified program is loop-free and executes each instruction at most
// once; bounded loops are produced by compile-time unrolling in the DSL
// front end. This makes the termination argument trivial, which is the
// property the paper's safety story leans on.
package policy

import "fmt"

// Reg identifies one of the eleven cBPF registers.
type Reg uint8

// Register names. R0 holds return values, R1..R5 are caller-saved helper
// arguments, R6..R9 are callee-saved, R10 is the frame pointer.
const (
	R0 Reg = iota
	R1
	R2
	R3
	R4
	R5
	R6
	R7
	R8
	R9
	R10 // frame pointer (read-only)

	// NumRegs is the number of architectural registers.
	NumRegs = 11
	// RFP is an alias for the frame pointer.
	RFP = R10
)

// Valid reports whether r names an architectural register.
func (r Reg) Valid() bool { return r < NumRegs }

// String implements fmt.Stringer.
func (r Reg) String() string {
	if r == RFP {
		return "rfp"
	}
	return fmt.Sprintf("r%d", uint8(r))
}

// Op is a cBPF opcode.
type Op uint16

// Opcode space. The *Imm forms take the immediate operand from
// Instruction.Imm; the *Reg forms take it from Instruction.Src.
const (
	OpInvalid Op = iota

	// ALU64 operations: dst = dst <op> (src|imm).
	OpMovImm
	OpMovReg
	OpAddImm
	OpAddReg
	OpSubImm
	OpSubReg
	OpMulImm
	OpMulReg
	OpDivImm // unsigned; division by zero yields 0, as in eBPF
	OpDivReg
	OpModImm // unsigned; modulo by zero leaves dst unchanged, as in eBPF
	OpModReg
	OpAndImm
	OpAndReg
	OpOrImm
	OpOrReg
	OpXorImm
	OpXorReg
	OpLshImm // shift amounts are masked to 6 bits
	OpLshReg
	OpRshImm
	OpRshReg
	OpArshImm
	OpArshReg
	OpNeg

	// Jumps. Off is relative to the *next* instruction; the verifier
	// requires Off >= 0 (forward-only) except that Ja may also be 0.
	OpJa
	OpJeqImm
	OpJeqReg
	OpJneImm
	OpJneReg
	OpJgtImm // unsigned comparisons
	OpJgtReg
	OpJgeImm
	OpJgeReg
	OpJltImm
	OpJltReg
	OpJleImm
	OpJleReg
	OpJsgtImm // signed comparisons
	OpJsgtReg
	OpJsgeImm
	OpJsgeReg
	OpJsltImm
	OpJsltReg
	OpJsleImm
	OpJsleReg
	OpJsetImm // jump if dst & operand != 0
	OpJsetReg

	// Memory. Loads: dst = *(size*)(src + off). Stores:
	// *(size*)(dst + off) = src (Stx) or = imm (St).
	OpLdxB
	OpLdxH
	OpLdxW
	OpLdxDW
	OpStxB
	OpStxH
	OpStxW
	OpStxDW
	OpStB
	OpStH
	OpStW
	OpStDW

	// OpLoadMapPtr loads a reference to program map Imm into Dst
	// (the analogue of eBPF's BPF_LD_IMM64 with BPF_PSEUDO_MAP_FD).
	OpLoadMapPtr

	// OpCall invokes helper Imm. Arguments are R1..R5, result in R0,
	// R1..R5 are clobbered.
	OpCall
	// OpExit ends the program; R0 is the return value.
	OpExit

	opMax
)

var opNames = map[Op]string{
	OpMovImm: "mov", OpMovReg: "mov",
	OpAddImm: "add", OpAddReg: "add",
	OpSubImm: "sub", OpSubReg: "sub",
	OpMulImm: "mul", OpMulReg: "mul",
	OpDivImm: "div", OpDivReg: "div",
	OpModImm: "mod", OpModReg: "mod",
	OpAndImm: "and", OpAndReg: "and",
	OpOrImm: "or", OpOrReg: "or",
	OpXorImm: "xor", OpXorReg: "xor",
	OpLshImm: "lsh", OpLshReg: "lsh",
	OpRshImm: "rsh", OpRshReg: "rsh",
	OpArshImm: "arsh", OpArshReg: "arsh",
	OpNeg:    "neg",
	OpJa:     "ja",
	OpJeqImm: "jeq", OpJeqReg: "jeq",
	OpJneImm: "jne", OpJneReg: "jne",
	OpJgtImm: "jgt", OpJgtReg: "jgt",
	OpJgeImm: "jge", OpJgeReg: "jge",
	OpJltImm: "jlt", OpJltReg: "jlt",
	OpJleImm: "jle", OpJleReg: "jle",
	OpJsgtImm: "jsgt", OpJsgtReg: "jsgt",
	OpJsgeImm: "jsge", OpJsgeReg: "jsge",
	OpJsltImm: "jslt", OpJsltReg: "jslt",
	OpJsleImm: "jsle", OpJsleReg: "jsle",
	OpJsetImm: "jset", OpJsetReg: "jset",
	OpLdxB: "ldxb", OpLdxH: "ldxh", OpLdxW: "ldxw", OpLdxDW: "ldxdw",
	OpStxB: "stxb", OpStxH: "stxh", OpStxW: "stxw", OpStxDW: "stxdw",
	OpStB: "stb", OpStH: "sth", OpStW: "stw", OpStDW: "stdw",
	OpLoadMapPtr: "ldmap",
	OpCall:       "call",
	OpExit:       "exit",
}

// String implements fmt.Stringer.
func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", uint16(o))
}

// Valid reports whether o names a real opcode.
func (o Op) Valid() bool { return o > OpInvalid && o < opMax }

// IsALU reports whether o is an arithmetic/logic operation.
func (o Op) IsALU() bool { return o >= OpMovImm && o <= OpNeg }

// IsJump reports whether o is a (conditional or unconditional) jump.
func (o Op) IsJump() bool { return o >= OpJa && o <= OpJsetReg }

// IsCondJump reports whether o is a conditional jump.
func (o Op) IsCondJump() bool { return o > OpJa && o <= OpJsetReg }

// IsLoad reports whether o is a memory load.
func (o Op) IsLoad() bool { return o >= OpLdxB && o <= OpLdxDW }

// IsStore reports whether o is a memory store (register or immediate).
func (o Op) IsStore() bool { return o >= OpStxB && o <= OpStDW }

// UsesSrcReg reports whether the operand comes from Src rather than Imm.
func (o Op) UsesSrcReg() bool {
	switch o {
	case OpMovReg, OpAddReg, OpSubReg, OpMulReg, OpDivReg, OpModReg,
		OpAndReg, OpOrReg, OpXorReg, OpLshReg, OpRshReg, OpArshReg,
		OpJeqReg, OpJneReg, OpJgtReg, OpJgeReg, OpJltReg, OpJleReg,
		OpJsgtReg, OpJsgeReg, OpJsltReg, OpJsleReg, OpJsetReg,
		OpLdxB, OpLdxH, OpLdxW, OpLdxDW,
		OpStxB, OpStxH, OpStxW, OpStxDW:
		return true
	}
	return false
}

// AccessSize returns the width in bytes of a memory access opcode, or 0.
func (o Op) AccessSize() int {
	switch o {
	case OpLdxB, OpStxB, OpStB:
		return 1
	case OpLdxH, OpStxH, OpStH:
		return 2
	case OpLdxW, OpStxW, OpStW:
		return 4
	case OpLdxDW, OpStxDW, OpStDW:
		return 8
	}
	return 0
}

// Instruction is one cBPF instruction.
type Instruction struct {
	Op  Op
	Dst Reg
	Src Reg
	Off int16 // jump displacement or memory offset
	Imm int64
}

// String renders the instruction in assembler syntax.
func (in Instruction) String() string {
	switch {
	case in.Op == OpExit:
		return "exit"
	case in.Op == OpCall:
		if name, ok := helperNames[HelperID(in.Imm)]; ok {
			return fmt.Sprintf("call %s", name)
		}
		return fmt.Sprintf("call %d", in.Imm)
	case in.Op == OpLoadMapPtr:
		return fmt.Sprintf("ldmap %s, %d", in.Dst, in.Imm)
	case in.Op == OpJa:
		return fmt.Sprintf("ja %+d", in.Off)
	case in.Op == OpNeg:
		return fmt.Sprintf("neg %s", in.Dst)
	case in.Op.IsCondJump():
		if in.Op.UsesSrcReg() {
			return fmt.Sprintf("%s %s, %s, %+d", in.Op, in.Dst, in.Src, in.Off)
		}
		return fmt.Sprintf("%s %s, %d, %+d", in.Op, in.Dst, in.Imm, in.Off)
	case in.Op.IsLoad():
		return fmt.Sprintf("%s %s, [%s%+d]", in.Op, in.Dst, in.Src, in.Off)
	case in.Op.IsStore():
		if in.Op.UsesSrcReg() {
			return fmt.Sprintf("%s [%s%+d], %s", in.Op, in.Dst, in.Off, in.Src)
		}
		return fmt.Sprintf("%s [%s%+d], %d", in.Op, in.Dst, in.Off, in.Imm)
	case in.Op.IsALU():
		if in.Op.UsesSrcReg() {
			return fmt.Sprintf("%s %s, %s", in.Op, in.Dst, in.Src)
		}
		return fmt.Sprintf("%s %s, %d", in.Op, in.Dst, in.Imm)
	}
	return fmt.Sprintf("%s dst=%s src=%s off=%d imm=%d", in.Op, in.Dst, in.Src, in.Off, in.Imm)
}

// Architectural limits, mirroring eBPF's.
const (
	// StackSize is the per-invocation stack size in bytes.
	StackSize = 512
	// MaxInsns is the maximum program length.
	MaxInsns = 4096
	// MaxMaps is the maximum number of maps a program may reference.
	MaxMaps = 16
)
