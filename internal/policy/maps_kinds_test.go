package policy

import "testing"

func TestPerCPUHashMapBasics(t *testing.T) {
	m := NewPerCPUHashMap("p", 8, 8, 4, 3)
	k := []byte("aaaaaaaa")
	if m.Lookup(k, 0) != nil {
		t.Error("lookup on empty map")
	}
	if m.Lookup(k, 3) != nil {
		t.Error("cpu out of range")
	}
	if err := m.Update(k, []uint64{5}, 1); err != nil {
		t.Fatal(err)
	}
	// The updated CPU sees the value; the others see a zeroed stripe
	// (a fresh insert zeroes every CPU before publishing).
	if v := m.Lookup(k, 1); v == nil || v[0] != 5 {
		t.Errorf("cpu1 = %v, want [5]", v)
	}
	if v := m.Lookup(k, 0); v == nil || v[0] != 0 {
		t.Errorf("cpu0 should be zero-initialized: %v", v)
	}
	if err := m.Update(k, []uint64{7}, 2); err != nil {
		t.Fatal(err)
	}
	if got := m.Sum(k); got != 12 {
		t.Errorf("Sum = %d, want 12", got)
	}
	if m.Len() != 1 {
		t.Errorf("Len = %d, want 1", m.Len())
	}
	// Delete removes the key from every CPU at once.
	if err := m.Delete(k); err != nil {
		t.Fatal(err)
	}
	for cpu := 0; cpu < 3; cpu++ {
		if m.Lookup(k, cpu) != nil {
			t.Errorf("cpu%d still sees deleted key", cpu)
		}
	}
	if err := m.Update([]byte("short"), []uint64{0}, 0); err != ErrKeySize {
		t.Errorf("bad key: %v, want ErrKeySize", err)
	}
	if err := m.Update(k, []uint64{0}, 3); err != ErrBadCPU {
		t.Errorf("cpu out of range: %v, want ErrBadCPU", err)
	}
	if err := m.Update(k, []uint64{0}, -1); err != ErrBadCPU {
		t.Errorf("negative cpu: %v, want ErrBadCPU", err)
	}
}

// TestPerCPUHashMapReinsertZeroes pins the insert protocol: a slot
// recycled via tombstone reuse must come back fully zeroed on every
// stripe, not carry the previous tenant's counters.
func TestPerCPUHashMapReinsertZeroes(t *testing.T) {
	m := NewPerCPUHashMap("p", 8, 8, 2, 2)
	k := []byte("aaaaaaaa")
	for round := 0; round < 3; round++ {
		if v := m.LookupOrInit(k, 0); v == nil || v[0] != 0 {
			t.Fatalf("round %d: fresh entry = %v, want [0]", round, v)
		}
		if err := m.Update(k, []uint64{99}, 1); err != nil {
			t.Fatal(err)
		}
		if err := m.Delete(k); err != nil {
			t.Fatal(err)
		}
	}
}

func TestLockedHashMapBasics(t *testing.T) {
	m := NewLockedHashMap("l", 8, 8, 2)
	k1 := []byte("aaaaaaaa")
	k2 := []byte("bbbbbbbb")
	k3 := []byte("cccccccc")
	if err := m.Update(k1, []uint64{1}, 0); err != nil {
		t.Fatal(err)
	}
	if err := m.Update(k2, []uint64{2}, 0); err != nil {
		t.Fatal(err)
	}
	if err := m.Update(k3, []uint64{3}, 0); err != ErrMapFull {
		t.Errorf("over capacity: %v, want ErrMapFull", err)
	}
	if v := m.Lookup(k1, 0); v == nil || v[0] != 1 {
		t.Errorf("k1 = %v, want [1]", v)
	}
	if err := m.Delete(k1); err != nil {
		t.Fatal(err)
	}
	if err := m.Delete(k1); err != ErrNoSuchKey {
		t.Errorf("double delete: %v, want ErrNoSuchKey", err)
	}
	// The freed slot is recycled for the next insert.
	if err := m.Update(k3, []uint64{3}, 0); err != nil {
		t.Fatal(err)
	}
	if m.Len() != 2 {
		t.Errorf("Len = %d, want 2", m.Len())
	}
	var sum uint64
	m.Range(func(_ []byte, v []uint64) bool { sum += v[0]; return true })
	if sum != 5 {
		t.Errorf("Range sum = %d, want 5", sum)
	}
	st := m.MapStats()
	if st.Occupancy != 2 {
		t.Errorf("Occupancy = %d, want 2", st.Occupancy)
	}
}

func TestMapKindOf(t *testing.T) {
	cases := []struct {
		m    Map
		want string
	}{
		{NewArrayMap("a", 8, 1), "array"},
		{NewPerCPUArrayMap("pa", 8, 1, 2), "percpu_array"},
		{NewHashMap("h", 8, 8, 1), "hash"},
		{NewPerCPUHashMap("ph", 8, 8, 1, 2), "percpu_hash"},
		{NewLockedHashMap("lh", 8, 8, 1), "locked_hash"},
	}
	for _, tc := range cases {
		if got := MapKindOf(tc.m); got != tc.want {
			t.Errorf("MapKindOf(%s) = %q, want %q", tc.m.Name(), got, tc.want)
		}
	}
}

// TestHashMapTombstoneChurn regression-tests empty-slot exhaustion:
// deletes only ever mint tombstones, so after enough distinct-key
// insert+delete churn a probe scan can cross the whole table without
// seeing a single empty slot. Inserts must then claim a tombstone, not
// fail with ErrMapFull while the map is nearly empty — the exact shape
// of a task-id-keyed profiler policy under task churn.
func TestHashMapTombstoneChurn(t *testing.T) {
	for _, tc := range []struct {
		name string
		m    interface {
			Map
			Len() int
		}
	}{
		{"hash", NewHashMap("churn", 4, 8, 4)},
		{"percpu_hash", NewPerCPUHashMap("churn", 4, 8, 4, 2)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			m := tc.m
			// Two long-lived entries that must survive the churn.
			for i := uint32(0); i < 2; i++ {
				if err := m.Update(key32(i), []uint64{uint64(i)}, 0); err != nil {
					t.Fatal(err)
				}
			}
			// Churn distinct keys far past capacity (maxEntries 4 →
			// table capacity 8): every empty slot is eventually spent.
			for i := uint32(100); i < 400; i++ {
				if err := m.Update(key32(i), []uint64{7}, 0); err != nil {
					t.Fatalf("churn insert %d: %v (live=%d)", i, err, m.Len())
				}
				if v := m.Lookup(key32(i), 0); v == nil {
					t.Fatalf("churn key %d vanished after insert", i)
				}
				if err := m.Delete(key32(i)); err != nil {
					t.Fatalf("churn delete %d: %v", i, err)
				}
			}
			for i := uint32(0); i < 2; i++ {
				if v := m.Lookup(key32(i), 0); v == nil || v[0] != uint64(i) {
					t.Errorf("long-lived key %d = %v, want [%d]", i, v, i)
				}
			}
			if m.Len() != 2 {
				t.Errorf("Len = %d, want 2", m.Len())
			}
		})
	}
}

// TestHashMapStatsCounters drives collisions and retries observable
// through MapStats: a saturated small table must report insert-probe
// collisions, and occupancy must track live entries exactly.
func TestHashMapStatsCounters(t *testing.T) {
	m := NewHashMap("h", 4, 8, 16)
	for i := uint32(0); i < 16; i++ {
		if err := m.Update(key32(i), []uint64{1}, 0); err != nil {
			t.Fatal(err)
		}
	}
	st := m.MapStats()
	if st.Occupancy != 16 {
		t.Errorf("Occupancy = %d, want 16", st.Occupancy)
	}
	if st.Collisions == 0 {
		t.Error("a 50%-loaded table with 16 inserts should report some probe collisions")
	}
	for i := uint32(0); i < 16; i++ {
		if err := m.Delete(key32(i)); err != nil {
			t.Fatal(err)
		}
	}
	if st := m.MapStats(); st.Occupancy != 0 {
		t.Errorf("Occupancy after drain = %d, want 0", st.Occupancy)
	}
}
