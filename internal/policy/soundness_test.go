package policy

import (
	"math/rand"
	"testing"
)

// randInsn generates a random (usually garbage) instruction. The
// distribution is biased toward plausible programs so a useful fraction
// passes the verifier and exercises the VM.
func randInsn(r *rand.Rand, progLen, nMaps int) Instruction {
	op := Op(r.Intn(int(opMax)))
	in := Instruction{
		Op:  op,
		Dst: Reg(r.Intn(NumRegs + 1)), // occasionally invalid
		Src: Reg(r.Intn(NumRegs + 1)),
	}
	switch r.Intn(4) {
	case 0:
		in.Imm = int64(r.Intn(16))
	case 1:
		in.Imm = int64(r.Int63())
	case 2:
		in.Imm = -int64(r.Intn(1 << 16))
	default:
		in.Imm = int64(r.Intn(int(numHelpers) + 2))
	}
	switch r.Intn(4) {
	case 0:
		in.Off = int16(r.Intn(progLen + 2))
	case 1:
		in.Off = -int16(r.Intn(64))
	case 2:
		in.Off = int16(-8 * (1 + r.Intn(8))) // plausible stack offset
	default:
		in.Off = int16(8 * r.Intn(8)) // plausible ctx offset
	}
	if op == OpLoadMapPtr {
		in.Imm = int64(r.Intn(nMaps + 1))
	}
	return in
}

// TestVerifierSoundness is the core safety property of the whole
// framework: for arbitrary byte soup,
//
//  1. Verify never panics, and
//  2. if Verify accepts, execution completes without a runtime fault
//     for every context — i.e. verified policies cannot crash the
//     "kernel".
//
// 50k random programs of varying length; failures print a reproducer.
func TestVerifierSoundness(t *testing.T) {
	if testing.Short() {
		t.Skip("long fuzz-style test")
	}
	r := rand.New(rand.NewSource(20260704))
	kinds := []Kind{KindCmpNode, KindSkipShuffle, KindScheduleWaiter, KindLockAcquired}
	maps := []Map{
		NewArrayMap("a", 8, 4),
		NewHashMap("h", 8, 16, 32),
	}
	env := &TestEnv{CPUID: 3, NUMA: 1, Task: 42, Prio: 120}

	accepted := 0
	const total = 50_000
	for i := 0; i < total; i++ {
		n := 1 + r.Intn(24)
		p := &Program{
			Name: "fuzz",
			Kind: kinds[r.Intn(len(kinds))],
			Maps: maps,
		}
		for j := 0; j < n; j++ {
			p.Insns = append(p.Insns, randInsn(r, n, len(maps)))
		}

		func() {
			defer func() {
				if rec := recover(); rec != nil {
					t.Fatalf("verifier panicked on program %d: %v\n%s", i, rec, p)
				}
			}()
			if _, err := Verify(p); err != nil {
				return
			}
			accepted++
			ctx := NewCtx(p.Kind)
			// Random context contents must not matter for safety.
			for w := range ctx.Words {
				ctx.Words[w] = r.Uint64()
			}
			defer func() {
				if rec := recover(); rec != nil {
					t.Fatalf("VM panicked on verified program %d: %v\n%s", i, rec, p)
				}
			}()
			if _, err := Exec(p, ctx, env); err != nil {
				t.Fatalf("verified program %d faulted at runtime: %v\n%s", i, err, p)
			}
		}()
	}
	if accepted == 0 {
		t.Error("fuzzer never produced a verifiable program; generator too weak")
	}
	t.Logf("accepted %d/%d random programs; all executed cleanly", accepted, total)
}

// TestVerifierSoundnessStructured does the same with structured random
// programs (built through the Builder, so most verify) to push coverage
// into the VM rather than the verifier's rejection paths.
func TestVerifierSoundnessStructured(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	m := NewArrayMap("m", 16, 8)
	env := &TestEnv{}
	accepted := 0

	for i := 0; i < 5_000; i++ {
		b := NewBuilder("sfuzz", KindLockAcquired)
		b.MovReg(R6, R1)
		nOps := 1 + r.Intn(12)
		initialized := []Reg{R6}
		for j := 0; j < nOps; j++ {
			dst := Reg(r.Intn(5)) // R0..R4
			switch r.Intn(7) {
			case 0:
				b.MovImm(dst, int64(r.Intn(1024))-512)
				initialized = append(initialized, dst)
			case 1:
				src := initialized[r.Intn(len(initialized))]
				b.MovReg(dst, src)
				initialized = append(initialized, dst)
			case 2:
				b.LoadCtx(dst, R6, "lock_id")
				initialized = append(initialized, dst)
			case 3:
				off := int16(-8 * (1 + r.Intn(4)))
				b.StoreStackImm(OpStDW, off, int64(r.Intn(100)))
				b.LoadStack(OpLdxDW, dst, off)
				initialized = append(initialized, dst)
			case 4:
				src := initialized[r.Intn(len(initialized))]
				ops := []Op{OpAddReg, OpSubReg, OpMulReg, OpAndReg, OpOrReg, OpXorReg}
				if src != R6 && dst != R6 && contains(initialized, dst) {
					b.ALUReg(ops[r.Intn(len(ops))], dst, src)
				}
			case 5:
				if contains(initialized, dst) {
					b.ALUImm(OpAddImm, dst, int64(r.Intn(64)))
				}
			case 6:
				// Bounded map counter access.
				b.StoreStackImm(OpStW, -4, int64(r.Intn(8)))
				b.LoadMapPtr(R1, m)
				b.MovReg(R2, RFP)
				b.AddImm(R2, -4)
				b.MovImm(R3, 1)
				b.Call(HelperMapAdd)
				initialized = []Reg{R6} // caller-saved clobbered
			}
		}
		b.ReturnImm(int64(i))
		p, err := b.Program()
		if err != nil {
			continue
		}
		if _, err := Verify(p); err != nil {
			continue // some sequences legitimately fail (uninit reads)
		}
		accepted++
		if got, err := Exec(p, NewCtx(KindLockAcquired), env); err != nil {
			t.Fatalf("structured program %d faulted: %v\n%s", i, err, p)
		} else if got != uint64(i) {
			t.Fatalf("structured program %d returned %d", i, got)
		}
	}
	if accepted < 1000 {
		t.Errorf("only %d/5000 structured programs verified; generator broken?", accepted)
	}
}

func contains(rs []Reg, r Reg) bool {
	for _, x := range rs {
		if x == r {
			return true
		}
	}
	return false
}
