package policy

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// This file is the "translated into native code" step of §4.2: instead
// of interpreting instructions through the VM's opcode switch, a
// verified program is compiled once into a chain of Go closures with
// all operands pre-decoded. Dispatch cost per instruction drops to one
// indirect call, roughly halving policy execution time
// (BenchmarkVMExecCompiled vs BenchmarkVMExec); the framework attaches
// compiled programs by default.
//
// Compilation requires a verified program and preserves the VM's
// semantics exactly — the differential fuzz test in nativecomp_test.go
// checks interpreter and compiled output against each other.

// CompiledFn executes a compiled policy program.
type CompiledFn func(ctx *Ctx, env Env) (uint64, error)

// nmachine is the execution state threaded through compiled steps.
type nmachine struct {
	regs  [NumRegs]rtVal
	stack [StackSize]byte
	ctx   *Ctx
	env   Env
	err   error
}

// step executes one instruction and returns the next pc; pcExit ends
// execution normally, pcFault aborts with m.err set.
type step func(m *nmachine) int

// nmPool recycles machines between executions. The stack is deliberately
// NOT cleared on reuse: the verifier proves programs never read stack
// bytes they did not write, so stale contents are unobservable — this
// saves zeroing 512 bytes per policy invocation.
var nmPool = sync.Pool{New: func() any { return new(nmachine) }}

const (
	pcExit  = -1
	pcFault = -2
)

// CompileNative translates a verified program into a CompiledFn.
func CompileNative(p *Program) (CompiledFn, error) {
	if !p.verified {
		return nil, ErrNotVerified
	}
	steps := make([]step, len(p.Insns))
	for i, in := range p.Insns {
		s, err := compileStep(p, i, in)
		if err != nil {
			return nil, err
		}
		steps[i] = s
	}
	name := p.Name
	kind := p.Kind
	n := len(steps)
	st := &p.stats
	return func(ctx *Ctx, env Env) (uint64, error) {
		if env == nil {
			env = DefaultEnv
		}
		if ctx == nil || ctx.Layout.Kind != kind {
			st.Faults.Add(1)
			return 0, &RuntimeError{Name: name, PC: -1, Msg: "context kind mismatch"}
		}
		st.Runs.Add(1)
		m := nmPool.Get().(*nmachine)
		m.regs = [NumRegs]rtVal{}
		m.ctx = ctx
		m.env = env
		m.err = nil
		m.regs[R1] = rtVal{typ: tPtrCtx}
		m.regs[RFP] = rtVal{typ: tPtrStack}
		executed := 0
		// Verified programs are loop-free: each step runs at most once.
		for pc, budget := 0, n+1; pc >= 0; {
			if budget--; budget < 0 {
				nmPool.Put(m)
				st.Insns.Add(int64(executed))
				st.Faults.Add(1)
				return 0, &RuntimeError{Name: name, PC: pc, Msg: "step budget exceeded (compiler bug)"}
			}
			if pc >= n {
				nmPool.Put(m)
				st.Insns.Add(int64(executed))
				st.Faults.Add(1)
				return 0, &RuntimeError{Name: name, PC: pc, Msg: "fell off the end (compiler bug)"}
			}
			executed++
			pc = steps[pc](m)
		}
		err := m.err
		ret := m.regs[R0].v
		m.ctx, m.env = nil, nil
		nmPool.Put(m)
		st.Insns.Add(int64(executed))
		if err != nil {
			st.Faults.Add(1)
			return 0, err
		}
		return ret, nil
	}, nil
}

// MustCompileNative is CompileNative for tests and examples.
func MustCompileNative(p *Program) CompiledFn {
	fn, err := CompileNative(p)
	if err != nil {
		panic(err)
	}
	return fn
}

func (m *nmachine) fault(name string, pc int, format string, args ...any) int {
	m.err = &RuntimeError{Name: name, PC: pc, Msg: fmt.Sprintf(format, args...)}
	return pcFault
}

// compileStep pre-decodes one instruction into a closure.
func compileStep(p *Program, pc int, in Instruction) (step, error) {
	next := pc + 1
	name := p.Name
	dst, src := in.Dst, in.Src
	off := int(in.Off)
	imm := in.Imm
	op := in.Op

	switch {
	case op == OpExit:
		return func(m *nmachine) int {
			if m.regs[R0].typ != tScalar {
				return m.fault(name, pc, "exit with non-scalar R0")
			}
			return pcExit
		}, nil

	case op == OpCall:
		h := HelperID(imm)
		return func(m *nmachine) int {
			r0, err := execHelper(p, h, &m.regs, m.stack[:], m.env)
			if err != nil {
				m.err = &RuntimeError{Name: name, PC: pc, Msg: err.Error()}
				return pcFault
			}
			m.regs[R0] = r0
			for r := R1; r <= R5; r++ {
				m.regs[r] = rtVal{}
			}
			return next
		}, nil

	case op == OpLoadMapPtr:
		idx := int(imm)
		return func(m *nmachine) int {
			m.regs[dst] = rtVal{typ: tConstMapPtr, mapIdx: idx}
			return next
		}, nil

	case op == OpJa:
		target := next + off
		return func(*nmachine) int { return target }, nil

	case op.IsCondJump():
		target := next + off
		useSrc := op.UsesSrcReg()
		return func(m *nmachine) int {
			a := m.regs[dst]
			var b uint64
			if useSrc {
				b = m.regs[src].v
			} else {
				b = uint64(imm)
			}
			av := a.v
			if a.typ == tPtrMapValueOrNull {
				if a.val == nil {
					av = 0
				} else {
					av = 1
				}
			}
			if condTaken(op, av, b) {
				if a.typ == tPtrMapValueOrNull {
					m.regs[dst] = refineNull(a, op == OpJneImm)
				}
				return target
			}
			if a.typ == tPtrMapValueOrNull {
				m.regs[dst] = refineNull(a, op == OpJeqImm)
			}
			return next
		}, nil

	case op.IsLoad():
		size := op.AccessSize()
		return func(m *nmachine) int {
			ptr := m.regs[src]
			var v uint64
			switch ptr.typ {
			case tPtrStack:
				idx := int(int64(ptr.v)) + off + StackSize
				if idx < 0 || idx+size > StackSize {
					return m.fault(name, pc, "stack load out of bounds")
				}
				v = loadBytes(m.stack[idx:idx+size], size)
			case tPtrCtx:
				o := int(int64(ptr.v)) + off
				if o < 0 || o%8 != 0 || o/8 >= len(m.ctx.Words) {
					return m.fault(name, pc, "ctx load out of bounds")
				}
				v = m.ctx.Words[o/8]
			case tPtrMapValue:
				o := int(int64(ptr.v)) + off
				if size != 8 || o%8 != 0 || o < 0 || o/8 >= len(ptr.val) {
					return m.fault(name, pc, "map value load out of bounds")
				}
				v = atomic.LoadUint64(&ptr.val[o/8])
			default:
				return m.fault(name, pc, "load through %s", ptr.typ)
			}
			m.regs[dst] = rtVal{typ: tScalar, v: v}
			return next
		}, nil

	case op.IsStore():
		size := op.AccessSize()
		useSrc := op.UsesSrcReg()
		return func(m *nmachine) int {
			ptr := m.regs[dst]
			var v uint64
			if useSrc {
				v = m.regs[src].v
			} else {
				v = uint64(imm)
			}
			switch ptr.typ {
			case tPtrStack:
				idx := int(int64(ptr.v)) + off + StackSize
				if idx < 0 || idx+size > StackSize {
					return m.fault(name, pc, "stack store out of bounds")
				}
				storeBytes(m.stack[idx:idx+size], size, v)
			case tPtrMapValue:
				o := int(int64(ptr.v)) + off
				if size != 8 || o%8 != 0 || o < 0 || o/8 >= len(ptr.val) {
					return m.fault(name, pc, "map value store out of bounds")
				}
				atomic.StoreUint64(&ptr.val[o/8], v)
			default:
				return m.fault(name, pc, "store through %s", ptr.typ)
			}
			return next
		}, nil

	case op == OpMovImm:
		val := rtVal{typ: tScalar, v: uint64(imm)}
		return func(m *nmachine) int {
			m.regs[dst] = val
			return next
		}, nil

	case op == OpMovReg:
		return func(m *nmachine) int {
			m.regs[dst] = m.regs[src]
			return next
		}, nil

	case op.IsALU():
		useSrc := op.UsesSrcReg()
		isSub := op == OpSubImm || op == OpSubReg
		return func(m *nmachine) int {
			var sv uint64
			if useSrc {
				sv = m.regs[src].v
			} else {
				sv = uint64(imm)
			}
			d := m.regs[dst]
			if d.typ.isPointer() {
				delta := int64(sv)
				if isSub {
					delta = -delta
				}
				d.v = uint64(int64(d.v) + delta)
				m.regs[dst] = d
			} else {
				m.regs[dst] = rtVal{typ: tScalar, v: aluExec(op, d.v, sv)}
			}
			return next
		}, nil
	}
	return nil, fmt.Errorf("policy: cannot compile opcode %s", op)
}
