package policy

import (
	"testing"
)

// run verifies and executes a program, failing the test on any error.
func run(t *testing.T, p *Program, ctx *Ctx, env Env) uint64 {
	t.Helper()
	if _, err := Verify(p); err != nil {
		t.Fatalf("verify: %v", err)
	}
	if ctx == nil {
		ctx = NewCtx(p.Kind)
	}
	got, err := Exec(p, ctx, env)
	if err != nil {
		t.Fatalf("exec: %v", err)
	}
	return got
}

func TestALUSemantics(t *testing.T) {
	cases := []struct {
		name string
		op   Op
		a, b int64
		want uint64
	}{
		{"add", OpAddImm, 7, 5, 12},
		{"add-negative", OpAddImm, 7, -9, u64(-2)},
		{"sub", OpSubImm, 7, 5, 2},
		{"sub-underflow", OpSubImm, 0, 1, ^uint64(0)},
		{"mul", OpMulImm, 6, 7, 42},
		{"div", OpDivImm, 42, 5, 8},
		{"mod", OpModImm, 42, 5, 2},
		{"and", OpAndImm, 0b1100, 0b1010, 0b1000},
		{"or", OpOrImm, 0b1100, 0b1010, 0b1110},
		{"xor", OpXorImm, 0b1100, 0b1010, 0b0110},
		{"lsh", OpLshImm, 1, 10, 1024},
		{"rsh", OpRshImm, 1024, 10, 1},
		{"rsh-logical", OpRshImm, -1, 63, 1},
		{"arsh", OpArshImm, -8, 2, u64(-2)},
		{"lsh-mask", OpLshImm, 1, 65, 2}, // shifts mask to 6 bits
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := NewBuilder(tc.name, KindLockAcquire).
				MovImm(R2, tc.a).
				ALUImm(tc.op, R2, tc.b).
				ReturnReg(R2).
				MustProgram()
			if got := run(t, p, nil, nil); got != tc.want {
				t.Errorf("%s(%d,%d) = %d, want %d", tc.op, tc.a, tc.b, got, tc.want)
			}
		})
	}
}

func TestALURegForms(t *testing.T) {
	// Same results through the register forms.
	p := NewBuilder("reg-forms", KindLockAcquire).
		MovImm(R2, 21).
		MovImm(R3, 2).
		ALUReg(OpMulReg, R2, R3).
		ReturnReg(R2).
		MustProgram()
	if got := run(t, p, nil, nil); got != 42 {
		t.Errorf("got %d, want 42", got)
	}
}

func TestDivModByZeroRuntime(t *testing.T) {
	// eBPF semantics: x/0 == 0, x%0 == x. Use a register divisor the
	// verifier cannot constant-fold.
	div := NewBuilder("div0", KindLockAcquire).
		MovImm(R6, 1). // ctx not needed; save nothing
		LoadCtx(R2, R1, "lock_id").
		MovImm(R3, 100).
		ALUReg(OpDivReg, R3, R2). // R2 comes from ctx = 0
		ReturnReg(R3).
		MustProgram()
	if got := run(t, div, nil, nil); got != 0 {
		t.Errorf("div by zero: got %d, want 0", got)
	}
	mod := NewBuilder("mod0", KindLockAcquire).
		LoadCtx(R2, R1, "lock_id").
		MovImm(R3, 100).
		ALUReg(OpModReg, R3, R2).
		ReturnReg(R3).
		MustProgram()
	if got := run(t, mod, nil, nil); got != 100 {
		t.Errorf("mod by zero: got %d, want 100", got)
	}
}

func TestNeg(t *testing.T) {
	p := NewBuilder("neg", KindLockAcquire).
		MovImm(R2, 5).
		Neg(R2).
		ReturnReg(R2).
		MustProgram()
	if got := run(t, p, nil, nil); got != u64(-5) {
		t.Errorf("neg 5 = %d, want -5", int64(got))
	}
}

func TestJumpSemantics(t *testing.T) {
	cases := []struct {
		name string
		op   Op
		a, b int64
		take bool
	}{
		{"jeq-taken", OpJeqImm, 5, 5, true},
		{"jeq-not", OpJeqImm, 5, 6, false},
		{"jne-taken", OpJneImm, 5, 6, true},
		{"jgt-unsigned", OpJgtImm, -1, 5, true}, // -1 is huge unsigned
		{"jsgt-signed", OpJsgtImm, -1, 5, false},
		{"jslt-signed", OpJsltImm, -1, 5, true},
		{"jlt-unsigned", OpJltImm, -1, 5, false},
		{"jge-eq", OpJgeImm, 5, 5, true},
		{"jle-eq", OpJleImm, 5, 5, true},
		{"jsge", OpJsgeImm, -3, -7, true},
		{"jsle", OpJsleImm, -7, -3, true},
		{"jset-taken", OpJsetImm, 0b1010, 0b0010, true},
		{"jset-not", OpJsetImm, 0b1010, 0b0101, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := NewBuilder(tc.name, KindLockAcquire).
				MovImm(R2, tc.a).
				JmpImm(tc.op, R2, tc.b, "taken").
				ReturnImm(0).
				Label("taken").
				ReturnImm(1).
				MustProgram()
			want := uint64(0)
			if tc.take {
				want = 1
			}
			if got := run(t, p, nil, nil); got != want {
				t.Errorf("got %d, want %d", got, want)
			}
		})
	}
}

func TestStackRoundTrip(t *testing.T) {
	cases := []struct {
		name   string
		st, ld Op
		imm    int64
		want   uint64
	}{
		{"byte", OpStB, OpLdxB, 0x1ff, 0xff},     // truncated to 8 bits
		{"half", OpStH, OpLdxH, 0x1ffff, 0xffff}, // 16 bits
		{"word", OpStW, OpLdxW, -1, 0xffffffff},  // 32 bits
		{"dword", OpStDW, OpLdxDW, -1, ^uint64(0)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := NewBuilder(tc.name, KindLockAcquire).
				StoreStackImm(tc.st, -8, tc.imm).
				LoadStack(tc.ld, R2, -8).
				ReturnReg(R2).
				MustProgram()
			if got := run(t, p, nil, nil); got != tc.want {
				t.Errorf("got %#x, want %#x", got, tc.want)
			}
		})
	}
}

func TestStackLittleEndianLayout(t *testing.T) {
	// Store a dword, read its lowest byte back: little-endian layout.
	p := NewBuilder("endian", KindLockAcquire).
		StoreStackImm(OpStDW, -8, 0x1122334455667788).
		LoadStack(OpLdxB, R2, -8).
		ReturnReg(R2).
		MustProgram()
	if got := run(t, p, nil, nil); got != 0x88 {
		t.Errorf("lowest byte = %#x, want 0x88", got)
	}
}

func TestCtxLoads(t *testing.T) {
	ctx := NewCtx(KindCmpNode).
		Set("curr_socket", 3).
		Set("shuffler_socket", 3).
		Set("queue_len", 17)
	// NUMA-grouping policy: return curr_socket == shuffler_socket.
	p := NewBuilder("numa", KindCmpNode).
		MovReg(R6, R1).
		LoadCtx(R2, R6, "curr_socket").
		LoadCtx(R3, R6, "shuffler_socket").
		JmpReg(OpJeqReg, R2, R3, "same").
		ReturnImm(0).
		Label("same").
		ReturnImm(1).
		MustProgram()
	if got := run(t, p, ctx, nil); got != 1 {
		t.Errorf("same socket: got %d, want 1", got)
	}
	ctx.Set("curr_socket", 4)
	if got, err := Exec(p, ctx, nil); err != nil || got != 0 {
		t.Errorf("different socket: got %d,%v; want 0,nil", got, err)
	}
}

func TestHelperEnvValues(t *testing.T) {
	env := &TestEnv{CPUID: 11, NUMA: 2, Task: 77, Prio: 140}
	env.Now.Store(123456)
	cases := []struct {
		helper HelperID
		want   uint64
	}{
		{HelperKtimeNS, 123456},
		{HelperCPU, 11},
		{HelperNUMANode, 2},
		{HelperTaskID, 77},
		{HelperTaskPrio, 140},
	}
	for _, tc := range cases {
		t.Run(tc.helper.String(), func(t *testing.T) {
			p := NewBuilder("env", KindLockAcquire).
				Call(tc.helper).
				Exit().
				MustProgram()
			if got := run(t, p, nil, env); got != tc.want {
				t.Errorf("%s = %d, want %d", tc.helper, got, tc.want)
			}
		})
	}
}

func TestTraceHelper(t *testing.T) {
	env := &TestEnv{}
	p := NewBuilder("trace", KindLockAcquire).
		MovImm(R1, 42).
		Call(HelperTrace).
		MovImm(R1, 43).
		Call(HelperTrace).
		ReturnImm(0).
		MustProgram()
	run(t, p, nil, env)
	traces := env.Traces()
	if len(traces) != 2 || traces[0] != 42 || traces[1] != 43 {
		t.Errorf("traces = %v, want [42 43]", traces)
	}
}

// counterProgram returns a program that increments array-map slot 0 via
// lookup + direct map-value store.
func counterProgram(t *testing.T, m Map) *Program {
	t.Helper()
	return NewBuilder("counter", KindLockAcquired).
		StoreStackImm(OpStW, -4, 0). // key = 0
		LoadMapPtr(R1, m).
		MovReg(R2, RFP).
		AddImm(R2, -4).
		Call(HelperMapLookup).
		JmpImm(OpJneImm, R0, 0, "hit").
		ReturnImm(0).
		Label("hit").
		Raw(Instruction{Op: OpLdxDW, Dst: R3, Src: R0, Off: 0}).
		AddImm(R3, 1).
		Raw(Instruction{Op: OpStxDW, Dst: R0, Src: R3, Off: 0}).
		ReturnImm(1).
		MustProgram()
}

func TestMapLookupAndStore(t *testing.T) {
	m := NewArrayMap("c", 8, 4)
	p := counterProgram(t, m)
	for i := 0; i < 5; i++ {
		if got := run(t, p, NewCtx(KindLockAcquired), nil); got != 1 {
			t.Fatalf("run %d: got %d, want 1", i, got)
		}
	}
	if v := m.At(0)[0]; v != 5 {
		t.Errorf("counter = %d, want 5", v)
	}
}

func TestMapLookupMiss(t *testing.T) {
	m := NewHashMap("h", 4, 8, 4)
	p := NewBuilder("miss", KindLockAcquired).
		StoreStackImm(OpStW, -4, 9).
		LoadMapPtr(R1, m).
		MovReg(R2, RFP).
		AddImm(R2, -4).
		Call(HelperMapLookup).
		JmpImm(OpJeqImm, R0, 0, "null").
		ReturnImm(7).
		Label("null").
		ReturnImm(0).
		MustProgram()
	if got := run(t, p, NewCtx(KindLockAcquired), nil); got != 0 {
		t.Errorf("lookup miss: got %d, want 0 (null path)", got)
	}
}

func TestMapUpdateDeleteHelpers(t *testing.T) {
	m := NewHashMap("h", 4, 8, 8)
	upd := NewBuilder("upd", KindLockAcquired).
		StoreStackImm(OpStW, -4, 1).    // key
		StoreStackImm(OpStDW, -16, 99). // value
		LoadMapPtr(R1, m).
		MovReg(R2, RFP).
		AddImm(R2, -4).
		MovReg(R3, RFP).
		AddImm(R3, -16).
		Call(HelperMapUpdate).
		Exit().
		MustProgram()
	if got := run(t, upd, NewCtx(KindLockAcquired), nil); got != 0 {
		t.Fatalf("map_update returned %d", int64(got))
	}
	key := []byte{1, 0, 0, 0}
	if v := m.Lookup(key, 0); v == nil || v[0] != 99 {
		t.Fatalf("after update: %v, want [99]", v)
	}

	del := NewBuilder("del", KindLockAcquired).
		StoreStackImm(OpStW, -4, 1).
		LoadMapPtr(R1, m).
		MovReg(R2, RFP).
		AddImm(R2, -4).
		Call(HelperMapDelete).
		Exit().
		MustProgram()
	if got := run(t, del, NewCtx(KindLockAcquired), nil); got != 0 {
		t.Fatalf("map_delete returned %d", int64(got))
	}
	if v := m.Lookup(key, 0); v != nil {
		t.Fatalf("after delete: %v, want nil", v)
	}
	// Deleting again reports an error value.
	if got := run(t, del, NewCtx(KindLockAcquired), nil); got != ^uint64(0) {
		t.Fatalf("double delete returned %d, want -1", int64(got))
	}
}

func TestMapAddHelper(t *testing.T) {
	m := NewHashMap("h", 4, 8, 8)
	p := NewBuilder("add", KindLockAcquired).
		StoreStackImm(OpStW, -4, 5).
		LoadMapPtr(R1, m).
		MovReg(R2, RFP).
		AddImm(R2, -4).
		MovImm(R3, 3).
		Call(HelperMapAdd).
		Exit().
		MustProgram()
	for i := 0; i < 4; i++ {
		if got := run(t, p, NewCtx(KindLockAcquired), nil); got != 0 {
			t.Fatalf("map_add returned %d", int64(got))
		}
	}
	if v := m.Lookup([]byte{5, 0, 0, 0}, 0); v == nil || v[0] != 12 {
		t.Errorf("sum = %v, want [12]", v)
	}
}

func TestPerCPUMapIsolation(t *testing.T) {
	m := NewPerCPUArrayMap("pc", 8, 2, 4)
	prog := NewBuilder("percpu", KindLockAcquired).
		StoreStackImm(OpStW, -4, 0).
		LoadMapPtr(R1, m).
		MovReg(R2, RFP).
		AddImm(R2, -4).
		MovImm(R3, 1).
		Call(HelperMapAdd).
		Exit().
		MustProgram()
	if _, err := Verify(prog); err != nil {
		t.Fatal(err)
	}
	for cpu := 0; cpu < 4; cpu++ {
		for n := 0; n <= cpu; n++ {
			env := &TestEnv{CPUID: cpu}
			if _, err := Exec(prog, NewCtx(KindLockAcquired), env); err != nil {
				t.Fatal(err)
			}
		}
	}
	// CPU c incremented c+1 times.
	for cpu := 0; cpu < 4; cpu++ {
		key := []byte{0, 0, 0, 0}
		if v := m.Lookup(key, cpu); v[0] != uint64(cpu+1) {
			t.Errorf("cpu %d counter = %d, want %d", cpu, v[0], cpu+1)
		}
	}
	if got := m.Sum(0); got != 1+2+3+4 {
		t.Errorf("Sum = %d, want 10", got)
	}
}

func TestExecRequiresVerification(t *testing.T) {
	p := NewBuilder("unverified", KindLockAcquire).ReturnImm(0).MustProgram()
	if _, err := Exec(p, NewCtx(KindLockAcquire), nil); err != ErrNotVerified {
		t.Errorf("err = %v, want ErrNotVerified", err)
	}
}

func TestExecCtxKindMismatch(t *testing.T) {
	p := NewBuilder("kind", KindCmpNode).ReturnImm(0).MustProgram()
	if _, err := Verify(p); err != nil {
		t.Fatal(err)
	}
	if _, err := Exec(p, NewCtx(KindSkipShuffle), nil); err == nil {
		t.Error("want error on ctx kind mismatch")
	}
}

func TestForwardJumpChain(t *testing.T) {
	// A chain of forward jumps computing a small decision tree.
	ctx := NewCtx(KindScheduleWaiter).Set("curr_wait_ns", 1500)
	p := NewBuilder("tree", KindScheduleWaiter).
		MovReg(R6, R1).
		LoadCtx(R2, R6, "curr_wait_ns").
		JmpImm(OpJgtImm, R2, 1000, "long").
		ReturnImm(WaiterKeepSpinning).
		Label("long").
		JmpImm(OpJgtImm, R2, 100000, "verylong").
		ReturnImm(WaiterDefault).
		Label("verylong").
		ReturnImm(WaiterParkNow).
		MustProgram()
	if got := run(t, p, ctx, nil); got != WaiterDefault {
		t.Errorf("1500ns wait: got %d, want WaiterDefault", got)
	}
}

// u64 reinterprets a signed value as its two's-complement uint64 pattern.
func u64(v int64) uint64 { return uint64(v) }
