package policy

import (
	"encoding/binary"
	"sync"
	"sync/atomic"
	"testing"
)

// Online-resize torture: growable maps under concurrent readers,
// updaters and deleters at tight initial capacity, so the table doubles
// several times while traffic is in flight. Assertions:
//
//   - never-torn words: writers only store well-formed values (low half
//     == high half), readers atomic-load and check — a torn ctl-word
//     transition would surface as a mismatched key/value observation;
//   - no lost keys: workers own disjoint key ranges and their surviving
//     key sets are verified exactly after quiesce, across ≥ 3 doublings;
//   - the race detector proves every access stays synchronized/atomic
//     through epoch flips and migration.

func resizeKey(worker, i uint64) []byte {
	var k [8]byte
	binary.LittleEndian.PutUint64(k[:], worker<<32|i)
	return k[:]
}

func resizeVal(worker, i uint64) uint64 {
	x := uint32(worker<<20 | i)
	return uint64(x)<<32 | uint64(x)
}

// tortureResize drives one growable map through concurrent churn and
// verifies the surviving state exactly.
func tortureResize(t *testing.T, m Map, numCPUs int) {
	t.Helper()
	const workers = 4
	perWorker := 6000
	if testing.Short() {
		perWorker = 1500
	}

	sp, ok := m.(StatsProvider)
	if !ok {
		t.Fatalf("map %T does not expose MapStats", m)
	}
	startCap := sp.MapStats().Capacity

	var torn atomic.Int64
	checkWord := func(v []uint64) {
		for i := range v {
			x := atomic.LoadUint64(&v[i])
			if uint32(x>>32) != uint32(x) {
				torn.Add(1)
			}
		}
	}

	var mutWg, rdWg sync.WaitGroup
	// Mutators: each owns key range w<<32|i. Insert every key, delete
	// every third — so the live set grows monotonically past the initial
	// budget while tombstone churn runs alongside the growth migration.
	for w := 0; w < workers; w++ {
		mutWg.Add(1)
		go func(w int) {
			defer mutWg.Done()
			for i := 0; i < perWorker; i++ {
				k := resizeKey(uint64(w), uint64(i))
				val := resizeVal(uint64(w), uint64(i))
				for cpu := 0; cpu < numCPUs; cpu++ {
					if err := m.Update(k, []uint64{val}, cpu); err != nil {
						t.Errorf("worker %d key %d cpu %d: %v", w, i, cpu, err)
						return
					}
				}
				if i%3 == 0 {
					if err := m.Delete(k); err != nil {
						t.Errorf("worker %d delete %d: %v", w, i, err)
						return
					}
				}
			}
		}(w)
	}
	// Readers: roam the whole key space until the mutators finish; any
	// hit must be well-formed.
	var stop atomic.Bool
	for r := 0; r < 2; r++ {
		rdWg.Add(1)
		go func(r int) {
			defer rdWg.Done()
			for i := 0; !stop.Load(); i++ {
				w := uint64((r + i) % workers)
				k := resizeKey(w, uint64(i%perWorker))
				if v := m.Lookup(k, i%numCPUs); v != nil {
					checkWord(v)
				}
			}
		}(r)
	}
	mutWg.Wait()
	stop.Store(true)
	rdWg.Wait()
	if t.Failed() {
		return // a mutator already reported the failure
	}

	if got := torn.Load(); got != 0 {
		t.Fatalf("observed %d torn reads", got)
	}

	// Quiesce: finish any in-flight migration, then verify exact state.
	switch mm := m.(type) {
	case *HashMap:
		mm.tab.drainResize()
	case *PerCPUHashMap:
		mm.tab.drainResize()
	}

	wantLive := 0
	for w := 0; w < workers; w++ {
		for i := 0; i < perWorker; i++ {
			k := resizeKey(uint64(w), uint64(i))
			v := m.Lookup(k, 0)
			if i%3 == 0 {
				if v != nil {
					t.Fatalf("deleted key w=%d i=%d still present", w, i)
				}
				continue
			}
			wantLive++
			if v == nil {
				t.Fatalf("lost key w=%d i=%d", w, i)
			}
			want := resizeVal(uint64(w), uint64(i))
			if got := atomic.LoadUint64(&v[0]); got != want {
				t.Fatalf("key w=%d i=%d: got %#x want %#x", w, i, got, want)
			}
		}
	}

	st := sp.MapStats()
	if int(st.Occupancy) != wantLive {
		t.Fatalf("occupancy %d, want %d live keys", st.Occupancy, wantLive)
	}
	if st.Capacity < 8*startCap {
		t.Fatalf("capacity %d never reached 3 doublings from %d", st.Capacity, startCap)
	}
	if st.Resizes < 3 {
		t.Fatalf("only %d resizes recorded, want ≥ 3", st.Resizes)
	}
	if st.Migrated == 0 {
		t.Fatalf("no slots were migrated incrementally")
	}
}

func TestHashMapResizeTorture(t *testing.T) {
	tortureResize(t, NewGrowableHashMap("resize-torture", 8, 8, 64), 1)
}

func TestPerCPUHashMapResizeTorture(t *testing.T) {
	tortureResize(t, NewGrowablePerCPUHashMap("resize-torture-percpu", 8, 8, 64, 2), 2)
}

// TestGrowablePastBudget is the sequential contract: a growable map
// accepts far more distinct keys than its initial budget, no key or
// value is lost across the doublings, and MaxEntries reports the grown
// budget.
func TestGrowablePastBudget(t *testing.T) {
	m := NewGrowableHashMap("grow", 8, 8, 32)
	const n = 50000
	for i := 0; i < n; i++ {
		k := resizeKey(1, uint64(i))
		if err := m.Update(k, []uint64{uint64(i) ^ 0xabcdef}, 0); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	if m.Len() != n {
		t.Fatalf("Len=%d want %d", m.Len(), n)
	}
	for i := 0; i < n; i++ {
		v := m.Lookup(resizeKey(1, uint64(i)), 0)
		if v == nil || v[0] != uint64(i)^0xabcdef {
			t.Fatalf("key %d lost or wrong after growth", i)
		}
	}
	if got := m.MaxEntries(); got < n {
		t.Fatalf("MaxEntries=%d did not grow past %d", got, n)
	}
	st := m.MapStats()
	if st.Resizes < 3 || st.ResizeAllocBytes == 0 {
		t.Fatalf("stats missed growth: %+v", st)
	}
}

// TestGrowableChurnReclaims is the distinct-key churn contract: insert
// and delete a rolling window of distinct keys far beyond the initial
// budget; tombstone compaction (folded into migration) keeps the table
// healthy and no insert ever fails.
func TestGrowableChurnReclaims(t *testing.T) {
	m := NewGrowableHashMap("churn", 8, 8, 128)
	const (
		window = 96
		total  = 40000
	)
	for i := 0; i < total; i++ {
		if err := m.Update(resizeKey(2, uint64(i)), []uint64{uint64(i)}, 0); err != nil {
			t.Fatalf("churn insert %d: %v", i, err)
		}
		if i >= window {
			if err := m.Delete(resizeKey(2, uint64(i-window))); err != nil {
				t.Fatalf("churn delete %d: %v", i-window, err)
			}
		}
	}
	if got := m.Len(); got != window {
		t.Fatalf("live=%d want %d", got, window)
	}
	st := m.MapStats()
	// The live set never exceeds window+1, so even with growth the
	// capacity must stay far below total: churn reclaimed space instead
	// of consuming it.
	if st.Capacity >= total {
		t.Fatalf("capacity %d grew with churn instead of compacting", st.Capacity)
	}
}

// TestFixedMapStaysFixed pins the back-compat contract: non-growable
// maps never resize and still refuse keys past their budget.
func TestFixedMapStaysFixed(t *testing.T) {
	m := NewHashMap("fixed", 8, 8, 16)
	var err error
	for i := 0; i < 64 && err == nil; i++ {
		err = m.Update(resizeKey(3, uint64(i)), []uint64{1}, 0)
	}
	if err != ErrMapFull {
		t.Fatalf("fixed map accepted past budget (err=%v)", err)
	}
	if st := m.MapStats(); st.Resizes != 0 {
		t.Fatalf("fixed map resized %d times", st.Resizes)
	}
}

// TestTombstoneStats verifies live and dead slots are reported
// separately (the concordctl top fill-ratio fix).
func TestTombstoneStats(t *testing.T) {
	m := NewHashMap("tomb", 8, 8, 32)
	for i := 0; i < 16; i++ {
		if err := m.Update(resizeKey(4, uint64(i)), []uint64{1}, 0); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 8; i++ {
		if err := m.Delete(resizeKey(4, uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	st := m.MapStats()
	if st.Occupancy != 8 {
		t.Fatalf("occupancy %d counts tombstones as live", st.Occupancy)
	}
	if st.Tombstones != 8 {
		t.Fatalf("tombstones %d, want 8", st.Tombstones)
	}
	// Reuse decrements the dead count again.
	if err := m.Update(resizeKey(4, 0), []uint64{1}, 0); err != nil {
		t.Fatal(err)
	}
	if st := m.MapStats(); st.Tombstones != 7 {
		t.Fatalf("tombstones after reuse %d, want 7", st.Tombstones)
	}
}

// TestGrowableSpecRoundTrip pins growable through serialize and the DSL.
func TestGrowableSpecRoundTrip(t *testing.T) {
	g := NewGrowableHashMap("g", 8, 8, 64)
	spec := SpecOf(g)
	if !spec.Growable {
		t.Fatalf("SpecOf dropped growable")
	}
	m2, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	if hm, ok := m2.(*HashMap); !ok || !hm.Growable() {
		t.Fatalf("rebuilt map lost growable: %T", m2)
	}
	f := NewHashMap("f", 8, 8, 64)
	if SpecOf(f).Growable {
		t.Fatalf("fixed map serialized as growable")
	}
}
