package policy

import (
	"encoding/binary"
	"testing"
)

// Allocation pins for the map data plane. The preallocated hash kinds
// promise that NO operation allocates — not just steady-state lookups
// but inserts, deletes, and tombstone reuse too. The legacy locked_hash
// kind keeps a documented single allocation on fresh insert (the
// string key) and must be alloc-free everywhere else. These run as
// tests, not benchmarks, so `go test` itself guards the invariant.

func allocKey(i uint64) []byte {
	var k [8]byte
	binary.LittleEndian.PutUint64(k[:], i)
	return k[:]
}

// pinAllocs asserts op performs exactly want allocations per run.
func pinAllocs(t *testing.T, name string, want float64, op func()) {
	t.Helper()
	if got := testing.AllocsPerRun(200, op); got != want {
		t.Errorf("%s: %.2f allocs/op, want %.2f", name, got, want)
	}
}

// mapAllocOps exercises every data-plane operation on m and pins its
// allocation count. insertAllocs is the allowed cost of inserting a
// fresh key (0 for the preallocated kinds, 1 for locked_hash).
func mapAllocOps(t *testing.T, m Map, cpu int, insertAllocs float64) {
	t.Helper()
	key := allocKey(7)
	val := []uint64{42}
	raw := make([]byte, 8)
	binary.LittleEndian.PutUint64(raw, 43)
	if err := m.Update(key, val, cpu); err != nil {
		t.Fatal(err)
	}

	pinAllocs(t, "Lookup", 0, func() { _ = m.Lookup(key, cpu) })
	pinAllocs(t, "Update/existing", 0, func() {
		if err := m.Update(key, val, cpu); err != nil {
			t.Fatal(err)
		}
	})
	if ru, ok := m.(rawUpdater); ok {
		pinAllocs(t, "UpdateRaw/existing", 0, func() {
			if err := ru.UpdateRaw(key, raw, cpu); err != nil {
				t.Fatal(err)
			}
		})
	}
	if li, ok := m.(interface {
		LookupOrInit(key []byte, cpu int) []uint64
	}); ok {
		pinAllocs(t, "LookupOrInit/hit", 0, func() {
			if li.LookupOrInit(key, cpu) == nil {
				t.Fatal("LookupOrInit returned nil for live key")
			}
		})
	}
	// Churn: delete + reinsert the same key every run, the profile-
	// eviction shape. For the preallocated kinds the tombstone is
	// recycled without touching the heap.
	churn := allocKey(9)
	pinAllocs(t, "Delete+insert churn", insertAllocs, func() {
		if err := m.Update(churn, val, cpu); err != nil {
			t.Fatal(err)
		}
		if err := m.Delete(churn); err != nil {
			t.Fatal(err)
		}
	})
}

func TestHashMapZeroAlloc(t *testing.T) {
	mapAllocOps(t, NewHashMap("alloc", 8, 8, 64), 0, 0)
}

func TestPerCPUHashMapZeroAlloc(t *testing.T) {
	mapAllocOps(t, NewPerCPUHashMap("alloc", 8, 8, 64, 4), 2, 0)
}

func TestArrayMapZeroAlloc(t *testing.T) {
	m := NewArrayMap("alloc", 8, 64)
	var key [4]byte
	binary.LittleEndian.PutUint32(key[:], 7)
	val := []uint64{1}
	pinAllocs(t, "Lookup", 0, func() { _ = m.Lookup(key[:], 0) })
	pinAllocs(t, "Update", 0, func() {
		if err := m.Update(key[:], val, 0); err != nil {
			t.Fatal(err)
		}
	})
}

// TestLockedHashMapInsertAlloc documents the legacy kind's remaining
// cost: one allocation per fresh insert (interning the string key),
// zero everywhere else. The seed implementation allocated on every
// Update — existing keys included — which is the regression this pins.
func TestLockedHashMapInsertAlloc(t *testing.T) {
	mapAllocOps(t, NewLockedHashMap("alloc", 8, 8, 64), 0, 1)
}
