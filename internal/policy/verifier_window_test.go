package policy

import (
	"errors"
	"strings"
	"testing"
)

// TestVerifyErrorDisasmWindow checks every reject carries a disassembly
// window around the offending pc: the marked offender plus up to one
// instruction on each side, clamped at the program edges.
func TestVerifyErrorDisasmWindow(t *testing.T) {
	cases := []struct {
		name      string
		build     func() *Program
		wantPC    int
		wantLines int // expected window size after clamping
	}{
		{
			// Offender mid-program: window is pc-1..pc+1.
			name: "mid",
			build: func() *Program {
				return NewBuilder("w", KindCmpNode).
					MovImm(R0, 0).
					MovReg(R2, R3). // pc 1: reads uninitialized R3
					Exit().
					MustProgram()
			},
			wantPC: 1, wantLines: 3,
		},
		{
			// Offender at pc 0: no predecessor line.
			name: "first",
			build: func() *Program {
				return NewBuilder("w", KindCmpNode).
					MovReg(R0, R2). // pc 0: reads uninitialized R2
					Exit().
					MustProgram()
			},
			wantPC: 0, wantLines: 2,
		},
		{
			// Offender is the last instruction: no successor line.
			name: "last",
			build: func() *Program {
				return &Program{Name: "w", Kind: KindCmpNode, Insns: []Instruction{
					{Op: OpMovImm, Dst: R0, Imm: 0},
					{Op: OpMovImm, Dst: R1, Imm: 1}, // pc 1: falls off the end
				}}
			},
			wantPC: 1, wantLines: 2,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := tc.build()
			_, err := Verify(p)
			if err == nil {
				t.Fatal("verifier accepted bad program")
			}
			var verr *VerifyError
			if !errors.As(err, &verr) {
				t.Fatalf("error is %T, want *VerifyError", err)
			}
			if verr.PC != tc.wantPC {
				t.Fatalf("PC = %d, want %d: %v", verr.PC, tc.wantPC, err)
			}
			if len(verr.Window) != tc.wantLines {
				t.Fatalf("window = %q, want %d lines", verr.Window, tc.wantLines)
			}
			// Each window line shows its pc and disassembly; the
			// offender is marked with an arrow.
			text := err.Error()
			if !strings.Contains(text, " → ") {
				t.Errorf("no offender marker in:\n%s", text)
			}
			lo := tc.wantPC - 1
			if lo < 0 {
				lo = 0
			}
			for i, line := range verr.Window {
				pc := lo + i
				if !strings.Contains(line, p.Insns[pc].String()) {
					t.Errorf("window line %q missing disasm of pc %d (%s)", line, pc, p.Insns[pc])
				}
				marked := strings.Contains(line, "→")
				if marked != (pc == tc.wantPC) {
					t.Errorf("window line %q: marker on pc %d, offender is %d", line, pc, tc.wantPC)
				}
			}
			// The one-line diagnosis still leads, so substring checks on
			// the reason keep working.
			if !strings.HasPrefix(text, "verifier: program") {
				t.Errorf("diagnosis not first line:\n%s", text)
			}
		})
	}
}

// TestVerifyErrorNoWindowWithoutPC: program-level rejects (no single
// offending instruction) carry no window.
func TestVerifyErrorNoWindowWithoutPC(t *testing.T) {
	_, err := Verify(&Program{Name: "e", Kind: KindCmpNode})
	var verr *VerifyError
	if !errors.As(err, &verr) {
		t.Fatalf("error is %T, want *VerifyError", err)
	}
	if verr.PC >= 0 || len(verr.Window) != 0 {
		t.Fatalf("PC=%d Window=%q, want PC<0 and empty window", verr.PC, verr.Window)
	}
	if strings.Contains(err.Error(), "\n") {
		t.Fatalf("windowless error spans lines: %q", err.Error())
	}
}
