package policy

import (
	"fmt"
	"strings"
	"testing"
)

// TestHelperNameRoundTrip: every helper's String() name resolves back
// to the same ID through HelperByName, in any casing — the assembler
// lower-cases mnemonics, and helper operands must not be pickier.
func TestHelperNameRoundTrip(t *testing.T) {
	for h := HelperID(1); h < numHelpers; h++ {
		name := h.String()
		if name == "helper(?)" {
			t.Fatalf("helper %d has no name", h)
		}
		for _, variant := range []string{name, strings.ToUpper(name), strings.Title(name)} {
			got, ok := HelperByName(variant)
			if !ok || got != h {
				t.Errorf("HelperByName(%q) = %v, %v; want %v, true", variant, got, ok, h)
			}
		}
	}
	if _, ok := HelperByName("no_such_helper"); ok {
		t.Error("HelperByName accepted an unknown name")
	}
}

// TestAssembleHelperCaseInsensitive: `call KTIME_NS` assembles the same
// program as `call ktime_ns`, for every helper.
func TestAssembleHelperCaseInsensitive(t *testing.T) {
	for h := HelperID(1); h < numHelpers; h++ {
		spec := helperSpecs[h]
		if len(spec.args) > 0 {
			continue // zero-arg helpers are enough to exercise name resolution
		}
		src := fmt.Sprintf("call %s\nexit\n", strings.ToUpper(h.String()))
		prog, err := Assemble("t", KindLockAcquired, src, nil)
		if err != nil {
			t.Errorf("assemble %q: %v", strings.ToUpper(h.String()), err)
			continue
		}
		if prog.Insns[0].Op != OpCall || HelperID(prog.Insns[0].Imm) != h {
			t.Errorf("call %s assembled to %v", h, prog.Insns[0])
		}
	}
}

// TestHelperSpecsSelfConsistent: each spec's embedded id and name match
// its table key (helperdrift checks coverage; this checks content).
func TestHelperSpecsSelfConsistent(t *testing.T) {
	for id, spec := range helperSpecs {
		if spec.id != id {
			t.Errorf("helperSpecs[%v].id = %v", id, spec.id)
		}
		if spec.name != helperNames[id] {
			t.Errorf("helperSpecs[%v].name = %q, helperNames has %q", id, spec.name, helperNames[id])
		}
	}
	if len(helperSpecs) != int(numHelpers)-1 || len(helperNames) != int(numHelpers)-1 {
		t.Errorf("table sizes: specs=%d names=%d enum=%d", len(helperSpecs), len(helperNames), int(numHelpers)-1)
	}
}
