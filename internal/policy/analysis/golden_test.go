package analysis

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"concord/internal/policydsl"
)

var update = flag.Bool("update", false, "rewrite golden analysis reports under testdata/")

// TestGoldenReports pins the analyzer's output for every shipped policy
// in policies/. A cost-model or domain change that shifts any bound,
// interval, footprint or warning shows up as a golden diff — rerun with
// `go test ./internal/policy/analysis -run Golden -update` after
// reviewing the new numbers.
func TestGoldenReports(t *testing.T) {
	dir := filepath.Join("..", "..", "..", "policies")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("policies dir: %v", err)
	}
	seen := map[string]bool{}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".pol") {
			continue
		}
		src, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		unit, err := policydsl.CompileAndVerify(string(src))
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		golden := filepath.Join("testdata", strings.TrimSuffix(e.Name(), ".pol")+".golden.json")
		seen[filepath.Base(golden)] = true
		t.Run(e.Name(), func(t *testing.T) {
			// One golden file per .pol source, covering every program
			// in it, sorted by name for stability.
			var reports []*Report
			for _, prog := range unit.Programs {
				rep, err := Analyze(prog)
				if err != nil {
					t.Fatalf("analyze %q: %v", prog.Name, err)
				}
				reports = append(reports, rep)
			}
			sort.Slice(reports, func(i, j int) bool { return reports[i].Program < reports[j].Program })
			got, err := json.MarshalIndent(reports, "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, '\n')
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(golden, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden (run with -update): %v", err)
			}
			if string(got) != string(want) {
				t.Errorf("analysis report drifted from %s:\n--- got ---\n%s\n--- want ---\n%s",
					golden, got, want)
			}
		})
	}

	// Stale goldens (a policy was removed or renamed) fail too.
	if !*update {
		files, _ := filepath.Glob(filepath.Join("testdata", "*.golden.json"))
		for _, f := range files {
			if filepath.Base(f) == "interference.golden.json" {
				continue // the pairwise matrix, owned by TestGoldenInterference
			}
			if !seen[filepath.Base(f)] {
				t.Errorf("stale golden %s has no matching policy", f)
			}
		}
	}
}

// TestGoldenInterference pins the pairwise interference matrix over
// every shipped policy: which pairs share maps, and how the sharing is
// classified. Today the only sharing is profile-waits → wait-gate
// (read-write feedback through worstwait); a new policy that writes a
// map another policy touches shows up as a golden diff here before it
// ever races at runtime.
func TestGoldenInterference(t *testing.T) {
	dir := filepath.Join("..", "..", "..", "policies")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("policies dir: %v", err)
	}
	var names []string
	byName := map[string][]*Report{}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".pol") {
			continue
		}
		src, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		unit, err := policydsl.CompileAndVerify(string(src))
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		var reports []*Report
		for _, prog := range unit.Programs {
			rep, err := Analyze(prog)
			if err != nil {
				t.Fatalf("analyze %q: %v", prog.Name, err)
			}
			reports = append(reports, rep)
		}
		names = append(names, e.Name())
		byName[e.Name()] = reports
	}
	sort.Strings(names)

	type pair struct {
		Left      string     `json:"left"`
		Right     string     `json:"right"`
		Conflicts []Conflict `json:"conflicts"`
	}
	var pairs []pair
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			pairs = append(pairs, pair{
				Left: names[i], Right: names[j],
				Conflicts: Interference(byName[names[i]], byName[names[j]]),
			})
		}
	}
	got, err := json.MarshalIndent(pairs, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')

	golden := filepath.Join("testdata", "interference.golden.json")
	if *update {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden (run with -update): %v", err)
	}
	if string(got) != string(want) {
		t.Errorf("interference matrix drifted from %s:\n--- got ---\n%s\n--- want ---\n%s", golden, got, want)
	}
}
