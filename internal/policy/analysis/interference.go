// Cross-policy interference: two verified policies may each be safe in
// isolation yet interact badly when attached concurrently, because maps
// are a global namespace — a policy on lock A and a policy on lock B
// that both write map "stats" race through it (§6's conflicting-policies
// hazard, lifted from hook decisions to shared state). This file
// classifies those interactions statically from the per-program map
// footprints, so the framework can reject or surface them at Attach
// time instead of debugging them at runtime.
package analysis

import (
	"fmt"
	"sort"
	"strings"
)

// Conflict classes, ordered by severity.
const (
	// ConflictWriteWrite: both policies mutate the map. Concurrent
	// attachment makes the map contents a race between the two programs;
	// admission treats this as blocking.
	ConflictWriteWrite = "write-write"
	// ConflictReadWrite: one policy mutates a map the other reads — its
	// decisions depend on state it does not own. Surfaced as a warning.
	ConflictReadWrite = "read-write"
)

// MapUse aggregates one policy's accesses to one map across all its
// programs.
type MapUse struct {
	Map    string `json:"map"`
	Reads  int    `json:"reads"`
	Writes int    `json:"writes"`
	// Programs lists the program names touching the map, sorted.
	Programs []string `json:"programs"`
	// WriteSlots lists the written value offsets ("+0", "+8"), sorted,
	// when slot information is available.
	WriteSlots []string `json:"write_slots,omitempty"`
}

// Uses flattens a policy's reports into per-map aggregated accesses,
// keyed by map name.
func Uses(reports []*Report) map[string]*MapUse {
	uses := map[string]*MapUse{}
	for _, r := range reports {
		if r == nil {
			continue
		}
		for _, fp := range r.Footprint {
			if fp.ReadSites == 0 && fp.WriteSites == 0 {
				continue // referenced but unreachable
			}
			u := uses[fp.Map]
			if u == nil {
				u = &MapUse{Map: fp.Map}
				uses[fp.Map] = u
			}
			u.Reads += fp.ReadSites
			u.Writes += fp.WriteSites
			u.Programs = append(u.Programs, r.Program)
			for slot := range fp.Slots {
				u.WriteSlots = append(u.WriteSlots, slot)
			}
		}
	}
	for _, u := range uses {
		sort.Strings(u.Programs)
		u.Programs = dedupSorted(u.Programs)
		sort.Strings(u.WriteSlots)
		u.WriteSlots = dedupSorted(u.WriteSlots)
	}
	return uses
}

func dedupSorted(s []string) []string {
	out := s[:0]
	for i, v := range s {
		if i == 0 || v != s[i-1] {
			out = append(out, v)
		}
	}
	return out
}

// Conflict is one statically-detected interference between two policies
// through a shared map. Left/Right carry each side's aggregated use.
type Conflict struct {
	Map   string `json:"map"`
	Class string `json:"class"`
	Left  MapUse `json:"left"`
	Right MapUse `json:"right"`
	// SharedSlots are written value offsets both sides store to — the
	// bytes that are literally racing (write-write only, and only when
	// both sides carry slot information).
	SharedSlots []string `json:"shared_slots,omitempty"`
}

// Blocking reports whether admission should reject the pair (under
// InterferenceReject): write-write conflicts block, read-write warns.
func (c Conflict) Blocking() bool { return c.Class == ConflictWriteWrite }

// String renders one conflict line for human output.
func (c Conflict) String() string {
	out := fmt.Sprintf("map %s: %s (left reads=%d writes=%d via %s; right reads=%d writes=%d via %s)",
		c.Map, c.Class,
		c.Left.Reads, c.Left.Writes, strings.Join(c.Left.Programs, ","),
		c.Right.Reads, c.Right.Writes, strings.Join(c.Right.Programs, ","))
	if len(c.SharedSlots) > 0 {
		out += " shared slots: " + strings.Join(c.SharedSlots, ",")
	}
	return out
}

// Interference compares two policies' map footprints (each given as the
// reports of its programs) and returns their conflicts sorted by map
// name. Map identity is the map name: the runtime registers maps in a
// shared namespace, so same name means same storage.
func Interference(left, right []*Report) []Conflict {
	lu, ru := Uses(left), Uses(right)
	var out []Conflict
	for name, l := range lu {
		r := ru[name]
		if r == nil {
			continue
		}
		var class string
		switch {
		case l.Writes > 0 && r.Writes > 0:
			class = ConflictWriteWrite
		case l.Writes > 0 || r.Writes > 0:
			class = ConflictReadWrite
		default:
			continue // read-read sharing is benign
		}
		c := Conflict{Map: name, Class: class, Left: *l, Right: *r}
		if class == ConflictWriteWrite {
			c.SharedSlots = intersectSorted(l.WriteSlots, r.WriteSlots)
		}
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Map < out[j].Map })
	return out
}

func intersectSorted(a, b []string) []string {
	var out []string
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			out = append(out, a[i])
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return out
}
