// Package analysis is Concord's static-analysis layer over verified
// policy programs: an abstract interpreter that turns the verifier's
// qualitative proof ("this program is safe to run") into quantitative,
// proven-before-attach facts ("this program costs at most N ns, touches
// these maps, and returns a value in [0,2]").
//
// The verifier (internal/policy) already guarantees the properties the
// abstract interpreter leans on: every jump is forward, so the CFG is a
// DAG and each instruction executes at most once; every register is
// typed; and memory access is bounds-checked. On top of that base the
// analysis computes, per program:
//
//   - interval (value-range) facts per register and per written map
//     slot, by abstract interpretation over the interval domain;
//   - a worst-case cost bound: the maximum, over all CFG paths, of the
//     summed instruction and helper costs (see cost.go). Because the
//     CFG is a DAG this is a longest-path computation, exact with
//     respect to the cost model;
//   - a map-footprint summary: which maps are touched, read vs write,
//     and how many key/value bytes each access can reach;
//   - lock-safety facts and warnings: determinism, read-onlyness,
//     debug/rand helpers flagged in hot (decision) hooks, and decision
//     return values proven in range.
//
// The Report is machine-readable (stable JSON) and is consumed by
// internal/core for admission control and watchdog budgeting, recorded
// on the livepatch attachment, and surfaced by `concordctl analyze`.
package analysis

import (
	"encoding/json"
	"fmt"
	"math"
	"math/bits"
	"sort"

	"concord/internal/policy"
)

// Interval is a signed value-range fact: the value is proven to lie in
// [Lo, Hi]. The full range is "top" (no information).
type Interval struct {
	Lo, Hi int64
}

// Top is the interval carrying no information.
var Top = Interval{math.MinInt64, math.MaxInt64}

// Const returns the singleton interval {v}.
func Const(v int64) Interval { return Interval{v, v} }

// IsTop reports whether the interval carries no information.
func (i Interval) IsTop() bool { return i.Lo == math.MinInt64 && i.Hi == math.MaxInt64 }

// IsConst reports whether the interval is a single value.
func (i Interval) IsConst() bool { return i.Lo == i.Hi }

// Contains reports whether the interval is within [lo, hi].
func (i Interval) Within(lo, hi int64) bool { return i.Lo >= lo && i.Hi <= hi }

// Join returns the smallest interval containing both.
func (i Interval) Join(o Interval) Interval {
	return Interval{min64(i.Lo, o.Lo), max64(i.Hi, o.Hi)}
}

// String renders "top", a constant, or "[lo,hi]".
func (i Interval) String() string {
	switch {
	case i.IsTop():
		return "top"
	case i.IsConst():
		return fmt.Sprintf("%d", i.Lo)
	default:
		return fmt.Sprintf("[%d,%d]", i.Lo, i.Hi)
	}
}

// MarshalJSON renders the interval as its String form, keeping reports
// (and their golden files) compact and diffable.
func (i Interval) MarshalJSON() ([]byte, error) { return json.Marshal(i.String()) }

// UnmarshalJSON parses the String form back ("top", "42", "[lo,hi]").
func (i *Interval) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	if s == "top" {
		*i = Top
		return nil
	}
	if n, err := fmt.Sscanf(s, "[%d,%d]", &i.Lo, &i.Hi); err == nil && n == 2 {
		return nil
	}
	if n, err := fmt.Sscanf(s, "%d", &i.Lo); err == nil && n == 1 {
		i.Hi = i.Lo
		return nil
	}
	return fmt.Errorf("analysis: bad interval %q", s)
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// MapFootprint summarises a program's use of one referenced map.
type MapFootprint struct {
	Map string `json:"map"`
	// Kind is the concrete map kind ("array", "hash", "percpu_hash",
	// ...); the cost model charges lock-free kinds less than the
	// mutex-based locked_hash.
	Kind       string `json:"kind,omitempty"`
	KeySize    int    `json:"key_size"`
	ValueSize  int    `json:"value_size"`
	MaxEntries int    `json:"max_entries"`
	// ReadSites / WriteSites count reachable instructions that read
	// (map_lookup, loads through a value pointer) or mutate (map_update,
	// map_delete, map_add, stores through a value pointer) the map.
	ReadSites  int `json:"read_sites"`
	WriteSites int `json:"write_sites"`
	// MaxKeyBytes / MaxValueBytes bound the key and value bytes any
	// single access touches.
	MaxKeyBytes   int `json:"max_key_bytes"`
	MaxValueBytes int `json:"max_value_bytes"`
	// Slots maps written value offsets ("+0", "+8", ...) to the interval
	// of values the program can store there (joined over all reachable
	// stores; "top" when unknown, e.g. map_add accumulation).
	Slots map[string]Interval `json:"slots,omitempty"`
}

// Facts are the lock-safety properties the analysis proves.
type Facts struct {
	// Terminates: forward-jump-only CFG, so every run executes at most
	// LongestPath instructions. Always true for verified programs.
	Terminates bool `json:"terminates"`
	// CtxReadOnly: the verifier rejects context stores, so the program
	// cannot alter hook inputs. Always true for verified programs.
	CtxReadOnly bool `json:"ctx_read_only"`
	// Deterministic: no rand or time helpers — same inputs and map
	// state produce the same decision.
	Deterministic bool `json:"deterministic"`
	// ReadOnly: no map mutation helpers and no stores through map value
	// pointers — the program observes but never writes shared state.
	ReadOnly bool `json:"read_only"`
	// HotPathClean: no trace/rand helpers on a decision (non-profiling)
	// hook; vacuously true for profiling hooks.
	HotPathClean bool `json:"hot_path_clean"`
}

// Warning codes.
const (
	WarnTraceInHotHook = "trace-in-hot-hook"
	WarnRandInHotHook  = "rand-in-hot-hook"
	WarnReturnRange    = "return-out-of-range"
	WarnReturnUnknown  = "return-unbounded"
)

// Warning is one lock-safety finding, anchored at an instruction.
type Warning struct {
	PC   int    `json:"pc"`
	Code string `json:"code"`
	Msg  string `json:"msg"`
}

// Report is the machine-readable result of analysing one program.
type Report struct {
	Program string `json:"program"`
	Kind    string `json:"kind"`
	Insns   int    `json:"insns"`

	// CostBound is the worst-case execution cost in cost units
	// (calibrated so one unit ≈ one nanosecond of estimated worst-case
	// execution; see cost.go): the maximum over all CFG paths of summed
	// per-instruction and per-helper costs. It is exact with respect to
	// the cost model because verified programs are loop-free.
	CostBound int64 `json:"cost_bound_ns"`
	// LongestPath is the instruction count of the longest CFG path.
	LongestPath int `json:"longest_path_insns"`
	// MaxHelperCalls bounds helper invocations on any single run.
	MaxHelperCalls int `json:"max_helper_calls"`

	// Return is the program's return-value (R0 at exit) interval,
	// joined over every reachable exit.
	Return Interval `json:"return"`
	// Registers holds exit-state intervals for registers proven to hold
	// a scalar narrower than top (joined over reachable exits).
	Registers map[string]Interval `json:"registers,omitempty"`

	Footprint []MapFootprint `json:"footprint,omitempty"`
	Facts     Facts          `json:"facts"`
	Warnings  []Warning      `json:"warnings,omitempty"`
}

// String renders a human-oriented summary (concordctl analyze).
func (r *Report) String() string {
	out := fmt.Sprintf("program %q (%s): %d insns\n", r.Program, r.Kind, r.Insns)
	out += fmt.Sprintf("  cost bound:    %d ns (longest path %d insns, ≤%d helper calls)\n",
		r.CostBound, r.LongestPath, r.MaxHelperCalls)
	out += fmt.Sprintf("  return:        %s\n", r.Return)
	out += fmt.Sprintf("  facts:         terminates=%v ctx_read_only=%v deterministic=%v read_only=%v hot_path_clean=%v\n",
		r.Facts.Terminates, r.Facts.CtxReadOnly, r.Facts.Deterministic, r.Facts.ReadOnly, r.Facts.HotPathClean)
	for _, f := range r.Footprint {
		out += fmt.Sprintf("  map %-12s key=%dB value=%dB entries=%d reads=%d writes=%d",
			f.Map, f.KeySize, f.ValueSize, f.MaxEntries, f.ReadSites, f.WriteSites)
		if len(f.Slots) > 0 {
			offs := make([]string, 0, len(f.Slots))
			for o := range f.Slots {
				offs = append(offs, o)
			}
			sort.Strings(offs)
			out += " slots:"
			for _, o := range offs {
				out += fmt.Sprintf(" %s=%s", o, f.Slots[o])
			}
		}
		out += "\n"
	}
	for _, w := range r.Warnings {
		out += fmt.Sprintf("  warning:       pc %d: %s: %s\n", w.PC, w.Code, w.Msg)
	}
	return out
}

// MaxCost returns the largest cost bound across a set of reports (the
// number admission compares against a per-hook budget).
func MaxCost(reports map[policy.Kind]*Report) int64 {
	var max int64
	for _, r := range reports {
		if r != nil && r.CostBound > max {
			max = r.CostBound
		}
	}
	return max
}

// --- abstract state ---

type vkind uint8

const (
	vUnknown vkind = iota
	vScalar
	vMapPtr
	vStackPtr
	vCtxPtr
	vMapValPtr // includes the maybe-null lookup result
)

type absVal struct {
	kind   vkind
	iv     Interval // vScalar only
	mapIdx int      // vMapPtr / vMapValPtr
	off    int64    // vStackPtr / vCtxPtr / vMapValPtr
}

func scalar(iv Interval) absVal { return absVal{kind: vScalar, iv: iv} }

func (v absVal) merge(o absVal) absVal {
	if v.kind != o.kind || v.mapIdx != o.mapIdx {
		return absVal{}
	}
	switch v.kind {
	case vScalar:
		return scalar(v.iv.Join(o.iv))
	default:
		if v.off != o.off {
			return absVal{}
		}
		return v
	}
}

// absState is the interval-domain state at one program point. Stack
// slots track intervals for 8-byte aligned scalar stores (the spill
// slots and map key/value buffers the DSL compiler emits).
type absState struct {
	regs  [policy.NumRegs]absVal
	stack map[int64]Interval
	live  bool
}

func (s *absState) clone() absState {
	out := *s
	out.stack = make(map[int64]Interval, len(s.stack))
	for k, v := range s.stack {
		out.stack[k] = v
	}
	return out
}

func (s *absState) merge(o *absState) {
	if !s.live {
		*s = o.clone()
		return
	}
	for i := range s.regs {
		s.regs[i] = s.regs[i].merge(o.regs[i])
	}
	for k, v := range s.stack {
		ov, ok := o.stack[k]
		if !ok {
			delete(s.stack, k)
			continue
		}
		s.stack[k] = v.Join(ov)
	}
}

// --- analysis ---

// Analyze abstractly interprets a verified program and returns its
// report. The program must have passed policy.Verify; unverified
// programs are verified first and the verifier's error is returned on
// rejection (analysis facts are only sound for verified programs).
func Analyze(p *policy.Program) (*Report, error) {
	if !p.Verified() {
		if _, err := policy.Verify(p); err != nil {
			return nil, fmt.Errorf("analysis: program must pass verification: %w", err)
		}
	}
	n := len(p.Insns)
	r := &Report{
		Program: p.Name,
		Kind:    p.Kind.String(),
		Insns:   n,
		Facts: Facts{
			Terminates:    true,
			CtxReadOnly:   true,
			Deterministic: true,
			ReadOnly:      true,
			HotPathClean:  true,
		},
	}

	// Per-map accumulators, indexed like p.Maps.
	type mapAcc struct {
		reads, writes       int
		maxKey, maxVal      int
		slots               map[int64]Interval
	}
	accs := make([]mapAcc, len(p.Maps))
	for i := range accs {
		accs[i].slots = make(map[int64]Interval)
	}
	touchVal := func(idx int, hi int64) {
		if int(hi) > accs[idx].maxVal {
			accs[idx].maxVal = int(hi)
		}
	}
	writeSlot := func(idx int, off int64, iv Interval) {
		acc := &accs[idx]
		if cur, ok := acc.slots[off]; ok {
			acc.slots[off] = cur.Join(iv)
		} else {
			acc.slots[off] = iv
		}
	}

	// Forward abstract interpretation in pc order. All jumps are
	// forward, so one pass reaches the fixed point (every merge target
	// is ahead of the merging instruction).
	states := make([]absState, n)
	entry := &states[0]
	entry.live = true
	entry.stack = make(map[int64]Interval)
	entry.regs[policy.R1] = absVal{kind: vCtxPtr}
	entry.regs[policy.RFP] = absVal{kind: vStackPtr}

	hot := !p.Kind.IsProfiling()
	var exitState absState // join of states at reachable exits

	propagate := func(st *absState, to int) {
		if to < n {
			states[to].merge(st)
		}
	}

	for pc := 0; pc < n; pc++ {
		if !states[pc].live {
			continue
		}
		st := states[pc].clone()
		in := p.Insns[pc]
		op := in.Op

		switch {
		case op == policy.OpExit:
			exitState.merge(&st)

		case op == policy.OpCall:
			h := policy.HelperID(in.Imm)
			switch h {
			case policy.HelperRand:
				r.Facts.Deterministic = false
				if hot {
					r.Facts.HotPathClean = false
					r.Warnings = append(r.Warnings, Warning{
						PC: pc, Code: WarnRandInHotHook,
						Msg: fmt.Sprintf("rand helper on the hot %s hook makes the decision nondeterministic", p.Kind),
					})
				}
			case policy.HelperKtimeNS:
				r.Facts.Deterministic = false
			case policy.HelperTrace:
				if hot {
					r.Facts.HotPathClean = false
					r.Warnings = append(r.Warnings, Warning{
						PC: pc, Code: WarnTraceInHotHook,
						Msg: fmt.Sprintf("trace (debug) helper on the hot %s hook costs %d ns per decision", p.Kind, HelperCosts[policy.HelperTrace]),
					})
				}
			}

			// Map helpers: the verifier proved R1 is a map pointer and
			// the stack buffers are sized; here we only account.
			if m1 := st.regs[policy.R1]; m1.kind == vMapPtr && m1.mapIdx < len(p.Maps) {
				idx := m1.mapIdx
				m := p.Maps[idx]
				switch h {
				case policy.HelperMapLookup:
					accs[idx].reads++
					if ks := m.KeySize(); ks > accs[idx].maxKey {
						accs[idx].maxKey = ks
					}
				case policy.HelperMapDelete:
					accs[idx].writes++
					r.Facts.ReadOnly = false
					if ks := m.KeySize(); ks > accs[idx].maxKey {
						accs[idx].maxKey = ks
					}
				case policy.HelperMapAdd:
					accs[idx].writes++
					r.Facts.ReadOnly = false
					if ks := m.KeySize(); ks > accs[idx].maxKey {
						accs[idx].maxKey = ks
					}
					touchVal(idx, 8)
					writeSlot(idx, 0, Top) // accumulator: unbounded over runs
				case policy.HelperMapUpdate:
					accs[idx].writes++
					r.Facts.ReadOnly = false
					if ks := m.KeySize(); ks > accs[idx].maxKey {
						accs[idx].maxKey = ks
					}
					vs := int64(m.ValueSize())
					touchVal(idx, vs)
					// The written value comes from the stack buffer at
					// R3; propagate per-slot intervals when tracked.
					if buf := st.regs[policy.R3]; buf.kind == vStackPtr {
						for o := int64(0); o < vs; o += 8 {
							iv, ok := st.stack[buf.off+o]
							if !ok {
								iv = Top
							}
							writeSlot(idx, o, iv)
						}
					} else {
						for o := int64(0); o < vs; o += 8 {
							writeSlot(idx, o, Top)
						}
					}
				}
			}

			// Model the return value (reads R1) before clobbering the
			// caller-saved registers.
			ret := helperReturn(h, p, &st)
			for reg := policy.R1; reg <= policy.R5; reg++ {
				st.regs[reg] = absVal{}
			}
			st.regs[policy.R0] = ret
			propagate(&st, pc+1)

		case op == policy.OpLoadMapPtr:
			st.regs[in.Dst] = absVal{kind: vMapPtr, mapIdx: int(in.Imm)}
			propagate(&st, pc+1)

		case op == policy.OpJa:
			propagate(&st, pc+1+int(in.Off))

		case op.IsCondJump():
			taken := st.clone()
			fall := st
			refineCond(in, &taken, &fall)
			propagate(&taken, pc+1+int(in.Off))
			propagate(&fall, pc+1)

		case op.IsLoad():
			ptr := st.regs[in.Src]
			loaded := scalar(Top)
			switch ptr.kind {
			case vStackPtr:
				if off := ptr.off + int64(in.Off); op == policy.OpLdxDW {
					if iv, ok := st.stack[off]; ok {
						loaded = scalar(iv)
					}
				}
			case vMapValPtr:
				if ptr.mapIdx < len(p.Maps) {
					accs[ptr.mapIdx].reads++
					touchVal(ptr.mapIdx, ptr.off+int64(in.Off)+int64(op.AccessSize()))
				}
			}
			st.regs[in.Dst] = loaded
			propagate(&st, pc+1)

		case op.IsStore():
			ptr := st.regs[in.Dst]
			src := scalar(Const(in.Imm))
			if op.UsesSrcReg() {
				src = st.regs[in.Src]
				if src.kind != vScalar {
					src = scalar(Top)
				}
			}
			switch ptr.kind {
			case vStackPtr:
				off := ptr.off + int64(in.Off)
				if op == policy.OpStxDW || op == policy.OpStDW {
					st.stack[off] = src.iv
				} else {
					// Narrow store: the 8-byte slot no longer holds a
					// tracked scalar.
					delete(st.stack, off-off%8)
				}
			case vMapValPtr:
				if ptr.mapIdx < len(p.Maps) {
					r.Facts.ReadOnly = false
					accs[ptr.mapIdx].writes++
					off := ptr.off + int64(in.Off)
					touchVal(ptr.mapIdx, off+int64(op.AccessSize()))
					writeSlot(ptr.mapIdx, off, src.iv)
				}
			}
			propagate(&st, pc+1)

		case op.IsALU():
			st.regs[in.Dst] = aluAbstract(in, &st)
			propagate(&st, pc+1)
		}
	}

	// Exit-state register facts.
	if exitState.live {
		if rv := exitState.regs[policy.R0]; rv.kind == vScalar {
			r.Return = rv.iv
		} else {
			r.Return = Top
		}
		for reg := policy.R0; reg < policy.RFP; reg++ {
			v := exitState.regs[reg]
			if v.kind == vScalar && !v.iv.IsTop() {
				if r.Registers == nil {
					r.Registers = make(map[string]Interval)
				}
				r.Registers[reg.String()] = v.iv
			}
		}
	} else {
		r.Return = Top
	}

	// Decision-range warning for behavioural hooks.
	if hot {
		lo, hi := decisionRange(p.Kind)
		switch {
		case r.Return.IsTop():
			r.Warnings = append(r.Warnings, Warning{
				PC: 0, Code: WarnReturnUnknown,
				Msg: fmt.Sprintf("cannot bound the %s decision value (expected [%d,%d])", p.Kind, lo, hi),
			})
		case !r.Return.Within(lo, hi):
			r.Warnings = append(r.Warnings, Warning{
				PC: 0, Code: WarnReturnRange,
				Msg: fmt.Sprintf("%s decision value %s outside [%d,%d]; out-of-range values fall back to the default behaviour", p.Kind, r.Return, lo, hi),
			})
		}
	}

	// Cost and path bounds over the reachable DAG.
	r.CostBound, r.LongestPath, r.MaxHelperCalls = costBounds(p, states)

	// Footprint rows in map order.
	for i, m := range p.Maps {
		acc := &accs[i]
		fp := MapFootprint{
			Map: m.Name(), Kind: policy.MapKindOf(m),
			KeySize: m.KeySize(), ValueSize: m.ValueSize(),
			MaxEntries: m.MaxEntries(),
			ReadSites:  acc.reads, WriteSites: acc.writes,
			MaxKeyBytes: acc.maxKey, MaxValueBytes: acc.maxVal,
		}
		if len(acc.slots) > 0 {
			fp.Slots = make(map[string]Interval, len(acc.slots))
			for off, iv := range acc.slots {
				fp.Slots[fmt.Sprintf("+%d", off)] = iv
			}
		}
		r.Footprint = append(r.Footprint, fp)
	}

	sort.Slice(r.Warnings, func(i, j int) bool {
		if r.Warnings[i].PC != r.Warnings[j].PC {
			return r.Warnings[i].PC < r.Warnings[j].PC
		}
		return r.Warnings[i].Code < r.Warnings[j].Code
	})
	return r, nil
}

// helperReturn models a helper's return value.
func helperReturn(h policy.HelperID, p *policy.Program, st *absState) absVal {
	switch h {
	case policy.HelperMapLookup:
		if m1 := st.regs[policy.R1]; m1.kind == vMapPtr {
			return absVal{kind: vMapValPtr, mapIdx: m1.mapIdx}
		}
		return scalar(Top)
	case policy.HelperMapUpdate, policy.HelperMapDelete, policy.HelperMapAdd:
		// 0 or errno; errnos are small negatives, keep it simple.
		return scalar(Top)
	case policy.HelperCPU, policy.HelperNUMANode:
		return scalar(Interval{0, 4096}) // topology-bounded identifiers
	case policy.HelperTrace:
		return scalar(Const(0))
	default:
		return scalar(Top)
	}
}

// decisionRange is the meaningful return range per behavioural kind.
func decisionRange(k policy.Kind) (lo, hi int64) {
	if k == policy.KindScheduleWaiter {
		return 0, policy.WaiterParkNow
	}
	return 0, 1 // cmp_node / skip_shuffle are booleans
}

// refineCond narrows the jump operand's interval in the taken and
// fall-through states where the comparison semantics allow it.
func refineCond(in policy.Instruction, taken, fall *absState) {
	dst := taken.regs[in.Dst]
	if dst.kind == vMapValPtr && !in.Op.UsesSrcReg() && in.Imm == 0 {
		// The map_lookup null check: taken/fall split into null scalar
		// and non-null pointer, mirroring the verifier.
		null, nonNull := scalar(Const(0)), absVal{kind: vMapValPtr, mapIdx: dst.mapIdx, off: dst.off}
		switch in.Op {
		case policy.OpJeqImm:
			taken.regs[in.Dst] = null
			fall.regs[in.Dst] = nonNull
		case policy.OpJneImm:
			taken.regs[in.Dst] = nonNull
			fall.regs[in.Dst] = null
		}
		return
	}
	if dst.kind != vScalar || in.Op.UsesSrcReg() {
		return
	}
	iv, imm := dst.iv, in.Imm
	set := func(st *absState, niv Interval) {
		if niv.Lo > niv.Hi {
			// Contradiction: the branch is infeasible under the abstract
			// state; keep the old interval (sound, just less precise).
			return
		}
		st.regs[in.Dst] = scalar(niv)
	}
	switch in.Op {
	case policy.OpJeqImm:
		set(taken, Const(imm))
	case policy.OpJneImm:
		set(fall, Const(imm))
	case policy.OpJsgtImm:
		set(taken, Interval{max64(iv.Lo, imm+1), iv.Hi})
		set(fall, Interval{iv.Lo, min64(iv.Hi, imm)})
	case policy.OpJsgeImm:
		set(taken, Interval{max64(iv.Lo, imm), iv.Hi})
		set(fall, Interval{iv.Lo, min64(iv.Hi, imm-1)})
	case policy.OpJsltImm:
		set(taken, Interval{iv.Lo, min64(iv.Hi, imm-1)})
		set(fall, Interval{max64(iv.Lo, imm), iv.Hi})
	case policy.OpJsleImm:
		set(taken, Interval{iv.Lo, min64(iv.Hi, imm)})
		set(fall, Interval{max64(iv.Lo, imm+1), iv.Hi})
	case policy.OpJgtImm, policy.OpJgeImm, policy.OpJltImm, policy.OpJleImm:
		// Unsigned comparisons agree with signed ones only when both
		// sides are proven non-negative.
		if iv.Lo < 0 || imm < 0 {
			return
		}
		switch in.Op {
		case policy.OpJgtImm:
			set(taken, Interval{max64(iv.Lo, imm+1), iv.Hi})
			set(fall, Interval{iv.Lo, min64(iv.Hi, imm)})
		case policy.OpJgeImm:
			set(taken, Interval{max64(iv.Lo, imm), iv.Hi})
			set(fall, Interval{iv.Lo, min64(iv.Hi, imm-1)})
		case policy.OpJltImm:
			set(taken, Interval{iv.Lo, min64(iv.Hi, imm-1)})
			set(fall, Interval{max64(iv.Lo, imm), iv.Hi})
		case policy.OpJleImm:
			set(taken, Interval{iv.Lo, min64(iv.Hi, imm)})
			set(fall, Interval{max64(iv.Lo, imm+1), iv.Hi})
		}
	}
}

// aluAbstract models one ALU instruction over the interval domain.
func aluAbstract(in policy.Instruction, st *absState) absVal {
	var src absVal
	if in.Op.UsesSrcReg() {
		src = st.regs[in.Src]
	} else {
		src = scalar(Const(in.Imm))
	}
	switch in.Op {
	case policy.OpMovImm:
		return scalar(Const(in.Imm))
	case policy.OpMovReg:
		return src
	}
	dst := st.regs[in.Dst]

	// Pointer arithmetic (the verifier proved the offset is a known
	// constant): track the moving offset.
	if dst.kind == vStackPtr || dst.kind == vCtxPtr || dst.kind == vMapValPtr {
		if src.kind == vScalar && src.iv.IsConst() {
			delta := src.iv.Lo
			if in.Op == policy.OpSubImm || in.Op == policy.OpSubReg {
				delta = -delta
			}
			out := dst
			out.off += delta
			return out
		}
		return absVal{}
	}
	if dst.kind != vScalar || src.kind != vScalar {
		return scalar(Top)
	}
	return scalar(intervalALU(in.Op, dst.iv, src.iv))
}

// intervalALU is the interval transfer function for scalar ALU ops.
// Exact for constant operands (mirroring the VM's uint64 semantics);
// otherwise sound rules are applied for non-negative ranges and top is
// returned when the unsigned/signed mismatch could bite.
func intervalALU(op policy.Op, a, b Interval) Interval {
	if a.IsConst() && b.IsConst() {
		return Const(constALU(op, a.Lo, b.Lo))
	}
	nonneg := a.Lo >= 0 && b.Lo >= 0
	switch op {
	case policy.OpAddImm, policy.OpAddReg:
		lo, okL := addOv(a.Lo, b.Lo)
		hi, okH := addOv(a.Hi, b.Hi)
		if okL && okH {
			return Interval{lo, hi}
		}
	case policy.OpSubImm, policy.OpSubReg:
		if nonneg && a.Lo >= b.Hi {
			// Cannot wrap below zero.
			return Interval{a.Lo - b.Hi, a.Hi - b.Lo}
		}
	case policy.OpMulImm, policy.OpMulReg:
		if nonneg {
			if hi, ok := mulOv(a.Hi, b.Hi); ok {
				return Interval{a.Lo * b.Lo, hi}
			}
		}
	case policy.OpDivImm, policy.OpDivReg:
		if nonneg {
			lo := int64(0)
			if b.IsConst() && b.Lo > 0 {
				lo = a.Lo / b.Lo
			}
			return Interval{lo, a.Hi} // division by zero yields 0
		}
	case policy.OpModImm, policy.OpModReg:
		if nonneg {
			// r < b unless b == 0, in which case r == a.
			return Interval{0, max64(a.Hi, max64(b.Hi-1, 0))}
		}
	case policy.OpAndImm, policy.OpAndReg:
		if nonneg {
			return Interval{0, min64(a.Hi, b.Hi)}
		}
		if b.Lo >= 0 {
			return Interval{0, b.Hi} // mask with non-negative bound
		}
	case policy.OpOrImm, policy.OpOrReg, policy.OpXorImm, policy.OpXorReg:
		if nonneg {
			m := uint64(max64(a.Hi, b.Hi))
			if n := bits.Len64(m); n < 63 {
				return Interval{0, int64(1<<n) - 1}
			}
		}
	case policy.OpLshImm, policy.OpLshReg:
		if nonneg && b.IsConst() {
			s := uint64(b.Lo) & 63
			if s < 63 && a.Hi <= math.MaxInt64>>s {
				return Interval{a.Lo << s, a.Hi << s}
			}
		}
	case policy.OpRshImm, policy.OpRshReg, policy.OpArshImm, policy.OpArshReg:
		if nonneg && b.IsConst() {
			s := uint64(b.Lo) & 63
			return Interval{a.Lo >> s, a.Hi >> s}
		}
	}
	return Top
}

// constALU mirrors the VM's uint64 arithmetic for constant operands.
func constALU(op policy.Op, av, bv int64) int64 {
	a, b := uint64(av), uint64(bv)
	var r uint64
	switch op {
	case policy.OpAddImm, policy.OpAddReg:
		r = a + b
	case policy.OpSubImm, policy.OpSubReg:
		r = a - b
	case policy.OpMulImm, policy.OpMulReg:
		r = a * b
	case policy.OpDivImm, policy.OpDivReg:
		if b == 0 {
			r = 0
		} else {
			r = a / b
		}
	case policy.OpModImm, policy.OpModReg:
		if b == 0 {
			r = a
		} else {
			r = a % b
		}
	case policy.OpAndImm, policy.OpAndReg:
		r = a & b
	case policy.OpOrImm, policy.OpOrReg:
		r = a | b
	case policy.OpXorImm, policy.OpXorReg:
		r = a ^ b
	case policy.OpLshImm, policy.OpLshReg:
		r = a << (b & 63)
	case policy.OpRshImm, policy.OpRshReg:
		r = a >> (b & 63)
	case policy.OpArshImm, policy.OpArshReg:
		r = uint64(int64(a) >> (b & 63))
	case policy.OpNeg:
		r = -a
	default:
		return 0
	}
	return int64(r)
}

func addOv(a, b int64) (int64, bool) {
	s := a + b
	if (a > 0 && b > 0 && s < 0) || (a < 0 && b < 0 && s >= 0) {
		return 0, false
	}
	return s, true
}

func mulOv(a, b int64) (int64, bool) {
	if a == 0 || b == 0 {
		return 0, true
	}
	p := a * b
	if p/b != a {
		return 0, false
	}
	return p, true
}
