package analysis

import (
	"strings"
	"testing"

	"concord/internal/policy"
)

func analyze(t *testing.T, p *policy.Program) *Report {
	t.Helper()
	r, err := Analyze(p)
	if err != nil {
		t.Fatalf("Analyze(%q): %v", p.Name, err)
	}
	return r
}

func TestStraightLineCost(t *testing.T) {
	p := policy.NewBuilder("line", policy.KindLockAcquire).
		MovImm(policy.R0, 1). // CostALU
		AddImm(policy.R0, 2). // CostALU
		Exit().               // CostExit
		MustProgram()
	r := analyze(t, p)
	want := 2*CostALU + CostExit
	if r.CostBound != want {
		t.Fatalf("cost bound = %d, want %d", r.CostBound, want)
	}
	if r.LongestPath != 3 {
		t.Fatalf("longest path = %d, want 3", r.LongestPath)
	}
	if !r.Return.IsConst() || r.Return.Lo != 3 {
		t.Fatalf("return interval = %s, want 3", r.Return)
	}
}

func TestBranchTakesMaxPath(t *testing.T) {
	// One arm calls a helper (expensive), the other is a bare return;
	// the bound must follow the helper arm.
	b := policy.NewBuilder("branch", policy.KindLockAcquire)
	b.MovReg(policy.R6, policy.R1)
	b.LoadCtx(policy.R2, policy.R6, "cpu")
	b.JmpImm(policy.OpJeqImm, policy.R2, 0, "cheap")
	b.Call(policy.HelperKtimeNS)
	b.MovImm(policy.R0, 0)
	b.Exit()
	b.Label("cheap")
	b.MovImm(policy.R0, 0)
	b.Exit()
	p := b.MustProgram()
	r := analyze(t, p)

	expensive := CostALU + CostMem + CostJump +
		CostCallBase + HelperCosts[policy.HelperKtimeNS] + CostALU + CostExit
	if r.CostBound != expensive {
		t.Fatalf("cost bound = %d, want %d (the helper arm)", r.CostBound, expensive)
	}
	if r.MaxHelperCalls != 1 {
		t.Fatalf("max helper calls = %d, want 1", r.MaxHelperCalls)
	}
	if r.Facts.Deterministic {
		t.Fatal("ktime_ns program reported deterministic")
	}
}

func TestReturnIntervalJoinsExits(t *testing.T) {
	b := policy.NewBuilder("bool", policy.KindCmpNode)
	b.MovReg(policy.R6, policy.R1)
	b.LoadCtx(policy.R2, policy.R6, "curr_socket")
	b.JmpImm(policy.OpJeqImm, policy.R2, 0, "one")
	b.ReturnImm(0)
	b.Label("one")
	b.ReturnImm(1)
	p := b.MustProgram()
	r := analyze(t, p)
	if r.Return.Lo != 0 || r.Return.Hi != 1 {
		t.Fatalf("return interval = %s, want [0,1]", r.Return)
	}
	if len(r.Warnings) != 0 {
		t.Fatalf("unexpected warnings: %+v", r.Warnings)
	}
}

func TestIntervalRefinementOnCondJump(t *testing.T) {
	// r2 = cpu() in [0,4096]; if r2 <= 7 return r2 else return 0:
	// the return interval must be [0,7].
	b := policy.NewBuilder("refine", policy.KindLockAcquire)
	b.Call(policy.HelperCPU)
	b.MovReg(policy.R2, policy.R0)
	b.JmpImm(policy.OpJgtImm, policy.R2, 7, "big")
	b.ReturnReg(policy.R2)
	b.Label("big")
	b.ReturnImm(0)
	p := b.MustProgram()
	r := analyze(t, p)
	if r.Return.Lo != 0 || r.Return.Hi != 7 {
		t.Fatalf("return interval = %s, want [0,7]", r.Return)
	}
}

func TestFootprintAndSlotIntervals(t *testing.T) {
	m := policy.NewArrayMap("counters", 8, 4)
	b := policy.NewBuilder("writer", policy.KindLockRelease)
	// key 0 at fp-8, value 42 at fp-16; map_update(counters, &key, &val).
	b.StoreStackImm(policy.OpStDW, -8, 0)
	b.StoreStackImm(policy.OpStDW, -16, 42)
	b.LoadMapPtr(policy.R1, m)
	b.MovReg(policy.R2, policy.RFP)
	b.AddImm(policy.R2, -8)
	b.MovReg(policy.R3, policy.RFP)
	b.AddImm(policy.R3, -16)
	b.Call(policy.HelperMapUpdate)
	b.ReturnImm(0)
	p := b.MustProgram()
	r := analyze(t, p)

	if len(r.Footprint) != 1 {
		t.Fatalf("footprint rows = %d, want 1", len(r.Footprint))
	}
	fp := r.Footprint[0]
	if fp.Map != "counters" || fp.WriteSites != 1 || fp.ReadSites != 0 {
		t.Fatalf("footprint = %+v", fp)
	}
	if fp.MaxValueBytes != 8 || fp.MaxKeyBytes != m.KeySize() {
		t.Fatalf("footprint bytes = key %d value %d", fp.MaxKeyBytes, fp.MaxValueBytes)
	}
	iv, ok := fp.Slots["+0"]
	if !ok || !iv.IsConst() || iv.Lo != 42 {
		t.Fatalf("slot +0 interval = %v (ok=%v), want 42", iv, ok)
	}
	if r.Facts.ReadOnly {
		t.Fatal("map_update program reported read-only")
	}
}

func TestLookupIsReadOnly(t *testing.T) {
	m := policy.NewHashMap("waits", 8, 8, 16)
	b := policy.NewBuilder("reader", policy.KindLockAcquired)
	b.StoreStackImm(policy.OpStDW, -8, 7)
	b.LoadMapPtr(policy.R1, m)
	b.MovReg(policy.R2, policy.RFP)
	b.AddImm(policy.R2, -8)
	b.Call(policy.HelperMapLookup)
	b.JmpImm(policy.OpJeqImm, policy.R0, 0, "null")
	b.Raw(policy.Instruction{Op: policy.OpLdxDW, Dst: policy.R0, Src: policy.R0})
	b.Exit()
	b.Label("null")
	b.ReturnImm(0)
	p := b.MustProgram()
	r := analyze(t, p)
	if !r.Facts.ReadOnly {
		t.Fatal("lookup-only program not reported read-only")
	}
	fp := r.Footprint[0]
	if fp.WriteSites != 0 || fp.ReadSites != 2 { // lookup + value load
		t.Fatalf("footprint sites = %+v", fp)
	}
	if !r.Facts.Deterministic {
		t.Fatal("lookup-only program not reported deterministic")
	}
}

func TestHotHookWarnings(t *testing.T) {
	build := func(kind policy.Kind) *policy.Program {
		b := policy.NewBuilder("tracer", kind)
		b.MovImm(policy.R1, 7)
		b.Call(policy.HelperTrace)
		b.ReturnImm(0)
		return b.MustProgram()
	}
	hot := analyze(t, build(policy.KindCmpNode))
	if hot.Facts.HotPathClean {
		t.Fatal("trace on cmp_node reported hot-path clean")
	}
	found := false
	for _, w := range hot.Warnings {
		if w.Code == WarnTraceInHotHook && w.PC == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("missing %s warning: %+v", WarnTraceInHotHook, hot.Warnings)
	}

	cold := analyze(t, build(policy.KindLockAcquire))
	if !cold.Facts.HotPathClean {
		t.Fatal("trace on profiling hook flagged")
	}
	for _, w := range cold.Warnings {
		if w.Code == WarnTraceInHotHook {
			t.Fatalf("profiling hook got hot-hook warning: %+v", w)
		}
	}
}

func TestRandWarningAndReturnRange(t *testing.T) {
	b := policy.NewBuilder("roulette", policy.KindCmpNode)
	b.Call(policy.HelperRand)
	b.Exit() // returns the raw rand value: unbounded decision
	p := b.MustProgram()
	r := analyze(t, p)
	codes := map[string]bool{}
	for _, w := range r.Warnings {
		codes[w.Code] = true
	}
	if !codes[WarnRandInHotHook] {
		t.Fatalf("missing %s warning: %+v", WarnRandInHotHook, r.Warnings)
	}
	if !codes[WarnReturnUnknown] {
		t.Fatalf("missing %s warning: %+v", WarnReturnUnknown, r.Warnings)
	}
	if r.Facts.Deterministic {
		t.Fatal("rand program reported deterministic")
	}
}

func TestReturnOutOfRangeWarning(t *testing.T) {
	p := policy.NewBuilder("wide", policy.KindScheduleWaiter).
		ReturnImm(9). // valid decisions are 0..2
		MustProgram()
	r := analyze(t, p)
	found := false
	for _, w := range r.Warnings {
		if w.Code == WarnReturnRange && strings.Contains(w.Msg, "9") {
			found = true
		}
	}
	if !found {
		t.Fatalf("missing %s warning: %+v", WarnReturnRange, r.Warnings)
	}
}

func TestMapAddSlotIsTop(t *testing.T) {
	m := policy.NewArrayMap("acc", 8, 1)
	b := policy.NewBuilder("adder", policy.KindLockContended)
	b.StoreStackImm(policy.OpStDW, -8, 0)
	b.LoadMapPtr(policy.R1, m)
	b.MovReg(policy.R2, policy.RFP)
	b.AddImm(policy.R2, -8)
	b.MovImm(policy.R3, 1)
	b.Call(policy.HelperMapAdd)
	b.ReturnImm(0)
	r := analyze(t, b.MustProgram())
	iv, ok := r.Footprint[0].Slots["+0"]
	if !ok || !iv.IsTop() {
		t.Fatalf("map_add slot interval = %v (ok=%v), want top", iv, ok)
	}
}

func TestAnalyzeRejectsUnverifiable(t *testing.T) {
	// Missing return value: the verifier rejects, so must Analyze.
	p := policy.NewBuilder("bad", policy.KindCmpNode).Exit().MustProgram()
	if _, err := Analyze(p); err == nil {
		t.Fatal("Analyze accepted an unverifiable program")
	}
}

func TestMaxCost(t *testing.T) {
	a := &Report{CostBound: 10}
	b := &Report{CostBound: 300}
	got := MaxCost(map[policy.Kind]*Report{policy.KindCmpNode: a, policy.KindSkipShuffle: b})
	if got != 300 {
		t.Fatalf("MaxCost = %d, want 300", got)
	}
	if MaxCost(nil) != 0 {
		t.Fatal("MaxCost(nil) != 0")
	}
}

func TestIntervalString(t *testing.T) {
	cases := []struct {
		iv   Interval
		want string
	}{
		{Top, "top"},
		{Const(7), "7"},
		{Interval{0, 1}, "[0,1]"},
	}
	for _, c := range cases {
		if got := c.iv.String(); got != c.want {
			t.Errorf("%+v.String() = %q, want %q", c.iv, got, c.want)
		}
	}
}
