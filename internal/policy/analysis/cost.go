package analysis

import "concord/internal/policy"

// The cost model. Units are calibrated so one unit approximates one
// nanosecond of worst-case execution on a modern x86 core running the
// native-compiled program (the interpreter is a small constant factor
// slower; admission budgets absorb it). The absolute scale matters less
// than the invariant the model preserves: costs are upper bounds, so
// the longest-path sum is a true worst-case bound for the loop-free
// programs the verifier admits.
//
// Per-instruction base costs.
const (
	CostALU  int64 = 1 // register ALU, mov, neg
	CostJump int64 = 1 // ja and conditional jumps
	CostMem  int64 = 2 // stack/ctx/map-value loads and stores
	CostLdMap int64 = 1 // materializing a map reference
	CostExit int64 = 1
	// CostCallBase is the helper dispatch overhead (argument marshal,
	// indirect call) added to every helper's own cost.
	CostCallBase int64 = 10
)

// HelperCosts is the per-helper worst-case cost, added to CostCallBase
// per call. Map mutation is priced above lookup (bucket locking /
// publication), hashes above arrays, and environment probes near their
// syscall-free implementations. concordvet's helperdrift analyzer
// checks this table stays exhaustive over the HelperID enum.
var HelperCosts = map[policy.HelperID]int64{
	policy.HelperMapLookup: 30,
	policy.HelperMapUpdate: 45,
	policy.HelperMapDelete: 35,
	policy.HelperMapAdd:    20,
	policy.HelperKtimeNS:   20,
	policy.HelperCPU:       5,
	policy.HelperNUMANode:  5,
	policy.HelperTaskID:    5,
	policy.HelperTaskPrio:  5,
	policy.HelperRand:      10,
	policy.HelperTrace:     15,
}

// insnCost is the cost of one non-call, non-jump instruction.
func insnCost(op policy.Op) int64 {
	switch {
	case op == policy.OpExit:
		return CostExit
	case op == policy.OpLoadMapPtr:
		return CostLdMap
	case op.IsLoad() || op.IsStore():
		return CostMem
	default:
		return CostALU
	}
}

// costBounds computes the worst-case cost, the longest instruction
// path, and the maximum helper-call count over all paths from the entry
// of a verified (forward-jump-only, hence DAG) program. Unreachable
// instructions (states[pc].live == false) contribute nothing.
//
// The recurrence runs in reverse pc order: every successor of pc is
// > pc, so cost[pc] can max over already-computed successors — a
// longest-path dynamic program, exact for DAGs.
func costBounds(p *policy.Program, states []absState) (cost int64, path, helpers int) {
	n := len(p.Insns)
	costs := make([]int64, n)
	paths := make([]int, n)
	calls := make([]int, n)

	for pc := n - 1; pc >= 0; pc-- {
		if !states[pc].live {
			continue
		}
		in := p.Insns[pc]
		succ := func(to int) (int64, int, int) {
			if to >= n {
				return 0, 0, 0
			}
			return costs[to], paths[to], calls[to]
		}
		switch {
		case in.Op == policy.OpExit:
			costs[pc], paths[pc], calls[pc] = CostExit, 1, 0

		case in.Op == policy.OpCall:
			c, pl, hc := succ(pc + 1)
			costs[pc] = CostCallBase + HelperCosts[policy.HelperID(in.Imm)] + c
			paths[pc] = 1 + pl
			calls[pc] = 1 + hc

		case in.Op == policy.OpJa:
			c, pl, hc := succ(pc + 1 + int(in.Off))
			costs[pc] = CostJump + c
			paths[pc] = 1 + pl
			calls[pc] = hc

		case in.Op.IsCondJump():
			c1, p1, h1 := succ(pc + 1)
			c2, p2, h2 := succ(pc + 1 + int(in.Off))
			costs[pc] = CostJump + max64(c1, c2)
			if p2 > p1 {
				p1 = p2
			}
			paths[pc] = 1 + p1
			if h2 > h1 {
				h1 = h2
			}
			calls[pc] = h1

		default:
			c, pl, hc := succ(pc + 1)
			costs[pc] = insnCost(in.Op) + c
			paths[pc] = 1 + pl
			calls[pc] = hc
		}
	}
	return costs[0], paths[0], calls[0]
}
