package analysis

import "concord/internal/policy"

// The cost model. Units are calibrated so one unit approximates one
// nanosecond of worst-case execution on a modern x86 core running the
// native-compiled program (the interpreter is a small constant factor
// slower; admission budgets absorb it). The absolute scale matters less
// than the invariant the model preserves: costs are upper bounds, so
// the longest-path sum is a true worst-case bound for the loop-free
// programs the verifier admits.
//
// Per-instruction base costs.
const (
	CostALU  int64 = 1 // register ALU, mov, neg
	CostJump int64 = 1 // ja and conditional jumps
	CostMem  int64 = 2 // stack/ctx/map-value loads and stores
	CostLdMap int64 = 1 // materializing a map reference
	CostExit int64 = 1
	// CostCallBase is the helper dispatch overhead (argument marshal,
	// indirect call) added to every helper's own cost.
	CostCallBase int64 = 10
)

// HelperCosts is the per-helper worst-case cost, added to CostCallBase
// per call. Map mutation is priced above lookup (bucket locking /
// publication), hashes above arrays, and environment probes near their
// syscall-free implementations. concordvet's helperdrift analyzer
// checks this table stays exhaustive over the HelperID enum.
//
// For map helpers these are the *conservative* costs, charged when the
// analysis cannot tell which map a call targets; they match the
// mutex-based locked_hash kind, the most expensive implementation.
// When the abstract state pins R1 to a specific map, costBounds refines
// the charge from MapKindHelperCosts below.
var HelperCosts = map[policy.HelperID]int64{
	policy.HelperMapLookup: 30,
	policy.HelperMapUpdate: 45,
	policy.HelperMapDelete: 35,
	policy.HelperMapAdd:    20,
	policy.HelperKtimeNS:   20,
	policy.HelperCPU:       5,
	policy.HelperNUMANode:  5,
	policy.HelperTaskID:    5,
	policy.HelperTaskPrio:  5,
	policy.HelperRand:      10,
	policy.HelperTrace:     15,
	policy.HelperLockStats: 12, // two atomic loads + a snapshot field read
	policy.HelperOCCSet:    10, // one mode load + one CAS on the tier state
}

// MapKindCost prices the four map helpers for one concrete map kind. A
// zero field falls back to the conservative HelperCosts row — notably
// Delete on array kinds, which only returns ErrNoDelete but stays
// priced as an upper bound.
type MapKindCost struct {
	Lookup, Update, Delete, Add int64
}

// MapKindHelperCosts refines map-helper costs per concrete map kind.
// Arrays are a bounds check and an index; the lock-free hash kinds pay
// a probe plus seqlock validation on lookup and a bucket lock on
// mutation; locked_hash pays the global RWMutex and equals the
// conservative HelperCosts row.
var MapKindHelperCosts = map[string]MapKindCost{
	"array":        {Lookup: 12, Update: 18, Add: 10},
	"percpu_array": {Lookup: 12, Update: 18, Add: 10},
	"hash":         {Lookup: 18, Update: 40, Delete: 30, Add: 14},
	"percpu_hash":  {Lookup: 18, Update: 42, Delete: 30, Add: 12},
	"locked_hash":  {Lookup: 30, Update: 45, Delete: 35, Add: 20},
}

func (c MapKindCost) forHelper(h policy.HelperID) int64 {
	switch h {
	case policy.HelperMapLookup:
		return c.Lookup
	case policy.HelperMapUpdate:
		return c.Update
	case policy.HelperMapDelete:
		return c.Delete
	case policy.HelperMapAdd:
		return c.Add
	}
	return 0
}

// helperCallCost charges a helper call, refining map-helper costs by
// the concrete kind of the map in R1 when the abstract state knows it.
func helperCallCost(h policy.HelperID, p *policy.Program, st *absState) int64 {
	base := HelperCosts[h]
	if h < policy.HelperMapLookup || h > policy.HelperMapAdd {
		return base
	}
	r1 := st.regs[policy.R1]
	if r1.kind != vMapPtr || r1.mapIdx >= len(p.Maps) {
		return base
	}
	if kc := MapKindHelperCosts[policy.MapKindOf(p.Maps[r1.mapIdx])].forHelper(h); kc > 0 {
		return kc
	}
	return base
}

// insnCost is the cost of one non-call, non-jump instruction.
func insnCost(op policy.Op) int64 {
	switch {
	case op == policy.OpExit:
		return CostExit
	case op == policy.OpLoadMapPtr:
		return CostLdMap
	case op.IsLoad() || op.IsStore():
		return CostMem
	default:
		return CostALU
	}
}

// costBounds computes the worst-case cost, the longest instruction
// path, and the maximum helper-call count over all paths from the entry
// of a verified (forward-jump-only, hence DAG) program. Unreachable
// instructions (states[pc].live == false) contribute nothing.
//
// The recurrence runs in reverse pc order: every successor of pc is
// > pc, so cost[pc] can max over already-computed successors — a
// longest-path dynamic program, exact for DAGs.
func costBounds(p *policy.Program, states []absState) (cost int64, path, helpers int) {
	n := len(p.Insns)
	costs := make([]int64, n)
	paths := make([]int, n)
	calls := make([]int, n)

	for pc := n - 1; pc >= 0; pc-- {
		if !states[pc].live {
			continue
		}
		in := p.Insns[pc]
		succ := func(to int) (int64, int, int) {
			if to >= n {
				return 0, 0, 0
			}
			return costs[to], paths[to], calls[to]
		}
		switch {
		case in.Op == policy.OpExit:
			costs[pc], paths[pc], calls[pc] = CostExit, 1, 0

		case in.Op == policy.OpCall:
			c, pl, hc := succ(pc + 1)
			costs[pc] = CostCallBase + helperCallCost(policy.HelperID(in.Imm), p, &states[pc]) + c
			paths[pc] = 1 + pl
			calls[pc] = 1 + hc

		case in.Op == policy.OpJa:
			c, pl, hc := succ(pc + 1 + int(in.Off))
			costs[pc] = CostJump + c
			paths[pc] = 1 + pl
			calls[pc] = hc

		case in.Op.IsCondJump():
			c1, p1, h1 := succ(pc + 1)
			c2, p2, h2 := succ(pc + 1 + int(in.Off))
			costs[pc] = CostJump + max64(c1, c2)
			if p2 > p1 {
				p1 = p2
			}
			paths[pc] = 1 + p1
			if h2 > h1 {
				h1 = h2
			}
			calls[pc] = h1

		default:
			c, pl, hc := succ(pc + 1)
			costs[pc] = insnCost(in.Op) + c
			paths[pc] = 1 + pl
			calls[pc] = hc
		}
	}
	return costs[0], paths[0], calls[0]
}
