package analysis

import (
	"strings"
	"testing"

	"concord/internal/policydsl"
)

func fpReport(prog string, fps ...MapFootprint) *Report {
	return &Report{Program: prog, Footprint: fps}
}

func TestUsesAggregatesAcrossPrograms(t *testing.T) {
	uses := Uses([]*Report{
		fpReport("a", MapFootprint{Map: "m", ReadSites: 1, WriteSites: 2,
			Slots: map[string]Interval{"+0": Top}}),
		fpReport("b", MapFootprint{Map: "m", ReadSites: 3,
			Slots: map[string]Interval{"+8": Top}}),
		fpReport("c", MapFootprint{Map: "other"}), // untouched: dropped
		nil,
	})
	u := uses["m"]
	if u == nil {
		t.Fatal("map m not aggregated")
	}
	if u.Reads != 4 || u.Writes != 2 {
		t.Errorf("reads/writes = %d/%d, want 4/2", u.Reads, u.Writes)
	}
	if len(u.Programs) != 2 || u.Programs[0] != "a" || u.Programs[1] != "b" {
		t.Errorf("programs = %v", u.Programs)
	}
	if len(u.WriteSlots) != 2 || u.WriteSlots[0] != "+0" || u.WriteSlots[1] != "+8" {
		t.Errorf("write slots = %v", u.WriteSlots)
	}
	if _, ok := uses["other"]; ok {
		t.Error("zero-access footprint aggregated")
	}
}

func TestInterferenceClassification(t *testing.T) {
	writer := func(name string) []*Report {
		return []*Report{fpReport(name, MapFootprint{Map: "m", WriteSites: 1,
			Slots: map[string]Interval{"+0": Top}})}
	}
	reader := []*Report{fpReport("r", MapFootprint{Map: "m", ReadSites: 1})}

	ww := Interference(writer("w1"), writer("w2"))
	if len(ww) != 1 || ww[0].Class != ConflictWriteWrite || !ww[0].Blocking() {
		t.Fatalf("write-write not detected: %+v", ww)
	}
	if len(ww[0].SharedSlots) != 1 || ww[0].SharedSlots[0] != "+0" {
		t.Errorf("shared slots = %v, want [+0]", ww[0].SharedSlots)
	}

	rw := Interference(writer("w"), reader)
	if len(rw) != 1 || rw[0].Class != ConflictReadWrite || rw[0].Blocking() {
		t.Fatalf("read-write not detected: %+v", rw)
	}
	// Symmetric: reader on the left.
	if wr := Interference(reader, writer("w")); len(wr) != 1 || wr[0].Class != ConflictReadWrite {
		t.Fatalf("read-write (flipped) not detected: %+v", wr)
	}

	// Read-read sharing is benign; disjoint maps are silent.
	if rr := Interference(reader, reader); len(rr) != 0 {
		t.Fatalf("read-read flagged: %+v", rr)
	}
	other := []*Report{fpReport("o", MapFootprint{Map: "n", WriteSites: 1})}
	if d := Interference(writer("w"), other); len(d) != 0 {
		t.Fatalf("disjoint maps flagged: %+v", d)
	}
}

func TestInterferenceSortedByMap(t *testing.T) {
	left := []*Report{fpReport("l",
		MapFootprint{Map: "zz", WriteSites: 1},
		MapFootprint{Map: "aa", WriteSites: 1})}
	right := []*Report{fpReport("r",
		MapFootprint{Map: "aa", WriteSites: 1},
		MapFootprint{Map: "zz", WriteSites: 1})}
	cs := Interference(left, right)
	if len(cs) != 2 || cs[0].Map != "aa" || cs[1].Map != "zz" {
		t.Fatalf("conflicts not sorted by map: %+v", cs)
	}
}

// TestInterferenceFromDSL drives the classifier from compiled policies,
// the shape Framework.Attach admission sees.
func TestInterferenceFromDSL(t *testing.T) {
	compile := func(src string) []*Report {
		t.Helper()
		unit, err := policydsl.CompileAndVerify(src)
		if err != nil {
			t.Fatal(err)
		}
		var reports []*Report
		for _, prog := range unit.Programs {
			rep, err := Analyze(prog)
			if err != nil {
				t.Fatal(err)
			}
			reports = append(reports, rep)
		}
		return reports
	}
	w1 := compile(`map shared hash(key = 8, value = 8, entries = 64);
policy lock_acquired w1 { shared[ctx.lock_id] = ctx.wait_ns; return 0; }`)
	w2 := compile(`map shared hash(key = 8, value = 8, entries = 64);
policy lock_contended w2 { shared[ctx.lock_id] += 1; return 0; }`)

	cs := Interference(w1, w2)
	if len(cs) != 1 || cs[0].Class != ConflictWriteWrite {
		t.Fatalf("DSL write-write not detected: %+v", cs)
	}
	if got := cs[0].String(); !strings.Contains(got, "map shared") || !strings.Contains(got, "write-write") {
		t.Errorf("conflict string %q lacks map/class", got)
	}
}
