package policy

import (
	"strings"
	"testing"
)

func mustVerify(t *testing.T, p *Program) VerifyStats {
	t.Helper()
	stats, err := Verify(p)
	if err != nil {
		t.Fatalf("verify rejected valid program: %v", err)
	}
	if !p.Verified() {
		t.Fatal("Verified() false after successful Verify")
	}
	return stats
}

func wantReject(t *testing.T, p *Program, substr string) {
	t.Helper()
	_, err := Verify(p)
	if err == nil {
		t.Fatalf("verifier accepted bad program:\n%s", p)
	}
	if !strings.Contains(err.Error(), substr) {
		t.Fatalf("rejection %q does not mention %q", err, substr)
	}
	if p.Verified() {
		t.Fatal("Verified() true after failed Verify")
	}
}

func TestVerifyAcceptsMinimal(t *testing.T) {
	p := NewBuilder("min", KindCmpNode).ReturnImm(1).MustProgram()
	stats := mustVerify(t, p)
	if stats.Insns != 2 {
		t.Errorf("stats.Insns = %d, want 2", stats.Insns)
	}
}

func TestVerifyRejections(t *testing.T) {
	m := NewArrayMap("m", 8, 4)
	cases := []struct {
		name   string
		substr string
		build  func() *Program
	}{
		{"empty", "empty program", func() *Program {
			return &Program{Name: "e", Kind: KindCmpNode}
		}},
		{"too-long", "too long", func() *Program {
			insns := make([]Instruction, MaxInsns+1)
			for i := range insns {
				insns[i] = Instruction{Op: OpMovImm, Dst: R0}
			}
			insns[len(insns)-1] = Instruction{Op: OpExit}
			return &Program{Name: "l", Kind: KindCmpNode, Insns: insns}
		}},
		{"bad-kind", "invalid program kind", func() *Program {
			return &Program{Name: "k", Kind: Kind(99), Insns: []Instruction{{Op: OpExit}}}
		}},
		{"fall-off-end", "falls off the end", func() *Program {
			return NewBuilder("f", KindCmpNode).MovImm(R0, 1).MustProgram()
		}},
		{"uninit-read", "uninitialized register", func() *Program {
			return NewBuilder("u", KindCmpNode).MovReg(R0, R5).Exit().MustProgram()
		}},
		{"uninit-r0-exit", "exit with R0", func() *Program {
			return NewBuilder("r0", KindCmpNode).Raw(Instruction{Op: OpExit}).MustProgram()
		}},
		{"write-fp", "frame pointer", func() *Program {
			return NewBuilder("fp", KindCmpNode).MovImm(RFP, 0).ReturnImm(0).MustProgram()
		}},
		{"backward-jump", "backward jump", func() *Program {
			return NewBuilder("b", KindCmpNode).
				Label("top").
				MovImm(R0, 1).
				Ja("top").
				Exit().
				MustProgram()
		}},
		{"jump-out-of-range", "falls off", func() *Program {
			return &Program{Name: "j", Kind: KindCmpNode, Insns: []Instruction{
				{Op: OpJa, Off: 100},
				{Op: OpExit},
			}}
		}},
		{"stack-oob-low", "outside frame", func() *Program {
			return NewBuilder("s", KindCmpNode).
				StoreStackImm(OpStDW, -(StackSize + 8), 1).
				ReturnImm(0).MustProgram()
		}},
		{"stack-oob-high", "outside frame", func() *Program {
			return NewBuilder("s2", KindCmpNode).
				StoreStackImm(OpStDW, 8, 1).
				ReturnImm(0).MustProgram()
		}},
		{"stack-read-uninit", "uninitialized stack", func() *Program {
			return NewBuilder("s3", KindCmpNode).
				LoadStack(OpLdxDW, R2, -8).
				ReturnImm(0).MustProgram()
		}},
		{"stack-read-partial-init", "uninitialized stack", func() *Program {
			return NewBuilder("s4", KindCmpNode).
				StoreStackImm(OpStW, -8, 1). // 4 of 8 bytes
				LoadStack(OpLdxDW, R2, -8).
				ReturnImm(0).MustProgram()
		}},
		{"ctx-write", "read-only", func() *Program {
			return NewBuilder("cw", KindCmpNode).
				MovImm(R2, 1).
				Raw(Instruction{Op: OpStxDW, Dst: R1, Src: R2, Off: 0}).
				ReturnImm(0).MustProgram()
		}},
		{"ctx-bad-offset", "does not match", func() *Program {
			return NewBuilder("co", KindCmpNode).
				Raw(Instruction{Op: OpLdxDW, Dst: R2, Src: R1, Off: 4}).
				ReturnImm(0).MustProgram()
		}},
		{"ctx-past-end", "does not match", func() *Program {
			off := int16(LayoutFor(KindCmpNode).Size())
			return NewBuilder("ce", KindCmpNode).
				Raw(Instruction{Op: OpLdxDW, Dst: R2, Src: R1, Off: off}).
				ReturnImm(0).MustProgram()
		}},
		{"ctx-narrow-load", "does not match", func() *Program {
			return NewBuilder("cn", KindCmpNode).
				Raw(Instruction{Op: OpLdxW, Dst: R2, Src: R1, Off: 0}).
				ReturnImm(0).MustProgram()
		}},
		{"map-deref-unchecked", "before null check", func() *Program {
			return NewBuilder("mu", KindLockAcquired).
				StoreStackImm(OpStW, -4, 0).
				LoadMapPtr(R1, m).
				MovReg(R2, RFP).
				AddImm(R2, -4).
				Call(HelperMapLookup).
				Raw(Instruction{Op: OpLdxDW, Dst: R3, Src: R0, Off: 0}).
				ReturnImm(0).MustProgram()
		}},
		{"map-value-oob", "map value load", func() *Program {
			return NewBuilder("mo", KindLockAcquired).
				StoreStackImm(OpStW, -4, 0).
				LoadMapPtr(R1, m).
				MovReg(R2, RFP).
				AddImm(R2, -4).
				Call(HelperMapLookup).
				JmpImm(OpJeqImm, R0, 0, "out").
				Raw(Instruction{Op: OpLdxDW, Dst: R3, Src: R0, Off: 8}). // value is 8 bytes
				Label("out").
				ReturnImm(0).MustProgram()
		}},
		{"map-value-unaligned", "map value load", func() *Program {
			return NewBuilder("ma", KindLockAcquired).
				StoreStackImm(OpStW, -4, 0).
				LoadMapPtr(R1, m).
				MovReg(R2, RFP).
				AddImm(R2, -4).
				Call(HelperMapLookup).
				JmpImm(OpJeqImm, R0, 0, "out").
				AddImm(R0, 4).
				Raw(Instruction{Op: OpLdxDW, Dst: R3, Src: R0, Off: 0}).
				Label("out").
				ReturnImm(0).MustProgram()
		}},
		{"map-index-oob", "map index", func() *Program {
			return NewBuilder("mi", KindLockAcquired).
				Raw(Instruction{Op: OpLoadMapPtr, Dst: R1, Imm: 3}).
				ReturnImm(0).MustProgram()
		}},
		{"unknown-helper", "unknown helper", func() *Program {
			return NewBuilder("uh", KindLockAcquired).
				Call(HelperID(999)).
				ReturnImm(0).MustProgram()
		}},
		{"helper-bad-arg", "want map pointer", func() *Program {
			return NewBuilder("ha", KindLockAcquired).
				MovImm(R1, 0).
				MovReg(R2, RFP).
				Call(HelperMapLookup).
				ReturnImm(0).MustProgram()
		}},
		{"helper-uninit-key", "uninitialized stack", func() *Program {
			return NewBuilder("hk", KindLockAcquired).
				LoadMapPtr(R1, m).
				MovReg(R2, RFP).
				AddImm(R2, -4).
				Call(HelperMapLookup).
				ReturnImm(0).MustProgram()
		}},
		{"mutation-in-shuffler-path", "not allowed", func() *Program {
			return NewBuilder("mp", KindCmpNode).
				StoreStackImm(OpStW, -4, 0).
				StoreStackImm(OpStDW, -16, 0).
				LoadMapPtr(R1, m).
				MovReg(R2, RFP).
				AddImm(R2, -4).
				MovReg(R3, RFP).
				AddImm(R3, -16).
				Call(HelperMapUpdate). // mutation helper in cmp_node
				ReturnImm(0).MustProgram()
		}},
		{"pointer-arith-bad-op", "arithmetic", func() *Program {
			return NewBuilder("pa", KindCmpNode).
				MovReg(R2, RFP).
				MulImm(R2, 3).
				ReturnImm(0).MustProgram()
		}},
		{"pointer-arith-unknown", "unknown offset", func() *Program {
			return NewBuilder("pu", KindCmpNode).
				MovReg(R6, R1).
				LoadCtx(R3, R6, "curr_cpu"). // unknown scalar
				MovReg(R2, RFP).
				AddReg(R2, R3).
				ReturnImm(0).MustProgram()
		}},
		{"cond-jump-on-pointer", "conditional jump on", func() *Program {
			return NewBuilder("cp", KindCmpNode).
				MovReg(R2, RFP).
				JmpImm(OpJgtImm, R2, 0, "x").
				Label("x").
				ReturnImm(0).MustProgram()
		}},
		{"store-pointer-to-stack", "only scalars", func() *Program {
			return NewBuilder("sp", KindCmpNode).
				MovReg(R2, R1).
				StoreStackReg(OpStxDW, -8, R2).
				ReturnImm(0).MustProgram()
		}},
		{"div-const-zero", "division by constant zero", func() *Program {
			return NewBuilder("dz", KindCmpNode).
				MovImm(R2, 10).
				ALUImm(OpDivImm, R2, 0).
				ReturnImm(0).MustProgram()
		}},
		{"load-through-scalar", "non-pointer", func() *Program {
			return NewBuilder("ls", KindCmpNode).
				MovImm(R2, 1234).
				Raw(Instruction{Op: OpLdxDW, Dst: R3, Src: R2, Off: 0}).
				ReturnImm(0).MustProgram()
		}},
		{"pointer-merge-divergent-offset", "uninitialized register", func() *Program {
			// R2 points at fp-8 on one path, fp-16 on the other; the join
			// poisons it, so the later load must be rejected.
			return NewBuilder("pm", KindCmpNode).
				MovReg(R6, R1).
				StoreStackImm(OpStDW, -8, 1).
				StoreStackImm(OpStDW, -16, 2).
				LoadCtx(R3, R6, "curr_cpu").
				MovReg(R2, RFP).
				JmpImm(OpJeqImm, R3, 0, "a").
				AddImm(R2, -8).
				Ja("join").
				Label("a").
				AddImm(R2, -16).
				Label("join").
				Raw(Instruction{Op: OpLdxDW, Dst: R4, Src: R2, Off: 0}).
				ReturnImm(0).MustProgram()
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			wantReject(t, tc.build(), tc.substr)
		})
	}
}

func TestVerifyAcceptsRealisticPolicies(t *testing.T) {
	counts := NewPerCPUArrayMap("counts", 8, 8, 80)
	waits := NewHashMap("waits", 8, 16, 1024)

	progs := []*Program{
		// NUMA-aware cmp_node.
		NewBuilder("numa", KindCmpNode).
			MovReg(R6, R1).
			LoadCtx(R2, R6, "curr_socket").
			LoadCtx(R3, R6, "shuffler_socket").
			JmpReg(OpJeqReg, R2, R3, "grp").
			ReturnImm(0).
			Label("grp").
			ReturnImm(1).
			MustProgram(),
		// Priority cmp_node with a tie-breaker on wait time.
		NewBuilder("prio", KindCmpNode).
			MovReg(R6, R1).
			LoadCtx(R2, R6, "curr_prio").
			LoadCtx(R3, R6, "shuffler_prio").
			JmpReg(OpJgtReg, R2, R3, "grp").
			JmpReg(OpJltReg, R2, R3, "no").
			LoadCtx(R4, R6, "curr_wait_ns").
			JmpImm(OpJgtImm, R4, 1_000_000, "grp").
			Label("no").
			ReturnImm(0).
			Label("grp").
			ReturnImm(1).
			MustProgram(),
		// Bounded shuffle: skip after 8 rounds.
		NewBuilder("bounded", KindSkipShuffle).
			MovReg(R6, R1).
			LoadCtx(R2, R6, "shuffle_round").
			JmpImm(OpJgeImm, R2, 8, "skip").
			ReturnImm(0).
			Label("skip").
			ReturnImm(1).
			MustProgram(),
		// Per-CPU acquisition counter (profiling).
		NewBuilder("count", KindLockAcquired).
			StoreStackImm(OpStW, -4, 0).
			LoadMapPtr(R1, counts).
			MovReg(R2, RFP).
			AddImm(R2, -4).
			MovImm(R3, 1).
			Call(HelperMapAdd).
			ReturnImm(0).
			MustProgram(),
		// Record wait time per lock in a hash map (contended hook).
		NewBuilder("waits", KindLockContended).
			MovReg(R6, R1).
			LoadCtx(R2, R6, "lock_id").
			StoreStackReg(OpStxDW, -8, R2).
			LoadCtx(R3, R6, "now_ns").
			StoreStackReg(OpStxDW, -24, R3).
			StoreStackImm(OpStDW, -16, 1).
			LoadMapPtr(R1, waits).
			MovReg(R2, RFP).
			AddImm(R2, -8).
			MovReg(R3, RFP).
			AddImm(R3, -24).
			Call(HelperMapUpdate).
			ReturnImm(0).
			MustProgram(),
	}
	for _, p := range progs {
		t.Run(p.Name, func(t *testing.T) {
			stats := mustVerify(t, p)
			if stats.Insns == 0 {
				t.Error("no stats")
			}
		})
	}
}

func TestVerifyStatsStackDepth(t *testing.T) {
	p := NewBuilder("deep", KindLockAcquire).
		StoreStackImm(OpStDW, -128, 1).
		ReturnImm(0).
		MustProgram()
	stats := mustVerify(t, p)
	if stats.MaxStackUsed != 128 {
		t.Errorf("MaxStackUsed = %d, want 128", stats.MaxStackUsed)
	}
}

func TestVerifyNullCheckBothPolarities(t *testing.T) {
	m := NewArrayMap("m", 8, 1)
	// jne-based check: deref on taken branch.
	jne := NewBuilder("jne", KindLockAcquired).
		StoreStackImm(OpStW, -4, 0).
		LoadMapPtr(R1, m).
		MovReg(R2, RFP).
		AddImm(R2, -4).
		Call(HelperMapLookup).
		JmpImm(OpJneImm, R0, 0, "ok").
		ReturnImm(0).
		Label("ok").
		Raw(Instruction{Op: OpLdxDW, Dst: R3, Src: R0, Off: 0}).
		ReturnReg(R3).
		MustProgram()
	mustVerify(t, jne)

	// jeq-based check: deref on fall-through.
	jeq := NewBuilder("jeq", KindLockAcquired).
		StoreStackImm(OpStW, -4, 0).
		LoadMapPtr(R1, m).
		MovReg(R2, RFP).
		AddImm(R2, -4).
		Call(HelperMapLookup).
		JmpImm(OpJeqImm, R0, 0, "null").
		Raw(Instruction{Op: OpLdxDW, Dst: R3, Src: R0, Off: 0}).
		ReturnReg(R3).
		Label("null").
		ReturnImm(0).
		MustProgram()
	mustVerify(t, jeq)
}

func TestVerifierTerminationGuarantee(t *testing.T) {
	// A verified program executes each instruction at most once, so a
	// maximal straight-line program terminates in MaxInsns steps.
	b := NewBuilder("max", KindLockAcquire)
	for i := 0; i < MaxInsns-2; i++ {
		b.MovImm(R2, int64(i))
	}
	b.ReturnImm(1)
	p := b.MustProgram()
	mustVerify(t, p)
	got, err := Exec(p, NewCtx(KindLockAcquire), nil)
	if err != nil || got != 1 {
		t.Fatalf("max-length program: got %d, %v", got, err)
	}
}

func TestCallerSavedClobbered(t *testing.T) {
	// R1-R5 are dead after a call; reading them must be rejected.
	p := NewBuilder("clobber", KindLockAcquire).
		MovImm(R3, 7).
		Call(HelperCPU).
		ReturnReg(R3). // R3 clobbered by call
		MustProgram()
	wantReject(t, p, "uninitialized register")

	// R6-R9 survive.
	q := NewBuilder("saved", KindLockAcquire).
		MovImm(R6, 7).
		Call(HelperCPU).
		ReturnReg(R6).
		MustProgram()
	mustVerify(t, q)
	if got, err := Exec(q, NewCtx(KindLockAcquire), nil); err != nil || got != 7 {
		t.Fatalf("callee-saved: got %d, %v", got, err)
	}
}

func TestVerifyMoreRejections(t *testing.T) {
	cases := []struct {
		name   string
		substr string
		build  func() *Program
	}{
		{"pointer-pointer-compare", "conditional jump on", func() *Program {
			return NewBuilder("pp", KindCmpNode).
				MovReg(R2, RFP).
				MovReg(R3, RFP).
				JmpReg(OpJeqReg, R2, R3, "x").
				Label("x").
				ReturnImm(0).MustProgram()
		}},
		{"too-many-maps", "too many maps", func() *Program {
			p := NewBuilder("tm", KindLockAcquired).ReturnImm(0).MustProgram()
			for i := 0; i <= MaxMaps; i++ {
				p.Maps = append(p.Maps, NewArrayMap("m", 8, 1))
			}
			return p
		}},
		{"neg-on-pointer", "arithmetic", func() *Program {
			return NewBuilder("np", KindCmpNode).
				MovReg(R2, RFP).
				Neg(R2).
				ReturnImm(0).MustProgram()
		}},
		{"invalid-register", "invalid register", func() *Program {
			return &Program{Name: "ir", Kind: KindCmpNode, Insns: []Instruction{
				{Op: OpMovImm, Dst: Reg(12)},
				{Op: OpExit},
			}}
		}},
		{"invalid-opcode", "invalid opcode", func() *Program {
			return &Program{Name: "io", Kind: KindCmpNode, Insns: []Instruction{
				{Op: Op(9999)},
				{Op: OpExit},
			}}
		}},
		{"backward-cond-jump", "backward jump", func() *Program {
			return &Program{Name: "bc", Kind: KindCmpNode, Insns: []Instruction{
				{Op: OpMovImm, Dst: R0, Imm: 1},
				{Op: OpJeqImm, Dst: R0, Imm: 0, Off: -1},
				{Op: OpExit},
			}}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			wantReject(t, tc.build(), tc.substr)
		})
	}
}

func TestVerifyDeadCodeAfterExitTolerated(t *testing.T) {
	// Unreachable garbage after a reachable exit is ignored — only live
	// instructions are checked, matching the eBPF verifier's pruning.
	p := &Program{Name: "dead", Kind: KindCmpNode, Insns: []Instruction{
		{Op: OpMovImm, Dst: R0, Imm: 1},
		{Op: OpExit},
		{Op: OpMovReg, Dst: R0, Src: R5}, // would be an uninit read if live
		{Op: OpExit},
	}}
	mustVerify(t, p)
	if got, err := Exec(p, NewCtx(KindCmpNode), nil); err != nil || got != 1 {
		t.Fatalf("got %d, %v", got, err)
	}
}
