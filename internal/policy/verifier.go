package policy

import (
	"fmt"
)

// VerifyError describes why a program was rejected, pointing at the
// offending instruction and showing the surrounding disassembly.
type VerifyError struct {
	Name   string
	PC     int
	Insn   Instruction
	Msg    string
	Window []string // disassembly of pc-1..pc+1, offender marked
}

// Error implements error. The one-line diagnosis comes first (so
// substring matching on the reason keeps working); the disassembly
// window follows on its own lines.
func (e *VerifyError) Error() string {
	var head string
	if e.PC < 0 {
		head = fmt.Sprintf("verifier: program %q: %s", e.Name, e.Msg)
	} else {
		head = fmt.Sprintf("verifier: program %q: pc %d (%s): %s", e.Name, e.PC, e.Insn, e.Msg)
	}
	for _, line := range e.Window {
		head += "\n" + line
	}
	return head
}

// disasmWindow renders the instructions around pc — one before through
// one after — marking the offender, for inclusion in verifier rejects.
func disasmWindow(p *Program, pc int) []string {
	if pc < 0 || pc >= len(p.Insns) {
		return nil
	}
	lo, hi := pc-1, pc+1
	if lo < 0 {
		lo = 0
	}
	if hi >= len(p.Insns) {
		hi = len(p.Insns) - 1
	}
	var out []string
	for i := lo; i <= hi; i++ {
		marker := "   "
		if i == pc {
			marker = " → "
		}
		out = append(out, fmt.Sprintf("%s%3d: %s", marker, i, p.Insns[i]))
	}
	return out
}

// regType is the abstract type of a register during verification.
type regType uint8

const (
	tUninit regType = iota
	tScalar
	tPtrStack          // frame pointer + tracked offset
	tPtrCtx            // context pointer + tracked offset
	tConstMapPtr       // register holding a map reference
	tPtrMapValue       // non-null pointer into a map value
	tPtrMapValueOrNull // result of map_lookup before the null check
)

var regTypeNames = [...]string{
	tUninit: "uninit", tScalar: "scalar", tPtrStack: "stack_ptr",
	tPtrCtx: "ctx_ptr", tConstMapPtr: "map_ptr",
	tPtrMapValue: "map_value", tPtrMapValueOrNull: "map_value_or_null",
}

func (t regType) String() string { return regTypeNames[t] }

func (t regType) isPointer() bool { return t >= tPtrStack && t <= tPtrMapValue }

// regState is the abstract value of one register.
type regState struct {
	typ     regType
	off     int64 // pointer offset (stack: relative to FP; ctx/map value: bytes)
	mapIdx  int   // for map-related types
	constOK bool  // scalar with a known constant value
	constV  int64
}

func scalarUnknown() regState      { return regState{typ: tScalar} }
func scalarConst(v int64) regState { return regState{typ: tScalar, constOK: true, constV: v} }

func (r regState) equal(o regState) bool { return r == o }

// merge joins two register states at a control-flow join point.
func (r regState) merge(o regState) regState {
	if r.equal(o) {
		return r
	}
	if r.typ != o.typ || r.mapIdx != o.mapIdx {
		return regState{typ: tUninit}
	}
	switch r.typ {
	case tScalar:
		return scalarUnknown()
	case tPtrStack, tPtrCtx, tPtrMapValue, tPtrMapValueOrNull:
		if r.off != o.off {
			// A pointer whose offset depends on the path taken cannot be
			// bounds-checked statically; poison it.
			return regState{typ: tUninit}
		}
		return r
	}
	return regState{typ: tUninit}
}

// stackMap tracks which stack bytes have been initialized.
type stackMap [StackSize / 8]uint8

func (s *stackMap) set(idx int)      { s[idx/8] |= 1 << (idx % 8) }
func (s *stackMap) get(idx int) bool { return s[idx/8]&(1<<(idx%8)) != 0 }

func (s *stackMap) intersect(o *stackMap) {
	for i := range s {
		s[i] &= o[i]
	}
}

// absState is the abstract machine state at one program point.
type absState struct {
	regs  [NumRegs]regState
	stack stackMap
	live  bool
}

func (s *absState) merge(o *absState) {
	if !s.live {
		*s = *o
		return
	}
	for i := range s.regs {
		s.regs[i] = s.regs[i].merge(o.regs[i])
	}
	s.stack.intersect(&o.stack)
}

// VerifyStats reports what the verifier proved about a program.
type VerifyStats struct {
	Insns        int
	MaxStackUsed int // deepest stack byte initialized (bytes below FP)
	HelperCalls  int
	MapRefs      int
}

// Verify statically checks a program. On success the program is marked
// verified and may be executed; on failure a *VerifyError explains the
// rejection.
//
// The proof obligations mirror the kernel eBPF verifier's, restricted to
// the forward-jump-only dialect:
//
//   - every jump lands inside the program, and only jumps forward, so the
//     program is loop-free and terminates within len(Insns) steps;
//   - every register is initialized before use, and R10 is never written;
//   - memory access is typed: stack access is bounds-checked against the
//     512-byte frame and reads require prior initialization; context
//     access must hit an exact field of the program kind's layout and is
//     read-only; map-value access requires a null check after map_lookup
//     and stays inside the value, 8-byte aligned;
//   - helper calls are restricted to the kind's whitelist with typed
//     arguments (map pointers, initialized stack buffers of the map's key
//     or value size, scalars);
//   - the program ends by Exit with R0 initialized on every path.
func Verify(p *Program) (VerifyStats, error) {
	var stats VerifyStats
	fail := func(pc int, format string, args ...any) (VerifyStats, error) {
		var in Instruction
		if pc >= 0 && pc < len(p.Insns) {
			in = p.Insns[pc]
		}
		return stats, &VerifyError{
			Name: p.Name, PC: pc, Insn: in,
			Msg:    fmt.Sprintf(format, args...),
			Window: disasmWindow(p, pc),
		}
	}

	if !p.Kind.Valid() {
		return fail(-1, "invalid program kind %d", int(p.Kind))
	}
	n := len(p.Insns)
	if n == 0 {
		return fail(-1, "empty program")
	}
	if n > MaxInsns {
		return fail(-1, "program too long: %d > %d instructions", n, MaxInsns)
	}
	if len(p.Maps) > MaxMaps {
		return fail(-1, "too many maps: %d > %d", len(p.Maps), MaxMaps)
	}
	stats.Insns = n
	stats.MapRefs = len(p.Maps)
	layout := LayoutFor(p.Kind)

	states := make([]absState, n)
	entry := &states[0]
	entry.live = true
	for i := range entry.regs {
		entry.regs[i] = regState{typ: tUninit}
	}
	entry.regs[R1] = regState{typ: tPtrCtx}
	entry.regs[RFP] = regState{typ: tPtrStack}

	// propagate merges st into states[to].
	propagate := func(pc int, st *absState, to int) error {
		if to >= n {
			return &VerifyError{
				Name: p.Name, PC: pc, Insn: p.Insns[pc],
				Msg:    "control flow falls off the end of the program",
				Window: disasmWindow(p, pc),
			}
		}
		states[to].merge(st)
		return nil
	}

	touchStack := func(off int64) {
		if used := int(-off); used > stats.MaxStackUsed {
			stats.MaxStackUsed = used
		}
	}

	// checkStackRange validates [base+off, base+off+size) is a legal
	// stack region; init=true additionally requires every byte be
	// initialized; mark=true marks the bytes initialized.
	checkStackRange := func(st *absState, ptr regState, off int64, size int, init, mark bool) string {
		lo := ptr.off + off
		hi := lo + int64(size)
		if lo < -StackSize || hi > 0 {
			return fmt.Sprintf("stack access [%d,%d) outside frame [-%d,0)", lo, hi, StackSize)
		}
		for b := lo; b < hi; b++ {
			idx := int(b + StackSize)
			if init && !st.stack.get(idx) {
				return fmt.Sprintf("read of uninitialized stack byte at fp%+d", b)
			}
			if mark {
				st.stack.set(idx)
			}
		}
		touchStack(lo)
		return ""
	}

	for pc := 0; pc < n; pc++ {
		st := states[pc] // copy: we mutate our copy, then propagate
		if !st.live {
			continue
		}
		in := p.Insns[pc]
		if !in.Op.Valid() {
			return fail(pc, "invalid opcode")
		}
		if !in.Dst.Valid() || !in.Src.Valid() {
			return fail(pc, "invalid register")
		}

		readReg := func(r Reg) (regState, string) {
			rs := st.regs[r]
			if rs.typ == tUninit {
				return rs, fmt.Sprintf("read of uninitialized register %s", r)
			}
			return rs, ""
		}

		switch {
		case in.Op == OpExit:
			r0 := st.regs[R0]
			if r0.typ != tScalar {
				return fail(pc, "exit with R0 of type %s (need scalar return value)", r0.typ)
			}
			continue // no successors

		case in.Op == OpCall:
			h := HelperID(in.Imm)
			spec, ok := helperSpecs[h]
			if !ok {
				return fail(pc, "unknown helper %d", in.Imm)
			}
			if !helperAllowed(h, p.Kind) {
				return fail(pc, "helper %s not allowed in %s programs", spec.name, p.Kind)
			}
			stats.HelperCalls++
			// Type-check arguments R1..R#.
			var argMap Map
			var argMapIdx int
			for i, ak := range spec.args {
				reg := Reg(R1 + Reg(i))
				rs, msg := readReg(reg)
				if msg != "" {
					return fail(pc, "helper %s arg%d: %s", spec.name, i+1, msg)
				}
				switch ak {
				case argScalar:
					if rs.typ != tScalar {
						return fail(pc, "helper %s arg%d: want scalar, have %s", spec.name, i+1, rs.typ)
					}
				case argConstMapPtr:
					if rs.typ != tConstMapPtr {
						return fail(pc, "helper %s arg%d: want map pointer, have %s", spec.name, i+1, rs.typ)
					}
					argMapIdx = rs.mapIdx
					argMap = p.Maps[rs.mapIdx]
				case argStackKey, argStackValue:
					if rs.typ != tPtrStack {
						return fail(pc, "helper %s arg%d: want stack pointer, have %s", spec.name, i+1, rs.typ)
					}
					if argMap == nil {
						return fail(pc, "helper %s arg%d: no map argument precedes buffer", spec.name, i+1)
					}
					size := argMap.KeySize()
					if ak == argStackValue {
						size = argMap.ValueSize()
					}
					if msg := checkStackRange(&st, rs, 0, size, true, false); msg != "" {
						return fail(pc, "helper %s arg%d: %s", spec.name, i+1, msg)
					}
				}
			}
			// Clobber caller-saved registers; set R0.
			for r := R1; r <= R5; r++ {
				st.regs[r] = regState{typ: tUninit}
			}
			switch spec.ret {
			case retScalar:
				st.regs[R0] = scalarUnknown()
			case retMapValueOrNull:
				st.regs[R0] = regState{typ: tPtrMapValueOrNull, mapIdx: argMapIdx}
			}
			if err := propagate(pc, &st, pc+1); err != nil {
				return stats, err
			}

		case in.Op == OpLoadMapPtr:
			if in.Imm < 0 || int(in.Imm) >= len(p.Maps) {
				return fail(pc, "map index %d out of range (program has %d maps)", in.Imm, len(p.Maps))
			}
			if in.Dst == RFP {
				return fail(pc, "write to frame pointer")
			}
			st.regs[in.Dst] = regState{typ: tConstMapPtr, mapIdx: int(in.Imm)}
			if err := propagate(pc, &st, pc+1); err != nil {
				return stats, err
			}

		case in.Op == OpJa:
			if in.Off < 0 {
				return fail(pc, "backward jump (offset %d); loops must be unrolled", in.Off)
			}
			if err := propagate(pc, &st, pc+1+int(in.Off)); err != nil {
				return stats, err
			}

		case in.Op.IsCondJump():
			if in.Off < 0 {
				return fail(pc, "backward jump (offset %d); loops must be unrolled", in.Off)
			}
			dst, msg := readReg(in.Dst)
			if msg != "" {
				return fail(pc, "%s", msg)
			}
			var srcTyp regType = tScalar
			if in.Op.UsesSrcReg() {
				src, msg := readReg(in.Src)
				if msg != "" {
					return fail(pc, "%s", msg)
				}
				srcTyp = src.typ
			}
			// The only pointer comparison allowed is the null check of a
			// maybe-null map value against immediate 0.
			nullCheck := dst.typ == tPtrMapValueOrNull &&
				!in.Op.UsesSrcReg() && in.Imm == 0 &&
				(in.Op == OpJeqImm || in.Op == OpJneImm)
			if dst.typ != tScalar && !nullCheck {
				return fail(pc, "conditional jump on %s operand", dst.typ)
			}
			if srcTyp != tScalar {
				return fail(pc, "conditional jump against %s operand", srcTyp)
			}

			taken := st
			fall := st
			if nullCheck {
				isNull := scalarConst(0)
				nonNull := regState{typ: tPtrMapValue, mapIdx: dst.mapIdx}
				if in.Op == OpJeqImm { // jeq r,0: taken => null
					taken.regs[in.Dst] = isNull
					fall.regs[in.Dst] = nonNull
				} else { // jne r,0: taken => non-null
					taken.regs[in.Dst] = nonNull
					fall.regs[in.Dst] = isNull
				}
			}
			if err := propagate(pc, &taken, pc+1+int(in.Off)); err != nil {
				return stats, err
			}
			if err := propagate(pc, &fall, pc+1); err != nil {
				return stats, err
			}

		case in.Op.IsLoad():
			ptr, msg := readReg(in.Src)
			if msg != "" {
				return fail(pc, "%s", msg)
			}
			if in.Dst == RFP {
				return fail(pc, "write to frame pointer")
			}
			size := in.Op.AccessSize()
			switch ptr.typ {
			case tPtrStack:
				if msg := checkStackRange(&st, ptr, int64(in.Off), size, true, false); msg != "" {
					return fail(pc, "%s", msg)
				}
			case tPtrCtx:
				off := ptr.off + int64(in.Off)
				f, ok := layout.FieldAt(int(off))
				if !ok || size != 8 {
					return fail(pc, "ctx load at offset %d size %d does not match a %s field", off, size, p.Kind)
				}
				_ = f
			case tPtrMapValue:
				off := ptr.off + int64(in.Off)
				vs := int64(p.Maps[ptr.mapIdx].ValueSize())
				if size != 8 || off%8 != 0 || off < 0 || off+8 > vs {
					return fail(pc, "map value load at offset %d size %d (value size %d; must be aligned 8-byte access)", off, size, vs)
				}
			case tPtrMapValueOrNull:
				return fail(pc, "map value access before null check")
			default:
				return fail(pc, "load through non-pointer (%s)", ptr.typ)
			}
			st.regs[in.Dst] = scalarUnknown()
			if err := propagate(pc, &st, pc+1); err != nil {
				return stats, err
			}

		case in.Op.IsStore():
			ptr, msg := readReg(in.Dst)
			if msg != "" {
				return fail(pc, "%s", msg)
			}
			size := in.Op.AccessSize()
			if in.Op.UsesSrcReg() {
				src, msg := readReg(in.Src)
				if msg != "" {
					return fail(pc, "%s", msg)
				}
				if src.typ != tScalar {
					// Pointer spilling is not supported in this dialect;
					// policies keep pointers in registers.
					return fail(pc, "store of %s value (only scalars may be stored)", src.typ)
				}
			}
			switch ptr.typ {
			case tPtrStack:
				if msg := checkStackRange(&st, ptr, int64(in.Off), size, false, true); msg != "" {
					return fail(pc, "%s", msg)
				}
			case tPtrCtx:
				return fail(pc, "context is read-only; decisions are returned, not written (mutual-exclusion safety)")
			case tPtrMapValue:
				off := ptr.off + int64(in.Off)
				vs := int64(p.Maps[ptr.mapIdx].ValueSize())
				if size != 8 || off%8 != 0 || off < 0 || off+8 > vs {
					return fail(pc, "map value store at offset %d size %d (value size %d; must be aligned 8-byte access)", off, size, vs)
				}
			case tPtrMapValueOrNull:
				return fail(pc, "map value access before null check")
			default:
				return fail(pc, "store through non-pointer (%s)", ptr.typ)
			}
			if err := propagate(pc, &st, pc+1); err != nil {
				return stats, err
			}

		case in.Op.IsALU():
			if in.Dst == RFP {
				return fail(pc, "write to frame pointer")
			}
			var src regState
			if in.Op.UsesSrcReg() {
				var msg string
				src, msg = readReg(in.Src)
				if msg != "" {
					return fail(pc, "%s", msg)
				}
			} else {
				src = scalarConst(in.Imm)
			}
			if in.Op == OpMovImm {
				st.regs[in.Dst] = scalarConst(in.Imm)
			} else if in.Op == OpMovReg {
				st.regs[in.Dst] = src
			} else {
				dst, msg := readReg(in.Dst)
				if msg != "" {
					return fail(pc, "%s", msg)
				}
				ns, errMsg := aluResult(in.Op, dst, src)
				if errMsg != "" {
					return fail(pc, "%s", errMsg)
				}
				st.regs[in.Dst] = ns
			}
			if err := propagate(pc, &st, pc+1); err != nil {
				return stats, err
			}

		default:
			return fail(pc, "unhandled opcode %s", in.Op)
		}
	}

	// Every live instruction was checked; ensure at least one Exit is
	// reachable (a program that is all dead code was rejected above by
	// the fall-off check, but be explicit).
	for pc := 0; pc < n; pc++ {
		if states[pc].live && p.Insns[pc].Op == OpExit {
			p.verified = true
			return stats, nil
		}
	}
	return fail(-1, "no reachable exit")
}

// aluResult computes the abstract result of a non-mov ALU op.
func aluResult(op Op, dst, src regState) (regState, string) {
	// Pointer arithmetic: stack/ctx/map-value pointers admit +/- of a
	// known constant so programs can form field and buffer addresses.
	if dst.typ.isPointer() && dst.typ != tConstMapPtr {
		if op != OpAddImm && op != OpAddReg && op != OpSubImm && op != OpSubReg {
			return dst, fmt.Sprintf("arithmetic %s on %s pointer", op, dst.typ)
		}
		if src.typ != tScalar || !src.constOK {
			return dst, fmt.Sprintf("pointer arithmetic with unknown offset (%s)", src.typ)
		}
		delta := src.constV
		if op == OpSubImm || op == OpSubReg {
			delta = -delta
		}
		out := dst
		out.off += delta
		return out, ""
	}
	if dst.typ != tScalar {
		return dst, fmt.Sprintf("arithmetic on %s operand", dst.typ)
	}
	if src.typ != tScalar {
		return dst, fmt.Sprintf("arithmetic with %s operand", src.typ)
	}
	if (op == OpDivImm || op == OpModImm) && src.constOK && src.constV == 0 {
		return dst, "division by constant zero"
	}
	if !dst.constOK || !src.constOK {
		return scalarUnknown(), ""
	}
	a, b := uint64(dst.constV), uint64(src.constV)
	var r uint64
	switch op {
	case OpAddImm, OpAddReg:
		r = a + b
	case OpSubImm, OpSubReg:
		r = a - b
	case OpMulImm, OpMulReg:
		r = a * b
	case OpDivImm, OpDivReg:
		if b == 0 {
			r = 0
		} else {
			r = a / b
		}
	case OpModImm, OpModReg:
		if b == 0 {
			r = a
		} else {
			r = a % b
		}
	case OpAndImm, OpAndReg:
		r = a & b
	case OpOrImm, OpOrReg:
		r = a | b
	case OpXorImm, OpXorReg:
		r = a ^ b
	case OpLshImm, OpLshReg:
		r = a << (b & 63)
	case OpRshImm, OpRshReg:
		r = a >> (b & 63)
	case OpArshImm, OpArshReg:
		r = uint64(int64(a) >> (b & 63))
	case OpNeg:
		r = -a
	default:
		return scalarUnknown(), ""
	}
	return scalarConst(int64(r)), ""
}
