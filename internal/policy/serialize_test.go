package policy

import (
	"strings"
	"testing"
)

func TestMarshalUnmarshalRoundTrip(t *testing.T) {
	am := NewArrayMap("counters", 8, 16)
	hm := NewHashMap("waits", 8, 16, 1024)
	pm := NewPerCPUArrayMap("percpu", 8, 2, 40)

	orig := NewBuilder("roundtrip", KindLockContended).
		MovReg(R6, R1).
		LoadCtx(R2, R6, "lock_id").
		StoreStackReg(OpStxDW, -8, R2).
		LoadMapPtr(R1, am).
		LoadMapPtr(R2, hm).
		LoadMapPtr(R3, pm).
		ReturnImm(7).
		MustProgram()

	data, err := Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != orig.Name || got.Kind != orig.Kind {
		t.Errorf("identity: %s/%s", got.Name, got.Kind)
	}
	if len(got.Insns) != len(orig.Insns) {
		t.Fatalf("insns: %d vs %d", len(got.Insns), len(orig.Insns))
	}
	for i := range got.Insns {
		if got.Insns[i] != orig.Insns[i] {
			t.Errorf("insn %d: %v vs %v", i, got.Insns[i], orig.Insns[i])
		}
	}
	if len(got.Maps) != 3 {
		t.Fatalf("maps: %d", len(got.Maps))
	}
	// Maps are recreated empty with matching specs.
	if _, ok := got.Maps[0].(*ArrayMap); !ok {
		t.Errorf("map0 type %T", got.Maps[0])
	}
	if _, ok := got.Maps[1].(*HashMap); !ok {
		t.Errorf("map1 type %T", got.Maps[1])
	}
	p2, ok := got.Maps[2].(*PerCPUArrayMap)
	if !ok || p2.NumCPUs() != 40 {
		t.Errorf("map2: %T cpus", got.Maps[2])
	}
	if got.Verified() {
		t.Error("unmarshalled program pre-verified")
	}
	// And it verifies + runs.
	if _, err := Verify(got); err != nil {
		t.Fatal(err)
	}
	if v, err := Exec(got, NewCtx(KindLockContended), nil); err != nil || v != 7 {
		t.Errorf("exec: %d, %v", v, err)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	cases := []struct {
		name, data, want string
	}{
		{"garbage", "not json", "decode"},
		{"bad-kind", `{"name":"x","kind":"frobnicate","insns":[]}`, "unknown program kind"},
		{"bad-map", `{"name":"x","kind":"cmp_node","insns":[],"maps":[{"type":"ring","name":"m"}]}`, "unknown map type"},
		{"bad-map-spec", `{"name":"x","kind":"cmp_node","insns":[],"maps":[{"type":"array","name":"m","value_size":7,"max_entries":1}]}`, "bad map spec"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Unmarshal([]byte(tc.data))
			if err == nil {
				t.Fatal("want error")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestSpecOf(t *testing.T) {
	cases := []struct {
		m   Map
		typ string
	}{
		{NewArrayMap("a", 8, 2), "array"},
		{NewHashMap("h", 4, 8, 2), "hash"},
		{NewPerCPUArrayMap("p", 8, 2, 3), "percpu_array"},
		{NewPerCPUHashMap("ph", 4, 8, 2, 3), "percpu_hash"},
		{NewLockedHashMap("lh", 4, 8, 2), "locked_hash"},
	}
	for _, tc := range cases {
		spec := SpecOf(tc.m)
		if spec.Type != tc.typ || spec.Name != tc.m.Name() {
			t.Errorf("SpecOf(%s) = %+v", tc.m.Name(), spec)
		}
		rebuilt, err := spec.Build()
		if err != nil {
			t.Fatal(err)
		}
		if rebuilt.KeySize() != tc.m.KeySize() || rebuilt.ValueSize() != tc.m.ValueSize() ||
			rebuilt.MaxEntries() != tc.m.MaxEntries() {
			t.Errorf("rebuilt spec mismatch for %s", tc.m.Name())
		}
		if MapKindOf(rebuilt) != tc.typ {
			t.Errorf("rebuilt kind = %s, want %s", MapKindOf(rebuilt), tc.typ)
		}
		if pc, ok := rebuilt.(*PerCPUHashMap); ok && pc.NumCPUs() != 3 {
			t.Errorf("rebuilt NumCPUs = %d, want 3", pc.NumCPUs())
		}
	}
}

// TestBuildHashLargeKeyFallsBack pins backward compatibility: "hash"
// specs persisted before the lock-free kind existed may carry keys
// beyond MaxHashKeySize; Build must load them via the locked kind
// instead of failing (or panicking) on a previously valid spec.
func TestBuildHashLargeKeyFallsBack(t *testing.T) {
	spec := MapSpec{Type: "hash", Name: "big", KeySize: MaxHashKeySize + 8,
		ValueSize: 8, MaxEntries: 4}
	m, err := spec.Build()
	if err != nil {
		t.Fatalf("Build(large-key hash) = %v, want fallback to locked_hash", err)
	}
	if _, ok := m.(*LockedHashMap); !ok {
		t.Fatalf("Build(large-key hash) kind = %s, want locked_hash", MapKindOf(m))
	}
	if m.KeySize() != MaxHashKeySize+8 {
		t.Errorf("KeySize = %d, want %d", m.KeySize(), MaxHashKeySize+8)
	}
	key := make([]byte, MaxHashKeySize+8)
	key[0] = 1
	if err := m.Update(key, []uint64{42}, 0); err != nil {
		t.Fatal(err)
	}
	if v := m.Lookup(key, 0); v == nil || v[0] != 42 {
		t.Errorf("large-key lookup = %v, want [42]", v)
	}
}

func TestKindNames(t *testing.T) {
	for k := Kind(0); k.Valid(); k++ {
		back, ok := KindByName(k.String())
		if !ok || back != k {
			t.Errorf("KindByName(%s) = %v,%v", k, back, ok)
		}
	}
	if _, ok := KindByName("nonsense"); ok {
		t.Error("phantom kind")
	}
	if !KindLockAcquire.IsProfiling() || KindCmpNode.IsProfiling() {
		t.Error("IsProfiling classification wrong")
	}
	if Kind(99).Valid() || Kind(-1).Valid() {
		t.Error("invalid kinds accepted")
	}
}

func TestCtxLayoutLookups(t *testing.T) {
	l := LayoutFor(KindCmpNode)
	f, ok := l.FieldByName("curr_socket")
	if !ok {
		t.Fatal("field missing")
	}
	if got, ok := l.FieldAt(f.Off); !ok || got.Name != "curr_socket" {
		t.Errorf("FieldAt(%d) = %v,%v", f.Off, got, ok)
	}
	if _, ok := l.FieldAt(f.Off + 4); ok {
		t.Error("unaligned FieldAt succeeded")
	}
	if _, ok := l.FieldAt(l.Size()); ok {
		t.Error("out-of-range FieldAt succeeded")
	}
	if l.Size() != len(l.Fields)*8 {
		t.Error("Size mismatch")
	}
	mustPanicPolicy(t, func() { l.Slot("nope") })
	mustPanicPolicy(t, func() { LayoutFor(Kind(99)) })
}

func mustPanicPolicy(t *testing.T, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	fn()
}
