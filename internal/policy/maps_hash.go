package policy

import (
	"encoding/binary"
	"runtime"
	"sync/atomic"
	"unsafe"
)

// This file is the lock-free hash-map data plane: an open-addressing
// table with seqlock-validated optimistic readers and per-bucket-locked
// writers, mirroring how in-kernel eBPF hash maps work (BPF_F_NO_PREALLOC
// off): lookups are RCU-style and never block, while update/delete take a
// per-bucket spinlock. Everything — slot control words, key words, value
// words — lives in arenas sized per table epoch, so no steady-state map
// operation allocates.
//
// Online resize (growable maps only): when live occupancy crosses the
// high-water mark — or tombstones crowd a quarter of the slots — a
// writer allocates a shadow epoch at 2× (same size for pure compaction),
// flips it in while briefly holding every writer stripe, and then each
// subsequent writer op migrates a bounded batch of old-epoch slots before
// doing its own work. Only published (Full) slots migrate, so tombstone
// compaction is folded into migration for free. Lock-free readers probe
// old-then-new, validating with the same seqlock ctl words; the epoch
// pointers are re-checked after a double miss so a concurrent flip can
// never hide a key. See DESIGN.md §12 for the full protocol.
//
// Aliasing semantics (shared with every map kind here): Lookup returns
// a slice over a value arena. If the entry is deleted and its slot
// later reused for another key, a caller still holding that slice reads
// — and, through map_add, may even write — the *successor* entry's
// words. Kernel preallocated hash maps accept exactly this recycling
// race (elements are returned to a freelist and may be reused while an
// RCU reader still holds the old value pointer); we document it rather
// than pretend the Go side is stricter. Migration extends the same
// contract across epochs: a value slice obtained before a slot migrated
// keeps aliasing the old epoch's arena, so writes through it after the
// copy are lost to the re-homed entry — value-level staleness, never
// memory unsafety. Every word access remains atomic.

// MaxHashKeySize bounds hash-map key size in bytes. Keys are stored as
// little-endian 64-bit words so readers can compare them with atomic
// loads (seqlock-clean under the race detector); 64 bytes = 8 words is
// plenty for the lock-id/task-id keys policies use.
const MaxHashKeySize = 64

const maxKeyWords = MaxHashKeySize / 8

// Slot control word: bits 0-1 are the state, bits 2+ a sequence number
// bumped on every state transition. A reader validates an optimistic
// key compare by re-loading the word and checking it is unchanged
// (state and sequence both), so any concurrent delete/reuse/migration
// of the slot forces a retry.
const (
	slotEmpty     uint64 = 0 // never occupied: terminates probe chains
	slotWriting   uint64 = 1 // claimed, key/value being written
	slotFull      uint64 = 2 // published
	slotTombstone uint64 = 3 // deleted; reusable, does not end a chain
	slotStateMask uint64 = 3
	slotSeqIncr   uint64 = 4
)

// numWriterLocks stripes the per-home-bucket writer locks. Two keys
// contend only if their raw hashes collide mod this; because the stripe
// index depends on the hash alone (not the epoch's mask), a key maps to
// the same stripe in every epoch, which is what lets one stripe lock
// serialize all mutators of a key across a resize.
const numWriterLocks = 64

// migrateBatchSlots is how many old-epoch slots each writer op migrates
// before its own mutation while a resize is draining — the incremental
// rehash batch size, same discipline as kernel htab grow-in-place.
const migrateBatchSlots = 16

// MapStats is the map-plane telemetry snapshot exported per map.
type MapStats struct {
	Occupancy  int64  // live entries
	Tombstones int64  // dead (tombstoned) slots awaiting reuse or compaction
	Collisions uint64 // insert-path probe displacements past the home slot
	Retries    uint64 // optimistic read-path retries (seqlock validation failures)
	Resizes    uint64 // epoch flips (growth or compaction)
	Migrated   uint64 // slots re-homed by incremental migration
	// ResizeAllocBytes is the cumulative bytes allocated by resize
	// epochs — the amortized migration cost, accounted separately from
	// the zero-alloc steady state. Geometric growth bounds it at about
	// 4× the final table footprint.
	ResizeAllocBytes uint64
	Capacity         int // current epoch's slot count
}

// StatsProvider is implemented by map kinds that track MapStats.
type StatsProvider interface {
	MapStats() MapStats
}

// hashWords mixes n key words (splitmix64-style) into a table index.
func hashWords(kw *[maxKeyWords]uint64, n int) uint64 {
	h := uint64(0x9e3779b97f4a7c15)
	for i := 0; i < n; i++ {
		h ^= kw[i]
		h *= 0xff51afd7ed558ccd
		h ^= h >> 33
	}
	h *= 0xc4ceb9fe1a85ec53
	return h ^ (h >> 29)
}

// loadKeyWords packs key into kw little-endian, zero-padding the tail
// word, and returns the word count. No allocation: kw lives on the
// caller's stack.
func loadKeyWords(kw *[maxKeyWords]uint64, key []byte) int {
	n := 0
	for len(key) >= 8 {
		kw[n] = binary.LittleEndian.Uint64(key)
		key = key[8:]
		n++
	}
	if len(key) > 0 {
		var w uint64
		for i, b := range key {
			w |= uint64(b) << (8 * i)
		}
		kw[n] = w
		n++
	}
	return n
}

func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// oaEpoch is one generation of table storage: slot control words, key
// words, and the value arena for this capacity. Readers hold an epoch
// pointer for the duration of one probe, so a retired epoch stays valid
// (all slots tombstoned) until the GC collects it — the Go analogue of
// an RCU grace period.
type oaEpoch struct {
	capacity int // power of two: probes always terminate
	mask     uint64

	ctl  []uint64 // capacity control words
	keys []uint64 // capacity × keyWords, written under slotWriting only

	vals []uint64 // value arena; layout is owned by the wrapping kind
	// stride/base describe the per-CPU layout (PerCPUHashMap): words per
	// CPU stripe and the element offset aligning vals[base] to a
	// cacheline. Slot-major kinds leave them 0.
	stride int
	base   int
}

// oaTable is the open-addressing key/slot engine shared by HashMap and
// PerCPUHashMap. It owns slot states, keys and the resize protocol; the
// wrapping kind owns value layout through the allocVals/copyVal hooks.
type oaTable struct {
	keyWords int  // words per stored key
	growable bool // resize (growth + compaction) enabled

	cur  atomic.Pointer[oaEpoch] // current epoch: all writes land here
	prev atomic.Pointer[oaEpoch] // draining epoch mid-resize, else nil

	maxLive   atomic.Int64 // live-entry budget (capacity/2 invariant)
	remaining atomic.Int64 // Full slots left to migrate out of prev
	scan      atomic.Int64 // migration cursor over prev's slots

	count      atomic.Int64 // live entries (reservation-checked vs maxLive)
	tombs      atomic.Int64 // tombstones in the current epoch
	collisions atomic.Uint64
	retries    atomic.Uint64
	resizes    atomic.Uint64
	migrated   atomic.Uint64
	resizeBy   atomic.Uint64 // cumulative resize alloc bytes

	wlocks [numWriterLocks]uint32

	// allocVals sizes e.vals (and stride/base) for e.capacity; copyVal
	// re-homes one slot's value words between epochs during migration.
	// Both are set once at construction, before the map is shared.
	allocVals func(e *oaEpoch)
	copyVal   func(dst, src *oaEpoch, dstSlot, srcSlot int)
}

func (t *oaTable) init(keySize, maxEntries int) {
	capacity := nextPow2(2 * maxEntries)
	if capacity < 8 {
		capacity = 8
	}
	t.keyWords = (keySize + 7) / 8
	t.maxLive.Store(int64(maxEntries))
	t.cur.Store(t.newEpoch(capacity))
}

// newEpoch allocates ctl+keys for a capacity; the caller attaches the
// value arena via allocVals (init defers that until the wrapper has set
// the hook).
func (t *oaTable) newEpoch(capacity int) *oaEpoch {
	e := &oaEpoch{
		capacity: capacity,
		mask:     uint64(capacity - 1),
		ctl:      make([]uint64, capacity),
		keys:     make([]uint64, capacity*t.keyWords),
	}
	return e
}

// setValueHooks wires the wrapper's value-arena callbacks and sizes the
// initial epoch's arena. Must be called before the map is shared.
func (t *oaTable) setValueHooks(allocVals func(*oaEpoch), copyVal func(dst, src *oaEpoch, dstSlot, srcSlot int)) {
	t.allocVals = allocVals
	t.copyVal = copyVal
	t.allocVals(t.cur.Load())
}

// lock spins on the writer-lock stripe for raw hash h. Mutations are
// short (a bounded probe plus a handful of word stores), so a CAS spin
// with a yield fallback is cheaper than parking.
func (t *oaTable) lock(h uint64) *uint32 {
	return t.lockIdx(int(h & (numWriterLocks - 1)))
}

func (t *oaTable) lockIdx(i int) *uint32 {
	l := &t.wlocks[i]
	for spins := 0; !atomic.CompareAndSwapUint32(l, 0, 1); spins++ {
		if spins%64 == 63 {
			runtime.Gosched()
		}
	}
	return l
}

func (t *oaTable) unlock(l *uint32) { atomic.StoreUint32(l, 0) }

// keyMatch compares the stored key words of slot against kw with atomic
// loads. Safe to run concurrently with a writer; the caller revalidates
// the slot control word afterwards.
func (e *oaEpoch) keyMatch(keyWords, slot int, kw *[maxKeyWords]uint64) bool {
	base := slot * keyWords
	for i := 0; i < keyWords; i++ {
		if atomic.LoadUint64(&e.keys[base+i]) != kw[i] {
			return false
		}
	}
	return true
}

// find is the optimistic read path across epochs: probe the draining
// epoch first (old-then-new — migration publishes into the new epoch
// *before* tombstoning the old slot, so this order can miss a key only
// if the epoch pointers moved mid-probe, which the post-miss revalidation
// catches), never taking a lock. Returns the epoch and slot of the
// published entry holding kw, or (nil, -1).
func (t *oaTable) find(kw *[maxKeyWords]uint64) (*oaEpoch, int) {
	h := hashWords(kw, t.keyWords)
	for {
		old := t.prev.Load()
		cur := t.cur.Load()
		if old != nil {
			if slot := t.findIn(old, kw, h); slot >= 0 {
				return old, slot
			}
		}
		if slot := t.findIn(cur, kw, h); slot >= 0 {
			return cur, slot
		}
		// Double miss: only final if the epoch set is unchanged, else a
		// flip may have moved the key between our two probes.
		if t.cur.Load() == cur && t.prev.Load() == old {
			return nil, -1
		}
		t.retries.Add(1)
	}
}

// findIn probes one epoch from the home bucket, comparing keys under a
// seqlock-style control-word validation.
func (t *oaTable) findIn(e *oaEpoch, kw *[maxKeyWords]uint64, h uint64) int {
retry:
	idx := h & e.mask
	for probes := 0; probes < e.capacity; probes++ {
		c := atomic.LoadUint64(&e.ctl[idx])
		switch c & slotStateMask {
		case slotEmpty:
			return -1 // end of probe chain
		case slotFull:
			if e.keyMatch(t.keyWords, int(idx), kw) {
				if atomic.LoadUint64(&e.ctl[idx]) == c {
					return int(idx)
				}
				// The slot transitioned mid-compare (delete, reuse or
				// migration): the match is unreliable, restart the probe.
				t.retries.Add(1)
				goto retry
			}
		}
		// slotWriting and slotTombstone do not terminate the chain:
		// writing slots were empty-or-tombstone a moment ago and the
		// key being written is published only after its words land.
		idx = (idx + 1) & e.mask
	}
	return -1
}

// insertLocked finds kw or claims a slot for it in the current epoch.
// Must run under the writer lock of kw's raw-hash stripe (which
// serializes all mutators of this key in every epoch). While a resize is
// draining it first re-homes kw out of the old epoch, so the scan below
// only ever faces the current one. On existed=true the slot is published
// and live. On existed=false the slot is claimed in slotWriting state
// with the key words already stored; the caller must fill its value
// words and then call publish. Returns slot -1 with ErrMapFull when the
// map is at its live budget (the claim is reservation-checked, so
// concurrent inserts in other buckets cannot overshoot).
func (t *oaTable) insertLocked(kw *[maxKeyWords]uint64) (*oaEpoch, int, bool, error) {
	h := hashWords(kw, t.keyWords)
	if old := t.prev.Load(); old != nil {
		t.migrateKeyLocked(old, kw, h)
	}
	e := t.cur.Load()
	slot, existed, err := t.insertInto(e, kw, h, true)
	return e, slot, existed, err
}

// insertInto is the epoch-level scan-and-claim. reserve=false is the
// migration path: the entry is already counted live, so the maxLive
// reservation is skipped.
func (t *oaTable) insertInto(e *oaEpoch, kw *[maxKeyWords]uint64, h uint64, reserve bool) (slot int, existed bool, err error) {
rescan:
	idx := h & e.mask
	reuse := -1
	claim := -1
	probes := 0
scan:
	for ; probes < e.capacity; probes++ {
		c := atomic.LoadUint64(&e.ctl[idx])
		switch c & slotStateMask {
		case slotFull:
			if e.keyMatch(t.keyWords, int(idx), kw) {
				if atomic.LoadUint64(&e.ctl[idx]) != c {
					// The slot transitioned mid-compare (a cross-bucket
					// delete reclaimed it, so our lock did not serialize
					// it): the match may be torn. Restart the scan,
					// mirroring findIn().
					goto rescan
				}
				return int(idx), true, nil
			}
		case slotTombstone:
			if reuse < 0 {
				reuse = int(idx)
			}
		case slotEmpty:
			// End of chain: the key is absent.
			claim = int(idx)
			break scan
		}
		idx = (idx + 1) & e.mask
	}
	// The key is absent. Claim the first tombstone seen, else the empty
	// chain terminator. Empties are consumed monotonically (deletes only
	// ever mint tombstones), so after enough distinct-key churn a full
	// scan may find no empty slot at all — the remembered tombstone is
	// then the only claimable slot and MUST be used, or the map would
	// refuse new keys forever despite being far below maxLive.
	if reuse >= 0 {
		claim = reuse
	}
	if claim < 0 {
		// No empty slot and no tombstone: every slot is full or being
		// written, which the maxLive ≤ capacity/2 reservation prevents
		// at steady state — only transiently reachable mid-rescan.
		return -1, false, ErrMapFull
	}
	if reserve {
		if n := t.count.Add(1); n > t.maxLive.Load() {
			t.count.Add(-1)
			return -1, false, ErrMapFull
		}
	}
	if probes > 0 {
		t.collisions.Add(uint64(probes))
	}
	if !t.claim(e, claim) {
		// A writer for a key homed in another bucket (hence not
		// serialized by our lock) took the slot between our scan and
		// the CAS. Rescan: chain shape changed.
		if reserve {
			t.count.Add(-1)
		}
		goto rescan
	}
	base := claim * t.keyWords
	for i := 0; i < t.keyWords; i++ {
		atomic.StoreUint64(&e.keys[base+i], kw[i])
	}
	return claim, false, nil
}

// claim CASes an empty or tombstone slot into slotWriting, bumping the
// sequence so optimistic readers mid-compare notice.
func (t *oaTable) claim(e *oaEpoch, slot int) bool {
	c := atomic.LoadUint64(&e.ctl[slot])
	s := c & slotStateMask
	if s != slotEmpty && s != slotTombstone {
		return false
	}
	next := (c &^ slotStateMask) + slotSeqIncr | slotWriting
	if !atomic.CompareAndSwapUint64(&e.ctl[slot], c, next) {
		return false
	}
	if s == slotTombstone && e == t.cur.Load() {
		t.tombs.Add(-1)
	}
	return true
}

// publish flips a claimed slot to slotFull, making it visible to the
// optimistic read path.
func (t *oaTable) publish(e *oaEpoch, slot int) {
	c := atomic.LoadUint64(&e.ctl[slot])
	atomic.StoreUint64(&e.ctl[slot], (c&^slotStateMask)+slotSeqIncr|slotFull)
}

// tombstone marks a slot dead with a sequence bump.
func (t *oaTable) tombstone(e *oaEpoch, slot int) {
	c := atomic.LoadUint64(&e.ctl[slot])
	atomic.StoreUint64(&e.ctl[slot], (c&^slotStateMask)+slotSeqIncr|slotTombstone)
}

// deleteLocked tombstones the slot holding kw. Must run under the
// writer lock of kw's raw-hash stripe. Like insertLocked, it re-homes
// the key first so the tombstone always lands in the current epoch.
func (t *oaTable) deleteLocked(kw *[maxKeyWords]uint64) error {
	h := hashWords(kw, t.keyWords)
	if old := t.prev.Load(); old != nil {
		t.migrateKeyLocked(old, kw, h)
	}
	e := t.cur.Load()
	slot := t.findIn(e, kw, h)
	if slot < 0 {
		return ErrNoSuchKey
	}
	t.tombstone(e, slot)
	t.tombs.Add(1)
	t.count.Add(-1)
	return nil
}

// --- Online resize ---

// needResize decides whether the current epoch should be replaced, and
// at what capacity. Growth triggers at 7/8 of the live budget; pure
// compaction (same capacity, tombstones dropped by migration) triggers
// when a quarter of the slots are dead. Only growable maps resize —
// fixed maps keep the PR 5 preallocated contract exactly.
func (t *oaTable) needResize(e *oaEpoch) (int, bool) {
	if !t.growable {
		return 0, false
	}
	maxLive := t.maxLive.Load()
	if t.count.Load() >= maxLive-maxLive/8 {
		return e.capacity * 2, true
	}
	if t.tombs.Load() >= int64(e.capacity/4) {
		return e.capacity, true
	}
	return 0, false
}

// maybeResize is called by every writer op before it takes its stripe
// lock (so it holds none here). It helps drain an in-flight resize by a
// bounded batch, or initiates one when the high-water mark is crossed.
func (t *oaTable) maybeResize() {
	if t.prev.Load() != nil {
		t.migrateBatch(migrateBatchSlots)
		return
	}
	if _, ok := t.needResize(t.cur.Load()); ok {
		t.beginResize()
	}
}

// beginResize allocates the shadow epoch and flips it in. The flip
// briefly holds every writer stripe (in index order — the only place
// more than one stripe is ever held, so no ordering cycle exists): with
// all writers quiescent the old epoch's Full-slot census is exact and no
// claim can ever land in it afterwards. Readers are not stopped; their
// epoch revalidation covers the flip.
func (t *oaTable) beginResize() {
	for i := 0; i < numWriterLocks; i++ {
		t.lockIdx(i)
	}
	defer func() {
		for i := 0; i < numWriterLocks; i++ {
			t.unlock(&t.wlocks[i])
		}
	}()
	if t.prev.Load() != nil {
		return // lost the initiation race; the winner's drain is underway
	}
	e := t.cur.Load()
	newCap, ok := t.needResize(e)
	if !ok {
		return
	}
	ne := t.newEpoch(newCap)
	t.allocVals(ne)
	t.resizeBy.Add(uint64((len(ne.ctl) + len(ne.keys) + len(ne.vals)) * 8))

	full := int64(0)
	for i := range e.ctl {
		if atomic.LoadUint64(&e.ctl[i])&slotStateMask == slotFull {
			full++
		}
	}
	t.scan.Store(0)
	t.tombs.Store(0) // old tombstones die with the old epoch
	t.maxLive.Store(int64(newCap / 2))
	t.resizes.Add(1)
	if full == 0 {
		// Nothing to migrate: the flip is also the drain.
		t.cur.Store(ne)
		return
	}
	t.remaining.Store(full)
	t.prev.Store(e)
	t.cur.Store(ne)
}

// migrateBatch advances the incremental rehash by up to budget slots of
// the draining epoch. Callers must hold no stripe lock: each slot is
// re-homed under its own key's stripe, one lock at a time.
func (t *oaTable) migrateBatch(budget int) {
	old := t.prev.Load()
	if old == nil {
		return
	}
	for budget > 0 {
		i := t.scan.Add(1) - 1
		if i >= int64(old.capacity) {
			// Cursor exhausted: any slots still counted in remaining are
			// being re-homed right now by the writers serializing them.
			return
		}
		t.migrateSlot(old, int(i))
		budget--
	}
}

// migrateSlot re-homes one old-epoch slot if it is still published. The
// slot's key decides the stripe lock, so the key must be read (and
// seqlock-validated) before locking, then revalidated after.
func (t *oaTable) migrateSlot(old *oaEpoch, slot int) {
	c := atomic.LoadUint64(&old.ctl[slot])
	if c&slotStateMask != slotFull {
		return // empty or already compacted away
	}
	var kw [maxKeyWords]uint64
	base := slot * t.keyWords
	for i := 0; i < t.keyWords; i++ {
		kw[i] = atomic.LoadUint64(&old.keys[base+i])
	}
	if atomic.LoadUint64(&old.ctl[slot]) != c {
		// The owning writer re-homed or deleted it mid-read; it adjusted
		// the remaining count itself.
		return
	}
	h := hashWords(&kw, t.keyWords)
	l := t.lock(h)
	defer t.unlock(l)
	if atomic.LoadUint64(&old.ctl[slot]) != c {
		return // re-homed while we waited for the stripe
	}
	t.migrateInto(old, slot, &kw, h)
}

// migrateKeyLocked re-homes kw out of the draining epoch, if present.
// Must run under kw's stripe lock.
func (t *oaTable) migrateKeyLocked(old *oaEpoch, kw *[maxKeyWords]uint64, h uint64) {
	slot := t.findIn(old, kw, h)
	if slot < 0 {
		return
	}
	t.migrateInto(old, slot, kw, h)
}

// migrateInto copies one published old-epoch slot into the current
// epoch: claim, key+value copy, publish, then tombstone the source.
// Publishing before tombstoning is what makes the readers' old-then-new
// probe order lossless. Runs under kw's stripe lock.
func (t *oaTable) migrateInto(old *oaEpoch, slot int, kw *[maxKeyWords]uint64, h uint64) {
	ne := t.cur.Load()
	nslot, existed, err := t.insertInto(ne, kw, h, false)
	if err != nil {
		// Unreachable by construction: the new epoch has capacity for
		// every live entry (maxLive ≤ capacity/2) and migration skips
		// the reservation. Leave the slot for the owning writer.
		return
	}
	if !existed {
		t.copyVal(ne, old, nslot, slot)
		t.publish(ne, nslot)
	}
	t.tombstone(old, slot)
	t.migrated.Add(1)
	if t.remaining.Add(-1) == 0 {
		// Drain complete: detach the old epoch. Readers holding its
		// pointer finish probing all-tombstone slots harmlessly.
		t.prev.Store(nil)
	}
}

// drainResize migrates every remaining slot, blocking until the old
// epoch detaches. Used by the growable ErrMapFull retry path and tests.
func (t *oaTable) drainResize() {
	for t.prev.Load() != nil {
		t.migrateBatch(migrateBatchSlots)
		if old := t.prev.Load(); old != nil && t.scan.Load() >= int64(old.capacity) {
			// Cursor done but stragglers are mid-re-home under their
			// stripe locks; yield until they finish.
			runtime.Gosched()
		}
	}
}

// rangeSlots calls fn for every published slot as (epoch, slot, key).
// Entries inserted or deleted concurrently may or may not be observed; a
// userspace report reader's usual snapshot semantics. During a resize the
// current epoch is walked first and draining-epoch keys are suppressed
// when already re-homed, so a key mid-migration is reported once.
func (t *oaTable) rangeSlots(keySize int, fn func(e *oaEpoch, slot int, key []byte) bool) {
	cur := t.cur.Load()
	if !t.rangeEpoch(cur, keySize, nil, fn) {
		return
	}
	if old := t.prev.Load(); old != nil {
		t.rangeEpoch(old, keySize, cur, fn)
	}
}

func (t *oaTable) rangeEpoch(e *oaEpoch, keySize int, skipIfIn *oaEpoch, fn func(e *oaEpoch, slot int, key []byte) bool) bool {
	for slot := 0; slot < e.capacity; slot++ {
		if atomic.LoadUint64(&e.ctl[slot])&slotStateMask != slotFull {
			continue
		}
		key := make([]byte, t.keyWords*8)
		var kw [maxKeyWords]uint64
		base := slot * t.keyWords
		for i := 0; i < t.keyWords; i++ {
			kw[i] = atomic.LoadUint64(&e.keys[base+i])
			binary.LittleEndian.PutUint64(key[i*8:], kw[i])
		}
		if skipIfIn != nil {
			if s := t.findIn(skipIfIn, &kw, hashWords(&kw, t.keyWords)); s >= 0 {
				continue // migrated mid-walk; already reported from cur
			}
		}
		if !fn(e, slot, key[:keySize]) {
			return false
		}
	}
	return true
}

func (t *oaTable) stats() MapStats {
	return MapStats{
		Occupancy:        t.count.Load(),
		Tombstones:       t.tombs.Load(),
		Collisions:       t.collisions.Load(),
		Retries:          t.retries.Load(),
		Resizes:          t.resizes.Load(),
		Migrated:         t.migrated.Load(),
		ResizeAllocBytes: t.resizeBy.Load(),
		Capacity:         t.cur.Load().capacity,
	}
}

// storeRawWords decodes little-endian raw bytes straight into value
// words with atomic stores — the zero-allocation spine of UpdateRaw.
func storeRawWords(dst []uint64, raw []byte) {
	for i := range dst {
		atomic.StoreUint64(&dst[i], binary.LittleEndian.Uint64(raw[i*8:]))
	}
}

// --- Hash map (lock-free, growable) ---

// HashMap is a hash map with arbitrary fixed-size keys (≤ MaxHashKeySize
// bytes), the analogue of BPF_MAP_TYPE_HASH. Lookup is lock-free
// (optimistic, seqlock-validated); Update/Delete serialize per home
// bucket, exactly the kernel htab discipline. Steady-state operations
// never allocate; a growable map additionally resizes online (bounded
// incremental migration amortized over writer ops) once occupancy
// crosses the high-water mark, so the data plane scales past its
// preallocated budget instead of returning ErrMapFull.
type HashMap struct {
	name       string
	keySize    int
	valueWords int
	tab        oaTable
}

// NewHashMap creates a fixed-capacity hash map. All storage — slot
// control words, key words, values — is allocated here, never per
// operation.
func NewHashMap(name string, keySize, valueSize, maxEntries int) *HashMap {
	checkSpec(name, keySize, valueSize, maxEntries)
	checkHashKey(name, keySize)
	m := &HashMap{
		name:       name,
		keySize:    keySize,
		valueWords: valueSize / 8,
	}
	m.tab.init(keySize, maxEntries)
	m.tab.setValueHooks(
		func(e *oaEpoch) { e.vals = make([]uint64, e.capacity*m.valueWords) },
		func(dst, src *oaEpoch, dstSlot, srcSlot int) {
			atomicCopy(dst.vals[dstSlot*m.valueWords:(dstSlot+1)*m.valueWords],
				src.vals[srcSlot*m.valueWords:(srcSlot+1)*m.valueWords])
		},
	)
	return m
}

// NewGrowableHashMap creates a hash map that resizes online: maxEntries
// is the initial live budget, doubled (with online migration) whenever
// occupancy nears it.
func NewGrowableHashMap(name string, keySize, valueSize, maxEntries int) *HashMap {
	m := NewHashMap(name, keySize, valueSize, maxEntries)
	m.tab.growable = true
	return m
}

// SetGrowable flips online resize on or off — the ablation switch for
// the map-resize-churn bench. Disabling mid-drain lets the in-flight
// migration finish; it only stops new epochs from starting.
func (m *HashMap) SetGrowable(on bool) { m.tab.growable = on }

// Growable reports whether online resize is enabled.
func (m *HashMap) Growable() bool { return m.tab.growable }

func checkHashKey(name string, keySize int) {
	if keySize > MaxHashKeySize {
		panic(ErrBadMapSpec.Error() + ": " + name + ": hash key exceeds MaxHashKeySize")
	}
}

// Name implements Map.
func (m *HashMap) Name() string { return m.name }

// KeySize implements Map.
func (m *HashMap) KeySize() int { return m.keySize }

// ValueSize implements Map.
func (m *HashMap) ValueSize() int { return m.valueWords * 8 }

// MaxEntries implements Map: the current live budget, which grows with
// the table for growable maps.
func (m *HashMap) MaxEntries() int { return int(m.tab.maxLive.Load()) }

func (m *HashMap) valSlice(e *oaEpoch, slot int) []uint64 {
	return e.vals[slot*m.valueWords : (slot+1)*m.valueWords]
}

// Lookup implements Map. It never takes a lock: concurrent mutators are
// detected via the slot control word and retried past, and a concurrent
// resize is covered by the epoch revalidation in find. JIT map fast
// paths stay resize-safe because every call re-enters here and loads the
// current epoch pointers afresh.
func (m *HashMap) Lookup(key []byte, _ int) []uint64 {
	if len(key) != m.keySize {
		return nil
	}
	var kw [maxKeyWords]uint64
	loadKeyWords(&kw, key)
	e, slot := m.tab.find(&kw)
	if slot < 0 {
		return nil
	}
	return m.valSlice(e, slot)
}

// Update implements Map, inserting the key if absent.
func (m *HashMap) Update(key []byte, value []uint64, _ int) error {
	if len(value) != m.valueWords {
		return ErrValueSize
	}
	return m.update(key, func(dst []uint64) { atomicCopy(dst, value) })
}

// UpdateRaw is Update from little-endian bytes, the zero-allocation
// path the map_update helper uses.
func (m *HashMap) UpdateRaw(key, raw []byte, _ int) error {
	if len(raw) != m.valueWords*8 {
		return ErrValueSize
	}
	return m.update(key, func(dst []uint64) { storeRawWords(dst, raw) })
}

func (m *HashMap) update(key []byte, fill func(dst []uint64)) error {
	if len(key) != m.keySize {
		return ErrKeySize
	}
	var kw [maxKeyWords]uint64
	loadKeyWords(&kw, key)
	err := m.tryUpdate(&kw, fill)
	if err == ErrMapFull && m.tab.growable {
		// The insert burst outran the high-water trigger: grow
		// synchronously, finish the drain, and retry once.
		m.tab.beginResize()
		m.tab.drainResize()
		err = m.tryUpdate(&kw, fill)
	}
	return err
}

func (m *HashMap) tryUpdate(kw *[maxKeyWords]uint64, fill func(dst []uint64)) error {
	m.tab.maybeResize()
	l := m.tab.lock(hashWords(kw, m.tab.keyWords))
	defer m.tab.unlock(l)
	e, slot, existed, err := m.tab.insertLocked(kw)
	if err != nil {
		return err
	}
	fill(m.valSlice(e, slot))
	if !existed {
		m.tab.publish(e, slot)
	}
	return nil
}

// Delete implements Map.
func (m *HashMap) Delete(key []byte) error {
	if len(key) != m.keySize {
		return ErrKeySize
	}
	var kw [maxKeyWords]uint64
	loadKeyWords(&kw, key)
	m.tab.maybeResize()
	l := m.tab.lock(hashWords(&kw, m.tab.keyWords))
	defer m.tab.unlock(l)
	return m.tab.deleteLocked(&kw)
}

// LookupOrInit returns the value for key, atomically inserting a zero
// value if absent. The fast path is the lock-free find; only a miss
// takes the bucket writer lock. Used by the map_add helper so counting
// policies need no userspace priming and first touches cannot race.
func (m *HashMap) LookupOrInit(key []byte, _ int) []uint64 {
	if len(key) != m.keySize {
		return nil
	}
	var kw [maxKeyWords]uint64
	loadKeyWords(&kw, key)
	if e, slot := m.tab.find(&kw); slot >= 0 {
		return m.valSlice(e, slot)
	}
	e, slot := m.initSlot(&kw)
	if slot < 0 && m.tab.growable {
		m.tab.beginResize()
		m.tab.drainResize()
		e, slot = m.initSlot(&kw)
	}
	if slot < 0 {
		return nil
	}
	return m.valSlice(e, slot)
}

func (m *HashMap) initSlot(kw *[maxKeyWords]uint64) (*oaEpoch, int) {
	m.tab.maybeResize()
	l := m.tab.lock(hashWords(kw, m.tab.keyWords))
	defer m.tab.unlock(l)
	e, slot, existed, err := m.tab.insertLocked(kw)
	if err != nil {
		return nil, -1
	}
	if !existed {
		v := m.valSlice(e, slot)
		for i := range v {
			atomic.StoreUint64(&v[i], 0)
		}
		m.tab.publish(e, slot)
	}
	return e, slot
}

// Len reports the number of live entries.
func (m *HashMap) Len() int { return int(m.tab.count.Load()) }

// MapStats implements StatsProvider.
func (m *HashMap) MapStats() MapStats { return m.tab.stats() }

// Range calls fn for every key/value pair until fn returns false. The
// value slice aliases map storage. Intended for userspace report readers.
func (m *HashMap) Range(fn func(key []byte, value []uint64) bool) {
	m.tab.rangeSlots(m.keySize, func(e *oaEpoch, slot int, key []byte) bool {
		return fn(key, m.valSlice(e, slot))
	})
}

// --- Per-CPU hash map (lock-free, growable) ---

// cacheLineWords pads per-CPU value stripes to 64-byte boundaries so
// two CPUs' stripes never share a line.
const cacheLineWords = 8

// PerCPUHashMap shares one key table across CPUs but gives each virtual
// CPU its own value stripe, the analogue of BPF_MAP_TYPE_PERCPU_HASH:
// counting policies touch only their own cacheline, so hot keys do not
// bounce between CPUs. Key management (insert/delete/probe/resize) is
// the same engine as HashMap; an online resize re-homes every CPU's
// stripe of a migrating slot under that key's stripe lock.
type PerCPUHashMap struct {
	name       string
	keySize    int
	valueWords int
	numCPUs    int
	tab        oaTable
}

// NewPerCPUHashMap creates a per-CPU hash map over numCPUs virtual CPUs.
func NewPerCPUHashMap(name string, keySize, valueSize, maxEntries, numCPUs int) *PerCPUHashMap {
	checkSpec(name, keySize, valueSize, maxEntries)
	checkHashKey(name, keySize)
	if numCPUs <= 0 {
		panic("policy: per-cpu map needs at least one cpu")
	}
	m := &PerCPUHashMap{
		name:       name,
		keySize:    keySize,
		valueWords: valueSize / 8,
		numCPUs:    numCPUs,
	}
	m.tab.init(keySize, maxEntries)
	m.tab.setValueHooks(
		func(e *oaEpoch) {
			stripe := e.capacity * m.valueWords
			e.stride = (stripe + cacheLineWords - 1) &^ (cacheLineWords - 1)
			e.vals = make([]uint64, m.numCPUs*e.stride+cacheLineWords-1)
			e.base = alignOffset(e.vals)
		},
		func(dst, src *oaEpoch, dstSlot, srcSlot int) {
			for cpu := 0; cpu < m.numCPUs; cpu++ {
				atomicCopy(m.valSlice(dst, dstSlot, cpu), m.valSlice(src, srcSlot, cpu))
			}
		},
	)
	return m
}

// NewGrowablePerCPUHashMap creates a per-CPU hash map that resizes
// online, re-homing every CPU's value stripe during migration.
func NewGrowablePerCPUHashMap(name string, keySize, valueSize, maxEntries, numCPUs int) *PerCPUHashMap {
	m := NewPerCPUHashMap(name, keySize, valueSize, maxEntries, numCPUs)
	m.tab.growable = true
	return m
}

// SetGrowable flips online resize on or off.
func (m *PerCPUHashMap) SetGrowable(on bool) { m.tab.growable = on }

// Growable reports whether online resize is enabled.
func (m *PerCPUHashMap) Growable() bool { return m.tab.growable }

// alignOffset returns the element offset at which the slice is 64-byte
// aligned (the allocator only guarantees word alignment).
func alignOffset(v []uint64) int {
	if len(v) == 0 {
		return 0
	}
	for i := 0; i < cacheLineWords && i < len(v); i++ {
		if uintptr(unsafe.Pointer(&v[i]))%64 == 0 {
			return i
		}
	}
	return 0
}

// Name implements Map.
func (m *PerCPUHashMap) Name() string { return m.name }

// KeySize implements Map.
func (m *PerCPUHashMap) KeySize() int { return m.keySize }

// ValueSize implements Map.
func (m *PerCPUHashMap) ValueSize() int { return m.valueWords * 8 }

// MaxEntries implements Map: the current live budget.
func (m *PerCPUHashMap) MaxEntries() int { return int(m.tab.maxLive.Load()) }

// NumCPUs returns the number of per-CPU value stripes.
func (m *PerCPUHashMap) NumCPUs() int { return m.numCPUs }

func (m *PerCPUHashMap) valSlice(e *oaEpoch, slot, cpu int) []uint64 {
	off := e.base + cpu*e.stride + slot*m.valueWords
	return e.vals[off : off+m.valueWords]
}

// Lookup implements Map; the entry returned belongs to the given CPU.
func (m *PerCPUHashMap) Lookup(key []byte, cpu int) []uint64 {
	if len(key) != m.keySize || cpu < 0 || cpu >= m.numCPUs {
		return nil
	}
	var kw [maxKeyWords]uint64
	loadKeyWords(&kw, key)
	e, slot := m.tab.find(&kw)
	if slot < 0 {
		return nil
	}
	return m.valSlice(e, slot, cpu)
}

// Update implements Map: it sets the value on the given CPU's stripe
// only (matching the kernel helper semantics, where a program updates
// the current CPU's copy). A fresh insert zeroes every CPU's stripe
// before publishing.
func (m *PerCPUHashMap) Update(key []byte, value []uint64, cpu int) error {
	if len(value) != m.valueWords {
		return ErrValueSize
	}
	return m.update(key, cpu, func(dst []uint64) { atomicCopy(dst, value) })
}

// UpdateRaw is Update from little-endian bytes, the zero-allocation
// path the map_update helper uses.
func (m *PerCPUHashMap) UpdateRaw(key, raw []byte, cpu int) error {
	if len(raw) != m.valueWords*8 {
		return ErrValueSize
	}
	return m.update(key, cpu, func(dst []uint64) { storeRawWords(dst, raw) })
}

func (m *PerCPUHashMap) update(key []byte, cpu int, fill func(dst []uint64)) error {
	if len(key) != m.keySize {
		return ErrKeySize
	}
	if cpu < 0 || cpu >= m.numCPUs {
		return ErrBadCPU
	}
	var kw [maxKeyWords]uint64
	loadKeyWords(&kw, key)
	err := m.tryUpdate(&kw, cpu, fill)
	if err == ErrMapFull && m.tab.growable {
		m.tab.beginResize()
		m.tab.drainResize()
		err = m.tryUpdate(&kw, cpu, fill)
	}
	return err
}

func (m *PerCPUHashMap) tryUpdate(kw *[maxKeyWords]uint64, cpu int, fill func(dst []uint64)) error {
	m.tab.maybeResize()
	l := m.tab.lock(hashWords(kw, m.tab.keyWords))
	defer m.tab.unlock(l)
	e, slot, existed, err := m.tab.insertLocked(kw)
	if err != nil {
		return err
	}
	if !existed {
		m.zeroSlot(e, slot)
	}
	fill(m.valSlice(e, slot, cpu))
	if !existed {
		m.tab.publish(e, slot)
	}
	return nil
}

func (m *PerCPUHashMap) zeroSlot(e *oaEpoch, slot int) {
	for cpu := 0; cpu < m.numCPUs; cpu++ {
		v := m.valSlice(e, slot, cpu)
		for i := range v {
			atomic.StoreUint64(&v[i], 0)
		}
	}
}

// Delete implements Map, removing the key from every CPU at once.
func (m *PerCPUHashMap) Delete(key []byte) error {
	if len(key) != m.keySize {
		return ErrKeySize
	}
	var kw [maxKeyWords]uint64
	loadKeyWords(&kw, key)
	m.tab.maybeResize()
	l := m.tab.lock(hashWords(&kw, m.tab.keyWords))
	defer m.tab.unlock(l)
	return m.tab.deleteLocked(&kw)
}

// LookupOrInit returns the given CPU's value for key, inserting a
// zeroed entry (on all CPUs) if absent. Used by the map_add helper.
func (m *PerCPUHashMap) LookupOrInit(key []byte, cpu int) []uint64 {
	if len(key) != m.keySize || cpu < 0 || cpu >= m.numCPUs {
		return nil
	}
	var kw [maxKeyWords]uint64
	loadKeyWords(&kw, key)
	if e, slot := m.tab.find(&kw); slot >= 0 {
		return m.valSlice(e, slot, cpu)
	}
	e, slot := m.initSlot(&kw)
	if slot < 0 && m.tab.growable {
		m.tab.beginResize()
		m.tab.drainResize()
		e, slot = m.initSlot(&kw)
	}
	if slot < 0 {
		return nil
	}
	return m.valSlice(e, slot, cpu)
}

func (m *PerCPUHashMap) initSlot(kw *[maxKeyWords]uint64) (*oaEpoch, int) {
	m.tab.maybeResize()
	l := m.tab.lock(hashWords(kw, m.tab.keyWords))
	defer m.tab.unlock(l)
	e, slot, existed, err := m.tab.insertLocked(kw)
	if err != nil {
		return nil, -1
	}
	if !existed {
		m.zeroSlot(e, slot)
		m.tab.publish(e, slot)
	}
	return e, slot
}

// Len reports the number of live keys.
func (m *PerCPUHashMap) Len() int { return int(m.tab.count.Load()) }

// MapStats implements StatsProvider.
func (m *PerCPUHashMap) MapStats() MapStats { return m.tab.stats() }

// Sum folds the first value word for key across all CPUs, the usual way
// userspace reads a per-CPU counter.
func (m *PerCPUHashMap) Sum(key []byte) uint64 {
	var total uint64
	for cpu := 0; cpu < m.numCPUs; cpu++ {
		if v := m.Lookup(key, cpu); v != nil {
			total += atomic.LoadUint64(&v[0])
		}
	}
	return total
}

// Range calls fn for every key with the given CPU's value slice.
func (m *PerCPUHashMap) Range(cpu int, fn func(key []byte, value []uint64) bool) {
	if cpu < 0 || cpu >= m.numCPUs {
		return
	}
	m.tab.rangeSlots(m.keySize, func(e *oaEpoch, slot int, key []byte) bool {
		return fn(key, m.valSlice(e, slot, cpu))
	})
}

// MapKindOf names the concrete kind of a map, for analysis cost models
// and telemetry labels.
func MapKindOf(m Map) string {
	switch m.(type) {
	case *ArrayMap:
		return "array"
	case *PerCPUArrayMap:
		return "percpu_array"
	case *HashMap:
		return "hash"
	case *PerCPUHashMap:
		return "percpu_hash"
	case *LockedHashMap:
		return "locked_hash"
	default:
		return "custom"
	}
}
