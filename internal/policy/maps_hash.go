package policy

import (
	"encoding/binary"
	"runtime"
	"sync/atomic"
	"unsafe"
)

// This file is the lock-free hash-map data plane: a preallocated
// open-addressing table with seqlock-validated optimistic readers and
// per-bucket-locked writers, mirroring how in-kernel eBPF hash maps
// work (BPF_F_NO_PREALLOC off): lookups are RCU-style and never block,
// while update/delete take a per-bucket spinlock. Everything — slot
// control words, key words, value words — lives in arenas sized at
// creation, so no map operation allocates.
//
// Aliasing semantics (shared with every map kind here): Lookup returns
// a slice over the value arena. If the entry is deleted and its slot
// later reused for another key, a caller still holding that slice reads
// — and, through map_add, may even write — the *successor* entry's
// words. Kernel preallocated hash maps accept exactly this recycling
// race (elements are returned to a freelist and may be reused while an
// RCU reader still holds the old value pointer); we document it rather
// than pretend the Go side is stricter. Every word access remains
// atomic, so the race is value-level, never memory-unsafe.

// MaxHashKeySize bounds hash-map key size in bytes. Keys are stored as
// little-endian 64-bit words so readers can compare them with atomic
// loads (seqlock-clean under the race detector); 64 bytes = 8 words is
// plenty for the lock-id/task-id keys policies use.
const MaxHashKeySize = 64

const maxKeyWords = MaxHashKeySize / 8

// Slot control word: bits 0-1 are the state, bits 2+ a sequence number
// bumped on every state transition. A reader validates an optimistic
// key compare by re-loading the word and checking it is unchanged
// (state and sequence both), so any concurrent delete/reuse of the slot
// forces a retry.
const (
	slotEmpty     uint64 = 0 // never occupied: terminates probe chains
	slotWriting   uint64 = 1 // claimed, key/value being written
	slotFull      uint64 = 2 // published
	slotTombstone uint64 = 3 // deleted; reusable, does not end a chain
	slotStateMask uint64 = 3
	slotSeqIncr   uint64 = 4
)

// numWriterLocks stripes the per-home-bucket writer locks. Two keys
// contend only if their home buckets collide mod this; mutations are
// the slow path, so a modest fixed stripe count beats a lock word per
// bucket.
const numWriterLocks = 64

// MapStats is the map-plane telemetry snapshot exported per map.
type MapStats struct {
	Occupancy  int64  // live entries
	Collisions uint64 // insert-path probe displacements past the home slot
	Retries    uint64 // optimistic read-path retries (seqlock validation failures)
}

// StatsProvider is implemented by map kinds that track MapStats.
type StatsProvider interface {
	MapStats() MapStats
}

// hashWords mixes n key words (splitmix64-style) into a table index.
func hashWords(kw *[maxKeyWords]uint64, n int) uint64 {
	h := uint64(0x9e3779b97f4a7c15)
	for i := 0; i < n; i++ {
		h ^= kw[i]
		h *= 0xff51afd7ed558ccd
		h ^= h >> 33
	}
	h *= 0xc4ceb9fe1a85ec53
	return h ^ (h >> 29)
}

// loadKeyWords packs key into kw little-endian, zero-padding the tail
// word, and returns the word count. No allocation: kw lives on the
// caller's stack.
func loadKeyWords(kw *[maxKeyWords]uint64, key []byte) int {
	n := 0
	for len(key) >= 8 {
		kw[n] = binary.LittleEndian.Uint64(key)
		key = key[8:]
		n++
	}
	if len(key) > 0 {
		var w uint64
		for i, b := range key {
			w |= uint64(b) << (8 * i)
		}
		kw[n] = w
		n++
	}
	return n
}

func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// oaTable is the open-addressing key/slot engine shared by HashMap and
// PerCPUHashMap. It owns slot states and keys; the wrapping kind owns
// the value arena (zeroed via the fill callback passed to insert).
type oaTable struct {
	capacity int // power of two, ≥ 2×maxEntries: probes always terminate
	mask     uint64
	keyWords int // words per stored key
	maxLive  int

	ctl  []uint64 // capacity control words
	keys []uint64 // capacity × keyWords, written under slotWriting only

	count      atomic.Int64 // live entries (reservation-checked vs maxLive)
	collisions atomic.Uint64
	retries    atomic.Uint64

	wlocks [numWriterLocks]uint32
}

func (t *oaTable) init(keySize, maxEntries int) {
	t.capacity = nextPow2(2 * maxEntries)
	if t.capacity < 8 {
		t.capacity = 8
	}
	t.mask = uint64(t.capacity - 1)
	t.keyWords = (keySize + 7) / 8
	t.maxLive = maxEntries
	t.ctl = make([]uint64, t.capacity)
	t.keys = make([]uint64, t.capacity*t.keyWords)
}

// lock spins on the writer-lock stripe for home bucket h. Mutations are
// short (a bounded probe plus a handful of word stores), so a CAS spin
// with a yield fallback is cheaper than parking.
func (t *oaTable) lock(h uint64) *uint32 {
	l := &t.wlocks[h&(numWriterLocks-1)]
	for spins := 0; !atomic.CompareAndSwapUint32(l, 0, 1); spins++ {
		if spins%64 == 63 {
			runtime.Gosched()
		}
	}
	return l
}

func (t *oaTable) unlock(l *uint32) { atomic.StoreUint32(l, 0) }

// keyMatch compares the stored key words of slot against kw with atomic
// loads. Safe to run concurrently with a writer; the caller revalidates
// the slot control word afterwards.
func (t *oaTable) keyMatch(slot int, kw *[maxKeyWords]uint64) bool {
	base := slot * t.keyWords
	for i := 0; i < t.keyWords; i++ {
		if atomic.LoadUint64(&t.keys[base+i]) != kw[i] {
			return false
		}
	}
	return true
}

// find is the optimistic read path: probe from the home bucket, compare
// keys under a seqlock-style control-word validation, and never take a
// lock. Returns the slot of the published entry holding kw, or -1.
func (t *oaTable) find(kw *[maxKeyWords]uint64) int {
	h := hashWords(kw, t.keyWords)
retry:
	idx := h & t.mask
	for probes := 0; probes < t.capacity; probes++ {
		c := atomic.LoadUint64(&t.ctl[idx])
		switch c & slotStateMask {
		case slotEmpty:
			return -1 // end of probe chain
		case slotFull:
			if t.keyMatch(int(idx), kw) {
				if atomic.LoadUint64(&t.ctl[idx]) == c {
					return int(idx)
				}
				// The slot transitioned mid-compare (delete or reuse):
				// the match is unreliable, so restart the probe.
				t.retries.Add(1)
				goto retry
			}
		}
		// slotWriting and slotTombstone do not terminate the chain:
		// writing slots were empty-or-tombstone a moment ago and the
		// key being written is published only after its words land.
		idx = (idx + 1) & t.mask
	}
	return -1
}

// insertLocked finds kw or claims a slot for it. Must run under the
// writer lock of kw's home bucket (which serializes all mutators of
// this key). On existed=true the slot is published and live. On
// existed=false the slot is claimed in slotWriting state with the key
// words already stored; the caller must fill its value words and then
// call publish. Returns slot -1 with ErrMapFull when the map is at
// maxEntries (the claim is reservation-checked, so concurrent inserts
// in other buckets cannot overshoot).
func (t *oaTable) insertLocked(kw *[maxKeyWords]uint64) (slot int, existed bool, err error) {
	h := hashWords(kw, t.keyWords)
rescan:
	idx := h & t.mask
	reuse := -1
	claim := -1
	probes := 0
scan:
	for ; probes < t.capacity; probes++ {
		c := atomic.LoadUint64(&t.ctl[idx])
		switch c & slotStateMask {
		case slotFull:
			if t.keyMatch(int(idx), kw) {
				if atomic.LoadUint64(&t.ctl[idx]) != c {
					// The slot transitioned mid-compare (a cross-bucket
					// delete reclaimed it, so our lock did not serialize
					// it): the match may be torn. Restart the scan,
					// mirroring find().
					goto rescan
				}
				return int(idx), true, nil
			}
		case slotTombstone:
			if reuse < 0 {
				reuse = int(idx)
			}
		case slotEmpty:
			// End of chain: the key is absent.
			claim = int(idx)
			break scan
		}
		idx = (idx + 1) & t.mask
	}
	// The key is absent. Claim the first tombstone seen, else the empty
	// chain terminator. Empties are consumed monotonically (deletes only
	// ever mint tombstones), so after enough distinct-key churn a full
	// scan may find no empty slot at all — the remembered tombstone is
	// then the only claimable slot and MUST be used, or the map would
	// refuse new keys forever despite being far below maxEntries.
	if reuse >= 0 {
		claim = reuse
	}
	if claim < 0 {
		// No empty slot and no tombstone: every slot is full or being
		// written, which the maxLive ≤ capacity/2 reservation prevents
		// at steady state — only transiently reachable mid-rescan.
		return -1, false, ErrMapFull
	}
	if n := t.count.Add(1); n > int64(t.maxLive) {
		t.count.Add(-1)
		return -1, false, ErrMapFull
	}
	if probes > 0 {
		t.collisions.Add(uint64(probes))
	}
	if !t.claim(claim) {
		// A writer for a key homed in another bucket (hence not
		// serialized by our lock) took the slot between our scan and
		// the CAS. Rescan: chain shape changed.
		t.count.Add(-1)
		goto rescan
	}
	base := claim * t.keyWords
	for i := 0; i < t.keyWords; i++ {
		atomic.StoreUint64(&t.keys[base+i], kw[i])
	}
	return claim, false, nil
}

// claim CASes an empty or tombstone slot into slotWriting, bumping the
// sequence so optimistic readers mid-compare notice.
func (t *oaTable) claim(slot int) bool {
	c := atomic.LoadUint64(&t.ctl[slot])
	s := c & slotStateMask
	if s != slotEmpty && s != slotTombstone {
		return false
	}
	next := (c &^ slotStateMask) + slotSeqIncr | slotWriting
	return atomic.CompareAndSwapUint64(&t.ctl[slot], c, next)
}

// publish flips a claimed slot to slotFull, making it visible to the
// optimistic read path.
func (t *oaTable) publish(slot int) {
	c := atomic.LoadUint64(&t.ctl[slot])
	atomic.StoreUint64(&t.ctl[slot], (c&^slotStateMask)+slotSeqIncr|slotFull)
}

// deleteLocked tombstones the slot holding kw. Must run under the
// writer lock of kw's home bucket.
func (t *oaTable) deleteLocked(kw *[maxKeyWords]uint64) error {
	slot := t.find(kw)
	if slot < 0 {
		return ErrNoSuchKey
	}
	c := atomic.LoadUint64(&t.ctl[slot])
	atomic.StoreUint64(&t.ctl[slot], (c&^slotStateMask)+slotSeqIncr|slotTombstone)
	t.count.Add(-1)
	return nil
}

// rangeSlots calls fn for every published slot. Entries inserted or
// deleted concurrently may or may not be observed; a userspace report
// reader's usual snapshot semantics.
func (t *oaTable) rangeSlots(keySize int, fn func(slot int, key []byte) bool) {
	for slot := 0; slot < t.capacity; slot++ {
		if atomic.LoadUint64(&t.ctl[slot])&slotStateMask != slotFull {
			continue
		}
		key := make([]byte, t.keyWords*8)
		base := slot * t.keyWords
		for i := 0; i < t.keyWords; i++ {
			binary.LittleEndian.PutUint64(key[i*8:], atomic.LoadUint64(&t.keys[base+i]))
		}
		if !fn(slot, key[:keySize]) {
			return
		}
	}
}

func (t *oaTable) stats() MapStats {
	return MapStats{
		Occupancy:  t.count.Load(),
		Collisions: t.collisions.Load(),
		Retries:    t.retries.Load(),
	}
}

// storeRawWords decodes little-endian raw bytes straight into value
// words with atomic stores — the zero-allocation spine of UpdateRaw.
func storeRawWords(dst []uint64, raw []byte) {
	for i := range dst {
		atomic.StoreUint64(&dst[i], binary.LittleEndian.Uint64(raw[i*8:]))
	}
}

// --- Hash map (lock-free, preallocated) ---

// HashMap is a bounded hash map with arbitrary fixed-size keys (≤
// MaxHashKeySize bytes), the analogue of a preallocated
// BPF_MAP_TYPE_HASH. Lookup is lock-free (optimistic, seqlock-
// validated); Update/Delete serialize per home bucket, exactly the
// kernel htab discipline. No operation allocates.
type HashMap struct {
	name       string
	keySize    int
	valueWords int
	maxEntries int
	tab        oaTable
	vals       []uint64 // capacity × valueWords, slot-major
}

// NewHashMap creates a hash map. All storage — slot control words, key
// words, values — is allocated here, never per operation.
func NewHashMap(name string, keySize, valueSize, maxEntries int) *HashMap {
	checkSpec(name, keySize, valueSize, maxEntries)
	checkHashKey(name, keySize)
	m := &HashMap{
		name:       name,
		keySize:    keySize,
		valueWords: valueSize / 8,
		maxEntries: maxEntries,
	}
	m.tab.init(keySize, maxEntries)
	m.vals = make([]uint64, m.tab.capacity*m.valueWords)
	return m
}

func checkHashKey(name string, keySize int) {
	if keySize > MaxHashKeySize {
		panic(ErrBadMapSpec.Error() + ": " + name + ": hash key exceeds MaxHashKeySize")
	}
}

// Name implements Map.
func (m *HashMap) Name() string { return m.name }

// KeySize implements Map.
func (m *HashMap) KeySize() int { return m.keySize }

// ValueSize implements Map.
func (m *HashMap) ValueSize() int { return m.valueWords * 8 }

// MaxEntries implements Map.
func (m *HashMap) MaxEntries() int { return m.maxEntries }

func (m *HashMap) valSlice(slot int) []uint64 {
	return m.vals[slot*m.valueWords : (slot+1)*m.valueWords]
}

// Lookup implements Map. It never takes a lock: concurrent mutators are
// detected via the slot control word and retried past.
func (m *HashMap) Lookup(key []byte, _ int) []uint64 {
	if len(key) != m.keySize {
		return nil
	}
	var kw [maxKeyWords]uint64
	loadKeyWords(&kw, key)
	slot := m.tab.find(&kw)
	if slot < 0 {
		return nil
	}
	return m.valSlice(slot)
}

// Update implements Map, inserting the key if absent.
func (m *HashMap) Update(key []byte, value []uint64, _ int) error {
	if len(value) != m.valueWords {
		return ErrValueSize
	}
	return m.update(key, func(dst []uint64) { atomicCopy(dst, value) })
}

// UpdateRaw is Update from little-endian bytes, the zero-allocation
// path the map_update helper uses.
func (m *HashMap) UpdateRaw(key, raw []byte, _ int) error {
	if len(raw) != m.valueWords*8 {
		return ErrValueSize
	}
	return m.update(key, func(dst []uint64) { storeRawWords(dst, raw) })
}

func (m *HashMap) update(key []byte, fill func(dst []uint64)) error {
	if len(key) != m.keySize {
		return ErrKeySize
	}
	var kw [maxKeyWords]uint64
	loadKeyWords(&kw, key)
	l := m.tab.lock(hashWords(&kw, m.tab.keyWords))
	defer m.tab.unlock(l)
	slot, existed, err := m.tab.insertLocked(&kw)
	if err != nil {
		return err
	}
	fill(m.valSlice(slot))
	if !existed {
		m.tab.publish(slot)
	}
	return nil
}

// Delete implements Map.
func (m *HashMap) Delete(key []byte) error {
	if len(key) != m.keySize {
		return ErrKeySize
	}
	var kw [maxKeyWords]uint64
	loadKeyWords(&kw, key)
	l := m.tab.lock(hashWords(&kw, m.tab.keyWords))
	defer m.tab.unlock(l)
	return m.tab.deleteLocked(&kw)
}

// LookupOrInit returns the value for key, atomically inserting a zero
// value if absent. The fast path is the lock-free find; only a miss
// takes the bucket writer lock. Used by the map_add helper so counting
// policies need no userspace priming and first touches cannot race.
func (m *HashMap) LookupOrInit(key []byte, _ int) []uint64 {
	if len(key) != m.keySize {
		return nil
	}
	var kw [maxKeyWords]uint64
	loadKeyWords(&kw, key)
	if slot := m.tab.find(&kw); slot >= 0 {
		return m.valSlice(slot)
	}
	l := m.tab.lock(hashWords(&kw, m.tab.keyWords))
	defer m.tab.unlock(l)
	slot, existed, err := m.tab.insertLocked(&kw)
	if err != nil {
		return nil
	}
	if !existed {
		v := m.valSlice(slot)
		for i := range v {
			atomic.StoreUint64(&v[i], 0)
		}
		m.tab.publish(slot)
	}
	return m.valSlice(slot)
}

// Len reports the number of live entries.
func (m *HashMap) Len() int { return int(m.tab.count.Load()) }

// MapStats implements StatsProvider.
func (m *HashMap) MapStats() MapStats { return m.tab.stats() }

// Range calls fn for every key/value pair until fn returns false. The
// value slice aliases map storage. Intended for userspace report readers.
func (m *HashMap) Range(fn func(key []byte, value []uint64) bool) {
	m.tab.rangeSlots(m.keySize, func(slot int, key []byte) bool {
		return fn(key, m.valSlice(slot))
	})
}

// --- Per-CPU hash map (lock-free, preallocated) ---

// cacheLineWords pads per-CPU value stripes to 64-byte boundaries so
// two CPUs' stripes never share a line.
const cacheLineWords = 8

// PerCPUHashMap shares one key table across CPUs but gives each virtual
// CPU its own value stripe, the analogue of BPF_MAP_TYPE_PERCPU_HASH:
// counting policies touch only their own cacheline, so hot keys do not
// bounce between CPUs. Key management (insert/delete/probe) is the same
// lock-free engine as HashMap.
type PerCPUHashMap struct {
	name       string
	keySize    int
	valueWords int
	maxEntries int
	numCPUs    int
	tab        oaTable
	stride     int      // words per CPU stripe, cacheline-padded
	base       int      // offset aligning vals[base] to a cacheline
	vals       []uint64 // numCPUs × stride (+ alignment slack), cpu-major
}

// NewPerCPUHashMap creates a per-CPU hash map over numCPUs virtual CPUs.
func NewPerCPUHashMap(name string, keySize, valueSize, maxEntries, numCPUs int) *PerCPUHashMap {
	checkSpec(name, keySize, valueSize, maxEntries)
	checkHashKey(name, keySize)
	if numCPUs <= 0 {
		panic("policy: per-cpu map needs at least one cpu")
	}
	m := &PerCPUHashMap{
		name:       name,
		keySize:    keySize,
		valueWords: valueSize / 8,
		maxEntries: maxEntries,
		numCPUs:    numCPUs,
	}
	m.tab.init(keySize, maxEntries)
	stripe := m.tab.capacity * m.valueWords
	m.stride = (stripe + cacheLineWords - 1) &^ (cacheLineWords - 1)
	m.vals = make([]uint64, m.numCPUs*m.stride+cacheLineWords-1)
	m.base = alignOffset(m.vals)
	return m
}

// alignOffset returns the element offset at which the slice is 64-byte
// aligned (the allocator only guarantees word alignment).
func alignOffset(v []uint64) int {
	if len(v) == 0 {
		return 0
	}
	for i := 0; i < cacheLineWords && i < len(v); i++ {
		if uintptr(unsafe.Pointer(&v[i]))%64 == 0 {
			return i
		}
	}
	return 0
}

// Name implements Map.
func (m *PerCPUHashMap) Name() string { return m.name }

// KeySize implements Map.
func (m *PerCPUHashMap) KeySize() int { return m.keySize }

// ValueSize implements Map.
func (m *PerCPUHashMap) ValueSize() int { return m.valueWords * 8 }

// MaxEntries implements Map.
func (m *PerCPUHashMap) MaxEntries() int { return m.maxEntries }

// NumCPUs returns the number of per-CPU value stripes.
func (m *PerCPUHashMap) NumCPUs() int { return m.numCPUs }

func (m *PerCPUHashMap) valSlice(slot, cpu int) []uint64 {
	off := m.base + cpu*m.stride + slot*m.valueWords
	return m.vals[off : off+m.valueWords]
}

// Lookup implements Map; the entry returned belongs to the given CPU.
func (m *PerCPUHashMap) Lookup(key []byte, cpu int) []uint64 {
	if len(key) != m.keySize || cpu < 0 || cpu >= m.numCPUs {
		return nil
	}
	var kw [maxKeyWords]uint64
	loadKeyWords(&kw, key)
	slot := m.tab.find(&kw)
	if slot < 0 {
		return nil
	}
	return m.valSlice(slot, cpu)
}

// Update implements Map: it sets the value on the given CPU's stripe
// only (matching the kernel helper semantics, where a program updates
// the current CPU's copy). A fresh insert zeroes every CPU's stripe
// before publishing.
func (m *PerCPUHashMap) Update(key []byte, value []uint64, cpu int) error {
	if len(value) != m.valueWords {
		return ErrValueSize
	}
	return m.update(key, cpu, func(dst []uint64) { atomicCopy(dst, value) })
}

// UpdateRaw is Update from little-endian bytes, the zero-allocation
// path the map_update helper uses.
func (m *PerCPUHashMap) UpdateRaw(key, raw []byte, cpu int) error {
	if len(raw) != m.valueWords*8 {
		return ErrValueSize
	}
	return m.update(key, cpu, func(dst []uint64) { storeRawWords(dst, raw) })
}

func (m *PerCPUHashMap) update(key []byte, cpu int, fill func(dst []uint64)) error {
	if len(key) != m.keySize {
		return ErrKeySize
	}
	if cpu < 0 || cpu >= m.numCPUs {
		return ErrBadCPU
	}
	var kw [maxKeyWords]uint64
	loadKeyWords(&kw, key)
	l := m.tab.lock(hashWords(&kw, m.tab.keyWords))
	defer m.tab.unlock(l)
	slot, existed, err := m.tab.insertLocked(&kw)
	if err != nil {
		return err
	}
	if !existed {
		m.zeroSlot(slot)
	}
	fill(m.valSlice(slot, cpu))
	if !existed {
		m.tab.publish(slot)
	}
	return nil
}

func (m *PerCPUHashMap) zeroSlot(slot int) {
	for cpu := 0; cpu < m.numCPUs; cpu++ {
		v := m.valSlice(slot, cpu)
		for i := range v {
			atomic.StoreUint64(&v[i], 0)
		}
	}
}

// Delete implements Map, removing the key from every CPU at once.
func (m *PerCPUHashMap) Delete(key []byte) error {
	if len(key) != m.keySize {
		return ErrKeySize
	}
	var kw [maxKeyWords]uint64
	loadKeyWords(&kw, key)
	l := m.tab.lock(hashWords(&kw, m.tab.keyWords))
	defer m.tab.unlock(l)
	return m.tab.deleteLocked(&kw)
}

// LookupOrInit returns the given CPU's value for key, inserting a
// zeroed entry (on all CPUs) if absent. Used by the map_add helper.
func (m *PerCPUHashMap) LookupOrInit(key []byte, cpu int) []uint64 {
	if len(key) != m.keySize || cpu < 0 || cpu >= m.numCPUs {
		return nil
	}
	var kw [maxKeyWords]uint64
	loadKeyWords(&kw, key)
	if slot := m.tab.find(&kw); slot >= 0 {
		return m.valSlice(slot, cpu)
	}
	l := m.tab.lock(hashWords(&kw, m.tab.keyWords))
	defer m.tab.unlock(l)
	slot, existed, err := m.tab.insertLocked(&kw)
	if err != nil {
		return nil
	}
	if !existed {
		m.zeroSlot(slot)
		m.tab.publish(slot)
	}
	return m.valSlice(slot, cpu)
}

// Len reports the number of live keys.
func (m *PerCPUHashMap) Len() int { return int(m.tab.count.Load()) }

// MapStats implements StatsProvider.
func (m *PerCPUHashMap) MapStats() MapStats { return m.tab.stats() }

// Sum folds the first value word for key across all CPUs, the usual way
// userspace reads a per-CPU counter.
func (m *PerCPUHashMap) Sum(key []byte) uint64 {
	var total uint64
	for cpu := 0; cpu < m.numCPUs; cpu++ {
		if v := m.Lookup(key, cpu); v != nil {
			total += atomic.LoadUint64(&v[0])
		}
	}
	return total
}

// Range calls fn for every key with the given CPU's value slice.
func (m *PerCPUHashMap) Range(cpu int, fn func(key []byte, value []uint64) bool) {
	if cpu < 0 || cpu >= m.numCPUs {
		return
	}
	m.tab.rangeSlots(m.keySize, func(slot int, key []byte) bool {
		return fn(key, m.valSlice(slot, cpu))
	})
}

// MapKindOf names the concrete kind of a map, for analysis cost models
// and telemetry labels.
func MapKindOf(m Map) string {
	switch m.(type) {
	case *ArrayMap:
		return "array"
	case *PerCPUArrayMap:
		return "percpu_array"
	case *HashMap:
		return "hash"
	case *PerCPUHashMap:
		return "percpu_hash"
	case *LockedHashMap:
		return "locked_hash"
	default:
		return "custom"
	}
}
