package policy

import (
	"fmt"
	"strconv"
	"strings"
)

// AsmError reports an assembler failure with its source line.
type AsmError struct {
	Line int
	Msg  string
}

// Error implements error.
func (e *AsmError) Error() string { return fmt.Sprintf("asm: line %d: %s", e.Line, e.Msg) }

// Assemble translates assembler text into a Program of the given kind.
//
// Syntax, one instruction per line:
//
//	; comment            // comment
//	label:
//	mov   r1, 42         mov r2, r1
//	add   r1, 7          sub r1, r2       (and mul/div/mod/and/or/xor/lsh/rsh/arsh)
//	neg   r1
//	ldxdw r3, [r6+16]    ldxdw r3, [r6+curr_socket]   (ctx field names resolve
//	                                                   against the kind's layout)
//	stxdw [r10-8], r3    stdw [r10-16], 7             (and b/h/w widths)
//	ldmap r1, counters                                (map by name)
//	call  map_lookup
//	jeq   r0, 0, out     jne r2, r3, retry   ja out   (forward labels)
//	exit
//
// Maps referenced by ldmap must be supplied in maps.
func Assemble(name string, kind Kind, src string, maps map[string]Map) (*Program, error) {
	b := NewBuilder(name, kind)
	layout := LayoutFor(kind)

	fail := func(lineNo int, format string, args ...any) (*Program, error) {
		return nil, &AsmError{Line: lineNo, Msg: fmt.Sprintf(format, args...)}
	}

	for lineNo, raw := range strings.Split(src, "\n") {
		lineNo++ // 1-based
		line := raw
		if i := strings.IndexAny(line, ";"); i >= 0 {
			line = line[:i]
		}
		if i := strings.Index(line, "//"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		// Leading labels, possibly several.
		for {
			i := strings.Index(line, ":")
			if i < 0 {
				break
			}
			label := strings.TrimSpace(line[:i])
			if !isIdent(label) {
				return fail(lineNo, "bad label %q", label)
			}
			b.Label(label)
			line = strings.TrimSpace(line[i+1:])
		}
		if line == "" {
			continue
		}

		fields := strings.Fields(strings.ReplaceAll(line, ",", " "))
		mn, ops := strings.ToLower(fields[0]), fields[1:]

		switch mn {
		case "exit":
			if len(ops) != 0 {
				return fail(lineNo, "exit takes no operands")
			}
			b.Exit()

		case "call":
			if len(ops) != 1 {
				return fail(lineNo, "call takes one operand")
			}
			h, ok := HelperByName(ops[0])
			if !ok {
				if id, err := strconv.ParseInt(ops[0], 0, 64); err == nil {
					h = HelperID(id)
				} else {
					return fail(lineNo, "unknown helper %q", ops[0])
				}
			}
			b.Call(h)

		case "ldmap":
			if len(ops) != 2 {
				return fail(lineNo, "ldmap takes dst, mapname")
			}
			dst, ok := parseReg(ops[0])
			if !ok {
				return fail(lineNo, "bad register %q", ops[0])
			}
			m, ok := maps[ops[1]]
			if !ok {
				return fail(lineNo, "unknown map %q", ops[1])
			}
			b.LoadMapPtr(dst, m)

		case "ja":
			if len(ops) != 1 {
				return fail(lineNo, "ja takes a label")
			}
			b.Ja(ops[0])

		case "jeq", "jne", "jgt", "jge", "jlt", "jle",
			"jsgt", "jsge", "jslt", "jsle", "jset":
			if len(ops) != 3 {
				return fail(lineNo, "%s takes dst, src|imm, label", mn)
			}
			dst, ok := parseReg(ops[0])
			if !ok {
				return fail(lineNo, "bad register %q", ops[0])
			}
			if src, ok := parseReg(ops[1]); ok {
				b.JmpReg(jumpOpReg[mn], dst, src, ops[2])
			} else if imm, err := strconv.ParseInt(ops[1], 0, 64); err == nil {
				b.JmpImm(jumpOpImm[mn], dst, imm, ops[2])
			} else {
				return fail(lineNo, "bad operand %q", ops[1])
			}

		case "neg":
			if len(ops) != 1 {
				return fail(lineNo, "neg takes one register")
			}
			dst, ok := parseReg(ops[0])
			if !ok {
				return fail(lineNo, "bad register %q", ops[0])
			}
			b.Neg(dst)

		case "mov", "add", "sub", "mul", "div", "mod",
			"and", "or", "xor", "lsh", "rsh", "arsh":
			if len(ops) != 2 {
				return fail(lineNo, "%s takes dst, src|imm", mn)
			}
			dst, ok := parseReg(ops[0])
			if !ok {
				return fail(lineNo, "bad register %q", ops[0])
			}
			if src, ok := parseReg(ops[1]); ok {
				b.ALUReg(aluOpReg[mn], dst, src)
			} else if imm, err := strconv.ParseInt(ops[1], 0, 64); err == nil {
				b.ALUImm(aluOpImm[mn], dst, imm)
			} else {
				return fail(lineNo, "bad operand %q", ops[1])
			}

		case "ldxb", "ldxh", "ldxw", "ldxdw":
			if len(ops) != 2 {
				return fail(lineNo, "%s takes dst, [reg+off]", mn)
			}
			dst, ok := parseReg(ops[0])
			if !ok {
				return fail(lineNo, "bad register %q", ops[0])
			}
			src, off, ok := parseMem(ops[1], layout)
			if !ok {
				return fail(lineNo, "bad memory operand %q", ops[1])
			}
			b.Raw(Instruction{Op: loadOp[mn], Dst: dst, Src: src, Off: off})

		case "stxb", "stxh", "stxw", "stxdw":
			if len(ops) != 2 {
				return fail(lineNo, "%s takes [reg+off], src", mn)
			}
			dst, off, ok := parseMem(ops[0], layout)
			if !ok {
				return fail(lineNo, "bad memory operand %q", ops[0])
			}
			src, ok := parseReg(ops[1])
			if !ok {
				return fail(lineNo, "bad register %q", ops[1])
			}
			b.Raw(Instruction{Op: storeOpReg[mn], Dst: dst, Src: src, Off: off})

		case "stb", "sth", "stw", "stdw":
			if len(ops) != 2 {
				return fail(lineNo, "%s takes [reg+off], imm", mn)
			}
			dst, off, ok := parseMem(ops[0], layout)
			if !ok {
				return fail(lineNo, "bad memory operand %q", ops[0])
			}
			imm, err := strconv.ParseInt(ops[1], 0, 64)
			if err != nil {
				return fail(lineNo, "bad immediate %q", ops[1])
			}
			b.Raw(Instruction{Op: storeOpImm[mn], Dst: dst, Off: off, Imm: imm})

		default:
			return fail(lineNo, "unknown mnemonic %q", mn)
		}
	}

	return b.Program()
}

// MustAssemble is Assemble but panics on error; for tests and examples.
func MustAssemble(name string, kind Kind, src string, maps map[string]Map) *Program {
	p, err := Assemble(name, kind, src, maps)
	if err != nil {
		panic(err)
	}
	return p
}

var (
	aluOpImm = map[string]Op{
		"mov": OpMovImm, "add": OpAddImm, "sub": OpSubImm, "mul": OpMulImm,
		"div": OpDivImm, "mod": OpModImm, "and": OpAndImm, "or": OpOrImm,
		"xor": OpXorImm, "lsh": OpLshImm, "rsh": OpRshImm, "arsh": OpArshImm,
	}
	aluOpReg = map[string]Op{
		"mov": OpMovReg, "add": OpAddReg, "sub": OpSubReg, "mul": OpMulReg,
		"div": OpDivReg, "mod": OpModReg, "and": OpAndReg, "or": OpOrReg,
		"xor": OpXorReg, "lsh": OpLshReg, "rsh": OpRshReg, "arsh": OpArshReg,
	}
	jumpOpImm = map[string]Op{
		"jeq": OpJeqImm, "jne": OpJneImm, "jgt": OpJgtImm, "jge": OpJgeImm,
		"jlt": OpJltImm, "jle": OpJleImm, "jsgt": OpJsgtImm, "jsge": OpJsgeImm,
		"jslt": OpJsltImm, "jsle": OpJsleImm, "jset": OpJsetImm,
	}
	jumpOpReg = map[string]Op{
		"jeq": OpJeqReg, "jne": OpJneReg, "jgt": OpJgtReg, "jge": OpJgeReg,
		"jlt": OpJltReg, "jle": OpJleReg, "jsgt": OpJsgtReg, "jsge": OpJsgeReg,
		"jslt": OpJsltReg, "jsle": OpJsleReg, "jset": OpJsetReg,
	}
	loadOp = map[string]Op{
		"ldxb": OpLdxB, "ldxh": OpLdxH, "ldxw": OpLdxW, "ldxdw": OpLdxDW,
	}
	storeOpReg = map[string]Op{
		"stxb": OpStxB, "stxh": OpStxH, "stxw": OpStxW, "stxdw": OpStxDW,
	}
	storeOpImm = map[string]Op{
		"stb": OpStB, "sth": OpStH, "stw": OpStW, "stdw": OpStDW,
	}
)

func parseReg(s string) (Reg, bool) {
	switch strings.ToLower(s) {
	case "rfp", "fp", "r10":
		return RFP, true
	}
	s = strings.ToLower(s)
	if !strings.HasPrefix(s, "r") {
		return 0, false
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 || n >= NumRegs {
		return 0, false
	}
	return Reg(n), true
}

// parseMem parses "[reg+off]", "[reg-off]", "[reg]" or "[reg+fieldname]"
// (ctx field names resolved against the program kind's layout).
func parseMem(s string, layout *CtxLayout) (Reg, int16, bool) {
	if !strings.HasPrefix(s, "[") || !strings.HasSuffix(s, "]") {
		return 0, 0, false
	}
	inner := strings.TrimSpace(s[1 : len(s)-1])
	sep := strings.IndexAny(inner, "+-")
	if sep < 0 {
		r, ok := parseReg(inner)
		return r, 0, ok
	}
	r, ok := parseReg(strings.TrimSpace(inner[:sep]))
	if !ok {
		return 0, 0, false
	}
	offStr := strings.TrimSpace(inner[sep+1:])
	neg := inner[sep] == '-'
	if f, ok := layout.FieldByName(offStr); ok && !neg {
		return r, int16(f.Off), true
	}
	off, err := strconv.ParseInt(offStr, 0, 16)
	if err != nil {
		return 0, 0, false
	}
	if neg {
		off = -off
	}
	return r, int16(off), true
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == '.':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
