package policy

import (
	"strings"
	"testing"
)

// lockStatsProg returns R0 = lock_stats_read(field).
func lockStatsProg(t *testing.T, kind Kind, field int64) *Program {
	t.Helper()
	p, err := NewBuilder("lockstats", kind).
		MovImm(R1, field).
		Call(HelperLockStats).
		Exit().
		Program()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestLockStatsHelperVerifiesOnShufflerPath(t *testing.T) {
	// lock_stats_read is read-only, so even the restricted shuffler-path
	// kinds admit it.
	for _, kind := range []Kind{KindCmpNode, KindSkipShuffle, KindScheduleWaiter, KindLockAcquired} {
		p := lockStatsProg(t, kind, 2)
		if _, err := Verify(p); err != nil {
			t.Errorf("kind %v: %v", kind, err)
		}
	}
}

func TestLockStatsHelperReadsEnv(t *testing.T) {
	p := lockStatsProg(t, KindCmpNode, 2)
	if _, err := Verify(p); err != nil {
		t.Fatal(err)
	}
	env := &TestEnv{LockStats: map[uint64]uint64{2: 12345}}
	got, err := Exec(p, NewCtx(p.Kind), env)
	if err != nil {
		t.Fatal(err)
	}
	if got != 12345 {
		t.Errorf("lock_stats_read(2) = %d, want 12345", got)
	}
	// Unknown field reads 0, not an error.
	p9 := lockStatsProg(t, KindCmpNode, 999)
	if _, err := Verify(p9); err != nil {
		t.Fatal(err)
	}
	if got, err := Exec(p9, NewCtx(p9.Kind), env); err != nil || got != 0 {
		t.Errorf("lock_stats_read(999) = %d, %v; want 0, nil", got, err)
	}
}

func TestLockStatsHelperWithoutReaderReadsZero(t *testing.T) {
	// realEnv does not implement LockStatReader: the helper must
	// degrade to 0 rather than fail, so profile-gated policies run on
	// plain environments.
	p := lockStatsProg(t, KindCmpNode, 0)
	if _, err := Verify(p); err != nil {
		t.Fatal(err)
	}
	got, err := Exec(p, NewCtx(p.Kind), DefaultEnv)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Errorf("lock_stats_read on plain env = %d, want 0", got)
	}
}

func TestLockStatsHelperCompiled(t *testing.T) {
	p := lockStatsProg(t, KindLockAcquired, 1)
	if _, err := Verify(p); err != nil {
		t.Fatal(err)
	}
	fn, err := CompileNative(p)
	if err != nil {
		t.Fatalf("CompileNative: %v", err)
	}
	env := &FuncEnv{LockStatFn: func(f uint64) uint64 { return f * 7 }}
	got, err := fn(NewCtx(p.Kind), env)
	if err != nil {
		t.Fatal(err)
	}
	if got != 7 {
		t.Errorf("compiled lock_stats_read(1) = %d, want 7", got)
	}
}

func TestLockStatsHelperNameRoundTrip(t *testing.T) {
	id, ok := HelperByName("lock_stats_read")
	if !ok || id != HelperLockStats {
		t.Fatalf("HelperByName = %v, %v", id, ok)
	}
	if HelperLockStats.String() != "lock_stats_read" {
		t.Fatalf("String = %q", HelperLockStats.String())
	}
	p := lockStatsProg(t, KindCmpNode, 0)
	if !strings.Contains(p.String(), "lock_stats_read") {
		t.Error("disassembly does not name the helper")
	}
}
