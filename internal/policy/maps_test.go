package policy

import (
	"encoding/binary"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func key32(i uint32) []byte {
	var k [4]byte
	binary.LittleEndian.PutUint32(k[:], i)
	return k[:]
}

func TestArrayMapBasics(t *testing.T) {
	m := NewArrayMap("a", 16, 8)
	if m.KeySize() != 4 || m.ValueSize() != 16 || m.MaxEntries() != 8 {
		t.Fatalf("spec mismatch: %d/%d/%d", m.KeySize(), m.ValueSize(), m.MaxEntries())
	}
	// All entries pre-exist and are zero.
	for i := 0; i < 8; i++ {
		v := m.Lookup(key32(uint32(i)), 0)
		if v == nil || len(v) != 2 || v[0] != 0 || v[1] != 0 {
			t.Fatalf("entry %d: %v", i, v)
		}
	}
	if m.Lookup(key32(8), 0) != nil {
		t.Error("out-of-range lookup should be nil")
	}
	if m.Lookup([]byte{1, 2}, 0) != nil {
		t.Error("short key lookup should be nil")
	}
	if err := m.Update(key32(3), []uint64{7, 9}, 0); err != nil {
		t.Fatal(err)
	}
	if v := m.Lookup(key32(3), 0); v[0] != 7 || v[1] != 9 {
		t.Errorf("after update: %v", v)
	}
	if err := m.Update(key32(3), []uint64{7}, 0); err != ErrValueSize {
		t.Errorf("short value: %v, want ErrValueSize", err)
	}
	if err := m.Delete(key32(3)); err != ErrNoDelete {
		t.Errorf("delete: %v, want ErrNoDelete", err)
	}
	if v := m.At(3); v[0] != 7 {
		t.Errorf("At(3) = %v", v)
	}
}

func TestHashMapBasics(t *testing.T) {
	m := NewHashMap("h", 8, 8, 2)
	k1 := []byte("aaaaaaaa")
	k2 := []byte("bbbbbbbb")
	k3 := []byte("cccccccc")
	if v := m.Lookup(k1, 0); v != nil {
		t.Error("lookup on empty map")
	}
	if err := m.Update(k1, []uint64{1}, 0); err != nil {
		t.Fatal(err)
	}
	if err := m.Update(k2, []uint64{2}, 0); err != nil {
		t.Fatal(err)
	}
	if err := m.Update(k3, []uint64{3}, 0); err != ErrMapFull {
		t.Errorf("over capacity: %v, want ErrMapFull", err)
	}
	if m.Len() != 2 {
		t.Errorf("Len = %d, want 2", m.Len())
	}
	// Updating an existing key does not hit the capacity check.
	if err := m.Update(k1, []uint64{11}, 0); err != nil {
		t.Fatal(err)
	}
	if v := m.Lookup(k1, 0); v[0] != 11 {
		t.Errorf("after update: %v", v)
	}
	if err := m.Delete(k1); err != nil {
		t.Fatal(err)
	}
	if err := m.Delete(k1); err != ErrNoSuchKey {
		t.Errorf("double delete: %v, want ErrNoSuchKey", err)
	}
	if err := m.Update(k3, []uint64{3}, 0); err != nil {
		t.Errorf("insert after delete: %v", err)
	}
	if err := m.Update([]byte("short"), []uint64{0}, 0); err != ErrKeySize {
		t.Errorf("bad key: %v, want ErrKeySize", err)
	}
}

func TestHashMapRange(t *testing.T) {
	m := NewHashMap("h", 4, 8, 16)
	for i := uint32(0); i < 5; i++ {
		if err := m.Update(key32(i), []uint64{uint64(i) * 10}, 0); err != nil {
			t.Fatal(err)
		}
	}
	var sum uint64
	m.Range(func(k []byte, v []uint64) bool {
		sum += v[0]
		return true
	})
	if sum != 0+10+20+30+40 {
		t.Errorf("sum = %d, want 100", sum)
	}
	// Early stop.
	n := 0
	m.Range(func([]byte, []uint64) bool { n++; return false })
	if n != 1 {
		t.Errorf("early stop visited %d, want 1", n)
	}
}

func TestHashMapLookupOrInit(t *testing.T) {
	m := NewHashMap("h", 4, 8, 1)
	v1 := m.LookupOrInit(key32(1), 0)
	if v1 == nil {
		t.Fatal("init failed")
	}
	v2 := m.LookupOrInit(key32(1), 0)
	if &v1[0] != &v2[0] {
		t.Error("LookupOrInit returned different backing storage")
	}
	if m.LookupOrInit(key32(2), 0) != nil {
		t.Error("over-capacity init should fail")
	}
}

func TestPerCPUArrayMapBounds(t *testing.T) {
	m := NewPerCPUArrayMap("p", 8, 2, 3)
	if m.Lookup(key32(0), 3) != nil {
		t.Error("cpu out of range")
	}
	if m.Lookup(key32(2), 0) != nil {
		t.Error("index out of range")
	}
	if err := m.Update(key32(1), []uint64{5}, 2); err != nil {
		t.Fatal(err)
	}
	if v := m.Lookup(key32(1), 2); v[0] != 5 {
		t.Errorf("cpu2 = %v", v)
	}
	if v := m.Lookup(key32(1), 0); v[0] != 0 {
		t.Errorf("cpu0 should be isolated: %v", v)
	}
}

func TestMapConcurrentCounters(t *testing.T) {
	m := NewHashMap("h", 4, 8, 64)
	const workers = 8
	const iters = 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				v := m.LookupOrInit(key32(uint32(w%4)), 0)
				atomic.AddUint64(&v[0], 1)
			}
		}(w)
	}
	wg.Wait()
	var total uint64
	for i := uint32(0); i < 4; i++ {
		if v := m.Lookup(key32(i), 0); v != nil {
			total += atomic.LoadUint64(&v[0])
		}
	}
	if total != workers*iters {
		t.Errorf("total = %d, want %d", total, workers*iters)
	}
}

func TestArrayMapUpdateLookupProperty(t *testing.T) {
	m := NewArrayMap("q", 8, 64)
	f := func(idx uint32, val uint64) bool {
		idx %= 64
		if err := m.Update(key32(idx), []uint64{val}, 0); err != nil {
			return false
		}
		v := m.Lookup(key32(idx), 0)
		return v != nil && v[0] == val
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHashMapUpdateLookupProperty(t *testing.T) {
	m := NewHashMap("q", 8, 16, 4096)
	f := func(key [8]byte, val uint64) bool {
		if err := m.Update(key[:], []uint64{val, ^val}, 0); err != nil {
			return false
		}
		v := m.Lookup(key[:], 0)
		return v != nil && v[0] == val && v[1] == ^val
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBadMapSpecPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewArrayMap("x", 7, 1) },   // value not multiple of 8
		func() { NewArrayMap("x", 8, 0) },   // no entries
		func() { NewHashMap("x", 0, 8, 1) }, // zero key
		func() { NewPerCPUArrayMap("x", 8, 1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("want panic on bad spec")
				}
			}()
			fn()
		}()
	}
}
