package policy

import (
	"encoding/binary"
	"sync"
	"sync/atomic"
	"testing"
)

// Torture tests for the hash-map data plane: concurrent readers,
// updaters, and deleters hammer a small key space and assert the one
// guarantee the maps make under races — reads are word-atomic, never
// torn. Writers only ever store well-formed values (low half == high
// half), so any torn read surfaces as a malformed word. The race
// detector additionally proves every access is a synchronized or
// atomic one. What is deliberately NOT asserted: which entry a held
// value slice refers to after a delete — the documented recycling
// race (see maps_hash.go) allows a stale slice to alias a successor
// entry's words, and those words are well-formed too.

// wellFormed builds a value word whose halves mirror each other.
func wellFormed(x uint32) uint64 { return uint64(x)<<32 | uint64(x) }

// tortureMap runs the mixed workload against any Map implementation.
func tortureMap(t *testing.T, m Map, numCPUs int) {
	t.Helper()
	const (
		keys  = 64
		iters = 8000
	)
	n := iters
	if testing.Short() {
		n = 1000
	}

	mkKey := func(i uint64) []byte {
		var k [8]byte
		binary.LittleEndian.PutUint64(k[:], i%keys)
		return k[:]
	}
	var torn atomic.Int64
	checkWord := func(v []uint64) {
		for i := range v {
			x := atomic.LoadUint64(&v[i])
			if uint32(x>>32) != uint32(x) {
				torn.Add(1)
			}
		}
	}

	var wg sync.WaitGroup
	worker := func(id int, fn func(id, i int)) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < n; i++ {
				fn(id, i)
			}
		}()
	}

	// Updaters: alternate the words-slice and raw-bytes update paths.
	for w := 0; w < 2; w++ {
		worker(w, func(id, i int) {
			cpu := id % numCPUs
			k := mkKey(uint64(id*2477 + i))
			val := wellFormed(uint32(id<<24 | i))
			if i%2 == 0 {
				_ = m.Update(k, []uint64{val}, cpu)
			} else if ru, ok := m.(rawUpdater); ok {
				var raw [8]byte
				binary.LittleEndian.PutUint64(raw[:], val)
				_ = ru.UpdateRaw(k, raw[:], cpu)
			} else {
				_ = m.Update(k, []uint64{val}, cpu)
			}
		})
	}
	// Deleters: churn slots so tombstone reuse and seqlock retries fire.
	for w := 2; w < 4; w++ {
		worker(w, func(id, i int) {
			_ = m.Delete(mkKey(uint64(id*3643 + i*7)))
		})
	}
	// Readers: every observed word must be well-formed (zero included).
	for w := 4; w < 6; w++ {
		worker(w, func(id, i int) {
			cpu := id % numCPUs
			if v := m.Lookup(mkKey(uint64(id*1583+i*3)), cpu); v != nil {
				checkWord(v)
			}
		})
	}
	// Initers: LookupOrInit either finds a published entry or inserts a
	// zeroed one; both are well-formed.
	if li, ok := m.(interface {
		LookupOrInit(key []byte, cpu int) []uint64
	}); ok {
		worker(6, func(id, i int) {
			if v := li.LookupOrInit(mkKey(uint64(id*911+i*5)), id%numCPUs); v != nil {
				checkWord(v)
			}
		})
	}
	wg.Wait()

	if got := torn.Load(); got != 0 {
		t.Fatalf("observed %d torn reads", got)
	}
	// Quiescent sweep: every surviving entry is well-formed too.
	switch mm := m.(type) {
	case *HashMap:
		mm.Range(func(_ []byte, v []uint64) bool { checkWord(v); return true })
	case *PerCPUHashMap:
		for cpu := 0; cpu < numCPUs; cpu++ {
			mm.Range(cpu, func(_ []byte, v []uint64) bool { checkWord(v); return true })
		}
	case *LockedHashMap:
		mm.Range(func(_ []byte, v []uint64) bool { checkWord(v); return true })
	}
	if got := torn.Load(); got != 0 {
		t.Fatalf("quiescent sweep found %d malformed words", got)
	}
}

func TestHashMapTorture(t *testing.T) {
	tortureMap(t, NewHashMap("torture", 8, 8, 128), 1)
}

func TestPerCPUHashMapTorture(t *testing.T) {
	tortureMap(t, NewPerCPUHashMap("torture", 8, 8, 128, 4), 4)
}

func TestLockedHashMapTorture(t *testing.T) {
	tortureMap(t, NewLockedHashMap("torture", 8, 8, 128), 1)
}

// TestHashMapTortureSmall forces heavy slot reuse: capacity barely over
// the key space, so tombstone recycling and insert rescans are constant.
func TestHashMapTortureSmall(t *testing.T) {
	tortureMap(t, NewHashMap("torture-small", 8, 8, 8), 1)
}
