package policy

import (
	"encoding/binary"
	"testing"
)

// FuzzVerify is the native-fuzzing companion to TestVerifierSoundness,
// checking the same two-part safety contract on fuzzer-driven input:
//
//  1. Verify never panics, whatever the program, and
//  2. if Verify accepts, execution completes without a runtime fault
//     under an arbitrary context — verified policies cannot crash the
//     framework.
//
// Inputs that parse as JSON go through the concordctl wire format
// (Unmarshal), covering the deserializer; everything else is decoded as
// a dense fixed-width instruction stream so byte-level mutations keep
// producing structurally varied programs. Run under CI as a short
// -fuzztime smoke; locally, `go test -fuzz=FuzzVerify ./internal/policy`.
func FuzzVerify(f *testing.F) {
	// Seed with real programs in both encodings: a verifiable map-lookup
	// policy, a trivial return, and a deliberately broken jump.
	m := NewArrayMap("a", 8, 4)
	lookup := NewBuilder("seed_lookup", KindLockAcquired).
		StoreStackImm(OpStW, -4, 0).
		LoadMapPtr(R1, m).
		MovReg(R2, RFP).
		AddImm(R2, -4).
		Call(HelperMapLookup).
		JmpImm(OpJneImm, R0, 0, "ok").
		ReturnImm(0).
		Label("ok").
		ReturnImm(1).
		MustProgram()
	if data, err := Marshal(lookup); err == nil {
		f.Add(data)
	}
	trivial := NewBuilder("seed_ret", KindCmpNode).ReturnImm(1).MustProgram()
	if data, err := Marshal(trivial); err == nil {
		f.Add(data)
	}
	f.Add(encodeRawFuzz(0, []Instruction{
		{Op: OpMovImm, Dst: R0, Imm: 7},
		{Op: OpExit},
	}))
	f.Add(encodeRawFuzz(3, []Instruction{
		{Op: OpJa, Off: -1}, // backward jump: must be rejected, not crash
		{Op: OpExit},
	}))

	f.Fuzz(func(t *testing.T, data []byte) {
		var p *Program
		if len(data) > 0 && data[0] == '{' {
			var err error
			if p, err = Unmarshal(data); err != nil {
				return
			}
		} else if p = decodeRawFuzz(data); p == nil {
			return
		}

		// Property 1: Verify must reject, not panic (a panic fails the
		// fuzz run on its own).
		if _, err := Verify(p); err != nil {
			return
		}

		// Property 2: an accepted program runs to completion under an
		// arbitrary context, against live maps.
		ctx := NewCtx(p.Kind)
		h := uint64(14695981039346656037)
		for _, b := range data {
			h = (h ^ uint64(b)) * 1099511628211
		}
		for w := range ctx.Words {
			h = (h ^ uint64(w)) * 1099511628211
			ctx.Words[w] = h
		}
		if _, err := Exec(p, ctx, &TestEnv{CPUID: 3, NUMA: 1, Task: 42, Prio: 120}); err != nil {
			t.Fatalf("verified program faulted at runtime: %v\n%s", err, p)
		}
	})
}

// Fixed-width raw encoding for fuzz inputs: one leading kind byte, then
// 10 bytes per instruction (op:2 dst:1 src:1 off:2 imm:4, little
// endian). Op and registers are reduced modulo slightly-past-valid
// ranges so the stream stays instruction-shaped but still reaches the
// verifier's rejection paths.
func decodeRawFuzz(data []byte) *Program {
	if len(data) < 1+10 {
		return nil
	}
	kinds := []Kind{KindCmpNode, KindSkipShuffle, KindScheduleWaiter, KindLockAcquired}
	p := &Program{
		Name: "fuzz",
		Kind: kinds[int(data[0])%len(kinds)],
		Maps: []Map{NewArrayMap("a", 8, 4), NewHashMap("h", 8, 16, 32)},
	}
	for data = data[1:]; len(data) >= 10 && len(p.Insns) <= MaxInsns; data = data[10:] {
		p.Insns = append(p.Insns, Instruction{
			Op:  Op(binary.LittleEndian.Uint16(data[0:2]) % uint16(opMax+1)),
			Dst: Reg(data[2] % (NumRegs + 1)),
			Src: Reg(data[3] % (NumRegs + 1)),
			Off: int16(binary.LittleEndian.Uint16(data[4:6])),
			Imm: int64(int32(binary.LittleEndian.Uint32(data[6:10]))),
		})
	}
	return p
}

func encodeRawFuzz(kind byte, insns []Instruction) []byte {
	out := []byte{kind}
	for _, in := range insns {
		var b [10]byte
		binary.LittleEndian.PutUint16(b[0:2], uint16(in.Op))
		b[2], b[3] = byte(in.Dst), byte(in.Src)
		binary.LittleEndian.PutUint16(b[4:6], uint16(in.Off))
		binary.LittleEndian.PutUint32(b[6:10], uint32(int32(in.Imm)))
		out = append(out, b[:]...)
	}
	return out
}

// TestFuzzSeedsRoundTrip pins the raw encoding: decode(encode(p))
// reproduces the instruction stream, so corpus entries stay meaningful
// if the format evolves.
func TestFuzzSeedsRoundTrip(t *testing.T) {
	insns := []Instruction{
		{Op: OpMovImm, Dst: R0, Imm: -9},
		{Op: OpJneImm, Dst: R0, Imm: 3, Off: 1},
		{Op: OpExit},
	}
	p := decodeRawFuzz(encodeRawFuzz(2, insns))
	if p == nil {
		t.Fatal("decode returned nil")
	}
	if p.Kind != KindScheduleWaiter {
		t.Errorf("kind = %v", p.Kind)
	}
	if len(p.Insns) != len(insns) {
		t.Fatalf("len = %d, want %d", len(p.Insns), len(insns))
	}
	for i, in := range insns {
		if p.Insns[i] != in {
			t.Errorf("insn %d: %v != %v", i, p.Insns[i], in)
		}
	}
}
