package jit

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"concord/internal/faultinject"
	"concord/internal/policy"
)

// mach is the execution state threaded through compiled closures: raw
// uint64 registers (the verifier's static types replace the VM's
// runtime-typed rtVal), per-register map-value backings, and the policy
// stack. Machines are pooled; the stack is deliberately NOT cleared on
// reuse — the verifier proves programs never read stack bytes they did
// not write — and neither are registers the dataflow marks unusable.
type mach struct {
	regs  [policy.NumRegs]uint64
	vals  [policy.NumRegs][]uint64
	stack [policy.StackSize]byte
	ctx   *policy.Ctx
	env   policy.Env
	lsr   policy.LockStatReader
	ocs   policy.OCCSetter

	insns   int64
	helpers int64
	mapOps  int64

	ret uint64
	err *policy.RuntimeError
}

type step func(m *mach)

var machPool = sync.Pool{New: func() any { return new(mach) }}

// Interfaces the map helpers dispatch through when the analyzer pins
// R1's map at compile time. Structural copies of the unexported ones in
// package policy; every builtin map kind implements both.
type rawUpdater interface {
	UpdateRaw(key, raw []byte, cpu int) error
}

type lookupOrIniter interface {
	LookupOrInit(key []byte, cpu int) []uint64
}

// Compile lowers a verified program to a policy.CompiledFn that is
// observationally identical to policy.Exec: same R0, same faults (pc
// and message), same ExecStats deltas, same map mutations, same helper
// and fault-injection ordering. Programs the lowering cannot type
// return an error wrapping ErrUnsupported and stay on the VM tier.
func Compile(p *policy.Program) (policy.CompiledFn, error) {
	if !p.Verified() {
		return nil, policy.ErrNotVerified
	}
	c := &compiler{p: p, insns: p.Insns, n: len(p.Insns)}
	if err := c.compile(); err != nil {
		return nil, err
	}
	entry := c.steps[0]
	st := p.Stats()
	name := p.Name
	kind := p.Kind
	usesLS := c.usesLockStats
	usesOCC := c.usesOCCSet
	return func(ctx *policy.Ctx, env policy.Env) (uint64, error) {
		if env == nil {
			env = policy.DefaultEnv
		}
		if ctx == nil || ctx.Layout.Kind != kind {
			return 0, &policy.RuntimeError{Name: name, PC: -1, Msg: "context kind mismatch"}
		}
		st.Runs.Add(1)
		st.JITRuns.Add(1)
		if faultinject.PolicyTrap.Enabled() {
			if flt, ok := faultinject.PolicyTrap.Fire(); ok {
				st.Faults.Add(1)
				return 0, &policy.RuntimeError{Name: name, PC: -1,
					Msg: fmt.Sprintf("injected trap: %v", flt.Err)}
			}
		}
		m := machPool.Get().(*mach)
		m.ctx, m.env = ctx, env
		if usesLS {
			m.lsr, _ = env.(policy.LockStatReader)
		}
		if usesOCC {
			m.ocs, _ = env.(policy.OCCSetter)
		}
		m.regs[policy.R1] = 0
		m.regs[policy.RFP] = 0
		m.insns, m.helpers, m.mapOps = 0, 0, 0
		m.ret, m.err = 0, nil
		entry(m)
		ret, err := m.ret, m.err
		st.Insns.Add(m.insns)
		if m.helpers != 0 {
			st.HelperCalls.Add(m.helpers)
		}
		if m.mapOps != 0 {
			st.MapOps.Add(m.mapOps)
		}
		m.ctx, m.env, m.lsr, m.ocs = nil, nil, nil, nil
		machPool.Put(m)
		if err != nil {
			st.Faults.Add(1)
			return 0, err
		}
		return ret, nil
	}, nil
}

// MustCompile is Compile for tests and examples.
func MustCompile(p *policy.Program) policy.CompiledFn {
	fn, err := Compile(p)
	if err != nil {
		panic(err)
	}
	return fn
}

func (c *compiler) lower() error {
	c.steps = make([]step, c.n)
	for pc := c.n - 1; pc >= 0; pc-- {
		if c.states[pc] == nil {
			continue
		}
		s, err := c.lowerInsn(pc)
		if err != nil {
			return err
		}
		if c.leaders[pc] {
			// Block head: batch-add the whole block's instruction
			// count; terminal closures correct by termAdj.
			add := c.blen[pc]
			inner := s
			s = func(m *mach) { m.insns += add; inner(m) }
		}
		c.steps[pc] = s
	}
	return nil
}

// faultStep is a closure that always faults with a fixed message —
// used when a verified-impossible path is statically certain to trip
// the VM's runtime check (the JIT must fault identically).
func (c *compiler) faultStep(pc int, msg string) step {
	adj := c.termAdj(pc)
	err := &policy.RuntimeError{Name: c.p.Name, PC: pc, Msg: msg}
	return func(m *mach) { m.insns += adj; m.err = err }
}

func (c *compiler) lowerInsn(pc int) (step, error) {
	in := c.insns[pc]
	op := in.Op
	switch {
	case op == policy.OpExit:
		return c.lowerExit(pc)
	case op == policy.OpCall:
		return c.lowerCall(pc)
	case op == policy.OpLoadMapPtr:
		// Map identity is compile-time state; at runtime only the VM's
		// zero value offset is materialized.
		d := int(in.Dst)
		next := c.steps[pc+1]
		return func(m *mach) { m.regs[d] = 0; next(m) }, nil
	case op == policy.OpJa:
		// Fused: the jump is just its target's closure (its execution
		// is counted by its block's batched add).
		return c.steps[pc+1+int(in.Off)], nil
	case op.IsCondJump():
		return c.lowerCond(pc)
	case op.IsLoad():
		return c.lowerLoad(pc)
	case op.IsStore():
		return c.lowerStore(pc)
	case op.IsALU():
		return c.lowerALU(pc)
	}
	return nil, errUnsupportedf(pc, "unhandled opcode %s", op)
}

func (c *compiler) lowerExit(pc int) (step, error) {
	r0 := c.states[pc][policy.R0]
	adj := c.termAdj(pc)
	switch r0.kind {
	case kScalar:
		if r0.known {
			v := r0.c
			return func(m *mach) { m.insns += adj; m.ret = v }, nil
		}
		return func(m *mach) { m.insns += adj; m.ret = m.regs[policy.R0] }, nil
	case kNone:
		return nil, errUnsupportedf(pc, "exit with untyped R0")
	}
	return c.faultStep(pc, "exit with non-scalar R0"), nil
}

func (c *compiler) lowerCond(pc int) (step, error) {
	in := c.insns[pc]
	op := in.Op
	d, s := int(in.Dst), int(in.Src)
	switch c.res[pc] {
	case resTaken:
		return c.steps[pc+1+int(in.Off)], nil
	case resFall:
		return c.steps[pc+1], nil
	}
	tgt, fall := c.steps[pc+1+int(in.Off)], c.steps[pc+1]
	a := c.states[pc][d]
	if a.kind == kMapValOrNull {
		// Null check. A maybe-null register's materialized value is 0
		// on both refined edges (the VM keeps v=0 through refineNull),
		// so the closure is a pure branch on the backing slice.
		if op.UsesSrcReg() {
			return func(m *mach) {
				var av uint64
				if m.vals[d] != nil {
					av = 1
				}
				if condTakenJit(op, av, m.regs[s]) {
					tgt(m)
				} else {
					fall(m)
				}
			}, nil
		}
		b := uint64(in.Imm)
		t0, t1 := condTakenJit(op, 0, b), condTakenJit(op, 1, b)
		switch {
		case t0 && t1:
			return tgt, nil
		case !t0 && !t1:
			return fall, nil
		case t0: // taken iff null
			return func(m *mach) {
				if m.vals[d] == nil {
					tgt(m)
				} else {
					fall(m)
				}
			}, nil
		default: // taken iff non-null
			return func(m *mach) {
				if m.vals[d] != nil {
					tgt(m)
				} else {
					fall(m)
				}
			}, nil
		}
	}
	if op.UsesSrcReg() {
		return condStepReg(op, d, s, tgt, fall), nil
	}
	return condStepImm(op, d, uint64(in.Imm), tgt, fall), nil
}

func condStepImm(op policy.Op, d int, b uint64, tgt, fall step) step {
	sb := int64(b)
	switch op {
	case policy.OpJeqImm:
		return func(m *mach) {
			if m.regs[d] == b {
				tgt(m)
			} else {
				fall(m)
			}
		}
	case policy.OpJneImm:
		return func(m *mach) {
			if m.regs[d] != b {
				tgt(m)
			} else {
				fall(m)
			}
		}
	case policy.OpJgtImm:
		return func(m *mach) {
			if m.regs[d] > b {
				tgt(m)
			} else {
				fall(m)
			}
		}
	case policy.OpJgeImm:
		return func(m *mach) {
			if m.regs[d] >= b {
				tgt(m)
			} else {
				fall(m)
			}
		}
	case policy.OpJltImm:
		return func(m *mach) {
			if m.regs[d] < b {
				tgt(m)
			} else {
				fall(m)
			}
		}
	case policy.OpJleImm:
		return func(m *mach) {
			if m.regs[d] <= b {
				tgt(m)
			} else {
				fall(m)
			}
		}
	case policy.OpJsgtImm:
		return func(m *mach) {
			if int64(m.regs[d]) > sb {
				tgt(m)
			} else {
				fall(m)
			}
		}
	case policy.OpJsgeImm:
		return func(m *mach) {
			if int64(m.regs[d]) >= sb {
				tgt(m)
			} else {
				fall(m)
			}
		}
	case policy.OpJsltImm:
		return func(m *mach) {
			if int64(m.regs[d]) < sb {
				tgt(m)
			} else {
				fall(m)
			}
		}
	case policy.OpJsleImm:
		return func(m *mach) {
			if int64(m.regs[d]) <= sb {
				tgt(m)
			} else {
				fall(m)
			}
		}
	case policy.OpJsetImm:
		return func(m *mach) {
			if m.regs[d]&b != 0 {
				tgt(m)
			} else {
				fall(m)
			}
		}
	}
	return nil
}

func condStepReg(op policy.Op, d, s int, tgt, fall step) step {
	switch op {
	case policy.OpJeqReg:
		return func(m *mach) {
			if m.regs[d] == m.regs[s] {
				tgt(m)
			} else {
				fall(m)
			}
		}
	case policy.OpJneReg:
		return func(m *mach) {
			if m.regs[d] != m.regs[s] {
				tgt(m)
			} else {
				fall(m)
			}
		}
	case policy.OpJgtReg:
		return func(m *mach) {
			if m.regs[d] > m.regs[s] {
				tgt(m)
			} else {
				fall(m)
			}
		}
	case policy.OpJgeReg:
		return func(m *mach) {
			if m.regs[d] >= m.regs[s] {
				tgt(m)
			} else {
				fall(m)
			}
		}
	case policy.OpJltReg:
		return func(m *mach) {
			if m.regs[d] < m.regs[s] {
				tgt(m)
			} else {
				fall(m)
			}
		}
	case policy.OpJleReg:
		return func(m *mach) {
			if m.regs[d] <= m.regs[s] {
				tgt(m)
			} else {
				fall(m)
			}
		}
	case policy.OpJsgtReg:
		return func(m *mach) {
			if int64(m.regs[d]) > int64(m.regs[s]) {
				tgt(m)
			} else {
				fall(m)
			}
		}
	case policy.OpJsgeReg:
		return func(m *mach) {
			if int64(m.regs[d]) >= int64(m.regs[s]) {
				tgt(m)
			} else {
				fall(m)
			}
		}
	case policy.OpJsltReg:
		return func(m *mach) {
			if int64(m.regs[d]) < int64(m.regs[s]) {
				tgt(m)
			} else {
				fall(m)
			}
		}
	case policy.OpJsleReg:
		return func(m *mach) {
			if int64(m.regs[d]) <= int64(m.regs[s]) {
				tgt(m)
			} else {
				fall(m)
			}
		}
	case policy.OpJsetReg:
		return func(m *mach) {
			if m.regs[d]&m.regs[s] != 0 {
				tgt(m)
			} else {
				fall(m)
			}
		}
	}
	return nil
}

func loadLE(b []byte, size int) uint64 {
	switch size {
	case 1:
		return uint64(b[0])
	case 2:
		return uint64(binary.LittleEndian.Uint16(b))
	case 4:
		return uint64(binary.LittleEndian.Uint32(b))
	default:
		return binary.LittleEndian.Uint64(b)
	}
}

func storeLE(b []byte, size int, v uint64) {
	switch size {
	case 1:
		b[0] = byte(v)
	case 2:
		binary.LittleEndian.PutUint16(b, uint16(v))
	case 4:
		binary.LittleEndian.PutUint32(b, uint32(v))
	default:
		binary.LittleEndian.PutUint64(b, v)
	}
}

func (c *compiler) lowerLoad(pc int) (step, error) {
	in := c.insns[pc]
	d, s := int(in.Dst), int(in.Src)
	size := in.Op.AccessSize()
	off := int(in.Off)
	next := c.steps[pc+1]
	adj := c.termAdj(pc)
	ptr := c.states[pc][s]

	switch ptr.kind {
	case kPtrStack:
		if ptr.known {
			idx := int(int64(ptr.c)) + off + policy.StackSize
			if idx < 0 || idx+size > policy.StackSize {
				return c.faultStep(pc, "stack load out of bounds"), nil
			}
			switch size {
			case 1:
				return func(m *mach) { m.regs[d] = uint64(m.stack[idx]); next(m) }, nil
			case 2:
				return func(m *mach) { m.regs[d] = uint64(binary.LittleEndian.Uint16(m.stack[idx:])); next(m) }, nil
			case 4:
				return func(m *mach) { m.regs[d] = uint64(binary.LittleEndian.Uint32(m.stack[idx:])); next(m) }, nil
			default:
				return func(m *mach) { m.regs[d] = binary.LittleEndian.Uint64(m.stack[idx:]); next(m) }, nil
			}
		}
		oob := &policy.RuntimeError{Name: c.p.Name, PC: pc, Msg: "stack load out of bounds"}
		return func(m *mach) {
			idx := int(int64(m.regs[s])) + off + policy.StackSize
			if idx < 0 || idx+size > policy.StackSize {
				m.insns += adj
				m.err = oob
				return
			}
			m.regs[d] = loadLE(m.stack[idx:idx+size], size)
			next(m)
		}, nil

	case kPtrCtx:
		oob := &policy.RuntimeError{Name: c.p.Name, PC: pc, Msg: "ctx load out of bounds"}
		if ptr.known {
			o := int64(ptr.c) + int64(off)
			if o%8 != 0 || o < 0 {
				return c.faultStep(pc, "ctx load out of bounds"), nil
			}
			slot := int(o / 8)
			// Any access size reads the whole context word, exactly as
			// the VM does. Only the word-count check needs the runtime
			// ctx (context slices of one kind can differ in length).
			return func(m *mach) {
				w := m.ctx.Words
				if slot >= len(w) {
					m.insns += adj
					m.err = oob
					return
				}
				m.regs[d] = w[slot]
				next(m)
			}, nil
		}
		return func(m *mach) {
			o := int(int64(m.regs[s])) + off
			if o%8 != 0 || o < 0 || o/8 >= len(m.ctx.Words) {
				m.insns += adj
				m.err = oob
				return
			}
			m.regs[d] = m.ctx.Words[o/8]
			next(m)
		}, nil

	case kMapVal:
		oob := &policy.RuntimeError{Name: c.p.Name, PC: pc, Msg: "map value load out of bounds"}
		if ptr.known {
			o := int64(ptr.c) + int64(off)
			if size != 8 || o%8 != 0 || o < 0 {
				return c.faultStep(pc, "map value load out of bounds"), nil
			}
			w := int(o / 8)
			return func(m *mach) {
				v := m.vals[s]
				if w >= len(v) {
					m.insns += adj
					m.err = oob
					return
				}
				m.regs[d] = atomic.LoadUint64(&v[w])
				next(m)
			}, nil
		}
		return func(m *mach) {
			o := int(int64(m.regs[s])) + off
			if size != 8 || o%8 != 0 || o < 0 || o/8 >= len(m.vals[s]) {
				m.insns += adj
				m.err = oob
				return
			}
			m.regs[d] = atomic.LoadUint64(&m.vals[s][o/8])
			next(m)
		}, nil
	}
	return nil, errUnsupportedf(pc, "load through %s register", ptr.kind)
}

func (c *compiler) lowerStore(pc int) (step, error) {
	in := c.insns[pc]
	d, s := int(in.Dst), int(in.Src)
	size := in.Op.AccessSize()
	off := int(in.Off)
	useSrc := in.Op.UsesSrcReg()
	imm := uint64(in.Imm)
	next := c.steps[pc+1]
	adj := c.termAdj(pc)
	ptr := c.states[pc][d]

	switch ptr.kind {
	case kPtrStack:
		if ptr.known {
			idx := int(int64(ptr.c)) + off + policy.StackSize
			if idx < 0 || idx+size > policy.StackSize {
				return c.faultStep(pc, "stack store out of bounds"), nil
			}
			if useSrc {
				switch size {
				case 1:
					return func(m *mach) { m.stack[idx] = byte(m.regs[s]); next(m) }, nil
				case 2:
					return func(m *mach) { binary.LittleEndian.PutUint16(m.stack[idx:], uint16(m.regs[s])); next(m) }, nil
				case 4:
					return func(m *mach) { binary.LittleEndian.PutUint32(m.stack[idx:], uint32(m.regs[s])); next(m) }, nil
				default:
					return func(m *mach) { binary.LittleEndian.PutUint64(m.stack[idx:], m.regs[s]); next(m) }, nil
				}
			}
			// Constant store: pre-encode where the width allows.
			switch size {
			case 1:
				bv := byte(imm)
				return func(m *mach) { m.stack[idx] = bv; next(m) }, nil
			case 2:
				v := uint16(imm)
				return func(m *mach) { binary.LittleEndian.PutUint16(m.stack[idx:], v); next(m) }, nil
			case 4:
				v := uint32(imm)
				return func(m *mach) { binary.LittleEndian.PutUint32(m.stack[idx:], v); next(m) }, nil
			default:
				return func(m *mach) { binary.LittleEndian.PutUint64(m.stack[idx:], imm); next(m) }, nil
			}
		}
		oob := &policy.RuntimeError{Name: c.p.Name, PC: pc, Msg: "stack store out of bounds"}
		return func(m *mach) {
			idx := int(int64(m.regs[d])) + off + policy.StackSize
			if idx < 0 || idx+size > policy.StackSize {
				m.insns += adj
				m.err = oob
				return
			}
			v := imm
			if useSrc {
				v = m.regs[s]
			}
			storeLE(m.stack[idx:idx+size], size, v)
			next(m)
		}, nil

	case kMapVal:
		oob := &policy.RuntimeError{Name: c.p.Name, PC: pc, Msg: "map value store out of bounds"}
		if ptr.known {
			o := int64(ptr.c) + int64(off)
			if size != 8 || o%8 != 0 || o < 0 {
				return c.faultStep(pc, "map value store out of bounds"), nil
			}
			w := int(o / 8)
			if useSrc {
				return func(m *mach) {
					v := m.vals[d]
					if w >= len(v) {
						m.insns += adj
						m.err = oob
						return
					}
					atomic.StoreUint64(&v[w], m.regs[s])
					next(m)
				}, nil
			}
			return func(m *mach) {
				v := m.vals[d]
				if w >= len(v) {
					m.insns += adj
					m.err = oob
					return
				}
				atomic.StoreUint64(&v[w], imm)
				next(m)
			}, nil
		}
		return func(m *mach) {
			o := int(int64(m.regs[d])) + off
			if size != 8 || o%8 != 0 || o < 0 || o/8 >= len(m.vals[d]) {
				m.insns += adj
				m.err = oob
				return
			}
			v := imm
			if useSrc {
				v = m.regs[s]
			}
			atomic.StoreUint64(&m.vals[d][o/8], v)
			next(m)
		}, nil
	}
	return nil, errUnsupportedf(pc, "store through %s register", ptr.kind)
}

func (c *compiler) lowerALU(pc int) (step, error) {
	in := c.insns[pc]
	op := in.Op
	d, s := int(in.Dst), int(in.Src)
	next := c.steps[pc+1]

	switch op {
	case policy.OpMovImm:
		v := uint64(in.Imm)
		return func(m *mach) { m.regs[d] = v; next(m) }, nil
	case policy.OpMovReg:
		switch c.states[pc][s].kind {
		case kMapVal, kMapValOrNull:
			return func(m *mach) { m.regs[d] = m.regs[s]; m.vals[d] = m.vals[s]; next(m) }, nil
		}
		return func(m *mach) { m.regs[d] = m.regs[s]; next(m) }, nil
	}

	a := c.states[pc][d]
	switch a.kind {
	case kPtrStack, kPtrCtx, kMapVal:
		// Pointer arithmetic: offset delta, negated only for sub
		// (matching the VM for every ALU op on a pointer).
		if op == policy.OpSubImm || op == policy.OpSubReg {
			if op.UsesSrcReg() {
				return func(m *mach) { m.regs[d] -= m.regs[s]; next(m) }, nil
			}
			dv := uint64(-int64(in.Imm))
			return func(m *mach) { m.regs[d] += dv; next(m) }, nil
		}
		if op.UsesSrcReg() {
			return func(m *mach) { m.regs[d] += m.regs[s]; next(m) }, nil
		}
		dv := uint64(in.Imm)
		return func(m *mach) { m.regs[d] += dv; next(m) }, nil
	case kScalar:
		var b absVal
		if op.UsesSrcReg() {
			b = c.states[pc][s]
		} else {
			b = absVal{kind: kScalar, known: true, c: uint64(in.Imm)}
		}
		if a.known && b.known {
			v := aluConst(op, a.c, b.c)
			return func(m *mach) { m.regs[d] = v; next(m) }, nil
		}
		if st := scalarALUStep(op, d, s, uint64(in.Imm), next); st != nil {
			return st, nil
		}
	}
	return nil, errUnsupportedf(pc, "alu %s on %s register", op, a.kind)
}

func scalarALUStep(op policy.Op, d, s int, imm uint64, next step) step {
	switch op {
	case policy.OpAddImm:
		return func(m *mach) { m.regs[d] += imm; next(m) }
	case policy.OpAddReg:
		return func(m *mach) { m.regs[d] += m.regs[s]; next(m) }
	case policy.OpSubImm:
		return func(m *mach) { m.regs[d] -= imm; next(m) }
	case policy.OpSubReg:
		return func(m *mach) { m.regs[d] -= m.regs[s]; next(m) }
	case policy.OpMulImm:
		return func(m *mach) { m.regs[d] *= imm; next(m) }
	case policy.OpMulReg:
		return func(m *mach) { m.regs[d] *= m.regs[s]; next(m) }
	case policy.OpDivImm:
		if imm == 0 {
			return func(m *mach) { m.regs[d] = 0; next(m) }
		}
		return func(m *mach) { m.regs[d] /= imm; next(m) }
	case policy.OpDivReg:
		return func(m *mach) {
			if b := m.regs[s]; b == 0 {
				m.regs[d] = 0
			} else {
				m.regs[d] /= b
			}
			next(m)
		}
	case policy.OpModImm:
		if imm == 0 {
			return next // a % 0 = a: no-op
		}
		return func(m *mach) { m.regs[d] %= imm; next(m) }
	case policy.OpModReg:
		return func(m *mach) {
			if b := m.regs[s]; b != 0 {
				m.regs[d] %= b
			}
			next(m)
		}
	case policy.OpAndImm:
		return func(m *mach) { m.regs[d] &= imm; next(m) }
	case policy.OpAndReg:
		return func(m *mach) { m.regs[d] &= m.regs[s]; next(m) }
	case policy.OpOrImm:
		return func(m *mach) { m.regs[d] |= imm; next(m) }
	case policy.OpOrReg:
		return func(m *mach) { m.regs[d] |= m.regs[s]; next(m) }
	case policy.OpXorImm:
		return func(m *mach) { m.regs[d] ^= imm; next(m) }
	case policy.OpXorReg:
		return func(m *mach) { m.regs[d] ^= m.regs[s]; next(m) }
	case policy.OpLshImm:
		sh := imm & 63
		return func(m *mach) { m.regs[d] <<= sh; next(m) }
	case policy.OpLshReg:
		return func(m *mach) { m.regs[d] <<= m.regs[s] & 63; next(m) }
	case policy.OpRshImm:
		sh := imm & 63
		return func(m *mach) { m.regs[d] >>= sh; next(m) }
	case policy.OpRshReg:
		return func(m *mach) { m.regs[d] >>= m.regs[s] & 63; next(m) }
	case policy.OpArshImm:
		sh := imm & 63
		return func(m *mach) { m.regs[d] = uint64(int64(m.regs[d]) >> sh); next(m) }
	case policy.OpArshReg:
		return func(m *mach) { m.regs[d] = uint64(int64(m.regs[d]) >> (m.regs[s] & 63)); next(m) }
	case policy.OpNeg:
		return func(m *mach) { m.regs[d] = -m.regs[d]; next(m) }
	}
	return nil
}

// stackRegionFn resolves a helper's stack-buffer argument (no
// instruction offset — helper args are plain pointers, as in the VM's
// stackRegion). Static offsets compile to a fixed slice; dynamic ones
// keep the runtime bounds check with the VM's exact fault message.
func (c *compiler) stackRegionFn(pc, reg, size int) func(m *mach) ([]byte, bool) {
	adj := c.termAdj(pc)
	oob := &policy.RuntimeError{Name: c.p.Name, PC: pc, Msg: "stack buffer out of bounds"}
	r := c.states[pc][reg]
	if r.known {
		o := int(int64(r.c)) + policy.StackSize
		if o < 0 || o+size > policy.StackSize {
			return func(m *mach) ([]byte, bool) { m.insns += adj; m.err = oob; return nil, false }
		}
		end := o + size
		return func(m *mach) ([]byte, bool) { return m.stack[o:end], true }
	}
	return func(m *mach) ([]byte, bool) {
		o := int(int64(m.regs[reg])) + policy.StackSize
		if o < 0 || o+size > policy.StackSize {
			m.insns += adj
			m.err = oob
			return nil, false
		}
		return m.stack[o : o+size], true
	}
}

func (c *compiler) lowerCall(pc int) (step, error) {
	in := c.insns[pc]
	h := policy.HelperID(in.Imm)
	st := c.states[pc]
	next := c.steps[pc+1]
	adj := c.termAdj(pc)
	name := c.p.Name
	isMapOp := h >= policy.HelperMapLookup && h <= policy.HelperMapAdd

	// trap handles the fault-injection sites every helper passes
	// through, and the helper/map-op counters, in the VM's order.
	trap := func(m *mach) bool {
		m.helpers++
		if faultinject.PolicyHelper.Enabled() {
			if flt, ok := faultinject.PolicyHelper.Fire(); ok {
				if flt.Delay > 0 {
					time.Sleep(flt.Delay)
				}
				m.insns += adj
				m.err = &policy.RuntimeError{Name: name, PC: pc,
					Msg: fmt.Sprintf("helper %s: %v", h, flt.Err)}
				return false
			}
		}
		if isMapOp {
			m.mapOps++
			if faultinject.PolicyMapOp.Enabled() {
				if flt, ok := faultinject.PolicyMapOp.Fire(); ok {
					m.insns += adj
					m.err = &policy.RuntimeError{Name: name, PC: pc,
						Msg: fmt.Sprintf("map op %s: %v", h, flt.Err)}
					return false
				}
			}
		}
		return true
	}

	switch h {
	case policy.HelperMapLookup, policy.HelperMapUpdate, policy.HelperMapDelete, policy.HelperMapAdd:
		return c.lowerMapCall(pc, h, trap, next)

	case policy.HelperKtimeNS:
		return func(m *mach) {
			if !trap(m) {
				return
			}
			m.regs[policy.R0] = uint64(m.env.NowNS())
			next(m)
		}, nil
	case policy.HelperCPU:
		return func(m *mach) {
			if !trap(m) {
				return
			}
			m.regs[policy.R0] = uint64(m.env.CPU())
			next(m)
		}, nil
	case policy.HelperNUMANode:
		return func(m *mach) {
			if !trap(m) {
				return
			}
			m.regs[policy.R0] = uint64(m.env.NUMANode())
			next(m)
		}, nil
	case policy.HelperTaskID:
		return func(m *mach) {
			if !trap(m) {
				return
			}
			m.regs[policy.R0] = uint64(m.env.TaskID())
			next(m)
		}, nil
	case policy.HelperTaskPrio:
		return func(m *mach) {
			if !trap(m) {
				return
			}
			m.regs[policy.R0] = uint64(m.env.TaskPriority())
			next(m)
		}, nil
	case policy.HelperRand:
		return func(m *mach) {
			if !trap(m) {
				return
			}
			m.regs[policy.R0] = m.env.Rand()
			next(m)
		}, nil
	case policy.HelperTrace:
		return func(m *mach) {
			if !trap(m) {
				return
			}
			m.env.Trace(m.regs[policy.R1])
			m.regs[policy.R0] = 0
			next(m)
		}, nil
	case policy.HelperLockStats:
		// The LockStatReader probe happened once at run entry (m.lsr);
		// the inlined field load is a nil check away.
		return func(m *mach) {
			if !trap(m) {
				return
			}
			if m.lsr != nil {
				m.regs[policy.R0] = m.lsr.LockStat(m.regs[policy.R1])
			} else {
				m.regs[policy.R0] = 0
			}
			next(m)
		}, nil
	case policy.HelperOCCSet:
		// Same shape as lock_stats_read: the OCCSetter probe happened
		// once at run entry (m.ocs); no setter means "no change".
		return func(m *mach) {
			if !trap(m) {
				return
			}
			if m.ocs != nil {
				m.regs[policy.R0] = m.ocs.OCCSet(m.regs[policy.R1])
			} else {
				m.regs[policy.R0] = 0
			}
			next(m)
		}, nil
	}
	_ = st
	return nil, errUnsupportedf(pc, "unknown helper %d", int64(h))
}

// lowerMapCall compiles the four map helpers against their
// compile-time-pinned map: direct dispatch to the concrete map's
// UpdateRaw/LookupOrInit fast paths, with static key/value stack
// regions when the dataflow knows the pointer offsets (it almost
// always does — the DSL emits `fp-K` patterns).
func (c *compiler) lowerMapCall(pc int, h policy.HelperID, trap func(*mach) bool, next step) (step, error) {
	st := c.states[pc]
	mi := st[policy.R1].mapIdx
	mp := c.p.Maps[mi]
	ks := mp.KeySize()
	r2 := st[policy.R2]
	adj := c.termAdj(pc)
	oob := &policy.RuntimeError{Name: c.p.Name, PC: pc, Msg: "stack buffer out of bounds"}

	keyStatic := false
	var ko, koEnd int
	if r2.known {
		o := int(int64(r2.c)) + policy.StackSize
		if o >= 0 && o+ks <= policy.StackSize {
			keyStatic, ko, koEnd = true, o, o+ks
		} else {
			// Statically certain runtime fault: count, fire sites, trip.
			return func(m *mach) {
				if !trap(m) {
					return
				}
				m.insns += adj
				m.err = oob
			}, nil
		}
	}
	keyFn := c.stackRegionFn(pc, int(policy.R2), ks)

	switch h {
	case policy.HelperMapLookup:
		if keyStatic {
			return func(m *mach) {
				if !trap(m) {
					return
				}
				m.vals[policy.R0] = mp.Lookup(m.stack[ko:koEnd], m.env.CPU())
				m.regs[policy.R0] = 0
				next(m)
			}, nil
		}
		return func(m *mach) {
			if !trap(m) {
				return
			}
			key, ok := keyFn(m)
			if !ok {
				return
			}
			m.vals[policy.R0] = mp.Lookup(key, m.env.CPU())
			m.regs[policy.R0] = 0
			next(m)
		}, nil

	case policy.HelperMapAdd:
		if loi, ok := mp.(lookupOrIniter); ok {
			if keyStatic {
				return func(m *mach) {
					if !trap(m) {
						return
					}
					v := loi.LookupOrInit(m.stack[ko:koEnd], m.env.CPU())
					if v == nil {
						m.regs[policy.R0] = ^uint64(0)
					} else {
						atomic.AddUint64(&v[0], m.regs[policy.R3])
						m.regs[policy.R0] = 0
					}
					next(m)
				}, nil
			}
			return func(m *mach) {
				if !trap(m) {
					return
				}
				key, ok := keyFn(m)
				if !ok {
					return
				}
				v := loi.LookupOrInit(key, m.env.CPU())
				if v == nil {
					m.regs[policy.R0] = ^uint64(0)
				} else {
					atomic.AddUint64(&v[0], m.regs[policy.R3])
					m.regs[policy.R0] = 0
				}
				next(m)
			}, nil
		}
		return func(m *mach) {
			if !trap(m) {
				return
			}
			key, ok := keyFn(m)
			if !ok {
				return
			}
			v := mp.Lookup(key, m.env.CPU())
			if v == nil {
				m.regs[policy.R0] = ^uint64(0)
			} else {
				atomic.AddUint64(&v[0], m.regs[policy.R3])
				m.regs[policy.R0] = 0
			}
			next(m)
		}, nil

	case policy.HelperMapUpdate:
		vs := mp.ValueSize()
		valFn := c.stackRegionFn(pc, int(policy.R3), vs)
		if ru, ok := mp.(rawUpdater); ok {
			return func(m *mach) {
				if !trap(m) {
					return
				}
				key, ok := keyFn(m)
				if !ok {
					return
				}
				raw, ok := valFn(m)
				if !ok {
					return
				}
				if ru.UpdateRaw(key, raw, m.env.CPU()) != nil {
					m.regs[policy.R0] = ^uint64(0)
				} else {
					m.regs[policy.R0] = 0
				}
				next(m)
			}, nil
		}
		// Word-slice fallback for custom Map implementations
		// (allocates, exactly like the VM's fallback).
		return func(m *mach) {
			if !trap(m) {
				return
			}
			key, ok := keyFn(m)
			if !ok {
				return
			}
			raw, ok := valFn(m)
			if !ok {
				return
			}
			words := make([]uint64, vs/8)
			for i := range words {
				words[i] = binary.LittleEndian.Uint64(raw[i*8:])
			}
			if mp.Update(key, words, m.env.CPU()) != nil {
				m.regs[policy.R0] = ^uint64(0)
			} else {
				m.regs[policy.R0] = 0
			}
			next(m)
		}, nil

	case policy.HelperMapDelete:
		return func(m *mach) {
			if !trap(m) {
				return
			}
			key, ok := keyFn(m)
			if !ok {
				return
			}
			if mp.Delete(key) != nil {
				m.regs[policy.R0] = ^uint64(0)
			} else {
				m.regs[policy.R0] = 0
			}
			next(m)
		}, nil
	}
	return nil, errUnsupportedf(pc, "unhandled map helper %s", h)
}
