// Package jit lowers verified cBPF policy programs to fused Go
// closures — the compilation tier the interpreter-vs-JIT split of "The
// eBPF Runtime in the Linux Kernel" calls for. Where the VM dispatches
// an opcode switch per instruction on boxed typed registers, and the
// threaded-code compiler (policy.CompileNative) still pays one indirect
// call plus dynamic type dispatch per instruction, this tier compiles
// each instruction into a closure that calls its successor directly:
// no pc, no dispatch loop, no runtime register types.
//
// The verifier's guarantees are what make the lowering sound: programs
// are loop-free (forward jumps only), every register has a single
// static type at every program point along verified paths, and stack
// reads are dominated by writes. A forward abstract-interpretation
// pass recomputes those types (conservatively — any program it cannot
// type falls back to the VM tier, it is never run wrong), pins each
// map-helper call to its concrete map at compile time, folds constant
// immediates, and resolves branches whose operands are compile-time
// constants.
//
// Equivalence with the reference interpreter is an explicit, tested
// contract: identical R0, identical RuntimeError faults (pc and
// message), identical ExecStats deltas (instruction counting included),
// identical map mutations and trace sequences, and the same
// fault-injection sites firing in the same order. See diff.go,
// jit_test.go, fuzz_test.go and golden_test.go.
package jit

import (
	"errors"
	"fmt"

	"concord/internal/policy"
)

// ErrUnsupported marks a verified program the lowering cannot (or will
// not) specialize. The framework keeps such programs on the VM tier;
// returning it is a tier decision, never a correctness problem.
var ErrUnsupported = errors.New("policy jit: lowering unsupported")

func errUnsupportedf(pc int, format string, args ...any) error {
	return fmt.Errorf("%w: pc %d: %s", ErrUnsupported, pc, fmt.Sprintf(format, args...))
}

// regKind is the abstract type of a register at one program point. It
// mirrors the verifier's lattice; kNone covers both "never written" and
// "conflicting kinds merged at a join" — using such a register aborts
// compilation (VM fallback).
type regKind uint8

const (
	kNone regKind = iota
	kScalar
	kPtrStack     // runtime reg value = stack offset (negative, from RFP)
	kPtrCtx       // runtime reg value = byte offset into ctx words
	kMapPtr       // map identity is compile-time constant (mapIdx)
	kMapVal       // runtime: vals[r] backing slice + reg byte offset
	kMapValOrNull // lookup result before its null check
)

var regKindNames = [...]string{"untyped", "scalar", "stack_ptr", "ctx_ptr", "map_ptr", "map_value", "map_value_or_null"}

func (k regKind) String() string {
	if int(k) < len(regKindNames) {
		return regKindNames[k]
	}
	return fmt.Sprintf("regKind(%d)", uint8(k))
}

// absVal is one register's abstract value: its kind, the map it refers
// to (for map kinds), and — when derivable — its exact runtime value
// (scalar constant or pointer offset), which drives constant folding,
// dead-branch elision and specialized memory closures.
type absVal struct {
	kind   regKind
	mapIdx int
	known  bool
	c      uint64
}

type absState [policy.NumRegs]absVal

// mergeVal joins two abstract values at a control-flow join point.
// Conflicts collapse to kNone; a kNone register may flow anywhere, it
// just cannot be used.
func mergeVal(a, b absVal) absVal {
	if a.kind != b.kind {
		return absVal{}
	}
	switch a.kind {
	case kMapPtr, kMapVal, kMapValOrNull:
		if a.mapIdx != b.mapIdx {
			return absVal{}
		}
	}
	out := a
	if !(a.known && b.known && a.c == b.c) {
		out.known = false
		out.c = 0
	}
	return out
}

// refineAbs mirrors the VM's refineNull: the abstract value of a
// maybe-null map pointer on the two edges of its null check.
func refineAbs(a absVal, nonNull bool) absVal {
	if nonNull {
		return absVal{kind: kMapVal, mapIdx: a.mapIdx, known: true}
	}
	return absVal{kind: kScalar, known: true, c: 0}
}

// Branch resolutions recorded when both operands are compile-time
// constants: the dead edge is never lowered.
const (
	resDynamic uint8 = iota
	resTaken
	resFall
)

type compiler struct {
	p     *policy.Program
	insns []policy.Instruction
	n     int

	// Dataflow results: states[pc] is the merged abstract register
	// state on entry to pc (nil: statically unreachable).
	states []*absState
	res    []uint8

	// Basic-block geometry for batched instruction accounting (see
	// blocks): leaders mark block heads, offIn/blen give each pc's
	// offset within and the length of its block.
	leaders []bool
	offIn   []int64
	blen    []int64

	steps []step

	usesLockStats bool
	usesOCCSet    bool
}

func (c *compiler) compile() error {
	if c.n == 0 {
		return errUnsupportedf(0, "empty program")
	}
	if err := c.blocks(); err != nil {
		return err
	}
	if err := c.analyze(); err != nil {
		return err
	}
	return c.lower()
}

// blocks validates the jump structure (forward, in range — the
// verifier guarantees this; violations just mean VM fallback) and
// computes basic-block geometry.
//
// Instruction accounting leans on it: the VM counts every instruction
// whose dispatch completes, i.e. every executed instruction EXCEPT the
// terminating one (exit, fault) — jumps included. Rather than pay an
// increment per closure, each block leader adds the whole block length
// up front and terminal closures apply a (precomputed, usually
// negative) correction offIn-blen, so a run's total equals the VM's
// count exactly. That exactness is load-bearing: the differential
// harness asserts identical ExecStats deltas.
func (c *compiler) blocks() error {
	n := c.n
	c.leaders = make([]bool, n)
	c.leaders[0] = true
	for pc, in := range c.insns {
		switch {
		case in.Op == policy.OpJa || in.Op.IsCondJump():
			t := pc + 1 + int(in.Off)
			if t <= pc || t >= n {
				return errUnsupportedf(pc, "jump target %d out of range", t)
			}
			c.leaders[t] = true
			if pc+1 < n {
				c.leaders[pc+1] = true
			}
		case in.Op == policy.OpExit:
			if pc+1 < n {
				c.leaders[pc+1] = true
			}
		}
	}
	c.offIn = make([]int64, n)
	c.blen = make([]int64, n)
	start := 0
	for pc := 1; pc <= n; pc++ {
		if pc == n || c.leaders[pc] {
			for i := start; i < pc; i++ {
				c.offIn[i] = int64(i - start)
				c.blen[i] = int64(pc - start)
			}
			start = pc
		}
	}
	return nil
}

// termAdj is the instruction-count correction a terminating closure at
// pc applies on top of its block leader's batched add: the terminating
// instruction itself is not counted (matching the VM), and the rest of
// its block never runs.
func (c *compiler) termAdj(pc int) int64 { return c.offIn[pc] - c.blen[pc] }

// analyze runs the forward dataflow. All edges are forward (blocks
// validated that), so one pass in pc order sees every predecessor
// before its successor.
func (c *compiler) analyze() error {
	c.states = make([]*absState, c.n)
	c.res = make([]uint8, c.n)
	entry := absState{}
	entry[policy.R1] = absVal{kind: kPtrCtx, known: true}
	entry[policy.RFP] = absVal{kind: kPtrStack, known: true}
	c.states[0] = &entry
	for pc := 0; pc < c.n; pc++ {
		if c.states[pc] == nil {
			continue
		}
		if err := c.transfer(pc); err != nil {
			return err
		}
	}
	return nil
}

// edge merges an out-state into a successor.
func (c *compiler) edge(from, to int, st absState) error {
	if to <= from || to >= c.n {
		return errUnsupportedf(from, "control flows to %d, out of range", to)
	}
	if cur := c.states[to]; cur == nil {
		cp := st
		c.states[to] = &cp
	} else {
		for r := range cur {
			cur[r] = mergeVal(cur[r], st[r])
		}
	}
	return nil
}

func (c *compiler) transfer(pc int) error {
	in := c.insns[pc]
	st := *c.states[pc]
	op := in.Op
	d, s := int(in.Dst), int(in.Src)
	if d >= policy.NumRegs || s >= policy.NumRegs {
		return errUnsupportedf(pc, "register out of range")
	}

	switch {
	case op == policy.OpExit:
		// Terminal; R0's kind is checked when lowering.
		return nil

	case op == policy.OpCall:
		return c.transferCall(pc, st)

	case op == policy.OpLoadMapPtr:
		mi := int(in.Imm)
		if mi < 0 || mi >= len(c.p.Maps) {
			return errUnsupportedf(pc, "map index %d out of range", mi)
		}
		st[d] = absVal{kind: kMapPtr, mapIdx: mi, known: true}
		return c.edge(pc, pc+1, st)

	case op == policy.OpJa:
		return c.edge(pc, pc+1+int(in.Off), st)

	case op.IsCondJump():
		a := st[d]
		if a.kind == kNone {
			return errUnsupportedf(pc, "branch on untyped register")
		}
		var b absVal
		if op.UsesSrcReg() {
			b = st[s]
			if b.kind == kNone {
				return errUnsupportedf(pc, "branch against untyped register")
			}
		} else {
			b = absVal{kind: kScalar, known: true, c: uint64(in.Imm)}
		}
		tgt := pc + 1 + int(in.Off)
		if a.kind == kMapValOrNull {
			// Null check: refine each edge like the VM/verifier do.
			tkSt, flSt := st, st
			tkSt[d] = refineAbs(a, op == policy.OpJneImm)
			flSt[d] = refineAbs(a, op == policy.OpJeqImm)
			if err := c.edge(pc, tgt, tkSt); err != nil {
				return err
			}
			return c.edge(pc, pc+1, flSt)
		}
		if a.kind == kScalar && a.known && b.known {
			// Both operands constant: the branch resolves at compile
			// time and only the live edge exists.
			if condTakenJit(op, a.c, b.c) {
				c.res[pc] = resTaken
				return c.edge(pc, tgt, st)
			}
			c.res[pc] = resFall
			return c.edge(pc, pc+1, st)
		}
		if err := c.edge(pc, tgt, st); err != nil {
			return err
		}
		return c.edge(pc, pc+1, st)

	case op.IsLoad():
		switch st[s].kind {
		case kPtrStack, kPtrCtx, kMapVal:
		default:
			return errUnsupportedf(pc, "load through %s register", st[s].kind)
		}
		st[d] = absVal{kind: kScalar}
		return c.edge(pc, pc+1, st)

	case op.IsStore():
		switch st[d].kind {
		case kPtrStack, kMapVal:
		default:
			return errUnsupportedf(pc, "store through %s register", st[d].kind)
		}
		if op.UsesSrcReg() && st[s].kind != kScalar {
			return errUnsupportedf(pc, "store of %s register", st[s].kind)
		}
		return c.edge(pc, pc+1, st)

	case op.IsALU():
		return c.transferALU(pc, st)
	}
	return errUnsupportedf(pc, "unhandled opcode %s", op)
}

func (c *compiler) transferALU(pc int, st absState) error {
	in := c.insns[pc]
	op := in.Op
	d, s := int(in.Dst), int(in.Src)
	switch op {
	case policy.OpMovImm:
		st[d] = absVal{kind: kScalar, known: true, c: uint64(in.Imm)}
	case policy.OpMovReg:
		if st[s].kind == kNone {
			return errUnsupportedf(pc, "mov from untyped register")
		}
		st[d] = st[s]
	default:
		a := st[d]
		var b absVal
		if op.UsesSrcReg() {
			b = st[s]
			if b.kind == kNone {
				return errUnsupportedf(pc, "alu against untyped register")
			}
		} else {
			b = absVal{kind: kScalar, known: true, c: uint64(in.Imm)}
		}
		switch a.kind {
		case kPtrStack, kPtrCtx, kMapVal:
			// Verified pointer arithmetic adjusts the offset. The VM
			// applies the operand as a delta for every non-mov ALU op,
			// negated only for sub; matched exactly here.
			if a.known && b.known {
				delta := int64(b.c)
				if op == policy.OpSubImm || op == policy.OpSubReg {
					delta = -delta
				}
				a.c = uint64(int64(a.c) + delta)
			} else {
				a.known = false
				a.c = 0
			}
			st[d] = a
		case kScalar:
			if a.known && b.known {
				st[d] = absVal{kind: kScalar, known: true, c: aluConst(op, a.c, b.c)}
			} else {
				st[d] = absVal{kind: kScalar}
			}
		default:
			return errUnsupportedf(pc, "alu on %s register", a.kind)
		}
	}
	return c.edge(pc, pc+1, st)
}

func (c *compiler) transferCall(pc int, st absState) error {
	in := c.insns[pc]
	h := policy.HelperID(in.Imm)
	var out absVal
	switch h {
	case policy.HelperMapLookup, policy.HelperMapUpdate, policy.HelperMapDelete, policy.HelperMapAdd:
		r1 := st[policy.R1]
		if r1.kind != kMapPtr {
			return errUnsupportedf(pc, "%s: R1 is %s, not a pinned map", h, r1.kind)
		}
		if r1.mapIdx < 0 || r1.mapIdx >= len(c.p.Maps) {
			return errUnsupportedf(pc, "%s: map index out of range", h)
		}
		if st[policy.R2].kind != kPtrStack {
			return errUnsupportedf(pc, "%s: key register is %s", h, st[policy.R2].kind)
		}
		switch h {
		case policy.HelperMapUpdate:
			if st[policy.R3].kind != kPtrStack {
				return errUnsupportedf(pc, "%s: value register is %s", h, st[policy.R3].kind)
			}
			out = absVal{kind: kScalar}
		case policy.HelperMapAdd:
			if st[policy.R3].kind != kScalar {
				return errUnsupportedf(pc, "%s: delta register is %s", h, st[policy.R3].kind)
			}
			out = absVal{kind: kScalar}
		case policy.HelperMapLookup:
			out = absVal{kind: kMapValOrNull, mapIdx: r1.mapIdx, known: true}
		default:
			out = absVal{kind: kScalar}
		}
	case policy.HelperKtimeNS, policy.HelperCPU, policy.HelperNUMANode,
		policy.HelperTaskID, policy.HelperTaskPrio, policy.HelperRand:
		out = absVal{kind: kScalar}
	case policy.HelperTrace:
		if st[policy.R1].kind != kScalar {
			return errUnsupportedf(pc, "%s: R1 is %s", h, st[policy.R1].kind)
		}
		out = absVal{kind: kScalar, known: true, c: 0}
	case policy.HelperLockStats:
		if st[policy.R1].kind != kScalar {
			return errUnsupportedf(pc, "%s: R1 is %s", h, st[policy.R1].kind)
		}
		c.usesLockStats = true
		out = absVal{kind: kScalar}
	case policy.HelperOCCSet:
		if st[policy.R1].kind != kScalar {
			return errUnsupportedf(pc, "%s: R1 is %s", h, st[policy.R1].kind)
		}
		c.usesOCCSet = true
		out = absVal{kind: kScalar}
	default:
		return errUnsupportedf(pc, "unknown helper %d", int64(h))
	}
	// The VM clears R1-R5 after a call; statically they become
	// unusable, so the lowered code never needs to zero them.
	for r := policy.R1; r <= policy.R5; r++ {
		st[r] = absVal{}
	}
	st[policy.R0] = out
	return c.edge(pc, pc+1, st)
}

// condTakenJit mirrors the VM's condTaken exactly.
func condTakenJit(op policy.Op, a, b uint64) bool {
	switch op {
	case policy.OpJeqImm, policy.OpJeqReg:
		return a == b
	case policy.OpJneImm, policy.OpJneReg:
		return a != b
	case policy.OpJgtImm, policy.OpJgtReg:
		return a > b
	case policy.OpJgeImm, policy.OpJgeReg:
		return a >= b
	case policy.OpJltImm, policy.OpJltReg:
		return a < b
	case policy.OpJleImm, policy.OpJleReg:
		return a <= b
	case policy.OpJsgtImm, policy.OpJsgtReg:
		return int64(a) > int64(b)
	case policy.OpJsgeImm, policy.OpJsgeReg:
		return int64(a) >= int64(b)
	case policy.OpJsltImm, policy.OpJsltReg:
		return int64(a) < int64(b)
	case policy.OpJsleImm, policy.OpJsleReg:
		return int64(a) <= int64(b)
	case policy.OpJsetImm, policy.OpJsetReg:
		return a&b != 0
	}
	return false
}

// aluConst mirrors the VM's aluExec exactly (used for compile-time
// constant folding; the runtime closures implement the same table).
func aluConst(op policy.Op, a, b uint64) uint64 {
	switch op {
	case policy.OpAddImm, policy.OpAddReg:
		return a + b
	case policy.OpSubImm, policy.OpSubReg:
		return a - b
	case policy.OpMulImm, policy.OpMulReg:
		return a * b
	case policy.OpDivImm, policy.OpDivReg:
		if b == 0 {
			return 0
		}
		return a / b
	case policy.OpModImm, policy.OpModReg:
		if b == 0 {
			return a
		}
		return a % b
	case policy.OpAndImm, policy.OpAndReg:
		return a & b
	case policy.OpOrImm, policy.OpOrReg:
		return a | b
	case policy.OpXorImm, policy.OpXorReg:
		return a ^ b
	case policy.OpLshImm, policy.OpLshReg:
		return a << (b & 63)
	case policy.OpRshImm, policy.OpRshReg:
		return a >> (b & 63)
	case policy.OpArshImm, policy.OpArshReg:
		return uint64(int64(a) >> (b & 63))
	case policy.OpNeg:
		return -a
	}
	return 0
}
