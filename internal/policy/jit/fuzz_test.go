package jit_test

import (
	"encoding/binary"
	"errors"
	"testing"

	"concord/internal/policy"
	"concord/internal/policy/jit"
)

// FuzzVMvsJIT is the differential companion to the policy package's
// FuzzVerify: it decodes the same dense instruction encoding, and for
// every program the verifier admits and the lowerer accepts, runs both
// execution tiers on identically-seeded context and map state and fails
// on any observable divergence — register result, fault text, ExecStats
// deltas, trace sequence, or final map contents. Run under CI as a
// short -fuzztime smoke; locally,
// `go test -fuzz=FuzzVMvsJIT ./internal/policy/jit`.
func FuzzVMvsJIT(f *testing.F) {
	f.Add(encodeDiffFuzz(0, []policy.Instruction{
		{Op: policy.OpMovImm, Dst: policy.R0, Imm: 7},
		{Op: policy.OpExit},
	}))
	// Map lookup through the stack, guarded null check, word store.
	f.Add(encodeDiffFuzz(3, []policy.Instruction{
		{Op: policy.OpStDW, Dst: policy.RFP, Off: -8, Imm: 2},
		{Op: policy.OpLoadMapPtr, Dst: policy.R1, Imm: 1},
		{Op: policy.OpMovReg, Dst: policy.R2, Src: policy.RFP},
		{Op: policy.OpAddImm, Dst: policy.R2, Imm: -8},
		{Op: policy.OpMovImm, Dst: policy.R3, Imm: 5},
		{Op: policy.OpCall, Imm: int64(policy.HelperMapAdd)},
		{Op: policy.OpLoadMapPtr, Dst: policy.R1, Imm: 0},
		{Op: policy.OpMovReg, Dst: policy.R2, Src: policy.RFP},
		{Op: policy.OpAddImm, Dst: policy.R2, Imm: -8},
		{Op: policy.OpCall, Imm: int64(policy.HelperMapLookup)},
		{Op: policy.OpJeqImm, Dst: policy.R0, Imm: 0, Off: 2},
		{Op: policy.OpLdxDW, Dst: policy.R0, Src: policy.R0},
		{Op: policy.OpExit},
		{Op: policy.OpMovImm, Dst: policy.R0, Imm: 0},
		{Op: policy.OpExit},
	}))
	// Ctx loads feeding arithmetic and a signed comparison ladder.
	f.Add(encodeDiffFuzz(1, []policy.Instruction{
		{Op: policy.OpLdxDW, Dst: policy.R2, Src: policy.R1, Off: 0},
		{Op: policy.OpLdxDW, Dst: policy.R3, Src: policy.R1, Off: 8},
		{Op: policy.OpMovReg, Dst: policy.R0, Src: policy.R2},
		{Op: policy.OpDivReg, Dst: policy.R0, Src: policy.R3},
		{Op: policy.OpJsgtReg, Dst: policy.R2, Src: policy.R3, Off: 1},
		{Op: policy.OpNeg, Dst: policy.R0},
		{Op: policy.OpExit},
	}))
	// Helper calls with env state.
	f.Add(encodeDiffFuzz(2, []policy.Instruction{
		{Op: policy.OpCall, Imm: int64(policy.HelperKtimeNS)},
		{Op: policy.OpMovReg, Dst: policy.R6, Src: policy.R0},
		{Op: policy.OpCall, Imm: int64(policy.HelperRand)},
		{Op: policy.OpXorReg, Dst: policy.R0, Src: policy.R6},
		{Op: policy.OpExit},
	}))

	f.Fuzz(func(t *testing.T, data []byte) {
		build := func() (*policy.Program, error) {
			p := decodeDiffFuzz(data)
			if p == nil {
				return nil, errors.New("short input")
			}
			if _, err := policy.Verify(p); err != nil {
				return nil, err
			}
			return p, nil
		}
		// Probe once: unverifiable inputs and programs the lowerer
		// declines are out of scope here (FuzzVerify owns the
		// verifier-never-crashes property; tier selection falls back to
		// the VM for unsupported shapes).
		probe, err := build()
		if err != nil {
			return
		}
		if _, err := jit.Compile(probe); err != nil {
			if errors.Is(err, jit.ErrUnsupported) {
				return
			}
			t.Fatalf("Compile failed on verified program with non-unsupported error: %v\n%s", err, probe)
		}

		mkEnv := func() *policy.TestEnv {
			return &policy.TestEnv{CPUID: 3, NUMA: 1, Task: 42, Prio: 120,
				LockStats: map[uint64]uint64{1: 500, 7: 42}}
		}
		h, err := jit.NewDiffHarness(build, mkEnv)
		if err != nil {
			t.Fatalf("harness: %v", err)
		}

		// Context words derived from the input so mutations explore the
		// data space too; a second step with a truncated context probes
		// ctx-bounds fault parity.
		words := make([]uint64, len(policy.NewCtx(probe.Kind).Words))
		hsh := uint64(14695981039346656037)
		for _, b := range data {
			hsh = (hsh ^ uint64(b)) * 1099511628211
		}
		for w := range words {
			hsh = (hsh ^ uint64(w)) * 1099511628211
			words[w] = hsh
		}
		if err := h.Step(words); err != nil {
			t.Fatalf("full ctx: %v\n%s", err, probe)
		}
		if len(words) > 1 {
			if err := h.Step(words[:1]); err != nil {
				t.Fatalf("short ctx: %v\n%s", err, probe)
			}
		}
		if _, err := h.Check(); err != nil {
			t.Fatalf("final state: %v\n%s", err, probe)
		}
	})
}

// decodeDiffFuzz mirrors the policy package's raw fuzz encoding: one
// leading kind byte, then 10 bytes per instruction (op:2 dst:1 src:1
// off:2 imm:4, little endian), ops and registers reduced modulo
// slightly-past-valid ranges. Kept byte-compatible so corpus entries
// transfer between FuzzVerify and FuzzVMvsJIT.
func decodeDiffFuzz(data []byte) *policy.Program {
	if len(data) < 1+10 {
		return nil
	}
	opCeil := uint16(policy.OpExit) + 2 // opMax+1 in the policy package
	kinds := []policy.Kind{policy.KindCmpNode, policy.KindSkipShuffle,
		policy.KindScheduleWaiter, policy.KindLockAcquired}
	p := &policy.Program{
		Name: "fuzz",
		Kind: kinds[int(data[0])%len(kinds)],
		Maps: []policy.Map{policy.NewArrayMap("a", 8, 4), policy.NewHashMap("h", 8, 16, 32)},
	}
	for data = data[1:]; len(data) >= 10 && len(p.Insns) <= policy.MaxInsns; data = data[10:] {
		p.Insns = append(p.Insns, policy.Instruction{
			Op:  policy.Op(binary.LittleEndian.Uint16(data[0:2]) % opCeil),
			Dst: policy.Reg(data[2] % (policy.NumRegs + 1)),
			Src: policy.Reg(data[3] % (policy.NumRegs + 1)),
			Off: int16(binary.LittleEndian.Uint16(data[4:6])),
			Imm: int64(int32(binary.LittleEndian.Uint32(data[6:10]))),
		})
	}
	return p
}

func encodeDiffFuzz(kind byte, insns []policy.Instruction) []byte {
	out := []byte{kind}
	for _, in := range insns {
		var b [10]byte
		binary.LittleEndian.PutUint16(b[0:2], uint16(in.Op))
		b[2], b[3] = byte(in.Dst), byte(in.Src)
		binary.LittleEndian.PutUint16(b[4:6], uint16(in.Off))
		binary.LittleEndian.PutUint32(b[6:10], uint32(int32(in.Imm)))
		out = append(out, b[:]...)
	}
	return out
}
