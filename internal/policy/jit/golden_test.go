package jit_test

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"concord/internal/policy"
	"concord/internal/policy/analysis"
	"concord/internal/policy/jit"
	"concord/internal/policydsl"
)

var update = flag.Bool("update", false, "rewrite golden equivalence records under testdata/golden/")

// goldenVector is one pinned execution: the context words fed in and
// the observable outcome. Both tiers must produce it; the file pins it
// across time.
type goldenVector struct {
	Ctx    []uint64 `json:"ctx"`
	R0     uint64   `json:"r0"`
	Err    string   `json:"err,omitempty"`
	Traces []uint64 `json:"traces,omitempty"`
}

// goldenProgram is the per-program record in a policy's golden file.
type goldenProgram struct {
	Program string         `json:"program"`
	Kind    string         `json:"kind"`
	Tier    string         `json:"tier"`
	Reason  string         `json:"reason"`
	Vectors []goldenVector `json:"vectors"`
}

// goldenEnv returns the deterministic env used for golden records; both
// tiers and the pinned VM arena get identical fresh copies.
func goldenEnv() *policy.TestEnv {
	e := &policy.TestEnv{CPUID: 2, NUMA: 1, Task: 77, Prio: -3,
		LockStats: map[uint64]uint64{1: 500, 2: 42, 9: 7}}
	e.Now.Store(123456789)
	return e
}

// goldenCtxVectors derives fixed context vectors for a kind: a dense
// pseudo-random fill, a sparse low-value fill, an all-zero vector, and
// a truncated vector that must fault identically on both tiers.
func goldenCtxVectors(k policy.Kind) [][]uint64 {
	n := len(policy.NewCtx(k).Words)
	dense := make([]uint64, n)
	sparse := make([]uint64, n)
	h := uint64(0x9e3779b97f4a7c15)
	for i := range dense {
		h ^= h << 13
		h ^= h >> 7
		h ^= h << 17
		dense[i] = h
		sparse[i] = uint64(i % 3)
	}
	vecs := [][]uint64{dense, sparse, make([]uint64, n)}
	if n > 1 {
		vecs = append(vecs, dense[:1])
	}
	return vecs
}

// TestGoldenEquivalence pins, for every shipped policy in policies/,
// (a) the tier the admission heuristic selects, and (b) the observable
// outcome of each program on both execution tiers over fixed context
// vectors. Divergence between VM and JIT fails immediately via the
// DiffHarness; drift of the pinned outcome or tier decision over time
// shows up as a golden diff — rerun with
// `go test ./internal/policy/jit -run Golden -update` after review.
func TestGoldenEquivalence(t *testing.T) {
	dir := filepath.Join("..", "..", "..", "policies")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("policies dir: %v", err)
	}
	goldenDir := filepath.Join("testdata", "golden")
	seen := map[string]bool{}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".pol") {
			continue
		}
		src, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		golden := filepath.Join(goldenDir, strings.TrimSuffix(e.Name(), ".pol")+".json")
		seen[filepath.Base(golden)] = true
		t.Run(e.Name(), func(t *testing.T) {
			unit, err := policydsl.CompileAndVerify(string(src))
			if err != nil {
				t.Fatalf("%s: %v", e.Name(), err)
			}
			var records []goldenProgram
			for _, prog := range unit.Programs {
				records = append(records, goldenRecord(t, string(src), prog))
			}
			sort.Slice(records, func(i, j int) bool { return records[i].Program < records[j].Program })
			got, err := json.MarshalIndent(records, "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, '\n')
			if *update {
				if err := os.MkdirAll(goldenDir, 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(golden, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden (run with -update): %v", err)
			}
			if string(got) != string(want) {
				t.Errorf("equivalence record drifted from %s:\n--- got ---\n%s\n--- want ---\n%s",
					golden, got, want)
			}
		})
	}

	// Stale goldens (a policy was removed or renamed) fail too.
	files, _ := os.ReadDir(goldenDir)
	for _, f := range files {
		if !seen[f.Name()] {
			t.Errorf("stale golden %s: no matching policy source", f.Name())
		}
	}
}

// goldenRecord runs one program through the differential harness over
// the kind's fixed vectors and captures the pinned outcome from a third
// VM arena (so recording cannot perturb the tiers under comparison).
func goldenRecord(t *testing.T, src string, prog *policy.Program) goldenProgram {
	t.Helper()
	build := func() (*policy.Program, error) {
		unit, err := policydsl.CompileAndVerify(src)
		if err != nil {
			return nil, err
		}
		p, ok := unit.Program(prog.Name)
		if !ok {
			return nil, fmt.Errorf("program %q missing on recompile", prog.Name)
		}
		return p, nil
	}
	h, err := jit.NewDiffHarness(build, goldenEnv)
	if err != nil {
		t.Fatalf("%s: harness: %v", prog.Name, err)
	}

	rep, err := analysis.Analyze(prog)
	if err != nil {
		t.Fatalf("%s: analyze: %v", prog.Name, err)
	}
	ch := jit.Choose(prog, rep)
	if ch.Tier != jit.TierJIT {
		t.Errorf("%s: shipped policy not admitted to the JIT tier: %s (%s)",
			prog.Name, ch.Tier, ch.Reason)
	}

	rec := goldenProgram{
		Program: prog.Name,
		Kind:    prog.Kind.String(),
		Tier:    ch.Tier.String(),
		Reason:  ch.Reason,
	}
	pinProg, err := build()
	if err != nil {
		t.Fatal(err)
	}
	pinEnv := goldenEnv()
	for _, words := range goldenCtxVectors(prog.Kind) {
		if err := h.Step(words); err != nil {
			t.Errorf("%s: %v", prog.Name, err)
		}
		ctx := policy.NewCtx(prog.Kind)
		ctx.Words = append([]uint64(nil), words...)
		before := len(pinEnv.Traces())
		r0, execErr := policy.Exec(pinProg, ctx, pinEnv)
		v := goldenVector{Ctx: words, R0: r0, Traces: pinEnv.Traces()[before:]}
		if execErr != nil {
			v.Err = execErr.Error()
		}
		rec.Vectors = append(rec.Vectors, v)
	}
	if _, err := h.Check(); err != nil {
		t.Errorf("%s: final state: %v", prog.Name, err)
	}
	return rec
}
