package jit_test

import (
	"errors"
	"testing"

	"concord/internal/faultinject"
	"concord/internal/policy"
	"concord/internal/policy/analysis"
	"concord/internal/policy/jit"
)

func verify(t *testing.T, p *policy.Program) *policy.Program {
	t.Helper()
	if _, err := policy.Verify(p); err != nil {
		t.Fatalf("verify: %v", err)
	}
	return p
}

// buildFn wraps a builder constructor into a DiffHarness build func
// that verifies each fresh copy.
func buildFn(mk func() *policy.Builder) func() (*policy.Program, error) {
	return func() (*policy.Program, error) {
		p, err := mk().Program()
		if err != nil {
			return nil, err
		}
		if _, err := policy.Verify(p); err != nil {
			return nil, err
		}
		return p, nil
	}
}

func mkEnv() *policy.TestEnv {
	e := &policy.TestEnv{
		CPUID: 2, NUMA: 1, Task: 77, Prio: -3,
		LockStats: map[uint64]uint64{1: 500, 2: 42},
	}
	e.Now.Store(123456789)
	return e
}

// ctxVectors exercises normal, boundary, short, and empty context word
// slices (short/empty trip the VM's runtime ctx bounds check — the JIT
// must fault identically).
func ctxVectors(n int) [][]uint64 {
	full := make([]uint64, n)
	for i := range full {
		full[i] = uint64(i*3 + 1)
	}
	vary := make([]uint64, n)
	for i := range vary {
		vary[i] = ^uint64(0) - uint64(i)
	}
	return [][]uint64{full, vary, full[:1], {}}
}

func TestDiffCorePrograms(t *testing.T) {
	cases := []struct {
		name string
		mk   func() *policy.Builder
	}{
		{"alu-mix", func() *policy.Builder {
			b := policy.NewBuilder("alu-mix", policy.KindLockAcquire)
			b.LoadCtx(policy.R2, policy.R1, "queue_len").
				MovImm(policy.R3, 7).
				ALUReg(policy.OpMulReg, policy.R2, policy.R3).
				ALUImm(policy.OpAddImm, policy.R2, -13).
				ALUImm(policy.OpXorImm, policy.R2, 0x5a5a).
				ALUImm(policy.OpLshImm, policy.R2, 3).
				ALUImm(policy.OpRshImm, policy.R2, 1).
				ALUImm(policy.OpArshImm, policy.R2, 2).
				Neg(policy.R2).
				ReturnReg(policy.R2)
			return b
		}},
		{"div-mod-zero", func() *policy.Builder {
			b := policy.NewBuilder("div-mod-zero", policy.KindLockAcquire)
			b.LoadCtx(policy.R2, policy.R1, "lock_id").
				MovImm(policy.R3, 100).
				ALUReg(policy.OpDivReg, policy.R3, policy.R2).
				MovImm(policy.R4, 100).
				ALUReg(policy.OpModReg, policy.R4, policy.R2).
				ALUReg(policy.OpAddReg, policy.R3, policy.R4).
				ReturnReg(policy.R3)
			return b
		}},
		{"jump-ladder", func() *policy.Builder {
			b := policy.NewBuilder("jump-ladder", policy.KindLockAcquire)
			b.LoadCtx(policy.R2, policy.R1, "prio").
				JmpImm(policy.OpJsgtImm, policy.R2, 5, "hi").
				JmpImm(policy.OpJsltImm, policy.R2, -5, "lo").
				ReturnImm(0).
				Label("hi").ReturnImm(1).
				Label("lo").ReturnImm(2)
			return b
		}},
		{"jset-reg", func() *policy.Builder {
			b := policy.NewBuilder("jset-reg", policy.KindLockAcquire)
			b.LoadCtx(policy.R2, policy.R1, "lock_id").
				MovImm(policy.R3, 0b1010).
				JmpReg(policy.OpJsetReg, policy.R2, policy.R3, "set").
				ReturnImm(0).
				Label("set").ReturnImm(1)
			return b
		}},
		{"stack-roundtrip", func() *policy.Builder {
			b := policy.NewBuilder("stack-roundtrip", policy.KindLockAcquire)
			b.LoadCtx(policy.R2, policy.R1, "now_ns").
				StoreStackReg(policy.OpStxDW, -8, policy.R2).
				StoreStackImm(policy.OpStW, -16, 0x11223344).
				StoreStackImm(policy.OpStH, -12, 0x5566).
				StoreStackImm(policy.OpStB, -10, 0x77).
				StoreStackImm(policy.OpStB, -9, 0x1f).
				LoadStack(policy.OpLdxDW, policy.R3, -16).
				LoadStack(policy.OpLdxB, policy.R4, -8).
				ALUReg(policy.OpXorReg, policy.R3, policy.R4).
				ReturnReg(policy.R3)
			return b
		}},
		{"env-helpers", func() *policy.Builder {
			b := policy.NewBuilder("env-helpers", policy.KindLockAcquire)
			b.Call(policy.HelperKtimeNS).
				MovReg(policy.R6, policy.R0).
				Call(policy.HelperCPU).
				ALUReg(policy.OpAddReg, policy.R6, policy.R0).
				Call(policy.HelperNUMANode).
				ALUReg(policy.OpAddReg, policy.R6, policy.R0).
				Call(policy.HelperTaskID).
				ALUReg(policy.OpAddReg, policy.R6, policy.R0).
				Call(policy.HelperTaskPrio).
				ALUReg(policy.OpAddReg, policy.R6, policy.R0).
				ReturnReg(policy.R6)
			return b
		}},
		{"rand-trace", func() *policy.Builder {
			b := policy.NewBuilder("rand-trace", policy.KindLockAcquire)
			b.Call(policy.HelperRand).
				MovReg(policy.R6, policy.R0).
				MovReg(policy.R1, policy.R6).
				Call(policy.HelperTrace).
				ReturnReg(policy.R6)
			return b
		}},
		{"lock-stats", func() *policy.Builder {
			b := policy.NewBuilder("lock-stats", policy.KindLockAcquire)
			b.MovImm(policy.R1, 1).
				Call(policy.HelperLockStats).
				MovReg(policy.R6, policy.R0).
				MovImm(policy.R1, 9). // unseeded field -> 0
				Call(policy.HelperLockStats).
				ALUReg(policy.OpAddReg, policy.R6, policy.R0).
				ReturnReg(policy.R6)
			return b
		}},
		{"occ-set", func() *policy.Builder {
			// Promote, promote again (no change), demote: the edge
			// semantics of the tier CAS must agree across tiers.
			b := policy.NewBuilder("occ-set", policy.KindLockAcquire)
			b.MovImm(policy.R1, 1).
				Call(policy.HelperOCCSet).
				MovReg(policy.R6, policy.R0).
				MovImm(policy.R1, 1).
				Call(policy.HelperOCCSet).
				ALUReg(policy.OpAddReg, policy.R6, policy.R0).
				MovImm(policy.R1, 0).
				Call(policy.HelperOCCSet).
				ALUReg(policy.OpAddReg, policy.R6, policy.R0).
				ReturnReg(policy.R6)
			return b
		}},
		{"hash-add-lookup", func() *policy.Builder {
			m := policy.NewHashMap("counts", 8, 8, 64)
			b := policy.NewBuilder("hash-add-lookup", policy.KindLockAcquire)
			b.MovReg(policy.R6, policy.R1).
				LoadCtx(policy.R2, policy.R6, "socket").
				StoreStackReg(policy.OpStxDW, -8, policy.R2).
				LoadMapPtr(policy.R1, m).
				MovReg(policy.R2, policy.RFP).
				ALUImm(policy.OpAddImm, policy.R2, -8).
				MovImm(policy.R3, 1).
				Call(policy.HelperMapAdd).
				LoadMapPtr(policy.R1, m).
				MovReg(policy.R2, policy.RFP).
				ALUImm(policy.OpAddImm, policy.R2, -8).
				Call(policy.HelperMapLookup).
				JmpImm(policy.OpJneImm, policy.R0, 0, "hit").
				ReturnImm(0).
				Label("hit").
				LoadStack(policy.OpLdxDW, policy.R3, -8). // force insn count past branch
				Raw(policy.Instruction{Op: policy.OpLdxDW, Dst: policy.R4, Src: policy.R0, Off: 0}).
				ReturnReg(policy.R4)
			return b
		}},
		{"map-value-store", func() *policy.Builder {
			m := policy.NewHashMap("vals", 8, 16, 32)
			b := policy.NewBuilder("map-value-store", policy.KindLockAcquire)
			b.MovReg(policy.R6, policy.R1).
				LoadCtx(policy.R2, policy.R6, "lock_id").
				StoreStackReg(policy.OpStxDW, -8, policy.R2).
				LoadMapPtr(policy.R1, m).
				MovReg(policy.R2, policy.RFP).
				ALUImm(policy.OpAddImm, policy.R2, -8).
				MovImm(policy.R3, 5).
				Call(policy.HelperMapAdd).
				LoadMapPtr(policy.R1, m).
				MovReg(policy.R2, policy.RFP).
				ALUImm(policy.OpAddImm, policy.R2, -8).
				Call(policy.HelperMapLookup).
				JmpImm(policy.OpJeqImm, policy.R0, 0, "miss").
				Raw(policy.Instruction{Op: policy.OpLdxDW, Dst: policy.R3, Src: policy.R0, Off: 0}).
				ALUImm(policy.OpMulImm, policy.R3, 3).
				Raw(policy.Instruction{Op: policy.OpStxDW, Dst: policy.R0, Src: policy.R3, Off: 8}).
				ReturnReg(policy.R3).
				Label("miss").ReturnImm(0)
			return b
		}},
		{"update-delete", func() *policy.Builder {
			m := policy.NewHashMap("kv", 8, 8, 32)
			b := policy.NewBuilder("update-delete", policy.KindLockAcquire)
			b.MovReg(policy.R6, policy.R1).
				LoadCtx(policy.R2, policy.R6, "task_id").
				StoreStackReg(policy.OpStxDW, -8, policy.R2).
				LoadCtx(policy.R3, policy.R6, "now_ns").
				StoreStackReg(policy.OpStxDW, -16, policy.R3).
				LoadMapPtr(policy.R1, m).
				MovReg(policy.R2, policy.RFP).
				ALUImm(policy.OpAddImm, policy.R2, -8).
				MovReg(policy.R3, policy.RFP).
				ALUImm(policy.OpAddImm, policy.R3, -16).
				Call(policy.HelperMapUpdate).
				MovReg(policy.R7, policy.R0).
				LoadCtx(policy.R2, policy.R6, "queue_len").
				JmpImm(policy.OpJgtImm, policy.R2, 4, "del").
				ReturnReg(policy.R7).
				Label("del").
				LoadMapPtr(policy.R1, m).
				MovReg(policy.R2, policy.RFP).
				ALUImm(policy.OpAddImm, policy.R2, -8).
				Call(policy.HelperMapDelete).
				ReturnReg(policy.R0)
			return b
		}},
		{"percpu-array", func() *policy.Builder {
			m := policy.NewPerCPUArrayMap("slots", 8, 4, 4)
			b := policy.NewBuilder("percpu-array", policy.KindLockAcquire)
			b.MovReg(policy.R6, policy.R1).
				StoreStackImm(policy.OpStW, -4, 1).
				LoadMapPtr(policy.R1, m).
				MovReg(policy.R2, policy.RFP).
				ALUImm(policy.OpAddImm, policy.R2, -4).
				MovImm(policy.R3, 3).
				Call(policy.HelperMapAdd).
				ReturnReg(policy.R0)
			return b
		}},
		{"ctx-short", func() *policy.Builder {
			// Reads a high ctx slot: faults "ctx load out of bounds"
			// when the harness passes a short word vector.
			b := policy.NewBuilder("ctx-short", policy.KindLockAcquire)
			b.LoadCtx(policy.R2, policy.R1, "prio").
				ReturnReg(policy.R2)
			return b
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h, err := jit.NewDiffHarness(buildFn(tc.mk), mkEnv)
			if err != nil {
				t.Fatalf("harness: %v", err)
			}
			n := len(policy.LayoutFor(policy.KindLockAcquire).Fields)
			if err := h.Run(ctxVectors(n)); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestFaultInjectionParity(t *testing.T) {
	mk := func() *policy.Builder {
		m := policy.NewHashMap("c", 8, 8, 16)
		b := policy.NewBuilder("fi", policy.KindLockAcquire)
		b.MovReg(policy.R6, policy.R1).
			LoadCtx(policy.R2, policy.R6, "lock_id").
			StoreStackReg(policy.OpStxDW, -8, policy.R2).
			LoadMapPtr(policy.R1, m).
			MovReg(policy.R2, policy.RFP).
			ALUImm(policy.OpAddImm, policy.R2, -8).
			MovImm(policy.R3, 1).
			Call(policy.HelperMapAdd).
			ReturnReg(policy.R0)
		return b
	}
	sites := []*faultinject.Site{faultinject.PolicyTrap, faultinject.PolicyHelper, faultinject.PolicyMapOp}
	for _, site := range sites {
		t.Run(site.Name(), func(t *testing.T) {
			h, err := jit.NewDiffHarness(buildFn(mk), mkEnv)
			if err != nil {
				t.Fatalf("harness: %v", err)
			}
			site.Arm(faultinject.Config{Probability: 1})
			defer site.Disarm()
			n := len(policy.LayoutFor(policy.KindLockAcquire).Fields)
			if err := h.Step(make([]uint64, n)); err != nil {
				t.Fatal(err)
			}
			site.Disarm()
			if err := h.Step(make([]uint64, n)); err != nil {
				t.Fatal(err)
			}
			if _, err := h.Check(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestKindMismatchParity(t *testing.T) {
	p := verify(t, policy.NewBuilder("km", policy.KindLockAcquire).ReturnImm(1).MustProgram())
	fn, err := jit.Compile(p)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	wrong := policy.NewCtx(policy.KindCmpNode)
	_, vmErr := policy.Exec(p, wrong, nil)
	_, jitErr := fn(wrong, nil)
	if vmErr == nil || jitErr == nil || vmErr.Error() != jitErr.Error() {
		t.Fatalf("vm err %v, jit err %v", vmErr, jitErr)
	}
	_, jitNil := fn(nil, nil)
	if jitNil == nil || jitNil.Error() != vmErr.Error() {
		t.Fatalf("nil ctx: jit err %v, want %v", jitNil, vmErr)
	}
}

func TestCompileRequiresVerification(t *testing.T) {
	p := policy.NewBuilder("unverified", policy.KindLockAcquire).ReturnImm(0).MustProgram()
	if _, err := jit.Compile(p); !errors.Is(err, policy.ErrNotVerified) {
		t.Fatalf("err = %v, want ErrNotVerified", err)
	}
}

func TestJITRunsCounter(t *testing.T) {
	p := verify(t, policy.NewBuilder("ctr", policy.KindLockAcquire).ReturnImm(7).MustProgram())
	fn, err := jit.Compile(p)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	ctx := policy.NewCtx(policy.KindLockAcquire)
	if _, err := policy.Exec(p, ctx, nil); err != nil {
		t.Fatal(err)
	}
	if got := p.Stats().JITRuns.Load(); got != 0 {
		t.Fatalf("JITRuns after VM run = %d, want 0", got)
	}
	if ret, err := fn(ctx, nil); err != nil || ret != 7 {
		t.Fatalf("jit run = (%d, %v)", ret, err)
	}
	if got := p.Stats().JITRuns.Load(); got != 1 {
		t.Fatalf("JITRuns after jit run = %d, want 1", got)
	}
	if got := p.Stats().Runs.Load(); got != 2 {
		t.Fatalf("Runs = %d, want 2", got)
	}
}

func TestChoose(t *testing.T) {
	p := verify(t, policy.NewBuilder("choose", policy.KindLockAcquire).ReturnImm(1).MustProgram())
	if c := jit.Choose(p, nil); c.Tier != jit.TierVM || c.Fn != nil {
		t.Fatalf("nil report: got tier %s", c.Tier)
	}
	if c := jit.Choose(p, &analysis.Report{CostBound: jit.MaxJITCostNS + 1}); c.Tier != jit.TierVM {
		t.Fatalf("huge cost: got tier %s", c.Tier)
	}
	rep, err := analysis.Analyze(p)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	c := jit.Choose(p, rep)
	if c.Tier != jit.TierJIT || c.Fn == nil {
		t.Fatalf("got tier %s (%s), want jit", c.Tier, c.Reason)
	}
	ctx := policy.NewCtx(policy.KindLockAcquire)
	if ret, err := c.Fn(ctx, nil); err != nil || ret != 1 {
		t.Fatalf("chosen fn = (%d, %v)", ret, err)
	}
}

func TestJITZeroAlloc(t *testing.T) {
	// The profiled-shuffler shape: ctx load, stack spill, map_add into
	// a hash map, socket compare. This is the hook hot path the tier
	// exists for; it must not allocate.
	m := policy.NewHashMap("exams", 8, 8, 128)
	b := policy.NewBuilder("hot", policy.KindCmpNode)
	b.MovReg(policy.R6, policy.R1).
		LoadCtx(policy.R2, policy.R6, "curr_socket").
		StoreStackReg(policy.OpStxDW, -8, policy.R2).
		LoadMapPtr(policy.R1, m).
		MovReg(policy.R2, policy.RFP).
		ALUImm(policy.OpAddImm, policy.R2, -8).
		MovImm(policy.R3, 1).
		Call(policy.HelperMapAdd).
		LoadCtx(policy.R2, policy.R6, "curr_socket").
		LoadCtx(policy.R3, policy.R6, "shuffler_socket").
		JmpReg(policy.OpJeqReg, policy.R2, policy.R3, "grp").
		ReturnImm(0).
		Label("grp").ReturnImm(1)
	p := verify(t, b.MustProgram())
	fn, err := jit.Compile(p)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	ctx := policy.NewCtx(policy.KindCmpNode)
	ctx.Set("curr_socket", 1).Set("shuffler_socket", 1)
	env := mkEnv()
	if ret, err := fn(ctx, env); err != nil || ret != 1 {
		t.Fatalf("warmup = (%d, %v)", ret, err)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		if _, err := fn(ctx, env); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("allocs/op = %g, want 0", allocs)
	}
}

func TestInsnAccountingParity(t *testing.T) {
	// Both arms of a branch, plus the fault path, must fold the same
	// instruction counts the interpreter does.
	mk := func() *policy.Builder {
		b := policy.NewBuilder("acct", policy.KindLockAcquire)
		b.LoadCtx(policy.R2, policy.R1, "queue_len").
			JmpImm(policy.OpJgtImm, policy.R2, 10, "deep").
			MovImm(policy.R3, 1).
			ALUReg(policy.OpAddReg, policy.R3, policy.R2).
			ReturnReg(policy.R3).
			Label("deep").ReturnImm(99)
		return b
	}
	h, err := jit.NewDiffHarness(buildFn(mk), mkEnv)
	if err != nil {
		t.Fatalf("harness: %v", err)
	}
	n := len(policy.LayoutFor(policy.KindLockAcquire).Fields)
	vecs := [][]uint64{make([]uint64, n), func() []uint64 {
		v := make([]uint64, n)
		for i := range v {
			v[i] = 100
		}
		return v
	}(), {}}
	if err := h.Run(vecs); err != nil {
		t.Fatal(err)
	}
}
