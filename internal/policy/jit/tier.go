package jit

import (
	"fmt"

	"concord/internal/policy"
	"concord/internal/policy/analysis"
)

// Tier identifies a policy program's execution tier.
type Tier uint8

const (
	// TierVM runs the program on the reference bytecode interpreter.
	TierVM Tier = iota
	// TierJIT runs the program as fused Go closures from Compile.
	TierJIT
)

func (t Tier) String() string {
	if t == TierJIT {
		return "jit"
	}
	return "vm"
}

// MaxJITCostNS is the admission ceiling for the JIT tier. Programs with
// a worst-case cost bound above this stay on the interpreter: they are
// not hook-hot-path material, and the VM's per-instruction accounting
// gives better forensics when something that expensive misbehaves.
const MaxJITCostNS = 1_000_000 // 1ms

// Choice records the tier decision made for one program at admission,
// along with the compiled closure when the JIT tier was selected.
type Choice struct {
	Tier   Tier
	Reason string
	// Fn is the compiled closure; nil when Tier is TierVM.
	Fn policy.CompiledFn
}

// Choose picks the execution tier for a verified program using the
// analyzer's report (cost bound, footprint, hot-path facts). The report
// may be nil — e.g. analysis disabled at admission — in which case the
// program conservatively stays on the VM.
func Choose(p *policy.Program, rep *analysis.Report) Choice {
	if rep == nil {
		return Choice{Tier: TierVM, Reason: "no analysis report (analysis disabled at admission)"}
	}
	if rep.CostBound > MaxJITCostNS {
		return Choice{Tier: TierVM, Reason: fmt.Sprintf(
			"cost bound %dns exceeds jit ceiling %dns", rep.CostBound, int64(MaxJITCostNS))}
	}
	fn, err := Compile(p)
	if err != nil {
		return Choice{Tier: TierVM, Reason: fmt.Sprintf("lowering unsupported: %v", err)}
	}
	reason := fmt.Sprintf("%d insns, cost bound %dns, %d maps pinned", len(p.Insns), rep.CostBound, len(rep.Footprint))
	if !rep.Facts.HotPathClean {
		reason += ", hot path not clean"
	}
	return Choice{Tier: TierJIT, Reason: reason, Fn: fn}
}
