package jit

import (
	"fmt"
	"sort"

	"concord/internal/policy"
)

// DiffHarness runs one program on both execution tiers — the reference
// VM and the JIT closure tier — against isolated but identically-seeded
// state, and reports the first observable divergence: register result,
// error presence and text, ExecStats deltas, trace sequences, or final
// map contents. It is the equivalence obligation for admitting the JIT
// tier, used by the unit tests, the golden tests, and FuzzVMvsJIT.
type DiffHarness struct {
	vmProg  *policy.Program
	jitProg *policy.Program
	fn      policy.CompiledFn
	vmEnv   *policy.TestEnv
	jitEnv  *policy.TestEnv
	steps   int
}

// NewDiffHarness builds a harness from a program constructor and an env
// constructor. build is called twice so each tier gets its own map
// arena and ExecStats (shared maps would hide single-tier mutation
// bugs); mkEnv is called twice so stateful env pieces (Rand, Trace)
// advance independently but identically.
func NewDiffHarness(build func() (*policy.Program, error), mkEnv func() *policy.TestEnv) (*DiffHarness, error) {
	vmProg, err := build()
	if err != nil {
		return nil, fmt.Errorf("diff: build vm program: %w", err)
	}
	jitProg, err := build()
	if err != nil {
		return nil, fmt.Errorf("diff: build jit program: %w", err)
	}
	if !vmProg.Verified() || !jitProg.Verified() {
		return nil, policy.ErrNotVerified
	}
	fn, err := Compile(jitProg)
	if err != nil {
		return nil, err
	}
	if mkEnv == nil {
		mkEnv = func() *policy.TestEnv { return &policy.TestEnv{} }
	}
	return &DiffHarness{
		vmProg:  vmProg,
		jitProg: jitProg,
		fn:      fn,
		vmEnv:   mkEnv(),
		jitEnv:  mkEnv(),
	}, nil
}

// Divergence describes how the two tiers disagreed.
type Divergence struct {
	Step int
	What string
}

func (d *Divergence) Error() string {
	return fmt.Sprintf("tier divergence at step %d: %s", d.Step, d.What)
}

func (h *DiffHarness) diverged(format string, args ...any) *Divergence {
	return &Divergence{Step: h.steps, What: fmt.Sprintf(format, args...)}
}

type statSnap struct {
	runs, insns, helpers, mapOps, faults int64
}

func snap(p *policy.Program) statSnap {
	st := p.Stats()
	return statSnap{
		runs:    st.Runs.Load(),
		insns:   st.Insns.Load(),
		helpers: st.HelperCalls.Load(),
		mapOps:  st.MapOps.Load(),
		faults:  st.Faults.Load(),
	}
}

func (s statSnap) sub(o statSnap) statSnap {
	return statSnap{s.runs - o.runs, s.insns - o.insns, s.helpers - o.helpers, s.mapOps - o.mapOps, s.faults - o.faults}
}

// Step executes both tiers on a context built from ctxWords (copied per
// tier; any length is allowed — short or long slices exercise the ctx
// bounds checks) and compares every observable. A non-nil error is a
// *Divergence.
func (h *DiffHarness) Step(ctxWords []uint64) error {
	h.steps++
	mkCtx := func(kind policy.Kind) *policy.Ctx {
		c := policy.NewCtx(kind)
		c.Words = append([]uint64(nil), ctxWords...)
		return c
	}
	vmBefore, jitBefore := snap(h.vmProg), snap(h.jitProg)
	vmRet, vmErr := policy.Exec(h.vmProg, mkCtx(h.vmProg.Kind), h.vmEnv)
	jitRet, jitErr := h.fn(mkCtx(h.jitProg.Kind), h.jitEnv)

	if (vmErr == nil) != (jitErr == nil) {
		return h.diverged("vm err=%v, jit err=%v", vmErr, jitErr)
	}
	if vmErr != nil {
		// Errors embed program name and pc; full-text equality pins
		// fault site and message.
		if vmErr.Error() != jitErr.Error() {
			return h.diverged("vm err %q, jit err %q", vmErr, jitErr)
		}
	} else if vmRet != jitRet {
		return h.diverged("vm R0=%#x, jit R0=%#x", vmRet, jitRet)
	}
	vmd := snap(h.vmProg).sub(vmBefore)
	jitd := snap(h.jitProg).sub(jitBefore)
	if vmd != jitd {
		return h.diverged("stats delta vm=%+v, jit=%+v", vmd, jitd)
	}
	vt, jt := h.vmEnv.Traces(), h.jitEnv.Traces()
	if len(vt) != len(jt) {
		return h.diverged("trace count vm=%d, jit=%d", len(vt), len(jt))
	}
	for i := range vt {
		if vt[i] != jt[i] {
			return h.diverged("trace[%d] vm=%#x, jit=%#x", i, vt[i], jt[i])
		}
	}
	return nil
}

// Check compares the final contents of every map pair. Returns the
// number of maps whose contents could not be dumped (unknown Map
// implementations are skipped, not failed).
func (h *DiffHarness) Check() (unchecked int, err error) {
	for i := range h.vmProg.Maps {
		vm, jm := h.vmProg.Maps[i], h.jitProg.Maps[i]
		vd, vok := dumpMap(vm)
		jd, jok := dumpMap(jm)
		if !vok || !jok {
			unchecked++
			continue
		}
		if len(vd) != len(jd) {
			return unchecked, h.diverged("map %q entry count vm=%d, jit=%d", vm.Name(), len(vd), len(jd))
		}
		for k, vv := range vd {
			jv, ok := jd[k]
			if !ok {
				return unchecked, h.diverged("map %q key %x present only on vm", vm.Name(), k)
			}
			if vv != jv {
				return unchecked, h.diverged("map %q key %x vm=%v, jit=%v", vm.Name(), k, vv, jv)
			}
		}
	}
	return unchecked, nil
}

// Run is Step over a list of context vectors followed by Check.
func (h *DiffHarness) Run(vectors [][]uint64) error {
	for _, v := range vectors {
		if err := h.Step(v); err != nil {
			return err
		}
	}
	_, err := h.Check()
	return err
}

// dumpMap flattens a map's contents to key-string -> value-string for
// comparison. Keys are prefixed with the cpu for per-CPU kinds so the
// dump is one flat namespace.
func dumpMap(m policy.Map) (map[string]string, bool) {
	out := make(map[string]string)
	add := func(prefix string, key []byte, val []uint64) {
		// Skip all-zero values: array kinds are dense and a zeroed
		// slot is indistinguishable from never-written; hash kinds
		// never surface unwritten slots, but a program can store an
		// explicit zero — treat it as equal to absent on both sides.
		zero := true
		for _, v := range val {
			if v != 0 {
				zero = false
				break
			}
		}
		if zero {
			return
		}
		out[fmt.Sprintf("%s%x", prefix, key)] = fmt.Sprint(val)
	}
	switch mm := m.(type) {
	case *policy.ArrayMap:
		var key [4]byte
		for i := 0; i < mm.MaxEntries(); i++ {
			key[0], key[1], key[2], key[3] = byte(i), byte(i>>8), byte(i>>16), byte(i>>24)
			if v := mm.At(i); v != nil {
				add("", key[:], append([]uint64(nil), v...))
			}
		}
		return out, true
	case *policy.PerCPUArrayMap:
		var key [4]byte
		for cpu := 0; cpu < mm.NumCPUs(); cpu++ {
			for i := 0; i < mm.MaxEntries(); i++ {
				key[0], key[1], key[2], key[3] = byte(i), byte(i>>8), byte(i>>16), byte(i>>24)
				if v := mm.Lookup(key[:], cpu); v != nil {
					add(fmt.Sprintf("cpu%d/", cpu), key[:], append([]uint64(nil), v...))
				}
			}
		}
		return out, true
	case *policy.HashMap:
		mm.Range(func(key []byte, value []uint64) bool {
			add("", key, append([]uint64(nil), value...))
			return true
		})
		return out, true
	case *policy.LockedHashMap:
		mm.Range(func(key []byte, value []uint64) bool {
			add("", key, append([]uint64(nil), value...))
			return true
		})
		return out, true
	case *policy.PerCPUHashMap:
		for cpu := 0; cpu < mm.NumCPUs(); cpu++ {
			prefix := fmt.Sprintf("cpu%d/", cpu)
			mm.Range(cpu, func(key []byte, value []uint64) bool {
				add(prefix, key, append([]uint64(nil), value...))
				return true
			})
		}
		return out, true
	}
	return nil, false
}

// sortedKeys is a debugging aid for divergence reports.
func sortedKeys(m map[string]string) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
