package policy

import (
	"errors"
	"fmt"
	"sync/atomic"
)

// Program is a cBPF program: instructions plus the maps they reference.
// A Program must pass Verify before it can be executed; the Concord
// framework refuses to attach unverified programs, mirroring the kernel's
// refusal to load eBPF that fails verification.
type Program struct {
	Name  string
	Kind  Kind
	Insns []Instruction
	Maps  []Map

	verified bool
	stats    ExecStats
}

// ExecStats counts a program's runtime activity across every execution
// environment (interpreter and native-compiled). All fields are atomics;
// the VM accumulates instruction counts locally per run and folds them
// in with one add, so the hot path stays cheap. The telemetry layer
// exports these per program on /metrics.
type ExecStats struct {
	Runs        atomic.Int64 // completed or faulted executions
	Insns       atomic.Int64 // instructions executed
	HelperCalls atomic.Int64 // helper invocations
	MapOps      atomic.Int64 // map lookup/update/delete/add helper calls
	Faults      atomic.Int64 // runtime faults (RuntimeError)
	JITRuns     atomic.Int64 // subset of Runs executed on the JIT closure tier
}

// Stats returns the program's runtime execution counters.
func (p *Program) Stats() *ExecStats { return &p.stats }

// Verified reports whether the program has passed verification.
func (p *Program) Verified() bool { return p.verified }

// MapByName finds a referenced map by name.
func (p *Program) MapByName(name string) (Map, bool) {
	for _, m := range p.Maps {
		if m.Name() == name {
			return m, true
		}
	}
	return nil, false
}

// String renders the program as assembler text.
func (p *Program) String() string {
	out := fmt.Sprintf("; program %q kind=%s maps=%d\n", p.Name, p.Kind, len(p.Maps))
	for i, in := range p.Insns {
		out += fmt.Sprintf("%4d: %s\n", i, in)
	}
	return out
}

// Builder assembles a Program from Go code with symbolic labels, the
// programmatic equivalent of the assembler. It is the backend of the DSL
// compiler and the workhorse of the test suite.
//
// Errors are collected rather than returned from each emit call;
// Program() reports the first one.
type Builder struct {
	name   string
	kind   Kind
	insns  []Instruction
	labels map[string]int
	fixups map[int]string // instruction index -> unresolved label
	maps   []Map
	mapIdx map[string]int
	errs   []error
}

// NewBuilder starts a program of the given kind.
func NewBuilder(name string, kind Kind) *Builder {
	return &Builder{
		name:   name,
		kind:   kind,
		labels: make(map[string]int),
		fixups: make(map[int]string),
		mapIdx: make(map[string]int),
	}
}

func (b *Builder) errorf(format string, args ...any) *Builder {
	b.errs = append(b.errs, fmt.Errorf("builder %q: "+format, append([]any{b.name}, args...)...))
	return b
}

func (b *Builder) emit(in Instruction) *Builder {
	b.insns = append(b.insns, in)
	return b
}

// Len reports the number of instructions emitted so far.
func (b *Builder) Len() int { return len(b.insns) }

// Label binds a name to the position of the next instruction.
func (b *Builder) Label(name string) *Builder {
	if _, dup := b.labels[name]; dup {
		return b.errorf("duplicate label %q", name)
	}
	b.labels[name] = len(b.insns)
	return b
}

// RegisterMap makes a map available to the program and returns its index.
func (b *Builder) RegisterMap(m Map) int {
	if i, ok := b.mapIdx[m.Name()]; ok {
		return i
	}
	if len(b.maps) >= MaxMaps {
		b.errorf("too many maps (max %d)", MaxMaps)
		return 0
	}
	b.maps = append(b.maps, m)
	b.mapIdx[m.Name()] = len(b.maps) - 1
	return len(b.maps) - 1
}

// --- ALU ---

// MovImm emits dst = imm.
func (b *Builder) MovImm(dst Reg, imm int64) *Builder {
	return b.emit(Instruction{Op: OpMovImm, Dst: dst, Imm: imm})
}

// MovReg emits dst = src.
func (b *Builder) MovReg(dst, src Reg) *Builder {
	return b.emit(Instruction{Op: OpMovReg, Dst: dst, Src: src})
}

// ALUImm emits dst = dst <op> imm for an *Imm ALU opcode.
func (b *Builder) ALUImm(op Op, dst Reg, imm int64) *Builder {
	return b.emit(Instruction{Op: op, Dst: dst, Imm: imm})
}

// ALUReg emits dst = dst <op> src for a *Reg ALU opcode.
func (b *Builder) ALUReg(op Op, dst, src Reg) *Builder {
	return b.emit(Instruction{Op: op, Dst: dst, Src: src})
}

// AddImm emits dst += imm.
func (b *Builder) AddImm(dst Reg, imm int64) *Builder { return b.ALUImm(OpAddImm, dst, imm) }

// AddReg emits dst += src.
func (b *Builder) AddReg(dst, src Reg) *Builder { return b.ALUReg(OpAddReg, dst, src) }

// SubImm emits dst -= imm.
func (b *Builder) SubImm(dst Reg, imm int64) *Builder { return b.ALUImm(OpSubImm, dst, imm) }

// SubReg emits dst -= src.
func (b *Builder) SubReg(dst, src Reg) *Builder { return b.ALUReg(OpSubReg, dst, src) }

// MulImm emits dst *= imm.
func (b *Builder) MulImm(dst Reg, imm int64) *Builder { return b.ALUImm(OpMulImm, dst, imm) }

// Neg emits dst = -dst.
func (b *Builder) Neg(dst Reg) *Builder { return b.emit(Instruction{Op: OpNeg, Dst: dst}) }

// --- Jumps ---

// Ja emits an unconditional jump to label.
func (b *Builder) Ja(label string) *Builder { return b.jump(OpJa, 0, 0, 0, label) }

// JmpImm emits a conditional jump comparing dst against an immediate.
func (b *Builder) JmpImm(op Op, dst Reg, imm int64, label string) *Builder {
	return b.jump(op, dst, 0, imm, label)
}

// JmpReg emits a conditional jump comparing dst against src.
func (b *Builder) JmpReg(op Op, dst, src Reg, label string) *Builder {
	return b.jump(op, dst, src, 0, label)
}

func (b *Builder) jump(op Op, dst, src Reg, imm int64, label string) *Builder {
	b.fixups[len(b.insns)] = label
	return b.emit(Instruction{Op: op, Dst: dst, Src: src, Imm: imm})
}

// --- Memory ---

// LoadStack emits dst = *(size*)(rfp + off).
func (b *Builder) LoadStack(op Op, dst Reg, off int16) *Builder {
	return b.emit(Instruction{Op: op, Dst: dst, Src: RFP, Off: off})
}

// StoreStackReg emits *(size*)(rfp + off) = src.
func (b *Builder) StoreStackReg(op Op, off int16, src Reg) *Builder {
	return b.emit(Instruction{Op: op, Dst: RFP, Src: src, Off: off})
}

// StoreStackImm emits *(size*)(rfp + off) = imm.
func (b *Builder) StoreStackImm(op Op, off int16, imm int64) *Builder {
	return b.emit(Instruction{Op: op, Dst: RFP, Off: off, Imm: imm})
}

// LoadCtx emits dst = ctx.field, reading the context pointer from ctxReg.
// By convention programs save R1 (the context) into a callee-saved
// register in their prologue and pass that here.
func (b *Builder) LoadCtx(dst, ctxReg Reg, field string) *Builder {
	f, ok := LayoutFor(b.kind).FieldByName(field)
	if !ok {
		return b.errorf("kind %s has no ctx field %q", b.kind, field)
	}
	return b.emit(Instruction{Op: OpLdxDW, Dst: dst, Src: ctxReg, Off: int16(f.Off)})
}

// LoadMapPtr emits dst = &map, registering the map if needed.
func (b *Builder) LoadMapPtr(dst Reg, m Map) *Builder {
	idx := b.RegisterMap(m)
	return b.emit(Instruction{Op: OpLoadMapPtr, Dst: dst, Imm: int64(idx)})
}

// --- Calls and exit ---

// Call emits a helper call.
func (b *Builder) Call(h HelperID) *Builder {
	return b.emit(Instruction{Op: OpCall, Imm: int64(h)})
}

// Exit emits a program exit.
func (b *Builder) Exit() *Builder { return b.emit(Instruction{Op: OpExit}) }

// ReturnImm emits r0 = v; exit.
func (b *Builder) ReturnImm(v int64) *Builder { return b.MovImm(R0, v).Exit() }

// ReturnReg emits r0 = src; exit.
func (b *Builder) ReturnReg(src Reg) *Builder { return b.MovReg(R0, src).Exit() }

// Raw appends a raw instruction (escape hatch for verifier tests).
func (b *Builder) Raw(in Instruction) *Builder { return b.emit(in) }

// Program resolves labels and returns the assembled program. The result
// is NOT yet verified; call Verify (or Load, which does both).
func (b *Builder) Program() (*Program, error) {
	if len(b.errs) > 0 {
		return nil, errors.Join(b.errs...)
	}
	insns := make([]Instruction, len(b.insns))
	copy(insns, b.insns)
	for idx, label := range b.fixups {
		target, ok := b.labels[label]
		if !ok {
			return nil, fmt.Errorf("builder %q: undefined label %q", b.name, label)
		}
		disp := target - (idx + 1)
		if disp < -32768 || disp > 32767 {
			return nil, fmt.Errorf("builder %q: jump to %q out of range", b.name, label)
		}
		insns[idx].Off = int16(disp)
	}
	maps := make([]Map, len(b.maps))
	copy(maps, b.maps)
	return &Program{Name: b.name, Kind: b.kind, Insns: insns, Maps: maps}, nil
}

// MustProgram is Program but panics on error; for tests and examples.
func (b *Builder) MustProgram() *Program {
	p, err := b.Program()
	if err != nil {
		panic(err)
	}
	return p
}
