package policy

import "fmt"

// Kind identifies which lock hook a program is written for. It determines
// the context layout the program may read and the helpers it may call,
// exactly as eBPF program types do. The seven kinds are the seven Concord
// APIs of Table 1 in the paper.
type Kind int

const (
	// KindCmpNode decides whether the shuffler should move the examined
	// waiter forward (Table 1: cmp_node). Return 1 to move, 0 to leave.
	KindCmpNode Kind = iota
	// KindSkipShuffle decides whether this shuffler should skip its
	// shuffling round and hand the role over (Table 1: skip_shuffle).
	// Return 1 to skip.
	KindSkipShuffle
	// KindScheduleWaiter controls waking/parking/priority for a waiter
	// (Table 1: schedule_waiter). Return one of the Waiter* decisions.
	KindScheduleWaiter
	// KindLockAcquire runs when a task starts trying to acquire a lock.
	KindLockAcquire
	// KindLockContended runs when a trylock failed and the task must wait.
	KindLockContended
	// KindLockAcquired runs when the lock is actually acquired.
	KindLockAcquired
	// KindLockRelease runs when the lock is released.
	KindLockRelease

	numKinds
)

var kindNames = [...]string{
	KindCmpNode:        "cmp_node",
	KindSkipShuffle:    "skip_shuffle",
	KindScheduleWaiter: "schedule_waiter",
	KindLockAcquire:    "lock_acquire",
	KindLockContended:  "lock_contended",
	KindLockAcquired:   "lock_acquired",
	KindLockRelease:    "lock_release",
}

// String implements fmt.Stringer.
func (k Kind) String() string {
	if k >= 0 && int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Valid reports whether k is a known program kind.
func (k Kind) Valid() bool { return k >= 0 && k < numKinds }

// KindByName resolves a program kind from its Table 1 name.
func KindByName(name string) (Kind, bool) {
	for k, n := range kindNames {
		if n == name {
			return Kind(k), true
		}
	}
	return 0, false
}

// IsProfiling reports whether k is one of the four profiling hooks, which
// may not alter locking behaviour (their return value is ignored).
func (k Kind) IsProfiling() bool { return k >= KindLockAcquire && k <= KindLockRelease }

// Decisions returned by KindScheduleWaiter programs.
const (
	// WaiterDefault keeps the lock's built-in spin-then-park behaviour.
	WaiterDefault = 0
	// WaiterKeepSpinning suppresses parking (busy-wait).
	WaiterKeepSpinning = 1
	// WaiterParkNow parks the waiter immediately without further spinning.
	WaiterParkNow = 2
)

// Field describes one 8-byte slot of a hook context. All context fields
// are 64-bit and read-only: programs communicate decisions through their
// return value and persistent state through maps, never by mutating the
// context. This is the property that lets the framework argue mutual
// exclusion is preserved regardless of the loaded policy (§4.2).
type Field struct {
	Name string
	Off  int // byte offset; always a multiple of 8
}

// CtxLayout is the typed view of a hook context that the verifier checks
// loads against.
type CtxLayout struct {
	Kind   Kind
	Fields []Field
	byName map[string]int // name -> slot index
}

func newLayout(k Kind, names ...string) *CtxLayout {
	l := &CtxLayout{Kind: k, byName: make(map[string]int, len(names))}
	for i, n := range names {
		if _, dup := l.byName[n]; dup {
			panic("policy: duplicate ctx field " + n)
		}
		l.Fields = append(l.Fields, Field{Name: n, Off: i * 8})
		l.byName[n] = i
	}
	return l
}

// Size returns the context size in bytes.
func (l *CtxLayout) Size() int { return len(l.Fields) * 8 }

// FieldByName resolves a field, reporting whether it exists.
func (l *CtxLayout) FieldByName(name string) (Field, bool) {
	i, ok := l.byName[name]
	if !ok {
		return Field{}, false
	}
	return l.Fields[i], true
}

// FieldAt resolves the field at a byte offset, reporting whether the
// offset names a field exactly.
func (l *CtxLayout) FieldAt(off int) (Field, bool) {
	if off < 0 || off%8 != 0 || off/8 >= len(l.Fields) {
		return Field{}, false
	}
	return l.Fields[off/8], true
}

// Slot returns the uint64 slot index for a named field and panics if the
// field does not exist; it is the write-side companion used by the
// framework when populating contexts.
func (l *CtxLayout) Slot(name string) int {
	i, ok := l.byName[name]
	if !ok {
		panic(fmt.Sprintf("policy: %s ctx has no field %q", l.Kind, name))
	}
	return i
}

// Context layouts per program kind.
//
// "shuffler_*" describes the node currently acting as the queue shuffler,
// "curr_*" the node under examination (cmp_node) or the calling waiter
// (schedule_waiter). Speed is an AMP speed class scaled by 100 so it fits
// an integer register.
var (
	cmpNodeLayout = newLayout(KindCmpNode,
		"lock_id", "queue_len", "shuffle_round", "now_ns", "batch",
		"shuffler_task_id", "shuffler_cpu", "shuffler_socket",
		"shuffler_prio", "shuffler_weight", "shuffler_cs_avg",
		"shuffler_wait_ns", "shuffler_held_mask", "shuffler_speed_pct",
		"shuffler_quota", "shuffler_preempted",
		"curr_task_id", "curr_cpu", "curr_socket",
		"curr_prio", "curr_weight", "curr_cs_avg",
		"curr_wait_ns", "curr_held_mask", "curr_speed_pct",
		"curr_quota", "curr_preempted",
	)
	skipShuffleLayout = newLayout(KindSkipShuffle,
		"lock_id", "queue_len", "shuffle_round", "now_ns", "batch",
		"shuffler_task_id", "shuffler_cpu", "shuffler_socket",
		"shuffler_prio", "shuffler_wait_ns",
	)
	scheduleWaiterLayout = newLayout(KindScheduleWaiter,
		"lock_id", "queue_len", "now_ns",
		"curr_task_id", "curr_cpu", "curr_socket", "curr_prio",
		"curr_wait_ns", "curr_quota", "curr_preempted",
		"waiters_ahead", "holder_cs_avg", "spin_ns",
	)
	profilingLayout = func(k Kind) *CtxLayout {
		return newLayout(k,
			"lock_id", "op", "task_id", "cpu", "socket", "prio",
			"now_ns", "wait_ns", "hold_ns", "queue_len", "reader",
		)
	}
	layouts = [numKinds]*CtxLayout{
		KindCmpNode:        cmpNodeLayout,
		KindSkipShuffle:    skipShuffleLayout,
		KindScheduleWaiter: scheduleWaiterLayout,
		KindLockAcquire:    profilingLayout(KindLockAcquire),
		KindLockContended:  profilingLayout(KindLockContended),
		KindLockAcquired:   profilingLayout(KindLockAcquired),
		KindLockRelease:    profilingLayout(KindLockRelease),
	}
)

// LayoutFor returns the context layout for a program kind.
func LayoutFor(k Kind) *CtxLayout {
	if !k.Valid() {
		panic(fmt.Sprintf("policy: invalid kind %d", int(k)))
	}
	return layouts[k]
}

// Ctx is a populated hook context: one uint64 per field of the layout.
// The framework builds one per hook invocation (they are small and are
// usually stack-allocated by the caller).
type Ctx struct {
	Layout *CtxLayout
	Words  []uint64
}

// NewCtx allocates a zeroed context for kind k.
func NewCtx(k Kind) *Ctx {
	l := LayoutFor(k)
	return &Ctx{Layout: l, Words: make([]uint64, len(l.Fields))}
}

// Set stores a named field value.
func (c *Ctx) Set(name string, v uint64) *Ctx {
	c.Words[c.Layout.Slot(name)] = v
	return c
}

// Get loads a named field value.
func (c *Ctx) Get(name string) uint64 { return c.Words[c.Layout.Slot(name)] }
