package policy

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// Map errors.
var (
	ErrKeySize    = errors.New("policy: bad key size")
	ErrValueSize  = errors.New("policy: bad value size")
	ErrMapFull    = errors.New("policy: map is full")
	ErrNoDelete   = errors.New("policy: map type does not support delete")
	ErrNoSuchKey  = errors.New("policy: no such key")
	ErrBadMapSpec = errors.New("policy: bad map specification")
)

// Map is persistent state shared between policy invocations (and with
// userspace), the analogue of an eBPF map.
//
// Values are stored as 64-bit words and each word is read and written
// atomically, both by programs (the verifier only admits 8-byte aligned,
// 8-byte wide access to map values) and by the accessor methods here.
// This gives the same "racy but memory-safe" semantics in-kernel eBPF
// maps have, without undefined behaviour on the Go side.
type Map interface {
	Name() string
	// KeySize is the key size in bytes.
	KeySize() int
	// ValueSize is the value size in bytes; always a multiple of 8.
	ValueSize() int
	// MaxEntries is the capacity of the map.
	MaxEntries() int
	// Lookup returns the value words for key on the given (virtual) CPU,
	// or nil if the key is absent. The returned slice aliases map
	// storage: word-atomic stores through it are visible to all readers.
	Lookup(key []byte, cpu int) []uint64
	// Update sets the value for key on the given CPU, inserting if absent.
	Update(key []byte, value []uint64, cpu int) error
	// Delete removes key from the map.
	Delete(key []byte) error
}

func checkSpec(name string, keySize, valueSize, maxEntries int) {
	if keySize <= 0 || valueSize <= 0 || valueSize%8 != 0 || maxEntries <= 0 {
		panic(fmt.Sprintf("%v: %s key=%d value=%d entries=%d",
			ErrBadMapSpec, name, keySize, valueSize, maxEntries))
	}
}

// atomicCopy stores src into dst one word at a time.
func atomicCopy(dst, src []uint64) {
	for i := range dst {
		var w uint64
		if i < len(src) {
			w = atomic.LoadUint64(&src[i])
		}
		atomic.StoreUint64(&dst[i], w)
	}
}

// --- Array map ---

// ArrayMap is a fixed-size array indexed by a 32-bit little-endian key,
// the analogue of BPF_MAP_TYPE_ARRAY. All entries always exist.
type ArrayMap struct {
	name       string
	valueWords int
	entries    []uint64 // maxEntries * valueWords
	maxEntries int
}

// NewArrayMap creates an array map of maxEntries values of valueSize bytes.
func NewArrayMap(name string, valueSize, maxEntries int) *ArrayMap {
	checkSpec(name, 4, valueSize, maxEntries)
	return &ArrayMap{
		name:       name,
		valueWords: valueSize / 8,
		entries:    make([]uint64, maxEntries*(valueSize/8)),
		maxEntries: maxEntries,
	}
}

// Name implements Map.
func (m *ArrayMap) Name() string { return m.name }

// KeySize implements Map. Array map keys are 4-byte indices.
func (m *ArrayMap) KeySize() int { return 4 }

// ValueSize implements Map.
func (m *ArrayMap) ValueSize() int { return m.valueWords * 8 }

// MaxEntries implements Map.
func (m *ArrayMap) MaxEntries() int { return m.maxEntries }

func (m *ArrayMap) index(key []byte) (int, bool) {
	if len(key) != 4 {
		return 0, false
	}
	idx := int(binary.LittleEndian.Uint32(key))
	if idx < 0 || idx >= m.maxEntries {
		return 0, false
	}
	return idx, true
}

// Lookup implements Map.
func (m *ArrayMap) Lookup(key []byte, _ int) []uint64 {
	idx, ok := m.index(key)
	if !ok {
		return nil
	}
	return m.entries[idx*m.valueWords : (idx+1)*m.valueWords]
}

// Update implements Map.
func (m *ArrayMap) Update(key []byte, value []uint64, cpu int) error {
	v := m.Lookup(key, cpu)
	if v == nil {
		return ErrNoSuchKey
	}
	if len(value) != m.valueWords {
		return ErrValueSize
	}
	atomicCopy(v, value)
	return nil
}

// Delete implements Map. Array maps do not support deletion.
func (m *ArrayMap) Delete([]byte) error { return ErrNoDelete }

// At returns the value slice at integer index i (a userspace convenience).
func (m *ArrayMap) At(i int) []uint64 {
	var key [4]byte
	binary.LittleEndian.PutUint32(key[:], uint32(i))
	return m.Lookup(key[:], 0)
}

// --- Per-CPU array map ---

// PerCPUArrayMap gives each virtual CPU its own array slice, the analogue
// of BPF_MAP_TYPE_PERCPU_ARRAY. It is the recommended way for hot-path
// policies (profilers especially) to keep counters without cacheline
// bouncing — the same reason the kernel version exists.
type PerCPUArrayMap struct {
	name       string
	valueWords int
	maxEntries int
	numCPUs    int
	entries    []uint64 // numCPUs * maxEntries * valueWords
}

// NewPerCPUArrayMap creates a per-CPU array map over numCPUs virtual CPUs.
func NewPerCPUArrayMap(name string, valueSize, maxEntries, numCPUs int) *PerCPUArrayMap {
	checkSpec(name, 4, valueSize, maxEntries)
	if numCPUs <= 0 {
		panic("policy: per-cpu map needs at least one cpu")
	}
	return &PerCPUArrayMap{
		name:       name,
		valueWords: valueSize / 8,
		maxEntries: maxEntries,
		numCPUs:    numCPUs,
		entries:    make([]uint64, numCPUs*maxEntries*(valueSize/8)),
	}
}

// Name implements Map.
func (m *PerCPUArrayMap) Name() string { return m.name }

// KeySize implements Map.
func (m *PerCPUArrayMap) KeySize() int { return 4 }

// ValueSize implements Map.
func (m *PerCPUArrayMap) ValueSize() int { return m.valueWords * 8 }

// MaxEntries implements Map.
func (m *PerCPUArrayMap) MaxEntries() int { return m.maxEntries }

// NumCPUs returns the number of per-CPU slices.
func (m *PerCPUArrayMap) NumCPUs() int { return m.numCPUs }

// Lookup implements Map; the entry returned belongs to the given CPU.
func (m *PerCPUArrayMap) Lookup(key []byte, cpu int) []uint64 {
	if len(key) != 4 {
		return nil
	}
	idx := int(binary.LittleEndian.Uint32(key))
	if idx < 0 || idx >= m.maxEntries || cpu < 0 || cpu >= m.numCPUs {
		return nil
	}
	base := (cpu*m.maxEntries + idx) * m.valueWords
	return m.entries[base : base+m.valueWords]
}

// Update implements Map.
func (m *PerCPUArrayMap) Update(key []byte, value []uint64, cpu int) error {
	v := m.Lookup(key, cpu)
	if v == nil {
		return ErrNoSuchKey
	}
	if len(value) != m.valueWords {
		return ErrValueSize
	}
	atomicCopy(v, value)
	return nil
}

// Delete implements Map.
func (m *PerCPUArrayMap) Delete([]byte) error { return ErrNoDelete }

// Sum folds the first value word of entry idx across all CPUs, the usual
// way userspace reads a per-CPU counter.
func (m *PerCPUArrayMap) Sum(idx int) uint64 {
	var key [4]byte
	binary.LittleEndian.PutUint32(key[:], uint32(idx))
	var total uint64
	for cpu := 0; cpu < m.numCPUs; cpu++ {
		if v := m.Lookup(key[:], cpu); v != nil {
			total += atomic.LoadUint64(&v[0])
		}
	}
	return total
}

// --- Hash map ---

type hashEntry struct {
	value []uint64
}

// HashMap is a bounded hash map with arbitrary fixed-size keys, the
// analogue of BPF_MAP_TYPE_HASH.
type HashMap struct {
	name       string
	keySize    int
	valueWords int
	maxEntries int

	mu      sync.RWMutex
	entries map[string]*hashEntry
}

// NewHashMap creates a hash map.
func NewHashMap(name string, keySize, valueSize, maxEntries int) *HashMap {
	checkSpec(name, keySize, valueSize, maxEntries)
	return &HashMap{
		name:       name,
		keySize:    keySize,
		valueWords: valueSize / 8,
		maxEntries: maxEntries,
		entries:    make(map[string]*hashEntry),
	}
}

// Name implements Map.
func (m *HashMap) Name() string { return m.name }

// KeySize implements Map.
func (m *HashMap) KeySize() int { return m.keySize }

// ValueSize implements Map.
func (m *HashMap) ValueSize() int { return m.valueWords * 8 }

// MaxEntries implements Map.
func (m *HashMap) MaxEntries() int { return m.maxEntries }

// Lookup implements Map.
func (m *HashMap) Lookup(key []byte, _ int) []uint64 {
	if len(key) != m.keySize {
		return nil
	}
	m.mu.RLock()
	e := m.entries[string(key)]
	m.mu.RUnlock()
	if e == nil {
		return nil
	}
	return e.value
}

// Update implements Map, inserting the key if absent.
func (m *HashMap) Update(key []byte, value []uint64, _ int) error {
	if len(key) != m.keySize {
		return ErrKeySize
	}
	if len(value) != m.valueWords {
		return ErrValueSize
	}
	m.mu.Lock()
	e := m.entries[string(key)]
	if e == nil {
		if len(m.entries) >= m.maxEntries {
			m.mu.Unlock()
			return ErrMapFull
		}
		e = &hashEntry{value: make([]uint64, m.valueWords)}
		m.entries[string(key)] = e
	}
	m.mu.Unlock()
	// Existing readers may hold the value slice; copy word-atomically so
	// they observe either old or new words, never torn bytes.
	atomicCopy(e.value, value)
	return nil
}

// Delete implements Map.
func (m *HashMap) Delete(key []byte) error {
	if len(key) != m.keySize {
		return ErrKeySize
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.entries[string(key)]; !ok {
		return ErrNoSuchKey
	}
	delete(m.entries, string(key))
	return nil
}

// LookupOrInit returns the value for key, atomically inserting a zero
// value if absent. Used by the map_add helper so concurrent first-touch
// increments cannot wipe each other out.
func (m *HashMap) LookupOrInit(key []byte, _ int) []uint64 {
	if len(key) != m.keySize {
		return nil
	}
	m.mu.RLock()
	e := m.entries[string(key)]
	m.mu.RUnlock()
	if e != nil {
		return e.value
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if e = m.entries[string(key)]; e != nil {
		return e.value
	}
	if len(m.entries) >= m.maxEntries {
		return nil
	}
	e = &hashEntry{value: make([]uint64, m.valueWords)}
	m.entries[string(key)] = e
	return e.value
}

// Len reports the number of live entries.
func (m *HashMap) Len() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.entries)
}

// Range calls fn for every key/value pair until fn returns false. The
// value slice aliases map storage. Intended for userspace report readers.
func (m *HashMap) Range(fn func(key []byte, value []uint64) bool) {
	m.mu.RLock()
	keys := make([]string, 0, len(m.entries))
	for k := range m.entries {
		keys = append(keys, k)
	}
	m.mu.RUnlock()
	for _, k := range keys {
		m.mu.RLock()
		e := m.entries[k]
		m.mu.RUnlock()
		if e == nil {
			continue
		}
		if !fn([]byte(k), e.value) {
			return
		}
	}
}
