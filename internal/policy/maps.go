package policy

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// Map errors.
var (
	ErrKeySize    = errors.New("policy: bad key size")
	ErrValueSize  = errors.New("policy: bad value size")
	ErrMapFull    = errors.New("policy: map is full")
	ErrNoDelete   = errors.New("policy: map type does not support delete")
	ErrNoSuchKey  = errors.New("policy: no such key")
	ErrBadCPU     = errors.New("policy: cpu index out of range")
	ErrBadMapSpec = errors.New("policy: bad map specification")
)

// Map is persistent state shared between policy invocations (and with
// userspace), the analogue of an eBPF map.
//
// Values are stored as 64-bit words and each word is read and written
// atomically, both by programs (the verifier only admits 8-byte aligned,
// 8-byte wide access to map values) and by the accessor methods here.
// This gives the same "racy but memory-safe" semantics in-kernel eBPF
// maps have, without undefined behaviour on the Go side.
type Map interface {
	Name() string
	// KeySize is the key size in bytes.
	KeySize() int
	// ValueSize is the value size in bytes; always a multiple of 8.
	ValueSize() int
	// MaxEntries is the capacity of the map.
	MaxEntries() int
	// Lookup returns the value words for key on the given (virtual) CPU,
	// or nil if the key is absent. The returned slice aliases map
	// storage: word-atomic stores through it are visible to all readers.
	Lookup(key []byte, cpu int) []uint64
	// Update sets the value for key on the given CPU, inserting if absent.
	Update(key []byte, value []uint64, cpu int) error
	// Delete removes key from the map.
	Delete(key []byte) error
}

func checkSpec(name string, keySize, valueSize, maxEntries int) {
	if keySize <= 0 || valueSize <= 0 || valueSize%8 != 0 || maxEntries <= 0 {
		panic(fmt.Sprintf("%v: %s key=%d value=%d entries=%d",
			ErrBadMapSpec, name, keySize, valueSize, maxEntries))
	}
}

// atomicCopy stores src into dst one word at a time.
func atomicCopy(dst, src []uint64) {
	for i := range dst {
		var w uint64
		if i < len(src) {
			w = atomic.LoadUint64(&src[i])
		}
		atomic.StoreUint64(&dst[i], w)
	}
}

// rawUpdater is the zero-allocation update path: the map decodes
// little-endian value bytes (the program's stack region) directly into
// its arena instead of going through a freshly allocated word slice.
// Every builtin map kind implements it; the map_update helper falls
// back to Update only for custom Map implementations.
type rawUpdater interface {
	UpdateRaw(key, raw []byte, cpu int) error
}

// --- Array map ---

// ArrayMap is a fixed-size array indexed by a 32-bit little-endian key,
// the analogue of BPF_MAP_TYPE_ARRAY. All entries always exist.
type ArrayMap struct {
	name       string
	valueWords int
	entries    []uint64 // maxEntries * valueWords
	maxEntries int
}

// NewArrayMap creates an array map of maxEntries values of valueSize bytes.
func NewArrayMap(name string, valueSize, maxEntries int) *ArrayMap {
	checkSpec(name, 4, valueSize, maxEntries)
	return &ArrayMap{
		name:       name,
		valueWords: valueSize / 8,
		entries:    make([]uint64, maxEntries*(valueSize/8)),
		maxEntries: maxEntries,
	}
}

// Name implements Map.
func (m *ArrayMap) Name() string { return m.name }

// KeySize implements Map. Array map keys are 4-byte indices.
func (m *ArrayMap) KeySize() int { return 4 }

// ValueSize implements Map.
func (m *ArrayMap) ValueSize() int { return m.valueWords * 8 }

// MaxEntries implements Map.
func (m *ArrayMap) MaxEntries() int { return m.maxEntries }

func (m *ArrayMap) index(key []byte) (int, bool) {
	if len(key) != 4 {
		return 0, false
	}
	idx := int(binary.LittleEndian.Uint32(key))
	if idx < 0 || idx >= m.maxEntries {
		return 0, false
	}
	return idx, true
}

// Lookup implements Map.
func (m *ArrayMap) Lookup(key []byte, _ int) []uint64 {
	idx, ok := m.index(key)
	if !ok {
		return nil
	}
	return m.entries[idx*m.valueWords : (idx+1)*m.valueWords]
}

// Update implements Map.
func (m *ArrayMap) Update(key []byte, value []uint64, cpu int) error {
	v := m.Lookup(key, cpu)
	if v == nil {
		return ErrNoSuchKey
	}
	if len(value) != m.valueWords {
		return ErrValueSize
	}
	atomicCopy(v, value)
	return nil
}

// UpdateRaw is Update from little-endian bytes, allocation-free.
func (m *ArrayMap) UpdateRaw(key, raw []byte, cpu int) error {
	v := m.Lookup(key, cpu)
	if v == nil {
		return ErrNoSuchKey
	}
	if len(raw) != m.valueWords*8 {
		return ErrValueSize
	}
	storeRawWords(v, raw)
	return nil
}

// Delete implements Map. Array maps do not support deletion.
func (m *ArrayMap) Delete([]byte) error { return ErrNoDelete }

// At returns the value slice at integer index i (a userspace convenience).
func (m *ArrayMap) At(i int) []uint64 {
	var key [4]byte
	binary.LittleEndian.PutUint32(key[:], uint32(i))
	return m.Lookup(key[:], 0)
}

// --- Per-CPU array map ---

// PerCPUArrayMap gives each virtual CPU its own array slice, the analogue
// of BPF_MAP_TYPE_PERCPU_ARRAY. It is the recommended way for hot-path
// policies (profilers especially) to keep counters without cacheline
// bouncing — the same reason the kernel version exists.
type PerCPUArrayMap struct {
	name       string
	valueWords int
	maxEntries int
	numCPUs    int
	entries    []uint64 // numCPUs * maxEntries * valueWords
}

// NewPerCPUArrayMap creates a per-CPU array map over numCPUs virtual CPUs.
func NewPerCPUArrayMap(name string, valueSize, maxEntries, numCPUs int) *PerCPUArrayMap {
	checkSpec(name, 4, valueSize, maxEntries)
	if numCPUs <= 0 {
		panic("policy: per-cpu map needs at least one cpu")
	}
	return &PerCPUArrayMap{
		name:       name,
		valueWords: valueSize / 8,
		maxEntries: maxEntries,
		numCPUs:    numCPUs,
		entries:    make([]uint64, numCPUs*maxEntries*(valueSize/8)),
	}
}

// Name implements Map.
func (m *PerCPUArrayMap) Name() string { return m.name }

// KeySize implements Map.
func (m *PerCPUArrayMap) KeySize() int { return 4 }

// ValueSize implements Map.
func (m *PerCPUArrayMap) ValueSize() int { return m.valueWords * 8 }

// MaxEntries implements Map.
func (m *PerCPUArrayMap) MaxEntries() int { return m.maxEntries }

// NumCPUs returns the number of per-CPU slices.
func (m *PerCPUArrayMap) NumCPUs() int { return m.numCPUs }

// Lookup implements Map; the entry returned belongs to the given CPU.
func (m *PerCPUArrayMap) Lookup(key []byte, cpu int) []uint64 {
	if len(key) != 4 {
		return nil
	}
	idx := int(binary.LittleEndian.Uint32(key))
	if idx < 0 || idx >= m.maxEntries || cpu < 0 || cpu >= m.numCPUs {
		return nil
	}
	base := (cpu*m.maxEntries + idx) * m.valueWords
	return m.entries[base : base+m.valueWords]
}

// Update implements Map.
func (m *PerCPUArrayMap) Update(key []byte, value []uint64, cpu int) error {
	v := m.Lookup(key, cpu)
	if v == nil {
		return ErrNoSuchKey
	}
	if len(value) != m.valueWords {
		return ErrValueSize
	}
	atomicCopy(v, value)
	return nil
}

// UpdateRaw is Update from little-endian bytes, allocation-free.
func (m *PerCPUArrayMap) UpdateRaw(key, raw []byte, cpu int) error {
	v := m.Lookup(key, cpu)
	if v == nil {
		return ErrNoSuchKey
	}
	if len(raw) != m.valueWords*8 {
		return ErrValueSize
	}
	storeRawWords(v, raw)
	return nil
}

// Delete implements Map.
func (m *PerCPUArrayMap) Delete([]byte) error { return ErrNoDelete }

// Sum folds the first value word of entry idx across all CPUs, the usual
// way userspace reads a per-CPU counter.
func (m *PerCPUArrayMap) Sum(idx int) uint64 {
	var key [4]byte
	binary.LittleEndian.PutUint32(key[:], uint32(idx))
	var total uint64
	for cpu := 0; cpu < m.numCPUs; cpu++ {
		if v := m.Lookup(key[:], cpu); v != nil {
			total += atomic.LoadUint64(&v[0])
		}
	}
	return total
}

// --- Locked hash map (legacy kind) ---

// LockedHashMap is the original RWMutex-guarded hash map, kept as an
// explicit kind ("locked_hash") for unbounded key sizes and as the
// comparison point for the lock-free HashMap in maps_hash.go. Values
// live in a preallocated arena with a free list, so steady-state
// updates allocate nothing and an insert allocates only the interned
// string key the Go map needs (the original also allocated an entry
// header and a value slice per insert).
//
// Aliasing semantics: like every map kind here, Lookup's slice aliases
// arena storage. After Delete, a still-held slice may observe the words
// of whichever entry next reuses the freed arena slot. See the
// commentary in maps_hash.go.
type LockedHashMap struct {
	name       string
	keySize    int
	valueWords int
	maxEntries int

	mu    sync.RWMutex
	slots map[string]int // key → arena slot
	vals  []uint64       // maxEntries × valueWords arena
	free  []int          // freed slots, reused LIFO
	next  int            // bump allocator over never-used slots
}

// NewLockedHashMap creates a mutex-based hash map.
func NewLockedHashMap(name string, keySize, valueSize, maxEntries int) *LockedHashMap {
	checkSpec(name, keySize, valueSize, maxEntries)
	return &LockedHashMap{
		name:       name,
		keySize:    keySize,
		valueWords: valueSize / 8,
		maxEntries: maxEntries,
		slots:      make(map[string]int, maxEntries),
		vals:       make([]uint64, maxEntries*(valueSize/8)),
		free:       make([]int, 0, maxEntries),
	}
}

// Name implements Map.
func (m *LockedHashMap) Name() string { return m.name }

// KeySize implements Map.
func (m *LockedHashMap) KeySize() int { return m.keySize }

// ValueSize implements Map.
func (m *LockedHashMap) ValueSize() int { return m.valueWords * 8 }

// MaxEntries implements Map.
func (m *LockedHashMap) MaxEntries() int { return m.maxEntries }

func (m *LockedHashMap) valSlice(slot int) []uint64 {
	return m.vals[slot*m.valueWords : (slot+1)*m.valueWords]
}

// Lookup implements Map. The m.slots[string(key)] expression does not
// allocate — the compiler elides the conversion for map reads.
func (m *LockedHashMap) Lookup(key []byte, _ int) []uint64 {
	if len(key) != m.keySize {
		return nil
	}
	m.mu.RLock()
	slot, ok := m.slots[string(key)]
	m.mu.RUnlock()
	if !ok {
		return nil
	}
	return m.valSlice(slot)
}

// Update implements Map, inserting the key if absent.
func (m *LockedHashMap) Update(key []byte, value []uint64, _ int) error {
	if len(value) != m.valueWords {
		return ErrValueSize
	}
	return m.update(key, func(dst []uint64) { atomicCopy(dst, value) })
}

// UpdateRaw is Update from little-endian bytes; on the existing-key
// path it allocates nothing.
func (m *LockedHashMap) UpdateRaw(key, raw []byte, _ int) error {
	if len(raw) != m.valueWords*8 {
		return ErrValueSize
	}
	return m.update(key, func(dst []uint64) { storeRawWords(dst, raw) })
}

func (m *LockedHashMap) update(key []byte, fill func(dst []uint64)) error {
	if len(key) != m.keySize {
		return ErrKeySize
	}
	m.mu.RLock()
	if slot, ok := m.slots[string(key)]; ok {
		// Fill while still holding the read lock: it pins the key→slot
		// mapping, so a concurrent Delete+insert cannot recycle this
		// arena slot to another key mid-fill. Concurrent readers may
		// hold the value slice; the fill callbacks copy word-atomically
		// so they observe old or new words, never torn bytes.
		fill(m.valSlice(slot))
		m.mu.RUnlock()
		return nil
	}
	m.mu.RUnlock()
	m.mu.Lock()
	slot, ok := m.slots[string(key)]
	if !ok {
		var err error
		if slot, err = m.allocSlotLocked(); err != nil {
			m.mu.Unlock()
			return err
		}
		m.slots[string(key)] = slot
	}
	// Same reasoning as above: fill before dropping the lock so the
	// slot cannot be freed and reassigned underneath us.
	fill(m.valSlice(slot))
	m.mu.Unlock()
	return nil
}

// allocSlotLocked pops a freed slot (zeroing it for its new owner) or
// bumps into never-used arena space.
func (m *LockedHashMap) allocSlotLocked() (int, error) {
	if n := len(m.free); n > 0 {
		slot := m.free[n-1]
		m.free = m.free[:n-1]
		v := m.valSlice(slot)
		for i := range v {
			atomic.StoreUint64(&v[i], 0)
		}
		return slot, nil
	}
	if m.next >= m.maxEntries {
		return 0, ErrMapFull
	}
	slot := m.next
	m.next++
	return slot, nil
}

// Delete implements Map.
func (m *LockedHashMap) Delete(key []byte) error {
	if len(key) != m.keySize {
		return ErrKeySize
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	slot, ok := m.slots[string(key)]
	if !ok {
		return ErrNoSuchKey
	}
	delete(m.slots, string(key))
	m.free = append(m.free, slot)
	return nil
}

// LookupOrInit returns the value for key, atomically inserting a zero
// value if absent. Used by the map_add helper so concurrent first-touch
// increments cannot wipe each other out.
func (m *LockedHashMap) LookupOrInit(key []byte, _ int) []uint64 {
	if len(key) != m.keySize {
		return nil
	}
	m.mu.RLock()
	slot, ok := m.slots[string(key)]
	m.mu.RUnlock()
	if ok {
		return m.valSlice(slot)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if slot, ok = m.slots[string(key)]; ok {
		return m.valSlice(slot)
	}
	slot, err := m.allocSlotLocked()
	if err != nil {
		return nil
	}
	m.slots[string(key)] = slot
	return m.valSlice(slot)
}

// Len reports the number of live entries.
func (m *LockedHashMap) Len() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.slots)
}

// MapStats implements StatsProvider. Only occupancy is meaningful for
// the mutex-based kind.
func (m *LockedHashMap) MapStats() MapStats {
	return MapStats{Occupancy: int64(m.Len())}
}

// Range calls fn for every key/value pair until fn returns false. The
// value slice aliases map storage. Intended for userspace report readers.
func (m *LockedHashMap) Range(fn func(key []byte, value []uint64) bool) {
	m.mu.RLock()
	keys := make([]string, 0, len(m.slots))
	for k := range m.slots {
		keys = append(keys, k)
	}
	m.mu.RUnlock()
	for _, k := range keys {
		m.mu.RLock()
		slot, ok := m.slots[k]
		m.mu.RUnlock()
		if !ok {
			continue
		}
		if !fn([]byte(k), m.valSlice(slot)) {
			return
		}
	}
}
