package policy

import (
	"math/rand"
	"testing"
)

func TestCompileNativeRequiresVerification(t *testing.T) {
	p := NewBuilder("unverified", KindLockAcquire).ReturnImm(0).MustProgram()
	if _, err := CompileNative(p); err != ErrNotVerified {
		t.Errorf("err = %v, want ErrNotVerified", err)
	}
}

func TestCompileNativeMatchesInterpreter(t *testing.T) {
	m := NewArrayMap("m", 8, 4)
	progs := []*Program{
		NewBuilder("alu", KindLockAcquire).
			MovImm(R2, 21).MovImm(R3, 2).ALUReg(OpMulReg, R2, R3).
			AddImm(R2, -2).ReturnReg(R2).MustProgram(),
		MustAssemble("numa", KindCmpNode, `
			mov   r6, r1
			ldxdw r2, [r6+curr_socket]
			ldxdw r3, [r6+shuffler_socket]
			jeq   r2, r3, g
			mov   r0, 0
			exit
		g:	mov   r0, 1
			exit
		`, nil),
		counterProgramNC(m),
	}
	for _, p := range progs {
		if _, err := Verify(p); err != nil {
			t.Fatal(err)
		}
		fn := MustCompileNative(p)
		for trial := 0; trial < 8; trial++ {
			ctx := NewCtx(p.Kind)
			for i := range ctx.Words {
				ctx.Words[i] = uint64(trial * (i + 1))
			}
			env := &TestEnv{CPUID: trial}
			// Interpreter and compiled form must agree. Map side
			// effects run twice, which is fine for counters; compare
			// return values from identical starting context.
			want, errI := Exec(p, ctx, env)
			got, errC := fn(ctx, env)
			if (errI == nil) != (errC == nil) {
				t.Fatalf("%s: error divergence: %v vs %v", p.Name, errI, errC)
			}
			// The counter program returns 1 on both paths regardless of
			// the accumulated value; pure programs must match exactly.
			if p.Name != "counter" && want != got {
				t.Fatalf("%s trial %d: interp %d, compiled %d", p.Name, trial, want, got)
			}
		}
	}
}

// counterProgramNC is the map-increment program used in the VM tests.
func counterProgramNC(m Map) *Program {
	return NewBuilder("counter", KindLockAcquired).
		StoreStackImm(OpStW, -4, 0).
		LoadMapPtr(R1, m).
		MovReg(R2, RFP).
		AddImm(R2, -4).
		Call(HelperMapLookup).
		JmpImm(OpJneImm, R0, 0, "hit").
		ReturnImm(0).
		Label("hit").
		Raw(Instruction{Op: OpLdxDW, Dst: R3, Src: R0, Off: 0}).
		AddImm(R3, 1).
		Raw(Instruction{Op: OpStxDW, Dst: R0, Src: R3, Off: 0}).
		ReturnImm(1).
		MustProgram()
}

// TestCompiledDifferentialFuzz runs structured random programs through
// both executors and requires identical results — the compiler's
// correctness argument.
func TestCompiledDifferentialFuzz(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	env := &TestEnv{CPUID: 2, NUMA: 1, Task: 5, Prio: 120}
	checked := 0
	for i := 0; i < 3000; i++ {
		b := NewBuilder("dfuzz", KindLockAcquired)
		b.MovReg(R6, R1)
		b.MovImm(R2, int64(r.Intn(1000)))
		b.MovImm(R3, int64(r.Intn(1000))-500)
		for j := 0; j < r.Intn(10); j++ {
			ops := []Op{OpAddReg, OpSubReg, OpMulReg, OpAndReg, OpOrReg,
				OpXorReg, OpLshReg, OpRshReg, OpDivReg, OpModReg}
			b.ALUReg(ops[r.Intn(len(ops))], R2, R3)
			if r.Intn(3) == 0 {
				b.LoadCtx(R4, R6, "wait_ns")
				b.ALUReg(OpAddReg, R2, R4)
			}
			if r.Intn(4) == 0 {
				lbl := "L" + itoa(j) + itoa(i)
				b.JmpImm(OpJgtImm, R2, int64(r.Intn(2000)), lbl)
				b.AddImm(R2, 7)
				b.Label(lbl)
			}
		}
		b.ReturnReg(R2)
		p, err := b.Program()
		if err != nil {
			continue
		}
		if _, err := Verify(p); err != nil {
			continue
		}
		fn, err := CompileNative(p)
		if err != nil {
			t.Fatalf("program %d failed to compile: %v\n%s", i, err, p)
		}
		ctx := NewCtx(KindLockAcquired)
		for w := range ctx.Words {
			ctx.Words[w] = r.Uint64() % 10000
		}
		want, errI := Exec(p, ctx, env)
		got, errC := fn(ctx, env)
		if errI != nil || errC != nil {
			t.Fatalf("program %d errored: %v / %v\n%s", i, errI, errC, p)
		}
		if want != got {
			t.Fatalf("program %d: interp %d != compiled %d\n%s", i, want, got, p)
		}
		checked++
	}
	if checked < 2000 {
		t.Errorf("only %d programs checked", checked)
	}
}
