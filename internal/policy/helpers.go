package policy

import (
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// HelperID identifies a helper function callable from policy programs,
// the analogue of eBPF helper IDs.
type HelperID int64

// The helper set. The first four are map accessors; the rest expose the
// execution environment (the information the paper's policies need:
// CPU and NUMA identity, time, task identity — see §4.2 "we use eBPF
// helper functions such as CPU ID, NUMA ID and time").
const (
	HelperMapLookup HelperID = iota + 1 // (map, key*) -> value* | null
	HelperMapUpdate                     // (map, key*, value*) -> 0 | errno
	HelperMapDelete                     // (map, key*) -> 0 | errno
	HelperMapAdd                        // (map, key*, delta) -> 0 | errno; atomic add to word 0
	HelperKtimeNS                       // () -> current time, ns
	HelperCPU                           // () -> current virtual CPU
	HelperNUMANode                      // () -> current NUMA node
	HelperTaskID                        // () -> current task ID
	HelperTaskPrio                      // () -> current task priority
	HelperRand                          // () -> pseudo-random u64
	HelperTrace                         // (val) -> 0; records val for debugging
	HelperLockStats                     // (field) -> windowed profile signal of the hooked lock
	HelperOCCSet                        // (on) -> 1 if promotion state changed; optimistic-tier control

	numHelpers
)

var helperNames = map[HelperID]string{
	HelperMapLookup: "map_lookup",
	HelperMapUpdate: "map_update",
	HelperMapDelete: "map_delete",
	HelperMapAdd:    "map_add",
	HelperKtimeNS:   "ktime_ns",
	HelperCPU:       "cpu",
	HelperNUMANode:  "numa_node",
	HelperTaskID:    "task_id",
	HelperTaskPrio:  "task_prio",
	HelperRand:      "rand",
	HelperTrace:     "trace",
	HelperLockStats: "lock_stats_read",
	HelperOCCSet:    "occ_set",
}

// String implements fmt.Stringer.
func (h HelperID) String() string {
	if n, ok := helperNames[h]; ok {
		return n
	}
	return "helper(?)"
}

// HelperByName resolves a helper by its assembler name. Matching is
// case-insensitive: the assembler lower-cases mnemonics but used to pass
// operands through verbatim, so `call KTIME_NS` failed while
// `call ktime_ns` worked. Normalizing here fixes every caller at once.
func HelperByName(name string) (HelperID, bool) {
	name = strings.ToLower(name)
	for id, n := range helperNames {
		if n == name {
			return id, true
		}
	}
	return 0, false
}

// argKind classifies a helper argument for the verifier.
type argKind int

const (
	argNone        argKind = iota
	argScalar              // any initialized scalar
	argConstMapPtr         // a register loaded with OpLoadMapPtr
	argStackKey            // pointer to an initialized stack region of the map's key size
	argStackValue          // pointer to an initialized stack region of the map's value size
)

// retKind classifies a helper return value for the verifier.
type retKind int

const (
	retScalar retKind = iota
	retMapValueOrNull
)

// helperSpec is the verifier-facing signature of a helper.
type helperSpec struct {
	id   HelperID
	name string
	args []argKind
	ret  retKind
	// readOnlyPath marks helpers allowed even in the shuffler fast path
	// (cmp_node / skip_shuffle), where mutation helpers are disallowed to
	// bound the work done while the queue is being reordered.
	readOnlyPath bool
}

var helperSpecs = map[HelperID]helperSpec{
	HelperMapLookup: {HelperMapLookup, "map_lookup", []argKind{argConstMapPtr, argStackKey}, retMapValueOrNull, true},
	HelperMapUpdate: {HelperMapUpdate, "map_update", []argKind{argConstMapPtr, argStackKey, argStackValue}, retScalar, false},
	HelperMapDelete: {HelperMapDelete, "map_delete", []argKind{argConstMapPtr, argStackKey}, retScalar, false},
	HelperMapAdd:    {HelperMapAdd, "map_add", []argKind{argConstMapPtr, argStackKey, argScalar}, retScalar, true},
	HelperKtimeNS:   {HelperKtimeNS, "ktime_ns", nil, retScalar, true},
	HelperCPU:       {HelperCPU, "cpu", nil, retScalar, true},
	HelperNUMANode:  {HelperNUMANode, "numa_node", nil, retScalar, true},
	HelperTaskID:    {HelperTaskID, "task_id", nil, retScalar, true},
	HelperTaskPrio:  {HelperTaskPrio, "task_prio", nil, retScalar, true},
	HelperRand:      {HelperRand, "rand", nil, retScalar, true},
	HelperTrace:     {HelperTrace, "trace", []argKind{argScalar}, retScalar, true},
	HelperLockStats: {HelperLockStats, "lock_stats_read", []argKind{argScalar}, retScalar, true},
	// occ_set mutates lock state, so it is barred from the bounded
	// shuffler fast path like the other mutation helpers.
	HelperOCCSet: {HelperOCCSet, "occ_set", []argKind{argScalar}, retScalar, false},
}

// helperAllowed reports whether helper h may be called from programs of
// kind k. The shuffler-path kinds (cmp_node, skip_shuffle) are restricted
// to read-only / atomic helpers; every other kind may use the full set.
func helperAllowed(h HelperID, k Kind) bool {
	spec, ok := helperSpecs[h]
	if !ok {
		return false
	}
	if k == KindCmpNode || k == KindSkipShuffle {
		return spec.readOnlyPath
	}
	return true
}

// Env supplies the execution environment a program observes through
// helpers. The framework adapts the current task and clock to this
// interface; tests substitute deterministic implementations.
type Env interface {
	// NowNS is the policy-visible clock, in nanoseconds.
	NowNS() int64
	// CPU is the current virtual CPU.
	CPU() int
	// NUMANode is the NUMA node of the current virtual CPU.
	NUMANode() int
	// TaskID identifies the current task.
	TaskID() int64
	// TaskPriority is the current task's scheduling priority.
	TaskPriority() int64
	// Rand returns a pseudo-random value.
	Rand() uint64
	// Trace records a debug value emitted by the trace helper.
	Trace(v uint64)
}

// LockStatReader is the optional Env extension behind lock_stats_read:
// environments that can see the hooked lock's windowed profile (the
// continuous profiler's last completed window) implement it; on plain
// environments the helper reads 0, so profile-gated policies degrade to
// their low-contention branch instead of failing verification or
// execution. Field IDs are defined by internal/profile (Field*).
type LockStatReader interface {
	// LockStat returns one windowed profile signal of the lock this
	// program is hooked to, by field ID; unknown fields read 0.
	LockStat(field uint64) uint64
}

// OCCSetter is the optional Env extension behind occ_set: environments
// attached to a lock with an optimistic read tier implement it to route
// the policy's promotion/demotion decision to that lock instance. On
// plain environments the helper returns 0 ("no change"), so occ-gating
// policies are inert rather than invalid where the tier is absent.
type OCCSetter interface {
	// OCCSet requests promotion (on != 0) or demotion (on == 0) of the
	// hooked lock's optimistic tier; returns 1 if the state changed.
	OCCSet(on uint64) uint64
}

// FuncEnv is an Env assembled from optional function fields; nil fields
// fall back to zero values. It is the simplest way to build custom
// environments in tests and tools.
type FuncEnv struct {
	NowNSFn    func() int64
	CPUFn      func() int
	NUMAFn     func() int
	TaskIDFn   func() int64
	TaskPrioFn func() int64
	RandFn     func() uint64
	TraceFn    func(uint64)
	// LockStatFn backs the lock_stats_read helper (nil reads 0).
	LockStatFn func(field uint64) uint64
	// OCCSetFn backs the occ_set helper (nil returns 0).
	OCCSetFn func(on uint64) uint64
}

// NowNS implements Env.
func (e *FuncEnv) NowNS() int64 {
	if e.NowNSFn != nil {
		return e.NowNSFn()
	}
	return 0
}

// CPU implements Env.
func (e *FuncEnv) CPU() int {
	if e.CPUFn != nil {
		return e.CPUFn()
	}
	return 0
}

// NUMANode implements Env.
func (e *FuncEnv) NUMANode() int {
	if e.NUMAFn != nil {
		return e.NUMAFn()
	}
	return 0
}

// TaskID implements Env.
func (e *FuncEnv) TaskID() int64 {
	if e.TaskIDFn != nil {
		return e.TaskIDFn()
	}
	return 0
}

// TaskPriority implements Env.
func (e *FuncEnv) TaskPriority() int64 {
	if e.TaskPrioFn != nil {
		return e.TaskPrioFn()
	}
	return 0
}

// Rand implements Env.
func (e *FuncEnv) Rand() uint64 {
	if e.RandFn != nil {
		return e.RandFn()
	}
	return 0
}

// Trace implements Env.
func (e *FuncEnv) Trace(v uint64) {
	if e.TraceFn != nil {
		e.TraceFn(v)
	}
}

// LockStat implements LockStatReader.
func (e *FuncEnv) LockStat(field uint64) uint64 {
	if e.LockStatFn != nil {
		return e.LockStatFn(field)
	}
	return 0
}

// OCCSet implements OCCSetter.
func (e *FuncEnv) OCCSet(on uint64) uint64 {
	if e.OCCSetFn != nil {
		return e.OCCSetFn(on)
	}
	return 0
}

// TestEnv is a deterministic Env that records traced values; handy in
// tests and in concordctl's dry-run mode.
type TestEnv struct {
	Now      atomic.Int64
	CPUID    int
	NUMA     int
	Task     int64
	Prio     int64
	randSeed uint64
	// LockStats seeds lock_stats_read fields (field ID -> value).
	LockStats map[uint64]uint64
	// OCCState records the last occ_set request (1+on); zero means the
	// helper never ran. Reads count state changes like a real lock.
	OCCState atomic.Uint64

	mu     sync.Mutex
	traces []uint64
}

// NowNS implements Env.
func (e *TestEnv) NowNS() int64 { return e.Now.Load() }

// CPU implements Env.
func (e *TestEnv) CPU() int { return e.CPUID }

// NUMANode implements Env.
func (e *TestEnv) NUMANode() int { return e.NUMA }

// TaskID implements Env.
func (e *TestEnv) TaskID() int64 { return e.Task }

// TaskPriority implements Env.
func (e *TestEnv) TaskPriority() int64 { return e.Prio }

// Rand implements Env with a splitmix64 sequence.
func (e *TestEnv) Rand() uint64 {
	e.randSeed += 0x9e3779b97f4a7c15
	z := e.randSeed
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Trace implements Env.
func (e *TestEnv) Trace(v uint64) {
	e.mu.Lock()
	e.traces = append(e.traces, v)
	e.mu.Unlock()
}

// LockStat implements LockStatReader from the LockStats map.
func (e *TestEnv) LockStat(field uint64) uint64 { return e.LockStats[field] }

// OCCSet implements OCCSetter with promote/demote edge semantics: the
// return value is 1 exactly when the request flipped the recorded state,
// mirroring OCCCapable.OCCPromote on a real lock.
func (e *TestEnv) OCCSet(on uint64) uint64 {
	want := uint64(1)
	if on != 0 {
		want = 2
	}
	if e.OCCState.Swap(want) == want {
		return 0
	}
	return 1
}

// Traces returns a copy of the values traced so far.
func (e *TestEnv) Traces() []uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]uint64, len(e.traces))
	copy(out, e.traces)
	return out
}

// realEnv is the Env used when none is supplied: wall clock, CPU 0.
type realEnv struct{}

func (realEnv) NowNS() int64        { return time.Now().UnixNano() }
func (realEnv) CPU() int            { return 0 }
func (realEnv) NUMANode() int       { return 0 }
func (realEnv) TaskID() int64       { return 0 }
func (realEnv) TaskPriority() int64 { return 0 }
func (realEnv) Rand() uint64        { return rand.Uint64() }
func (realEnv) Trace(uint64)        {}

// DefaultEnv is the fallback environment (wall clock, CPU 0, no task).
var DefaultEnv Env = realEnv{}
