// Package syncx implements the further kernel synchronization
// mechanisms the paper's discussion section targets for C3 extension
// (§6 "Other synchronization mechanisms ... RCU, seqlocks, wait
// events"): a sequence lock whose write side is any hookable lock (so
// Concord policies and profilers apply to it unchanged), a userspace
// RCU with grace periods and deferred callbacks, and a kernel-style
// wait queue.
package syncx

import (
	"runtime"
	"sync"
	"sync/atomic"

	"concord/internal/locks"
	"concord/internal/task"
)

// --- Sequence lock ---

// SeqLock is a sequence lock (Linux's seqlock_t): writers serialize on
// an embedded lock and bump a sequence counter around their critical
// section; readers run lock-free and retry if the sequence moved.
// Because the write side is a locks.Lock, Concord policies attach to a
// SeqLock exactly as to any other lock — the extension path §6 sketches.
type SeqLock struct {
	seq atomic.Uint64
	w   locks.Lock

	retries atomic.Int64
}

// NewSeqLock wraps w as the write side of a sequence lock.
func NewSeqLock(w locks.Lock) *SeqLock { return &SeqLock{w: w} }

// WriteLock enters the write-side critical section.
func (s *SeqLock) WriteLock(t *task.T) {
	s.w.Lock(t)
	s.seq.Add(1) // odd: write in progress
}

// WriteUnlock leaves the write-side critical section.
func (s *SeqLock) WriteUnlock(t *task.T) {
	s.seq.Add(1) // even: stable
	s.w.Unlock(t)
}

// ReadBegin starts an optimistic read section, spinning past any
// in-progress write, and returns the sequence to validate against.
func (s *SeqLock) ReadBegin() uint64 {
	for i := 0; ; i++ {
		seq := s.seq.Load()
		if seq&1 == 0 {
			return seq
		}
		if i&3 == 3 {
			runtime.Gosched()
		}
	}
}

// ReadRetry reports whether the read section raced a writer and must be
// retried.
func (s *SeqLock) ReadRetry(seq uint64) bool {
	retry := s.seq.Load() != seq
	if retry {
		s.retries.Add(1)
	}
	return retry
}

// Read runs fn optimistically until it completes without a concurrent
// write; fn must be side-effect free until the final iteration's value
// is used.
func (s *SeqLock) Read(fn func()) {
	for {
		seq := s.ReadBegin()
		fn()
		if !s.ReadRetry(seq) {
			return
		}
	}
}

// Retries reports how many read sections had to retry (monitoring).
func (s *SeqLock) Retries() int64 { return s.retries.Load() }

// WriteSide exposes the embedded write lock (to attach policies).
func (s *SeqLock) WriteSide() locks.Lock { return s.w }

// --- RCU ---

// RCU is a userspace read-copy-update domain in the style of two-phase
// URCU: read-side critical sections are wait-free counter operations;
// Synchronize flips the grace-period phase and waits for the previous
// phase's readers to drain; Call defers a callback to after the next
// grace period.
type RCU struct {
	phase   atomic.Uint64 // low bit selects the active reader counter
	readers [2]atomic.Int64

	mu        sync.Mutex // serializes writers/synchronize
	callbacks []func()

	graceCount atomic.Int64
}

// NewRCU returns an RCU domain.
func NewRCU() *RCU { return &RCU{} }

// ReadLock enters a read-side critical section and returns a token that
// must be passed to the matching ReadUnlock. Read sections may nest
// (each gets its own token) and never block.
func (r *RCU) ReadLock() uint64 {
	for {
		p := r.phase.Load() & 1
		r.readers[p].Add(1)
		// Re-validate: if Synchronize flipped the phase between the load
		// and the increment, back out and join the new phase so the old
		// one can drain.
		if r.phase.Load()&1 == p {
			return p
		}
		r.readers[p].Add(-1)
	}
}

// ReadUnlock leaves a read-side critical section.
func (r *RCU) ReadUnlock(token uint64) {
	if n := r.readers[token&1].Add(-1); n < 0 {
		panic("syncx: RCU ReadUnlock without ReadLock")
	}
}

// Synchronize blocks until every read-side critical section that began
// before the call has ended, then runs any deferred callbacks.
func (r *RCU) Synchronize() {
	r.mu.Lock()
	cbs := r.callbacks
	r.callbacks = nil

	// Two flips, like URCU: a reader that raced the first flip into the
	// old phase is caught by the second drain.
	for flip := 0; flip < 2; flip++ {
		old := r.phase.Add(1) - 1 // previous phase
		for i := 0; r.readers[old&1].Load() != 0; i++ {
			if i&3 == 3 {
				runtime.Gosched()
			}
		}
	}
	r.graceCount.Add(1)
	r.mu.Unlock()

	for _, cb := range cbs {
		cb()
	}
}

// Call defers fn until after the next grace period (call_rcu). If no
// one calls Synchronize, the callback stays queued — as in the kernel,
// reclamation needs grace periods to happen.
func (r *RCU) Call(fn func()) {
	r.mu.Lock()
	r.callbacks = append(r.callbacks, fn)
	r.mu.Unlock()
}

// GracePeriods reports how many grace periods have completed.
func (r *RCU) GracePeriods() int64 { return r.graceCount.Load() }

// --- Wait queue ---

// WaitQueue is a kernel-style wait queue (wait_event/wake_up): tasks
// wait for an arbitrary condition; wakers signal re-evaluation. The
// paper's §3.1.1 notes Btrfs pairs non-blocking locks with exactly this
// ad-hoc mechanism — which a C3 parking policy can subsume.
type WaitQueue struct {
	mu      sync.Mutex
	waiters map[chan struct{}]struct{}

	wakeups atomic.Int64
}

// NewWaitQueue returns an empty wait queue.
func NewWaitQueue() *WaitQueue {
	return &WaitQueue{waiters: make(map[chan struct{}]struct{})}
}

// Wait blocks until cond() is true, re-evaluating on every wake-up.
// cond runs outside the queue lock and must be safe to call repeatedly.
func (q *WaitQueue) Wait(cond func() bool) {
	for {
		if cond() {
			return
		}
		ch := make(chan struct{}, 1)
		q.mu.Lock()
		q.waiters[ch] = struct{}{}
		q.mu.Unlock()
		// Re-check after registering: a waker that ran in between has
		// already been observed or will signal ch.
		if cond() {
			q.remove(ch)
			return
		}
		<-ch
	}
}

func (q *WaitQueue) remove(ch chan struct{}) {
	q.mu.Lock()
	delete(q.waiters, ch)
	q.mu.Unlock()
}

// WakeAll wakes every waiter to re-evaluate its condition.
func (q *WaitQueue) WakeAll() {
	q.mu.Lock()
	for ch := range q.waiters {
		select {
		case ch <- struct{}{}:
		default:
		}
		delete(q.waiters, ch)
	}
	q.wakeups.Add(1)
	q.mu.Unlock()
}

// WakeOne wakes at most one waiter.
func (q *WaitQueue) WakeOne() {
	q.mu.Lock()
	for ch := range q.waiters {
		select {
		case ch <- struct{}{}:
		default:
		}
		delete(q.waiters, ch)
		break
	}
	q.wakeups.Add(1)
	q.mu.Unlock()
}

// Waiters reports the number of currently registered waiters.
func (q *WaitQueue) Waiters() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.waiters)
}
