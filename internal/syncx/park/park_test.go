package park

import (
	"sync/atomic"
	"testing"
	"time"

	"concord/internal/faultinject"
)

func TestParkerPendingSignalNotLost(t *testing.T) {
	var p Parker
	p.Init()
	// Post before parking: the signal must be remembered.
	p.Unpark()
	done := make(chan struct{})
	go func() { p.Park(); close(done) }()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("pre-posted unpark was lost")
	}
}

func TestParkerAtMostOnePending(t *testing.T) {
	var p Parker
	p.Init()
	p.Unpark()
	p.Unpark()
	p.Unpark()
	p.Park() // consumes the single pending signal
	select {
	case <-p.ch:
		t.Fatal("more than one signal was pending")
	default:
	}
}

func TestParkerDrain(t *testing.T) {
	var p Parker
	p.Init()
	p.Unpark()
	p.Drain()
	if !p.ParkRescue(time.Millisecond) {
		return // timed out: the drained signal was gone, as intended
	}
	t.Fatal("drained signal was still delivered")
}

func TestParkRescueTimesOut(t *testing.T) {
	var p Parker
	p.Init()
	start := time.Now()
	if p.ParkRescue(5 * time.Millisecond) {
		t.Fatal("ParkRescue reported a signal; none was posted")
	}
	if time.Since(start) < 5*time.Millisecond {
		t.Fatal("ParkRescue returned before the rescue interval")
	}
	// The timer must be reusable after firing.
	p.Unpark()
	if !p.ParkRescue(time.Second) {
		t.Fatal("reused ParkRescue missed a pending signal")
	}
}

func TestUnparkOnZeroParkerIsNoop(t *testing.T) {
	var p Parker
	p.Unpark() // no Init: must not panic or count
}

func TestAwaitFlagSpinPath(t *testing.T) {
	var p Parker
	p.Init()
	var done atomic.Bool
	done.Store(true)
	if r := p.AwaitFlag(&done, 8, time.Second); r != 0 {
		t.Fatalf("spin-path await reported %d rescues", r)
	}
}

func TestAwaitFlagParkPath(t *testing.T) {
	var p Parker
	p.Init()
	var done atomic.Bool
	go func() {
		time.Sleep(2 * time.Millisecond)
		done.Store(true) // flag before signal: the required ordering
		p.Unpark()
	}()
	p.AwaitFlag(&done, 0, time.Second)
	if !done.Load() {
		t.Fatal("AwaitFlag returned before the flag was set")
	}
}

func TestAwaitFlagRescuesLostWakeup(t *testing.T) {
	var p Parker
	p.Init()
	var done atomic.Bool
	go func() {
		time.Sleep(2 * time.Millisecond)
		done.Store(true)
		// No Unpark: simulate a waker that died after setting the flag.
	}()
	if r := p.AwaitFlag(&done, 0, 5*time.Millisecond); r == 0 {
		t.Fatal("missed wakeup was not recovered via rescue")
	}
}

func TestUnparkLostWakeupFault(t *testing.T) {
	faultinject.LockLostWakeup.Arm(faultinject.Config{Probability: 1, MaxFires: 1})
	defer faultinject.LockLostWakeup.Disarm()
	var p Parker
	p.Init()
	p.Unpark() // dropped by the fault
	select {
	case <-p.ch:
		t.Fatal("lost-wakeup fault did not drop the signal")
	default:
	}
	p.Unpark() // MaxFires exhausted: delivered
	select {
	case <-p.ch:
	default:
		t.Fatal("signal after fault exhaustion was not delivered")
	}
}

func TestBackoffCountsYields(t *testing.T) {
	before := Snapshot().Yields
	for i := 0; i < 4*spinSaturatedIters; i++ {
		Backoff(i)
	}
	if got := Snapshot().Yields - before; got == 0 {
		t.Fatal("saturated backoff performed no yields")
	}
	// The fast band must be yield-free.
	before = Snapshot().Yields
	for i := 0; i < spinFastIters; i++ {
		Backoff(i)
	}
	if got := Snapshot().Yields - before; got != 0 {
		t.Fatalf("fast spin band yielded %d times", got)
	}
}
