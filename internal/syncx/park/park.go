// Package park is the adaptive spin-then-park waiter primitive shared
// by the blocking lock slow paths (ShflLock's parking mode, RWSem's
// wait queues) and re-exported through internal/syncx.
//
// A Parker is a reusable, single-waiter handoff cell: Unpark posts an
// at-most-one pending signal, Park consumes it or blocks. Posting
// before parking is therefore never lost — the lost-wakeup hazard of
// bare channel/condvar handoffs — and a missed signal (dropped by fault
// injection or a crashed waker) costs at most one rescue interval,
// because parked waits always carry a watchdog timer.
//
// The package lives below internal/locks (not in syncx itself, which
// imports locks) so the lock implementations can use it; it owns the
// park-path fault-injection hooks and the process-wide spin/park
// counters the telemetry layer exports.
package park

import (
	"runtime"
	"sync/atomic"
	"time"

	"concord/internal/faultinject"
)

// Process-wide waiter statistics (exported to obs as concord_park_*).
// They are updated on wait paths only — a waiter is off the critical
// path by definition — and sampled, not exact, on the spin counter: one
// increment per yield, not per re-check iteration, so the fast
// iterations stay free of shared-cacheline traffic.
var (
	statYields  atomic.Int64
	statParks   atomic.Int64
	statUnparks atomic.Int64
	statRescues atomic.Int64
)

// Stats is a snapshot of the process-wide waiter counters.
type Stats struct {
	// Yields counts scheduler yields performed inside spin phases.
	Yields int64
	// Parks counts blocking park operations (timer-guarded channel waits).
	Parks int64
	// Unparks counts wakeup signals posted.
	Unparks int64
	// Rescues counts parked waits that timed out and found their
	// condition already satisfied — i.e. recovered missed wakeups.
	Rescues int64
}

// Snapshot returns the current process-wide waiter counters.
func Snapshot() Stats {
	return Stats{
		Yields:  statYields.Load(),
		Parks:   statParks.Load(),
		Unparks: statUnparks.Load(),
		Rescues: statRescues.Load(),
	}
}

// CountRescue records one recovered missed wakeup. Callers invoke it
// when a rescue-timed park returns and the awaited condition turns out
// to have been satisfied without a signal.
func CountRescue() { statRescues.Add(1) }

// Spin phase shape: the first spinFastIters re-checks are free (a queue
// handoff in flight resolves faster than a yield costs), then yields
// are interleaved with geometrically growing frequency until, past
// spinSaturatedIters, every iteration yields — the bounded exponential
// backoff that keeps a saturated host scheduling the lock holder
// instead of its waiters.
const (
	spinFastIters      = 8
	spinSaturatedIters = 128
)

// Backoff performs the i-th iteration of an adaptive spin wait. It is
// the successor of the flat every-4th-iteration yield the spin locks
// used: cheap immediate re-checks first, then increasingly frequent
// cooperative yields, so it stays live on any GOMAXPROCS including 1.
func Backoff(i int) {
	if i < spinFastIters {
		return
	}
	// Yield on iteration counts 8,12,16,24,32,48,64,96,128 — roughly
	// ×1.5 spacing — then on every iteration once saturated.
	if i >= spinSaturatedIters || i&(nextPow2Mask(i)>>2) == 0 {
		statYields.Add(1)
		runtime.Gosched()
	}
}

// nextPow2Mask returns a mask of the highest set bit's power-of-two
// band for i >= 8 (used to space yields geometrically).
func nextPow2Mask(i int) int {
	m := 8
	for m <= i {
		m <<= 1
	}
	return m - 1
}

// Parker is a one-waiter handoff cell. The zero value is usable for
// waiters that only spin; Init (or the first Prepare) allocates the
// channel a blocking wait needs. A Parker must not be shared by two
// concurrent waiters; any number of goroutines may Unpark it.
type Parker struct {
	// ch carries the pending signal; cap 1 so one posted wakeup is
	// remembered across the post/park race. Written once by Init before
	// the Parker is published to wakers, then immutable — so reuse of a
	// pooled Parker never races an in-flight Unpark.
	ch chan struct{}

	// timer is the rescue watchdog, allocated on first parked wait and
	// reused via Reset so the steady-state park path is allocation-free.
	// Owner-goroutine only.
	timer *time.Timer
}

// Init allocates the signal channel if absent. Call before publishing
// the Parker to potential wakers; subsequent Inits are no-ops.
func (p *Parker) Init() {
	if p.ch == nil {
		p.ch = make(chan struct{}, 1)
	}
}

// Drain clears any stale pending signal, so a pooled Parker starts its
// next wait without a wakeup left over from a previous life. A stale
// signal is harmless even undrained — consumers re-check their
// condition — but draining keeps park counts meaningful.
func (p *Parker) Drain() {
	select {
	case <-p.ch:
	default:
	}
}

// Park blocks until a signal is posted (or consumes one already
// pending). Prefer ParkRescue: an unbounded park turns a missed wakeup
// into a hang.
func (p *Parker) Park() {
	statParks.Add(1)
	<-p.ch
}

// ParkRescue blocks until a signal arrives or the rescue interval d
// elapses. It reports whether a signal was consumed; false means the
// watchdog fired and the caller must re-check its condition — the
// missed-wakeup recovery path. The rescue timer is reused across calls
// (Go 1.23+ timer semantics make Stop/Reset safe without draining).
func (p *Parker) ParkRescue(d time.Duration) bool {
	statParks.Add(1)
	if p.timer == nil {
		p.timer = time.NewTimer(d)
	} else {
		p.timer.Reset(d)
	}
	select {
	case <-p.ch:
		p.timer.Stop()
		return true
	case <-p.timer.C:
		return false
	}
}

// Unpark posts a wakeup: at most one signal stays pending, and posting
// to a Parker nobody ever parks on is harmless. The injected handoff
// faults live here (nil-checks when disarmed) so every parking lock
// inherits them: a lost wakeup drops the signal entirely — the rescue
// watchdog must restore liveness — and a park delay stretches the
// handoff.
func (p *Parker) Unpark() {
	if p.ch == nil {
		return
	}
	statUnparks.Add(1)
	if faultinject.LockLostWakeup.Enabled() {
		if _, ok := faultinject.LockLostWakeup.Fire(); ok {
			return
		}
	}
	if faultinject.LockParkDelay.Enabled() {
		if flt, ok := faultinject.LockParkDelay.Fire(); ok && flt.Delay > 0 {
			time.Sleep(flt.Delay)
		}
	}
	select {
	case p.ch <- struct{}{}:
	default:
	}
}

// AwaitFlag is the composed adaptive wait: spin on done with bounded
// exponential backoff for up to spinBudget iterations, then park with
// the rescue watchdog until done is set. The waker must set done
// *before* calling Unpark — that ordering is what makes the handoff
// immune to both lost and stale wakeups. Returns how many rescue
// timeouts found done already set (missed wakeups recovered).
func (p *Parker) AwaitFlag(done *atomic.Bool, spinBudget int, rescue time.Duration) (rescued int) {
	for i := 0; i < spinBudget; i++ {
		if done.Load() {
			return 0
		}
		Backoff(i)
	}
	for !done.Load() {
		if !p.ParkRescue(rescue) && done.Load() {
			CountRescue()
			return 1
		}
	}
	return 0
}
