package syncx

import "concord/internal/syncx/park"

// Parker is the adaptive spin-then-park waiter primitive: bounded
// exponential spin, then a rescue-timer-guarded park with
// lost-wakeup-safe handoff. It is implemented in the leaf package
// internal/syncx/park (which sits below internal/locks so the blocking
// lock slow paths can use it too) and re-exported here as the package's
// public face.
type Parker = park.Parker

// ParkStats is a snapshot of the process-wide spin/park counters.
type ParkStats = park.Stats

// ParkSnapshot returns the process-wide spin/park counters.
func ParkSnapshot() ParkStats { return park.Snapshot() }

// SpinBackoff performs the i-th iteration of an adaptive spin wait:
// free re-checks first, then geometrically more frequent scheduler
// yields until every iteration yields.
func SpinBackoff(i int) { park.Backoff(i) }
