package syncx

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"concord/internal/locks"
	"concord/internal/task"
	"concord/internal/topology"
)

func topo() *topology.Topology { return topology.New(2, 4) }

func TestSeqLockReadersSeeConsistentPairs(t *testing.T) {
	tp := topo()
	s := NewSeqLock(locks.NewShflLock("seq"))
	// Writers keep a and b equal; readers must never observe a != b.
	var a, b int64
	var wg sync.WaitGroup
	stop := make(chan struct{})

	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tk := task.New(tp)
			for i := int64(1); ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				s.WriteLock(tk)
				atomic.StoreInt64(&a, i)
				runtime.Gosched() // widen the torn window
				atomic.StoreInt64(&b, i)
				s.WriteUnlock(tk)
			}
		}()
	}
	var readers sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		readers.Add(1)
		go func() {
			defer wg.Done()
			defer readers.Done()
			for i := 0; i < 2000; i++ {
				var ga, gb int64
				s.Read(func() {
					ga = atomic.LoadInt64(&a)
					gb = atomic.LoadInt64(&b)
				})
				if ga != gb {
					t.Errorf("torn read: a=%d b=%d", ga, gb)
					return
				}
			}
		}()
	}
	// Writers run exactly as long as the readers need them: stop when the
	// last fixed-count reader finishes, with no wall-clock grace period.
	readers.Wait()
	close(stop)
	wg.Wait()
	if s.Retries() == 0 {
		t.Log("no retries observed (low contention run)")
	}
}

func TestSeqLockRetrySemantics(t *testing.T) {
	tp := topo()
	s := NewSeqLock(locks.NewTASLock("w"))
	tk := task.New(tp)
	seq := s.ReadBegin()
	if s.ReadRetry(seq) {
		t.Fatal("spurious retry")
	}
	s.WriteLock(tk)
	s.WriteUnlock(tk)
	if !s.ReadRetry(seq) {
		t.Fatal("write not detected")
	}
	if s.Retries() != 1 {
		t.Errorf("Retries = %d", s.Retries())
	}
}

func TestSeqLockReadBeginSkipsWriter(t *testing.T) {
	tp := topo()
	s := NewSeqLock(locks.NewTASLock("w"))
	tk := task.New(tp)
	s.WriteLock(tk)
	done := make(chan uint64, 1)
	go func() { done <- s.ReadBegin() }()
	select {
	case <-done:
		t.Fatal("ReadBegin returned during a write")
	case <-time.After(10 * time.Millisecond):
	}
	s.WriteUnlock(tk)
	select {
	case seq := <-done:
		if seq&1 != 0 {
			t.Errorf("odd sequence %d returned", seq)
		}
	case <-time.After(time.Second):
		t.Fatal("ReadBegin stuck after write ended")
	}
}

func TestSeqLockPolicyAttachesToWriteSide(t *testing.T) {
	// The §6 extension claim: Concord instruments a seqlock through its
	// write-side lock without any seqlock-specific support.
	tp := topo()
	inner := locks.NewShflLock("seqw")
	var acquired atomic.Int64
	inner.HookSlot().Replace("prof", &locks.Hooks{
		Name:       "prof",
		OnAcquired: func(*locks.Event) { acquired.Add(1) },
	})
	s := NewSeqLock(inner)
	tk := task.New(tp)
	for i := 0; i < 5; i++ {
		s.WriteLock(tk)
		s.WriteUnlock(tk)
	}
	if acquired.Load() != 5 {
		t.Errorf("hook saw %d write acquisitions, want 5", acquired.Load())
	}
	if s.WriteSide() != locks.Lock(inner) {
		t.Error("WriteSide identity lost")
	}
}

func TestRCUReadersNeverBlock(t *testing.T) {
	r := NewRCU()
	tok := r.ReadLock()
	tok2 := r.ReadLock() // nesting
	r.ReadUnlock(tok2)
	r.ReadUnlock(tok)
	// Synchronize with no readers returns immediately.
	done := make(chan struct{})
	go func() { r.Synchronize(); close(done) }()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("Synchronize hung with no readers")
	}
	if r.GracePeriods() != 1 {
		t.Errorf("GracePeriods = %d", r.GracePeriods())
	}
}

func TestRCUSynchronizeWaitsForReaders(t *testing.T) {
	r := NewRCU()
	tok := r.ReadLock()
	done := make(chan struct{})
	go func() { r.Synchronize(); close(done) }()
	select {
	case <-done:
		t.Fatal("Synchronize returned with a reader inside")
	case <-time.After(20 * time.Millisecond):
	}
	r.ReadUnlock(tok)
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("Synchronize never completed")
	}
}

func TestRCUCallbacksRunAfterGracePeriod(t *testing.T) {
	r := NewRCU()
	var ran atomic.Int64
	r.Call(func() { ran.Add(1) })
	r.Call(func() { ran.Add(1) })
	if ran.Load() != 0 {
		t.Fatal("callback ran before grace period")
	}
	r.Synchronize()
	if ran.Load() != 2 {
		t.Fatalf("callbacks ran %d times, want 2", ran.Load())
	}
	// Second synchronize: nothing queued, nothing re-run.
	r.Synchronize()
	if ran.Load() != 2 {
		t.Error("callbacks re-ran")
	}
}

func TestRCUPointerSwapUseCase(t *testing.T) {
	// The canonical RCU pattern: readers follow a pointer, the writer
	// swaps and reclaims the old value after a grace period.
	type config struct{ version int64 }
	r := NewRCU()
	var ptr atomic.Pointer[config]
	ptr.Store(&config{version: 1})

	var wg sync.WaitGroup
	stop := make(chan struct{})
	var maxSeen atomic.Int64
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				tok := r.ReadLock()
				v := ptr.Load().version
				if v <= 0 {
					t.Error("reader saw reclaimed config")
				}
				for {
					m := maxSeen.Load()
					if v <= m || maxSeen.CompareAndSwap(m, v) {
						break
					}
				}
				r.ReadUnlock(tok)
				runtime.Gosched()
			}
		}()
	}
	// Make sure the readers are actually running before updates start
	// (on a single CPU they may not have been scheduled yet).
	for maxSeen.Load() == 0 {
		runtime.Gosched()
	}
	for v := int64(2); v <= 20; v++ {
		old := ptr.Swap(&config{version: v})
		r.Synchronize()
		old.version = -1 // "reclaim": readers must no longer see it
		// Lock-step with the readers so every version is observed even
		// under a single-CPU cooperative schedule.
		for maxSeen.Load() < v {
			runtime.Gosched()
		}
	}
	close(stop)
	wg.Wait()
	if maxSeen.Load() < 2 {
		t.Error("readers never observed an update")
	}
}

func TestRCUUnbalancedUnlockPanics(t *testing.T) {
	r := NewRCU()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	r.ReadUnlock(0)
}

func TestWaitQueueBasic(t *testing.T) {
	q := NewWaitQueue()
	var flag atomic.Bool
	done := make(chan struct{})
	go func() {
		q.Wait(func() bool { return flag.Load() })
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("Wait returned before condition")
	case <-time.After(10 * time.Millisecond):
	}
	flag.Store(true)
	q.WakeAll()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("Wait never woke")
	}
}

func TestWaitQueueImmediateCondition(t *testing.T) {
	q := NewWaitQueue()
	q.Wait(func() bool { return true }) // must not block
	if q.Waiters() != 0 {
		t.Errorf("Waiters = %d", q.Waiters())
	}
}

func TestWaitQueueWakeOne(t *testing.T) {
	q := NewWaitQueue()
	var permits atomic.Int64
	const n = 4
	var done atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			q.Wait(func() bool {
				for {
					p := permits.Load()
					if p <= 0 {
						return false
					}
					if permits.CompareAndSwap(p, p-1) {
						return true
					}
				}
			})
			done.Add(1)
		}()
	}
	// Wait until all are parked.
	deadline := time.Now().Add(2 * time.Second)
	for q.Waiters() < n && time.Now().Before(deadline) {
		runtime.Gosched()
	}
	for i := 0; i < n; i++ {
		permits.Add(1)
		q.WakeOne()
		for done.Load() < int64(i+1) && time.Now().Before(deadline) {
			runtime.Gosched()
			// A WakeOne may hit a waiter whose condition claim lost the
			// race; nudge the rest.
			if q.Waiters() > 0 && permits.Load() > 0 {
				q.WakeAll()
			}
		}
	}
	wg.Wait()
	if done.Load() != n {
		t.Errorf("done = %d, want %d", done.Load(), n)
	}
}

func TestWaitQueueLostWakeupRace(t *testing.T) {
	// The classic check-then-sleep race: the waker fires between the
	// condition check and the registration; Wait's post-register
	// re-check must catch it. Hammer it.
	for i := 0; i < 200; i++ {
		q := NewWaitQueue()
		var flag atomic.Bool
		done := make(chan struct{})
		go func() {
			q.Wait(func() bool { return flag.Load() })
			close(done)
		}()
		flag.Store(true)
		q.WakeAll()
		select {
		case <-done:
		case <-time.After(2 * time.Second):
			t.Fatalf("iteration %d: lost wakeup", i)
		}
	}
}
