package experiments

import (
	"testing"

	"concord/internal/locks"
	"concord/internal/topology"
	"concord/internal/workloads"
)

// runOCCReadHeavy measures the occ_read_heavy workload once with the
// tier forced to the given mode.
func runOCCReadHeavy(mode locks.OCCMode, measureAlloc bool) workloads.Result {
	l := locks.NewRWSem("occ-gate")
	l.OCCSetMode(mode)
	return workloads.RunOCCReadHeavy(l, topology.Paper(), workloads.OCCReadHeavyConfig{
		Workers: 8, OpsPerWorker: 20_000, MeasureAlloc: measureAlloc,
	})
}

// TestOCCReadHeavySpeedup is the acceptance gate for the optimistic
// read tier: on the read-dominated mix, sequence-validated speculation
// must beat the pessimistic read lock by at least 1.5×. Best-of-3 on
// each side absorbs scheduler noise on loaded CI hosts; the real ratio
// is well above the gate.
func TestOCCReadHeavySpeedup(t *testing.T) {
	best := func(mode locks.OCCMode) float64 {
		var b float64
		for i := 0; i < 3; i++ {
			if v := runOCCReadHeavy(mode, false).OpsPerMSec(); v > b {
				b = v
			}
		}
		return b
	}
	off := best(locks.OCCOff)
	on := best(locks.OCCOn)
	if off <= 0 || on <= 0 {
		t.Fatalf("degenerate measurement: off=%.1f on=%.1f", off, on)
	}
	ratio := on / off
	t.Logf("occ_read_heavy: pessimistic=%.0f ops/ms, speculative=%.0f ops/ms, speedup=%.2fx", off, on, ratio)
	if ratio < 1.5 {
		t.Errorf("OCC speedup %.2fx below the 1.5x acceptance floor", ratio)
	}
}

// TestOCCReadHeavyZeroAllocs pins the other half of the contract: the
// speculative read path allocates nothing in steady state.
func TestOCCReadHeavyZeroAllocs(t *testing.T) {
	if r := runOCCReadHeavy(locks.OCCOn, true); r.AllocsPerOp != 0 {
		t.Errorf("speculative read path allocates %.4f/op, want 0", r.AllocsPerOp)
	}
}
