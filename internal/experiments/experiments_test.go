package experiments

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"concord/internal/ksim"
	"concord/internal/topology"
)

// The experiment tests assert the paper's qualitative claims — who wins,
// roughly by how much, where curves flatten — not absolute numbers.

func value(pts []Point, series string, threads int) float64 {
	for _, p := range pts {
		if p.Series == series && p.Threads == threads {
			return p.Value
		}
	}
	return -1
}

func TestFigure2aShape(t *testing.T) {
	pts := Figure2a([]int{1, 10, 80})
	stock1, stock80 := value(pts, "Stock", 1), value(pts, "Stock", 80)
	bravo80 := value(pts, "BRAVO", 80)
	concord80 := value(pts, "Concord-BRAVO", 80)

	// Stock rwsem must not scale across sockets.
	if stock80 > stock1*4 {
		t.Errorf("Stock scaled 1→80: %.0f → %.0f", stock1, stock80)
	}
	// BRAVO must clearly beat Stock at scale (paper: ~an order).
	if bravo80 < stock80*3 {
		t.Errorf("BRAVO %.0f not clearly above Stock %.0f at 80 threads", bravo80, stock80)
	}
	// Concord-BRAVO tracks BRAVO within a few percent.
	if concord80 < bravo80*0.90 || concord80 > bravo80*1.02 {
		t.Errorf("Concord-BRAVO %.0f vs BRAVO %.0f: overhead out of band", concord80, bravo80)
	}
}

func TestFigure2bShape(t *testing.T) {
	pts := Figure2b([]int{1, 10, 80})
	stock80 := value(pts, "Stock", 80)
	shfl80 := value(pts, "ShflLock", 80)
	concord80 := value(pts, "Concord-ShflLock", 80)

	// ShflLock's NUMA batching must clearly beat FIFO qspinlock at 80
	// threads (paper shows roughly 3×).
	if shfl80 < stock80*1.5 {
		t.Errorf("ShflLock %.0f not clearly above Stock %.0f", shfl80, stock80)
	}
	// Concord-ShflLock (real cBPF policy) tracks the pre-compiled lock.
	if concord80 < shfl80*0.85 || concord80 > shfl80*1.02 {
		t.Errorf("Concord-ShflLock %.0f vs ShflLock %.0f out of band", concord80, shfl80)
	}
}

func TestFigure2cSimShape(t *testing.T) {
	pts := Figure2cSim([]int{1, 10, 40, 80})
	for _, p := range pts {
		// Paper: worst-case ~20% slowdown; never faster than baseline by
		// more than noise.
		if p.Value < 0.75 || p.Value > 1.05 {
			t.Errorf("normalized throughput at %d threads = %.3f, want [0.75, 1.05]", p.Threads, p.Value)
		}
	}
}

func TestFigure2cRealSmall(t *testing.T) {
	// Real-lock variant at reduced scale (full sweep is the bench's
	// job). Overhead band is loose: a 1-CPU CI host adds noise.
	pts := Figure2cReal([]int{2, 4}, 400)
	for _, p := range pts {
		if p.Value <= 0.2 || p.Value > 2.5 {
			t.Errorf("normalized throughput at %d threads = %.3f looks broken", p.Threads, p.Value)
		}
	}
}

func TestShufflePolicyAblation(t *testing.T) {
	pts := ShufflePolicyAblation(80)
	fifo := value(pts, "fifo", 80)
	numa := value(pts, "numa", 80)
	cbpf := value(pts, "numa-cbpf", 80)
	if numa < fifo*1.3 {
		t.Errorf("NUMA policy %.0f not clearly above FIFO %.0f", numa, fifo)
	}
	// The cBPF policy makes the same decisions: same simulated
	// throughput (shuffling is off the critical path).
	if diff := cbpf/numa - 1; diff < -0.02 || diff > 0.02 {
		t.Errorf("cBPF NUMA %.0f diverges from native NUMA %.0f", cbpf, numa)
	}
}

func TestCBPFNumaCmpDecisions(t *testing.T) {
	cmp := CBPFNumaCmp()
	procAt := func(cpu int) *ksim.Proc {
		return &ksim.Proc{CPU: cpu, Socket: topology.Paper().SocketOf(cpu)}
	}
	same := cmp(procAt(0), procAt(5))   // same socket
	cross := cmp(procAt(0), procAt(15)) // different socket
	if !same || cross {
		t.Errorf("cBPF cmp: same=%v cross=%v, want true/false", same, cross)
	}
}

func TestWriteCSVAndRenderTable(t *testing.T) {
	pts := []Point{
		{"f2b", "Stock", 1, 10}, {"f2b", "Stock", 80, 5},
		{"f2b", "ShflLock", 1, 10}, {"f2b", "ShflLock", 80, 15},
	}
	var csv bytes.Buffer
	if err := WriteCSV(&csv, pts); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(csv.String(), "f2b,ShflLock,80,15.000") {
		t.Errorf("csv:\n%s", csv.String())
	}
	var tbl bytes.Buffer
	if err := RenderTable(&tbl, pts); err != nil {
		t.Fatal(err)
	}
	out := tbl.String()
	for _, want := range []string{"== f2b ==", "Stock", "ShflLock", "80"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}

func TestSubversionSim(t *testing.T) {
	fifo := SubversionSim(6, 4, false)
	scl := SubversionSim(6, 4, true)
	if fifo.MiceOps == 0 || scl.MiceOps == 0 {
		t.Fatalf("mice starved: fifo=%+v scl=%+v", fifo, scl)
	}
	// The occupancy policy must cut the mice's mean wait substantially
	// (they overtake queued hogs) without starving the hogs.
	if scl.MiceWaitMean > fifo.MiceWaitMean*0.7 {
		t.Errorf("SCL mice wait %.0fns not clearly below FIFO %.0fns",
			scl.MiceWaitMean, fifo.MiceWaitMean)
	}
	if scl.HogOps == 0 {
		t.Error("hogs starved under SCL")
	}
	if scl.MiceOps < fifo.MiceOps {
		t.Errorf("SCL reduced mice ops: %d < %d", scl.MiceOps, fifo.MiceOps)
	}
}

func TestAMPSim(t *testing.T) {
	fifo := AMPSim(8, 8, false)
	amp := AMPSim(8, 8, true)
	if fifo.Ops == 0 || amp.Ops == 0 {
		t.Fatalf("no progress: fifo=%+v amp=%+v", fifo, amp)
	}
	// The AMP policy must raise total throughput (fast cores drain the
	// lock faster) without starving the little cores.
	if float64(amp.Ops) < float64(fifo.Ops)*1.15 {
		t.Errorf("AMP policy gained too little: %d vs %d ops", amp.Ops, fifo.Ops)
	}
	if amp.LittleStarve {
		t.Error("AMP policy starved a little core despite the bypass budget")
	}
	if amp.BigOps <= amp.LittleOps {
		t.Errorf("AMP policy did not favour big cores: big=%d little=%d", amp.BigOps, amp.LittleOps)
	}
}

func TestWriteBenchJSON(t *testing.T) {
	dir := t.TempDir()
	pts := []Point{
		{Experiment: "F2a", Series: "shfllock", Threads: 1, Value: 100},
		{Experiment: "F2a", Series: "shfllock", Threads: 8, Value: 450},
		{Experiment: "F2a", Series: "qspinlock", Threads: 8, Value: 300},
		{Experiment: "F2b", Series: "shfllock", Threads: 4, Value: 77.5},
	}
	paths, err := WriteBenchJSON(dir, pts)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 {
		t.Fatalf("wrote %d files, want 2: %v", len(paths), paths)
	}
	if filepath.Base(paths[0]) != "BENCH_F2a.json" || filepath.Base(paths[1]) != "BENCH_F2b.json" {
		t.Errorf("file names: %v", paths)
	}

	data, err := os.ReadFile(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	var f struct {
		Experiment string `json:"experiment"`
		Points     []struct {
			Series  string  `json:"series"`
			Threads int     `json:"threads"`
			Value   float64 `json:"value"`
		} `json:"points"`
	}
	if err := json.Unmarshal(data, &f); err != nil {
		t.Fatalf("BENCH_F2a.json does not parse: %v", err)
	}
	if f.Experiment != "F2a" || len(f.Points) != 3 {
		t.Fatalf("file contents: %+v", f)
	}
	// Run order preserved within the experiment.
	if f.Points[0].Series != "shfllock" || f.Points[0].Threads != 1 || f.Points[0].Value != 100 {
		t.Errorf("first point: %+v", f.Points[0])
	}
	if f.Points[2].Series != "qspinlock" || f.Points[2].Value != 300 {
		t.Errorf("third point: %+v", f.Points[2])
	}
	if data[len(data)-1] != '\n' {
		t.Error("JSON file missing trailing newline")
	}
}

func TestWriteBenchJSONEmpty(t *testing.T) {
	paths, err := WriteBenchJSON(t.TempDir(), nil)
	if err != nil || len(paths) != 0 {
		t.Errorf("empty input: paths=%v err=%v", paths, err)
	}
}
