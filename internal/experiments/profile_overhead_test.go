package experiments

import (
	"testing"

	"concord/internal/locks"
	"concord/internal/profile"
	"concord/internal/topology"
	"concord/internal/workloads"
)

// Same-process A/B for the continuous-profiling overhead acceptance
// gate: the profiled and unprofiled variants run interleaved under one
// `go test -bench ProfileOverhead` invocation, so host-load drift that
// swamps back-to-back lockbench sweeps cancels out. Compare with
// benchstat, or eyeball ns/op:
//
//	go test -bench ProfileOverhead -count 5 ./internal/experiments/
func benchProfiledHashTable(b *testing.B, cp *profile.Continuous) {
	topo := topology.Paper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l := locks.NewShflLock("bench-overhead")
		if cp != nil {
			l.HookSlot().Replace("cprofile", cp.Hooks("bench-overhead"))
		}
		workloads.RunHashTable(l, topo, workloads.HashTableConfig{
			Workers: 8, OpsPerWorker: 500,
		})
	}
}

func BenchmarkProfileOverheadOff(b *testing.B) {
	benchProfiledHashTable(b, nil)
}

func BenchmarkProfileOverheadDisarmed(b *testing.B) {
	cp := profile.NewContinuous(profile.ContinuousConfig{})
	benchProfiledHashTable(b, cp)
}

func BenchmarkProfileOverheadDefaultRate(b *testing.B) {
	cp := profile.NewContinuous(profile.ContinuousConfig{})
	cp.SetEnabled(true)
	benchProfiledHashTable(b, cp)
}

func BenchmarkProfileOverheadRate1(b *testing.B) {
	cp := profile.NewContinuous(profile.ContinuousConfig{SampleRate: 1})
	cp.SetEnabled(true)
	benchProfiledHashTable(b, cp)
}
