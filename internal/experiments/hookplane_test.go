package experiments

import "testing"

// TestHookPlaneJITSpeedup is the acceptance gate for the JIT closure
// tier on the profiled-shuffler cell: the lowered closure must beat
// the interpreter by at least 1.5× on the same hook-fire work, and it
// must not allocate. Best-of-3 on each side absorbs scheduler noise on
// loaded CI hosts; the real ratio is well above the gate.
func TestHookPlaneJITSpeedup(t *testing.T) {
	const ops = 200_000
	best := func(fire HookFire) float64 {
		var b float64
		for i := 0; i < 3; i++ {
			if v := HookPlaneOpsPerMSec(fire, ops); v > b {
				b = v
			}
		}
		return b
	}
	vm := best(HookPlaneFire("vm"))
	jit := best(HookPlaneFire("jit"))
	if vm <= 0 || jit <= 0 {
		t.Fatalf("degenerate measurement: vm=%.1f jit=%.1f", vm, jit)
	}
	ratio := jit / vm
	t.Logf("hook_plane: vm=%.0f ops/ms, jit=%.0f ops/ms, speedup=%.2fx", vm, jit, ratio)
	if ratio < 1.5 {
		t.Errorf("JIT speedup %.2fx below the 1.5x acceptance floor", ratio)
	}
}

// TestHookPlaneJITZeroAllocs pins the other half of the contract: a
// JIT hook fire performs no heap allocation in steady state.
func TestHookPlaneJITZeroAllocs(t *testing.T) {
	if a := HookPlaneAllocsPerOp(HookPlaneFire("jit"), 4096); a != 0 {
		t.Errorf("JIT hook fire allocates %.4f/op, want 0", a)
	}
}

// TestHookPlaneJITToggle pins the -jit=off ablation: with the tier
// disabled, the "jit" cell falls back to the interpreter (no closure
// is compiled), and re-enabling restores it.
func TestHookPlaneJITToggle(t *testing.T) {
	SetJIT(false)
	defer SetJIT(true)
	fire := HookPlaneFire("jit")
	// Interpreter fallback still computes the same decisions.
	if !fire(2, 2) || fire(1, 2) {
		t.Error("ablation closure decisions wrong")
	}
	if a := HookPlaneAllocsPerOp(fire, 512); a == 0 {
		t.Log("interpreter path also reads 0 allocs/op on this host")
	}
}
