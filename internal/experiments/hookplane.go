package experiments

import (
	"runtime"
	"time"

	"concord/internal/policy"
	"concord/internal/policy/jit"
)

// This file is the wall-clock microbenchmark of the hook dispatch
// plane: the profiled-shuffler cmp_node policy (context fill + program
// execution + a map_add on every fire) measured end to end through the
// interpreter and through the JIT closure tier. The ksim cells in the
// regression matrix run in virtual time, so policy execution cost is
// invisible there by construction; these cells are where the JIT tier's
// speedup (and its zero-allocation contract) is actually measured.

// jitEnabled gates whether the cBPF wrappers and the hook-plane cells
// execute policies through the JIT closure tier. lockbench -jit=off
// flips it for ablation runs, turning the hook-jit cell into a second
// interpreter measurement so the regression gate surfaces the delta.
var jitEnabled = true

// SetJIT toggles the JIT tier for subsequently built policy closures.
func SetJIT(on bool) { jitEnabled = on }

// execClosure returns the fastest available executor for a verified
// program honoring the JIT toggle: the lowered closure when the tier
// is on and the program lowers, else the interpreter.
func execClosure(prog *policy.Program) policy.CompiledFn {
	if jitEnabled {
		if fn, err := jit.Compile(prog); err == nil {
			return fn
		}
	}
	return func(ctx *policy.Ctx, env policy.Env) (uint64, error) {
		return policy.Exec(prog, ctx, env)
	}
}

// HookFire is one hook-plane operation: fill a cmp_node context with
// the shuffler's and candidate's sockets and run the policy, the same
// work the adapter does per shuffler examination.
type HookFire func(shufflerSocket, currSocket uint64) bool

// HookPlaneFire builds the measured hook closure for one tier:
// "vm" always dispatches through the interpreter, "jit" goes through
// the JIT closure tier (subject to the -jit toggle). Each call builds
// a fresh program and map arena so cells don't share profiling state.
func HookPlaneFire(tier string) HookFire {
	prog := ProfiledNumaCmpProgram(policy.NewHashMap("hookbench-exams", 8, 8, 16))
	layout := policy.LayoutFor(policy.KindCmpNode)
	sSlot := layout.Slot("shuffler_socket")
	cSlot := layout.Slot("curr_socket")
	run := func(ctx *policy.Ctx, env policy.Env) (uint64, error) {
		return policy.Exec(prog, ctx, env)
	}
	if tier == "jit" {
		run = execClosure(prog)
	}
	// The ctx buffer lives in the closure, not the call frame: an
	// indirect CompiledFn call defeats escape analysis, and a
	// heap-allocated ctx per fire would charge both tiers one malloc
	// of pure measurement harness. HookFires are single-threaded.
	ctx := policy.Ctx{Layout: layout, Words: make([]uint64, len(layout.Fields))}
	return func(shufflerSocket, currSocket uint64) bool {
		for i := range ctx.Words {
			ctx.Words[i] = 0
		}
		ctx.Words[sSlot] = shufflerSocket
		ctx.Words[cSlot] = currSocket
		ret, err := run(&ctx, nil)
		return err == nil && ret != 0
	}
}

// HookPlaneOpsPerMSec times ops hook fires and returns throughput.
// Sockets rotate through a small set so both branch outcomes and a few
// map keys stay in play.
func HookPlaneOpsPerMSec(fire HookFire, ops int) float64 {
	start := time.Now()
	for i := 0; i < ops; i++ {
		fire(uint64(i&3), uint64(i&7))
	}
	elapsed := time.Since(start)
	if elapsed <= 0 {
		return 0
	}
	return float64(ops) / (float64(elapsed.Nanoseconds()) / 1e6)
}

// HookPlaneAllocsPerOp brackets a run of hook fires with mallocs
// counters. The JIT tier's contract is 0.00 here — one heap allocation
// per fire would dominate the win at hook frequencies.
func HookPlaneAllocsPerOp(fire HookFire, ops int) float64 {
	// Warm the map arena (first map_add per key allocates the entry).
	for i := 0; i < 64; i++ {
		fire(uint64(i&3), uint64(i&7))
	}
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < ops; i++ {
		fire(uint64(i&3), uint64(i&7))
	}
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / float64(ops)
}
