package experiments

import (
	"fmt"
	"runtime"
	"sync"

	"concord/internal/ksim"
	"concord/internal/locks"
	"concord/internal/perfstat"
	"concord/internal/policy"
	"concord/internal/profile"
	"concord/internal/task"
	"concord/internal/topology"
	"concord/internal/workloads"
)

// This file is the lock × workload regression matrix behind
// `lockbench -regress`: real lock implementations on the hashtable,
// lock2 and page_fault2 workloads, plus the deterministic ksim Figure-2
// sweep at simulated 8/16/80 cores. Each cell is measured perfstat.Runs
// times; real-lock cells also carry a contended allocs/op probe, the
// number the qnode-pooling work drives to zero.

// occMode is the optimistic-tier mode the occ_read_heavy cell forces
// on its lock (`lockbench -occ`). On by default so the shipped baseline
// records the tier's throughput; Off re-measures the same workload
// through the pessimistic read lock — the ablation pair the ≥1.5×
// speedup gate compares.
var occMode = locks.OCCOn

// SetOCC selects the optimistic-tier mode for subsequent RunRegress
// sweeps.
func SetOCC(m locks.OCCMode) { occMode = m }

// RegressConfig shapes one RunRegress sweep.
type RegressConfig struct {
	Runs       int    // repeated measurements per cell (default 5)
	Threads    int    // workers for real-lock cells (default 8)
	Ops        int    // ops per worker for real-lock cells (default 2000)
	SimThreads []int  // simulated core counts (default 8, 16, 80)
	Label      string // recorded in the baseline
	// Profiler, when set, composes its sampling hooks onto every
	// real-lock cell (`lockbench -profile`): the measured numbers then
	// include continuous-profiling overhead, which is exactly what the
	// profile-overhead acceptance gate compares against a baseline.
	Profiler *profile.Continuous
}

// instrument wraps a lock constructor so each fresh lock carries the
// sweep's continuous-profiling hooks; a nil profiler is the identity.
func (c *RegressConfig) instrument(name string, mk func() locks.Lock) func() locks.Lock {
	if c.Profiler == nil {
		return mk
	}
	return func() locks.Lock {
		l := mk()
		if h, ok := l.(locks.Hooked); ok {
			h.HookSlot().Replace("cprofile", c.Profiler.Hooks(name))
		}
		return l
	}
}

func (c *RegressConfig) setDefaults() {
	if c.Runs <= 0 {
		c.Runs = 5
	}
	if c.Threads <= 0 {
		c.Threads = 8
	}
	if c.Ops <= 0 {
		c.Ops = 2000
	}
	if len(c.SimThreads) == 0 {
		c.SimThreads = []int{8, 16, 80}
	}
}

// realLocks is the roster of real lock constructors the matrix measures.
// Fresh instances per run keep profiling counters and queue state from
// leaking between cells.
func realLocks() []struct {
	name string
	mk   func() locks.Lock
} {
	return []struct {
		name string
		mk   func() locks.Lock
	}{
		{"mcs", func() locks.Lock { return locks.NewMCSLock("bench-mcs") }},
		{"clh", func() locks.Lock { return locks.NewCLHLock("bench-clh") }},
		{"qspin", func() locks.Lock { return locks.NewQSpinLock("bench-qspin") }},
		{"cna", func() locks.Lock { return locks.NewCNALock("bench-cna", 0, 0) }},
		{"shfl", func() locks.Lock { return locks.NewShflLock("bench-shfl") }},
		{"shfl-block", func() locks.Lock {
			return locks.NewShflLock("bench-shflb", locks.WithBlocking(true), locks.WithSpinBudget(32))
		}},
	}
}

// RunRegress measures the full matrix and returns it as a baseline.
func RunRegress(cfg RegressConfig) *perfstat.Baseline {
	cfg.setDefaults()
	topo := topology.Paper()
	b := &perfstat.Baseline{
		Label:   cfg.Label,
		Pooling: locks.NodePooling(),
		Runs:    cfg.Runs,
	}

	// Real locks × {hashtable, lock2}.
	for _, rl := range realLocks() {
		mk := cfg.instrument(rl.name, rl.mk)
		allocs := contendedAllocsPerOp(mk, topo, cfg.Threads)
		b.Cells = append(b.Cells, perfstat.Cell{
			Lock: rl.name, Workload: "hashtable", Threads: cfg.Threads,
			AllocsPerOp: allocs,
			OpsPerMSec: perfstat.Measure(cfg.Runs, true, func() float64 {
				return workloads.RunHashTable(mk(), topo, workloads.HashTableConfig{
					Workers: cfg.Threads, OpsPerWorker: cfg.Ops,
				}).OpsPerMSec()
			}),
		})
		b.Cells = append(b.Cells, perfstat.Cell{
			Lock: rl.name, Workload: "lock2", Threads: cfg.Threads,
			AllocsPerOp: allocs,
			OpsPerMSec: perfstat.Measure(cfg.Runs, true, func() float64 {
				return workloads.RunLock2(mk(), topo, workloads.Lock2Config{
					Workers: cfg.Threads, OpsPerWorker: cfg.Ops, CSWork: 16, OutsideWork: 32,
				}).OpsPerMSec()
			}),
		})
	}

	// RWSem × page_fault2 (read-mostly, the Figure 2(a) shape).
	mkSem := cfg.instrument("rwsem", func() locks.Lock { return locks.NewRWSem("bench-rwsem") })
	b.Cells = append(b.Cells, perfstat.Cell{
		Lock: "rwsem", Workload: "page_fault2", Threads: cfg.Threads,
		AllocsPerOp: contendedAllocsPerOp(mkSem, topo, cfg.Threads),
		OpsPerMSec: perfstat.Measure(cfg.Runs, true, func() float64 {
			return workloads.RunPageFault2(mkSem().(locks.RWLock), topo,
				workloads.PageFault2Config{
					Workers: cfg.Threads, FaultsPerWorker: cfg.Ops, WriterEvery: 64,
				}).OpsPerMSec()
		}),
	})

	// Optimistic read tier × read-dominated mix: the same rwsem class as
	// page_fault2, but every read goes through OptRead, so the cell
	// measures what speculation buys over the pessimistic reader path
	// (or, with `-occ off`, what the ablation costs). The alloc probe
	// must read 0.00: a validated speculative section touches no lock
	// word and allocates nothing.
	mkOCC := func() *locks.RWSem {
		l := locks.NewRWSem("bench-occ")
		l.OCCSetMode(occMode)
		return l
	}
	occProbe := workloads.RunOCCReadHeavy(mkOCC(), topo, workloads.OCCReadHeavyConfig{
		Workers: cfg.Threads, OpsPerWorker: cfg.Ops, MeasureAlloc: true,
	})
	b.Cells = append(b.Cells, perfstat.Cell{
		Lock: "rwsem-occ", Workload: "occ_read_heavy", Threads: cfg.Threads,
		AllocsPerOp: occProbe.AllocsPerOp,
		OpsPerMSec: perfstat.Measure(cfg.Runs, true, func() float64 {
			return workloads.RunOCCReadHeavy(mkOCC(), topo, workloads.OCCReadHeavyConfig{
				Workers: cfg.Threads, OpsPerWorker: cfg.Ops * 4,
			}).OpsPerMSec()
		}),
	})

	// Growable map × distinct-key churn: a full 2^20 distinct keys
	// stream through a map preallocated for 1024 entries, live set
	// bounded by a per-worker deletion window. Preallocation alone is
	// off by three orders of magnitude here — the cell only completes
	// because online resize grows the table and folds tombstone
	// compaction into migration. A map error is a harness failure, not
	// a slow cell: no baseline is produced.
	mkChurn := func() policy.Map {
		return policy.NewGrowableHashMap("bench-churn", 8, 8, 1024)
	}
	var churnAllocs float64
	churnRun := func(measureAlloc bool) float64 {
		r, err := workloads.RunMapResizeChurn(mkChurn(), workloads.MapChurnConfig{
			Workers: cfg.Threads, MeasureAlloc: measureAlloc,
		})
		if err != nil {
			panic(fmt.Sprintf("experiments: map_resize_churn failed: %v", err))
		}
		if measureAlloc {
			churnAllocs = r.AllocsPerOp
		}
		return r.OpsPerMSec()
	}
	churnRun(true)
	b.Cells = append(b.Cells, perfstat.Cell{
		Lock: "map-growable", Workload: "map_resize_churn", Threads: cfg.Threads,
		AllocsPerOp: churnAllocs,
		OpsPerMSec: perfstat.Measure(cfg.Runs, true, func() float64 {
			return churnRun(false)
		}),
	})

	// Map data plane × the counting-policy program: the same verified,
	// natively-compiled map_add+map_lookup policy driven against each
	// policy-map kind. These cells measure helper/map overhead on the
	// lock slow path, which is why the allocs probe (steady state, map
	// pre-populated) must read 0.00 for the preallocated kinds.
	for _, mp := range mapPlaneKinds(cfg.Threads) {
		mp := mp
		probe := workloads.RunMapPlane(mp.mk(), workloads.MapPlaneConfig{
			Workers: cfg.Threads, OpsPerWorker: cfg.Ops,
			Keys: mapPlaneKeys, NumCPUs: cfg.Threads, MeasureAlloc: true,
		})
		b.Cells = append(b.Cells, perfstat.Cell{
			Lock: mp.name, Workload: "map_plane", Threads: cfg.Threads,
			AllocsPerOp: probe.AllocsPerOp,
			OpsPerMSec: perfstat.Measure(cfg.Runs, true, func() float64 {
				return workloads.RunMapPlane(mp.mk(), workloads.MapPlaneConfig{
					Workers: cfg.Threads, OpsPerWorker: cfg.Ops * 4,
					Keys: mapPlaneKeys, NumCPUs: cfg.Threads,
				}).OpsPerMSec()
			}),
		})
	}

	// Hook plane × execution tier: real-nanosecond cost of one policy
	// hook fire (ctx fill + profiled-shuffler cmp_node + map_add),
	// interpreter vs JIT closure tier. The ksim cells below run in
	// virtual time where policy cost is invisible by construction;
	// this is the pair the JIT speedup gate compares.
	for _, tier := range []string{"vm", "jit"} {
		fire := HookPlaneFire(tier)
		b.Cells = append(b.Cells, perfstat.Cell{
			Lock: "hook-" + tier, Workload: "hook_plane", Threads: 1,
			AllocsPerOp: HookPlaneAllocsPerOp(fire, 4096),
			OpsPerMSec: perfstat.Measure(cfg.Runs, true, func() float64 {
				return HookPlaneOpsPerMSec(fire, cfg.Ops*50)
			}),
		})
	}

	// ksim Figure-2 sweep: deterministic (seeded discrete-event runs), so
	// any delta against the baseline is a behavioral change in the
	// simulated algorithms or their policies, not noise.
	c := ksim.DefaultCosts()
	cbpf := CBPFNumaCmp()
	cbpfProf := CBPFProfiledNumaCmp(policy.NewHashMap("bench-exams", 8, 8, 16))
	simSeries := []struct {
		lock, workload string
		w              ksim.Workload
		mk             func(e *ksim.Engine) ksim.SimLock
	}{
		{"sim-qspin", "lock2", lock2Sim,
			func(e *ksim.Engine) ksim.SimLock { return ksim.NewSimQspin(e, c) }},
		{"sim-shfl", "lock2", lock2Sim,
			func(e *ksim.Engine) ksim.SimLock { return ksim.NewSimShfl(e, c, nativeNumaCmp, 0) }},
		{"sim-shfl-cbpf", "lock2", lock2Sim,
			func(e *ksim.Engine) ksim.SimLock { return ksim.NewSimShfl(e, c, cbpf, c.DispatchNS) }},
		// The profiled variant runs the map-heavy cmp_node policy on
		// every shuffler examination; the sim result is deterministic
		// regardless of map implementation, so this cell pins policy
		// *behavior* while the map_plane cells above pin its *cost*.
		{"sim-shfl-cbpf-prof", "lock2", lock2Sim,
			func(e *ksim.Engine) ksim.SimLock { return ksim.NewSimShfl(e, c, cbpfProf, c.DispatchNS) }},
		{"sim-rwsem", "page_fault2", pageFault2Sim,
			func(e *ksim.Engine) ksim.SimLock { return ksim.NewSimRWSem(e, c) }},
		{"sim-bravo", "page_fault2", pageFault2Sim,
			func(e *ksim.Engine) ksim.SimLock { return ksim.NewSimBRAVO(e, c, 0) }},
	}
	for _, s := range simSeries {
		for _, n := range cfg.SimThreads {
			b.Cells = append(b.Cells, perfstat.Cell{
				Lock: s.lock, Workload: s.workload, Threads: n,
				AllocsPerOp: -1,
				OpsPerMSec: perfstat.Measure(2, false, func() float64 {
					return simPoint(s.mk, s.w, n)
				}),
			})
		}
	}
	return b
}

// mapPlaneKeys is the key-space size of the map_plane cells: small
// enough to stay resident, large enough that open-addressing probe
// behavior (not just a single hot slot) is in the measurement.
const mapPlaneKeys = 256

// mapPlaneKinds is the roster of policy-map constructors the map_plane
// cells measure. Capacities leave headroom over mapPlaneKeys so the
// cell measures steady-state operation, not full-map behavior.
func mapPlaneKinds(workers int) []struct {
	name string
	mk   func() policy.Map
} {
	return []struct {
		name string
		mk   func() policy.Map
	}{
		{"map-hash", func() policy.Map {
			return policy.NewHashMap("bench-map", 8, 8, 2*mapPlaneKeys)
		}},
		{"map-percpu-hash", func() policy.Map {
			return policy.NewPerCPUHashMap("bench-map", 8, 8, 2*mapPlaneKeys, workers)
		}},
		{"map-locked-hash", func() policy.Map {
			return policy.NewLockedHashMap("bench-map", 8, 8, 2*mapPlaneKeys)
		}},
	}
}

// contendedAllocsPerOp measures heap allocations per acquire/release
// pair on a deliberately contended lock: workers with pre-created tasks
// warm the lock (populating node pools and parker timers), rendezvous,
// and then hammer it while the probe brackets the phase with
// runtime.MemStats.Mallocs. Each holder yields inside its critical
// section, so the other workers pile onto the slow path even on a
// single-CPU host — every acquire measured is a *contended* acquire.
// With pooling this settles at 0; the seed behavior was ≥1.
func contendedAllocsPerOp(mk func() locks.Lock, topo *topology.Topology, workers int) float64 {
	const warmupOps, measuredOps = 64, 512
	l := mk()
	tasks := make([]*task.T, workers)
	for i := range tasks {
		tasks[i] = task.New(topo)
	}

	var warm, measured, done sync.WaitGroup
	start := make(chan struct{})
	warm.Add(workers)
	measured.Add(workers)
	done.Add(workers)
	for i := 0; i < workers; i++ {
		go func(t *task.T) {
			defer done.Done()
			for op := 0; op < warmupOps; op++ {
				l.Lock(t)
				runtime.Gosched()
				l.Unlock(t)
			}
			warm.Done()
			<-start
			for op := 0; op < measuredOps; op++ {
				l.Lock(t)
				runtime.Gosched()
				l.Unlock(t)
			}
			measured.Done()
		}(tasks[i])
	}
	warm.Wait()

	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	close(start)
	measured.Wait()
	runtime.ReadMemStats(&after)
	done.Wait()

	ops := float64(workers * measuredOps)
	return float64(after.Mallocs-before.Mallocs) / ops
}
