// Package experiments regenerates every figure of the paper's evaluation
// (§5, Figure 2) plus the ablations DESIGN.md calls out. The scaling
// panels (2a, 2b) run on the ksim discrete-event machine — an 8-socket,
// 80-CPU virtual server — because the shapes they show are hardware
// scaling effects; the overhead panel (2c) runs on the real lock
// implementations, because framework overhead is what it measures.
// EXPERIMENTS.md records paper-vs-measured for each.
package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"concord/internal/core"
	"concord/internal/ksim"
	"concord/internal/locks"
	"concord/internal/policy"
	"concord/internal/topology"
	"concord/internal/workloads"
)

// Point is one datum of a figure: one series at one thread count.
type Point struct {
	Experiment string
	Series     string
	Threads    int
	Value      float64 // ops/msec, or normalized throughput for F2c
}

// DefaultThreads is the x-axis of Figure 2(a) and (b).
var DefaultThreads = []int{1, 2, 4, 8, 10, 20, 30, 40, 50, 60, 70, 80}

// F2cThreads is the x-axis of Figure 2(c).
var F2cThreads = []int{1, 2, 4, 8, 10, 20, 30, 40, 50, 60, 70, 80}

// SimDuration is the virtual time simulated per point (ns).
const SimDuration = 30_000_000 // 30 virtual ms

// pageFault2Sim is the simulated page_fault2 workload: read-side faults
// with ~1.4µs of fault handling outside the lock and ~500ns inside.
var pageFault2Sim = ksim.Workload{
	Name: "page_fault2", ThinkNS: 1400, CSNS: 500, ReadFraction: 1, JitterPct: 15,
}

// lock2Sim is the simulated lock2 workload: a tight lock/unlock loop.
var lock2Sim = ksim.Workload{
	Name: "lock2", ThinkNS: 300, CSNS: 250, ReadFraction: 0, JitterPct: 10,
}

// hashtableSim is the simulated global-lock hash table workload.
var hashtableSim = ksim.Workload{
	Name: "hashtable", ThinkNS: 250, CSNS: 400, ReadFraction: 0, JitterPct: 15,
}

func simPoint(mk func(e *ksim.Engine) ksim.SimLock, w ksim.Workload, threads int) float64 {
	e := ksim.NewEngine(topology.Paper(), uint64(threads)*7919+1)
	res := ksim.RunClosedLoop(e, mk(e), e.NewProcs(threads), w, SimDuration)
	return res.OpsPerMSec()
}

// NUMACmpProgram assembles and verifies the cBPF NUMA-grouping cmp_node
// policy — the program the "Concord-ShflLock" series actually executes.
func NUMACmpProgram() *policy.Program {
	p := policy.MustAssemble("numa", policy.KindCmpNode, `
		mov   r6, r1
		ldxdw r2, [r6+curr_socket]
		ldxdw r3, [r6+shuffler_socket]
		jeq   r2, r3, group
		mov   r0, 0
		exit
	group:
		mov   r0, 1
		exit
	`, nil)
	if _, err := policy.Verify(p); err != nil {
		panic(err)
	}
	return p
}

// CBPFNumaCmp wraps the verified cBPF program as a simulator cmp_node
// decision: every simulated shuffling comparison runs the real policy,
// through the JIT closure tier when enabled (interpreter fallback).
func CBPFNumaCmp() ksim.CmpFunc {
	return cbpfCmp(NUMACmpProgram())
}

// cbpfCmp builds the simulator decision closure for a verified
// cmp_node program, dispatching through execClosure so the sim series
// exercise the same tier the -jit toggle selects. Sim results are
// virtual-time deterministic either way — the tiers are proven
// equivalent, so this only changes which executor's code path the
// sweep keeps hot.
func cbpfCmp(prog *policy.Program) ksim.CmpFunc {
	layout := policy.LayoutFor(policy.KindCmpNode)
	sSlot := layout.Slot("shuffler_socket")
	cSlot := layout.Slot("curr_socket")
	run := execClosure(prog)
	return func(shuffler, curr *ksim.Proc) bool {
		var words [32]uint64
		ctx := policy.Ctx{Layout: layout, Words: words[:len(layout.Fields)]}
		ctx.Words[sSlot] = uint64(shuffler.Socket)
		ctx.Words[cSlot] = uint64(curr.Socket)
		ret, err := run(&ctx, nil)
		return err == nil && ret != 0
	}
}

// nativeNumaCmp is the pre-compiled comparison point.
func nativeNumaCmp(s, c *ksim.Proc) bool { return s.Socket == c.Socket }

// ProfiledNumaCmpProgram is the NUMA-grouping cmp_node policy with a
// profiling side-channel: every shuffler examination bumps a per-socket
// counter in a hash map before comparing sockets. map_add is a
// read-only-path helper, so this is legal on the shuffler fast path —
// it is the map-heavy scenario the lock-free map plane exists for.
func ProfiledNumaCmpProgram(exams policy.Map) *policy.Program {
	p := policy.MustAssemble("numa-prof", policy.KindCmpNode, `
		mov   r6, r1
		ldxdw r2, [r6+curr_socket]
		stxdw [fp-8], r2
		ldmap r1, exams
		mov   r2, fp
		add   r2, -8
		mov   r3, 1
		call  map_add
		ldxdw r2, [r6+curr_socket]
		ldxdw r3, [r6+shuffler_socket]
		jeq   r2, r3, group
		mov   r0, 0
		exit
	group:
		mov   r0, 1
		exit
	`, map[string]policy.Map{"exams": exams})
	if _, err := policy.Verify(p); err != nil {
		panic(err)
	}
	return p
}

// CBPFProfiledNumaCmp wraps ProfiledNumaCmpProgram as a simulator
// cmp_node decision, counting examinations per socket in m as it goes,
// through the JIT closure tier when enabled (interpreter fallback).
func CBPFProfiledNumaCmp(m policy.Map) ksim.CmpFunc {
	return cbpfCmp(ProfiledNumaCmpProgram(m))
}

// Figure2a regenerates Figure 2(a): page_fault2 over Stock (neutral
// rwsem), BRAVO, and Concord-BRAVO (BRAVO with hook dispatch on the
// read path).
func Figure2a(threads []int) []Point {
	c := ksim.DefaultCosts()
	series := []struct {
		name string
		mk   func(e *ksim.Engine) ksim.SimLock
	}{
		{"Stock", func(e *ksim.Engine) ksim.SimLock { return ksim.NewSimRWSem(e, c) }},
		{"BRAVO", func(e *ksim.Engine) ksim.SimLock { return ksim.NewSimBRAVO(e, c, 0) }},
		{"Concord-BRAVO", func(e *ksim.Engine) ksim.SimLock { return ksim.NewSimBRAVO(e, c, c.DispatchNS) }},
	}
	var out []Point
	for _, s := range series {
		for _, n := range threads {
			out = append(out, Point{"f2a", s.name, n, simPoint(s.mk, pageFault2Sim, n)})
		}
	}
	return out
}

// Figure2b regenerates Figure 2(b): lock2 over Stock (qspinlock),
// ShflLock (pre-compiled NUMA policy) and Concord-ShflLock (the same
// policy as a verified cBPF program driving the simulated shuffler,
// plus hook dispatch).
func Figure2b(threads []int) []Point {
	c := ksim.DefaultCosts()
	cbpf := CBPFNumaCmp()
	series := []struct {
		name string
		mk   func(e *ksim.Engine) ksim.SimLock
	}{
		{"Stock", func(e *ksim.Engine) ksim.SimLock { return ksim.NewSimQspin(e, c) }},
		{"ShflLock", func(e *ksim.Engine) ksim.SimLock { return ksim.NewSimShfl(e, c, nativeNumaCmp, 0) }},
		{"Concord-ShflLock", func(e *ksim.Engine) ksim.SimLock { return ksim.NewSimShfl(e, c, cbpf, c.DispatchNS) }},
	}
	var out []Point
	for _, s := range series {
		for _, n := range threads {
			out = append(out, Point{"f2b", s.name, n, simPoint(s.mk, lock2Sim, n)})
		}
	}
	return out
}

// Figure2cSim regenerates Figure 2(c)'s shape on the simulator:
// normalized throughput of Concord-ShflLock over ShflLock on the
// global-lock hash table (worst case: short critical sections, hook
// dispatch on every operation).
func Figure2cSim(threads []int) []Point {
	c := ksim.DefaultCosts()
	cbpf := CBPFNumaCmp()
	var out []Point
	for _, n := range threads {
		base := simPoint(func(e *ksim.Engine) ksim.SimLock {
			return ksim.NewSimShfl(e, c, nativeNumaCmp, 0)
		}, hashtableSim, n)
		concord := simPoint(func(e *ksim.Engine) ksim.SimLock {
			return ksim.NewSimShfl(e, c, cbpf, c.DispatchNS)
		}, hashtableSim, n)
		norm := 0.0
		if base > 0 {
			norm = concord / base
		}
		out = append(out, Point{"f2c", "Concord-ShflLock/ShflLock", n, norm})
	}
	return out
}

// Figure2cReal measures Figure 2(c) on the real lock implementations:
// the hash-table workload on a ShflLock with the pre-compiled NUMA
// policy versus the same lock with the verified cBPF policy attached
// through the full framework (livepatch, hook dispatch, VM execution).
func Figure2cReal(threads []int, opsPerWorker int) []Point {
	topo := topology.Paper()
	var out []Point
	for _, n := range threads {
		// Pre-compiled baseline.
		base := locks.NewShflLock("ht-base")
		base.HookSlot().Replace("numa", locks.NUMAHooks())
		rb := workloads.RunHashTable(base, topo, workloads.HashTableConfig{
			Workers: n, OpsPerWorker: opsPerWorker,
		})

		// Concord: cBPF policy through the framework.
		fw := core.New(topo)
		cl := locks.NewShflLock("ht-concord")
		if err := fw.RegisterLock(cl); err != nil {
			panic(err)
		}
		if _, err := fw.LoadPolicy("numa-cbpf", NUMACmpProgram()); err != nil {
			panic(err)
		}
		att, err := fw.Attach("ht-concord", "numa-cbpf")
		if err != nil {
			panic(err)
		}
		att.Wait()
		rc := workloads.RunHashTable(cl, topo, workloads.HashTableConfig{
			Workers: n, OpsPerWorker: opsPerWorker,
		})

		norm := 0.0
		if rb.OpsPerMSec() > 0 {
			norm = rc.OpsPerMSec() / rb.OpsPerMSec()
		}
		out = append(out, Point{"f2c-real", "Concord-ShflLock/ShflLock", n, norm})
	}
	return out
}

// ShufflePolicyAblation (A3) compares shuffle policies on the simulated
// lock2 workload at a fixed thread count.
func ShufflePolicyAblation(threads int) []Point {
	c := ksim.DefaultCosts()
	policies := []struct {
		name string
		cmp  ksim.CmpFunc
	}{
		{"fifo", nil},
		{"numa", nativeNumaCmp},
		{"numa-cbpf", CBPFNumaCmp()},
		{"random", func(s, cu *ksim.Proc) bool { return (s.ID^cu.ID)&1 == 0 }},
	}
	var out []Point
	for _, p := range policies {
		v := simPoint(func(e *ksim.Engine) ksim.SimLock {
			return ksim.NewSimShfl(e, c, p.cmp, 0)
		}, lock2Sim, threads)
		out = append(out, Point{"a3", p.name, threads, v})
	}
	return out
}

// SubversionResult is the outcome of one SubversionSim run.
type SubversionResult struct {
	HogOps, MiceOps           int64
	HogWaitMean, MiceWaitMean float64 // ns
}

// SubversionSim (ablation A5, simulated) is the deterministic multicore
// rendition of the scheduler-subversion scenario (§3.1.2): hogs hold the
// lock ~50× longer than mice. With the SCL-style policy the shuffler
// moves mice ahead of queued hogs, cutting their wait; on the simulated
// machine the shuffler genuinely runs off the critical path, so the
// ordering benefit is visible in a way a single-CPU host cannot show.
func SubversionSim(hogs, mice int, scl bool) SubversionResult {
	e := ksim.NewEngine(topology.Paper(), 7)
	c := ksim.DefaultCosts()

	n := hogs + mice
	isHog := func(id int) bool { return id < hogs }
	var cmp ksim.CmpFunc
	if scl {
		cmp = func(s, cu *ksim.Proc) bool {
			// Move curr forward when it is a mouse overtaking a hog
			// shuffler — "curr's critical section is shorter".
			return isHog(s.ID) && !isHog(cu.ID)
		}
	}
	lock := ksim.NewSimShfl(e, c, cmp, 0)
	procs := e.NewProcs(n)

	var res SubversionResult
	var hogWait, miceWait int64
	end := int64(50_000_000) // 50 virtual ms
	for _, p := range procs {
		p := p
		csNS := int64(50_000)
		if !isHog(p.ID) {
			csNS = 1_000
		}
		var loop func()
		loop = func() {
			if e.Now() >= end {
				return
			}
			e.Schedule(500, func() {
				reqAt := e.Now()
				lock.Acquire(p, false, func() {
					wait := e.Now() - reqAt
					e.Schedule(csNS, func() {
						lock.Release(p, false)
						if isHog(p.ID) {
							res.HogOps++
							hogWait += wait
						} else {
							res.MiceOps++
							miceWait += wait
						}
						loop()
					})
				})
			})
		}
		loop()
	}
	e.Run(end)
	if res.HogOps > 0 {
		res.HogWaitMean = float64(hogWait) / float64(res.HogOps)
	}
	if res.MiceOps > 0 {
		res.MiceWaitMean = float64(miceWait) / float64(res.MiceOps)
	}
	return res
}

// AMPResult is the outcome of one AMPSim run.
type AMPResult struct {
	Ops          int64
	BigOps       int64
	LittleOps    int64
	LittleStarve bool // a little core completed nothing
}

// AMPSim (ablation A8) is the task-fair-locks-on-AMP scenario of §3.1.2
// on a simulated big.LITTLE machine: critical sections take ~3× longer
// on little cores, so under FIFO the slow cores' turns throttle
// everyone. The AMP policy hands the lock to fast cores first (bounded
// by the bypass budget, so little cores still progress), raising total
// throughput.
func AMPSim(big, little int, amp bool) AMPResult {
	topo := topology.BigLittle(big, little)
	e := ksim.NewEngine(topo, 11)
	c := ksim.DefaultCosts()

	var cmp ksim.CmpFunc
	if amp {
		cmp = func(s, cu *ksim.Proc) bool { return cu.Speed > s.Speed }
	}
	lock := ksim.NewSimShfl(e, c, cmp, 0)

	// One proc per core: big cores first (topology socket 0), then
	// little (socket 1).
	var procs []*ksim.Proc
	for cpu := 0; cpu < big; cpu++ {
		procs = append(procs, &ksim.Proc{ID: cpu, CPU: cpu, Socket: 0, Speed: 1.0})
	}
	base := topo.CoresPerSocket()
	for i := 0; i < little; i++ {
		cpu := base + i
		procs = append(procs, &ksim.Proc{
			ID: cpu, CPU: cpu, Socket: 1, Speed: float64(topology.SpeedLittle),
		})
	}

	var res AMPResult
	perProc := make([]int64, len(procs))
	end := int64(50_000_000)
	for i, p := range procs {
		i, p := i, p
		var loop func()
		loop = func() {
			if e.Now() >= end {
				return
			}
			e.Schedule(p.WorkNS(500), func() {
				lock.Acquire(p, false, func() {
					e.Schedule(p.WorkNS(4_000), func() {
						lock.Release(p, false)
						perProc[i]++
						loop()
					})
				})
			})
		}
		loop()
	}
	e.Run(end)
	for i, p := range procs {
		res.Ops += perProc[i]
		if p.Speed >= 1.0 {
			res.BigOps += perProc[i]
		} else {
			res.LittleOps += perProc[i]
			if perProc[i] == 0 {
				res.LittleStarve = true
			}
		}
	}
	return res
}

// WriteCSV emits points as experiment,series,threads,value rows.
func WriteCSV(w io.Writer, pts []Point) error {
	if _, err := fmt.Fprintln(w, "experiment,series,threads,value"); err != nil {
		return err
	}
	for _, p := range pts {
		if _, err := fmt.Fprintf(w, "%s,%s,%d,%.3f\n", p.Experiment, p.Series, p.Threads, p.Value); err != nil {
			return err
		}
	}
	return nil
}

// benchFile is the schema of one BENCH_<experiment>.json artifact.
type benchFile struct {
	Experiment string       `json:"experiment"`
	Points     []benchPoint `json:"points"`
}

type benchPoint struct {
	Series  string  `json:"series"`
	Threads int     `json:"threads"`
	Value   float64 `json:"value"` // ops/msec, or normalized throughput for f2c
}

// WriteBenchJSON writes one BENCH_<experiment>.json per experiment into
// dir (created if absent), returning the paths written. Points keep run
// order within a file, matching the CSV row order.
func WriteBenchJSON(dir string, pts []Point) ([]string, error) {
	if len(pts) > 0 {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, err
		}
	}
	byExp := map[string]*benchFile{}
	var order []string
	for _, p := range pts {
		f := byExp[p.Experiment]
		if f == nil {
			f = &benchFile{Experiment: p.Experiment}
			byExp[p.Experiment] = f
			order = append(order, p.Experiment)
		}
		f.Points = append(f.Points, benchPoint{Series: p.Series, Threads: p.Threads, Value: p.Value})
	}
	var paths []string
	for _, exp := range order {
		data, err := json.MarshalIndent(byExp[exp], "", "  ")
		if err != nil {
			return paths, err
		}
		path := filepath.Join(dir, "BENCH_"+exp+".json")
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			return paths, err
		}
		paths = append(paths, path)
	}
	return paths, nil
}

// RenderTable prints points as a threads × series table, one figure per
// block — the textual equivalent of the paper's plots.
func RenderTable(w io.Writer, pts []Point) error {
	byExp := map[string][]Point{}
	var exps []string
	for _, p := range pts {
		if _, seen := byExp[p.Experiment]; !seen {
			exps = append(exps, p.Experiment)
		}
		byExp[p.Experiment] = append(byExp[p.Experiment], p)
	}
	for _, exp := range exps {
		eps := byExp[exp]
		var series []string
		seen := map[string]bool{}
		threadSet := map[int]bool{}
		vals := map[string]map[int]float64{}
		for _, p := range eps {
			if !seen[p.Series] {
				seen[p.Series] = true
				series = append(series, p.Series)
				vals[p.Series] = map[int]float64{}
			}
			vals[p.Series][p.Threads] = p.Value
			threadSet[p.Threads] = true
		}
		threads := make([]int, 0, len(threadSet))
		for t := range threadSet {
			threads = append(threads, t)
		}
		sort.Ints(threads)

		if _, err := fmt.Fprintf(w, "== %s ==\n%-8s", exp, "threads"); err != nil {
			return err
		}
		for _, s := range series {
			fmt.Fprintf(w, " %20s", s)
		}
		fmt.Fprintln(w)
		for _, t := range threads {
			fmt.Fprintf(w, "%-8d", t)
			for _, s := range series {
				fmt.Fprintf(w, " %20.2f", vals[s][t])
			}
			fmt.Fprintln(w)
		}
		fmt.Fprintln(w)
	}
	return nil
}
