package vet

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// BlockingUnderLock flags operations that can block for an unbounded
// time while a lock is statically held — the latency tail no policy or
// watchdog can claw back once the critical section itself waits:
//
//	mu.Lock()
//	ch <- v          // blocks every other acquirer until a reader shows up
//	time.Sleep(d)    // sleeps with the lock held
//	mu.Unlock()
//
// Flagged while a trackable lock is held: channel sends and receives,
// selects without a default case, time.Sleep, parker waits
// (Park/ParkRescue/AwaitFlag), and calls into I/O-performing stdlib
// packages (os, net, http, log, fmt print family). The held-set is the
// same alias-aware path simulation lockpair uses, per function.
var BlockingUnderLock = &Analyzer{
	Name: "blockingunderlock",
	Doc:  "channel ops, sleeps, parking, and I/O while a lock is held",
	Run:  runBlockingUnderLock,
}

// parkMethodNames are the blocking waits of internal/syncx/park.
var parkMethodNames = map[string]bool{
	"Park": true, "ParkRescue": true, "AwaitFlag": true,
}

// ioPackages are stdlib package qualifiers whose calls perform I/O.
var ioPackages = map[string]bool{
	"os": true, "net": true, "http": true, "log": true,
}

// fmtPrintFuncs are the fmt functions that write to a stream.
var fmtPrintFuncs = map[string]bool{
	"Print": true, "Println": true, "Printf": true,
	"Fprint": true, "Fprintln": true, "Fprintf": true,
}

func runBlockingUnderLock(p *Pass) []Diagnostic {
	var diags []Diagnostic
	for _, u := range p.Units {
		for _, f := range u.Files {
			for _, fn := range funcBodies(f) {
				diags = append(diags, blockingUnderLockFunc(p.Fset, fn)...)
			}
		}
	}
	return diags
}

// heldSummary renders the held-set for a message, oldest lock first.
func heldSummary(held map[string]token.Pos) string {
	keys := make([]string, 0, len(held))
	for k := range held {
		keys = append(keys, lockKeyBase(k))
	}
	sort.Strings(keys)
	return strings.Join(keys, ", ")
}

// blockingCall classifies a call expression as a blocking operation.
func blockingCall(call *ast.CallExpr) (what string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", false
	}
	name := sel.Sel.Name
	if id, isIdent := sel.X.(*ast.Ident); isIdent {
		switch {
		case id.Name == "time" && name == "Sleep":
			return "time.Sleep", true
		case ioPackages[id.Name]:
			return fmt.Sprintf("I/O call %s.%s", id.Name, name), true
		case id.Name == "fmt" && fmtPrintFuncs[name]:
			return "fmt." + name + " (stream I/O)", true
		}
	}
	if parkMethodNames[name] {
		return fmt.Sprintf("parker wait %s.%s", exprString(sel.X), name), true
	}
	return "", false
}

func blockingUnderLockFunc(fset *token.FileSet, fn funcBody) []Diagnostic {
	var diags []Diagnostic
	report := func(pos token.Pos, what string, held map[string]token.Pos) {
		if len(held) == 0 {
			return
		}
		diags = append(diags, Diagnostic{
			Pos: fset.Position(pos),
			Msg: fmt.Sprintf("%s in %s while holding %s", what, fn.name, heldSummary(held)),
		})
	}
	simulateHeld(fset, fn, &simHooks{
		onBlock: report,
		onCall: func(call *ast.CallExpr, held map[string]token.Pos) {
			if what, ok := blockingCall(call); ok {
				report(call.Pos(), what, held)
			}
		},
	})
	return diags
}
