// Package vet is a stdlib-only static-analysis driver for the Concord
// module, the second prong of the analysis plane: where
// internal/policy/analysis checks policy *programs*, this package checks
// the Go *framework source* for the invariants the runtime depends on —
// lock pairing, fault-injection site discipline, and helper-table
// exhaustiveness. It deliberately uses only go/ast + go/parser +
// go/token so it runs in environments without golang.org/x/tools.
//
// Diagnostics can be suppressed with a `//vet:ignore [analyzer...]`
// comment on the offending line or the line above it.
package vet

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Unit is one parsed directory (one package's worth of files).
type Unit struct {
	Dir   string
	Pkg   string
	Files []*ast.File
}

// Pass is the input handed to every analyzer: the whole module view, so
// analyzers may correlate across packages (helperdrift needs the enum
// from internal/policy and the cost table from internal/policy/analysis).
type Pass struct {
	Fset  *token.FileSet
	Units []*Unit
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Msg      string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Msg)
}

// DiagnosticJSON is the machine-readable diagnostic form emitted by
// `concordvet -json`: stable field set, sorted the same way Run sorts
// its output (file, line, analyzer), so CI annotation diffs cleanly.
type DiagnosticJSON struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Msg      string `json:"msg"`
}

// JSON converts a diagnostic to its machine-readable form.
func (d Diagnostic) JSON() DiagnosticJSON {
	return DiagnosticJSON{
		File: d.Pos.Filename, Line: d.Pos.Line, Col: d.Pos.Column,
		Analyzer: d.Analyzer, Msg: d.Msg,
	}
}

// Analyzer is one named check over a Pass.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) []Diagnostic
}

// All returns the full analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{LockPair, LockOrder, BlockingUnderLock, FaultSite, HelperDrift}
}

// ByName returns the named analyzers from the full suite (comma-split
// names, e.g. "lockpair,lockorder"), or All() when names is empty.
func ByName(names string) ([]*Analyzer, error) {
	if strings.TrimSpace(names) == "" {
		return All(), nil
	}
	byName := map[string]*Analyzer{}
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("vet: unknown analyzer %q", n)
		}
		out = append(out, a)
	}
	return out, nil
}

// Load parses the packages matched by patterns into Units. A pattern is
// a directory, or a directory followed by "/..." to walk recursively.
// Directories named testdata or vendor, and hidden directories, are
// skipped. Test files are skipped unless includeTests is set.
func Load(fset *token.FileSet, patterns []string, includeTests bool) ([]*Unit, error) {
	dirs := map[string]bool{}
	var order []string
	add := func(dir string) {
		dir = filepath.Clean(dir)
		if !dirs[dir] {
			dirs[dir] = true
			order = append(order, dir)
		}
	}
	for _, pat := range patterns {
		if root, ok := strings.CutSuffix(pat, "/..."); ok {
			err := filepath.WalkDir(filepath.Clean(root), func(path string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				name := d.Name()
				if path != filepath.Clean(root) &&
					(name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
					return filepath.SkipDir
				}
				add(path)
				return nil
			})
			if err != nil {
				return nil, err
			}
		} else {
			add(pat)
		}
	}

	var units []*Unit
	for _, dir := range order {
		entries, err := os.ReadDir(dir)
		if err != nil {
			return nil, err
		}
		u := &Unit{Dir: dir}
		for _, e := range entries {
			name := e.Name()
			if e.IsDir() || !strings.HasSuffix(name, ".go") {
				continue
			}
			if !includeTests && strings.HasSuffix(name, "_test.go") {
				continue
			}
			f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			u.Files = append(u.Files, f)
			if u.Pkg == "" || !strings.HasSuffix(u.Pkg, "_test") {
				u.Pkg = f.Name.Name
			}
		}
		if len(u.Files) > 0 {
			units = append(units, u)
		}
	}
	return units, nil
}

// Run executes the analyzers over the pass, filters `//vet:ignore`
// suppressions, and returns the surviving diagnostics in file order.
func Run(p *Pass, analyzers []*Analyzer) []Diagnostic {
	ignored := collectIgnores(p)
	var out []Diagnostic
	for _, a := range analyzers {
		for _, d := range a.Run(p) {
			d.Analyzer = a.Name
			if ignored.covers(d) {
				continue
			}
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}

// ignoreSet maps file -> line -> analyzer names suppressed there
// ("" means all analyzers).
type ignoreSet map[string]map[int]map[string]bool

func (s ignoreSet) covers(d Diagnostic) bool {
	lines := s[d.Pos.Filename]
	if lines == nil {
		return false
	}
	for _, line := range []int{d.Pos.Line, d.Pos.Line - 1} {
		if names := lines[line]; names != nil {
			if names[""] || names[d.Analyzer] {
				return true
			}
		}
	}
	return false
}

func collectIgnores(p *Pass) ignoreSet {
	set := ignoreSet{}
	for _, u := range p.Units {
		for _, f := range u.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimPrefix(c.Text, "//")
					text = strings.TrimSpace(text)
					rest, ok := strings.CutPrefix(text, "vet:ignore")
					if !ok {
						continue
					}
					pos := p.Fset.Position(c.Pos())
					lines := set[pos.Filename]
					if lines == nil {
						lines = map[int]map[string]bool{}
						set[pos.Filename] = lines
					}
					names := lines[pos.Line]
					if names == nil {
						names = map[string]bool{}
						lines[pos.Line] = names
					}
					rest = strings.TrimSpace(rest)
					if rest == "" {
						names[""] = true
						continue
					}
					for _, n := range strings.FieldsFunc(rest, func(r rune) bool { return r == ',' || r == ' ' }) {
						names[n] = true
					}
				}
			}
		}
	}
	return set
}

// exprString renders the expressions the analyzers care about (selector
// chains) into a stable key. Expressions outside that subset render as
// "·", which callers treat as untrackable.
func exprString(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprString(x.X) + "." + x.Sel.Name
	case *ast.ParenExpr:
		return exprString(x.X)
	case *ast.StarExpr:
		return exprString(x.X)
	case *ast.IndexExpr:
		return exprString(x.X) + "[·]"
	}
	return "·"
}

// funcBodies yields every function body in the file — declarations and
// literals — each exactly once, with a display name.
func funcBodies(f *ast.File) []funcBody {
	var out []funcBody
	ast.Inspect(f, func(n ast.Node) bool {
		switch fn := n.(type) {
		case *ast.FuncDecl:
			if fn.Body != nil {
				out = append(out, funcBody{name: fn.Name.Name, body: fn.Body})
			}
		case *ast.FuncLit:
			out = append(out, funcBody{name: "func literal", body: fn.Body})
		}
		return true
	})
	return out
}

type funcBody struct {
	name string
	body *ast.BlockStmt
}

// inspectShallow walks n but does not descend into nested function
// literals — those are separate scopes handled by their own funcBody.
func inspectShallow(n ast.Node, visit func(ast.Node) bool) {
	ast.Inspect(n, func(m ast.Node) bool {
		if m == n {
			return true
		}
		if _, isLit := m.(*ast.FuncLit); isLit {
			return false
		}
		if m == nil {
			return true
		}
		return visit(m)
	})
}
