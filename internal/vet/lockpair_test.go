package vet

import "testing"

const lockIface = `package p
import "sync"
var mu sync.Mutex
var rw sync.RWMutex
`

func TestLockPairEarlyReturnLeak(t *testing.T) {
	diags := runOn(t, LockPair, lockIface+`
func leak(bad bool) error {
	mu.Lock()
	if bad {
		return nil
	}
	mu.Unlock()
	return nil
}
`)
	wantDiags(t, diags, "return in leak with mu.Lock() held")
}

func TestLockPairBalancedPathsClean(t *testing.T) {
	diags := runOn(t, LockPair, lockIface+`
func ok(bad bool) error {
	mu.Lock()
	if bad {
		mu.Unlock()
		return nil
	}
	mu.Unlock()
	return nil
}
func deferred() {
	mu.Lock()
	defer mu.Unlock()
	if true {
		return
	}
}
func deferredClosure() {
	mu.Lock()
	defer func() { mu.Unlock() }()
	return
}
`)
	wantDiags(t, diags)
}

func TestLockPairSkipsPureLockers(t *testing.T) {
	// A function that locks and never unlocks (or vice versa) is a
	// cross-function protocol, not a leak.
	diags := runOn(t, LockPair, lockIface+`
func lockIt()   { mu.Lock() }
func unlockIt() { mu.Unlock() }
`)
	wantDiags(t, diags)
}

func TestLockPairReadWriteTrackedSeparately(t *testing.T) {
	diags := runOn(t, LockPair, lockIface+`
func mixed(bad bool) {
	rw.RLock()
	if bad {
		return
	}
	rw.RUnlock()
}
`)
	wantDiags(t, diags, "return in mixed with rw.RLock() held")

	// RUnlock does not release a write Lock.
	diags = runOn(t, LockPair, lockIface+`
func wrongPair() {
	rw.Lock()
	rw.RUnlock()
	rw.Unlock()
	rw.RLock()
	return
}
`)
	wantDiags(t, diags, "return in wrongPair with rw.RLock() held")
}

func TestLockPairFallOffEnd(t *testing.T) {
	diags := runOn(t, LockPair, lockIface+`
func fallsOff(bad bool) {
	mu.Lock()
	if bad {
		mu.Unlock()
	}
}
`)
	// The fall-through path after the if keeps mu held when bad is
	// false... but the optimistic merge treats the conditional unlock
	// as released. The leak IS caught when the held branch returns:
	wantDiags(t, diags)

	diags = runOn(t, LockPair, lockIface+`
func fallsOffHeld() {
	mu.Lock()
	_ = 1
	_ = mu
	mu.Unlock()
	mu.Lock()
}
`)
	wantDiags(t, diags, "function end in fallsOffHeld with mu.Lock() held")
}

func TestLockPairAcquireRelease(t *testing.T) {
	diags := runOn(t, LockPair, lockIface+`
type sem struct{}
func (s *sem) Acquire() {}
func (s *sem) Release() {}
func useSem(s *sem, bad bool) {
	s.Acquire()
	if bad {
		return
	}
	s.Release()
}
`)
	wantDiags(t, diags, "return in useSem with s.Acquire() held")
}

func TestLockPairSwitchPaths(t *testing.T) {
	diags := runOn(t, LockPair, lockIface+`
func sw(n int) {
	mu.Lock()
	switch n {
	case 1:
		mu.Unlock()
	case 2:
		return
	default:
		mu.Unlock()
	}
}
`)
	wantDiags(t, diags, "return in sw with mu.Lock() held")
}

// TestLockPairAliasRegression pins the alias fix: `mu := &s.mu` used to
// be tracked as a lock distinct from s.mu, so a leak acquired through
// the alias and released through the field (or vice versa) was
// invisible, and a balanced pair looked like a mismatched one.
func TestLockPairAliasRegression(t *testing.T) {
	diags := runOn(t, LockPair, `package p
func aliasLeak(s *S, bad bool) {
	mu := &s.mu
	mu.Lock()
	if bad {
		return
	}
	s.mu.Unlock()
}
`)
	wantDiags(t, diags, "return in aliasLeak with s.mu.Lock() held")

	diags = runOn(t, LockPair, `package p
func aliasBalanced(s *S, bad bool) {
	mu := &s.mu
	mu.Lock()
	if bad {
		s.mu.Unlock()
		return
	}
	mu.Unlock()
}
func aliasOfAlias(s *S, bad bool) {
	a := &s.mu
	b := a
	b.Lock()
	if bad {
		a.Unlock()
		return
	}
	s.mu.Unlock()
}
`)
	wantDiags(t, diags)

	// A rebound alias stops resolving: after `mu = &s.other` the name no
	// longer stands for s.mu, so the analyzer must not conflate them.
	diags = runOn(t, LockPair, `package p
func rebound(s *S, bad bool) {
	mu := &s.mu
	mu = &s.other
	mu.Lock()
	mu.Unlock()
	_ = bad
}
`)
	wantDiags(t, diags)
}
