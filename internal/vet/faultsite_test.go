package vet

import "testing"

func TestFaultSiteGoodPatternClean(t *testing.T) {
	diags := runOn(t, FaultSite, `package p
import "concord/internal/faultinject"
func hook() {
	if faultinject.PolicyTrap.Enabled() {
		if flt, ok := faultinject.PolicyTrap.Fire(); ok {
			_ = flt
		}
	}
}
`)
	wantDiags(t, diags)
}

func TestFaultSiteUnguardedFire(t *testing.T) {
	diags := runOn(t, FaultSite, `package p
import "concord/internal/faultinject"
func hook() {
	if flt, ok := faultinject.PolicyTrap.Fire(); ok {
		_ = flt
	}
}
`)
	wantDiags(t, diags, "faultinject.PolicyTrap.Fire() not guarded")
}

func TestFaultSiteWrongGuard(t *testing.T) {
	// Guarded by a different site's Enabled() — still a violation.
	diags := runOn(t, FaultSite, `package p
import "concord/internal/faultinject"
func hook() {
	if faultinject.PolicyHelper.Enabled() {
		if flt, ok := faultinject.PolicyTrap.Fire(); ok {
			_ = flt
		}
	}
}
`)
	wantDiags(t, diags, "faultinject.PolicyTrap.Fire() not guarded")
}

func TestFaultSiteDoubleFire(t *testing.T) {
	diags := runOn(t, FaultSite, `package p
import "concord/internal/faultinject"
func hook(a, b bool) {
	if a && faultinject.PolicyTrap.Enabled() {
		faultinject.PolicyTrap.Fire()
	}
	if b && faultinject.PolicyTrap.Enabled() {
		faultinject.PolicyTrap.Fire()
	}
}
`)
	wantDiags(t, diags, "faultinject.PolicyTrap fired twice in hook")
}

func TestFaultSiteDistinctSitesAndScopes(t *testing.T) {
	// Two different sites in one function, and the same site in two
	// functions (incl. a closure), are all fine.
	diags := runOn(t, FaultSite, `package p
import "concord/internal/faultinject"
func hook() {
	if faultinject.PolicyHelper.Enabled() {
		faultinject.PolicyHelper.Fire()
	}
	if faultinject.PolicyMapOp.Enabled() {
		faultinject.PolicyMapOp.Fire()
	}
	go func() {
		if faultinject.PolicyHelper.Enabled() {
			faultinject.PolicyHelper.Fire()
		}
	}()
}
`)
	wantDiags(t, diags)
}

func TestFaultSiteSkipsFaultinjectPackage(t *testing.T) {
	diags := runOn(t, FaultSite, `package faultinject
func (s *Site) helper() {
	faultinject.Something.Fire()
}
`)
	wantDiags(t, diags)
}
