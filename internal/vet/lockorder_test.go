package vet

import (
	"bytes"
	"encoding/json"
	"go/ast"
	"go/parser"
	"go/token"
	"sort"
	"strings"
	"testing"
)

// parseUnits builds a multi-unit Pass: one unit per entry, each holding
// one file, keyed by a synthetic directory name.
func parseUnits(t *testing.T, srcs ...string) *Pass {
	t.Helper()
	fset := token.NewFileSet()
	var units []*Unit
	for i, src := range srcs {
		name := "unit" + string(rune('a'+i)) + ".go"
		f, err := parser.ParseFile(fset, name, src, parser.ParseComments)
		if err != nil {
			t.Fatalf("parse %s: %v", name, err)
		}
		units = append(units, &Unit{Dir: "test" + string(rune('a'+i)), Pkg: f.Name.Name, Files: []*ast.File{f}})
	}
	return &Pass{Fset: fset, Units: units}
}

const src2Cycle = `package p
type S struct{ a, b mutex }
func (s *S) f() {
	s.a.Lock()
	s.b.Lock()
	s.b.Unlock()
	s.a.Unlock()
}
func (s *S) g() {
	s.b.Lock()
	s.a.Lock()
	s.a.Unlock()
	s.b.Unlock()
}
`

func TestLockOrderTwoCycle(t *testing.T) {
	diags := runOn(t, LockOrder, src2Cycle)
	wantDiags(t, diags, "potential deadlock cycle: p.S.a -> p.S.b -> p.S.a")
	if !strings.Contains(diags[0].Msg, "hold p.S.a") || !strings.Contains(diags[0].Msg, "acquire p.S.b") {
		t.Errorf("witness chain missing from %q", diags[0].Msg)
	}
}

func TestLockOrderTwoCycleSuppressed(t *testing.T) {
	// The finding anchors where the cycle's first edge acquires its
	// second lock: s.b.Lock() inside f.
	src := strings.Replace(src2Cycle, "\ts.b.Lock()\n\ts.b.Unlock()",
		"\ts.b.Lock() //vet:ignore lockorder\n\ts.b.Unlock()", 1)
	wantDiags(t, runOn(t, LockOrder, src))
}

// TestLockOrderThreeCycleInterprocedural spans three packages: alpha
// holds A across a call into beta, beta holds B across a call into
// gamma, and gamma's entry point holds C across a call back into alpha.
// The summaries must propagate through the call graph to close the
// 3-cycle A→B→C→A (plus the implied shorter cycles from transitive
// acquisition).
func TestLockOrderThreeCycleInterprocedural(t *testing.T) {
	p := parseUnits(t,
		`package alpha
var A mutex
func UnderA() { A.Lock(); beta.UnderB(); A.Unlock() }
`,
		`package beta
var B mutex
func UnderB() { B.Lock(); gamma.UnderC(); B.Unlock() }
`,
		`package gamma
var C mutex
func UnderC() { C.Lock(); C.Unlock() }
func Reenter() { C.Lock(); alpha.UnderA(); C.Unlock() }
`)
	g := BuildLockGraph(p)
	var got [][]string
	for _, c := range g.Cycles {
		cyc := append([]string(nil), c.Locks...)
		sort.Strings(cyc)
		got = append(got, cyc)
	}
	want := []string{"alpha.A", "beta.B", "gamma.C"}
	found := false
	for _, cyc := range got {
		if len(cyc) == 3 && cyc[0] == want[0] && cyc[1] == want[1] && cyc[2] == want[2] {
			found = true
		}
	}
	if !found {
		t.Fatalf("3-cycle %v not found; cycles: %v", want, got)
	}
	// Each cycle is one diagnostic.
	diags := Run(p, []*Analyzer{LockOrder})
	if len(diags) != len(g.Cycles) {
		t.Fatalf("got %d diagnostics for %d cycles", len(diags), len(g.Cycles))
	}
	// The 3-cycle witness walks the whole call chain.
	for _, c := range g.Cycles {
		if len(c.Locks) != 3 {
			continue
		}
		var funcs []string
		for _, w := range c.Witness {
			funcs = append(funcs, w.Func)
		}
		joined := strings.Join(funcs, " ")
		for _, fn := range []string{"alpha.UnderA", "beta.UnderB", "gamma.Reenter"} {
			if !strings.Contains(joined, fn) {
				t.Errorf("3-cycle witness missing %s: %v", fn, funcs)
			}
		}
	}
}

// TestLockOrderCleanDiamond pins the no-false-positive case: a diamond
// call graph (top → left/right → inner) acquiring a before b on both
// arms yields the a→b edge twice and no cycle.
func TestLockOrderCleanDiamond(t *testing.T) {
	p := parseUnits(t, `package p
var a, b mutex
func top() { left(); right() }
func left() { a.Lock(); inner(); a.Unlock() }
func right() { a.Lock(); inner(); a.Unlock() }
func inner() { b.Lock(); b.Unlock() }
`)
	g := BuildLockGraph(p)
	if len(g.Cycles) != 0 {
		t.Fatalf("clean diamond produced cycles: %+v", g.Cycles)
	}
	var edge *LockEdge
	for _, e := range g.Edges {
		if e.From == "p.a" && e.To == "p.b" {
			edge = e
		}
	}
	if edge == nil || edge.Count != 2 {
		t.Fatalf("want p.a->p.b edge with count 2, got %+v", g.Edges)
	}
	if diags := Run(p, []*Analyzer{LockOrder}); len(diags) != 0 {
		t.Fatalf("clean diamond produced diagnostics: %v", diags)
	}
}

// TestLockOrderSelfEdgeExcluded: re-acquiring the same named lock
// through a callee is recorded as a self-edge but is not a cycle
// finding (name identity cannot distinguish instances).
func TestLockOrderSelfEdgeExcluded(t *testing.T) {
	p := parseUnits(t, `package p
type S struct{ mu mutex }
func (s *S) outer() { s.mu.Lock(); s.inner(); s.mu.Unlock() }
func (s *S) inner() { s.mu.Lock(); s.mu.Unlock() }
`)
	g := BuildLockGraph(p)
	if len(g.Cycles) != 0 {
		t.Fatalf("self-edge reported as cycle: %+v", g.Cycles)
	}
	var self *LockEdge
	for _, e := range g.Edges {
		if e.From == "p.S.mu" && e.To == "p.S.mu" {
			self = e
		}
	}
	if self == nil || !self.Self {
		t.Fatalf("self-edge not recorded: %+v", g.Edges)
	}
}

// TestLockOrderAliasResolved: an alias taken on one side of the cycle
// still resolves to the canonical lock, closing the cycle.
func TestLockOrderAliasResolved(t *testing.T) {
	p := parseUnits(t, `package p
type S struct{ a, b mutex }
func (s *S) f() {
	mu := &s.a
	mu.Lock()
	s.b.Lock()
	s.b.Unlock()
	mu.Unlock()
}
func (s *S) g() { s.b.Lock(); s.a.Lock(); s.a.Unlock(); s.b.Unlock() }
`)
	g := BuildLockGraph(p)
	if len(g.Cycles) != 1 {
		t.Fatalf("alias broke the cycle: %+v", g.Edges)
	}
}

func TestLockGraphExports(t *testing.T) {
	p := parseUnits(t, src2Cycle)
	g := BuildLockGraph(p)

	var jbuf bytes.Buffer
	if err := g.WriteJSON(&jbuf); err != nil {
		t.Fatal(err)
	}
	var round LockGraph
	if err := json.Unmarshal(jbuf.Bytes(), &round); err != nil {
		t.Fatalf("graph JSON does not round-trip: %v", err)
	}
	if round.Schema != LockGraphSchema || len(round.Edges) != len(g.Edges) || len(round.Cycles) != 1 {
		t.Fatalf("round-trip mismatch: %+v", round)
	}

	var dbuf bytes.Buffer
	if err := g.WriteDOT(&dbuf); err != nil {
		t.Fatal(err)
	}
	dot := dbuf.String()
	for _, want := range []string{"digraph lockorder", `"p.S.a" -> "p.S.b"`, "color=red"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT output missing %q:\n%s", want, dot)
		}
	}
}
