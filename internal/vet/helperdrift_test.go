package vet

import "testing"

const helperEnum = `package policy
type HelperID int64
const (
	HelperAlpha HelperID = iota + 1
	HelperBeta
	HelperGamma

	numHelpers
)
`

func TestHelperDriftCompleteTableClean(t *testing.T) {
	diags := runOn(t, HelperDrift, helperEnum+`
var names = map[HelperID]string{
	HelperAlpha: "alpha",
	HelperBeta:  "beta",
	HelperGamma: "gamma",
}
`)
	wantDiags(t, diags)
}

func TestHelperDriftMissingMember(t *testing.T) {
	diags := runOn(t, HelperDrift, helperEnum+`
var names = map[HelperID]string{
	HelperAlpha: "alpha",
	HelperGamma: "gamma",
}
`)
	wantDiags(t, diags, "missing enum member(s): HelperBeta")
}

func TestHelperDriftSelectorKeysAcrossPackages(t *testing.T) {
	// A table in another package keyed by policy.HelperX selectors is
	// held to the same standard.
	p := parsePass(t, map[string]string{
		"enum.go": helperEnum,
		"cost.go": `package analysis
import "concord/internal/policy"
var costs = map[policy.HelperID]int64{
	policy.HelperAlpha: 1,
	policy.HelperBeta:  2,
}
`,
	})
	diags := Run(p, []*Analyzer{HelperDrift})
	wantDiags(t, diags, "missing enum member(s): HelperGamma")
}

func TestHelperDriftIgnoresSingleUseFixtures(t *testing.T) {
	// One enum key is a fixture, not a table.
	diags := runOn(t, HelperDrift, helperEnum+`
var one = map[HelperID]string{HelperAlpha: "alpha"}
`)
	wantDiags(t, diags)
}

func TestHelperDriftSentinelNotRequired(t *testing.T) {
	// numHelpers is unexported and must not be demanded of tables.
	diags := runOn(t, HelperDrift, helperEnum+`
var names = map[HelperID]string{
	HelperAlpha: "a", HelperBeta: "b", HelperGamma: "c",
}
`)
	wantDiags(t, diags)
}
