package vet

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"io"
	"sort"
	"strings"
)

// LockOrder is the interprocedural deadlock analyzer: it builds a
// module-wide call graph, computes per-function held-lock-set summaries
// (the lockpair path simulation extended across function boundaries),
// assembles a global lock dependency graph — edge A→B when lock B can be
// acquired while A is held, possibly through a chain of calls — and
// reports every elementary cycle as a potential deadlock, with the
// witness acquisition chain that realises the cycle's first edge.
//
// Lock identity is name-based (the analyzer is stdlib-only, so there is
// no type information): a lock reached through a method receiver
// canonicalises to "pkg.RecvType.field", a package-level lock to
// "pkg.var", and anything else gets a function-scoped identity. Two
// instances of the same type therefore share a node — exactly what a
// lock-ordering discipline wants — and self-edges (re-acquiring a node
// already held, which may be a different instance at runtime) are
// recorded in the graph but excluded from cycle findings.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc:  "interprocedural lock acquisition ordering: report potential deadlock cycles",
	Run:  runLockOrder,
}

// LockGraphSchema versions the exported lock-graph JSON.
const LockGraphSchema = "concord-lockgraph/1"

// LockGraph is the global lock dependency graph, exportable as JSON and
// DOT (concordvet -lockgraph, the CI artifact).
type LockGraph struct {
	Schema string      `json:"schema"`
	Nodes  []*LockNode `json:"nodes"`
	Edges  []*LockEdge `json:"edges"`
	Cycles []LockCycle `json:"cycles,omitempty"`
}

// LockNode is one lock identity in the dependency graph.
type LockNode struct {
	ID string `json:"id"`
	// Scope is "global" for receiver-field and package-level locks
	// (correlated across functions) or "local" for function-scoped ones.
	Scope string `json:"scope"`
	// Acquires counts distinct acquisition sites feeding this node.
	Acquires int `json:"acquires"`
}

// LockEdge records that To can be acquired while From is held.
type LockEdge struct {
	From string `json:"from"`
	To   string `json:"to"`
	// Self marks From == To (possible re-acquisition; excluded from
	// cycle findings because distinct instances cannot be told apart).
	Self bool `json:"self,omitempty"`
	// Count is how many independent witness sites produce this edge.
	Count int `json:"count"`
	// Witness is the first acquisition chain found: hold From, then
	// (possibly through calls) acquire To.
	Witness []WitnessStep `json:"witness"`
}

// WitnessStep is one step of an acquisition chain.
type WitnessStep struct {
	Func   string `json:"func"`
	Action string `json:"action"` // "acquire <lock>" or "call <func>"
	Pos    string `json:"pos"`
}

func (w WitnessStep) String() string { return fmt.Sprintf("%s: %s (%s)", w.Func, w.Action, w.Pos) }

// LockCycle is one elementary cycle in the dependency graph — a
// potential deadlock.
type LockCycle struct {
	Locks   []string      `json:"locks"` // rotation starting at the smallest lock ID
	Witness []WitnessStep `json:"witness"`
}

func runLockOrder(p *Pass) []Diagnostic {
	return BuildLockGraph(p).diagnostics()
}

// --- function index and call graph ---

// fnNode is one analyzed function: a FuncDecl with its unit context.
type fnNode struct {
	unit *Unit
	decl *ast.FuncDecl
	key  string // "pkg.Name" or "pkg.Recv.Name"
	recv string // receiver identifier name, "" for plain functions
	typ  string // receiver type name, "" for plain functions

	acquires []acqEvent
	calls    []callEvent
	// summary: lock ID -> witness chain proving this function (or a
	// callee) can acquire it. Built by the interprocedural fixpoint.
	summary map[string][]WitnessStep
}

type acqEvent struct {
	lock string // canonical lock ID
	pos  token.Pos
	held []heldLock // canonical held-set before the acquisition
}

type callEvent struct {
	targets []*fnNode
	pos     token.Pos
	held    []heldLock
}

type heldLock struct {
	lock string
	pos  token.Pos
}

// recvTypeName extracts the receiver type identifier from a FuncDecl.
func recvTypeName(d *ast.FuncDecl) (recvName, typeName string) {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return "", ""
	}
	field := d.Recv.List[0]
	if len(field.Names) > 0 {
		recvName = field.Names[0].Name
	}
	t := field.Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if idx, ok := t.(*ast.IndexExpr); ok { // generic receiver T[P]
		t = idx.X
	}
	if id, ok := t.(*ast.Ident); ok {
		typeName = id.Name
	}
	return recvName, typeName
}

// genericMethodNames are method names too common (stdlib interfaces,
// sync primitives) for the unique-name call-resolution heuristic: a
// selector call `x.Close()` resolving to "the one Close method in the
// module" would routinely be wrong.
var genericMethodNames = map[string]bool{
	"Lock": true, "Unlock": true, "RLock": true, "RUnlock": true,
	"TryLock": true, "Acquire": true, "Release": true,
	"Wait": true, "Done": true, "Add": true, "Sub": true, "Close": true,
	"Read": true, "Write": true, "String": true, "Error": true,
	"Len": true, "Cap": true, "Reset": true, "Store": true, "Load": true,
	"Swap": true, "CompareAndSwap": true, "Inc": true, "Dec": true,
	"Get": true, "Set": true, "Name": true, "Run": true, "Init": true,
}

type lockOrderIndex struct {
	fns []*fnNode
	// byUnitFunc: same-package plain functions.
	byUnitFunc map[*Unit]map[string]*fnNode
	// byUnitMethod: "RecvType.Method" within a unit.
	byUnitMethod map[*Unit]map[string]*fnNode
	// byPkgFunc: cross-package "pkg.Func" — only for unambiguous
	// package names (main appears many times and is skipped).
	byPkgFunc map[string]map[string]*fnNode
	// byMethodName: methods defined exactly once module-wide, for the
	// unique-name resolution heuristic.
	byMethodName map[string][]*fnNode
	// pkgVars: package-level identifiers per unit (lock canonicalisation).
	pkgVars map[*Unit]map[string]bool
}

func buildIndex(p *Pass) *lockOrderIndex {
	ix := &lockOrderIndex{
		byUnitFunc:   map[*Unit]map[string]*fnNode{},
		byUnitMethod: map[*Unit]map[string]*fnNode{},
		byPkgFunc:    map[string]map[string]*fnNode{},
		byMethodName: map[string][]*fnNode{},
		pkgVars:      map[*Unit]map[string]bool{},
	}
	pkgUnits := map[string]int{}
	for _, u := range p.Units {
		pkgUnits[u.Pkg]++
		ix.byUnitFunc[u] = map[string]*fnNode{}
		ix.byUnitMethod[u] = map[string]*fnNode{}
		vars := map[string]bool{}
		ix.pkgVars[u] = vars
		for _, f := range u.Files {
			for _, decl := range f.Decls {
				switch d := decl.(type) {
				case *ast.GenDecl:
					if d.Tok != token.VAR {
						continue
					}
					for _, spec := range d.Specs {
						if vs, ok := spec.(*ast.ValueSpec); ok {
							for _, n := range vs.Names {
								vars[n.Name] = true
							}
						}
					}
				case *ast.FuncDecl:
					if d.Body == nil {
						continue
					}
					fn := &fnNode{unit: u, decl: d, summary: map[string][]WitnessStep{}}
					fn.recv, fn.typ = recvTypeName(d)
					if fn.typ != "" {
						fn.key = u.Pkg + "." + fn.typ + "." + d.Name.Name
						ix.byUnitMethod[u][fn.typ+"."+d.Name.Name] = fn
						ix.byMethodName[d.Name.Name] = append(ix.byMethodName[d.Name.Name], fn)
					} else {
						fn.key = u.Pkg + "." + d.Name.Name
						ix.byUnitFunc[u][d.Name.Name] = fn
					}
					ix.fns = append(ix.fns, fn)
				}
			}
		}
	}
	for _, fn := range ix.fns {
		if fn.typ != "" {
			continue
		}
		if pkgUnits[fn.unit.Pkg] == 1 {
			m := ix.byPkgFunc[fn.unit.Pkg]
			if m == nil {
				m = map[string]*fnNode{}
				ix.byPkgFunc[fn.unit.Pkg] = m
			}
			m[fn.decl.Name.Name] = fn
		}
	}
	sort.Slice(ix.fns, func(i, j int) bool { return ix.fns[i].key < ix.fns[j].key })
	return ix
}

// canonLock maps a function-local lock-key base to its global identity.
func (ix *lockOrderIndex) canonLock(fn *fnNode, base string) (id string, global bool) {
	seg, rest, hasRest := strings.Cut(base, ".")
	switch {
	case fn.recv != "" && seg == fn.recv && hasRest:
		return fn.unit.Pkg + "." + fn.typ + "." + rest, true
	case ix.pkgVars[fn.unit][seg]:
		return fn.unit.Pkg + "." + base, true
	default:
		return fn.key + ":" + base, false
	}
}

// resolveCall maps a call expression to module function candidates.
func (ix *lockOrderIndex) resolveCall(fn *fnNode, call *ast.CallExpr) []*fnNode {
	switch f := call.Fun.(type) {
	case *ast.Ident:
		if t := ix.byUnitFunc[fn.unit][f.Name]; t != nil {
			return []*fnNode{t}
		}
	case *ast.SelectorExpr:
		name := f.Sel.Name
		if id, ok := f.X.(*ast.Ident); ok {
			// Method on the receiver: same-type resolution.
			if id.Name == fn.recv && fn.recv != "" {
				if t := ix.byUnitMethod[fn.unit][fn.typ+"."+name]; t != nil {
					return []*fnNode{t}
				}
			}
			// Package-qualified call.
			if m := ix.byPkgFunc[id.Name]; m != nil {
				if t := m[name]; t != nil {
					return []*fnNode{t}
				}
			}
		}
		// Unique-method heuristic: a method name defined exactly once in
		// the module (and not a generic stdlib-ish name) is resolved to
		// that definition.
		if !genericMethodNames[name] {
			if c := ix.byMethodName[name]; len(c) == 1 {
				return []*fnNode{c[0]}
			}
		}
	}
	return nil
}

// --- graph construction ---

type lockGraphBuilder struct {
	ix    *lockOrderIndex
	fset  *token.FileSet
	edges map[[2]string]*LockEdge
	nodes map[string]*LockNode
	sites map[string]map[token.Pos]bool // node -> acquisition sites
}

// BuildLockGraph runs the interprocedural analysis and returns the
// global lock dependency graph (concordvet -lockgraph and the lockorder
// analyzer both consume it).
func BuildLockGraph(p *Pass) *LockGraph {
	b := &lockGraphBuilder{
		ix:    buildIndex(p),
		fset:  p.Fset,
		edges: map[[2]string]*LockEdge{},
		nodes: map[string]*LockNode{},
		sites: map[string]map[token.Pos]bool{},
	}
	b.collectEvents()
	b.fixpointSummaries()
	b.addEdges()
	return b.assemble()
}

// collectEvents simulates every function, recording canonicalised
// acquire events and resolved call events with their held-sets.
func (b *lockGraphBuilder) collectEvents() {
	for _, fn := range b.ix.fns {
		fn := fn
		canonHeld := func(held map[string]token.Pos) []heldLock {
			out := make([]heldLock, 0, len(held))
			seen := map[string]bool{}
			for key, pos := range held {
				id, _ := b.ix.canonLock(fn, lockKeyBase(key))
				if !seen[id] {
					seen[id] = true
					out = append(out, heldLock{lock: id, pos: pos})
				}
			}
			sort.Slice(out, func(i, j int) bool { return out[i].lock < out[j].lock })
			return out
		}
		hooks := &simHooks{
			onAcquire: func(key string, pos token.Pos, held map[string]token.Pos) {
				id, global := b.ix.canonLock(fn, lockKeyBase(key))
				b.touchNode(id, global, pos)
				fn.acquires = append(fn.acquires, acqEvent{lock: id, pos: pos, held: canonHeld(held)})
			},
			onCall: func(call *ast.CallExpr, held map[string]token.Pos) {
				targets := b.ix.resolveCall(fn, call)
				if len(targets) == 0 {
					return
				}
				fn.calls = append(fn.calls, callEvent{targets: targets, pos: call.Pos(), held: canonHeld(held)})
			},
		}
		simulateHeld(b.fset, funcBody{name: fn.key, body: fn.decl.Body}, hooks)
	}
}

func (b *lockGraphBuilder) touchNode(id string, global bool, pos token.Pos) {
	n := b.nodes[id]
	if n == nil {
		scope := "local"
		if global {
			scope = "global"
		}
		n = &LockNode{ID: id, Scope: scope}
		b.nodes[id] = n
		b.sites[id] = map[token.Pos]bool{}
	}
	if pos != token.NoPos && !b.sites[id][pos] {
		b.sites[id][pos] = true
		n.Acquires++
	}
}

// fixpointSummaries propagates "may acquire" sets up the call graph
// until stable: summary(f) = direct acquires ∪ summaries of callees,
// each entry carrying the first witness chain found. Convergence is
// guaranteed because entries are only added, never changed.
func (b *lockGraphBuilder) fixpointSummaries() {
	pos := func(p token.Pos) string { return b.fset.Position(p).String() }
	for changed := true; changed; {
		changed = false
		for _, fn := range b.ix.fns {
			for _, a := range fn.acquires {
				if _, ok := fn.summary[a.lock]; !ok {
					fn.summary[a.lock] = []WitnessStep{{
						Func: fn.key, Action: "acquire " + a.lock, Pos: pos(a.pos),
					}}
					changed = true
				}
			}
			for _, c := range fn.calls {
				for _, t := range c.targets {
					for lock, chain := range t.summary {
						if _, ok := fn.summary[lock]; ok {
							continue
						}
						step := WitnessStep{Func: fn.key, Action: "call " + t.key, Pos: pos(c.pos)}
						fn.summary[lock] = append([]WitnessStep{step}, chain...)
						changed = true
					}
				}
			}
		}
	}
}

// addEdges turns events + summaries into dependency edges.
func (b *lockGraphBuilder) addEdges() {
	pos := func(p token.Pos) string { return b.fset.Position(p).String() }
	add := func(from heldLock, fn *fnNode, to string, tail []WitnessStep) {
		key := [2]string{from.lock, to}
		if e := b.edges[key]; e != nil {
			e.Count++
			return
		}
		witness := append([]WitnessStep{{
			Func: fn.key, Action: "hold " + from.lock, Pos: pos(from.pos),
		}}, tail...)
		b.edges[key] = &LockEdge{
			From: from.lock, To: to, Self: from.lock == to, Count: 1, Witness: witness,
		}
	}
	for _, fn := range b.ix.fns {
		for _, a := range fn.acquires {
			for _, h := range a.held {
				add(h, fn, a.lock, []WitnessStep{{
					Func: fn.key, Action: "acquire " + a.lock, Pos: pos(a.pos),
				}})
			}
		}
		for _, c := range fn.calls {
			if len(c.held) == 0 {
				continue
			}
			for _, t := range c.targets {
				// Deterministic order over the callee summary.
				locks := make([]string, 0, len(t.summary))
				for lock := range t.summary {
					locks = append(locks, lock)
				}
				sort.Strings(locks)
				for _, lock := range locks {
					step := WitnessStep{Func: fn.key, Action: "call " + t.key, Pos: pos(c.pos)}
					for _, h := range c.held {
						add(h, fn, lock, append([]WitnessStep{step}, t.summary[lock]...))
					}
				}
			}
		}
	}
}

func (b *lockGraphBuilder) assemble() *LockGraph {
	g := &LockGraph{Schema: LockGraphSchema}
	for _, n := range b.nodes {
		g.Nodes = append(g.Nodes, n)
	}
	sort.Slice(g.Nodes, func(i, j int) bool { return g.Nodes[i].ID < g.Nodes[j].ID })
	for _, e := range b.edges {
		g.Edges = append(g.Edges, e)
	}
	sort.Slice(g.Edges, func(i, j int) bool {
		if g.Edges[i].From != g.Edges[j].From {
			return g.Edges[i].From < g.Edges[j].From
		}
		return g.Edges[i].To < g.Edges[j].To
	})
	g.Cycles = findCycles(g.Edges)
	return g
}

// findCycles enumerates elementary cycles (length ≥ 2) over the edge
// set, each reported once with its rotation starting at the smallest
// lock ID. Self-edges are excluded: name-based identity cannot tell two
// instances of the same type apart, so A→A is recorded on the edge but
// is not a finding. Bounded depth and count keep pathological graphs
// from exploding.
func findCycles(edges []*LockEdge) []LockCycle {
	const (
		maxLen    = 8
		maxCycles = 64
	)
	succ := map[string][]string{}
	edgeByKey := map[[2]string]*LockEdge{}
	nodeSet := map[string]bool{}
	for _, e := range edges {
		if e.Self {
			continue
		}
		succ[e.From] = append(succ[e.From], e.To)
		edgeByKey[[2]string{e.From, e.To}] = e
		nodeSet[e.From], nodeSet[e.To] = true, true
	}
	nodes := make([]string, 0, len(nodeSet))
	for n := range nodeSet {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	for _, s := range succ {
		sort.Strings(s)
	}

	var cycles []LockCycle
	var path []string
	onPath := map[string]bool{}
	var start string
	var dfs func(n string)
	dfs = func(n string) {
		if len(cycles) >= maxCycles || len(path) >= maxLen {
			return
		}
		path = append(path, n)
		onPath[n] = true
		for _, next := range succ[n] {
			if next == start && len(path) >= 2 {
				locks := append([]string(nil), path...)
				var witness []WitnessStep
				for i := range locks {
					e := edgeByKey[[2]string{locks[i], locks[(i+1)%len(locks)]}]
					witness = append(witness, e.Witness...)
				}
				cycles = append(cycles, LockCycle{Locks: locks, Witness: witness})
				continue
			}
			// Enumerate each cycle once: only walk nodes greater than
			// the start (the cycle is discovered from its smallest node).
			if next > start && !onPath[next] {
				dfs(next)
			}
		}
		path = path[:len(path)-1]
		delete(onPath, n)
	}
	for _, n := range nodes {
		start = n
		dfs(n)
	}
	return cycles
}

// diagnostics renders each cycle as one finding, anchored at the source
// position where the cycle's first edge acquires its second lock (the
// line a `//vet:ignore lockorder` suppression annotates).
func (g *LockGraph) diagnostics() []Diagnostic {
	var diags []Diagnostic
	for _, c := range g.Cycles {
		anchor := token.Position{}
		// The first edge's witness ends at the acquisition of the second
		// lock in the cycle; anchor there.
		var firstEdgeEnd WitnessStep
		for _, e := range g.Edges {
			if e.From == c.Locks[0] && e.To == c.Locks[1%len(c.Locks)] {
				firstEdgeEnd = e.Witness[len(e.Witness)-1]
				break
			}
		}
		anchor = parsePosition(firstEdgeEnd.Pos)
		var steps []string
		for _, w := range c.Witness {
			steps = append(steps, w.String())
		}
		diags = append(diags, Diagnostic{
			Pos: anchor,
			Msg: fmt.Sprintf("potential deadlock cycle: %s -> %s; witness: %s",
				strings.Join(c.Locks, " -> "), c.Locks[0], strings.Join(steps, "; ")),
		})
	}
	return diags
}

// parsePosition reverses token.Position.String() ("file:line:col").
func parsePosition(s string) token.Position {
	var p token.Position
	rest := s
	if i := strings.LastIndexByte(rest, ':'); i >= 0 {
		fmt.Sscanf(rest[i+1:], "%d", &p.Column)
		rest = rest[:i]
	}
	if i := strings.LastIndexByte(rest, ':'); i >= 0 {
		fmt.Sscanf(rest[i+1:], "%d", &p.Line)
		rest = rest[:i]
	}
	p.Filename = rest
	return p
}

// WriteJSON emits the graph as indented JSON.
func (g *LockGraph) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(g)
}

// WriteDOT emits the graph in Graphviz DOT form. Cycle edges are
// highlighted red; local-scope nodes render dashed.
func (g *LockGraph) WriteDOT(w io.Writer) error {
	inCycle := map[[2]string]bool{}
	for _, c := range g.Cycles {
		for i := range c.Locks {
			inCycle[[2]string{c.Locks[i], c.Locks[(i+1)%len(c.Locks)]}] = true
		}
	}
	var sb strings.Builder
	sb.WriteString("digraph lockorder {\n  rankdir=LR;\n  node [shape=box, fontname=\"monospace\"];\n")
	for _, n := range g.Nodes {
		attrs := ""
		if n.Scope == "local" {
			attrs = ", style=dashed"
		}
		fmt.Fprintf(&sb, "  %q [label=%q%s];\n", n.ID, fmt.Sprintf("%s (%d)", n.ID, n.Acquires), attrs)
	}
	for _, e := range g.Edges {
		attrs := fmt.Sprintf("label=%q", e.Witness[len(e.Witness)-1].Pos)
		if inCycle[[2]string{e.From, e.To}] {
			attrs += ", color=red, penwidth=2"
		} else if e.Self {
			attrs += ", style=dotted"
		}
		fmt.Fprintf(&sb, "  %q -> %q [%s];\n", e.From, e.To, attrs)
	}
	sb.WriteString("}\n")
	_, err := io.WriteString(w, sb.String())
	return err
}
