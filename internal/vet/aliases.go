package vet

import (
	"go/ast"
	"go/token"
	"strings"
)

// collectAliases resolves the simple local-alias pattern that used to
// blind the lock analyzers:
//
//	mu := &s.mu
//	mu.Lock()
//	...
//	s.mu.Unlock()
//
// Without resolution "mu" and "s.mu" are tracked as two different locks,
// so the pairing (and ordering) analyses silently miss the connection.
// The pass is flow-insensitive: it records `ident := &expr` and
// `ident := expr` assignments whose right-hand side is a trackable
// selector chain, chases alias-of-alias, and drops any identifier that
// is ever rebound to a different base (or used as a loop variable),
// which keeps the map sound for the patterns it claims to handle.
func collectAliases(body *ast.BlockStmt) map[string]string {
	aliases := map[string]string{}
	invalid := map[string]bool{}
	record := func(name, target string) {
		if invalid[name] || name == "_" {
			return
		}
		if prev, ok := aliases[name]; ok && prev != target {
			delete(aliases, name)
			invalid[name] = true
			return
		}
		aliases[name] = target
	}
	invalidate := func(name string) {
		delete(aliases, name)
		invalid[name] = true
	}

	inspectShallow(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range st.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				if i >= len(st.Rhs) {
					// Multi-value assignment from one call: not an alias.
					invalidate(id.Name)
					continue
				}
				target, ok := aliasTarget(st.Rhs[i])
				if !ok || target == id.Name {
					invalidate(id.Name)
					continue
				}
				record(id.Name, target)
			}
		case *ast.RangeStmt:
			for _, lhs := range []ast.Expr{st.Key, st.Value} {
				if id, ok := lhs.(*ast.Ident); ok {
					invalidate(id.Name)
				}
			}
		}
		return true
	})

	// Chase alias-of-alias chains (`a := &s.mu; b := a`) to a fixed
	// point; the invalid set above breaks any accidental loop.
	for range aliases {
		changed := false
		for name, target := range aliases {
			seg, rest, _ := strings.Cut(target, ".")
			if next, ok := aliases[seg]; ok && seg != name {
				resolved := next
				if rest != "" {
					resolved += "." + rest
				}
				if resolved != target {
					aliases[name] = resolved
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	return aliases
}

// aliasTarget extracts the trackable base expression an alias points at:
// `&s.mu` and `s.mu` both yield "s.mu".
func aliasTarget(e ast.Expr) (string, bool) {
	if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.AND {
		e = u.X
	}
	switch e.(type) {
	case *ast.Ident, *ast.SelectorExpr:
	default:
		return "", false
	}
	s := exprString(e)
	if s == "·" || strings.Contains(s, "·") {
		return "", false
	}
	return s, true
}

// resolveAlias rewrites a lock-key base through the alias map: with
// aliases["mu"] = "s.mu", both "mu" and "mu.inner" resolve to "s.mu"
// and "s.mu.inner".
func resolveAlias(aliases map[string]string, base string) string {
	if len(aliases) == 0 {
		return base
	}
	seg, rest, hasRest := strings.Cut(base, ".")
	target, ok := aliases[seg]
	if !ok {
		return base
	}
	if hasRest {
		return target + "." + rest
	}
	return target
}
