package vet

import (
	"strings"
	"testing"
)

func TestBlockingUnderLockChannelOps(t *testing.T) {
	src := `package p
func f(mu mutex, ch chan int) {
	mu.Lock()
	ch <- 1
	<-ch
	mu.Unlock()
	ch <- 2
}
`
	wantDiags(t, runOn(t, BlockingUnderLock, src),
		"channel send in f while holding mu",
		"channel receive in f while holding mu")
}

func TestBlockingUnderLockSelect(t *testing.T) {
	src := `package p
func f(mu mutex, a, b chan int) {
	mu.Lock()
	select {
	case <-a:
	case b <- 1:
	}
	mu.Unlock()
}
`
	wantDiags(t, runOn(t, BlockingUnderLock, src),
		"blocking select in f while holding mu")

	// A default case makes the select non-blocking.
	withDefault := strings.Replace(src, "case b <- 1:", "case b <- 1:\n\tdefault:", 1)
	wantDiags(t, runOn(t, BlockingUnderLock, withDefault))
}

func TestBlockingUnderLockCalls(t *testing.T) {
	src := `package p
func f(s *S) {
	s.mu.Lock()
	time.Sleep(10)
	os.ReadFile("x")
	fmt.Println("y")
	s.parker.Park()
	s.mu.Unlock()
	time.Sleep(10)
}
`
	wantDiags(t, runOn(t, BlockingUnderLock, src),
		"time.Sleep in f while holding s.mu",
		"I/O call os.ReadFile in f while holding s.mu",
		"fmt.Println (stream I/O) in f while holding s.mu",
		"parker wait s.parker.Park in f while holding s.mu")
}

// TestBlockingUnderLockHeldSetNames: with two locks held the message
// lists both, sorted.
func TestBlockingUnderLockHeldSetNames(t *testing.T) {
	src := `package p
func f(s *S) {
	s.b.Lock()
	s.a.Lock()
	time.Sleep(1)
	s.a.Unlock()
	s.b.Unlock()
}
`
	wantDiags(t, runOn(t, BlockingUnderLock, src),
		"time.Sleep in f while holding s.a, s.b")
}

// TestBlockingUnderLockAliased: blocking through a local alias of the
// lock is still attributed to the held lock.
func TestBlockingUnderLockAliased(t *testing.T) {
	src := `package p
func f(s *S, ch chan int) {
	mu := &s.mu
	mu.Lock()
	ch <- 1
	mu.Unlock()
}
`
	wantDiags(t, runOn(t, BlockingUnderLock, src),
		"channel send in f while holding s.mu")
}

// TestBlockingUnderLockBranchMerge: the held-set is must-hold — an op
// after a branch that released on one arm is not flagged.
func TestBlockingUnderLockBranchMerge(t *testing.T) {
	src := `package p
func f(mu mutex, ch chan int, bail bool) {
	mu.Lock()
	if bail {
		mu.Unlock()
	}
	ch <- 1
	_ = bail
}
`
	wantDiags(t, runOn(t, BlockingUnderLock, src))
}

func TestBlockingUnderLockIgnoreDirective(t *testing.T) {
	src := `package p
func f(mu mutex, ch chan int) {
	mu.Lock()
	ch <- 1 //vet:ignore blockingunderlock
	mu.Unlock()
}
`
	wantDiags(t, runOn(t, BlockingUnderLock, src))

	// Naming a different analyzer does not suppress.
	src2 := strings.Replace(src, "vet:ignore blockingunderlock", "vet:ignore lockpair", 1)
	wantDiags(t, runOn(t, BlockingUnderLock, src2),
		"channel send in f while holding mu")
}

// TestBlockingUnderLockInsideLiteral: function literals are their own
// scope — a lock held by the enclosing function is not (and cannot
// soundly be) attributed to the goroutine body, but a lock taken inside
// the literal is tracked.
func TestBlockingUnderLockInsideLiteral(t *testing.T) {
	src := `package p
func f(mu mutex, ch chan int) {
	go func() {
		mu.Lock()
		ch <- 1
		mu.Unlock()
	}()
}
`
	wantDiags(t, runOn(t, BlockingUnderLock, src),
		"channel send in func literal while holding mu")
}
