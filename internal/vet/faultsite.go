package vet

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// FaultSite enforces the fault-injection call discipline at every use
// of a faultinject site outside the faultinject package itself:
//
//	if faultinject.Site.Enabled() {          // cheap armed-check first
//	    if flt, ok := faultinject.Site.Fire(); ok { ... }
//	}
//
// Two rules: (1) every Site.Fire() must sit under an if whose condition
// checks the same site's Enabled() — Fire() takes the site lock and
// counts a fire, so calling it unconditionally puts a mutex on the hot
// path and burns the fault budget; (2) a site must not Fire() twice in
// one function — a double fire consumes two budgeted faults per logical
// injection point and skews MaxFires plans.
var FaultSite = &Analyzer{
	Name: "faultsite",
	Doc:  "faultinject sites guarded by Enabled() and fired once per function",
	Run:  runFaultSite,
}

func runFaultSite(p *Pass) []Diagnostic {
	var diags []Diagnostic
	for _, u := range p.Units {
		if u.Pkg == "faultinject" {
			continue // the package defines the protocol; it doesn't follow it
		}
		for _, f := range u.Files {
			for _, fn := range funcBodies(f) {
				diags = append(diags, faultSiteFunc(p.Fset, fn)...)
			}
		}
	}
	return diags
}

// siteFireCall returns the site base expression ("faultinject.PolicyTrap")
// if e is a Fire() call on a faultinject site.
func siteFireCall(e ast.Expr) (string, bool) {
	return siteMethodCall(e, "Fire")
}

func siteMethodCall(e ast.Expr, method string) (string, bool) {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return "", false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != method {
		return "", false
	}
	base := exprString(sel.X)
	if !strings.HasPrefix(base, "faultinject.") {
		return "", false
	}
	return base, true
}

func faultSiteFunc(fset *token.FileSet, fn funcBody) []Diagnostic {
	var diags []Diagnostic
	fired := map[string]token.Position{}

	// Walk with an explicit ancestor stack so each Fire() can look
	// upward for its guarding if.
	var stack []ast.Node
	ast.Inspect(fn.body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false // separate scope, visited via its own funcBody
		}
		stack = append(stack, n)
		site, ok := siteFireCall(nodeExpr(n))
		if !ok {
			return true
		}
		pos := fset.Position(n.Pos())
		if !guardedByEnabled(stack, site) {
			diags = append(diags, Diagnostic{
				Pos: pos,
				Msg: fmt.Sprintf("%s.Fire() not guarded by an `if %s.Enabled()` check", site, site),
			})
		}
		if first, dup := fired[site]; dup {
			diags = append(diags, Diagnostic{
				Pos: pos,
				Msg: fmt.Sprintf("%s fired twice in %s (first at %s)", site, fn.name, first),
			})
		} else {
			fired[site] = pos
		}
		return true
	})
	return diags
}

// guardedByEnabled reports whether any enclosing if-condition on the
// ancestor stack contains an Enabled() call on the same site.
func guardedByEnabled(stack []ast.Node, site string) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		ifStmt, ok := stack[i].(*ast.IfStmt)
		if !ok {
			continue
		}
		found := false
		ast.Inspect(ifStmt.Cond, func(n ast.Node) bool {
			if s, ok := siteMethodCall(nodeExpr(n), "Enabled"); ok && s == site {
				found = true
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}
