package vet

import (
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// parsePass builds a single-unit Pass from in-memory sources keyed by
// file name.
func parsePass(t *testing.T, files map[string]string) *Pass {
	t.Helper()
	fset := token.NewFileSet()
	u := &Unit{Dir: "test"}
	for name, src := range files {
		f, err := parser.ParseFile(fset, name, src, parser.ParseComments)
		if err != nil {
			t.Fatalf("parse %s: %v", name, err)
		}
		u.Files = append(u.Files, f)
		u.Pkg = f.Name.Name
	}
	return &Pass{Fset: fset, Units: []*Unit{u}}
}

func runOn(t *testing.T, a *Analyzer, src string) []Diagnostic {
	t.Helper()
	p := parsePass(t, map[string]string{"src.go": src})
	return Run(p, []*Analyzer{a})
}

func wantDiags(t *testing.T, diags []Diagnostic, substrs ...string) {
	t.Helper()
	if len(diags) != len(substrs) {
		t.Fatalf("got %d diagnostics, want %d:\n%v", len(diags), len(substrs), diags)
	}
	for i, want := range substrs {
		if !strings.Contains(diags[i].String(), want) {
			t.Errorf("diag %d = %q, want substring %q", i, diags[i], want)
		}
	}
}

func TestIgnoreDirectiveSuppresses(t *testing.T) {
	src := `package p
func f(mu interface{ Lock(); Unlock() }, bad bool) {
	mu.Lock()
	if bad {
		return //vet:ignore lockpair
	}
	mu.Unlock()
}
`
	wantDiags(t, runOn(t, LockPair, src)) // suppressed → no diagnostics

	// The same directive naming a different analyzer does not suppress.
	src2 := strings.Replace(src, "vet:ignore lockpair", "vet:ignore faultsite", 1)
	wantDiags(t, runOn(t, LockPair, src2), "return in f with mu.Lock() held")

	// A bare vet:ignore on the preceding line suppresses everything.
	src3 := strings.Replace(src, "return //vet:ignore lockpair",
		"//vet:ignore\n\t\treturn", 1)
	wantDiags(t, runOn(t, LockPair, src3))
}

func TestLoadWalksAndSkipsTestdata(t *testing.T) {
	fset := token.NewFileSet()
	units, err := Load(fset, []string{"../vet/..."}, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(units) != 1 || units[0].Pkg != "vet" {
		t.Fatalf("units = %+v", units)
	}
	// Without -tests, no _test.go file is parsed.
	for _, f := range units[0].Files {
		name := fset.Position(f.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") {
			t.Errorf("test file %s parsed without includeTests", name)
		}
	}

	withTests, err := Load(fset, []string{".."}, true)
	if err != nil {
		t.Fatal(err)
	}
	// ".." is internal/, which holds no Go files itself → no units.
	for _, u := range withTests {
		if len(u.Files) == 0 {
			t.Errorf("empty unit %q", u.Dir)
		}
	}
}
