package vet

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// HelperDrift keeps the helper tables in lockstep with the HelperID
// enum. Adding a helper means touching several keyed tables —
// helperNames and helperSpecs in internal/policy, HelperCosts in
// internal/policy/analysis — and a missed one surfaces as a runtime
// "helper(?)" string, a verifier reject, or a silently-wrong cost
// bound. The check collects the enum members (every exported constant
// in a HelperID const block) and requires any map literal keyed by two
// or more of them to cover the full set.
var HelperDrift = &Analyzer{
	Name: "helperdrift",
	Doc:  "helper tables keyed by HelperID cover every enum member",
	Run:  runHelperDrift,
}

func runHelperDrift(p *Pass) []Diagnostic {
	enum := collectHelperEnum(p)
	if len(enum) == 0 {
		return nil
	}
	var diags []Diagnostic
	for _, u := range p.Units {
		for _, f := range u.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				lit, ok := n.(*ast.CompositeLit)
				if !ok {
					return true
				}
				if d := checkHelperLiteral(p.Fset, lit, enum); d != nil {
					diags = append(diags, *d)
				}
				return true
			})
		}
	}
	return diags
}

// collectHelperEnum finds const blocks typed HelperID and returns the
// exported member names (unexported members like the numHelpers
// sentinel are not table keys).
func collectHelperEnum(p *Pass) map[string]bool {
	enum := map[string]bool{}
	for _, u := range p.Units {
		for _, f := range u.Files {
			for _, decl := range f.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok || gd.Tok != token.CONST {
					continue
				}
				inEnum := false
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					if vs.Type != nil {
						id, ok := vs.Type.(*ast.Ident)
						inEnum = ok && id.Name == "HelperID"
					} else if len(vs.Values) > 0 {
						// explicit untyped values reset the iota run
						inEnum = false
					}
					if !inEnum {
						continue
					}
					for _, name := range vs.Names {
						if ast.IsExported(name.Name) {
							enum[name.Name] = true
						}
					}
				}
			}
		}
	}
	return enum
}

// helperKeyName extracts the enum member name from a map key — either
// the bare identifier (inside package policy) or a policy.HelperX
// selector (other packages).
func helperKeyName(e ast.Expr) string {
	switch k := e.(type) {
	case *ast.Ident:
		return k.Name
	case *ast.SelectorExpr:
		return k.Sel.Name
	}
	return ""
}

// checkHelperLiteral reports a diagnostic if lit is a helper-keyed map
// literal that misses enum members. A literal only qualifies once it
// uses at least two enum members as keys — one hit is most likely a
// test fixture, not a table.
func checkHelperLiteral(fset *token.FileSet, lit *ast.CompositeLit, enum map[string]bool) *Diagnostic {
	seen := map[string]bool{}
	hits := 0
	for _, el := range lit.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			return nil
		}
		name := helperKeyName(kv.Key)
		if enum[name] {
			hits++
			seen[name] = true
		}
	}
	if hits < 2 {
		return nil
	}
	var missing []string
	for name := range enum {
		if !seen[name] {
			missing = append(missing, name)
		}
	}
	if len(missing) == 0 {
		return nil
	}
	sort.Strings(missing)
	return &Diagnostic{
		Pos: fset.Position(lit.Pos()),
		Msg: fmt.Sprintf("helper table missing enum member(s): %s", strings.Join(missing, ", ")),
	}
}
