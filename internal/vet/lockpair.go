package vet

import (
	"fmt"
	"go/ast"
	"go/token"
)

// LockPair reports functions that return while still holding a lock
// they also release elsewhere in the same function — the classic
// early-return leak:
//
//	mu.Lock()
//	if err != nil {
//		return err // leaked: mu still held
//	}
//	mu.Unlock()
//
// The check simulates a held-set over the statement tree (branches,
// loops, switches), treating `defer mu.Unlock()` as covering every
// subsequent path. Simple local aliases (`mu := &s.mu`) resolve to the
// aliased lock, so mixed alias/direct pairing is tracked as one lock.
// Functions that acquire a lock and never release it (intentional
// cross-function lockers, e.g. a Lock method wrapping an inner lock)
// are skipped: the leak signal is "this function pairs the lock on some
// paths but not all of them".
var LockPair = &Analyzer{
	Name: "lockpair",
	Doc:  "lock/unlock pairing on all paths within a function",
	Run:  runLockPair,
}

// acquire method -> matching release method.
var lockPairs = map[string]string{
	"Lock":    "Unlock",
	"RLock":   "RUnlock",
	"Acquire": "Release",
}

func runLockPair(p *Pass) []Diagnostic {
	var diags []Diagnostic
	for _, u := range p.Units {
		for _, f := range u.Files {
			for _, fn := range funcBodies(f) {
				diags = append(diags, lockPairFunc(p.Fset, fn)...)
			}
		}
	}
	return diags
}

// lockCall classifies a call expression as an acquire or release of a
// trackable lock expression, resolving simple local aliases. The key
// pairs the base expression with the acquire method so read and write
// locks on the same mutex are tracked independently.
func lockCall(e ast.Expr, aliases map[string]string) (key string, acquire bool, ok bool) {
	call, isCall := e.(*ast.CallExpr)
	if !isCall {
		return "", false, false
	}
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", false, false
	}
	base := exprString(sel.X)
	if base == "·" {
		return "", false, false
	}
	base = resolveAlias(aliases, base)
	if _, isAcq := lockPairs[sel.Sel.Name]; isAcq {
		return base + "." + sel.Sel.Name, true, true
	}
	for acq, rel := range lockPairs {
		if sel.Sel.Name == rel {
			return base + "." + acq, false, true
		}
	}
	return "", false, false
}

// lockKeyBase strips the acquire-method suffix off a held-set key:
// "s.mu.Lock" and "s.mu.RLock" both identify lock "s.mu".
func lockKeyBase(key string) string {
	for acq := range lockPairs {
		if rest, ok := cutSuffixDot(key, acq); ok {
			return rest
		}
	}
	return key
}

func cutSuffixDot(s, method string) (string, bool) {
	suffix := "." + method
	if len(s) > len(suffix) && s[len(s)-len(suffix):] == suffix {
		return s[:len(s)-len(suffix)], true
	}
	return s, false
}

func lockPairFunc(fset *token.FileSet, fn funcBody) []Diagnostic {
	aliases := collectAliases(fn.body)
	// First pass: which lock keys does this function release anywhere?
	// Only those participate — a pure locker or pure releaser is a
	// cross-function protocol, not a leak.
	releases := map[string]bool{}
	inspectShallow(fn.body, func(n ast.Node) bool {
		if key, acq, ok := lockCall(nodeExpr(n), aliases); ok && !acq {
			releases[key] = true
		}
		return true
	})
	if len(releases) == 0 {
		return nil
	}
	sim := &lockSim{fset: fset, fn: fn, aliases: aliases, releases: releases, reportLeaks: true}
	exit, terminated := sim.block(fn.body.List, map[string]token.Pos{})
	if !terminated {
		sim.checkHeld(exit, fn.body.Rbrace, "function end")
	}
	return sim.diags
}

func nodeExpr(n ast.Node) ast.Expr {
	if e, ok := n.(ast.Expr); ok {
		return e
	}
	return nil
}

// simHooks receive path-simulation events from lockSim; the other
// analyzers (lockorder, blockingunderlock) plug in here and share the
// held-set machinery. The held map passed to each hook is live
// simulation state — copy it if retained.
type simHooks struct {
	// onAcquire fires when a trackable lock is acquired; held is the
	// state *before* the acquisition.
	onAcquire func(key string, pos token.Pos, held map[string]token.Pos)
	// onCall fires for every non-lock call expression reachable on the
	// simulated path (function literals and `go`/`defer` payloads are
	// separate scopes and excluded).
	onCall func(call *ast.CallExpr, held map[string]token.Pos)
	// onBlock fires for potentially-blocking constructs: channel sends,
	// channel receives, and selects without a default case.
	onBlock func(pos token.Pos, what string, held map[string]token.Pos)
}

// simulateHeld runs the held-set path simulation over fn purely for its
// event stream (no leak diagnostics).
func simulateHeld(fset *token.FileSet, fn funcBody, hooks *simHooks) {
	sim := &lockSim{fset: fset, fn: fn, aliases: collectAliases(fn.body), hooks: hooks}
	sim.block(fn.body.List, map[string]token.Pos{})
}

type lockSim struct {
	fset        *token.FileSet
	fn          funcBody
	aliases     map[string]string
	releases    map[string]bool
	reportLeaks bool
	hooks       *simHooks
	diags       []Diagnostic
}

func (s *lockSim) checkHeld(held map[string]token.Pos, at token.Pos, what string) {
	if !s.reportLeaks {
		return
	}
	for key, lockPos := range held {
		if !s.releases[key] {
			continue
		}
		s.diags = append(s.diags, Diagnostic{
			Pos: s.fset.Position(at),
			Msg: fmt.Sprintf("%s in %s with %s() held (acquired at %s)",
				what, s.fn.name, key, s.fset.Position(lockPos)),
		})
	}
}

// scan walks the expression parts of one statement, reporting call and
// blocking events against the current held-set. blocking=false
// suppresses channel-op reports (used for select comm clauses, whose
// blocking behaviour is attributed to the select itself).
func (s *lockSim) scan(n ast.Node, held map[string]token.Pos, blocking bool) {
	if n == nil || s.hooks == nil {
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		switch x := m.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if _, _, ok := lockCall(x, s.aliases); ok {
				return true // held-set transition, not a plain call
			}
			if s.hooks.onCall != nil {
				s.hooks.onCall(x, held)
			}
		case *ast.UnaryExpr:
			if x.Op == token.ARROW && blocking && s.hooks.onBlock != nil {
				s.hooks.onBlock(x.Pos(), "channel receive", held)
			}
		case *ast.SendStmt:
			if blocking && s.hooks.onBlock != nil {
				s.hooks.onBlock(x.Pos(), "channel send", held)
			}
		}
		return true
	})
}

func clone(held map[string]token.Pos) map[string]token.Pos {
	out := make(map[string]token.Pos, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}

// intersect keeps only keys held in every input state — the optimistic
// merge: a lock released on any incoming path is treated as released, so
// conditional unlocks don't produce false leaks downstream (the branch
// that misses the unlock is caught at its own return).
func intersect(states ...map[string]token.Pos) map[string]token.Pos {
	if len(states) == 0 {
		return map[string]token.Pos{}
	}
	out := clone(states[0])
	for _, st := range states[1:] {
		for k := range out {
			if _, ok := st[k]; !ok {
				delete(out, k)
			}
		}
	}
	return out
}

// block simulates a statement list. It returns the held-set at the
// fall-through exit and whether the list definitely terminates
// (return / panic / branch) before falling through.
func (s *lockSim) block(list []ast.Stmt, held map[string]token.Pos) (map[string]token.Pos, bool) {
	for _, stmt := range list {
		var terminated bool
		held, terminated = s.stmt(stmt, held)
		if terminated {
			return held, true
		}
	}
	return held, false
}

func (s *lockSim) stmt(stmt ast.Stmt, held map[string]token.Pos) (map[string]token.Pos, bool) {
	switch st := stmt.(type) {
	case *ast.ExprStmt:
		if key, acq, ok := lockCall(st.X, s.aliases); ok {
			if acq {
				if s.hooks != nil && s.hooks.onAcquire != nil {
					s.hooks.onAcquire(key, st.Pos(), held)
				}
				held[key] = st.Pos()
			} else {
				delete(held, key)
			}
			return held, false
		}
		if call, ok := st.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				s.scan(st.X, held, true)
				return held, true
			}
		}
		s.scan(st.X, held, true)
		return held, false

	case *ast.DeferStmt:
		// defer mu.Unlock() — or a deferred closure releasing locks —
		// covers every path from here on. The deferred payload itself
		// runs at return time; it is not scanned as a path event.
		for _, key := range deferredReleases(st.Call, s.aliases) {
			delete(held, key)
		}
		return held, false

	case *ast.ReturnStmt:
		s.scan(st, held, true)
		s.checkHeld(held, st.Pos(), "return")
		return held, true

	case *ast.BranchStmt:
		// break / continue / goto leave the list; approximate as a
		// terminator without a held check (loop-carried state is out of
		// scope for this checker).
		return held, true

	case *ast.BlockStmt:
		return s.block(st.List, held)

	case *ast.LabeledStmt:
		return s.stmt(st.Stmt, held)

	case *ast.IfStmt:
		if st.Init != nil {
			held, _ = s.stmt(st.Init, held)
		}
		s.scan(st.Cond, held, true)
		thenExit, thenTerm := s.block(st.Body.List, clone(held))
		elseExit, elseTerm := clone(held), false
		if st.Else != nil {
			elseExit, elseTerm = s.stmt(st.Else, clone(held))
		}
		switch {
		case thenTerm && elseTerm:
			return held, true
		case thenTerm:
			return elseExit, false
		case elseTerm:
			return thenExit, false
		default:
			return intersect(thenExit, elseExit), false
		}

	case *ast.ForStmt:
		if st.Init != nil {
			held, _ = s.stmt(st.Init, held)
		}
		s.scan(st.Cond, held, true)
		s.scan(st.Post, held, true)
		bodyExit, bodyTerm := s.block(st.Body.List, clone(held))
		if st.Cond == nil && bodyTerm {
			// `for { ... }` with no fall-through: treat like the body.
			return bodyExit, false
		}
		if bodyTerm {
			return held, false
		}
		return intersect(held, bodyExit), false

	case *ast.RangeStmt:
		s.scan(st.X, held, true)
		bodyExit, bodyTerm := s.block(st.Body.List, clone(held))
		if bodyTerm {
			return held, false
		}
		return intersect(held, bodyExit), false

	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return s.switchLike(stmt, held)

	case *ast.GoStmt:
		// The spawned goroutine is a separate scope (funcBodies visits
		// its literal independently); no effect on this path.
		return held, false

	default:
		s.scan(stmt, held, true)
		return held, false
	}
}

func (s *lockSim) switchLike(stmt ast.Stmt, held map[string]token.Pos) (map[string]token.Pos, bool) {
	var body *ast.BlockStmt
	hasDefault := false
	isSelect := false
	switch st := stmt.(type) {
	case *ast.SwitchStmt:
		if st.Init != nil {
			held, _ = s.stmt(st.Init, held)
		}
		s.scan(st.Tag, held, true)
		body = st.Body
	case *ast.TypeSwitchStmt:
		s.scan(st.Assign, held, true)
		body = st.Body
	case *ast.SelectStmt:
		isSelect = true
		body = st.Body
	}
	var exits []map[string]token.Pos
	for _, c := range body.List {
		var caseBody []ast.Stmt
		switch cc := c.(type) {
		case *ast.CaseClause:
			caseBody = cc.Body
			if cc.List == nil {
				hasDefault = true
			}
			for _, e := range cc.List {
				s.scan(e, held, true)
			}
		case *ast.CommClause:
			caseBody = cc.Body
			if cc.Comm == nil {
				hasDefault = true
			} else {
				// Calls in the comm op still happen; its channel op is
				// attributed to the select as a whole below.
				s.scan(cc.Comm, held, false)
			}
		}
		exit, term := s.block(caseBody, clone(held))
		if !term {
			exits = append(exits, exit)
		}
	}
	if isSelect && !hasDefault && s.hooks != nil && s.hooks.onBlock != nil {
		s.hooks.onBlock(stmt.Pos(), "blocking select", held)
	}
	if !hasDefault {
		exits = append(exits, held)
	}
	if len(exits) == 0 {
		return held, true
	}
	return intersect(exits...), false
}

// deferredReleases lists lock keys released by a deferred call: either
// directly (`defer mu.Unlock()`) or inside a deferred closure.
func deferredReleases(call *ast.CallExpr, aliases map[string]string) []string {
	if key, acq, ok := lockCall(call, aliases); ok && !acq {
		return []string{key}
	}
	lit, ok := call.Fun.(*ast.FuncLit)
	if !ok {
		return nil
	}
	var keys []string
	inspectShallow(lit.Body, func(n ast.Node) bool {
		if key, acq, ok := lockCall(nodeExpr(n), aliases); ok && !acq {
			keys = append(keys, key)
		}
		return true
	})
	return keys
}
