package core

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"concord/internal/faultinject"
	"concord/internal/locks"
	"concord/internal/obs"
	"concord/internal/policy"
	"concord/internal/task"
)

// mapLookupPolicy loads a valid KindLockAcquired program that performs a
// map lookup on every acquisition — a policy that is healthy on its own
// but exercises the helper path every hook invocation, so the
// fault-injection sites (policy.helper, policy.latency, core.hook_panic)
// all have something to bite. Returns the program so tests can corrupt
// it for the persistent-fault shape.
func mapLookupPolicy(t testing.TB, f *Framework, name string) *policy.Program {
	t.Helper()
	m := policy.NewArrayMap("m_"+name, 8, 1)
	prog := policy.NewBuilder(name, policy.KindLockAcquired).
		StoreStackImm(policy.OpStW, -4, 0).
		LoadMapPtr(policy.R1, m).
		MovReg(policy.R2, policy.RFP).
		AddImm(policy.R2, -4).
		Call(policy.HelperMapLookup).
		JmpImm(policy.OpJneImm, policy.R0, 0, "ok").
		ReturnImm(0).
		Label("ok").
		ReturnImm(1).
		MustProgram()
	if _, err := f.LoadPolicy(name, prog); err != nil {
		t.Fatal(err)
	}
	return prog
}

// pumpUntil drives lock traffic until cond holds (the supervisor's
// timers need ongoing hook invocations to observe re-injected faults).
func pumpUntil(t *testing.T, l *locks.ShflLock, tk *task.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		l.Lock(tk)
		l.Unlock(tk)
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestBreakerTransientFaultHeals is the heart of the self-healing story:
// one injected fault opens the breaker, the backed-off re-attach goes on
// probation, and a fault-free probation closes the breaker with the
// retry budget restored — the policy ends up installed again.
func TestBreakerTransientFaultHeals(t *testing.T) {
	t.Cleanup(faultinject.DisarmAll)
	f := newFramework()
	f.SetSupervisorConfig(SupervisorConfig{
		MaxRetries:     3,
		InitialBackoff: 2 * time.Millisecond,
		Probation:      10 * time.Millisecond,
	})
	l := locks.NewShflLock("l")
	if err := f.RegisterLock(l); err != nil {
		t.Fatal(err)
	}
	mapLookupPolicy(t, f, "pol")
	att, err := f.Attach("l", "pol")
	if err != nil {
		t.Fatal(err)
	}
	att.Wait()
	if att.Breaker() != BreakerClosed {
		t.Fatalf("initial breaker = %v", att.Breaker())
	}

	faultinject.PolicyHelper.Arm(faultinject.Config{MaxFires: 1})
	tk := task.New(f.Topology())
	pumpUntil(t, l, tk, "fault", func() bool { return att.Faults() > 0 })
	if att.Err() == nil {
		t.Fatal("no trip error recorded")
	}

	// Backoff (2ms) then probation (10ms) with the site exhausted: the
	// breaker must close again and the policy must be reinstalled.
	pumpUntil(t, l, tk, "breaker to close", func() bool { return att.Breaker() == BreakerClosed })
	if att.Retries() != 0 {
		t.Errorf("retry budget not restored after probation: %d", att.Retries())
	}
	if att.Quarantined() {
		t.Error("transient fault quarantined the policy")
	}
	h := l.HookSlot().Peek()
	if h == nil || h.Name != "pol" {
		t.Errorf("policy not reinstalled after heal: %+v", h)
	}
	if att.Faults() != 1 {
		t.Errorf("faults = %d, want exactly the 1 injected", att.Faults())
	}
}

// TestBreakerQuarantinePersistentFault: a policy that faults on every
// invocation burns through the retry budget and is quarantined — the
// lock stays on default behaviour, and health reporting says so.
func TestBreakerQuarantinePersistentFault(t *testing.T) {
	t.Cleanup(faultinject.DisarmAll)
	f := newFramework()
	f.SetSupervisorConfig(SupervisorConfig{
		MaxRetries:     2,
		InitialBackoff: time.Millisecond,
		Probation:      time.Second, // long: re-attached policy must fault out, not heal
	})
	l := locks.NewShflLock("l")
	if err := f.RegisterLock(l); err != nil {
		t.Fatal(err)
	}
	prog := mapLookupPolicy(t, f, "faulty")
	// Corrupt the program post-verification: out-of-range map index
	// faults the VM on every invocation (the persistent-fault shape).
	prog.Insns[1].Imm = 99
	att, err := f.Attach("l", "faulty")
	if err != nil {
		t.Fatal(err)
	}
	att.Wait()

	tk := task.New(f.Topology())
	pumpUntil(t, l, tk, "quarantine", att.Quarantined)
	if att.Retries() != 2 {
		t.Errorf("retries = %d, want 2 (MaxRetries)", att.Retries())
	}
	if l.HookSlot().Peek() != nil {
		t.Error("quarantined policy left hooks installed")
	}
	for _, info := range f.Locks() {
		if info.Policy != "" {
			t.Errorf("quarantined lock still reports policy %q", info.Policy)
		}
	}

	rows := f.HealthRows()
	if len(rows) != 1 {
		t.Fatalf("HealthRows = %+v", rows)
	}
	r := rows[0]
	if r.Breaker != "quarantined" || r.Policy != "faulty" || r.Faults == 0 || r.LastError == "" {
		t.Errorf("health row = %+v", r)
	}
}

// TestConcurrentFaultsSingleFallback: many hooks faulting at once on one
// attachment collapse to exactly one detach and one fallback hook swap
// (the idempotent safety valve).
func TestConcurrentFaultsSingleFallback(t *testing.T) {
	f := newFramework() // zero SupervisorConfig: one-shot quarantine
	tel := obs.NewTelemetry()
	f.EnableTelemetry(tel)
	l := locks.NewShflLock("l")
	if err := f.RegisterLock(l); err != nil {
		t.Fatal(err)
	}
	prog := mapLookupPolicy(t, f, "faulty")
	prog.Insns[1].Imm = 99
	att, err := f.Attach("l", "faulty")
	if err != nil {
		t.Fatal(err)
	}
	att.Wait()

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tk := task.New(f.Topology())
			for i := 0; i < 50; i++ {
				l.Lock(tk)
				l.Unlock(tk)
			}
		}()
	}
	wg.Wait()

	if !att.Quarantined() {
		t.Fatal("persistent fault not quarantined")
	}
	if got := tel.SafetyFallbacks.Value(); got != 1 {
		t.Errorf("SafetyFallbacks = %d, want exactly 1 fallback swap", got)
	}
	if got := tel.Quarantines.Value(); got != 1 {
		t.Errorf("Quarantines = %d, want 1", got)
	}
	if tel.PolicyFaults.Value() == 0 {
		t.Error("no policy faults counted")
	}
}

// TestSafetyTripEscalation: a lock runtime safety-check trip routed
// through the observer escalates straight to quarantine once the
// configured limit is reached, regardless of remaining retry budget.
func TestSafetyTripEscalation(t *testing.T) {
	f := newFramework()
	f.SetSupervisorConfig(SupervisorConfig{MaxRetries: 5, SafetyTripLimit: 1})
	l := locks.NewShflLock("l")
	if err := f.RegisterLock(l); err != nil {
		t.Fatal(err)
	}
	if _, err := f.LoadNative("numa", locks.NUMAHooks()); err != nil {
		t.Fatal(err)
	}
	att, err := f.Attach("l", "numa")
	if err != nil {
		t.Fatal(err)
	}
	att.Wait()

	f.handleSafetyTrip("l", "queue conservation violated")
	if !att.Quarantined() {
		t.Fatalf("safety trip past limit did not quarantine (breaker %v)", att.Breaker())
	}
	if !errors.Is(att.Err(), ErrSafetyTrip) {
		t.Errorf("Err = %v, want ErrSafetyTrip", att.Err())
	}
	if rows := f.HealthRows(); len(rows) != 1 || rows[0].SafetyTrips != 1 {
		t.Errorf("health rows = %+v", rows)
	}
}

// TestLatencyWatchdog: an injected slow hook exceeds the latency budget
// and is treated as a policy fault.
func TestLatencyWatchdog(t *testing.T) {
	t.Cleanup(faultinject.DisarmAll)
	f := newFramework()
	tel := obs.NewTelemetry()
	f.EnableTelemetry(tel)
	f.SetSupervisorConfig(SupervisorConfig{LatencyBudget: time.Millisecond})
	l := locks.NewShflLock("l")
	if err := f.RegisterLock(l); err != nil {
		t.Fatal(err)
	}
	mapLookupPolicy(t, f, "pol")
	att, err := f.Attach("l", "pol")
	if err != nil {
		t.Fatal(err)
	}
	att.Wait()

	faultinject.PolicyLatency.Arm(faultinject.Config{MaxFires: 1, Delay: 20 * time.Millisecond})
	tk := task.New(f.Topology())
	l.Lock(tk)
	l.Unlock(tk)

	if !errors.Is(att.Err(), ErrHookLatency) {
		t.Fatalf("Err = %v, want ErrHookLatency", att.Err())
	}
	if !att.Quarantined() {
		t.Error("latency trip with zero retries did not quarantine")
	}
	if got := tel.WatchdogTrips.Value(); got != 1 {
		t.Errorf("WatchdogTrips = %d, want 1", got)
	}
}

// TestHookPanicContained: a panicking hook is recovered inside the
// adapter and converted to a policy fault — the lock operation and the
// caller survive.
func TestHookPanicContained(t *testing.T) {
	t.Cleanup(faultinject.DisarmAll)
	f := newFramework()
	l := locks.NewShflLock("l")
	if err := f.RegisterLock(l); err != nil {
		t.Fatal(err)
	}
	mapLookupPolicy(t, f, "pol")
	att, err := f.Attach("l", "pol")
	if err != nil {
		t.Fatal(err)
	}
	att.Wait()

	faultinject.CoreHookPanic.Arm(faultinject.Config{MaxFires: 1})
	tk := task.New(f.Topology())
	l.Lock(tk) // must not panic out of the lock operation
	l.Unlock(tk)

	if att.Faults() == 0 {
		t.Fatal("panic not converted to a fault")
	}
	if !errors.Is(att.Err(), ErrHookPanic) {
		t.Errorf("Err = %v, want ErrHookPanic", att.Err())
	}
}

// TestDrainTimeoutTrips: a stalled livepatch drain (injected phantom
// reader pin) exceeds DrainTimeout; the patch is rolled back and the
// trip counts against the attachment.
func TestDrainTimeoutTrips(t *testing.T) {
	t.Cleanup(faultinject.DisarmAll)
	f := newFramework()
	tel := obs.NewTelemetry()
	f.EnableTelemetry(tel)
	f.SetSupervisorConfig(SupervisorConfig{DrainTimeout: 5 * time.Millisecond})
	l := locks.NewShflLock("l")
	if err := f.RegisterLock(l); err != nil {
		t.Fatal(err)
	}
	mapLookupPolicy(t, f, "pol")

	faultinject.LivepatchDrain.Arm(faultinject.Config{MaxFires: 1, Delay: 300 * time.Millisecond})
	att, err := f.Attach("l", "pol")
	if err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(10 * time.Second)
	for !att.Quarantined() && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if !att.Quarantined() {
		t.Fatal("drain timeout did not trip the breaker")
	}
	if !errors.Is(att.Err(), ErrDrainTimeout) {
		t.Errorf("Err = %v, want ErrDrainTimeout", att.Err())
	}
	if got := tel.DrainTimeouts.Value(); got != 1 {
		t.Errorf("DrainTimeouts = %d, want 1", got)
	}
}

// TestAttachTransitionAbort: the livepatch.abort site makes Attach fail
// cleanly before any state changes; once the site is exhausted the same
// attach succeeds.
func TestAttachTransitionAbort(t *testing.T) {
	t.Cleanup(faultinject.DisarmAll)
	f := newFramework()
	tel := obs.NewTelemetry()
	f.EnableTelemetry(tel)
	l := locks.NewShflLock("l")
	if err := f.RegisterLock(l); err != nil {
		t.Fatal(err)
	}
	mapLookupPolicy(t, f, "pol")

	faultinject.LivepatchAbort.Arm(faultinject.Config{MaxFires: 1})
	if _, err := f.Attach("l", "pol"); !errors.Is(err, ErrTransitionAborted) {
		t.Fatalf("Attach error = %v, want ErrTransitionAborted", err)
	}
	for _, info := range f.Locks() {
		if info.Policy != "" {
			t.Errorf("aborted attach left policy %q", info.Policy)
		}
	}
	if got := tel.TransitionAborts.Value(); got != 1 {
		t.Errorf("TransitionAborts = %d, want 1", got)
	}

	att, err := f.Attach("l", "pol")
	if err != nil {
		t.Fatalf("attach after abort site exhausted: %v", err)
	}
	att.Wait()
	// Telemetry composes into the table, so check the policy prefix.
	if h := l.HookSlot().Peek(); h == nil || !strings.HasPrefix(h.Name, "pol") {
		t.Errorf("policy not installed after retried attach: %+v", h)
	}
}

// TestHealthRowsUnattached: locks that never had a policy report an
// empty breaker, and rows come back sorted by lock name.
func TestHealthRowsUnattached(t *testing.T) {
	f := newFramework()
	for _, name := range []string{"zeta", "alpha"} {
		if err := f.RegisterLock(locks.NewShflLock(name)); err != nil {
			t.Fatal(err)
		}
	}
	rows := f.HealthRows()
	if len(rows) != 2 || rows[0].Lock != "alpha" || rows[1].Lock != "zeta" {
		t.Fatalf("rows = %+v", rows)
	}
	for _, r := range rows {
		if r.Breaker != "" || r.Policy != "" {
			t.Errorf("unattached row = %+v", r)
		}
	}
}

// TestBreakerStateStrings pins the strings the health surface prints.
func TestBreakerStateStrings(t *testing.T) {
	want := map[BreakerState]string{
		BreakerClosed:      "closed",
		BreakerOpen:        "open",
		BreakerHalfOpen:    "half-open",
		BreakerQuarantined: "quarantined",
		BreakerState(99):   "?",
	}
	for s, str := range want {
		if s.String() != str {
			t.Errorf("%d.String() = %q, want %q", s, s.String(), str)
		}
	}
}

// TestBackoffSchedule pins the exponential backoff shape.
func TestBackoffSchedule(t *testing.T) {
	cfg := SupervisorConfig{InitialBackoff: 10 * time.Millisecond, MaxBackoff: 50 * time.Millisecond}
	want := []time.Duration{
		10 * time.Millisecond, 20 * time.Millisecond, 40 * time.Millisecond,
		50 * time.Millisecond, 50 * time.Millisecond,
	}
	for i, w := range want {
		if got := cfg.backoffFor(i); got != w {
			t.Errorf("backoffFor(%d) = %v, want %v", i, got, w)
		}
	}
	// Zero config still has sane defaults.
	if got := (SupervisorConfig{}).backoffFor(0); got != 10*time.Millisecond {
		t.Errorf("default backoff = %v", got)
	}
}
