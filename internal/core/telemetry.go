package core

import (
	"sort"

	"concord/internal/livepatch"
	"concord/internal/locks"
	"concord/internal/obs"
	"concord/internal/policy"
	"concord/internal/policy/jit"
	"concord/internal/profile"
)

// attachmentTier summarises an attachment's effective execution tier
// for telemetry rows: the forced tier with a "!" override marker, or
// the admission-time per-program outcome ("jit", "vm", or "mixed";
// "native" for pure Go hook tables).
func attachmentTier(p *Policy, mode TierMode) string {
	switch mode {
	case TierForceVM:
		return "vm!"
	case TierForceJIT:
		return "jit!"
	}
	if len(p.Programs) == 0 {
		if p.Native != nil {
			return "native"
		}
		return ""
	}
	jits, vms := 0, 0
	for k := range p.Programs {
		if ch, ok := p.Tiers[k]; ok && ch.Tier == jit.TierJIT {
			jits++
		} else {
			vms++
		}
	}
	switch {
	case vms == 0:
		return "jit"
	case jits == 0:
		return "vm"
	default:
		return "mixed"
	}
}

// EnableTelemetry attaches a telemetry bundle to the framework. Every
// registered lock (current and future) gets counting and wait/hold
// histogram hooks composed after its policy and profiler; framework
// lifecycle events (loads, attaches, faults, safety trips), livepatch
// transitions and drain latencies, and per-program policy VM counters
// are recorded into t's registry.
//
// The livepatch and lock-safety observers are process-global (those
// packages sit below obs in the import graph), so enabling telemetry on
// two frameworks at once routes patch and safety events to the most
// recently enabled one; each framework's own lock and lifecycle metrics
// stay separate. Call with nil to detach the observers.
func (f *Framework) EnableTelemetry(t *obs.Telemetry) {
	f.mu.Lock()
	f.tel = t
	if t == nil {
		f.mu.Unlock()
		livepatch.SetPatchObserver(nil)
		livepatch.SetDrainObserver(nil)
		locks.SetSafetyObserver(nil)
		return
	}
	t.LocksRegistered.Set(int64(len(f.locks)))
	t.PoliciesLoaded.Set(int64(len(f.policies)))

	// Re-publish every lock's hook table so telemetry composes in.
	type repatch struct {
		st    *lockState
		hooks *locks.Hooks
	}
	var patches []repatch
	for _, st := range f.locks {
		var p *Policy
		var ad *adapter
		if st.attached != nil && st.sup != nil {
			p = f.policies[st.attached.Policy]
			// Adapters report faults through the framework's telemetry
			// pointer at fault time, so no per-adapter rewiring is needed
			// when telemetry is enabled late.
			ad = st.sup.ad
		}
		patches = append(patches, repatch{st, f.effectiveHooks(st, p, ad)})
	}
	f.mu.Unlock()

	for _, r := range patches {
		r.st.hooked.HookSlot().Replace("telemetry:"+r.st.lock.Name(), r.hooks)
	}

	transitions := t.PatchTransitions
	livepatch.SetPatchObserver(func(string) { transitions.Inc() })
	drain := t.DrainLatency
	livepatch.SetDrainObserver(func(_ string, drainNS int64) { drain.Observe(drainNS) })
	// Safety trips route through the supervisor (re-installed here in
	// case another framework claimed the process-global observer since
	// New).
	locks.SetSafetyObserver(f.handleSafetyTrip)

	t.Registry.AddExternal(f.collectVMStats)
	t.Registry.AddExternal(f.collectLockRobustness)
	t.Registry.AddExternal(f.collectMapStats)
}

// collectMapStats emits the map-plane counters of every loaded policy's
// maps (kinds implementing policy.StatsProvider): live occupancy,
// insert-probe collisions, and optimistic read-path retries. The maps
// keep their own atomics; the registry reads them only at scrape time.
func (f *Framework) collectMapStats(add func(obs.Sample)) {
	for _, pm := range f.policyMaps() {
		st := pm.stats.MapStats()
		labels := []string{"policy", pm.policy, "map", pm.m.Name(), "kind", policy.MapKindOf(pm.m)}
		// Occupancy is live entries only; dead (tombstoned) slots are
		// reported separately so fill-ratio dashboards don't count
		// deleted keys against capacity.
		add(obs.Sample{Name: "concord_map_occupancy", Kind: obs.KindGauge,
			Labels: labels, Value: float64(st.Occupancy)})
		add(obs.Sample{Name: "concord_map_tombstones", Kind: obs.KindGauge,
			Labels: labels, Value: float64(st.Tombstones)})
		add(obs.Sample{Name: "concord_map_collisions_total", Kind: obs.KindCounter,
			Labels: labels, Value: float64(st.Collisions)})
		add(obs.Sample{Name: "concord_map_optimistic_retries_total", Kind: obs.KindCounter,
			Labels: labels, Value: float64(st.Retries)})
		add(obs.Sample{Name: "concord_map_resizes_total", Kind: obs.KindCounter,
			Labels: labels, Value: float64(st.Resizes)})
		add(obs.Sample{Name: "concord_map_migrated_slots_total", Kind: obs.KindCounter,
			Labels: labels, Value: float64(st.Migrated)})
		add(obs.Sample{Name: "concord_map_capacity", Kind: obs.KindGauge,
			Labels: labels, Value: float64(st.Capacity)})
	}
}

type policyMap struct {
	policy string
	m      policy.Map
	stats  policy.StatsProvider
}

// policyMaps lists each stats-capable map of every loaded policy once,
// even when several of the policy's programs share it.
func (f *Framework) policyMaps() []policyMap {
	f.mu.Lock()
	defer f.mu.Unlock()
	var out []policyMap
	for name, p := range f.policies {
		seen := make(map[policy.Map]bool)
		for _, prog := range p.Programs {
			for _, m := range prog.Maps {
				if seen[m] {
					continue
				}
				seen[m] = true
				if sp, ok := m.(policy.StatsProvider); ok {
					out = append(out, policyMap{name, m, sp})
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].policy != out[j].policy {
			return out[i].policy < out[j].policy
		}
		return out[i].m.Name() < out[j].m.Name()
	})
	return out
}

// collectLockRobustness emits per-lock robustness counters kept by the
// lock implementations themselves: switch aborts (bounded-drain lock
// switching) and park rescues (lost-wakeup watchdog recoveries).
func (f *Framework) collectLockRobustness(add func(obs.Sample)) {
	f.mu.Lock()
	type src struct {
		name string
		lock locks.Lock
	}
	srcs := make([]src, 0, len(f.locks))
	for name, st := range f.locks {
		srcs = append(srcs, src{name, st.lock})
	}
	f.mu.Unlock()
	for _, s := range srcs {
		if a, ok := s.lock.(interface{ Aborts() int64 }); ok {
			add(obs.Sample{Name: "concord_switch_aborts_total", Kind: obs.KindCounter,
				Labels: []string{"lock", s.name}, Value: float64(a.Aborts())})
		}
		if r, ok := s.lock.(interface{ ParkRescues() int64 }); ok {
			add(obs.Sample{Name: "concord_park_rescues_total", Kind: obs.KindCounter,
				Labels: []string{"lock", s.name}, Value: float64(r.ParkRescues())})
		}
		if o, ok := s.lock.(locks.OCCCapable); ok {
			st := o.OCCStats()
			labels := []string{"lock", s.name}
			add(obs.Sample{Name: "concord_occ_reads_total", Kind: obs.KindCounter,
				Labels: labels, Value: float64(st.Reads)})
			add(obs.Sample{Name: "concord_occ_aborts_total", Kind: obs.KindCounter,
				Labels: labels, Value: float64(st.Aborts)})
			add(obs.Sample{Name: "concord_occ_promotions_total", Kind: obs.KindCounter,
				Labels: labels, Value: float64(st.Promotions)})
			add(obs.Sample{Name: "concord_occ_demotions_total", Kind: obs.KindCounter,
				Labels: labels, Value: float64(st.Demotions)})
			promoted := 0.0
			if st.Promoted {
				promoted = 1
			}
			add(obs.Sample{Name: "concord_occ_promoted", Kind: obs.KindGauge,
				Labels: labels, Value: promoted})
		}
	}
}

// Telemetry returns the bundle passed to EnableTelemetry, or nil.
func (f *Framework) Telemetry() *obs.Telemetry {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.tel
}

// collectVMStats emits the policy VM execution counters of every loaded
// program, labeled by policy, hook kind, and program name. Registered as
// an external collector: programs keep their own atomics (ExecStats) and
// the registry reads them only at scrape time.
func (f *Framework) collectVMStats(add func(obs.Sample)) {
	f.mu.Lock()
	pols := make([]*Policy, 0, len(f.policies))
	for _, p := range f.policies {
		pols = append(pols, p)
	}
	f.mu.Unlock()

	counter := func(name string, labels []string, v int64) {
		add(obs.Sample{Name: name, Kind: obs.KindCounter, Labels: labels, Value: float64(v)})
	}
	for _, p := range pols {
		for kind, prog := range p.Programs {
			st := prog.Stats()
			labels := []string{"policy", p.Name, "kind", kind.String(), "program", prog.Name}
			counter("concord_vm_runs_total", labels, st.Runs.Load())
			counter("concord_vm_instructions_total", labels, st.Insns.Load())
			counter("concord_vm_helper_calls_total", labels, st.HelperCalls.Load())
			counter("concord_vm_map_ops_total", labels, st.MapOps.Load())
			counter("concord_vm_faults_total", labels, st.Faults.Load())
			counter("concord_policy_jit_runs_total", labels, st.JITRuns.Load())
			jitOn := int64(0)
			if ch, ok := p.Tiers[kind]; ok && ch.Tier == jit.TierJIT {
				jitOn = 1
			}
			add(obs.Sample{Name: "concord_policy_jit_enabled", Kind: obs.KindGauge,
				Labels: labels, Value: float64(jitOn)})
		}
	}
}

// LockRows returns per-lock telemetry rows (most wait time first), with
// each row's Policy filled from the current attachment. Requires
// EnableTelemetry; returns nil otherwise.
func (f *Framework) LockRows() []obs.LockRow {
	f.mu.Lock()
	tel := f.tel
	attached := make(map[string]string, len(f.locks))
	costs := make(map[string]int64, len(f.locks))
	tiers := make(map[string]string, len(f.locks))
	for name, st := range f.locks {
		if st.attached != nil {
			attached[name] = st.attached.Policy
			if p := f.policies[st.attached.Policy]; p != nil {
				costs[name] = p.CostBound()
				tiers[name] = attachmentTier(p, st.attached.TierMode())
			}
		}
	}
	f.mu.Unlock()
	if tel == nil {
		return nil
	}
	breakers := f.breakerByLock()
	rows := tel.LockRows()
	windows := make(map[string]profile.WindowSnapshot)
	for _, w := range f.WindowSnapshots() {
		windows[w.Lock] = w
	}
	for i := range rows {
		rows[i].Policy = attached[rows[i].Lock]
		rows[i].Breaker = breakers[rows[i].Lock]
		rows[i].CostBoundNS = costs[rows[i].Lock]
		rows[i].Tier = tiers[rows[i].Lock]
		if w, ok := windows[rows[i].Lock]; ok {
			rows[i].RecentContentionPerMille = w.ContentionPerMille
			rows[i].RecentWaitP99NS = w.WaitP99NS
			rows[i].RecentWindowNS = w.EndNS - w.StartNS
		}
	}
	return rows
}

// PolicyRow is one loaded policy's summary for the /policies endpoint.
type PolicyRow struct {
	Name        string   `json:"name"`
	Kinds       []string `json:"kinds"`
	Native      bool     `json:"native,omitempty"`
	CostBoundNS int64    `json:"cost_bound_ns,omitempty"`
	AttachedTo  []string `json:"attached_to,omitempty"`
	// Tiers maps hook kind -> admitted execution tier ("vm"/"jit").
	Tiers       map[string]string `json:"tiers,omitempty"`
	Runs        int64             `json:"vm_runs"`
	Insns       int64             `json:"vm_instructions"`
	HelperCalls int64             `json:"vm_helper_calls"`
	MapOps      int64             `json:"vm_map_ops"`
	Faults      int64             `json:"vm_faults"`
	JITRuns     int64             `json:"jit_runs"`
	Maps        []MapRow          `json:"maps,omitempty"`
}

// MapRow is one policy map's data-plane summary.
type MapRow struct {
	Name string `json:"name"`
	Kind string `json:"kind"`
	// Occupancy counts live entries; Tombstones counts dead slots
	// awaiting reuse or compaction. They are reported separately so the
	// fill ratio reflects reachable keys, not deletion history.
	Occupancy  int64  `json:"occupancy"`
	Tombstones int64  `json:"tombstones"`
	MaxEntries int    `json:"max_entries"`
	Capacity   int    `json:"capacity,omitempty"`
	Collisions uint64 `json:"collisions"`
	Retries    uint64 `json:"optimistic_retries"`
	Resizes    uint64 `json:"resizes,omitempty"`
}

// PolicyRows summarizes every loaded policy: hook kinds, attachment
// targets, and VM counters aggregated across the policy's programs.
func (f *Framework) PolicyRows() []PolicyRow {
	f.mu.Lock()
	defer f.mu.Unlock()
	rows := make([]PolicyRow, 0, len(f.policies))
	for name, p := range f.policies {
		row := PolicyRow{Name: name, Native: p.Native != nil, CostBoundNS: p.CostBound()}
		for _, k := range p.Kinds() {
			row.Kinds = append(row.Kinds, k.String())
		}
		sort.Strings(row.Kinds)
		for lockName, st := range f.locks {
			if st.attached != nil && st.attached.Policy == name {
				row.AttachedTo = append(row.AttachedTo, lockName)
			}
		}
		sort.Strings(row.AttachedTo)
		if len(p.Tiers) > 0 {
			row.Tiers = make(map[string]string, len(p.Tiers))
			for k := range p.Programs {
				row.Tiers[k.String()] = p.Tier(k)
			}
		}
		seen := make(map[policy.Map]bool)
		for _, prog := range p.Programs {
			st := prog.Stats()
			row.Runs += st.Runs.Load()
			row.Insns += st.Insns.Load()
			row.HelperCalls += st.HelperCalls.Load()
			row.MapOps += st.MapOps.Load()
			row.Faults += st.Faults.Load()
			row.JITRuns += st.JITRuns.Load()
			for _, m := range prog.Maps {
				if seen[m] {
					continue
				}
				seen[m] = true
				mr := MapRow{Name: m.Name(), Kind: policy.MapKindOf(m), MaxEntries: m.MaxEntries()}
				if sp, ok := m.(policy.StatsProvider); ok {
					st := sp.MapStats()
					mr.Occupancy, mr.Collisions, mr.Retries = st.Occupancy, st.Collisions, st.Retries
					mr.Tombstones, mr.Capacity, mr.Resizes = st.Tombstones, st.Capacity, st.Resizes
				}
				row.Maps = append(row.Maps, mr)
			}
		}
		sort.Slice(row.Maps, func(i, j int) bool { return row.Maps[i].Name < row.Maps[j].Name })
		rows = append(rows, row)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Name < rows[j].Name })
	return rows
}

// LockNameByID resolves a registered lock's ID to its name ("" when
// unknown); the trace exporter uses it to label tracks.
func (f *Framework) LockNameByID(id uint64) string {
	f.mu.Lock()
	defer f.mu.Unlock()
	for name, st := range f.locks {
		if st.lock.ID() == id {
			return name
		}
	}
	return ""
}
