package core

import (
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"concord/internal/locks"
	"concord/internal/policy"
	"concord/internal/profile"
	"concord/internal/task"
	"concord/internal/topology"
)

func newFramework() *Framework { return New(topology.Paper()) }

// numaCmpProgram builds the verified cBPF NUMA-grouping policy used
// throughout (same-socket waiters join the shuffler's batch).
func numaCmpProgram(t testing.TB) *policy.Program {
	t.Helper()
	p, err := policy.Assemble("numa", policy.KindCmpNode, `
		mov   r6, r1
		ldxdw r2, [r6+curr_socket]
		ldxdw r3, [r6+shuffler_socket]
		jeq   r2, r3, group
		mov   r0, 0
		exit
	group:
		mov   r0, 1
		exit
	`, nil)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestRegisterAndListLocks(t *testing.T) {
	f := newFramework()
	l := locks.NewShflLock("mmap_sem")
	if err := f.RegisterLock(l); err != nil {
		t.Fatal(err)
	}
	if err := f.RegisterLock(l); err == nil {
		t.Fatal("duplicate registration accepted")
	}
	infos := f.Locks()
	if len(infos) != 1 || infos[0].Name != "mmap_sem" || infos[0].ID != l.ID() {
		t.Fatalf("Locks() = %+v", infos)
	}
	if got, ok := f.Lock("mmap_sem"); !ok || got != locks.Lock(l) {
		t.Fatal("Lock lookup failed")
	}
	if _, ok := f.Lock("nope"); ok {
		t.Fatal("phantom lock")
	}
}

func TestLoadPolicyVerifies(t *testing.T) {
	f := newFramework()
	good := numaCmpProgram(t)
	p, err := f.LoadPolicy("numa", good)
	if err != nil {
		t.Fatal(err)
	}
	if !good.Verified() {
		t.Error("program not marked verified")
	}
	if stats := p.Verify[policy.KindCmpNode]; stats.Insns == 0 {
		t.Error("no verify stats recorded")
	}

	// A bad program rejects the whole policy.
	bad := policy.NewBuilder("bad", policy.KindCmpNode).
		MovImm(policy.R0, 1).MustProgram() // falls off the end
	if _, err := f.LoadPolicy("bad", bad); err == nil {
		t.Error("unverifiable policy accepted")
	}
	if _, ok := f.Policy("bad"); ok {
		t.Error("rejected policy registered anyway")
	}
	// Duplicate kind rejected.
	if _, err := f.LoadPolicy("dup", numaCmpProgram(t), numaCmpProgram(t)); err == nil {
		t.Error("duplicate kind accepted")
	}
}

func TestAttachCBPFPolicyShufflesNUMA(t *testing.T) {
	f := newFramework()
	topo := f.Topology()
	l := locks.NewShflLock("lock2", locks.WithMaxRounds(64))
	if err := f.RegisterLock(l); err != nil {
		t.Fatal(err)
	}
	if _, err := f.LoadPolicy("numa", numaCmpProgram(t)); err != nil {
		t.Fatal(err)
	}
	att, err := f.Attach("lock2", "numa")
	if err != nil {
		t.Fatal(err)
	}
	att.Wait()

	// Hold the lock, queue alternating-socket waiters, verify grouping.
	holder := task.New(topo)
	l.Lock(holder)
	tasks := make([]*task.T, 12)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var order []int
	for i := range tasks {
		tasks[i] = task.NewOnCPU(topo, (i%2)*10)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			l.Lock(tasks[i])
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			l.Unlock(tasks[i])
		}(i)
	}
	deadline := time.Now().Add(5 * time.Second)
	for l.QueueLen() < len(tasks) && time.Now().Before(deadline) {
		runtime.Gosched()
	}
	for {
		if _, moves, _ := l.ShuffleStats(); moves > 0 || time.Now().After(deadline) {
			break
		}
		runtime.Gosched()
	}
	l.Unlock(holder)
	wg.Wait()

	_, moves, _ := l.ShuffleStats()
	if moves == 0 {
		t.Fatal("cBPF policy produced no shuffling")
	}
	transitions := 0
	for i := 1; i < len(order); i++ {
		if tasks[order[i]].Socket() != tasks[order[i-1]].Socket() {
			transitions++
		}
	}
	if transitions >= len(tasks)-1 {
		t.Errorf("no NUMA grouping: %d transitions", transitions)
	}
	if att.Faults() != 0 {
		t.Errorf("policy faulted: %v", att.Err())
	}
}

func TestAttachUnknownTargets(t *testing.T) {
	f := newFramework()
	if _, err := f.Attach("ghost", "numa"); err == nil {
		t.Error("attach to unknown lock accepted")
	}
	l := locks.NewShflLock("l")
	if err := f.RegisterLock(l); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Attach("l", "ghost"); err == nil {
		t.Error("attach of unknown policy accepted")
	}
	if _, err := f.Detach("l"); err == nil {
		t.Error("detach with nothing attached accepted")
	}
}

func TestDetachRestoresDefault(t *testing.T) {
	f := newFramework()
	l := locks.NewShflLock("l", locks.WithMaxRounds(64))
	if err := f.RegisterLock(l); err != nil {
		t.Fatal(err)
	}
	if _, err := f.LoadNative("numa", locks.NUMAHooks()); err != nil {
		t.Fatal(err)
	}
	att, err := f.Attach("l", "numa")
	if err != nil {
		t.Fatal(err)
	}
	att.Wait()
	if l.HookSlot().Peek() == nil {
		t.Fatal("hooks not installed")
	}
	p, err := f.Detach("l")
	if err != nil {
		t.Fatal(err)
	}
	p.Wait()
	if l.HookSlot().Peek() != nil {
		t.Fatal("hooks not removed")
	}
	infos := f.Locks()
	if infos[0].Policy != "" {
		t.Errorf("lock still reports policy %q", infos[0].Policy)
	}
}

func TestNativePolicyAttach(t *testing.T) {
	f := newFramework()
	l := locks.NewShflLock("l")
	if err := f.RegisterLock(l); err != nil {
		t.Fatal(err)
	}
	var fired atomic.Int64
	native := &locks.Hooks{Name: "n", OnAcquired: func(*locks.Event) { fired.Add(1) }}
	if _, err := f.LoadNative("n", native); err != nil {
		t.Fatal(err)
	}
	att, err := f.Attach("l", "n")
	if err != nil {
		t.Fatal(err)
	}
	att.Wait()
	tk := task.New(f.Topology())
	l.Lock(tk)
	l.Unlock(tk)
	if fired.Load() != 1 {
		t.Errorf("native hook fired %d times", fired.Load())
	}
}

func TestComposeConflictDetection(t *testing.T) {
	f := newFramework()
	if _, err := f.LoadNative("numa", locks.NUMAHooks()); err != nil {
		t.Fatal(err)
	}
	if _, err := f.LoadNative("amp", locks.AMPHooks()); err != nil {
		t.Fatal(err)
	}
	if _, err := f.LoadNative("park", locks.SpinThenParkHooks(1000, 100000)); err != nil {
		t.Fatal(err)
	}
	// numa and amp both define cmp_node: conflict.
	if _, err := f.Compose("bad", "numa", "amp"); err == nil {
		t.Error("conflicting composition accepted")
	} else if !strings.Contains(err.Error(), "cmp_node") {
		t.Errorf("conflict error %q does not name the hook", err)
	}
	// numa + park compose fine (disjoint decision hooks).
	p, err := f.Compose("numa+park", "numa", "park")
	if err != nil {
		t.Fatal(err)
	}
	if p.Native == nil || p.Native.CmpNode == nil || p.Native.ScheduleWaiter == nil {
		t.Error("composed policy missing hooks")
	}
	// Program + native composition conflict.
	if _, err := f.LoadPolicy("cnuma", numaCmpProgram(t)); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Compose("bad2", "cnuma", "numa"); err == nil {
		t.Error("program/native cmp_node conflict accepted")
	}
}

func TestPolicyFaultDetaches(t *testing.T) {
	// A native policy cannot fault, and a verified cBPF program cannot
	// fault either — so exercise the safety valve directly through the
	// adapter by attaching a program and forcing a fault via an
	// unverified-state mutation is impossible by design. Instead, verify
	// the detach path with a policy whose map has been swapped out from
	// under it: the VM then reports a runtime fault.
	f := newFramework()
	l := locks.NewShflLock("l")
	if err := f.RegisterLock(l); err != nil {
		t.Fatal(err)
	}
	m := policy.NewArrayMap("m", 8, 1)
	prog := policy.NewBuilder("faulty", policy.KindLockAcquired).
		StoreStackImm(policy.OpStW, -4, 0).
		LoadMapPtr(policy.R1, m).
		MovReg(policy.R2, policy.RFP).
		AddImm(policy.R2, -4).
		Call(policy.HelperMapLookup).
		JmpImm(policy.OpJneImm, policy.R0, 0, "ok").
		ReturnImm(0).
		Label("ok").
		ReturnImm(1).
		MustProgram()
	if _, err := f.LoadPolicy("faulty", prog); err != nil {
		t.Fatal(err)
	}
	// Corrupt the program post-verification to simulate a VM fault: an
	// out-of-range map index triggers the runtime check.
	prog.Insns[1].Imm = 99
	att, err := f.Attach("l", "faulty")
	if err != nil {
		t.Fatal(err)
	}
	att.Wait()

	tk := task.New(f.Topology())
	l.Lock(tk)
	l.Unlock(tk)

	if att.Faults() == 0 {
		t.Fatal("fault not detected")
	}
	if att.Err() == nil {
		t.Fatal("no fault error recorded")
	}
	// The safety valve replaced the hooks with nil: next operations run
	// default behaviour.
	if l.HookSlot().Peek() != nil {
		t.Error("faulting policy not detached")
	}
}

func TestSelectiveProfiling(t *testing.T) {
	f := newFramework()
	a := locks.NewShflLock("hot")
	b := locks.NewShflLock("cold")
	if err := f.RegisterLock(a); err != nil {
		t.Fatal(err)
	}
	if err := f.RegisterLock(b); err != nil {
		t.Fatal(err)
	}
	prof := profile.New()
	if err := f.StartProfiling("hot", prof); err != nil {
		t.Fatal(err)
	}

	tk := task.New(f.Topology())
	for i := 0; i < 10; i++ {
		a.Lock(tk)
		a.Unlock(tk)
		b.Lock(tk)
		b.Unlock(tk)
	}
	// Only the profiled lock has stats — the §3.2 selling point.
	if s, ok := prof.Stats(a.ID()); !ok || s.Acquisitions.Load() != 10 {
		t.Errorf("hot lock stats missing or wrong: %+v", s)
	}
	if _, ok := prof.Stats(b.ID()); ok {
		t.Error("unprofiled lock has stats")
	}

	if err := f.StopProfiling("hot"); err != nil {
		t.Fatal(err)
	}
	a.Lock(tk)
	a.Unlock(tk)
	if s, _ := prof.Stats(a.ID()); s.Acquisitions.Load() != 10 {
		t.Error("profiling continued after stop")
	}
}

func TestProfilingComposesWithPolicy(t *testing.T) {
	f := newFramework()
	l := locks.NewShflLock("l", locks.WithMaxRounds(64))
	if err := f.RegisterLock(l); err != nil {
		t.Fatal(err)
	}
	if _, err := f.LoadNative("numa", locks.NUMAHooks()); err != nil {
		t.Fatal(err)
	}
	if att, err := f.Attach("l", "numa"); err != nil {
		t.Fatal(err)
	} else {
		att.Wait()
	}
	prof := profile.New()
	if err := f.StartProfiling("l", prof); err != nil {
		t.Fatal(err)
	}
	// The installed table must still carry the policy's cmp_node.
	h := l.HookSlot().Peek()
	if h == nil || h.CmpNode == nil {
		t.Fatal("policy lost when profiling started")
	}
	tk := task.New(f.Topology())
	l.Lock(tk)
	l.Unlock(tk)
	if s, ok := prof.Stats(l.ID()); !ok || s.Acquisitions.Load() != 1 {
		t.Error("profiler not recording alongside policy")
	}
	// Stopping profiling retains the policy.
	if err := f.StopProfiling("l"); err != nil {
		t.Fatal(err)
	}
	h = l.HookSlot().Peek()
	if h == nil || h.CmpNode == nil {
		t.Error("policy lost when profiling stopped")
	}
}

// TestTable1APIs exercises each of the seven Concord APIs end to end
// with cBPF programs: the three behavioural hooks steer a ShflLock, the
// four profiling hooks count into a shared map.
func TestTable1APIs(t *testing.T) {
	f := newFramework()
	topo := f.Topology()
	l := locks.NewShflLock("t1", locks.WithBlocking(true), locks.WithSpinBudget(4), locks.WithMaxRounds(64))
	if err := f.RegisterLock(l); err != nil {
		t.Fatal(err)
	}

	counters := policy.NewArrayMap("counters", 8, 4)
	countProg := func(name string, kind policy.Kind, idx int64) *policy.Program {
		return policy.NewBuilder(name, kind).
			StoreStackImm(policy.OpStW, -4, idx).
			LoadMapPtr(policy.R1, counters).
			MovReg(policy.R2, policy.RFP).
			AddImm(policy.R2, -4).
			MovImm(policy.R3, 1).
			Call(policy.HelperMapAdd).
			ReturnImm(0).
			MustProgram()
	}

	skipProg := policy.MustAssemble("skip", policy.KindSkipShuffle, `
		mov   r6, r1
		ldxdw r2, [r6+shuffle_round]
		jgt   r2, 8, skip
		mov   r0, 0
		exit
	skip:
		mov   r0, 1
		exit
	`, nil)
	schedProg := policy.MustAssemble("sched", policy.KindScheduleWaiter, `
		mov r0, 1   ; keep spinning
		exit
	`, nil)

	progs := []*policy.Program{
		numaCmpProgram(t),
		skipProg,
		schedProg,
		countProg("acq", policy.KindLockAcquire, 0),
		countProg("cont", policy.KindLockContended, 1),
		countProg("acqd", policy.KindLockAcquired, 2),
		countProg("rel", policy.KindLockRelease, 3),
	}
	if _, err := f.LoadPolicy("table1", progs...); err != nil {
		t.Fatal(err)
	}
	att, err := f.Attach("t1", "table1")
	if err != nil {
		t.Fatal(err)
	}
	att.Wait()

	var wg sync.WaitGroup
	const workers, iters = 6, 100
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tk := task.NewOnCPU(topo, (w%3)*10)
			for i := 0; i < iters; i++ {
				l.Lock(tk)
				if i&7 == 0 {
					runtime.Gosched()
				}
				l.Unlock(tk)
			}
		}(w)
	}
	wg.Wait()

	if att.Faults() != 0 {
		t.Fatalf("policy faulted: %v", att.Err())
	}
	total := int64(workers * iters)
	acq := int64(counters.At(0)[0])
	cont := int64(counters.At(1)[0])
	acqd := int64(counters.At(2)[0])
	rel := int64(counters.At(3)[0])
	if acq != total || acqd != total || rel != total {
		t.Errorf("acquire=%d acquired=%d release=%d, want %d", acq, acqd, rel, total)
	}
	if cont == 0 {
		t.Error("no contended events recorded")
	}
	if got := l.SafetyError(); got != "" {
		t.Errorf("safety tripped: %s", got)
	}
}

func TestPatternOperations(t *testing.T) {
	f := newFramework()
	for _, name := range []string{"vfs.rename", "vfs.inode", "mm.mmap_sem", "net.sock"} {
		if err := f.RegisterLock(locks.NewShflLock(name)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := f.LoadNative("numa", locks.NUMAHooks()); err != nil {
		t.Fatal(err)
	}

	atts, err := f.AttachAll("vfs.*", "numa")
	if err != nil {
		t.Fatal(err)
	}
	if len(atts) != 2 {
		t.Fatalf("attached to %d locks, want 2", len(atts))
	}
	for _, info := range f.Locks() {
		wantPolicy := strings.HasPrefix(info.Name, "vfs.")
		if (info.Policy != "") != wantPolicy {
			t.Errorf("lock %s policy = %q", info.Name, info.Policy)
		}
	}

	prof := profile.New()
	names, err := f.ProfileAll("*", prof)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 4 {
		t.Fatalf("profiled %d locks, want 4", len(names))
	}
	// Traffic on one lock; only it shows stats, others have rows once used.
	l, _ := f.Lock("net.sock")
	tk := task.New(f.Topology())
	l.Lock(tk)
	l.Unlock(tk)
	if s, ok := prof.Stats(l.ID()); !ok || s.Acquisitions.Load() != 1 {
		t.Error("pattern-attached profiler not recording")
	}

	// No match is an error.
	if _, err := f.AttachAll("xyz.*", "numa"); err == nil {
		t.Error("no-match AttachAll accepted")
	}
	if _, err := f.ProfileAll("[", prof); err == nil {
		t.Error("bad pattern accepted")
	}
}
