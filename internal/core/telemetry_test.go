package core

import (
	"strconv"
	"strings"
	"testing"

	"concord/internal/locks"
	"concord/internal/obs"
	"concord/internal/policy"
	"concord/internal/task"
	"concord/internal/workloads"
)

// promValue finds the first exposition line starting with prefix and
// returns its value.
func promValue(t *testing.T, out, prefix string) float64 {
	t.Helper()
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, prefix) {
			fields := strings.Fields(line)
			v, err := strconv.ParseFloat(fields[len(fields)-1], 64)
			if err != nil {
				t.Fatalf("bad sample line %q: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("exposition has no sample with prefix %q:\n%s", prefix, out)
	return 0
}

// TestTelemetryEndToEnd is the acceptance scenario: a hashtable workload
// against an instrumented framework must surface per-lock wait
// histograms, policy VM instruction counters, and livepatch epoch-drain
// latency on /metrics.
func TestTelemetryEndToEnd(t *testing.T) {
	f := newFramework()
	tel := obs.NewTelemetry()
	f.EnableTelemetry(tel)
	defer f.EnableTelemetry(nil)

	l := locks.NewShflLock("ht_lock")
	if err := f.RegisterLock(l); err != nil {
		t.Fatal(err)
	}

	// cmp_node exercises the shuffler path; lock_acquired runs on every
	// acquisition so the VM counters are deterministically nonzero.
	counter := policy.NewBuilder("count", policy.KindLockAcquired).
		ReturnImm(0).
		MustProgram()
	if _, err := f.LoadPolicy("numa", numaCmpProgram(t), counter); err != nil {
		t.Fatal(err)
	}
	att, err := f.Attach("ht_lock", "numa")
	if err != nil {
		t.Fatal(err)
	}
	att.Wait()

	res := workloads.RunHashTable(l, f.Topology(), workloads.HashTableConfig{
		Workers: 8, OpsPerWorker: 500, ReadFraction: 0.7,
	})
	if res.Ops != 8*500 {
		t.Fatalf("workload ran %d ops", res.Ops)
	}

	patch, err := f.Detach("ht_lock")
	if err != nil {
		t.Fatal(err)
	}
	patch.Wait()

	var sb strings.Builder
	if err := tel.Registry.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()

	// Per-lock wait and hold histograms.
	if got := promValue(t, out, `concord_lock_acquisitions_total{lock="ht_lock"}`); got != 4000 {
		t.Errorf("acquisitions = %v, want 4000", got)
	}
	if got := promValue(t, out, `concord_lock_wait_ns_count{lock="ht_lock"}`); got != 4000 {
		t.Errorf("wait histogram count = %v, want 4000", got)
	}
	if !strings.Contains(out, `concord_lock_wait_ns_bucket{lock="ht_lock",le="+Inf"} 4000`) {
		t.Error("wait histogram missing +Inf bucket")
	}

	// Policy VM counters, labeled per program.
	vmLabels := `{kind="lock_acquired",policy="numa",program="count"}`
	if got := promValue(t, out, "concord_vm_runs_total"+vmLabels); got != 4000 {
		t.Errorf("vm runs = %v, want 4000", got)
	}
	if got := promValue(t, out, "concord_vm_instructions_total"+vmLabels); got < 4000 {
		t.Errorf("vm instructions = %v, want >= 4000", got)
	}
	if got := promValue(t, out, "concord_vm_faults_total"+vmLabels); got != 0 {
		t.Errorf("vm faults = %v, want 0", got)
	}

	// Livepatch transitions (register + attach + detach) and epoch drain.
	if got := promValue(t, out, "concord_livepatch_transitions_total"); got < 3 {
		t.Errorf("livepatch transitions = %v, want >= 3", got)
	}
	if got := promValue(t, out, "concord_livepatch_drain_ns_count"); got < 2 {
		t.Errorf("drain latency observations = %v, want >= 2", got)
	}

	// Lifecycle instruments.
	if got := promValue(t, out, "concord_policy_loads_total"); got != 1 {
		t.Errorf("policy loads = %v", got)
	}
	if got := promValue(t, out, "concord_attaches_total"); got != 1 {
		t.Errorf("attaches = %v", got)
	}
	if got := promValue(t, out, "concord_detaches_total"); got != 1 {
		t.Errorf("detaches = %v", got)
	}
	if got := promValue(t, out, "concord_locks_registered"); got != 1 {
		t.Errorf("locks registered = %v", got)
	}
	// The safety counters exist (at zero) even when nothing went wrong.
	if got := promValue(t, out, "concord_safety_fallbacks_total"); got != 0 {
		t.Errorf("safety fallbacks = %v", got)
	}

	// The structured views agree with the exposition.
	rows := f.LockRows()
	if len(rows) != 1 || rows[0].Lock != "ht_lock" || rows[0].Acquisitions != 4000 {
		t.Errorf("LockRows = %+v", rows)
	}
	prows := f.PolicyRows()
	if len(prows) != 1 || prows[0].Runs < 4000 {
		t.Errorf("PolicyRows = %+v", prows)
	}
	if got := f.LockNameByID(l.ID()); got != "ht_lock" {
		t.Errorf("LockNameByID = %q", got)
	}

	// The trace ring captured raw events renderable as Perfetto JSON.
	trace, err := tel.TraceJSON(f.LockNameByID)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(trace), "hold ht_lock") {
		t.Error("trace missing hold slices for ht_lock")
	}
}

// TestTelemetryFaultFallback verifies the safety valve with telemetry
// enabled: a faulting policy is detached, the fallback table keeps the
// telemetry hooks, and the fault + fallback counters record it.
func TestTelemetryFaultFallback(t *testing.T) {
	f := newFramework()
	tel := obs.NewTelemetry()
	f.EnableTelemetry(tel)
	defer f.EnableTelemetry(nil)

	l := locks.NewShflLock("l")
	if err := f.RegisterLock(l); err != nil {
		t.Fatal(err)
	}
	m := policy.NewArrayMap("m", 8, 1)
	prog := policy.NewBuilder("faulty", policy.KindLockAcquired).
		StoreStackImm(policy.OpStW, -4, 0).
		LoadMapPtr(policy.R1, m).
		MovReg(policy.R2, policy.RFP).
		AddImm(policy.R2, -4).
		Call(policy.HelperMapLookup).
		ReturnImm(0).
		MustProgram()
	if _, err := f.LoadPolicy("faulty", prog); err != nil {
		t.Fatal(err)
	}
	prog.Insns[1].Imm = 99 // corrupt the map index post-verification
	att, err := f.Attach("l", "faulty")
	if err != nil {
		t.Fatal(err)
	}
	att.Wait()
	// The JIT closure was compiled at load time, before the corruption;
	// force the interpreter tier so the corrupted bytecode actually runs.
	if _, err := f.SetTier("l", TierForceVM); err != nil {
		t.Fatal(err)
	}

	tk := task.New(f.Topology())
	l.Lock(tk)
	l.Unlock(tk)
	if att.Faults() == 0 {
		t.Fatal("fault not detected")
	}

	if got := tel.PolicyFaults.Value(); got == 0 {
		t.Error("policy fault not counted")
	}
	if got := tel.SafetyFallbacks.Value(); got != 1 {
		t.Errorf("safety fallbacks = %d, want 1", got)
	}
	// The fallback preserved instrumentation: the published hooks are
	// the telemetry table, not nil.
	hooks := l.HookSlot().Peek()
	if hooks == nil || hooks.Name != "telemetry" {
		t.Fatalf("fallback hooks = %+v, want telemetry", hooks)
	}
	// And they still count.
	before := tel.Registry.Counter("concord_lock_acquisitions_total", "", "lock", "l").Value()
	l.Lock(tk)
	l.Unlock(tk)
	after := tel.Registry.Counter("concord_lock_acquisitions_total", "", "lock", "l").Value()
	if after != before+1 {
		t.Errorf("acquisitions %d -> %d; telemetry lost after fallback", before, after)
	}
}

// TestEnableTelemetryLate verifies instrumentation of locks registered
// and policies attached before telemetry was enabled.
func TestEnableTelemetryLate(t *testing.T) {
	f := newFramework()
	l := locks.NewShflLock("early")
	if err := f.RegisterLock(l); err != nil {
		t.Fatal(err)
	}
	if _, err := f.LoadNative("fifo", &locks.Hooks{
		Name:    "fifo",
		CmpNode: func(*locks.ShuffleInfo) bool { return false },
	}); err != nil {
		t.Fatal(err)
	}
	att, err := f.Attach("early", "fifo")
	if err != nil {
		t.Fatal(err)
	}
	att.Wait()

	tel := obs.NewTelemetry()
	f.EnableTelemetry(tel)
	defer f.EnableTelemetry(nil)

	tk := task.New(f.Topology())
	l.Lock(tk)
	l.Unlock(tk)
	if got := tel.Registry.Counter("concord_lock_acquisitions_total", "", "lock", "early").Value(); got != 1 {
		t.Errorf("late-enabled telemetry counted %d acquisitions, want 1", got)
	}
	// The policy's behavioural hooks survived the re-patch.
	hooks := l.HookSlot().Peek()
	if hooks == nil || hooks.CmpNode == nil {
		t.Error("re-patch dropped the attached policy's hooks")
	}
	if got := tel.PoliciesLoaded.Value(); got != 1 {
		t.Errorf("policies loaded gauge = %d", got)
	}
}

// TestOCCAndResizeTelemetry pins the scrape surface PR 10 added: per-lock
// optimistic-tier counters for OCC-capable locks and resize/tombstone/
// capacity gauges for growable policy maps.
func TestOCCAndResizeTelemetry(t *testing.T) {
	f := newFramework()
	tel := obs.NewTelemetry()
	f.EnableTelemetry(tel)
	defer f.EnableTelemetry(nil)

	l := locks.NewRWSem("occ_rw")
	if err := f.RegisterLock(l); err != nil {
		t.Fatal(err)
	}
	patch, err := f.SetOCC("occ_rw", locks.OCCOn)
	if err != nil {
		t.Fatal(err)
	}
	patch.Wait()
	tk := task.New(f.Topology())
	var sink uint64
	l.OptRead(tk, func() { sink++ })
	l.Lock(tk)
	l.Unlock(tk)
	// The promoted gauge tracks the policy-driven auto-mode bit, which a
	// forced mode bypasses — flip to auto and promote to pin it too.
	l.OCCSetMode(locks.OCCAuto)
	if !l.OCCPromote(true) {
		t.Fatal("OCCPromote(true) refused in auto mode")
	}

	// A loaded policy carrying a growable map, grown past preallocation.
	m := policy.NewGrowableHashMap("gmap", 8, 8, 4)
	prog, err := policy.Assemble("noop", policy.KindLockAcquired, `
		ldmap r1, gmap
		mov   r0, 0
		exit
	`, map[string]policy.Map{"gmap": m})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.LoadPolicy("grow", prog); err != nil {
		t.Fatal(err)
	}
	var key [8]byte
	for i := 0; i < 32; i++ {
		key[0] = byte(i)
		if err := m.Update(key[:], []uint64{1}, 0); err != nil {
			t.Fatal(err)
		}
	}

	var sb strings.Builder
	if err := tel.Registry.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()

	if got := promValue(t, out, `concord_occ_reads_total{lock="occ_rw"}`); got != 1 {
		t.Errorf("occ reads = %v, want 1", got)
	}
	if got := promValue(t, out, `concord_occ_promoted{lock="occ_rw"}`); got != 1 {
		t.Errorf("occ promoted gauge = %v, want 1 (mode is forced on)", got)
	}
	if got := promValue(t, out, "concord_map_resizes_total"); got < 1 {
		t.Errorf("map resizes = %v, want >= 1 after growth", got)
	}
	if got := promValue(t, out, "concord_map_capacity"); got <= 4 {
		t.Errorf("map capacity = %v, want > 4 after growth", got)
	}
	if got := promValue(t, out, "concord_map_occupancy"); got != 32 {
		t.Errorf("map occupancy = %v, want 32", got)
	}
}
