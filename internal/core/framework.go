// Package core implements the Concord framework — the paper's primary
// contribution (§4). It glues the other substrates together along the
// workflow of Figure 1:
//
//  1. a user expresses a lock policy as cBPF programs (or native Go
//     hooks, standing in for the pre-compiled comparison points);
//  2. the framework verifies every program with the policy verifier,
//     which enforces both eBPF-style restrictions and the lock-safety
//     properties (read-only contexts, restricted helpers on the shuffler
//     path, bounded execution);
//  3. verified policies live in the framework's registry (and can be
//     persisted via concordctl — the "BPF file system" step);
//  4. Attach livepatches the target lock's hook table; the returned
//     patch completes once no execution still runs the old hooks;
//  5. runtime safety checks quarantine faulting policies and fall back
//     to the lock's default behaviour.
package core

import (
	"errors"
	"fmt"
	"path"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"concord/internal/faultinject"
	"concord/internal/livepatch"
	"concord/internal/locks"
	"concord/internal/obs"
	"concord/internal/policy"
	"concord/internal/policy/analysis"
	"concord/internal/policy/jit"
	"concord/internal/profile"
	"concord/internal/topology"
)

// Framework errors.
var (
	ErrLockExists      = errors.New("concord: lock already registered")
	ErrNoSuchLock      = errors.New("concord: no such lock")
	ErrNotHooked       = errors.New("concord: lock does not support hooks")
	ErrPolicyExists    = errors.New("concord: policy already loaded")
	ErrNoSuchPolicy    = errors.New("concord: no such policy")
	ErrDuplicateKind   = errors.New("concord: policy has two programs of the same kind")
	ErrPolicyConflict  = errors.New("concord: policies conflict")
	ErrNothingAttached = errors.New("concord: nothing attached")
	// ErrCostBudget rejects an Attach whose policy's static worst-case
	// cost bound exceeds the hook budget — admission control from proven
	// bounds instead of quarantine-after-trip.
	ErrCostBudget = errors.New("concord: policy static cost bound exceeds hook budget")
	// ErrInterference rejects an Attach (or Compose) whose policy has a
	// blocking write-write map conflict with another attached policy,
	// when SupervisorConfig.Interference is InterferenceReject.
	ErrInterference = errors.New("concord: policies statically interfere through a shared map")
	// ErrNoOCCTier rejects SetOCC on a lock without an optimistic read
	// tier (only rwsem-family locks carry one).
	ErrNoOCCTier = errors.New("concord: lock has no optimistic read tier")
)

// Policy is a named, verified set of hook programs (and/or a native Go
// hook table used for pre-compiled baselines).
type Policy struct {
	Name     string
	Programs map[policy.Kind]*policy.Program
	Native   *locks.Hooks
	Verify   map[policy.Kind]policy.VerifyStats
	// Analysis holds the static-analysis report per program, computed at
	// load time: cost bounds, value ranges, map footprint, safety facts.
	// Native policies have none (nothing to analyze).
	Analysis map[policy.Kind]*analysis.Report
	// Tiers records the execution-tier decision per program, made at load
	// time from the analysis report (VM vs JIT closures, with the
	// compiled closure when JIT was chosen). Attachments honour it unless
	// a TierMode override forces one tier for ablation.
	Tiers map[policy.Kind]jit.Choice
}

// Tier reports the admitted execution tier for one program kind
// ("vm"/"jit", "" when the policy has no program of that kind).
func (p *Policy) Tier(k policy.Kind) string {
	c, ok := p.Tiers[k]
	if !ok {
		if _, has := p.Programs[k]; has {
			return jit.TierVM.String()
		}
		return ""
	}
	return c.Tier.String()
}

// CostBound returns the policy's static worst-case cost bound in
// nanoseconds — the maximum over its programs' bounds, 0 for native
// policies (unanalyzable, admitted on trust like any Go code).
func (p *Policy) CostBound() int64 { return analysis.MaxCost(p.Analysis) }

// reports flattens the per-kind analysis reports in kind order — the
// deterministic input shape interference comparison wants.
func (p *Policy) reports() []*analysis.Report {
	kinds := make([]policy.Kind, 0, len(p.Analysis))
	for k := range p.Analysis {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	out := make([]*analysis.Report, 0, len(kinds))
	for _, k := range kinds {
		out = append(out, p.Analysis[k])
	}
	return out
}

// Kinds lists the hook kinds this policy provides (programs and native).
func (p *Policy) Kinds() []policy.Kind {
	var out []policy.Kind
	for k := range p.Programs {
		out = append(out, k)
	}
	if p.Native != nil {
		if p.Native.CmpNode != nil {
			out = append(out, policy.KindCmpNode)
		}
		if p.Native.SkipShuffle != nil {
			out = append(out, policy.KindSkipShuffle)
		}
		if p.Native.ScheduleWaiter != nil {
			out = append(out, policy.KindScheduleWaiter)
		}
	}
	return out
}

// decisionKinds reports which behavioural (non-profiling) hooks the
// policy provides; used for conflict detection when composing.
func (p *Policy) decisionKinds() map[policy.Kind]bool {
	out := make(map[policy.Kind]bool)
	for _, k := range p.Kinds() {
		if !k.IsProfiling() {
			out[k] = true
		}
	}
	return out
}

// Attachment records a policy installed on a lock. Every attachment is
// supervised: runtime faults trip a per-attachment circuit breaker
// whose behaviour is set by the framework's SupervisorConfig.
// TierMode selects how an attachment picks each program's execution
// tier: the admission-time choice, or a forced tier for ablation runs.
type TierMode int32

const (
	// TierAuto honours the per-program admission decision (Policy.Tiers).
	TierAuto TierMode = iota
	// TierForceVM runs every program on the reference interpreter.
	TierForceVM
	// TierForceJIT runs every lowerable program on the JIT tier, even
	// ones admission left on the VM.
	TierForceJIT
)

func (m TierMode) String() string {
	switch m {
	case TierForceVM:
		return "vm"
	case TierForceJIT:
		return "jit"
	default:
		return "auto"
	}
}

type Attachment struct {
	Lock   string
	Policy string

	tierMode atomic.Int32 // TierMode override, livepatch-switched by SetTier

	sup *supervisor
	// interference holds the cross-policy map conflicts detected at
	// attach time (InterferenceWarn mode records them here; Reject mode
	// refuses blocking ones before the attachment exists).
	interference []InterferenceFinding
}

// InterferenceFinding pairs one statically-detected map conflict with
// the other side's attachment point.
type InterferenceFinding struct {
	Lock     string // the other lock
	Policy   string // the policy attached there
	Conflict analysis.Conflict
}

func (f InterferenceFinding) String() string {
	return fmt.Sprintf("with %s on %s: %s", f.Policy, f.Lock, f.Conflict)
}

// Interference returns the cross-policy map conflicts recorded when
// this attachment was admitted (empty under InterferenceOff, or when
// nothing conflicts).
func (a *Attachment) Interference() []InterferenceFinding { return a.interference }

// Wait blocks until the previous hook table has fully drained — the
// livepatch consistency point (of the most recent attach attempt).
func (a *Attachment) Wait() { a.sup.waitPatch() }

// Faults reports how many policy executions have faulted at runtime,
// aggregated across re-attach attempts.
func (a *Attachment) Faults() int64 { return a.sup.faults.Load() }

// Err returns the most recent supervisor trip error, if any.
func (a *Attachment) Err() error { return a.sup.Err() }

// Breaker returns the attachment's circuit-breaker state.
func (a *Attachment) Breaker() BreakerState { return a.sup.State() }

// Retries reports how many re-attach attempts the supervisor has made.
func (a *Attachment) Retries() int { return a.sup.Retries() }

// Quarantined reports whether the policy is permanently detached.
func (a *Attachment) Quarantined() bool { return a.sup.State() == BreakerQuarantined }

// CostBound returns the attached policy's static worst-case cost bound
// in nanoseconds (0 for native policies, which carry no analysis).
func (a *Attachment) CostBound() int64 { return a.sup.costBound }

// TierMode reports the attachment's tier override (TierAuto honours the
// per-program admission decision).
func (a *Attachment) TierMode() TierMode { return TierMode(a.tierMode.Load()) }

// WatchdogBudget reports the latency-watchdog budget this attachment's
// hooks run under: the explicit LatencyBudget when configured, else
// WatchdogScale × the static cost bound (with a floor), else 0 (off).
func (a *Attachment) WatchdogBudget() time.Duration { return a.sup.latencyBudget() }

// lockState is the framework's view of one registered lock.
type lockState struct {
	lock     locks.Lock
	hooked   locks.Hooked
	attached *Attachment
	profiler *profile.Profiler
	// sup supervises the newest attachment on this lock. It outlives
	// st.attached (a quarantined policy clears attached but keeps its
	// supervisor visible in health reporting) and is replaced on the
	// next Attach.
	sup *supervisor
}

// Framework is the Concord control plane. All methods are safe for
// concurrent use; the hot path (lock operations) never takes the
// framework mutex — it only reads hook slots.
type Framework struct {
	topo *topology.Topology

	mu       sync.Mutex
	locks    map[string]*lockState
	policies map[string]*Policy
	shadow   *livepatch.ShadowStore
	tel      *obs.Telemetry
	cprof    *profile.Continuous
	flight   *FlightRecorder
	supCfg   SupervisorConfig
}

// New returns an empty framework for the given topology.
func New(topo *topology.Topology) *Framework {
	f := &Framework{
		topo:     topo,
		locks:    make(map[string]*lockState),
		policies: make(map[string]*Policy),
		shadow:   livepatch.NewShadowStore(),
	}
	// Route lock runtime safety trips into the policy supervisor. The
	// observer is process-global (locks sits below core in the import
	// graph): last framework created wins, as with the telemetry
	// observers.
	locks.SetSafetyObserver(f.handleSafetyTrip)
	return f
}

// SetSupervisorConfig sets the circuit-breaker configuration applied to
// subsequent Attach calls (existing attachments keep theirs). The zero
// value is the original one-shot valve: first fault quarantines.
func (f *Framework) SetSupervisorConfig(cfg SupervisorConfig) {
	f.mu.Lock()
	f.supCfg = cfg
	f.mu.Unlock()
}

// Topology returns the machine topology the framework manages.
func (f *Framework) Topology() *topology.Topology { return f.topo }

// Shadow returns the framework's shadow-variable store.
func (f *Framework) Shadow() *livepatch.ShadowStore { return f.shadow }

// RegisterLock makes a lock visible to the framework (and so to
// policies, profilers, and concordctl). The lock must support hooks.
func (f *Framework) RegisterLock(l locks.Lock) error {
	h, ok := l.(locks.Hooked)
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotHooked, l.Name())
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, dup := f.locks[l.Name()]; dup {
		return fmt.Errorf("%w: %s", ErrLockExists, l.Name())
	}
	st := &lockState{lock: l, hooked: h}
	f.locks[l.Name()] = st
	if f.tel != nil {
		f.tel.LocksRegistered.Set(int64(len(f.locks)))
	}
	if f.tel != nil || f.cprof != nil {
		// Instrument immediately so a lock is observable before any
		// policy or profiler touches it.
		h.HookSlot().Replace("telemetry:"+l.Name(), f.effectiveHooks(st, nil, nil))
	}
	return nil
}

// Lock returns a registered lock by name.
func (f *Framework) Lock(name string) (locks.Lock, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	st, ok := f.locks[name]
	if !ok {
		return nil, false
	}
	return st.lock, true
}

// LockInfo describes one registered lock for listings.
type LockInfo struct {
	Name     string
	ID       uint64
	Policy   string // attached policy, if any
	Profiled bool
}

// Locks lists registered locks.
func (f *Framework) Locks() []LockInfo {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]LockInfo, 0, len(f.locks))
	for name, st := range f.locks {
		info := LockInfo{Name: name, ID: st.lock.ID(), Profiled: st.profiler != nil}
		if st.attached != nil {
			info.Policy = st.attached.Policy
		}
		out = append(out, info)
	}
	return out
}

// LoadPolicy verifies and registers a set of programs under one policy
// name. Each program kind may appear at most once. Verification failure
// rejects the whole policy (Figure 1 steps 2–4).
func (f *Framework) LoadPolicy(name string, progs ...*policy.Program) (*Policy, error) {
	p := &Policy{
		Name:     name,
		Programs: make(map[policy.Kind]*policy.Program, len(progs)),
		Verify:   make(map[policy.Kind]policy.VerifyStats, len(progs)),
		Analysis: make(map[policy.Kind]*analysis.Report, len(progs)),
		Tiers:    make(map[policy.Kind]jit.Choice, len(progs)),
	}
	for _, prog := range progs {
		if _, dup := p.Programs[prog.Kind]; dup {
			return nil, fmt.Errorf("%w: %s", ErrDuplicateKind, prog.Kind)
		}
		stats, err := policy.Verify(prog)
		if err != nil {
			return nil, err
		}
		rep, err := analysis.Analyze(prog)
		if err != nil {
			return nil, fmt.Errorf("concord: analyzing %s: %w", prog.Name, err)
		}
		p.Programs[prog.Kind] = prog
		p.Verify[prog.Kind] = stats
		p.Analysis[prog.Kind] = rep
		// Tier selection from the analysis report (admission-time, so
		// every attach of this policy shares one compiled artifact).
		p.Tiers[prog.Kind] = jit.Choose(prog, rep)
	}
	return p, f.addPolicy(p)
}

// LoadNative registers a pre-compiled Go hook table as a policy — the
// baseline the paper compares Concord against.
func (f *Framework) LoadNative(name string, hooks *locks.Hooks) (*Policy, error) {
	p := &Policy{Name: name, Native: hooks}
	return p, f.addPolicy(p)
}

func (f *Framework) addPolicy(p *Policy) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, dup := f.policies[p.Name]; dup {
		return fmt.Errorf("%w: %s", ErrPolicyExists, p.Name)
	}
	f.policies[p.Name] = p
	if f.tel != nil {
		f.tel.PolicyLoads.Inc()
		f.tel.PoliciesLoaded.Set(int64(len(f.policies)))
	}
	return nil
}

// Policy returns a loaded policy by name.
func (f *Framework) Policy(name string) (*Policy, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	p, ok := f.policies[name]
	return p, ok
}

// Policies lists loaded policy names.
func (f *Framework) Policies() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]string, 0, len(f.policies))
	for n := range f.policies {
		out = append(out, n)
	}
	return out
}

// Compose registers a new policy combining two loaded ones. Behavioural
// hooks must not overlap (the conflicting-policies hazard of §6);
// profiling hooks are chained.
func (f *Framework) Compose(name, first, second string) (*Policy, error) {
	f.mu.Lock()
	a, okA := f.policies[first]
	b, okB := f.policies[second]
	mode := f.supCfg.Interference
	f.mu.Unlock()
	if !okA {
		return nil, fmt.Errorf("%w: %s", ErrNoSuchPolicy, first)
	}
	if !okB {
		return nil, fmt.Errorf("%w: %s", ErrNoSuchPolicy, second)
	}
	ka, kb := a.decisionKinds(), b.decisionKinds()
	for k := range ka {
		if kb[k] {
			return nil, fmt.Errorf("%w: both %s and %s define %s", ErrPolicyConflict, first, second, k)
		}
	}
	// Map interference between the constituents: a composed policy runs
	// both programs on the same hook chain, so write-write sharing makes
	// the later program clobber the earlier one's state on every event.
	if mode == InterferenceReject {
		for _, c := range analysis.Interference(a.reports(), b.reports()) {
			if c.Blocking() {
				return nil, fmt.Errorf("%w: composing %s and %s: %s", ErrInterference, first, second, c)
			}
		}
	}
	p := &Policy{
		Name:     name,
		Programs: make(map[policy.Kind]*policy.Program),
		Verify:   make(map[policy.Kind]policy.VerifyStats),
		Analysis: make(map[policy.Kind]*analysis.Report),
		Tiers:    make(map[policy.Kind]jit.Choice),
	}
	for k, prog := range a.Programs {
		p.Programs[k] = prog
		p.Verify[k] = a.Verify[k]
		p.Analysis[k] = a.Analysis[k]
		p.Tiers[k] = a.Tiers[k]
	}
	for k, prog := range b.Programs {
		if _, dup := p.Programs[k]; dup {
			return nil, fmt.Errorf("%w: both define %s program", ErrPolicyConflict, k)
		}
		p.Programs[k] = prog
		p.Verify[k] = b.Verify[k]
		p.Analysis[k] = b.Analysis[k]
		p.Tiers[k] = b.Tiers[k]
	}
	p.Native = locks.ComposeHooks(a.Native, b.Native)
	return p, f.addPolicy(p)
}

// Attach installs a loaded policy on a registered lock, replacing any
// current policy, and returns the attachment whose Wait method is the
// patch consistency point. If the policy faults at runtime the framework
// detaches it and the lock reverts to default behaviour.
func (f *Framework) Attach(lockName, policyName string) (*Attachment, error) {
	f.mu.Lock()
	st, ok := f.locks[lockName]
	if !ok {
		f.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrNoSuchLock, lockName)
	}
	p, ok := f.policies[policyName]
	if !ok {
		f.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrNoSuchPolicy, policyName)
	}

	// Admission control (Figure 1 step 5, strengthened): the static
	// worst-case cost bound must fit the hook budget, or the attach is
	// rejected up front — before any hook table changes — rather than
	// letting the watchdog quarantine the policy after user-visible harm.
	bound := p.CostBound()
	if budget := f.supCfg.hookBudget(); budget > 0 && bound > int64(budget) {
		f.mu.Unlock()
		return nil, fmt.Errorf("%w: %s bound %dns > budget %dns on %s",
			ErrCostBudget, policyName, bound, int64(budget), lockName)
	}

	// Cross-policy interference admission: compare the candidate's map
	// footprint against every policy attached to another lock. Maps are
	// a shared namespace, so two policies writing the same map race no
	// matter which locks they ride on.
	findings := f.interferenceLocked(lockName, p)
	if f.supCfg.Interference == InterferenceReject {
		for _, fi := range findings {
			if fi.Conflict.Blocking() {
				f.mu.Unlock()
				return nil, fmt.Errorf("%w: %s on %s %s",
					ErrInterference, policyName, lockName, fi)
			}
		}
	}

	// Injected transition abort (livepatch.abort site): the attach fails
	// before any state changes, as a kernel livepatch transition that
	// cannot complete would.
	if faultinject.LivepatchAbort.Enabled() {
		if flt, fire := faultinject.LivepatchAbort.Fire(); fire {
			tel := f.tel
			f.mu.Unlock()
			if tel != nil {
				tel.TransitionAborts.Inc()
			}
			return nil, fmt.Errorf("%w: %s on %s: %v",
				ErrTransitionAborted, policyName, lockName, flt.Err)
		}
	}

	// The runtime safety valve is the attachment's supervisor: faults
	// trip a circuit breaker that swaps in fallback hooks (keeping the
	// profiler and telemetry — only the faulting policy is dropped) and,
	// configuration permitting, re-attaches after backoff.
	sup := &supervisor{
		f: f, st: st, lockName: lockName, policyName: policyName, cfg: f.supCfg,
		costBound: bound,
	}
	att := &Attachment{Lock: lockName, Policy: policyName, sup: sup, interference: findings}
	sup.att = att
	ad := newAdapter(f, sup)
	sup.ad = ad
	prevSup := st.sup
	st.attached = att
	st.sup = sup
	hooks := f.effectiveHooks(st, p, ad)
	tel := f.tel
	if tel != nil {
		f.tel.Attaches.Inc()
	}
	slot := st.hooked.HookSlot()
	f.mu.Unlock()

	if prevSup != nil {
		prevSup.cancel()
	}
	if r, ok := st.hooked.(interface{ ResetSafety() }); ok {
		r.ResetSafety()
	}
	patch := slot.Replace(policyName, hooks)
	if len(p.Analysis) > 0 {
		// The attach patch carries the analysis reports: the installed
		// artifact records the proof it was admitted under.
		patch.SetAnnotation(p.Analysis)
	}
	sup.setPatch(patch)
	sup.watchDrain(patch, tel)
	return att, nil
}

// Detach removes the current policy from a lock (profiling, if active,
// stays). The returned patch's Wait covers the removed hooks.
func (f *Framework) Detach(lockName string) (*livepatch.Patch, error) {
	f.mu.Lock()
	st, ok := f.locks[lockName]
	if !ok {
		f.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrNoSuchLock, lockName)
	}
	if st.attached == nil && st.profiler == nil {
		f.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrNothingAttached, lockName)
	}
	st.attached = nil
	sup := st.sup
	st.sup = nil
	hooks := f.effectiveHooks(st, nil, nil)
	if f.tel != nil {
		f.tel.Detaches.Inc()
	}
	f.mu.Unlock()
	if sup != nil {
		sup.cancel()
	}
	return st.hooked.HookSlot().Replace("detach", hooks), nil
}

// SetTier livepatches a lock's attachment to a new tier mode: TierAuto
// restores the admission-time per-program choices, TierForceVM drops to
// the interpreter on every program (ablation baseline), TierForceJIT
// compiles everything lowerable. The returned patch's Wait is the
// consistency point after which no execution runs the old tier.
func (f *Framework) SetTier(lockName string, mode TierMode) (*livepatch.Patch, error) {
	f.mu.Lock()
	st, ok := f.locks[lockName]
	if !ok {
		f.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrNoSuchLock, lockName)
	}
	if st.attached == nil || st.sup == nil {
		f.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrNothingAttached, lockName)
	}
	st.attached.tierMode.Store(int32(mode))
	p := f.policies[st.attached.Policy]
	hooks := f.effectiveHooks(st, p, st.sup.ad)
	f.mu.Unlock()
	return st.hooked.HookSlot().Replace("tier:"+mode.String(), hooks), nil
}

// SetOCC flips a lock's optimistic read tier control mode (SetTier-style
// ablation): OCCAuto hands promotion back to the attached policy, OCCOff
// forces the pessimistic path, OCCOn forces speculation. The mode lives
// on the lock instance itself, so it survives supervised reattach and
// policy churn; the returned patch's Wait is the consistency point after
// which every hook execution observes the new mode. Works with or
// without an attached policy.
func (f *Framework) SetOCC(lockName string, mode locks.OCCMode) (*livepatch.Patch, error) {
	f.mu.Lock()
	st, ok := f.locks[lockName]
	if !ok {
		f.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrNoSuchLock, lockName)
	}
	occ, ok := st.lock.(locks.OCCCapable)
	if !ok {
		f.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrNoOCCTier, lockName)
	}
	occ.OCCSetMode(mode)
	var p *Policy
	var ad *adapter
	if st.attached != nil && st.sup != nil {
		p = f.policies[st.attached.Policy]
		ad = st.sup.ad
	}
	hooks := f.effectiveHooks(st, p, ad)
	f.mu.Unlock()
	return st.hooked.HookSlot().Replace("occ:"+mode.String(), hooks), nil
}

// StartProfiling attaches a profiler to the lock, composed with whatever
// policy is installed — the selective, per-instance profiling of §3.2.
func (f *Framework) StartProfiling(lockName string, prof *profile.Profiler) error {
	f.mu.Lock()
	st, ok := f.locks[lockName]
	if !ok {
		f.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrNoSuchLock, lockName)
	}
	st.profiler = prof
	var p *Policy
	var ad *adapter
	if st.attached != nil && st.sup != nil {
		p = f.policies[st.attached.Policy]
		ad = st.sup.ad
	}
	hooks := f.effectiveHooks(st, p, ad)
	f.mu.Unlock()
	st.hooked.HookSlot().Replace("profile:"+lockName, hooks).Wait()
	return nil
}

// StopProfiling removes the profiler from a lock, keeping any policy.
func (f *Framework) StopProfiling(lockName string) error {
	f.mu.Lock()
	st, ok := f.locks[lockName]
	if !ok {
		f.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrNoSuchLock, lockName)
	}
	st.profiler = nil
	var p *Policy
	var ad *adapter
	if st.attached != nil && st.sup != nil {
		p = f.policies[st.attached.Policy]
		ad = st.sup.ad
	}
	hooks := f.effectiveHooks(st, p, ad)
	f.mu.Unlock()
	st.hooked.HookSlot().Replace("unprofile:"+lockName, hooks).Wait()
	return nil
}

// interferenceLocked compares a candidate policy's map footprint with
// every policy attached to *other* locks, in sorted lock-name order
// (deterministic findings). A policy never interferes with itself — the
// same policy on many locks shares its maps by design. Called with f.mu
// held.
func (f *Framework) interferenceLocked(lockName string, p *Policy) []InterferenceFinding {
	if f.supCfg.Interference == InterferenceOff || len(p.Analysis) == 0 {
		return nil
	}
	names := make([]string, 0, len(f.locks))
	for name := range f.locks {
		names = append(names, name)
	}
	sort.Strings(names)
	var out []InterferenceFinding
	for _, name := range names {
		st := f.locks[name]
		if name == lockName || st.attached == nil {
			continue
		}
		other := f.policies[st.attached.Policy]
		if other == nil || other.Name == p.Name || len(other.Analysis) == 0 {
			continue
		}
		for _, c := range analysis.Interference(p.reports(), other.reports()) {
			out = append(out, InterferenceFinding{Lock: name, Policy: other.Name, Conflict: c})
		}
	}
	return out
}

// matchLocks returns the names of registered locks matching a
// path.Match-style pattern ("*" matches any run of characters), the
// granularity knob of §3.2: one instance ("mmap_sem"), a subsystem
// ("vfs.*"), or everything ("*").
func (f *Framework) matchLocks(pattern string) ([]string, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	var out []string
	for name := range f.locks {
		ok, err := path.Match(pattern, name)
		if err != nil {
			return nil, fmt.Errorf("concord: bad lock pattern %q: %w", pattern, err)
		}
		if ok {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out, nil
}

// AttachAll attaches a policy to every registered lock whose name
// matches pattern, returning the attachments made. All-or-nothing is
// not attempted: the error reports the first failing lock, with earlier
// attachments left in place (inspect the returned slice).
func (f *Framework) AttachAll(pattern, policyName string) ([]*Attachment, error) {
	names, err := f.matchLocks(pattern)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("%w: no lock matches %q", ErrNoSuchLock, pattern)
	}
	var out []*Attachment
	for _, name := range names {
		att, err := f.Attach(name, policyName)
		if err != nil {
			return out, err
		}
		out = append(out, att)
	}
	return out, nil
}

// ProfileAll attaches one profiler to every lock matching pattern — the
// "profile all spinlocks in this namespace" use case. It returns the
// matched lock names.
func (f *Framework) ProfileAll(pattern string, prof *profile.Profiler) ([]string, error) {
	names, err := f.matchLocks(pattern)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("%w: no lock matches %q", ErrNoSuchLock, pattern)
	}
	for _, name := range names {
		if err := f.StartProfiling(name, prof); err != nil {
			return names, err
		}
	}
	return names, nil
}

// effectiveHooks builds the hook table for a lock from its policy (if
// any) and profiler (if any). Called with f.mu held.
func (f *Framework) effectiveHooks(st *lockState, p *Policy, ad *adapter) *locks.Hooks {
	var hooks *locks.Hooks
	if p != nil {
		if len(p.Programs) > 0 && ad != nil {
			// The tier mode lives on the attachment so supervisor
			// reattaches and profiling toggles rebuild with the same
			// override in force.
			mode := TierAuto
			if st.attached != nil {
				mode = st.attached.TierMode()
			}
			hooks = ad.hooks(p, mode)
		}
		hooks = locks.ComposeHooks(hooks, p.Native)
		if hooks != nil {
			hooks.Name = p.Name
		}
	}
	if st.profiler != nil {
		hooks = locks.ComposeHooks(hooks, st.profiler.Hooks(st.lock.Name()))
	}
	// The continuous profiler composes after the on-demand profiler: its
	// hooks are sampling-gated and profiling-only, cheap enough to leave
	// in every chain.
	if f.cprof != nil {
		hooks = locks.ComposeHooks(hooks, f.cprof.Hooks(st.lock.Name()))
	}
	// Telemetry composes last: its hooks are profiling-only, so user
	// policies keep every behavioural decision while instrumentation
	// stacks underneath them.
	if f.tel != nil {
		hooks = locks.ComposeHooks(hooks, f.tel.LockHooks(st.lock.Name()))
	}
	return hooks
}
