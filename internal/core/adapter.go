package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"concord/internal/faultinject"
	"concord/internal/locks"
	"concord/internal/policy"
	"concord/internal/policy/jit"
	"concord/internal/task"
)

// slot index tables, computed once from the fixed context layouts so the
// per-invocation fill is straight array stores.
var (
	cmpL   = policy.LayoutFor(policy.KindCmpNode)
	skipL  = policy.LayoutFor(policy.KindSkipShuffle)
	schedL = policy.LayoutFor(policy.KindScheduleWaiter)
	profL  = policy.LayoutFor(policy.KindLockAcquire)

	cmpIdx = struct {
		lockID, queueLen, round, now, batch                             int
		sTask, sCPU, sSocket, sPrio, sWeight, sCS, sWait, sHeld, sSpeed int
		sQuota, sPreempted                                              int
		cTask, cCPU, cSocket, cPrio, cWeight, cCS, cWait, cHeld, cSpeed int
		cQuota, cPreempted                                              int
	}{
		lockID: cmpL.Slot("lock_id"), queueLen: cmpL.Slot("queue_len"),
		round: cmpL.Slot("shuffle_round"), now: cmpL.Slot("now_ns"), batch: cmpL.Slot("batch"),
		sTask: cmpL.Slot("shuffler_task_id"), sCPU: cmpL.Slot("shuffler_cpu"),
		sSocket: cmpL.Slot("shuffler_socket"), sPrio: cmpL.Slot("shuffler_prio"),
		sWeight: cmpL.Slot("shuffler_weight"), sCS: cmpL.Slot("shuffler_cs_avg"),
		sWait: cmpL.Slot("shuffler_wait_ns"), sHeld: cmpL.Slot("shuffler_held_mask"),
		sSpeed: cmpL.Slot("shuffler_speed_pct"), sQuota: cmpL.Slot("shuffler_quota"),
		sPreempted: cmpL.Slot("shuffler_preempted"),
		cTask:      cmpL.Slot("curr_task_id"), cCPU: cmpL.Slot("curr_cpu"),
		cSocket: cmpL.Slot("curr_socket"), cPrio: cmpL.Slot("curr_prio"),
		cWeight: cmpL.Slot("curr_weight"), cCS: cmpL.Slot("curr_cs_avg"),
		cWait: cmpL.Slot("curr_wait_ns"), cHeld: cmpL.Slot("curr_held_mask"),
		cSpeed: cmpL.Slot("curr_speed_pct"), cQuota: cmpL.Slot("curr_quota"),
		cPreempted: cmpL.Slot("curr_preempted"),
	}

	skipIdx = struct {
		lockID, queueLen, round, now, batch, sTask, sCPU, sSocket, sPrio, sWait int
	}{
		lockID: skipL.Slot("lock_id"), queueLen: skipL.Slot("queue_len"),
		round: skipL.Slot("shuffle_round"), now: skipL.Slot("now_ns"),
		batch: skipL.Slot("batch"), sTask: skipL.Slot("shuffler_task_id"),
		sCPU: skipL.Slot("shuffler_cpu"), sSocket: skipL.Slot("shuffler_socket"),
		sPrio: skipL.Slot("shuffler_prio"), sWait: skipL.Slot("shuffler_wait_ns"),
	}

	schedIdx = struct {
		lockID, queueLen, now, cTask, cCPU, cSocket, cPrio, cWait int
		cQuota, cPreempted, ahead, holderCS, spin                 int
	}{
		lockID: schedL.Slot("lock_id"), queueLen: schedL.Slot("queue_len"),
		now: schedL.Slot("now_ns"), cTask: schedL.Slot("curr_task_id"),
		cCPU: schedL.Slot("curr_cpu"), cSocket: schedL.Slot("curr_socket"),
		cPrio: schedL.Slot("curr_prio"), cWait: schedL.Slot("curr_wait_ns"),
		cQuota: schedL.Slot("curr_quota"), cPreempted: schedL.Slot("curr_preempted"),
		ahead: schedL.Slot("waiters_ahead"), holderCS: schedL.Slot("holder_cs_avg"),
		spin: schedL.Slot("spin_ns"),
	}

	profIdx = struct {
		lockID, op, taskID, cpu, socket, prio, now, wait, hold, qlen, reader int
	}{
		lockID: profL.Slot("lock_id"), op: profL.Slot("op"),
		taskID: profL.Slot("task_id"), cpu: profL.Slot("cpu"),
		socket: profL.Slot("socket"), prio: profL.Slot("prio"),
		now: profL.Slot("now_ns"), wait: profL.Slot("wait_ns"),
		hold: profL.Slot("hold_ns"), qlen: profL.Slot("queue_len"),
		reader: profL.Slot("reader"),
	}
)

// op codes stored in the profiling context's "op" field.
const (
	opAcquire   = 1
	opContended = 2
	opAcquired  = 3
	opRelease   = 4
)

// taskEnv adapts a task to the policy VM's execution environment.
type taskEnv struct {
	t    *task.T
	seed uint64
	ad   *adapter
}

func (e *taskEnv) NowNS() int64        { return time.Now().UnixNano() }
func (e *taskEnv) CPU() int            { return e.t.CPU() }
func (e *taskEnv) NUMANode() int       { return e.t.Socket() }
func (e *taskEnv) TaskID() int64       { return e.t.ID() }
func (e *taskEnv) TaskPriority() int64 { return e.t.Priority() }
func (e *taskEnv) Rand() uint64 {
	e.seed += 0x9e3779b97f4a7c15
	z := e.seed
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
func (e *taskEnv) Trace(uint64) {}

// LockStat implements policy.LockStatReader: it reads the hooked lock's
// last completed profiling window through the continuous profiler. The
// closure is swapped atomically so continuous profiling can be enabled
// or disabled while the policy runs.
func (e *taskEnv) LockStat(field uint64) uint64 {
	if e.ad == nil {
		return 0
	}
	if fp := e.ad.lockStats.Load(); fp != nil {
		return (*fp)(field)
	}
	return 0
}

// OCCSet implements policy.OCCSetter: it routes the occ_set helper's
// promotion/demotion request to the attached lock's optimistic tier.
// Like lockStats, the closure is swapped atomically — attachments to
// locks without the tier leave it nil and the helper reports no change.
func (e *taskEnv) OCCSet(on uint64) uint64 {
	if e.ad == nil {
		return 0
	}
	if fp := e.ad.occSet.Load(); fp != nil {
		return (*fp)(on)
	}
	return 0
}

// adapter turns a set of verified programs into a locks.Hooks table.
// One adapter backs one attach attempt; it owns fault bookkeeping.
// faultFn fires at most once per adapter (the supervisor trip), so
// concurrent faulting hooks collapse to exactly one detach.
type adapter struct {
	policyName    string
	faultFn       func(err error) // invoked once on the first policy fault
	countFault    func()          // supervisor/telemetry hook, every fault
	latencyBudget time.Duration   // >0 arms the latency watchdog

	faults    atomic.Int64
	faultOnce sync.Once
	lastErr   atomic.Pointer[error]

	// lockStats backs the lock_stats_read helper for this attachment's
	// lock (nil: helper reads 0). Set at attach time and swapped when
	// continuous profiling is enabled or disabled afterwards.
	lockStats atomic.Pointer[func(uint64) uint64]

	// occSet backs the occ_set helper for this attachment's lock (nil:
	// helper reports no change). Set at attach time when the lock has an
	// optimistic read tier.
	occSet atomic.Pointer[func(uint64) uint64]

	envs sync.Map // *task.T -> *taskEnv
}

// setLockStats installs (or clears, with nil) the lock_stats_read
// backing closure; existing cached task environments observe the swap
// on their next helper call.
func (a *adapter) setLockStats(fn func(uint64) uint64) {
	if fn == nil {
		a.lockStats.Store(nil)
		return
	}
	a.lockStats.Store(&fn)
}

// setOCCSet installs (or clears, with nil) the occ_set backing closure.
func (a *adapter) setOCCSet(fn func(uint64) uint64) {
	if fn == nil {
		a.occSet.Store(nil)
		return
	}
	a.occSet.Store(&fn)
}

func (a *adapter) envFor(t *task.T) *taskEnv {
	if t == nil {
		return &taskEnv{ad: a}
	}
	if e, ok := a.envs.Load(t); ok {
		return e.(*taskEnv)
	}
	e := &taskEnv{t: t, seed: uint64(t.ID()), ad: a}
	actual, _ := a.envs.LoadOrStore(t, e)
	return actual.(*taskEnv)
}

// Faults reports how many policy executions faulted.
func (a *adapter) Faults() int64 { return a.faults.Load() }

// Err returns the first fault, if any.
func (a *adapter) Err() error {
	if p := a.lastErr.Load(); p != nil {
		return *p
	}
	return nil
}

func (a *adapter) fault(err error) {
	a.faults.Add(1)
	if a.countFault != nil {
		a.countFault()
	}
	a.lastErr.CompareAndSwap(nil, &err)
	a.faultOnce.Do(func() {
		if a.faultFn != nil {
			a.faultFn(err)
		}
	})
}

func taskFields(t *task.T) (id, cpu, socket, prio, weight, cs, held, speed, quota, preempted uint64) {
	id = uint64(t.ID())
	cpu = uint64(t.CPU())
	socket = uint64(t.Socket())
	prio = uint64(t.Priority())
	weight = uint64(t.Weight())
	cs = uint64(t.CSAverage())
	held = t.HeldMask()
	speed = uint64(t.Speed() * 100)
	quota = uint64(t.Quota())
	if t.Preempted() {
		preempted = 1
	}
	return
}

// hooks builds the lock hook table executing the policy's programs on
// the tier chosen for each at admission (§4.2's "translated into native
// code"): JIT-tier programs dispatch straight into their fused closures,
// VM-tier ones through the reference interpreter. mode overrides the
// per-program choice for ablation (force-VM baseline, force-JIT).
func (a *adapter) hooks(pol *Policy, mode TierMode) *locks.Hooks {
	progs := pol.Programs
	h := &locks.Hooks{Name: a.policyName}

	compiled := make(map[*policy.Program]policy.CompiledFn, len(progs))
	for k, p := range progs {
		switch mode {
		case TierForceVM:
			// interpreter everywhere: leave the map empty
		case TierForceJIT:
			if fn, err := jit.Compile(p); err == nil {
				compiled[p] = fn
			}
		default:
			// Honour the admission-time decision but lower at hook-table
			// build time: the closure must match the bytecode the
			// interpreter fallback would run, even if the program object
			// changed since LoadPolicy. A program that no longer lowers
			// falls back to the VM (which will fault if it is corrupt).
			if ch, ok := pol.Tiers[k]; ok && ch.Tier == jit.TierJIT {
				if fn, err := jit.Compile(p); err == nil {
					compiled[p] = fn
				}
			}
		}
	}
	exec := func(p *policy.Program, ctx *policy.Ctx, t *task.T) (ret uint64, ok bool) {
		// Containment: a panicking hook (injected or real) becomes a
		// policy fault instead of unwinding into the lock algorithm.
		defer func() {
			if r := recover(); r != nil {
				a.fault(fmt.Errorf("%w: %v", ErrHookPanic, r))
				ret, ok = 0, false
			}
		}()
		if faultinject.CoreHookPanic.Enabled() {
			if flt, fire := faultinject.CoreHookPanic.Fire(); fire {
				panic(flt.Err)
			}
		}
		var start time.Time
		if a.latencyBudget > 0 {
			start = time.Now()
		}
		// Injected hook latency lands inside the watchdog's measurement
		// window — exactly how a slow policy would present.
		if faultinject.PolicyLatency.Enabled() {
			if flt, fire := faultinject.PolicyLatency.Fire(); fire && flt.Delay > 0 {
				time.Sleep(flt.Delay)
			}
		}
		var err error
		if fn := compiled[p]; fn != nil {
			ret, err = fn(ctx, a.envFor(t))
		} else {
			ret, err = policy.Exec(p, ctx, a.envFor(t))
		}
		if a.latencyBudget > 0 {
			if el := time.Since(start); el > a.latencyBudget {
				a.fault(fmt.Errorf("%w: hook ran %v (budget %v)",
					ErrHookLatency, el, a.latencyBudget))
			}
		}
		if err != nil {
			a.fault(err)
			return 0, false
		}
		return ret, true
	}

	if p, ok := progs[policy.KindCmpNode]; ok {
		h.CmpNode = func(info *locks.ShuffleInfo) bool {
			var words [32]uint64
			ctx := policy.Ctx{Layout: cmpL, Words: words[:len(cmpL.Fields)]}
			w := ctx.Words
			w[cmpIdx.lockID] = info.LockID
			w[cmpIdx.queueLen] = uint64(info.QueueLen)
			w[cmpIdx.round] = uint64(info.Round)
			w[cmpIdx.now] = uint64(info.NowNS)
			w[cmpIdx.batch] = uint64(info.Batch)
			s := info.Shuffler
			w[cmpIdx.sTask], w[cmpIdx.sCPU], w[cmpIdx.sSocket], w[cmpIdx.sPrio],
				w[cmpIdx.sWeight], w[cmpIdx.sCS], w[cmpIdx.sHeld], w[cmpIdx.sSpeed],
				w[cmpIdx.sQuota], w[cmpIdx.sPreempted] = taskFields(s.Task)
			w[cmpIdx.sWait] = uint64(s.WaitNS(info.NowNS))
			c := info.Curr
			w[cmpIdx.cTask], w[cmpIdx.cCPU], w[cmpIdx.cSocket], w[cmpIdx.cPrio],
				w[cmpIdx.cWeight], w[cmpIdx.cCS], w[cmpIdx.cHeld], w[cmpIdx.cSpeed],
				w[cmpIdx.cQuota], w[cmpIdx.cPreempted] = taskFields(c.Task)
			w[cmpIdx.cWait] = uint64(c.WaitNS(info.NowNS))
			ret, ok := exec(p, &ctx, s.Task)
			return ok && ret != 0
		}
	}

	if p, ok := progs[policy.KindSkipShuffle]; ok {
		h.SkipShuffle = func(info *locks.ShuffleInfo) bool {
			var words [16]uint64
			ctx := policy.Ctx{Layout: skipL, Words: words[:len(skipL.Fields)]}
			w := ctx.Words
			w[skipIdx.lockID] = info.LockID
			w[skipIdx.queueLen] = uint64(info.QueueLen)
			w[skipIdx.round] = uint64(info.Round)
			w[skipIdx.now] = uint64(info.NowNS)
			w[skipIdx.batch] = uint64(info.Batch)
			s := info.Shuffler
			w[skipIdx.sTask] = uint64(s.Task.ID())
			w[skipIdx.sCPU] = uint64(s.Task.CPU())
			w[skipIdx.sSocket] = uint64(s.Task.Socket())
			w[skipIdx.sPrio] = uint64(s.Task.Priority())
			w[skipIdx.sWait] = uint64(s.WaitNS(info.NowNS))
			ret, ok := exec(p, &ctx, s.Task)
			return ok && ret != 0
		}
	}

	if p, ok := progs[policy.KindScheduleWaiter]; ok {
		h.ScheduleWaiter = func(info *locks.WaitInfo) int {
			var words [16]uint64
			ctx := policy.Ctx{Layout: schedL, Words: words[:len(schedL.Fields)]}
			w := ctx.Words
			w[schedIdx.lockID] = info.LockID
			w[schedIdx.queueLen] = uint64(info.QueueLen)
			w[schedIdx.now] = uint64(info.NowNS)
			c := info.Curr
			w[schedIdx.cTask] = uint64(c.Task.ID())
			w[schedIdx.cCPU] = uint64(c.Task.CPU())
			w[schedIdx.cSocket] = uint64(c.Task.Socket())
			w[schedIdx.cPrio] = uint64(c.Task.Priority())
			w[schedIdx.cWait] = uint64(c.WaitNS(info.NowNS))
			w[schedIdx.cQuota] = uint64(c.Task.Quota())
			if c.Task.Preempted() {
				w[schedIdx.cPreempted] = 1
			}
			w[schedIdx.ahead] = uint64(info.WaitersAhead)
			w[schedIdx.holderCS] = uint64(info.HolderCSAvg)
			w[schedIdx.spin] = uint64(info.SpinNS)
			ret, ok := exec(p, &ctx, c.Task)
			if !ok {
				return locks.WaitDefault
			}
			switch ret {
			case policy.WaiterKeepSpinning:
				return locks.WaitKeepSpinning
			case policy.WaiterParkNow:
				return locks.WaitParkNow
			default:
				return locks.WaitDefault
			}
		}
	}

	profHook := func(p *policy.Program, op uint64) func(ev *locks.Event) {
		layout := policy.LayoutFor(p.Kind)
		return func(ev *locks.Event) {
			var words [16]uint64
			ctx := policy.Ctx{Layout: layout, Words: words[:len(layout.Fields)]}
			w := ctx.Words
			w[profIdx.lockID] = ev.LockID
			w[profIdx.op] = op
			if ev.Task != nil {
				w[profIdx.taskID] = uint64(ev.Task.ID())
				w[profIdx.cpu] = uint64(ev.Task.CPU())
				w[profIdx.socket] = uint64(ev.Task.Socket())
				w[profIdx.prio] = uint64(ev.Task.Priority())
			}
			w[profIdx.now] = uint64(ev.NowNS)
			w[profIdx.wait] = uint64(ev.WaitNS)
			w[profIdx.hold] = uint64(ev.HoldNS)
			w[profIdx.qlen] = uint64(ev.QueueLen)
			if ev.Reader {
				w[profIdx.reader] = 1
			}
			exec(p, &ctx, ev.Task)
		}
	}
	if p, ok := progs[policy.KindLockAcquire]; ok {
		h.OnAcquire = profHook(p, opAcquire)
	}
	if p, ok := progs[policy.KindLockContended]; ok {
		h.OnContended = profHook(p, opContended)
	}
	if p, ok := progs[policy.KindLockAcquired]; ok {
		h.OnAcquired = profHook(p, opAcquired)
	}
	if p, ok := progs[policy.KindLockRelease]; ok {
		h.OnRelease = profHook(p, opRelease)
	}
	return h
}
