package core

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"concord/internal/livepatch"
	"concord/internal/locks"
	"concord/internal/obs"
)

// Supervision errors. ErrHookLatency and ErrHookPanic classify trips so
// telemetry can count watchdog and containment events separately from
// plain VM faults.
var (
	// ErrHookLatency is the latency watchdog's trip error: a policy hook
	// invocation exceeded SupervisorConfig.LatencyBudget.
	ErrHookLatency = errors.New("concord: policy hook exceeded latency budget")
	// ErrHookPanic wraps a panic recovered inside a policy hook.
	ErrHookPanic = errors.New("concord: policy hook panicked")
	// ErrDrainTimeout is the trip error when a (re)attach patch failed
	// to drain within SupervisorConfig.DrainTimeout and was rolled back.
	ErrDrainTimeout = errors.New("concord: livepatch drain deadline exceeded")
	// ErrTransitionAborted is returned by Attach when the livepatch
	// transition was aborted (fault injection: livepatch.abort).
	ErrTransitionAborted = errors.New("concord: policy attach transition aborted")
	// ErrSafetyTrip wraps a lock runtime safety-check quarantine routed
	// through the supervisor.
	ErrSafetyTrip = errors.New("concord: lock safety check tripped")
)

// BreakerState is the per-attachment circuit breaker state.
type BreakerState int32

// Breaker states. Closed is healthy (hooks installed); Open means the
// policy is detached and a re-attach is scheduled after backoff;
// HalfOpen means the policy was re-attached and is on probation;
// Quarantined is terminal — the retry budget (or safety-trip limit) is
// exhausted and the lock stays on default behaviour.
const (
	BreakerClosed BreakerState = iota
	BreakerOpen
	BreakerHalfOpen
	BreakerQuarantined
)

// String implements fmt.Stringer (health rows, `concordctl health`).
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	case BreakerQuarantined:
		return "quarantined"
	}
	return "?"
}

// SupervisorConfig tunes the per-attachment policy supervisor. The zero
// value reproduces the original one-shot safety valve: the first
// runtime fault permanently detaches the policy (quarantine, no
// retries).
type SupervisorConfig struct {
	// MaxRetries is how many re-attach attempts follow a trip before the
	// policy is quarantined. 0 quarantines on the first fault.
	MaxRetries int
	// InitialBackoff is the delay before the first re-attach; it doubles
	// per retry (exponential backoff). Defaults to 10ms when retrying.
	InitialBackoff time.Duration
	// MaxBackoff caps the exponential backoff. Defaults to 1s.
	MaxBackoff time.Duration
	// Probation is how long a re-attached policy must run fault-free in
	// half-open state before the breaker closes (and the retry budget
	// resets). Defaults to 100ms.
	Probation time.Duration
	// DrainTimeout bounds the livepatch epoch drain of every (re)attach
	// this supervisor performs: if the displaced hook table has not
	// quiesced in time, the patch is rolled back and the trip counts
	// against the retry budget. 0 waits forever (the original behaviour).
	DrainTimeout time.Duration
	// LatencyBudget arms the latency watchdog: a hook invocation running
	// longer than this is treated as a policy fault. 0 disables it.
	LatencyBudget time.Duration
	// SafetyTripLimit, when > 0, quarantines the policy outright once
	// this many lock runtime safety checks have tripped, regardless of
	// remaining retries (the starvation/queue-conservation escalation).
	SafetyTripLimit int
	// HookBudget is the admission budget: Attach rejects a policy whose
	// static worst-case cost bound exceeds it. 0 applies
	// DefaultHookBudget; negative disables admission control.
	HookBudget time.Duration
	// WatchdogScale, when > 0 and LatencyBudget is unset, arms the
	// latency watchdog at WatchdogScale × the attached policy's static
	// cost bound (never below derivedWatchdogFloor). An explicit
	// LatencyBudget always wins — the runtime override.
	WatchdogScale int
	// Interference selects how Attach treats statically-detected
	// cross-policy map conflicts (two policies on different locks
	// touching the same map). The zero value warns: conflicts are
	// recorded on the attachment but the attach proceeds.
	Interference InterferenceMode
}

// InterferenceMode is the admission stance on cross-policy map
// interference (see internal/policy/analysis.Interference).
type InterferenceMode int

const (
	// InterferenceWarn (default) records conflicts on the attachment
	// and lets the attach proceed.
	InterferenceWarn InterferenceMode = iota
	// InterferenceOff skips the analysis entirely.
	InterferenceOff
	// InterferenceReject refuses attaches whose policy has a blocking
	// (write-write) conflict with a policy attached to another lock.
	InterferenceReject
)

// String implements fmt.Stringer.
func (m InterferenceMode) String() string {
	switch m {
	case InterferenceWarn:
		return "warn"
	case InterferenceOff:
		return "off"
	case InterferenceReject:
		return "reject"
	}
	return "?"
}

// DefaultHookBudget is the admission budget applied when
// SupervisorConfig.HookBudget is zero: generous against every shipped
// policy (they bound in the hundreds of nanoseconds) while rejecting
// pathological programs before they ever run on the lock's hot path.
const DefaultHookBudget = 2 * time.Microsecond

// derivedWatchdogFloor keeps derived watchdog budgets out of scheduler
// noise: the static bound models native-compiled straight-line cost, and
// a few hundred nanoseconds of slack would trip on any preemption.
const derivedWatchdogFloor = 100 * time.Microsecond

func (c SupervisorConfig) hookBudget() time.Duration {
	if c.HookBudget < 0 {
		return 0 // admission disabled
	}
	if c.HookBudget > 0 {
		return c.HookBudget
	}
	return DefaultHookBudget
}

func (c SupervisorConfig) initialBackoff() time.Duration {
	if c.InitialBackoff > 0 {
		return c.InitialBackoff
	}
	return 10 * time.Millisecond
}

func (c SupervisorConfig) maxBackoff() time.Duration {
	if c.MaxBackoff > 0 {
		return c.MaxBackoff
	}
	return time.Second
}

func (c SupervisorConfig) probation() time.Duration {
	if c.Probation > 0 {
		return c.Probation
	}
	return 100 * time.Millisecond
}

// backoffFor returns the delay before re-attach attempt retry (0-based),
// exponential with cap.
func (c SupervisorConfig) backoffFor(retry int) time.Duration {
	d := c.initialBackoff()
	max := c.maxBackoff()
	for i := 0; i < retry; i++ {
		d *= 2
		if d >= max {
			return max
		}
	}
	if d > max {
		d = max
	}
	return d
}

// supervisor runs the circuit breaker for one attachment. One
// supervisor backs one Attach call; re-attach attempts create fresh
// adapters but keep the supervisor (and its aggregate counters).
//
// Lock ordering: sup.mu may be taken before f.mu, never the reverse.
// Framework methods therefore never call supervisor methods while
// holding f.mu. Replace is called without waiting (never Patch.Wait)
// inside trip paths: a trip can originate inside a hook invocation
// whose pin is exactly what a Wait would block on.
type supervisor struct {
	f          *Framework
	st         *lockState
	att        *Attachment
	lockName   string
	policyName string
	cfg        SupervisorConfig
	// costBound is the policy's static worst-case cost bound (ns) from
	// load-time analysis, written once in Attach before the supervisor is
	// shared; the derived latency watchdog budget scales from it.
	costBound int64

	// faults aggregates policy faults across all adapters (attach
	// attempts) of this attachment.
	faults atomic.Int64

	mu          sync.Mutex
	state       BreakerState
	retries     int
	safetyTrips int
	canceled    bool
	lastErr     error
	patch       *livepatch.Patch
	timer       *time.Timer
	// ad is the adapter of the current attempt. Written under both
	// sup.mu and f.mu; framework methods read it under f.mu.
	ad *adapter
}

// State returns the breaker state.
func (s *supervisor) State() BreakerState {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state
}

// Retries returns how many re-attach attempts have been made.
func (s *supervisor) Retries() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.retries
}

// SafetyTrips returns how many lock safety checks have tripped on this
// attachment.
func (s *supervisor) SafetyTrips() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.safetyTrips
}

// Err returns the most recent trip error, if any.
func (s *supervisor) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastErr
}

func (s *supervisor) setPatch(p *livepatch.Patch) {
	s.mu.Lock()
	s.patch = p
	s.mu.Unlock()
}

// waitPatch blocks on the current attempt's patch consistency point.
func (s *supervisor) waitPatch() {
	s.mu.Lock()
	p := s.patch
	s.mu.Unlock()
	if p != nil {
		p.Wait()
	}
}

// cancel permanently stops supervision (the attachment was detached or
// superseded). Idempotent.
func (s *supervisor) cancel() {
	s.mu.Lock()
	s.canceled = true
	if s.timer != nil {
		s.timer.Stop()
	}
	s.mu.Unlock()
}

// trip is the fault entry point (adapter faultFn). It detaches the
// policy to fallback hooks exactly once per closed/half-open period —
// concurrent faulting hooks collapse to one detach + one fallback swap —
// then either quarantines or schedules a backed-off re-attach.
func (s *supervisor) trip(err error) { s.tripWith(err, false) }

func (s *supervisor) tripWith(err error, forceQuarantine bool) {
	s.mu.Lock()
	if s.canceled || (s.state != BreakerClosed && s.state != BreakerHalfOpen) {
		s.mu.Unlock()
		return
	}
	s.lastErr = err
	quarantine := forceQuarantine || s.retries >= s.cfg.MaxRetries

	f := s.f
	f.mu.Lock()
	current := s.st.attached == s.att
	var fallback *locks.Hooks
	var tel *obs.Telemetry
	var flight *FlightRecorder
	if current {
		if quarantine {
			s.st.attached = nil
		}
		fallback = f.effectiveHooks(s.st, nil, nil)
		tel = f.tel
		flight = f.flight
	}
	f.mu.Unlock()
	if !current {
		// Superseded by a newer Attach (or detached); stand down.
		s.canceled = true
		s.mu.Unlock()
		return
	}

	if quarantine {
		s.state = BreakerQuarantined
	} else {
		s.state = BreakerOpen
	}
	s.st.hooked.HookSlot().Replace("fault-detach:"+s.policyName, fallback)
	if tel != nil {
		tel.SafetyFallbacks.Inc()
		if errors.Is(err, ErrHookLatency) {
			tel.WatchdogTrips.Inc()
		}
		if quarantine {
			tel.Quarantines.Inc()
		} else {
			tel.BreakerOpens.Inc()
		}
	}
	if flight != nil {
		// Copy the trip state by value: the capture goroutine must not
		// read supervisor fields after s.mu is released, and must not
		// take f.mu while we hold s.mu.
		flight.capture(tripSnapshot{
			lock:        s.lockName,
			policyName:  s.policyName,
			err:         err,
			quarantine:  quarantine,
			state:       s.state,
			retries:     s.retries,
			safetyTrips: s.safetyTrips,
			faults:      s.faults.Load(),
			costBound:   s.costBound,
		})
	}
	if !quarantine {
		s.timer = time.AfterFunc(s.cfg.backoffFor(s.retries), s.reattach)
	}
	s.mu.Unlock()
}

// tripSafety routes a lock runtime safety-check quarantine into the
// breaker, escalating to hard quarantine past the configured limit.
func (s *supervisor) tripSafety(msg string) {
	s.mu.Lock()
	s.safetyTrips++
	force := s.cfg.SafetyTripLimit > 0 && s.safetyTrips >= s.cfg.SafetyTripLimit
	s.mu.Unlock()
	s.tripWith(&safetyTripError{msg: msg}, force)
}

// safetyTripError wraps a disablePolicy message as an ErrSafetyTrip.
type safetyTripError struct{ msg string }

func (e *safetyTripError) Error() string { return ErrSafetyTrip.Error() + ": " + e.msg }
func (e *safetyTripError) Unwrap() error { return ErrSafetyTrip }

// reattach fires after the backoff: install a fresh adapter and move to
// half-open probation.
func (s *supervisor) reattach() {
	s.mu.Lock()
	if s.canceled || s.state != BreakerOpen {
		s.mu.Unlock()
		return
	}
	s.retries++

	f := s.f
	f.mu.Lock()
	if s.st.attached != s.att {
		f.mu.Unlock()
		s.canceled = true
		s.mu.Unlock()
		return
	}
	p := f.policies[s.policyName]
	ad := newAdapter(f, s)
	s.ad = ad
	hooks := f.effectiveHooks(s.st, p, ad)
	tel := f.tel
	f.mu.Unlock()

	// Re-enable hook dispatch in case a safety check disabled it.
	if r, ok := s.st.hooked.(interface{ ResetSafety() }); ok {
		r.ResetSafety()
	}
	patch := s.st.hooked.HookSlot().Replace(s.policyName+"(retry)", hooks)
	s.patch = patch
	s.state = BreakerHalfOpen
	if tel != nil {
		tel.Reattaches.Inc()
	}
	s.timer = time.AfterFunc(s.cfg.probation(), s.probationEnd)
	s.mu.Unlock()

	s.watchDrain(patch, tel)
}

// watchDrain enforces DrainTimeout on a (re)attach patch: if the
// displaced hooks do not quiesce in time, roll back and trip.
func (s *supervisor) watchDrain(patch *livepatch.Patch, tel *obs.Telemetry) {
	if s.cfg.DrainTimeout <= 0 {
		return
	}
	go func() {
		if patch.WaitTimeout(s.cfg.DrainTimeout) {
			return
		}
		if tel != nil {
			tel.DrainTimeouts.Inc()
		}
		patch.Rollback()
		s.tripWith(ErrDrainTimeout, false)
	}()
}

// probationEnd closes the breaker after a fault-free half-open window
// and restores the retry budget (transient faults heal completely).
func (s *supervisor) probationEnd() {
	s.mu.Lock()
	if !s.canceled && s.state == BreakerHalfOpen {
		s.state = BreakerClosed
		s.retries = 0
		if tel := s.f.Telemetry(); tel != nil {
			tel.BreakerCloses.Inc()
		}
	}
	s.mu.Unlock()
}

// newAdapter builds the hook adapter for one attach attempt, wired to
// the supervisor: every fault bumps the aggregate counters, and the
// first fault of the attempt trips the breaker.
// latencyBudget resolves the watchdog budget for this attachment: the
// explicit LatencyBudget when configured, otherwise WatchdogScale × the
// static cost bound (floored at derivedWatchdogFloor), otherwise 0.
func (s *supervisor) latencyBudget() time.Duration {
	if s.cfg.LatencyBudget > 0 {
		return s.cfg.LatencyBudget
	}
	if s.cfg.WatchdogScale > 0 && s.costBound > 0 {
		d := time.Duration(s.costBound) * time.Duration(s.cfg.WatchdogScale)
		if d < derivedWatchdogFloor {
			d = derivedWatchdogFloor
		}
		return d
	}
	return 0
}

func newAdapter(f *Framework, sup *supervisor) *adapter {
	ad := &adapter{
		policyName:    sup.policyName,
		latencyBudget: sup.latencyBudget(),
	}
	ad.countFault = func() {
		sup.faults.Add(1)
		if tel := f.Telemetry(); tel != nil {
			tel.PolicyFaults.Inc()
		}
	}
	ad.faultFn = sup.trip
	// newAdapter runs with f.mu held (Attach and supervised reattach),
	// so the lock_stats_read closure can be resolved directly.
	ad.setLockStats(f.statReaderLocked(sup.st))
	// occ_set routes to the lock's optimistic tier when it has one; the
	// closure re-checks the framework's mode override so a SetOCC
	// ablation keeps binding across supervised reattaches (the adapter is
	// rebuilt, but the override lives on lockState).
	if occ, ok := sup.st.lock.(locks.OCCCapable); ok {
		ad.setOCCSet(func(on uint64) uint64 {
			if occ.OCCPromote(on != 0) {
				return 1
			}
			return 0
		})
	}
	return ad
}

// handleSafetyTrip is the framework's lock safety observer: it counts
// the trip and routes it to the supervisor of the affected lock's
// attachment, if any.
func (f *Framework) handleSafetyTrip(lockName, msg string) {
	f.mu.Lock()
	tel := f.tel
	var sup *supervisor
	if st := f.locks[lockName]; st != nil && st.attached != nil {
		sup = st.sup
	}
	f.mu.Unlock()
	if tel != nil {
		tel.SafetyTrips.Inc()
	}
	if sup != nil {
		sup.tripSafety(msg)
	}
}

// HealthRow is one lock's robustness status: breaker state, fault and
// retry counts, and the last trip reason — the unit of the /health
// endpoint and `concordctl health`.
type HealthRow struct {
	Lock        string `json:"lock"`
	Policy      string `json:"policy,omitempty"`
	Breaker     string `json:"breaker"`
	Faults      int64  `json:"faults"`
	Retries     int    `json:"retries"`
	SafetyTrips int    `json:"safety_trips"`
	LastError   string `json:"last_error,omitempty"`
}

// HealthRows reports the supervision status of every registered lock,
// sorted by name. Locks that never had a policy attached report an
// empty breaker state.
func (f *Framework) HealthRows() []HealthRow {
	f.mu.Lock()
	type entry struct {
		name   string
		policy string
		sup    *supervisor
	}
	entries := make([]entry, 0, len(f.locks))
	for name, st := range f.locks {
		e := entry{name: name, sup: st.sup}
		if st.attached != nil {
			e.policy = st.attached.Policy
		} else if st.sup != nil {
			e.policy = st.sup.policyName
		}
		entries = append(entries, e)
	}
	f.mu.Unlock()

	rows := make([]HealthRow, 0, len(entries))
	for _, e := range entries {
		row := HealthRow{Lock: e.name, Policy: e.policy}
		if s := e.sup; s != nil {
			// Supervisor state is read after releasing f.mu (lock order:
			// sup.mu before f.mu, never inverted).
			s.mu.Lock()
			row.Breaker = s.state.String()
			row.Retries = s.retries
			row.SafetyTrips = s.safetyTrips
			if s.lastErr != nil {
				row.LastError = s.lastErr.Error()
			}
			s.mu.Unlock()
			row.Faults = s.faults.Load()
		}
		rows = append(rows, row)
	}
	sortHealthRows(rows)
	return rows
}

func sortHealthRows(rows []HealthRow) {
	for i := 1; i < len(rows); i++ {
		for j := i; j > 0 && rows[j].Lock < rows[j-1].Lock; j-- {
			rows[j], rows[j-1] = rows[j-1], rows[j]
		}
	}
}

// breakerByLock returns lock name -> breaker state string for every
// supervised lock (used to decorate telemetry LockRows).
func (f *Framework) breakerByLock() map[string]string {
	f.mu.Lock()
	sups := make(map[string]*supervisor, len(f.locks))
	for name, st := range f.locks {
		if st.sup != nil {
			sups[name] = st.sup
		}
	}
	f.mu.Unlock()
	out := make(map[string]string, len(sups))
	for name, s := range sups {
		out[name] = s.State().String()
	}
	return out
}
