package core

import (
	"errors"
	"testing"

	"concord/internal/locks"
	"concord/internal/policy"
	"concord/internal/task"
)

// occSetProgram promotes the hooked lock on every acquisition.
func occSetProgram(t testing.TB) *policy.Program {
	t.Helper()
	p, err := policy.Assemble("promote", policy.KindLockAcquired, `
		mov  r1, 1
		call occ_set
		exit
	`, nil)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestSetOCCModes(t *testing.T) {
	f := newFramework()
	l := locks.NewRWSem("rw")
	if err := f.RegisterLock(l); err != nil {
		t.Fatal(err)
	}

	// Works without a policy attached: the mode lives on the lock.
	patch, err := f.SetOCC("rw", locks.OCCOn)
	if err != nil {
		t.Fatal(err)
	}
	patch.Wait()
	if got := l.OCCGetMode(); got != locks.OCCOn {
		t.Fatalf("mode = %v, want on", got)
	}

	tk := task.New(f.Topology())
	var sink uint64
	l.OptRead(tk, func() { sink++ })
	if st := l.OCCStats(); st.Reads != 1 {
		t.Fatalf("forced-on lock did not speculate: %+v", st)
	}

	if _, err := f.SetOCC("rw", locks.OCCOff); err != nil {
		t.Fatal(err)
	}
	l.OptRead(tk, func() { sink++ })
	if st := l.OCCStats(); st.Reads != 1 {
		t.Fatalf("forced-off lock speculated: %+v", st)
	}

	// Locks without the tier are rejected explicitly.
	if err := f.RegisterLock(locks.NewShflLock("shfl")); err != nil {
		t.Fatal(err)
	}
	if _, err := f.SetOCC("shfl", locks.OCCOn); !errors.Is(err, ErrNoOCCTier) {
		t.Fatalf("SetOCC on shfllock: %v", err)
	}
	if _, err := f.SetOCC("nope", locks.OCCOn); !errors.Is(err, ErrNoSuchLock) {
		t.Fatalf("SetOCC on unknown lock: %v", err)
	}
}

// TestOCCSetHelperRoutesToLock drives the full promotion loop: a
// lock_acquired policy calling occ_set(1) is attached to an rwsem, one
// acquisition runs the hook, and the lock instance comes out promoted.
func TestOCCSetHelperRoutesToLock(t *testing.T) {
	f := newFramework()
	l := locks.NewRWSem("rw")
	if err := f.RegisterLock(l); err != nil {
		t.Fatal(err)
	}
	if _, err := f.LoadPolicy("promote", occSetProgram(t)); err != nil {
		t.Fatal(err)
	}
	att, err := f.Attach("rw", "promote")
	if err != nil {
		t.Fatal(err)
	}
	att.Wait()

	tk := task.New(f.Topology())
	l.Lock(tk)
	l.Unlock(tk)
	st := l.OCCStats()
	if !st.Promoted || st.Promotions != 1 {
		t.Fatalf("occ_set did not reach the lock: %+v", st)
	}

	// Speculation now engages without any explicit mode flip.
	var sink uint64
	l.OptRead(tk, func() { sink++ })
	if st := l.OCCStats(); st.Reads != 1 {
		t.Fatalf("promoted lock did not speculate: %+v", st)
	}
}

// TestSetOCCSurvivesReattach pins the ablation contract: the mode is
// carried by the lock instance, so forcing the tier off wins over the
// policy's occ_set and keeps winning after the attachment is rebuilt
// (detach + fresh attach, the same path a supervised reattach takes
// through newAdapter).
func TestSetOCCSurvivesReattach(t *testing.T) {
	f := newFramework()
	l := locks.NewRWSem("rw")
	if err := f.RegisterLock(l); err != nil {
		t.Fatal(err)
	}
	if _, err := f.LoadPolicy("promote", occSetProgram(t)); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Attach("rw", "promote"); err != nil {
		t.Fatal(err)
	}
	patch, err := f.SetOCC("rw", locks.OCCOff)
	if err != nil {
		t.Fatal(err)
	}
	patch.Wait()

	if _, err := f.Detach("rw"); err != nil {
		t.Fatal(err)
	}
	att, err := f.Attach("rw", "promote")
	if err != nil {
		t.Fatal(err)
	}
	att.Wait()

	if got := l.OCCGetMode(); got != locks.OCCOff {
		t.Fatalf("mode after reattach = %v, want off", got)
	}
	tk := task.New(f.Topology())
	l.Lock(tk)
	l.Unlock(tk)
	if st := l.OCCStats(); st.Promotions != 0 {
		t.Fatalf("occ_set promoted a forced-off lock: %+v", st)
	}

	// Handing control back to the policy re-enables promotion on the
	// very next hook execution.
	if _, err := f.SetOCC("rw", locks.OCCAuto); err != nil {
		t.Fatal(err)
	}
	l.Lock(tk)
	l.Unlock(tk)
	if st := l.OCCStats(); st.Promotions != 1 || !st.Promoted {
		t.Fatalf("auto mode did not restore policy control: %+v", st)
	}
}
