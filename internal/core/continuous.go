package core

import (
	"errors"

	"concord/internal/locks"
	"concord/internal/profile"
)

// ErrNoContinuousProfiling is returned by profile exports when the
// framework was built without a continuous profiler.
var ErrNoContinuousProfiling = errors.New("concord: continuous profiling not enabled")

// EnableContinuousProfiling attaches a continuous contention profiler
// to the framework: every registered lock (current and future) gets the
// profiler's sampling-gated hooks composed between its on-demand
// profiler and telemetry, and policies attached afterwards can read the
// windowed signals through the lock_stats_read helper. Call with nil to
// detach (existing hook chains are re-published without the profiler).
func (f *Framework) EnableContinuousProfiling(c *profile.Continuous) {
	f.mu.Lock()
	f.cprof = c

	// Re-publish every lock's hook table so the profiler composes in
	// (or out). Policy adapters resolve their lock_stats_read closure at
	// attach time, so policies attached before this call keep reading 0
	// until re-attached; hook instrumentation switches immediately.
	type repatch struct {
		st    *lockState
		hooks *locks.Hooks
	}
	var patches []repatch
	for _, st := range f.locks {
		var p *Policy
		var ad *adapter
		if st.attached != nil && st.sup != nil {
			p = f.policies[st.attached.Policy]
			ad = st.sup.ad
			if ad != nil {
				ad.setLockStats(f.statReaderLocked(st))
			}
		}
		patches = append(patches, repatch{st, f.effectiveHooks(st, p, ad)})
	}
	f.mu.Unlock()

	for _, r := range patches {
		r.st.hooked.HookSlot().Replace("cprofile:"+r.st.lock.Name(), r.hooks)
	}
}

// statReaderLocked returns the lock_stats_read backing closure for one
// lock, or nil without a continuous profiler. Called with f.mu held.
func (f *Framework) statReaderLocked(st *lockState) func(uint64) uint64 {
	if f.cprof == nil {
		return nil
	}
	return f.cprof.StatReader(st.lock.ID(), st.lock.Name())
}

// ContinuousProfiler returns the profiler passed to
// EnableContinuousProfiling, or nil.
func (f *Framework) ContinuousProfiler() *profile.Continuous {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.cprof
}

// ContentionProfile exports the continuous profiler's cumulative
// contention profile as a gzipped pprof protobuf (the
// /debug/concord/contention payload).
func (f *Framework) ContentionProfile() ([]byte, error) {
	c := f.ContinuousProfiler()
	if c == nil {
		return nil, ErrNoContinuousProfiling
	}
	return c.PprofProfile()
}

// WindowSnapshots returns every profiled lock's freshest profiling
// window (nil without continuous profiling).
func (f *Framework) WindowSnapshots() []profile.WindowSnapshot {
	c := f.ContinuousProfiler()
	if c == nil {
		return nil
	}
	return c.Snapshots()
}
