package core

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"concord/internal/faultinject"
	"concord/internal/obs"
	"concord/internal/policy/analysis"
	"concord/internal/profile"
)

// FlightBundleSchema identifies the on-disk flight bundle format.
const FlightBundleSchema = "concord-flightrec/1"

// ErrNoFlightRecorder is returned by flight-recorder queries when none
// was enabled.
var ErrNoFlightRecorder = errors.New("concord: flight recorder not enabled")

// ErrSchedFuzz classifies failures detected by the schedule fuzzer
// (invariant violations, operational errors, or deadline trips under a
// fuzzed interleaving). Wrap it so classifyTrigger files the bundle
// under the "schedfuzz" trigger.
var ErrSchedFuzz = errors.New("concord: schedule fuzzer detected failure")

// FlightRecorderConfig configures the supervisor flight recorder.
type FlightRecorderConfig struct {
	// Dir is where bundles are written (created if missing).
	Dir string
	// MaxBundles prunes the oldest bundles beyond this count; 0 keeps
	// DefaultMaxBundles.
	MaxBundles int
	// Clock overrides time.Now().UnixNano (tests).
	Clock func() int64
}

// DefaultMaxBundles bounds on-disk flight bundles when
// FlightRecorderConfig.MaxBundles is zero.
const DefaultMaxBundles = 32

// FlightBundle is the diagnostic state captured atomically when a
// supervisor trips: everything needed to reconstruct the incident
// offline — what fired, what the lock looked like, what the policy was
// and was proven to cost, and which injected faults were live.
type FlightBundle struct {
	Schema     string `json:"schema"`
	Seq        int64  `json:"seq"`
	CapturedNS int64  `json:"captured_ns"`

	Lock    string `json:"lock"`
	Policy  string `json:"policy"`
	Trigger string `json:"trigger"` // breaker-open | quarantine | watchdog | safety-trip | drain-timeout | schedfuzz
	Error   string `json:"error"`

	// SchedulePath points at the replayable schedule file for
	// schedfuzz-triggered bundles ("" otherwise).
	SchedulePath string `json:"schedule_path,omitempty"`
	// Goroutines is a full goroutine dump, captured when the trip was a
	// deadline (wedged run) rather than a returned error.
	Goroutines string `json:"goroutines,omitempty"`

	Breaker     string `json:"breaker"`
	Quarantined bool   `json:"quarantined"`
	Retries     int    `json:"retries"`
	SafetyTrips int    `json:"safety_trips"`
	Faults      int64  `json:"faults"`
	CostBoundNS int64  `json:"cost_bound_ns"`

	// Trace is the telemetry trace-ring snapshot at capture time (nil
	// without telemetry); TraceLost counts wrap-around evictions.
	Trace     []profile.TraceRecord `json:"trace,omitempty"`
	TraceLost int64                 `json:"trace_lost,omitempty"`
	// Perfetto embeds the same snapshot rendered as a loadable
	// Chrome/Perfetto timeline.
	Perfetto json.RawMessage `json:"perfetto,omitempty"`

	// Windows holds every profiled lock's freshest profiling window
	// (nil without continuous profiling).
	Windows []profile.WindowSnapshot `json:"windows,omitempty"`

	// Policies carries the loaded policies' VM counters and map-plane
	// stats (occupancy, collisions, optimistic retries).
	Policies []PolicyRow `json:"policies,omitempty"`

	// Disasm is the offending policy's per-kind disassembly; Analysis
	// the matching static-analysis reports it was admitted under.
	Disasm   map[string]string           `json:"disasm,omitempty"`
	Analysis map[string]*analysis.Report `json:"analysis,omitempty"`

	// FaultSites records every fault-injection site's cumulative fire
	// count, so injected and organic incidents are distinguishable.
	FaultSites map[string]int64 `json:"fault_sites,omitempty"`
}

// FlightRecorder captures FlightBundles on supervisor trips. Captures
// run on their own goroutine (trip paths hold supervisor state and must
// not block on disk I/O or framework locks); Wait flushes them, giving
// tests and shutdown a deterministic completion point.
type FlightRecorder struct {
	f     *Framework
	dir   string
	max   int
	clock func() int64

	seq atomic.Int64
	wg  sync.WaitGroup

	mu      sync.Mutex
	lastErr error
	files   []string
}

// EnableFlightRecorder arms the flight recorder: from now on every
// supervisor trip (breaker open, quarantine, watchdog fire, safety
// trip, drain timeout) writes a FlightBundle under cfg.Dir.
func (f *Framework) EnableFlightRecorder(cfg FlightRecorderConfig) (*FlightRecorder, error) {
	if cfg.Dir == "" {
		return nil, errors.New("concord: flight recorder needs a directory")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("concord: flight recorder dir: %w", err)
	}
	max := cfg.MaxBundles
	if max <= 0 {
		max = DefaultMaxBundles
	}
	clock := cfg.Clock
	if clock == nil {
		clock = func() int64 { return time.Now().UnixNano() }
	}
	fr := &FlightRecorder{f: f, dir: cfg.Dir, max: max, clock: clock}
	f.mu.Lock()
	f.flight = fr
	f.mu.Unlock()
	return fr, nil
}

// FlightRecorder returns the recorder enabled on this framework, or nil.
func (f *Framework) FlightRecorder() *FlightRecorder {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.flight
}

// Wait blocks until every in-flight capture has been written.
func (fr *FlightRecorder) Wait() { fr.wg.Wait() }

// Err returns the most recent capture error, if any.
func (fr *FlightRecorder) Err() error {
	fr.mu.Lock()
	defer fr.mu.Unlock()
	return fr.lastErr
}

// Bundles lists the bundle files written by this recorder, oldest
// first.
func (fr *FlightRecorder) Bundles() []string {
	fr.mu.Lock()
	defer fr.mu.Unlock()
	out := make([]string, len(fr.files))
	copy(out, fr.files)
	return out
}

// Dir returns the bundle directory.
func (fr *FlightRecorder) Dir() string { return fr.dir }

// tripSnapshot is the supervisor state passed into a capture, copied
// while the trip still holds its locks.
type tripSnapshot struct {
	lock        string
	policyName  string
	err         error
	quarantine  bool
	state       BreakerState
	retries     int
	safetyTrips int
	faults      int64
	costBound   int64

	schedulePath string
	goroutines   string
}

// classifyTrigger maps a trip error to the bundle trigger taxonomy.
func classifyTrigger(err error, quarantine bool) string {
	switch {
	case errors.Is(err, ErrSchedFuzz):
		return "schedfuzz"
	case errors.Is(err, ErrHookLatency):
		return "watchdog"
	case errors.Is(err, ErrSafetyTrip):
		return "safety-trip"
	case errors.Is(err, ErrDrainTimeout):
		return "drain-timeout"
	case quarantine:
		return "quarantine"
	default:
		return "breaker-open"
	}
}

// CaptureSchedFuzz schedules a bundle for a failure the schedule
// fuzzer detected: target identifies the fuzz target (filed in the
// Lock field), err is the detected failure, schedulePath the written
// replay file, and goroutines an optional goroutine dump (deadline
// trips). The bundle is classified under the "schedfuzz" trigger.
func (fr *FlightRecorder) CaptureSchedFuzz(target string, err error, schedulePath, goroutines string) {
	fr.capture(tripSnapshot{
		lock:         target,
		policyName:   "schedfuzz",
		err:          fmt.Errorf("%w: %w", ErrSchedFuzz, err),
		schedulePath: schedulePath,
		goroutines:   goroutines,
	})
}

// capture schedules one bundle write. Called from trip paths with
// supervisor (and possibly other) locks held: everything that needs a
// framework lock happens on the capture goroutine.
func (fr *FlightRecorder) capture(snap tripSnapshot) {
	fr.wg.Add(1)
	go func() {
		defer fr.wg.Done()
		fr.write(fr.collect(snap))
	}()
}

// collect assembles the bundle from the trip snapshot plus the
// framework's current diagnostic state.
func (fr *FlightRecorder) collect(snap tripSnapshot) *FlightBundle {
	f := fr.f
	b := &FlightBundle{
		Schema:     FlightBundleSchema,
		Seq:        fr.seq.Add(1),
		CapturedNS: fr.clock(),

		Lock:    snap.lock,
		Policy:  snap.policyName,
		Trigger: classifyTrigger(snap.err, snap.quarantine),

		Breaker:     snap.state.String(),
		Quarantined: snap.quarantine,
		Retries:     snap.retries,
		SafetyTrips: snap.safetyTrips,
		Faults:      snap.faults,
		CostBoundNS: snap.costBound,
	}
	if snap.err != nil {
		b.Error = snap.err.Error()
	}
	b.SchedulePath = snap.schedulePath
	b.Goroutines = snap.goroutines

	if tel := f.Telemetry(); tel != nil {
		b.Trace = tel.Ring.Snapshot()
		b.TraceLost = tel.Ring.Overwritten()
		tb := obs.NewTraceBuilder()
		tb.AddLockRecords(b.Trace, f.LockNameByID)
		var buf bytes.Buffer
		if err := tb.Encode(&buf); err == nil {
			b.Perfetto = json.RawMessage(buf.Bytes())
		}
	}
	b.Windows = f.WindowSnapshots()
	b.Policies = f.PolicyRows()

	if p, ok := f.Policy(snap.policyName); ok {
		b.Disasm = make(map[string]string, len(p.Programs))
		for kind, prog := range p.Programs {
			b.Disasm[kind.String()] = prog.String()
		}
		if len(p.Analysis) > 0 {
			b.Analysis = make(map[string]*analysis.Report, len(p.Analysis))
			for kind, rep := range p.Analysis {
				b.Analysis[kind.String()] = rep
			}
		}
	}

	sites := faultinject.Sites()
	b.FaultSites = make(map[string]int64, len(sites))
	for _, s := range sites {
		if n := s.Fires(); n > 0 {
			b.FaultSites[s.Name()] = n
		}
	}
	return b
}

// write persists the bundle atomically (tmp + rename) and prunes old
// bundles beyond the cap.
func (fr *FlightRecorder) write(b *FlightBundle) {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		fr.fail(err)
		return
	}
	name := fmt.Sprintf("flight-%06d-%s-%s.json", b.Seq, sanitizeName(b.Lock), b.Trigger)
	final := filepath.Join(fr.dir, name)
	tmp := final + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		fr.fail(err)
		return
	}
	if err := os.Rename(tmp, final); err != nil {
		fr.fail(err)
		return
	}
	fr.mu.Lock()
	fr.files = append(fr.files, final)
	var prune []string
	if len(fr.files) > fr.max {
		n := len(fr.files) - fr.max
		prune = append(prune, fr.files[:n]...)
		fr.files = append(fr.files[:0:0], fr.files[n:]...)
	}
	fr.mu.Unlock()
	for _, p := range prune {
		os.Remove(p)
	}
}

func (fr *FlightRecorder) fail(err error) {
	fr.mu.Lock()
	fr.lastErr = err
	fr.mu.Unlock()
}

// sanitizeName keeps bundle file names filesystem-safe.
func sanitizeName(s string) string {
	if s == "" {
		return "unknown"
	}
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_', r == '.':
			return r
		default:
			return '_'
		}
	}, s)
}

// ReadFlightBundle loads and validates one bundle file.
func ReadFlightBundle(path string) (*FlightBundle, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b FlightBundle
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("concord: flight bundle %s: %w", path, err)
	}
	if b.Schema != FlightBundleSchema {
		return nil, fmt.Errorf("concord: flight bundle %s: schema %q, want %q", path, b.Schema, FlightBundleSchema)
	}
	return &b, nil
}

// ListFlightBundles returns the bundle files in a directory, sorted by
// file name (sequence order).
func ListFlightBundles(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range ents {
		if e.IsDir() || !strings.HasPrefix(e.Name(), "flight-") || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		out = append(out, filepath.Join(dir, e.Name()))
	}
	sort.Strings(out)
	return out, nil
}
