package core

import (
	"errors"
	"strings"
	"testing"

	"concord/internal/locks"
	"concord/internal/policydsl"
)

// loadDSL compiles a DSL source and registers it as a policy.
func loadDSL(t *testing.T, f *Framework, name, src string) *Policy {
	t.Helper()
	unit, err := policydsl.CompileAndVerify(src)
	if err != nil {
		t.Fatalf("compile %s: %v", name, err)
	}
	p, err := f.LoadPolicy(name, unit.Programs...)
	if err != nil {
		t.Fatalf("load %s: %v", name, err)
	}
	return p
}

const writerASrc = `map shared hash(key = 8, value = 8, entries = 64);
policy lock_acquired wa { shared[ctx.lock_id] = ctx.wait_ns; return 0; }`

const writerBSrc = `map shared hash(key = 8, value = 8, entries = 64);
policy lock_contended wb { shared[ctx.lock_id] += 1; return 0; }`

const readerSrc = `map shared hash(key = 8, value = 8, entries = 64);
policy skip_shuffle rd {
	if (shared[ctx.lock_id] > 1000) { return 1; }
	return 0;
}`

func interferenceFramework(t *testing.T) *Framework {
	t.Helper()
	f := newFramework()
	for _, name := range []string{"l1", "l2"} {
		if err := f.RegisterLock(locks.NewShflLock(name)); err != nil {
			t.Fatal(err)
		}
	}
	loadDSL(t, f, "writer-a", writerASrc)
	loadDSL(t, f, "writer-b", writerBSrc)
	loadDSL(t, f, "reader", readerSrc)
	return f
}

// TestAttachRejectsInterferingWrites is the admission acceptance case:
// with InterferenceReject configured, attaching two policies that both
// statically write the same map — on different locks — fails closed.
func TestAttachRejectsInterferingWrites(t *testing.T) {
	f := interferenceFramework(t)
	f.SetSupervisorConfig(SupervisorConfig{Interference: InterferenceReject})

	att, err := f.Attach("l1", "writer-a")
	if err != nil {
		t.Fatalf("first writer: %v", err)
	}
	att.Wait()
	if n := len(att.Interference()); n != 0 {
		t.Fatalf("first attach records %d findings, want 0", n)
	}

	_, err = f.Attach("l2", "writer-b")
	if !errors.Is(err, ErrInterference) {
		t.Fatalf("Attach = %v, want ErrInterference", err)
	}
	// The error names the conflict pair and the shared map.
	for _, want := range []string{"writer-b", "writer-a", "l1", "l2", "map shared", "write-write"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("rejection error lacks %q: %v", want, err)
		}
	}

	// The rejected policy never reached the lock's hook table.
	for _, info := range f.Locks() {
		if info.Name == "l2" && info.Policy != "" {
			t.Errorf("l2 has policy %q after rejected attach", info.Policy)
		}
	}

	// A read-write conflict is not blocking: the reader attaches, with
	// the finding recorded.
	ratt, err := f.Attach("l2", "reader")
	if err != nil {
		t.Fatalf("reader under reject mode: %v", err)
	}
	ratt.Wait()
	fs := ratt.Interference()
	if len(fs) != 1 || fs[0].Conflict.Class != "read-write" || fs[0].Policy != "writer-a" || fs[0].Lock != "l1" {
		t.Fatalf("reader findings = %+v", fs)
	}
}

// TestAttachWarnModeRecordsConflicts: the default mode admits the
// conflicting pair but surfaces the findings on the attachment.
func TestAttachWarnModeRecordsConflicts(t *testing.T) {
	f := interferenceFramework(t)

	a1, err := f.Attach("l1", "writer-a")
	if err != nil {
		t.Fatal(err)
	}
	a1.Wait()
	a2, err := f.Attach("l2", "writer-b")
	if err != nil {
		t.Fatalf("warn mode rejected: %v", err)
	}
	a2.Wait()
	fs := a2.Interference()
	if len(fs) != 1 || !fs[0].Conflict.Blocking() {
		t.Fatalf("warn-mode findings = %+v", fs)
	}
	if s := fs[0].String(); !strings.Contains(s, "writer-a") || !strings.Contains(s, "l1") {
		t.Errorf("finding string %q lacks the other side", s)
	}
}

// TestAttachInterferenceOffAndSelf: Off skips the analysis; the same
// policy attached to many locks never conflicts with itself.
func TestAttachInterferenceOffAndSelf(t *testing.T) {
	f := interferenceFramework(t)
	f.SetSupervisorConfig(SupervisorConfig{Interference: InterferenceOff})
	if a, err := f.Attach("l1", "writer-a"); err != nil {
		t.Fatal(err)
	} else {
		a.Wait()
	}
	a2, err := f.Attach("l2", "writer-b")
	if err != nil {
		t.Fatalf("off mode rejected: %v", err)
	}
	a2.Wait()
	if n := len(a2.Interference()); n != 0 {
		t.Fatalf("off mode recorded %d findings", n)
	}

	f2 := interferenceFramework(t)
	f2.SetSupervisorConfig(SupervisorConfig{Interference: InterferenceReject})
	if a, err := f2.Attach("l1", "writer-a"); err != nil {
		t.Fatal(err)
	} else {
		a.Wait()
	}
	a2, err = f2.Attach("l2", "writer-a")
	if err != nil {
		t.Fatalf("same policy on second lock: %v", err)
	}
	a2.Wait()
	if n := len(a2.Interference()); n != 0 {
		t.Fatalf("policy conflicts with itself: %d findings", n)
	}
}

// TestComposeRejectsInterferingConstituents: under Reject mode, fusing
// two policies that write the same map is refused (the later program
// would clobber the earlier one's state on every event); a writer and a
// reader still compose.
func TestComposeRejectsInterferingConstituents(t *testing.T) {
	f := interferenceFramework(t)
	f.SetSupervisorConfig(SupervisorConfig{Interference: InterferenceReject})

	_, err := f.Compose("both-writers", "writer-a", "writer-b")
	if !errors.Is(err, ErrInterference) {
		t.Fatalf("Compose = %v, want ErrInterference", err)
	}

	p, err := f.Compose("writer-reader", "writer-a", "reader")
	if err != nil {
		t.Fatalf("writer+reader compose: %v", err)
	}
	if len(p.Kinds()) != 2 {
		t.Fatalf("composed kinds = %v", p.Kinds())
	}

	// Warn (default) mode composes both writers.
	f2 := interferenceFramework(t)
	if _, err := f2.Compose("both-writers", "writer-a", "writer-b"); err != nil {
		t.Fatalf("warn-mode compose: %v", err)
	}
}

// TestNativePoliciesSkipInterference: native hook tables carry no
// analysis, so they neither produce nor receive findings.
func TestNativePoliciesSkipInterference(t *testing.T) {
	f := interferenceFramework(t)
	f.SetSupervisorConfig(SupervisorConfig{Interference: InterferenceReject})
	if _, err := f.LoadNative("native", &locks.Hooks{Name: "native",
		CmpNode: func(info *locks.ShuffleInfo) bool { return false }}); err != nil {
		t.Fatal(err)
	}
	if a, err := f.Attach("l1", "writer-a"); err != nil {
		t.Fatal(err)
	} else {
		a.Wait()
	}
	a2, err := f.Attach("l2", "native")
	if err != nil {
		t.Fatalf("native attach: %v", err)
	}
	a2.Wait()
	if n := len(a2.Interference()); n != 0 {
		t.Fatalf("native policy has %d findings", n)
	}
}
