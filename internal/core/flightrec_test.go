package core

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"concord/internal/faultinject"
	"concord/internal/locks"
	"concord/internal/obs"
	"concord/internal/policy"
	"concord/internal/profile"
	"concord/internal/task"
)

// flightFixture builds a framework with telemetry, continuous profiling,
// and a flight recorder, attaches the map-lookup policy to one lock, and
// returns everything a trip test needs.
func flightFixture(t *testing.T, cfg SupervisorConfig) (*Framework, *FlightRecorder, *locks.ShflLock, *Attachment) {
	t.Helper()
	t.Cleanup(faultinject.DisarmAll)
	f := newFramework()
	f.SetSupervisorConfig(cfg)
	f.EnableTelemetry(obs.NewTelemetry())
	cp := profile.NewContinuous(profile.ContinuousConfig{SampleRate: 1})
	cp.SetEnabled(true)
	f.EnableContinuousProfiling(cp)
	fr, err := f.EnableFlightRecorder(FlightRecorderConfig{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	l := locks.NewShflLock("flock")
	if err := f.RegisterLock(l); err != nil {
		t.Fatal(err)
	}
	mapLookupPolicy(t, f, "fpol")
	att, err := f.Attach("flock", "fpol")
	if err != nil {
		t.Fatal(err)
	}
	att.Wait()
	return f, fr, l, att
}

// TestFlightRecorderCapturesOnQuarantine: a forced quarantine trip must
// deterministically produce exactly one schema-valid bundle carrying the
// trace ring, profiling windows, policy disassembly, analysis report,
// and the injected fault site's fire count.
func TestFlightRecorderCapturesOnQuarantine(t *testing.T) {
	f, fr, l, att := flightFixture(t, SupervisorConfig{
		MaxRetries:     0, // first fault quarantines
		InitialBackoff: time.Millisecond,
	})

	faultinject.PolicyHelper.Arm(faultinject.Config{MaxFires: 1})
	tk := task.New(f.Topology())
	pumpUntil(t, l, tk, "quarantine", func() bool { return att.Quarantined() })
	fr.Wait()
	if err := fr.Err(); err != nil {
		t.Fatalf("capture error: %v", err)
	}

	files := fr.Bundles()
	if len(files) != 1 {
		t.Fatalf("bundles = %v, want exactly 1", files)
	}
	base := filepath.Base(files[0])
	if !strings.Contains(base, "flock") || !strings.Contains(base, "quarantine") {
		t.Errorf("bundle name %q missing lock/trigger", base)
	}

	b, err := ReadFlightBundle(files[0])
	if err != nil {
		t.Fatal(err)
	}
	if b.Schema != FlightBundleSchema {
		t.Errorf("schema = %q", b.Schema)
	}
	if b.Seq != 1 {
		t.Errorf("seq = %d, want 1", b.Seq)
	}
	if b.CapturedNS == 0 {
		t.Error("captured_ns unset")
	}
	if b.Lock != "flock" || b.Policy != "fpol" {
		t.Errorf("lock/policy = %q/%q", b.Lock, b.Policy)
	}
	if b.Trigger != "quarantine" || !b.Quarantined {
		t.Errorf("trigger = %q quarantined=%v", b.Trigger, b.Quarantined)
	}
	if b.Breaker != BreakerQuarantined.String() {
		t.Errorf("breaker = %q", b.Breaker)
	}
	if b.Error == "" {
		t.Error("error string empty")
	}
	if b.Faults < 1 {
		t.Errorf("faults = %d", b.Faults)
	}
	if len(b.Trace) == 0 {
		t.Error("trace ring snapshot empty")
	}
	if len(b.Perfetto) == 0 {
		t.Error("perfetto timeline missing")
	} else {
		var tr struct {
			TraceEvents []map[string]any `json:"traceEvents"`
		}
		if err := json.Unmarshal(b.Perfetto, &tr); err != nil {
			t.Errorf("perfetto not valid JSON: %v", err)
		} else if len(tr.TraceEvents) == 0 {
			t.Error("perfetto timeline has no events")
		}
	}
	if len(b.Windows) == 0 {
		t.Error("no profiling windows captured")
	} else {
		found := false
		for _, w := range b.Windows {
			if w.Lock == "flock" && w.Acqs > 0 {
				found = true
			}
		}
		if !found {
			t.Errorf("no window with acquisitions for flock: %+v", b.Windows)
		}
	}
	if len(b.Policies) == 0 {
		t.Error("no policy rows captured")
	}
	if d, ok := b.Disasm[policy.KindLockAcquired.String()]; !ok || !strings.Contains(d, "call") {
		t.Errorf("disassembly missing or wrong: %q", d)
	}
	if rep, ok := b.Analysis[policy.KindLockAcquired.String()]; !ok || rep == nil || rep.CostBound <= 0 {
		t.Errorf("analysis report missing: %+v", rep)
	}
	if n := b.FaultSites["policy.helper"]; n < 1 {
		t.Errorf("fault site fires = %d, want >= 1 (sites: %v)", n, b.FaultSites)
	}

	// No stray tmp files: the write is atomic.
	ents, err := os.ReadDir(fr.Dir())
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".tmp") {
			t.Errorf("leftover tmp file %s", e.Name())
		}
	}

	// ListFlightBundles agrees with the recorder's own accounting.
	listed, err := ListFlightBundles(fr.Dir())
	if err != nil {
		t.Fatal(err)
	}
	if len(listed) != 1 || listed[0] != files[0] {
		t.Errorf("ListFlightBundles = %v, want %v", listed, files)
	}
}

// TestFlightRecorderBreakerOpenTrigger: a transient fault with retry
// budget left must classify as breaker-open, not quarantine.
func TestFlightRecorderBreakerOpenTrigger(t *testing.T) {
	f, fr, l, att := flightFixture(t, SupervisorConfig{
		MaxRetries:     3,
		InitialBackoff: 5 * time.Millisecond,
		Probation:      50 * time.Millisecond,
	})

	faultinject.PolicyHelper.Arm(faultinject.Config{MaxFires: 1})
	tk := task.New(f.Topology())
	pumpUntil(t, l, tk, "fault", func() bool { return att.Faults() > 0 })
	fr.Wait()

	files := fr.Bundles()
	if len(files) == 0 {
		t.Fatal("no bundle captured")
	}
	b, err := ReadFlightBundle(files[0])
	if err != nil {
		t.Fatal(err)
	}
	if b.Trigger != "breaker-open" {
		t.Errorf("trigger = %q, want breaker-open", b.Trigger)
	}
	if b.Quarantined {
		t.Error("transient trip marked quarantined")
	}
	if b.Breaker != BreakerOpen.String() {
		t.Errorf("breaker = %q", b.Breaker)
	}
	_ = f
}

// TestFlightRecorderSafetyTripTrigger routes a runtime safety trip
// through the framework and expects the safety-trip classification.
func TestFlightRecorderSafetyTripTrigger(t *testing.T) {
	f, fr, _, att := flightFixture(t, SupervisorConfig{
		MaxRetries:     0,
		InitialBackoff: time.Millisecond,
	})

	f.handleSafetyTrip("flock", "waiter starvation detected")
	pollUntil(t, "quarantine", func() bool { return att.Quarantined() })
	fr.Wait()

	files := fr.Bundles()
	if len(files) != 1 {
		t.Fatalf("bundles = %v, want 1", files)
	}
	b, err := ReadFlightBundle(files[0])
	if err != nil {
		t.Fatal(err)
	}
	if b.Trigger != "safety-trip" {
		t.Errorf("trigger = %q, want safety-trip", b.Trigger)
	}
	if !strings.Contains(b.Error, "waiter starvation") {
		t.Errorf("error = %q, want safety message", b.Error)
	}
}

// pollUntil spins on cond without driving lock traffic (for trips
// injected directly rather than via hooks).
func pollUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestFlightRecorderPrunesOldBundles: MaxBundles caps disk usage, oldest
// bundles removed first.
func TestFlightRecorderPrunesOldBundles(t *testing.T) {
	f := newFramework()
	fr, err := f.EnableFlightRecorder(FlightRecorderConfig{
		Dir:        t.TempDir(),
		MaxBundles: 2,
		Clock:      func() int64 { return 42 },
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		fr.capture(tripSnapshot{lock: "l", policyName: "p", err: errors.New("boom")})
	}
	fr.Wait()
	files := fr.Bundles()
	if len(files) != 2 {
		t.Fatalf("kept %d bundles, want 2: %v", len(files), files)
	}
	listed, err := ListFlightBundles(fr.Dir())
	if err != nil {
		t.Fatal(err)
	}
	if len(listed) != 2 {
		t.Fatalf("on disk: %v, want 2 files", listed)
	}
	// The survivors are the two newest sequences.
	last, err := ReadFlightBundle(listed[len(listed)-1])
	if err != nil {
		t.Fatal(err)
	}
	if last.Seq != 5 {
		t.Errorf("newest seq = %d, want 5", last.Seq)
	}
	if last.CapturedNS != 42 {
		t.Errorf("clock override ignored: %d", last.CapturedNS)
	}
}

// TestFlightRecorderRejectsBadInput covers config validation and bundle
// schema checking.
func TestFlightRecorderRejectsBadInput(t *testing.T) {
	f := newFramework()
	if _, err := f.EnableFlightRecorder(FlightRecorderConfig{}); err == nil {
		t.Error("empty dir accepted")
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "flight-000001-x-y.json")
	if err := os.WriteFile(bad, []byte(`{"schema":"other/9"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFlightBundle(bad); err == nil {
		t.Error("wrong schema accepted")
	}
	if _, err := ReadFlightBundle(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
}

// TestFlightRecorderCaptureSchedFuzz: the schedule fuzzer's trip class
// files a bundle under the "schedfuzz" trigger carrying the replayable
// schedule path and the goroutine dump alongside the usual diagnostic
// state.
func TestFlightRecorderCaptureSchedFuzz(t *testing.T) {
	_, fr, _, _ := flightFixture(t, SupervisorConfig{
		MaxRetries:     5,
		InitialBackoff: time.Millisecond,
	})

	fr.CaptureSchedFuzz("lock-torture", errors.New("ops conserved badly"),
		"/tmp/x.schedule.json", "goroutine 1 [running]: ...")
	fr.Wait()
	if err := fr.Err(); err != nil {
		t.Fatal(err)
	}
	files := fr.Bundles()
	if len(files) != 1 {
		t.Fatalf("bundles = %d, want 1", len(files))
	}
	b, err := ReadFlightBundle(files[0])
	if err != nil {
		t.Fatal(err)
	}
	if b.Trigger != "schedfuzz" {
		t.Errorf("trigger %q, want schedfuzz", b.Trigger)
	}
	if b.Lock != "lock-torture" || b.Policy != "schedfuzz" {
		t.Errorf("identity lock=%q policy=%q", b.Lock, b.Policy)
	}
	if b.SchedulePath != "/tmp/x.schedule.json" {
		t.Errorf("schedule path %q", b.SchedulePath)
	}
	if !strings.Contains(b.Goroutines, "goroutine 1") {
		t.Errorf("goroutine dump lost: %q", b.Goroutines)
	}
	if !strings.Contains(b.Error, "ops conserved badly") ||
		!strings.Contains(b.Error, ErrSchedFuzz.Error()) {
		t.Errorf("error %q missing wrapped cause", b.Error)
	}
}
