package core

import (
	"errors"
	"strings"
	"testing"
	"time"

	"concord/internal/locks"
	"concord/internal/policy"
	"concord/internal/policy/analysis"
)

// expensiveProgram builds a verified program whose static cost bound
// exceeds DefaultHookBudget (2µs): ~3000 ALU instructions of straight
// line is a ~3µs bound under the cost model.
func expensiveProgram(t testing.TB) *policy.Program {
	t.Helper()
	b := policy.NewBuilder("hog", policy.KindCmpNode)
	b.MovImm(policy.R0, 0)
	for i := 0; i < 3000; i++ {
		b.AddImm(policy.R0, 1)
	}
	b.MovImm(policy.R0, 1)
	b.Exit()
	return b.MustProgram()
}

func TestLoadPolicyComputesAnalysis(t *testing.T) {
	f := newFramework()
	p, err := f.LoadPolicy("numa", numaCmpProgram(t))
	if err != nil {
		t.Fatal(err)
	}
	rep := p.Analysis[policy.KindCmpNode]
	if rep == nil {
		t.Fatal("LoadPolicy left no analysis report")
	}
	if rep.CostBound <= 0 || rep.CostBound > int64(DefaultHookBudget) {
		t.Fatalf("numa cost bound = %dns, want within (0, %dns]", rep.CostBound, int64(DefaultHookBudget))
	}
	if p.CostBound() != rep.CostBound {
		t.Fatalf("Policy.CostBound() = %d, report says %d", p.CostBound(), rep.CostBound)
	}
}

func TestAttachRejectsOverBudgetPolicy(t *testing.T) {
	f := newFramework()
	if err := f.RegisterLock(locks.NewShflLock("l")); err != nil {
		t.Fatal(err)
	}
	pol, err := f.LoadPolicy("hog", expensiveProgram(t))
	if err != nil {
		t.Fatal(err)
	}
	bound := pol.CostBound()
	if bound <= int64(DefaultHookBudget) {
		t.Fatalf("test program bound %dns not above default budget %dns", bound, int64(DefaultHookBudget))
	}

	_, err = f.Attach("l", "hog")
	if !errors.Is(err, ErrCostBudget) {
		t.Fatalf("Attach = %v, want ErrCostBudget", err)
	}
	// The bound must be in the error so the operator sees the proof.
	if !strings.Contains(err.Error(), "ns") || !strings.Contains(err.Error(), "hog") {
		t.Fatalf("admission error lacks bound/policy: %v", err)
	}

	// Raising the budget admits it.
	f.SetSupervisorConfig(SupervisorConfig{HookBudget: time.Duration(bound+1) * time.Nanosecond})
	att, err := f.Attach("l", "hog")
	if err != nil {
		t.Fatalf("Attach with raised budget: %v", err)
	}
	att.Wait()

	// Negative budget disables admission entirely.
	f.SetSupervisorConfig(SupervisorConfig{HookBudget: -1})
	if _, err := f.Attach("l", "hog"); err != nil {
		t.Fatalf("Attach with admission disabled: %v", err)
	}
}

func TestAttachAdmitsShippedStylePolicy(t *testing.T) {
	f := newFramework()
	if err := f.RegisterLock(locks.NewShflLock("l")); err != nil {
		t.Fatal(err)
	}
	if _, err := f.LoadPolicy("numa", numaCmpProgram(t)); err != nil {
		t.Fatal(err)
	}
	att, err := f.Attach("l", "numa")
	if err != nil {
		t.Fatalf("numa rejected at default budget: %v", err)
	}
	att.Wait()
	if att.CostBound() <= 0 {
		t.Fatalf("attachment cost bound = %d, want > 0", att.CostBound())
	}
}

func TestDerivedWatchdogBudget(t *testing.T) {
	f := newFramework()
	if err := f.RegisterLock(locks.NewShflLock("l")); err != nil {
		t.Fatal(err)
	}
	pol, err := f.LoadPolicy("hog", expensiveProgram(t))
	if err != nil {
		t.Fatal(err)
	}
	bound := pol.CostBound()

	// WatchdogScale with no explicit LatencyBudget derives k × bound.
	f.SetSupervisorConfig(SupervisorConfig{HookBudget: -1, WatchdogScale: 100})
	att, err := f.Attach("l", "hog")
	if err != nil {
		t.Fatal(err)
	}
	att.Wait()
	want := 100 * time.Duration(bound) // ~300µs, above the floor
	if got := att.WatchdogBudget(); got != want {
		t.Fatalf("derived watchdog budget = %v, want %v (100 × %dns)", got, want, bound)
	}

	// Explicit LatencyBudget is the runtime override: it always wins.
	f.SetSupervisorConfig(SupervisorConfig{
		HookBudget: -1, WatchdogScale: 100, LatencyBudget: 7 * time.Millisecond,
	})
	att2, err := f.Attach("l", "hog")
	if err != nil {
		t.Fatal(err)
	}
	att2.Wait()
	if got := att2.WatchdogBudget(); got != 7*time.Millisecond {
		t.Fatalf("watchdog budget = %v, want the explicit 7ms override", got)
	}

	// A cheap policy's derived budget is floored out of scheduler noise.
	if _, err := f.LoadPolicy("numa", numaCmpProgram(t)); err != nil {
		t.Fatal(err)
	}
	f.SetSupervisorConfig(SupervisorConfig{WatchdogScale: 2})
	att3, err := f.Attach("l", "numa")
	if err != nil {
		t.Fatal(err)
	}
	att3.Wait()
	if got := att3.WatchdogBudget(); got != derivedWatchdogFloor {
		t.Fatalf("floored watchdog budget = %v, want %v", got, derivedWatchdogFloor)
	}

	// No scale, no explicit budget: watchdog stays off (legacy zero
	// config).
	f.SetSupervisorConfig(SupervisorConfig{})
	att4, err := f.Attach("l", "numa")
	if err != nil {
		t.Fatal(err)
	}
	att4.Wait()
	if got := att4.WatchdogBudget(); got != 0 {
		t.Fatalf("zero-config watchdog budget = %v, want disabled", got)
	}
}

func TestAttachPatchCarriesAnalysisAnnotation(t *testing.T) {
	f := newFramework()
	if err := f.RegisterLock(locks.NewShflLock("l")); err != nil {
		t.Fatal(err)
	}
	if _, err := f.LoadPolicy("numa", numaCmpProgram(t)); err != nil {
		t.Fatal(err)
	}
	att, err := f.Attach("l", "numa")
	if err != nil {
		t.Fatal(err)
	}
	att.Wait()
	att.sup.mu.Lock()
	patch := att.sup.patch
	att.sup.mu.Unlock()
	reports, ok := patch.Annotation().(map[policy.Kind]*analysis.Report)
	if !ok {
		t.Fatalf("patch annotation = %T, want analysis report map", patch.Annotation())
	}
	if reports[policy.KindCmpNode] == nil || reports[policy.KindCmpNode].CostBound <= 0 {
		t.Fatalf("annotation reports = %+v", reports)
	}
}

func TestComposeCopiesAnalysis(t *testing.T) {
	f := newFramework()
	if _, err := f.LoadPolicy("numa", numaCmpProgram(t)); err != nil {
		t.Fatal(err)
	}
	countProg := policy.NewBuilder("count", policy.KindLockAcquire).
		MovImm(policy.R0, 0).Exit().MustProgram()
	if _, err := f.LoadPolicy("count", countProg); err != nil {
		t.Fatal(err)
	}
	combo, err := f.Compose("combo", "numa", "count")
	if err != nil {
		t.Fatal(err)
	}
	if combo.Analysis[policy.KindCmpNode] == nil || combo.Analysis[policy.KindLockAcquire] == nil {
		t.Fatalf("composed analysis = %+v", combo.Analysis)
	}
}
