package faultinject

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

// Site names are process-unique compile-time identifiers, so tests that
// register ad-hoc sites must mint fresh names to stay re-runnable under
// -count=N within one process.
var testSiteSeq atomic.Int64

func newTestSite(prefix string) *Site {
	return New(fmt.Sprintf("%s#%d", prefix, testSiteSeq.Add(1)))
}

func TestDisarmedSiteIsInert(t *testing.T) {
	s := newTestSite("test.inert")
	if s.Enabled() {
		t.Fatal("fresh site reports enabled")
	}
	if _, ok := s.Fire(); ok {
		t.Fatal("disarmed site fired")
	}
	if s.Fires() != 0 {
		t.Fatal("disarmed site counted a fire")
	}
}

func TestArmFireDisarm(t *testing.T) {
	s := newTestSite("test.basic")
	s.Arm(Config{Delay: 3 * time.Millisecond})
	if !s.Enabled() {
		t.Fatal("armed site reports disabled")
	}
	f, ok := s.Fire()
	if !ok {
		t.Fatal("armed always-fire site did not fire")
	}
	if !errors.Is(f.Err, ErrInjected) {
		t.Errorf("default error = %v, want ErrInjected", f.Err)
	}
	if f.Delay != 3*time.Millisecond {
		t.Errorf("delay = %v", f.Delay)
	}
	if s.Fires() != 1 {
		t.Errorf("fires = %d, want 1", s.Fires())
	}
	s.Disarm()
	if s.Enabled() {
		t.Fatal("disarmed site reports enabled")
	}
	if _, ok := s.Fire(); ok {
		t.Fatal("disarmed site fired")
	}
}

func TestMaxFiresCap(t *testing.T) {
	s := newTestSite("test.cap")
	s.Arm(Config{MaxFires: 2})
	fired := 0
	for i := 0; i < 10; i++ {
		if _, ok := s.Fire(); ok {
			fired++
		}
	}
	if fired != 2 {
		t.Errorf("fired %d times, want 2 (MaxFires)", fired)
	}
	if !s.Enabled() {
		t.Error("capped site should stay armed (inert)")
	}
}

func TestProbabilityDeterministic(t *testing.T) {
	run := func() []bool {
		s, ok := Lookup("test.prob")
		if !ok {
			s = New("test.prob")
		}
		s.Arm(Config{Probability: 0.3, Seed: 42})
		out := make([]bool, 200)
		for i := range out {
			_, out[i] = s.Fire()
		}
		s.Disarm()
		return out
	}
	a, b := run(), run()
	hits := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at draw %d", i)
		}
		if a[i] {
			hits++
		}
	}
	// 200 draws at p=0.3: expect ~60; require the rate is plausible.
	if hits < 30 || hits > 100 {
		t.Errorf("hit rate %d/200 implausible for p=0.3", hits)
	}
}

func TestPlanApply(t *testing.T) {
	s := newTestSite("test.plan")
	defer s.Disarm()
	p := Plan{Seed: 7, Sites: map[string]Config{s.Name(): {MaxFires: 1}}}
	if err := p.Apply(); err != nil {
		t.Fatal(err)
	}
	if !s.Enabled() {
		t.Fatal("plan did not arm site")
	}
	if err := (Plan{Sites: map[string]Config{"no.such.site": {}}}).Apply(); err == nil {
		t.Fatal("unknown site accepted")
	}
}

func TestRegistryListsFixedSites(t *testing.T) {
	want := []string{
		"core.hook_panic", "livepatch.abort", "livepatch.drain",
		"locks.lost_wakeup", "locks.park_delay",
		"policy.helper", "policy.latency", "policy.mapop", "policy.trap",
	}
	have := make(map[string]bool)
	for _, s := range Sites() {
		have[s.Name()] = true
	}
	for _, name := range want {
		if !have[name] {
			t.Errorf("fixed site %q not registered", name)
		}
	}
}

func TestDuplicateSitePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	name := fmt.Sprintf("test.dup#%d", testSiteSeq.Add(1))
	New(name)
	New(name)
}

// BenchmarkDisabledSite measures the hot-path guard of a disarmed site —
// the cost every instrumented fast path pays when injection is off.
func BenchmarkDisabledSite(b *testing.B) {
	PolicyHelper.Disarm()
	b.ReportAllocs()
	n := 0
	for i := 0; i < b.N; i++ {
		if PolicyHelper.Enabled() {
			n++
		}
	}
	if n != 0 {
		b.Fatal("site unexpectedly armed")
	}
}

func BenchmarkArmedInertSite(b *testing.B) {
	s := newTestSite("bench.inert")
	s.Arm(Config{MaxFires: 1})
	s.Fire() // exhaust the cap; subsequent fires are the inert path
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if s.Enabled() {
			s.Fire()
		}
	}
	b.StopTimer()
	s.Disarm()
}
