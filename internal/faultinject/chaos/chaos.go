// Package chaos is the soak harness of the fault-injection plane: it
// stands up a full Concord stack (framework + telemetry + a supervised
// policy on a ShflLock-protected hashtable), arms a reproducible fault
// plan, drives load, and snapshots everything the invariant checks
// need — injected-fault counts per site, attachment fault totals,
// breaker state, supervisor telemetry counters, park-rescue counts and
// lock safety state.
//
// The harness itself asserts nothing; the invariants live in the tests
// (and the CI chaos-smoke job), which compose runs like:
//
//	h, _ := chaos.New(chaos.Config{
//	    Seed: 42,
//	    Plan: map[string]faultinject.Config{"policy.helper": {MaxFires: 2}},
//	    Supervisor: core.SupervisorConfig{MaxRetries: 5, ...},
//	})
//	defer h.Close()
//	h.RunRound()
//	r := h.Snapshot()   // exact fire accounting, breaker state, ...
package chaos

import (
	"fmt"
	"time"

	"concord/internal/core"
	"concord/internal/faultinject"
	"concord/internal/locks"
	"concord/internal/obs"
	"concord/internal/policy"
	"concord/internal/profile"
	"concord/internal/topology"
	"concord/internal/workloads"
)

// Config describes one chaos run.
type Config struct {
	// Seed drives every armed site's random stream (via faultinject.Plan);
	// the same seed reproduces the same fault sequence per site. Ad hoc
	// per-site Config.Seed values inside Plan are overridden with
	// faultinject.SiteSeed(Seed, name): the run must be reproducible
	// from this one integer alone.
	Seed uint64
	// Plan maps site names to arm configurations. Applied after the
	// policy is attached, so attach itself is not perturbed unless the
	// test arms livepatch.abort explicitly before calling New.
	Plan map[string]faultinject.Config
	// Supervisor is the breaker configuration under test.
	Supervisor core.SupervisorConfig

	// Workload shape. Zero values default to 4 workers × 300 ops, 70%
	// reads, on a 2×4 topology — small enough for a -race CI smoke, big
	// enough to queue waiters.
	Workers      int
	OpsPerWorker int
	ReadFraction float64
	Sockets      int
	CoresPer     int
	// Blocking switches the lock into spin-then-park mode so the parker
	// sites (locks.park_delay, locks.lost_wakeup) have a path to bite.
	Blocking bool

	// FlightDir, when non-empty, arms the flight recorder: every
	// supervisor trip during the run captures a diagnostic bundle into
	// this directory. The harness also arms a rate-1 continuous
	// profiler so the bundles carry profiling windows — chaos runs
	// measure invariants, not throughput, so full-fidelity sampling is
	// free here.
	FlightDir string
}

func (c *Config) defaults() {
	if c.Workers == 0 {
		c.Workers = 4
	}
	if c.OpsPerWorker == 0 {
		c.OpsPerWorker = 300
	}
	if c.ReadFraction == 0 {
		c.ReadFraction = 0.7
	}
	if c.Sockets == 0 {
		c.Sockets = 2
	}
	if c.CoresPer == 0 {
		c.CoresPer = 4
	}
}

// Snapshot is the observable state of a harness at one instant; tests
// diff and assert on it.
type Snapshot struct {
	Ops           int64 // total workload ops completed so far
	Breaker       core.BreakerState
	Retries       int
	Faults        int64            // attachment policy-fault total
	Fires         map[string]int64 // injected fires per site since New
	ParkRescues   int64
	SafetyError   string // lock invariant violation, "" when conserved
	Fallbacks     int64  // obs: safety fallback hook swaps
	Reattaches    int64
	BreakerCloses int64
	Quarantines   int64
}

// TotalInjectedFaults sums the fires of the error-delivering policy
// sites — the number that must equal Faults for exact accounting.
// (Latency and parker sites perturb timing, not policy execution.)
func (s *Snapshot) TotalInjectedFaults() int64 {
	return s.Fires["policy.helper"] + s.Fires["policy.mapop"] +
		s.Fires["policy.trap"] + s.Fires["core.hook_panic"]
}

// Harness is a live chaos stack.
type Harness struct {
	FW   *core.Framework
	Tel  *obs.Telemetry
	Lock *locks.ShflLock
	Att  *core.Attachment

	cfg  Config
	topo *topology.Topology
	base map[string]int64 // site fires at New time
	ops  int64
}

// New builds the stack, attaches the supervised policy, and arms the
// fault plan. Callers must Close (disarms every site) when done.
func New(cfg Config) (*Harness, error) {
	cfg.defaults()
	topo := topology.New(cfg.Sockets, cfg.CoresPer)
	fw := core.New(topo)
	tel := obs.NewTelemetry()
	fw.EnableTelemetry(tel)
	fw.SetSupervisorConfig(cfg.Supervisor)
	if cfg.FlightDir != "" {
		cp := profile.NewContinuous(profile.ContinuousConfig{SampleRate: 1})
		cp.SetEnabled(true)
		fw.EnableContinuousProfiling(cp)
		if _, err := fw.EnableFlightRecorder(core.FlightRecorderConfig{Dir: cfg.FlightDir}); err != nil {
			return nil, fmt.Errorf("chaos: %w", err)
		}
	}

	opts := []locks.ShflOption{locks.WithMaxRounds(64)}
	if cfg.Blocking {
		opts = append(opts, locks.WithBlocking(true), locks.WithSpinBudget(64))
	}
	l := locks.NewShflLock("chaos_lock", opts...)
	if err := fw.RegisterLock(l); err != nil {
		return nil, err
	}

	// The policy under chaos performs a map lookup on every acquisition:
	// every hook invocation crosses the helper path, so the policy-layer
	// sites fire on a deterministic schedule under load.
	m := policy.NewArrayMap("chaos_m", 8, 1)
	prog := policy.NewBuilder("chaos_pol", policy.KindLockAcquired).
		StoreStackImm(policy.OpStW, -4, 0).
		LoadMapPtr(policy.R1, m).
		MovReg(policy.R2, policy.RFP).
		AddImm(policy.R2, -4).
		Call(policy.HelperMapLookup).
		JmpImm(policy.OpJneImm, policy.R0, 0, "ok").
		ReturnImm(0).
		Label("ok").
		ReturnImm(1).
		MustProgram()
	if _, err := fw.LoadPolicy("chaos_pol", prog); err != nil {
		return nil, err
	}
	att, err := fw.Attach("chaos_lock", "chaos_pol")
	if err != nil {
		return nil, err
	}
	att.Wait()

	base := make(map[string]int64)
	for _, s := range faultinject.Sites() {
		base[s.Name()] = s.Fires()
	}
	// One run seed governs every site stream: ad hoc per-site Seed
	// overrides are re-derived from cfg.Seed so the whole run is
	// reproducible from the single integer Seed() reports, not from N
	// scattered ones.
	sites := make(map[string]faultinject.Config, len(cfg.Plan))
	for name, sc := range cfg.Plan {
		sc.Seed = faultinject.SiteSeed(cfg.Seed, name)
		sites[name] = sc
	}
	plan := faultinject.Plan{Seed: cfg.Seed, Sites: sites}
	if err := plan.Apply(); err != nil {
		return nil, fmt.Errorf("chaos: %w", err)
	}
	return &Harness{FW: fw, Tel: tel, Lock: l, Att: att, cfg: cfg, topo: topo, base: base}, nil
}

// Close disarms every injection site (the harness armed a subset; a
// full disarm restores the production nil-check everywhere).
func (h *Harness) Close() { faultinject.DisarmAll() }

// Seed reports the run seed every armed site's stream derives from —
// print it and the run is reproducible from that one integer.
func (h *Harness) Seed() uint64 { return h.cfg.Seed }

// RunRound drives one hashtable round through the (possibly degraded)
// lock and returns its result. Progress of this call under injected
// faults IS the liveness invariant: it must terminate.
func (h *Harness) RunRound() workloads.Result {
	res := workloads.RunHashTable(h.Lock, h.topo, workloads.HashTableConfig{
		Workers:      h.cfg.Workers,
		OpsPerWorker: h.cfg.OpsPerWorker,
		ReadFraction: h.cfg.ReadFraction,
	})
	h.ops += res.Ops
	return res
}

// ExpectedOpsPerRound is the op count a fully conserved round must
// complete (queue conservation: no operation is lost to a dropped
// wakeup or a breaker transition).
func (h *Harness) ExpectedOpsPerRound() int64 {
	return int64(h.cfg.Workers) * int64(h.cfg.OpsPerWorker)
}

// Snapshot captures the current observable state.
func (h *Harness) Snapshot() *Snapshot {
	fires := make(map[string]int64)
	for _, s := range faultinject.Sites() {
		fires[s.Name()] = s.Fires() - h.base[s.Name()]
	}
	return &Snapshot{
		Ops:           h.ops,
		Breaker:       h.Att.Breaker(),
		Retries:       h.Att.Retries(),
		Faults:        h.Att.Faults(),
		Fires:         fires,
		ParkRescues:   h.Lock.ParkRescues(),
		SafetyError:   h.Lock.SafetyError(),
		Fallbacks:     h.Tel.SafetyFallbacks.Value(),
		Reattaches:    h.Tel.Reattaches.Value(),
		BreakerCloses: h.Tel.BreakerCloses.Value(),
		Quarantines:   h.Tel.Quarantines.Value(),
	}
}

// WaitBreaker polls until the attachment's breaker reaches want or the
// deadline passes; reports whether it got there.
func (h *Harness) WaitBreaker(want core.BreakerState, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if h.Att.Breaker() == want {
			return true
		}
		time.Sleep(time.Millisecond)
	}
	return h.Att.Breaker() == want
}
