package chaos

import (
	"testing"
	"time"

	"concord/internal/core"
	"concord/internal/faultinject"
)

// TestChaosTransientHeals: a bounded burst of injected policy faults
// (MaxFires caps the burst — the transient shape) trips the breaker,
// the supervisor re-attaches after backoff, and the breaker closes
// within probation. Fault accounting is exact: attachment faults equal
// injected fires.
func TestChaosTransientHeals(t *testing.T) {
	h, err := New(Config{
		Seed: 42,
		Plan: map[string]faultinject.Config{
			"policy.helper": {MaxFires: 2},
		},
		Supervisor: core.SupervisorConfig{
			MaxRetries:     5,
			InitialBackoff: 2 * time.Millisecond,
			Probation:      20 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	// Drive load until both injected faults are delivered (the second
	// may need the re-attached policy to be live again).
	deadline := time.Now().Add(10 * time.Second)
	for h.Snapshot().TotalInjectedFaults() < 2 && time.Now().Before(deadline) {
		if res := h.RunRound(); res.Ops != h.ExpectedOpsPerRound() {
			t.Fatalf("round lost ops: %d != %d", res.Ops, h.ExpectedOpsPerRound())
		}
	}
	if !h.WaitBreaker(core.BreakerClosed, 10*time.Second) {
		t.Fatalf("breaker did not heal: %v", h.Att.Breaker())
	}

	s := h.Snapshot()
	if s.Faults != s.TotalInjectedFaults() {
		t.Errorf("fault accounting: attachment faults %d != injected %d", s.Faults, s.TotalInjectedFaults())
	}
	if s.Faults != 2 {
		t.Errorf("faults = %d, want the 2 injected", s.Faults)
	}
	if s.Quarantines != 0 {
		t.Errorf("transient faults quarantined the policy (%d)", s.Quarantines)
	}
	if s.Reattaches == 0 {
		t.Error("breaker never re-attached")
	}
	if s.BreakerCloses == 0 {
		t.Error("probation never closed the breaker")
	}
	if s.Retries != 0 {
		t.Errorf("retry budget not restored: %d", s.Retries)
	}
	if s.SafetyError != "" {
		t.Errorf("lock safety tripped: %s", s.SafetyError)
	}
}

// TestChaosPersistentQuarantines: an unbounded fault stream burns the
// retry budget; the breaker quarantines and the workload keeps making
// progress on fallback (default) behaviour.
func TestChaosPersistentQuarantines(t *testing.T) {
	h, err := New(Config{
		Seed: 7,
		Plan: map[string]faultinject.Config{
			"policy.helper": {}, // always fire, no cap: persistent
		},
		Supervisor: core.SupervisorConfig{
			MaxRetries:     2,
			InitialBackoff: time.Millisecond,
			Probation:      time.Second, // must fault out of probation, not heal
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	deadline := time.Now().Add(10 * time.Second)
	for h.Att.Breaker() != core.BreakerQuarantined && time.Now().Before(deadline) {
		if res := h.RunRound(); res.Ops != h.ExpectedOpsPerRound() {
			t.Fatalf("round lost ops: %d != %d", res.Ops, h.ExpectedOpsPerRound())
		}
	}
	s := h.Snapshot()
	if s.Breaker != core.BreakerQuarantined {
		t.Fatalf("breaker = %v, want quarantined", s.Breaker)
	}
	if s.Retries != 2 {
		t.Errorf("retries = %d, want the full budget of 2", s.Retries)
	}
	if s.Quarantines != 1 {
		t.Errorf("Quarantines = %d, want 1", s.Quarantines)
	}
	if s.Reattaches != 2 {
		t.Errorf("Reattaches = %d, want 2", s.Reattaches)
	}
	if s.Faults != s.TotalInjectedFaults() {
		t.Errorf("fault accounting: %d != %d injected", s.Faults, s.TotalInjectedFaults())
	}

	// Fallback progress: quarantined means default behaviour, not a
	// stopped system. A full round must still complete, fault-free.
	before := h.Snapshot().Faults
	if res := h.RunRound(); res.Ops != h.ExpectedOpsPerRound() {
		t.Errorf("fallback round lost ops: %d != %d", res.Ops, h.ExpectedOpsPerRound())
	}
	if after := h.Snapshot().Faults; after != before {
		t.Errorf("quarantined policy still faulting: %d -> %d", before, after)
	}
	if s.SafetyError != "" {
		t.Errorf("lock safety tripped: %s", s.SafetyError)
	}

	// Quarantine is terminal: no timer may half-open it later.
	time.Sleep(20 * time.Millisecond)
	if h.Att.Breaker() != core.BreakerQuarantined {
		t.Errorf("quarantine was not terminal: %v", h.Att.Breaker())
	}
}

// TestChaosLostWakeups: dropped and delayed parker handoffs must not
// lose operations — the park rescue watchdog restores liveness and the
// queue stays conserved.
func TestChaosLostWakeups(t *testing.T) {
	h, err := New(Config{
		Seed:     1234,
		Blocking: true,
		Workers:  8,
		Plan: map[string]faultinject.Config{
			"locks.lost_wakeup": {Probability: 0.25, MaxFires: 16},
			"locks.park_delay":  {Probability: 0.25, MaxFires: 16, Delay: 200 * time.Microsecond},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	for i := 0; i < 4; i++ {
		res := h.RunRound()
		if res.Ops != h.ExpectedOpsPerRound() {
			t.Fatalf("round %d lost ops: %d != %d", i, res.Ops, h.ExpectedOpsPerRound())
		}
	}
	s := h.Snapshot()
	if s.SafetyError != "" {
		t.Errorf("queue not conserved: %s", s.SafetyError)
	}
	if s.Fires["locks.lost_wakeup"] > 0 && s.ParkRescues == 0 {
		t.Errorf("%d wakeups dropped but no park rescues recorded", s.Fires["locks.lost_wakeup"])
	}
	if s.Faults != 0 {
		t.Errorf("parker chaos faulted the policy: %d", s.Faults)
	}
	t.Logf("dropped=%d delayed=%d rescues=%d",
		s.Fires["locks.lost_wakeup"], s.Fires["locks.park_delay"], s.ParkRescues)
}

// TestChaosSoak arms the whole policy-layer battery plus parker chaos
// at low probability and soaks; the run is seed-reproducible. Asserts
// the global invariants: no lost ops, queue conserved, and exact
// fault accounting (observed policy faults == injected error-site
// fires). Short mode keeps it to a CI-smoke-sized soak.
func TestChaosSoak(t *testing.T) {
	rounds := 12
	if testing.Short() {
		rounds = 4
	}
	h, err := New(Config{
		Seed:     0xC3C3,
		Blocking: true,
		Workers:  6,
		Plan: map[string]faultinject.Config{
			"policy.helper":     {Probability: 0.002},
			"policy.mapop":      {Probability: 0.002},
			"core.hook_panic":   {Probability: 0.001},
			"policy.latency":    {Probability: 0.001, Delay: 100 * time.Microsecond},
			"locks.lost_wakeup": {Probability: 0.05, MaxFires: 32},
			"locks.park_delay":  {Probability: 0.05, MaxFires: 32, Delay: 100 * time.Microsecond},
		},
		Supervisor: core.SupervisorConfig{
			MaxRetries:     1 << 20, // never quarantine: soak the heal loop
			InitialBackoff: time.Millisecond,
			Probation:      5 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	for i := 0; i < rounds; i++ {
		res := h.RunRound()
		if res.Ops != h.ExpectedOpsPerRound() {
			t.Fatalf("round %d lost ops: %d != %d", i, res.Ops, h.ExpectedOpsPerRound())
		}
	}
	s := h.Snapshot()
	if s.SafetyError != "" {
		t.Errorf("queue not conserved: %s", s.SafetyError)
	}
	if s.Faults != s.TotalInjectedFaults() {
		t.Errorf("fault accounting: attachment faults %d != injected %d (fires %v)",
			s.Faults, s.TotalInjectedFaults(), s.Fires)
	}
	if s.Quarantines != 0 {
		t.Errorf("soak quarantined despite unlimited retries (%d)", s.Quarantines)
	}
	t.Logf("soak: ops=%d faults=%d fires=%v rescues=%d reattaches=%d closes=%d",
		s.Ops, s.Faults, s.Fires, s.ParkRescues, s.Reattaches, s.BreakerCloses)
}

// TestChaosFlightBundle: a forced breaker trip under chaos must leave
// behind a complete, schema-valid flight bundle. MaxRetries 0 makes
// the trip deterministic — the first injected fault quarantines — so
// the run yields exactly one bundle, and that bundle must carry the
// trace ring, profiling windows and the offending policy's listing.
func TestChaosFlightBundle(t *testing.T) {
	dir := t.TempDir()
	h, err := New(Config{
		Seed:      42,
		FlightDir: dir,
		Plan: map[string]faultinject.Config{
			"policy.helper": {MaxFires: 1},
		},
		Supervisor: core.SupervisorConfig{MaxRetries: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	deadline := time.Now().Add(10 * time.Second)
	for h.Att.Breaker() != core.BreakerQuarantined && time.Now().Before(deadline) {
		if res := h.RunRound(); res.Ops != h.ExpectedOpsPerRound() {
			t.Fatalf("round lost ops: %d != %d", res.Ops, h.ExpectedOpsPerRound())
		}
	}
	if h.Att.Breaker() != core.BreakerQuarantined {
		t.Fatalf("breaker never quarantined: %v", h.Att.Breaker())
	}

	fr := h.FW.FlightRecorder()
	if fr == nil {
		t.Fatal("FlightDir set but no flight recorder enabled")
	}
	fr.Wait()
	if err := fr.Err(); err != nil {
		t.Fatalf("flight capture failed: %v", err)
	}
	files, err := core.ListFlightBundles(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 1 {
		t.Fatalf("bundles = %v, want exactly one", files)
	}
	b, err := core.ReadFlightBundle(files[0])
	if err != nil {
		t.Fatalf("bundle not schema-valid: %v", err)
	}
	if b.Schema != core.FlightBundleSchema {
		t.Errorf("schema = %q, want %q", b.Schema, core.FlightBundleSchema)
	}
	if b.Lock != "chaos_lock" || b.Policy != "chaos_pol" {
		t.Errorf("bundle attribution = %q/%q, want chaos_lock/chaos_pol", b.Lock, b.Policy)
	}
	if b.Trigger != "quarantine" {
		t.Errorf("trigger = %q, want quarantine", b.Trigger)
	}
	if !b.Quarantined {
		t.Error("bundle not marked quarantined")
	}
	if b.Error == "" {
		t.Error("bundle carries no error")
	}
	if len(b.Trace) == 0 {
		t.Error("bundle carries no trace records")
	}
	var haveWindow bool
	for _, w := range b.Windows {
		if w.Lock == "chaos_lock" && w.Acqs > 0 {
			haveWindow = true
		}
	}
	if !haveWindow {
		t.Errorf("no profiling window for chaos_lock in %v", b.Windows)
	}
	if len(b.Disasm) == 0 {
		t.Error("bundle carries no policy disassembly")
	}
	if got := b.FaultSites["policy.helper"]; got < 1 {
		t.Errorf("fault-site counter policy.helper = %d, want >= 1", got)
	}
}

// TestChaosDeterminism: two runs with the same seed inject the same
// number of faults at each site (the reproducibility contract).
func TestChaosDeterminism(t *testing.T) {
	run := func() map[string]int64 {
		h, err := New(Config{
			Seed: 99,
			Plan: map[string]faultinject.Config{
				"policy.helper": {Probability: 0.01, MaxFires: 64},
			},
			Supervisor: core.SupervisorConfig{
				MaxRetries:     1 << 20,
				InitialBackoff: time.Millisecond,
				Probation:      2 * time.Millisecond,
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		defer h.Close()
		for i := 0; i < 3; i++ {
			h.RunRound()
		}
		return h.Snapshot().Fires
	}
	a, b := run(), run()
	// Goroutine scheduling varies the number of *draws*, so exact fire
	// equality is not guaranteed — but the draw sequence is: with the
	// same seed, the k-th draw fires iff it fired in the other run. A
	// cheap observable corollary: both runs fire at least once iff the
	// probability stream allows it, and neither exceeds the cap.
	for _, m := range []map[string]int64{a, b} {
		if m["policy.helper"] > 64 {
			t.Errorf("MaxFires cap violated: %d", m["policy.helper"])
		}
	}
	t.Logf("run A fires=%d, run B fires=%d", a["policy.helper"], b["policy.helper"])
}

// TestChaosSingleSeedGovernsAllStreams pins the one-printed-seed
// contract: Config.Seed alone determines every armed site's stream.
// Ad hoc per-site Seed values in the plan are overridden with the
// derived faultinject.SiteSeed, so two runs with the same run seed but
// different (even garbage) per-site seeds draw identical fire
// patterns, and a different run seed diverges.
func TestChaosSingleSeedGovernsAllStreams(t *testing.T) {
	pattern := func(runSeed, adhocSeed uint64) []bool {
		h, err := New(Config{
			Seed: runSeed,
			Plan: map[string]faultinject.Config{
				"policy.trap": {Probability: 0.5, Seed: adhocSeed},
			},
			Supervisor: core.SupervisorConfig{
				MaxRetries:     5,
				InitialBackoff: time.Millisecond,
				Probation:      5 * time.Millisecond,
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		defer h.Close()
		if h.Seed() != runSeed {
			t.Fatalf("Seed() = %d, want %d", h.Seed(), runSeed)
		}
		// Drive the armed site's stream directly (no workload): the
		// draw sequence is the reproducibility contract.
		site, ok := faultinject.Lookup("policy.trap")
		if !ok {
			t.Fatal("policy.trap not registered")
		}
		out := make([]bool, 64)
		for i := range out {
			_, out[i] = site.Fire()
		}
		return out
	}

	base := pattern(1234, 0)
	withAdhoc := pattern(1234, 99999)
	for i := range base {
		if base[i] != withAdhoc[i] {
			t.Fatalf("ad hoc per-site seed leaked into the stream (draw %d diverged)", i)
		}
	}
	other := pattern(5678, 0)
	same := true
	for i := range base {
		if base[i] != other[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different run seeds drew identical 64-draw fire patterns")
	}
}
