// Package faultinject is Concord's deterministic fault-injection plane:
// a registry of named injection sites threaded through every layer of
// the reproduction (policy VM, livepatch, locks, core framework). The
// motivation is the paper's §4.2 safety story — a bad policy must never
// take the system down — which is only credible if the failure paths
// are exercised deliberately. The same direction appears in eBPF-based
// kernel concurrency testing (inject faults/schedules to surface lock
// bugs) and in the eBPF runtime's own survival strategy (isolate and
// unload misbehaving programs rather than crash).
//
// Design constraints:
//
//   - Disabled sites must be invisible on the hot path. Site.Enabled is
//     a single atomic pointer load compiled into the caller as a
//     nil-check; a disarmed site performs no other work. The F2c ≤20%
//     instrumentation-overhead bar budgeted in PR 1 is untouched.
//   - Determinism. Every armed site draws from its own splitmix64
//     stream seeded from Plan.Seed and the site name, so a chaos run is
//     reproducible from one integer, independent of goroutine
//     interleaving of *other* sites.
//   - Exact accounting. Each fire is counted; the chaos harness asserts
//     that observed policy faults equal injected ones.
//
// The package is a leaf: it imports only the standard library, so every
// layer (including internal/livepatch at the bottom of the graph) can
// use it without cycles.
package faultinject

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjected is the default error delivered by error-class sites.
var ErrInjected = errors.New("faultinject: injected fault")

// Fault is one delivered fault: an error to surface, a delay to impose,
// or both. Sites interpret the fields they understand (a latency site
// uses Delay and ignores Err; an error site the reverse).
type Fault struct {
	Err   error
	Delay time.Duration
}

// Config arms a site.
type Config struct {
	// Probability in [0,1] of firing per Fire call; values <= 0 or >= 1
	// mean "always fire".
	Probability float64
	// MaxFires caps delivered faults (0 = unlimited). After the cap the
	// site stays armed but inert — the "transient fault" shape.
	MaxFires int64
	// Delay imposed per delivered fault (latency/stall sites).
	Delay time.Duration
	// Err delivered per fault; nil defaults to ErrInjected.
	Err error
	// Seed for the site's private random stream; 0 derives one from the
	// site name (still deterministic, just not caller-chosen).
	Seed uint64
}

// armed is the active state of an armed site; swapped in/out atomically
// so a disarmed site is exactly one nil-check.
type armed struct {
	cfg Config

	mu    sync.Mutex // guards rng (Fire is the cold path by definition)
	rng   uint64
	fired int64
}

// Site is one named injection point. The zero value is unusable; sites
// are created with New (package-level vars below for Concord's fixed
// sites) and live for the process lifetime.
type Site struct {
	name  string
	state atomic.Pointer[armed]
	fires atomic.Int64
}

// Name returns the site's registry name.
func (s *Site) Name() string { return s.name }

// Enabled reports whether the site is armed. This is the hot-path
// guard: one atomic load, no branches beyond the nil-check.
func (s *Site) Enabled() bool { return s.state.Load() != nil }

// Fires reports how many faults this site has delivered since process
// start (not reset by Disarm — the chaos harness diffs snapshots).
func (s *Site) Fires() int64 { return s.fires.Load() }

// Arm activates the site with cfg. Re-arming replaces the previous
// configuration and restarts the site's random stream.
func (s *Site) Arm(cfg Config) {
	if cfg.Err == nil {
		cfg.Err = ErrInjected
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = hashName(s.name)
	}
	s.state.Store(&armed{cfg: cfg, rng: seed})
}

// Disarm deactivates the site.
func (s *Site) Disarm() { s.state.Store(nil) }

// Fire asks an armed site for a fault. It returns (fault, true) when
// one should be delivered. Callers must gate on Enabled first; calling
// Fire on a disarmed site returns (Fault{}, false).
func (s *Site) Fire() (Fault, bool) {
	a := s.state.Load()
	if a == nil {
		return Fault{}, false
	}
	a.mu.Lock()
	if a.cfg.MaxFires > 0 && a.fired >= a.cfg.MaxFires {
		a.mu.Unlock()
		return Fault{}, false
	}
	if p := a.cfg.Probability; p > 0 && p < 1 {
		// 53-bit uniform draw from the site's private stream.
		u := float64(splitmix64(&a.rng)>>11) / (1 << 53)
		if u >= p {
			a.mu.Unlock()
			return Fault{}, false
		}
	}
	a.fired++
	f := Fault{Err: a.cfg.Err, Delay: a.cfg.Delay}
	a.mu.Unlock()
	s.fires.Add(1)
	return f, true
}

// splitmix64 advances *state and returns the next value of the stream.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// hashName is FNV-1a, used to derive per-site default seeds.
func hashName(name string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	if h == 0 {
		h = 1
	}
	return h
}

// --- Registry ---

var (
	regMu sync.Mutex
	reg   = make(map[string]*Site)
)

// New creates and registers a site. Registering a duplicate name
// panics: site names are compile-time identifiers, not runtime data.
func New(name string) *Site {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := reg[name]; dup {
		panic(fmt.Sprintf("faultinject: duplicate site %q", name))
	}
	s := &Site{name: name}
	reg[name] = s
	return s
}

// Lookup returns the site with the given name, if registered.
func Lookup(name string) (*Site, bool) {
	regMu.Lock()
	defer regMu.Unlock()
	s, ok := reg[name]
	return s, ok
}

// Sites returns every registered site, sorted by name.
func Sites() []*Site {
	regMu.Lock()
	out := make([]*Site, 0, len(reg))
	for _, s := range reg {
		out = append(out, s)
	}
	regMu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// DisarmAll disarms every registered site (test cleanup).
func DisarmAll() {
	for _, s := range Sites() {
		s.Disarm()
	}
}

// Plan arms a set of sites from one seed — the unit of a reproducible
// chaos run. Each site gets a private stream derived from Seed and its
// name, so arming more sites never perturbs existing ones.
type Plan struct {
	Seed  uint64
	Sites map[string]Config
}

// Apply arms every named site. Unknown site names are an error (a typo
// in a chaos config must not silently inject nothing).
func (p Plan) Apply() error {
	for name, cfg := range p.Sites {
		s, ok := Lookup(name)
		if !ok {
			return fmt.Errorf("faultinject: unknown site %q", name)
		}
		if cfg.Seed == 0 {
			cfg.Seed = SiteSeed(p.Seed, name)
		}
		s.Arm(cfg)
	}
	return nil
}

// SiteSeed derives the per-site stream seed a Plan with the given run
// seed gives to site name. Exported so harnesses that need one printed
// integer to reproduce a run (chaos, schedfuzz) can pin — and record —
// the exact streams the Plan machinery arms.
func SiteSeed(runSeed uint64, name string) uint64 {
	seed := runSeed ^ hashName(name)
	if seed == 0 {
		seed = 1
	}
	return seed
}

// --- Concord's fixed injection sites ---
//
// Naming: layer.site. These are package-level so call sites compile to
// a direct load of a global plus the nil-check.
var (
	// PolicyHelper fails policy VM helper calls (execHelper entry).
	PolicyHelper = New("policy.helper")
	// PolicyMapOp fails map-op helpers specifically (lookup/update/
	// delete/add), leaving scalar helpers alone.
	PolicyMapOp = New("policy.mapop")
	// PolicyTrap forces a trap at program entry (interpreter path).
	PolicyTrap = New("policy.trap")
	// PolicyLatency stretches hook execution in the core adapter — the
	// target of the supervisor's latency watchdog.
	PolicyLatency = New("policy.latency")
	// LivepatchDrain stalls the epoch drain of a replaced hook-table
	// version by Delay (holds a phantom reader pin).
	LivepatchDrain = New("livepatch.drain")
	// LivepatchAbort aborts a policy attach before installation.
	LivepatchAbort = New("livepatch.abort")
	// LockParkDelay delays a parker handoff (unpark) by Delay.
	LockParkDelay = New("locks.park_delay")
	// LockLostWakeup drops a parker wakeup entirely; the park rescue
	// watchdog must recover liveness.
	LockLostWakeup = New("locks.lost_wakeup")
	// CoreHookPanic panics inside a policy hook invocation; the adapter
	// must contain it and convert it to a policy fault.
	CoreHookPanic = New("core.hook_panic")
)
