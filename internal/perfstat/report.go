package perfstat

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
)

// WriteBaseline writes b as indented JSON to path.
func WriteBaseline(path string, b *Baseline) error {
	b.Schema = Schema
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadBaseline loads a BENCH_*.json baseline from path.
func ReadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if b.Schema != Schema {
		return nil, fmt.Errorf("%s: schema %q, want %q", path, b.Schema, Schema)
	}
	return &b, nil
}

// fmtAllocs renders an allocs/op value (-1 means not measured).
func fmtAllocs(v float64) string {
	if v < 0 {
		return "-"
	}
	return fmt.Sprintf("%.2f", v)
}

// FormatResults renders the benchstat-style pass/fail delta table.
func FormatResults(w io.Writer, results []CellResult) error {
	if _, err := fmt.Fprintf(w, "%-14s %-12s %4s %14s %14s %9s %8s %8s  %s\n",
		"lock", "workload", "thr", "old ops/ms", "new ops/ms", "delta",
		"allocs", "→allocs", "verdict"); err != nil {
		return err
	}
	for _, r := range results {
		c := r.Cell
		oldMean, oldAllc := "-", "-"
		delta := "-"
		if r.Old != nil {
			oldMean = fmt.Sprintf("%.1f±%.1f", r.Old.Mean, r.Old.CI95())
			oldAllc = fmtAllocs(r.OldAllc)
			if !math.IsInf(r.Delta.Pct, 0) {
				delta = fmt.Sprintf("%+.1f%%", r.Delta.Pct)
				if !r.Delta.Significant {
					delta += "~" // statistically indistinguishable
				}
			}
		}
		newMean, newAllc := fmt.Sprintf("%.1f±%.1f", c.OpsPerMSec.Mean, c.OpsPerMSec.CI95()),
			fmtAllocs(c.AllocsPerOp)
		if r.Verdict == "MISSING" {
			// r.Cell carries the old measurement; there is no new one.
			newMean, newAllc, delta = "-", "-", "-"
		}
		if _, err := fmt.Fprintf(w, "%-14s %-12s %4d %14s %14s %9s %8s %8s  %s\n",
			c.Lock, c.Workload, c.Threads,
			oldMean, newMean,
			delta, oldAllc, newAllc, r.Verdict); err != nil {
			return err
		}
	}
	return nil
}
