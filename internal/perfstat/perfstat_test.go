package perfstat

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeFile(path, data string) error { return os.WriteFile(path, []byte(data), 0o644) }

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || s.Mean != 5 || s.Min != 2 || s.Max != 9 {
		t.Fatalf("bad summary: %+v", s)
	}
	// Sample stddev of this classic set is sqrt(32/7).
	if want := math.Sqrt(32.0 / 7.0); math.Abs(s.Stddev-want) > 1e-12 {
		t.Fatalf("stddev = %v, want %v", s.Stddev, want)
	}
	if s.CI95() <= 0 {
		t.Fatal("CI95 must be positive for varying samples")
	}
	if z := Summarize(nil); z.N != 0 || z.Mean != 0 {
		t.Fatalf("empty summary not zero: %+v", z)
	}
}

func TestCompareDistinguishesSeparatedSamples(t *testing.T) {
	old := Summarize([]float64{100, 101, 99, 100, 100})
	new_ := Summarize([]float64{110, 111, 109, 110, 110})
	d := Compare(old, new_)
	if !d.Significant {
		t.Fatal("clearly separated samples judged insignificant")
	}
	if d.Pct < 9 || d.Pct > 11 {
		t.Fatalf("delta = %v%%, want ~10%%", d.Pct)
	}
}

func TestCompareOverlappingSamplesInsignificant(t *testing.T) {
	old := Summarize([]float64{100, 120, 90, 110, 95})
	new_ := Summarize([]float64{105, 95, 115, 100, 108})
	if d := Compare(old, new_); d.Significant {
		t.Fatalf("overlapping samples judged significant: %+v", d)
	}
}

func TestCompareDeterministicCells(t *testing.T) {
	// ksim cells have zero variance: equality passes, any change flags.
	same := Summarize([]float64{42, 42})
	if d := Compare(same, same); d.Significant {
		t.Fatal("identical deterministic values judged significant")
	}
	if d := Compare(same, Summarize([]float64{43, 43})); !d.Significant {
		t.Fatal("changed deterministic value judged insignificant")
	}
}

func TestMeasure(t *testing.T) {
	calls := 0
	s := Measure(3, true, func() float64 { calls++; return float64(calls) })
	if calls != 4 {
		t.Fatalf("fn called %d times, want 4 (1 warmup + 3)", calls)
	}
	if s.N != 3 || s.Min != 2 || s.Max != 4 {
		t.Fatalf("warmup sample leaked into summary: %+v", s)
	}
}

func testBaseline(allocs float64, mean ...float64) *Baseline {
	return &Baseline{
		Runs: len(mean),
		Cells: []Cell{{
			Lock: "mcs", Workload: "lock2", Threads: 8,
			OpsPerMSec:  Summarize(mean),
			AllocsPerOp: allocs,
		}},
	}
}

func TestCompareBaselinesGates(t *testing.T) {
	old := testBaseline(1.0, 100, 101, 99, 100, 100)

	// Faster and alloc-free: passes, reported as faster.
	res := CompareBaselines(old, testBaseline(0, 130, 131, 129, 130, 130), 5)
	if len(res) != 1 || res[0].Regressed() || res[0].Verdict != "faster" {
		t.Fatalf("improvement misjudged: %+v", res)
	}

	// Significantly slower beyond slack: fails.
	res = CompareBaselines(old, testBaseline(0, 80, 81, 79, 80, 80), 5)
	if !res[0].Regressed() || res[0].Verdict != "SLOWER" {
		t.Fatalf("regression not flagged: %+v", res)
	}
	if !AnyRegression(res) {
		t.Fatal("AnyRegression missed the failure")
	}

	// Slower but within slack: passes.
	res = CompareBaselines(old, testBaseline(1.0, 97, 98, 96, 97, 97), 5)
	if res[0].Regressed() {
		t.Fatalf("within-slack delta failed the gate: %+v", res)
	}

	// Alloc growth fails even at equal throughput.
	res = CompareBaselines(old, testBaseline(2.0, 100, 101, 99, 100, 100), 5)
	if res[0].Verdict != "ALLOCS" {
		t.Fatalf("alloc growth not flagged: %+v", res)
	}

	// Unknown cell in the new run: reported, passes.
	newb := testBaseline(0, 100, 100)
	newb.Cells[0].Lock = "brand-new"
	res = CompareBaselines(old, newb, 5)
	if res[0].Verdict != "new" || res[0].Regressed() {
		t.Fatalf("new cell misjudged: %+v", res)
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_x.json")
	b := testBaseline(0.5, 10, 11, 12)
	b.Label = "trip"
	b.Pooling = true
	if err := WriteBaseline(path, b); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Label != "trip" || !got.Pooling || len(got.Cells) != 1 {
		t.Fatalf("round trip lost data: %+v", got)
	}
	if got.Cells[0].OpsPerMSec.Mean != 11 {
		t.Fatalf("cell mean = %v, want 11", got.Cells[0].OpsPerMSec.Mean)
	}
}

func TestReadBaselineRejectsWrongSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_bad.json")
	b := testBaseline(0, 1)
	if err := WriteBaseline(path, b); err != nil {
		t.Fatal(err)
	}
	// Corrupt the schema marker on disk.
	data := `{"schema":"something-else/9","cells":[]}`
	if err := writeFile(path, data); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadBaseline(path); err == nil {
		t.Fatal("wrong schema accepted")
	}
}

func TestFormatResults(t *testing.T) {
	old := testBaseline(1.0, 100, 101, 99)
	res := CompareBaselines(old, testBaseline(0, 120, 121, 119), 5)
	var sb strings.Builder
	if err := FormatResults(&sb, res); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"mcs", "lock2", "faster", "ops/ms"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
}

func TestCompareBaselinesMissingCells(t *testing.T) {
	old := testBaseline(1.0, 100, 101, 99)
	newb := testBaseline(0, 100, 100)
	newb.Cells[0].Lock = "renamed"
	res := CompareBaselines(old, newb, 5)
	if len(res) != 2 {
		t.Fatalf("want MISSING + new, got %+v", res)
	}
	// Sorted by key: "mcs/..." precedes "renamed/...".
	missing := res[0]
	if missing.Verdict != "MISSING" || missing.Cell.Lock != "mcs" {
		t.Fatalf("vanished cell not flagged: %+v", missing)
	}
	// The old measurement rides along for the delta table...
	if missing.Old == nil || missing.Old.Mean != 100 {
		t.Fatalf("MISSING row lost the old summary: %+v", missing)
	}
	// ...but a vanished cell is not a regression by itself — only the
	// opt-in gate fails on it.
	if missing.Regressed() || AnyRegression(res) {
		t.Fatalf("MISSING treated as regression: %+v", res)
	}
	if !AnyMissing(res) {
		t.Fatal("AnyMissing missed the vanished cell")
	}
	if AnyMissing(CompareBaselines(old, old, 5)) {
		t.Fatal("AnyMissing fired on identical matrices")
	}

	var sb strings.Builder
	if err := FormatResults(&sb, res); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "MISSING") {
		t.Fatalf("table does not render MISSING:\n%s", sb.String())
	}
}
