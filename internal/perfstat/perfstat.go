// Package perfstat is the statistics core of the benchmark regression
// harness (benchstat's method, sized for this repo): repeated-run
// summaries (mean, sample stddev, 95% CI) and Welch's two-sample t-test
// to decide whether two summaries differ significantly. cmd/lockbench
// builds lock × workload × threads matrices of these summaries, writes
// them as BENCH_*.json baselines, and gates CI on the comparison.
package perfstat

import (
	"fmt"
	"math"
	"sort"
)

// Summary condenses repeated measurements of one quantity.
type Summary struct {
	N      int     `json:"n"`
	Mean   float64 `json:"mean"`
	Stddev float64 `json:"stddev"` // sample (n-1) standard deviation
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
}

// Summarize reduces samples to a Summary. Empty input yields a zero
// Summary.
func Summarize(samples []float64) Summary {
	s := Summary{N: len(samples)}
	if s.N == 0 {
		return s
	}
	s.Min, s.Max = samples[0], samples[0]
	var sum float64
	for _, v := range samples {
		sum += v
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
	}
	s.Mean = sum / float64(s.N)
	if s.N > 1 {
		var sq float64
		for _, v := range samples {
			d := v - s.Mean
			sq += d * d
		}
		s.Stddev = math.Sqrt(sq / float64(s.N-1))
	}
	return s
}

// CI95 returns the half-width of the mean's 95% confidence interval
// (0 for fewer than two samples).
func (s Summary) CI95() float64 {
	if s.N < 2 {
		return 0
	}
	return tCrit(s.N-1) * s.Stddev / math.Sqrt(float64(s.N))
}

// tCrit returns the two-tailed 5% critical value of Student's t for the
// given degrees of freedom — the lookup benchstat performs. Fractional
// df (from Welch–Satterthwaite) round down, the conservative direction.
func tCrit(df int) float64 {
	table := []struct {
		df int
		t  float64
	}{
		{1, 12.706}, {2, 4.303}, {3, 3.182}, {4, 2.776}, {5, 2.571},
		{6, 2.447}, {7, 2.365}, {8, 2.306}, {9, 2.262}, {10, 2.228},
		{12, 2.179}, {15, 2.131}, {20, 2.086}, {30, 2.042},
	}
	if df < 1 {
		df = 1
	}
	crit := 1.960 // asymptote
	for i := len(table) - 1; i >= 0; i-- {
		if df <= table[i].df {
			crit = table[i].t
		}
	}
	return crit
}

// Delta is the outcome of comparing a new Summary against an old one.
type Delta struct {
	// Pct is the relative change of the mean, in percent (positive =
	// new mean is larger).
	Pct float64
	// Significant reports whether Welch's t-test rejects equal means at
	// the 5% level. With fewer than two samples per side the test
	// degenerates to an exact comparison of the (then deterministic)
	// values.
	Significant bool
}

// relEps is the relative tolerance below which two deterministic values
// count as equal (floating-point noise, not a change).
const relEps = 1e-9

// Compare runs Welch's unequal-variance t-test of new against old.
func Compare(old, new Summary) Delta {
	var d Delta
	if old.Mean != 0 {
		d.Pct = (new.Mean - old.Mean) / math.Abs(old.Mean) * 100
	} else if new.Mean != 0 {
		d.Pct = math.Inf(1)
	}
	// Degenerate cases: deterministic sources (the ksim cells) or
	// single-run smoke baselines have zero variance; equal means pass,
	// different means are a real change by construction.
	va, vb := old.Stddev*old.Stddev, new.Stddev*new.Stddev
	if old.N < 2 || new.N < 2 || (va == 0 && vb == 0) {
		diff := math.Abs(new.Mean - old.Mean)
		scale := math.Max(math.Abs(old.Mean), math.Abs(new.Mean))
		d.Significant = diff > relEps*scale && diff != 0
		return d
	}
	// Welch statistic and Welch–Satterthwaite degrees of freedom.
	sa, sb := va/float64(old.N), vb/float64(new.N)
	se := math.Sqrt(sa + sb)
	if se == 0 {
		d.Significant = math.Abs(new.Mean-old.Mean) > relEps*math.Abs(old.Mean)
		return d
	}
	t := math.Abs(new.Mean-old.Mean) / se
	df := (sa + sb) * (sa + sb) /
		(sa*sa/float64(old.N-1) + sb*sb/float64(new.N-1))
	d.Significant = t > tCrit(int(df))
	return d
}

// --- Repeated-run measurement ---

// Measure runs fn runs times and summarizes the returned values. The
// first call's value can be discarded as warmup by passing warmup=true
// (it still runs, it just doesn't count).
func Measure(runs int, warmup bool, fn func() float64) Summary {
	if runs < 1 {
		runs = 1
	}
	if warmup {
		fn()
	}
	samples := make([]float64, 0, runs)
	for i := 0; i < runs; i++ {
		samples = append(samples, fn())
	}
	return Summarize(samples)
}

// --- Baseline schema ---

// Schema identifies the BENCH_*.json layout this package writes.
const Schema = "concord-perfstat/1"

// Cell is one lock × workload × threads measurement.
type Cell struct {
	Lock     string `json:"lock"`
	Workload string `json:"workload"`
	Threads  int    `json:"threads"`
	// OpsPerMSec summarizes throughput over the repeated runs.
	OpsPerMSec Summary `json:"ops_per_msec"`
	// AllocsPerOp is the measured heap allocations per contended
	// acquire/release pair (real-lock cells; -1 when not measured).
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// Key identifies the cell within a baseline.
func (c Cell) Key() string {
	return fmt.Sprintf("%s/%s/%d", c.Lock, c.Workload, c.Threads)
}

// Baseline is one BENCH_*.json artifact: a matrix of cells plus the
// knobs that shaped it.
type Baseline struct {
	Schema  string `json:"schema"`
	Label   string `json:"label"`
	Pooling bool   `json:"pooling"`
	Runs    int    `json:"runs"`
	Cells   []Cell `json:"cells"`
}

// Index returns the baseline's cells keyed by Cell.Key.
func (b *Baseline) Index() map[string]Cell {
	m := make(map[string]Cell, len(b.Cells))
	for _, c := range b.Cells {
		m[c.Key()] = c
	}
	return m
}

// --- Regression comparison ---

// allocsEps absorbs measurement noise in allocs/op (a stray GC
// assist or pool miss during the probe window).
const allocsEps = 0.05

// CellResult is the verdict for one cell of a regression comparison.
type CellResult struct {
	Cell    Cell // the new measurement
	Old     *Summary
	OldAllc float64
	Delta   Delta
	Verdict string // "ok", "faster", "SLOWER", "ALLOCS", "new", "MISSING"
}

// Regressed reports whether this cell fails the throughput/allocs gate.
// A MISSING cell is not a regression by itself (renamed matrices would
// deadlock CI otherwise); callers that want a fixed matrix fail on
// AnyMissing separately (lockbench -require-cells).
func (r CellResult) Regressed() bool {
	return r.Verdict == "SLOWER" || r.Verdict == "ALLOCS"
}

// CompareBaselines judges every cell of new against old. A cell fails
// ("SLOWER") when its throughput dropped significantly by more than
// slackPct percent — the slack absorbs environment drift benchstat
// can't, since CI baselines come from other machines. It fails
// ("ALLOCS") when allocs/op grew beyond noise. Cells absent from the
// old baseline are reported as "new" and pass. Cells present in old but
// absent from new are reported as "MISSING" — previously they were
// silently dropped, so a baseline cell disappearing (a bench matrix
// edit, a cell that stopped running) looked like a clean pass.
func CompareBaselines(old, new *Baseline, slackPct float64) []CellResult {
	oldIdx := old.Index()
	newIdx := new.Index()
	out := make([]CellResult, 0, len(new.Cells))
	for _, o := range old.Cells {
		if _, ok := newIdx[o.Key()]; ok {
			continue
		}
		os := o.OpsPerMSec
		out = append(out, CellResult{Cell: o, Old: &os, OldAllc: o.AllocsPerOp,
			Verdict: "MISSING"})
	}
	for _, c := range new.Cells {
		r := CellResult{Cell: c, Verdict: "ok"}
		o, seen := oldIdx[c.Key()]
		if !seen {
			r.Verdict = "new"
			out = append(out, r)
			continue
		}
		os := o.OpsPerMSec
		r.Old = &os
		r.OldAllc = o.AllocsPerOp
		r.Delta = Compare(os, c.OpsPerMSec)
		switch {
		case c.AllocsPerOp >= 0 && o.AllocsPerOp >= 0 &&
			c.AllocsPerOp > o.AllocsPerOp+allocsEps:
			r.Verdict = "ALLOCS"
		case r.Delta.Significant && r.Delta.Pct < -slackPct:
			r.Verdict = "SLOWER"
		case r.Delta.Significant && r.Delta.Pct > slackPct:
			r.Verdict = "faster"
		}
		out = append(out, r)
	}
	sort.SliceStable(out, func(i, j int) bool {
		return out[i].Cell.Key() < out[j].Cell.Key()
	})
	return out
}

// AnyRegression reports whether any cell failed the gate.
func AnyRegression(results []CellResult) bool {
	for _, r := range results {
		if r.Regressed() {
			return true
		}
	}
	return false
}

// AnyMissing reports whether any baseline cell disappeared from the new
// measurement (the -require-cells gate).
func AnyMissing(results []CellResult) bool {
	for _, r := range results {
		if r.Verdict == "MISSING" {
			return true
		}
	}
	return false
}
