package ksim

// Closed-loop workload driver: each simulated thread repeatedly thinks
// (non-critical work on its own CPU), acquires the lock, spends the
// critical section, and releases — the structure of every will-it-scale
// microbenchmark the paper evaluates with (§5).

// Workload describes one closed-loop benchmark.
type Workload struct {
	Name string
	// ThinkNS is the non-critical work per iteration.
	ThinkNS int64
	// CSNS is the critical-section length.
	CSNS int64
	// ReadFraction is the probability an iteration takes the lock
	// shared (1 = read-only, 0 = write-only).
	ReadFraction float64
	// JitterPct adds ±JitterPct% deterministic jitter to think and CS
	// times so queues do not lock-step.
	JitterPct int
}

// Result aggregates one run.
type Result struct {
	Ops        int64
	PerProc    []int64
	DurationNS int64
}

// OpsPerMSec returns total throughput in operations per millisecond —
// the y-axis unit of Figure 2(a) and (b).
func (r Result) OpsPerMSec() float64 {
	if r.DurationNS == 0 {
		return 0
	}
	return float64(r.Ops) / (float64(r.DurationNS) / 1e6)
}

// MinMaxOps reports the least and most operations completed by any one
// thread — the fairness/starvation signal used by the ablations.
func (r Result) MinMaxOps() (min, max int64) {
	if len(r.PerProc) == 0 {
		return 0, 0
	}
	min, max = r.PerProc[0], r.PerProc[0]
	for _, v := range r.PerProc[1:] {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	return min, max
}

// jitter returns v with ±pct% deterministic noise.
func jitter(e *Engine, v int64, pct int) int64 {
	if pct <= 0 || v == 0 {
		return v
	}
	span := v * int64(pct) / 100
	return v - span + int64(e.Rand()%uint64(2*span+1))
}

// RunClosedLoop drives procs through the workload against lock for
// durationNS of virtual time.
func RunClosedLoop(e *Engine, lock SimLock, procs []*Proc, w Workload, durationNS int64) Result {
	res := Result{PerProc: make([]int64, len(procs)), DurationNS: durationNS}
	end := e.Now() + durationNS

	for i, p := range procs {
		i, p := i, p
		var loop func()
		loop = func() {
			if e.Now() >= end {
				return
			}
			think := jitter(e, w.ThinkNS, w.JitterPct)
			e.Schedule(think, func() {
				reader := w.ReadFraction > 0 &&
					(w.ReadFraction >= 1 || float64(e.Rand()%1000)/1000 < w.ReadFraction)
				reqAt := e.Now()
				lock.Acquire(p, reader, func() {
					grantAt := e.Now()
					if grantAt > reqAt {
						e.addSlice(SimSlice{
							Name: "wait " + lock.Name(), Proc: p.ID, CPU: p.CPU,
							StartNS: reqAt, DurNS: grantAt - reqAt,
						})
					}
					cs := jitter(e, w.CSNS, w.JitterPct)
					e.Schedule(cs, func() {
						lock.Release(p, reader)
						e.addSlice(SimSlice{
							Name: "hold " + lock.Name(), Proc: p.ID, CPU: p.CPU,
							StartNS: grantAt, DurNS: e.Now() - grantAt,
						})
						res.Ops++
						res.PerProc[i]++
						loop()
					})
				})
			})
		}
		loop()
	}
	e.Run(end)
	return res
}
