package ksim

import (
	"testing"
	"testing/quick"

	"concord/internal/topology"
)

func testEngine() *Engine { return NewEngine(topology.Paper(), 42) }

func TestEngineOrdering(t *testing.T) {
	e := testEngine()
	var got []int
	e.Schedule(30, func() { got = append(got, 3) })
	e.Schedule(10, func() { got = append(got, 1) })
	e.Schedule(20, func() { got = append(got, 2) })
	e.Schedule(10, func() { got = append(got, 11) }) // same time: schedule order
	e.Run(100)
	want := []int{1, 11, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	if e.Now() != 100 {
		t.Errorf("Now = %d, want 100", e.Now())
	}
}

func TestEngineRunStopsAtDeadline(t *testing.T) {
	e := testEngine()
	fired := false
	e.Schedule(200, func() { fired = true })
	e.Run(100)
	if fired {
		t.Error("event beyond deadline fired")
	}
	if e.Pending() != 1 {
		t.Errorf("Pending = %d", e.Pending())
	}
	e.Run(300)
	if !fired {
		t.Error("event never fired")
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := testEngine()
	depth := 0
	var rec func()
	rec = func() {
		depth++
		if depth < 10 {
			e.Schedule(5, rec)
		}
	}
	e.Schedule(0, rec)
	e.Run(1000)
	if depth != 10 {
		t.Errorf("depth = %d, want 10", depth)
	}
}

func TestEngineDeterminism(t *testing.T) {
	run := func() (int64, float64) {
		e := testEngine()
		lock := NewSimShfl(e, DefaultCosts(), func(s, c *Proc) bool { return s.Socket == c.Socket }, 0)
		procs := e.NewProcs(40)
		res := RunClosedLoop(e, lock, procs, Workload{ThinkNS: 500, CSNS: 300, JitterPct: 20}, 5_000_000)
		return res.Ops, res.OpsPerMSec()
	}
	ops1, tp1 := run()
	ops2, tp2 := run()
	if ops1 != ops2 || tp1 != tp2 {
		t.Errorf("non-deterministic: %d/%f vs %d/%f", ops1, tp1, ops2, tp2)
	}
	if ops1 == 0 {
		t.Error("no ops completed")
	}
}

func TestCostModelTransfer(t *testing.T) {
	topo := topology.Paper()
	c := DefaultCosts()
	if got := c.Transfer(topo, 3, 3); got != c.AtomicNS {
		t.Errorf("same core: %d", got)
	}
	if got := c.Transfer(topo, 0, 5); got != c.LocalTransferNS {
		t.Errorf("same socket: %d", got)
	}
	if got := c.Transfer(topo, 0, 15); got != c.RemoteTransferNS {
		t.Errorf("remote: %d", got)
	}
}

// completionInvariant: every lock must complete the same total work
// regardless of policy — conservation of operations in a closed loop.
func TestLockCompletionInvariant(t *testing.T) {
	mk := map[string]func(e *Engine) SimLock{
		"tas":   func(e *Engine) SimLock { return NewSimTAS(e, DefaultCosts()) },
		"qspin": func(e *Engine) SimLock { return NewSimQspin(e, DefaultCosts()) },
		"shfl": func(e *Engine) SimLock {
			return NewSimShfl(e, DefaultCosts(), func(s, c *Proc) bool { return s.Socket == c.Socket }, 0)
		},
		"rwsem":     func(e *Engine) SimLock { return NewSimRWSem(e, DefaultCosts()) },
		"bravo":     func(e *Engine) SimLock { return NewSimBRAVO(e, DefaultCosts(), 0) },
		"persocket": func(e *Engine) SimLock { return NewSimPerSocket(e, DefaultCosts()) },
	}
	for name, ctor := range mk {
		t.Run(name, func(t *testing.T) {
			e := testEngine()
			lock := ctor(e)
			procs := e.NewProcs(16)
			res := RunClosedLoop(e, lock, procs, Workload{
				ThinkNS: 400, CSNS: 200, ReadFraction: 0.5, JitterPct: 10,
			}, 3_000_000)
			if res.Ops == 0 {
				t.Fatal("no operations completed")
			}
			var sum int64
			for _, v := range res.PerProc {
				sum += v
			}
			if sum != res.Ops {
				t.Errorf("per-proc sum %d != total %d", sum, res.Ops)
			}
			min, _ := res.MinMaxOps()
			if min == 0 {
				t.Errorf("%s starved a thread completely", name)
			}
		})
	}
}

func TestRWSemCollapsesUnderReaders(t *testing.T) {
	// The stock rwsem's reader throughput must NOT scale with thread
	// count (central counter line), while BRAVO's must. This is the
	// shape of Figure 2(a).
	read := Workload{ThinkNS: 2000, CSNS: 600, ReadFraction: 1}
	tp := func(mk func(e *Engine) SimLock, threads int) float64 {
		e := testEngine()
		res := RunClosedLoop(e, mk(e), e.NewProcs(threads), read, 10_000_000)
		return res.OpsPerMSec()
	}
	rwsem := func(e *Engine) SimLock { return NewSimRWSem(e, DefaultCosts()) }
	bravo := func(e *Engine) SimLock { return NewSimBRAVO(e, DefaultCosts(), 0) }

	r10, r80 := tp(rwsem, 10), tp(rwsem, 80)
	b10, b80 := tp(bravo, 10), tp(bravo, 80)
	if r80 > r10*2 {
		t.Errorf("rwsem scaled %0.f -> %0.f ops/ms; expected collapse", r10, r80)
	}
	if b80 < b10*4 {
		t.Errorf("BRAVO did not scale: %0.f -> %0.f ops/ms", b10, b80)
	}
	if b80 < r80*3 {
		t.Errorf("BRAVO (%0.f) not clearly above rwsem (%0.f) at 80 threads", b80, r80)
	}
}

func TestShflLockBeatsQspinAcrossSockets(t *testing.T) {
	// Write-heavy lock2 shape (Figure 2(b)): NUMA shuffling keeps most
	// handoffs local, stock qspinlock pays remote transfers.
	w := Workload{ThinkNS: 300, CSNS: 250, JitterPct: 10}
	tp := func(mk func(e *Engine) SimLock) float64 {
		e := testEngine()
		res := RunClosedLoop(e, mk(e), e.NewProcs(80), w, 10_000_000)
		return res.OpsPerMSec()
	}
	qspin := tp(func(e *Engine) SimLock { return NewSimQspin(e, DefaultCosts()) })
	shfl := tp(func(e *Engine) SimLock {
		return NewSimShfl(e, DefaultCosts(), func(s, c *Proc) bool { return s.Socket == c.Socket }, 0)
	})
	if shfl < qspin*1.5 {
		t.Errorf("ShflLock %.0f not clearly above qspinlock %.0f ops/ms", shfl, qspin)
	}
}

func TestShflShuffleActuallyMoves(t *testing.T) {
	e := testEngine()
	l := NewSimShfl(e, DefaultCosts(), func(s, c *Proc) bool { return s.Socket == c.Socket }, 0)
	res := RunClosedLoop(e, l, e.NewProcs(80), Workload{ThinkNS: 100, CSNS: 300}, 5_000_000)
	if res.Ops == 0 || l.Moves == 0 {
		t.Errorf("ops=%d moves=%d", res.Ops, l.Moves)
	}
}

func TestBRAVOFastPathDominatesReadOnly(t *testing.T) {
	e := testEngine()
	l := NewSimBRAVO(e, DefaultCosts(), 0)
	RunClosedLoop(e, l, e.NewProcs(40), Workload{ThinkNS: 1000, CSNS: 500, ReadFraction: 1}, 5_000_000)
	if l.FastReads == 0 {
		t.Fatal("no fast reads")
	}
	if l.SlowReads > l.FastReads/10 {
		t.Errorf("slow reads %d vs fast %d; bias not effective", l.SlowReads, l.FastReads)
	}
}

func TestBRAVOWriterRevokes(t *testing.T) {
	e := testEngine()
	l := NewSimBRAVO(e, DefaultCosts(), 0)
	res := RunClosedLoop(e, l, e.NewProcs(20), Workload{
		ThinkNS: 1000, CSNS: 400, ReadFraction: 0.9, JitterPct: 10,
	}, 5_000_000)
	if res.Ops == 0 {
		t.Fatal("no ops with writers in the mix")
	}
	if l.SlowReads == 0 {
		t.Error("writers never pushed readers to the slow path")
	}
}

func TestDispatchCostReducesThroughputBoundedly(t *testing.T) {
	// Figure 2(c)'s worst case: hook dispatch with no policy work must
	// cost something, but bounded (paper: up to ~20%).
	w := Workload{ThinkNS: 200, CSNS: 150, JitterPct: 10}
	c := DefaultCosts()
	tp := func(dispatch int64) float64 {
		e := testEngine()
		l := NewSimShfl(e, c, func(s, cc *Proc) bool { return s.Socket == cc.Socket }, dispatch)
		return RunClosedLoop(e, l, e.NewProcs(40), w, 10_000_000).OpsPerMSec()
	}
	base := tp(0)
	hooked := tp(c.DispatchNS)
	ratio := hooked / base
	if ratio > 1.001 {
		t.Errorf("dispatch made things faster? ratio=%.3f", ratio)
	}
	if ratio < 0.75 {
		t.Errorf("dispatch overhead too large: ratio=%.3f", ratio)
	}
}

func TestJitterBounds(t *testing.T) {
	e := testEngine()
	f := func(v int64, pct uint8) bool {
		if v < 0 {
			v = -v
		}
		v %= 1_000_000
		p := int(pct % 50)
		j := jitter(e, v, p)
		span := v * int64(p) / 100
		return j >= v-span && j <= v+span
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPerSocketScalesForReaders(t *testing.T) {
	read := Workload{ThinkNS: 2000, CSNS: 600, ReadFraction: 1}
	tp := func(threads int) float64 {
		e := testEngine()
		res := RunClosedLoop(e, NewSimPerSocket(e, DefaultCosts()), e.NewProcs(threads), read, 10_000_000)
		return res.OpsPerMSec()
	}
	if t10, t80 := tp(10), tp(80); t80 < t10*3 {
		t.Errorf("per-socket lock did not scale: %.0f -> %.0f", t10, t80)
	}
}
