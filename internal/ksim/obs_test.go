package ksim

import (
	"sync/atomic"
	"testing"
)

// TestEngineTelemetryCounters covers the simulator's observability
// surface: the event counter, the slice trace, and the cacheline
// transfer counter the cost model feeds.
func TestEngineTelemetryCounters(t *testing.T) {
	e := testEngine()
	e.EnableTrace(0)
	c := DefaultCosts()
	var transfers atomic.Int64
	c.Transfers = &transfers

	lock := NewSimTAS(e, c)
	procs := e.NewProcs(8) // spans both sockets of the paper topology
	w := Workload{Name: "obs", ThinkNS: 200, CSNS: 400}
	res := RunClosedLoop(e, lock, procs, w, 2_000_000)

	if res.Ops == 0 {
		t.Fatal("workload completed no ops")
	}
	if got := e.EventsProcessed(); got == 0 {
		t.Error("EventsProcessed = 0 after a closed-loop run")
	}
	if transfers.Load() == 0 {
		t.Error("cross-CPU contention produced no cacheline transfers")
	}

	slices := e.TraceSlices()
	if len(slices) == 0 {
		t.Fatal("tracing enabled but no slices recorded")
	}
	var holds int
	for _, s := range slices {
		if s.DurNS < 0 || s.StartNS < 0 {
			t.Fatalf("slice with negative interval: %+v", s)
		}
		if s.StartNS+s.DurNS > e.Now() {
			t.Fatalf("slice %+v extends past virtual now %d", s, e.Now())
		}
		if s.Name == "hold "+lock.Name() {
			holds++
		}
	}
	if holds == 0 {
		t.Errorf("no hold slices among %d recorded", len(slices))
	}
}

// TestEnableTraceCap verifies the slice cap bounds memory: recording
// stops at the cap instead of growing without limit.
func TestEnableTraceCap(t *testing.T) {
	e := testEngine()
	e.EnableTrace(10)
	lock := NewSimTAS(e, DefaultCosts())
	procs := e.NewProcs(4)
	RunClosedLoop(e, lock, procs, Workload{Name: "cap", ThinkNS: 100, CSNS: 100}, 2_000_000)
	if got := len(e.TraceSlices()); got > 10 {
		t.Errorf("recorded %d slices, cap was 10", got)
	}
}

// TestTraceDisabledByDefault: without EnableTrace the engine must not
// pay for slice recording.
func TestTraceDisabledByDefault(t *testing.T) {
	e := testEngine()
	lock := NewSimTAS(e, DefaultCosts())
	procs := e.NewProcs(2)
	RunClosedLoop(e, lock, procs, Workload{Name: "off", ThinkNS: 100, CSNS: 100}, 500_000)
	if got := e.TraceSlices(); got != nil {
		t.Errorf("tracing off but %d slices recorded", len(got))
	}
}
