package ksim

// Simulated lock models. Each reproduces the *contention behaviour* of
// its real counterpart in internal/locks: how the next owner is chosen,
// which cachelines must move at handoff, and what serializes on shared
// state. See the package comment for the modelling scope.

// SimLock is a lock inside the simulation. Acquire is asynchronous:
// grant runs (possibly later in virtual time) when the lock is owned.
type SimLock interface {
	Name() string
	// Acquire requests the lock for p; reader marks a shared request.
	// grant fires at the virtual time the acquisition completes.
	Acquire(p *Proc, reader bool, grant func())
	// Release returns the lock; reader must match the acquisition.
	Release(p *Proc, reader bool)
}

// waiter is a queued acquisition request.
type waiter struct {
	p      *Proc
	reader bool
	grant  func()
	bypass int // times other waiters were shuffled ahead of this one
}

// --- Test-and-set spinlock ---

// SimTAS models a test-and-set spinlock: the next owner is a random
// waiter (whoever's CAS wins), and every release suffers the cacheline
// storm of all spinning waiters — cost grows with the waiter count,
// reproducing the non-scalable-lock collapse.
type SimTAS struct {
	e       *Engine
	c       CostModel
	held    bool
	lastCPU int
	waiters []waiter
}

// NewSimTAS returns a simulated TAS lock.
func NewSimTAS(e *Engine, c CostModel) *SimTAS { return &SimTAS{e: e, c: c} }

// Name implements SimLock.
func (l *SimTAS) Name() string { return "tas" }

// Acquire implements SimLock.
func (l *SimTAS) Acquire(p *Proc, _ bool, grant func()) {
	if !l.held {
		l.held = true
		cost := l.c.Transfer(l.e.topo, l.lastCPU, p.CPU)
		l.lastCPU = p.CPU
		l.e.Schedule(cost, grant)
		return
	}
	l.waiters = append(l.waiters, waiter{p: p, grant: grant})
}

// Release implements SimLock.
func (l *SimTAS) Release(p *Proc, _ bool) {
	l.lastCPU = p.CPU
	if len(l.waiters) == 0 {
		l.held = false
		return
	}
	// Random winner plus a storm proportional to the spinning crowd.
	i := l.e.Randn(len(l.waiters))
	w := l.waiters[i]
	l.waiters[i] = l.waiters[len(l.waiters)-1]
	l.waiters = l.waiters[:len(l.waiters)-1]
	cost := l.c.Transfer(l.e.topo, p.CPU, w.p.CPU) +
		l.c.StormPerWaiterNS*int64(len(l.waiters))
	l.lastCPU = w.p.CPU
	l.e.Schedule(cost, w.grant)
}

// --- Stock queue spinlock (qspinlock) ---

// SimQspin models the kernel's qspinlock: strict FIFO handoff, one
// cacheline transfer from releaser to the (arbitrarily located) next
// waiter. With threads spread over all sockets, most handoffs are
// remote — the cost ShflLock's NUMA policy removes.
type SimQspin struct {
	e       *Engine
	c       CostModel
	held    bool
	lastCPU int
	queue   []waiter
}

// NewSimQspin returns a simulated qspinlock.
func NewSimQspin(e *Engine, c CostModel) *SimQspin { return &SimQspin{e: e, c: c} }

// Name implements SimLock.
func (l *SimQspin) Name() string { return "qspinlock" }

// Acquire implements SimLock.
func (l *SimQspin) Acquire(p *Proc, _ bool, grant func()) {
	if !l.held {
		l.held = true
		cost := l.c.Transfer(l.e.topo, l.lastCPU, p.CPU)
		l.lastCPU = p.CPU
		l.e.Schedule(cost, grant)
		return
	}
	l.queue = append(l.queue, waiter{p: p, grant: grant})
}

// Release implements SimLock.
func (l *SimQspin) Release(p *Proc, _ bool) {
	if len(l.queue) == 0 {
		l.held = false
		l.lastCPU = p.CPU
		return
	}
	w := l.queue[0]
	l.queue = l.queue[1:]
	cost := l.c.Transfer(l.e.topo, p.CPU, w.p.CPU)
	l.lastCPU = w.p.CPU
	l.e.Schedule(cost, w.grant)
}

// --- ShflLock ---

// CmpFunc is the simulated cmp_node decision: should curr be grouped
// into the shuffler's batch? Concord variants plug the real, verified
// cBPF program in here (see the experiment harness).
type CmpFunc func(shuffler, curr *Proc) bool

// SimShfl models ShflLock: FIFO queue plus a shuffling phase run by the
// waiting queue head. Shuffling itself is off the critical path (the
// shuffler works while waiting), so it does not lengthen handoff; what
// the Concord variant pays on the hot path is the hook-dispatch cost.
type SimShfl struct {
	e            *Engine
	c            CostModel
	held         bool
	lastCPU      int
	queue        []waiter
	cmp          CmpFunc
	maxBatch     int
	bypassBudget int // starvation bound, like the real lock's
	// DispatchCost is added to every acquire and release (hook-table
	// indirection); zero for the pre-compiled variant.
	dispatch int64
	// Moves counts shuffle relocations (test observability).
	Moves int64
}

// NewSimShfl returns a simulated ShflLock. cmp may be nil (plain FIFO).
// dispatch is the per-operation hook overhead (0 = pre-compiled lock).
func NewSimShfl(e *Engine, c CostModel, cmp CmpFunc, dispatch int64) *SimShfl {
	return &SimShfl{e: e, c: c, cmp: cmp, maxBatch: 32, bypassBudget: 16, dispatch: dispatch}
}

// Name implements SimLock.
func (l *SimShfl) Name() string { return "shfllock" }

// Acquire implements SimLock.
func (l *SimShfl) Acquire(p *Proc, _ bool, grant func()) {
	if !l.held {
		l.held = true
		cost := l.c.Transfer(l.e.topo, l.lastCPU, p.CPU) + l.dispatch
		l.lastCPU = p.CPU
		l.e.Schedule(cost, grant)
		return
	}
	l.queue = append(l.queue, waiter{p: p, grant: grant})
}

// Release implements SimLock.
func (l *SimShfl) Release(p *Proc, _ bool) {
	if len(l.queue) == 0 {
		l.held = false
		l.lastCPU = p.CPU
		return
	}
	next := l.queue[0]
	l.queue = l.queue[1:]
	// The new head becomes the shuffler: group matching waiters right
	// behind it (stable, bounded batch). This work happened while
	// waiting, so it adds no handoff latency. Each bypassed waiter is
	// charged against its bypass budget, bounding starvation exactly
	// like the real lock.
	if l.cmp != nil && len(l.queue) > 1 {
		l.shuffleFor(next.p)
	}
	cost := l.c.Transfer(l.e.topo, p.CPU, next.p.CPU) + l.dispatch
	l.lastCPU = next.p.CPU
	l.e.Schedule(cost, next.grant)
}

func (l *SimShfl) shuffleFor(shuffler *Proc) {
	matched := make([]waiter, 0, len(l.queue))
	rest := make([]waiter, 0, len(l.queue))
	frozen := false
	for i, w := range l.queue {
		move := !frozen && len(matched) < l.maxBatch && l.cmp(shuffler, w.p)
		if move && i != len(matched) {
			// Moving w overtakes everyone in rest; if any of them has
			// exhausted its bypass budget, reordering freezes — the
			// sim analogue of the real lock's starvation bound.
			for j := range rest {
				if rest[j].bypass >= l.bypassBudget {
					frozen = true
				}
			}
			if frozen {
				move = false
			} else {
				for j := range rest {
					rest[j].bypass++
				}
				l.Moves++
			}
		}
		if move {
			matched = append(matched, w)
		} else {
			rest = append(rest, w)
		}
	}
	l.queue = append(matched, rest...)
}

// --- Stock neutral rwsem ---

// SimRWSem models a centralized readers-writer semaphore: every reader
// entry and exit is an atomic RMW on one shared cacheline, so reader
// throughput is bounded by the line's transfer rate no matter how many
// cores join — the collapse Figure 2(a) shows for "Stock".
type SimRWSem struct {
	e *Engine
	c CostModel

	lineFreeAt int64 // when the shared counter line is next available
	lineCPU    int   // last core that owned the line

	readers       int
	writer        bool
	queuedWriters []waiter
	queuedReaders []waiter
}

// NewSimRWSem returns a simulated neutral rwsem.
func NewSimRWSem(e *Engine, c CostModel) *SimRWSem { return &SimRWSem{e: e, c: c} }

// Name implements SimLock.
func (l *SimRWSem) Name() string { return "rwsem" }

// touchLine serializes an access to the shared counter line and returns
// the delay until this access completes.
func (l *SimRWSem) touchLine(p *Proc) int64 {
	start := l.lineFreeAt
	if now := l.e.Now(); start < now {
		start = now
	}
	done := start + l.c.Transfer(l.e.topo, l.lineCPU, p.CPU)
	l.lineFreeAt = done
	l.lineCPU = p.CPU
	return done - l.e.Now()
}

// Acquire implements SimLock.
func (l *SimRWSem) Acquire(p *Proc, reader bool, grant func()) {
	delay := l.touchLine(p)
	if reader {
		if l.writer || len(l.queuedWriters) > 0 {
			l.queuedReaders = append(l.queuedReaders, waiter{p: p, reader: true, grant: grant})
			return
		}
		l.readers++
		l.e.Schedule(delay, grant)
		return
	}
	if l.writer || l.readers > 0 {
		l.queuedWriters = append(l.queuedWriters, waiter{p: p, grant: grant})
		return
	}
	l.writer = true
	l.e.Schedule(delay, grant)
}

// Release implements SimLock.
func (l *SimRWSem) Release(p *Proc, reader bool) {
	l.touchLine(p) // the exit RMW also serializes on the line
	if reader {
		l.readers--
	} else {
		l.writer = false
	}
	l.dispatchQueued()
}

func (l *SimRWSem) dispatchQueued() {
	if l.writer {
		return
	}
	if l.readers == 0 && len(l.queuedWriters) > 0 {
		w := l.queuedWriters[0]
		l.queuedWriters = l.queuedWriters[1:]
		l.writer = true
		l.e.Schedule(l.touchLine(w.p), w.grant)
		return
	}
	if len(l.queuedWriters) == 0 {
		for _, r := range l.queuedReaders {
			l.readers++
			l.e.Schedule(l.touchLine(r.p), r.grant)
		}
		l.queuedReaders = l.queuedReaders[:0]
	}
}

// --- BRAVO ---

// SimBRAVO models BRAVO over an underlying rwsem: biased readers publish
// in a private slot (one uncontended atomic, no shared line), writers
// revoke by scanning the visible-readers table and then inhibit
// re-biasing. dispatch models Concord hook overhead on the read path.
type SimBRAVO struct {
	e     *Engine
	c     CostModel
	under *SimRWSem

	bias         bool
	inhibitUntil int64
	fastReaders  int
	drainWaiters []waiter // writers waiting for fast readers to drain
	dispatch     int64

	// FastReads / SlowReads count the paths taken (tests).
	FastReads, SlowReads int64
}

// NewSimBRAVO returns a simulated BRAVO wrapping a fresh rwsem.
func NewSimBRAVO(e *Engine, c CostModel, dispatch int64) *SimBRAVO {
	return &SimBRAVO{e: e, c: c, under: NewSimRWSem(e, c), bias: true, dispatch: dispatch}
}

// Name implements SimLock.
func (l *SimBRAVO) Name() string { return "bravo" }

// Acquire implements SimLock.
func (l *SimBRAVO) Acquire(p *Proc, reader bool, grant func()) {
	if reader {
		if l.bias {
			// Fast path: one atomic in a slot nobody else touches.
			l.fastReaders++
			l.FastReads++
			l.e.Schedule(l.c.AtomicNS+l.dispatch, grant)
			return
		}
		l.SlowReads++
		if !l.bias && l.e.Now() >= l.inhibitUntil {
			l.bias = true // reader re-arms the bias after the window
		}
		l.under.Acquire(p, true, grant)
		return
	}
	// Writer: take the underlying lock, then revoke the bias.
	l.under.Acquire(p, false, func() {
		if !l.bias && l.fastReaders == 0 {
			grant()
			return
		}
		l.bias = false
		scan := l.c.LocalTransferNS * 64 // sweep the visible-readers table
		if l.fastReaders > 0 {
			// Also wait for published readers to drain; they finish on
			// their own schedule, so queue behind them.
			l.drainWaiters = append(l.drainWaiters, waiter{p: p, grant: grant})
			l.inhibitUntil = l.e.Now() + scan*9
			return
		}
		l.inhibitUntil = l.e.Now() + scan*9
		l.e.Schedule(scan, grant)
	})
}

// Release implements SimLock.
func (l *SimBRAVO) Release(p *Proc, reader bool) {
	if reader {
		if l.fastReaders > 0 {
			l.fastReaders--
			if l.fastReaders == 0 {
				for _, w := range l.drainWaiters {
					l.e.Schedule(0, w.grant)
				}
				l.drainWaiters = l.drainWaiters[:0]
			}
			return
		}
		l.under.Release(p, true)
		return
	}
	l.under.Release(p, false)
}

// --- Per-socket distributed readers-writer lock ---

// SimPerSocket models the per-socket reader-counter design: readers
// serialize only on their own socket's counter line (local transfers),
// writers sweep every socket.
type SimPerSocket struct {
	e *Engine
	c CostModel

	lineFreeAt []int64 // per-socket counter line availability
	readers    []int
	writer     bool
	queuedW    []waiter
	queuedR    []waiter
}

// NewSimPerSocket returns a simulated per-socket RW lock.
func NewSimPerSocket(e *Engine, c CostModel) *SimPerSocket {
	n := e.topo.NumSockets()
	return &SimPerSocket{e: e, c: c, lineFreeAt: make([]int64, n), readers: make([]int, n)}
}

// Name implements SimLock.
func (l *SimPerSocket) Name() string { return "persocket" }

func (l *SimPerSocket) touchSocketLine(p *Proc) int64 {
	start := l.lineFreeAt[p.Socket]
	if now := l.e.Now(); start < now {
		start = now
	}
	done := start + l.c.LocalTransferNS
	l.lineFreeAt[p.Socket] = done
	return done - l.e.Now()
}

// Acquire implements SimLock.
func (l *SimPerSocket) Acquire(p *Proc, reader bool, grant func()) {
	if reader {
		if l.writer || len(l.queuedW) > 0 {
			l.queuedR = append(l.queuedR, waiter{p: p, reader: true, grant: grant})
			return
		}
		l.readers[p.Socket]++
		l.e.Schedule(l.touchSocketLine(p), grant)
		return
	}
	if l.writer || l.totalReaders() > 0 {
		l.queuedW = append(l.queuedW, waiter{p: p, grant: grant})
		return
	}
	l.writer = true
	// Writer sweeps every socket's counter line.
	sweep := l.c.RemoteTransferNS * int64(l.e.topo.NumSockets())
	l.e.Schedule(sweep, grant)
}

func (l *SimPerSocket) totalReaders() int {
	n := 0
	for _, r := range l.readers {
		n += r
	}
	return n
}

// Release implements SimLock.
func (l *SimPerSocket) Release(p *Proc, reader bool) {
	if reader {
		l.touchSocketLine(p)
		l.readers[p.Socket]--
	} else {
		l.writer = false
	}
	if l.writer {
		return
	}
	if l.totalReaders() == 0 && len(l.queuedW) > 0 {
		w := l.queuedW[0]
		l.queuedW = l.queuedW[1:]
		l.writer = true
		sweep := l.c.RemoteTransferNS * int64(l.e.topo.NumSockets())
		l.e.Schedule(sweep, w.grant)
		return
	}
	if len(l.queuedW) == 0 {
		for _, r := range l.queuedR {
			l.readers[r.p.Socket]++
			l.e.Schedule(l.touchSocketLine(r.p), r.grant)
		}
		l.queuedR = l.queuedR[:0]
	}
}
