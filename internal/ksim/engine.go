// Package ksim is a deterministic discrete-event simulator of a multicore
// machine, the stand-in for the paper's eight-socket, 80-core testbed
// (§5). The evaluation figures are thread-scaling curves whose shape is
// produced by queueing effects and cacheline-transfer costs; ksim models
// exactly those, under a virtual clock, so the curves can be regenerated
// on any host — including the single-CPU machine this repository targets.
//
// What is and is not modelled (documented for honest interpretation):
//
//   - Modelled: virtual time; per-task closed-loop workloads; lock wait
//     queues with algorithm-specific handoff policies; cacheline transfer
//     costs scaled by NUMA distance; serialization on shared hot lines
//     (the central rwsem counter); per-hook policy execution costs for
//     Concord variants (and the *real*, verified cBPF programs can drive
//     simulated shuffling decisions).
//   - Not modelled: instruction-level timing, cache capacity, TLBs,
//     memory bandwidth saturation, or the OS scheduler. Absolute numbers
//     are therefore not comparable with the paper's hardware; the
//     relative shapes (who wins, by what factor, where curves flatten)
//     are what the model reproduces.
package ksim

import (
	"container/heap"
	"fmt"
	"sync/atomic"

	"concord/internal/topology"
)

// event is one scheduled callback.
type event struct {
	at  int64
	seq int64 // tie-break so same-time events run in schedule order
	fn  func()
}

// eventHeap is a min-heap on (at, seq).
type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// Engine is a single-threaded discrete-event engine with a virtual
// nanosecond clock. It is deterministic: same schedule, same seed, same
// results.
type Engine struct {
	topo      *topology.Topology
	now       int64
	seq       int64
	pq        eventHeap
	rng       uint64
	processed int64

	trace    []SimSlice
	traceCap int
}

// NewEngine returns an engine over the given topology with an RNG seed.
func NewEngine(topo *topology.Topology, seed uint64) *Engine {
	return &Engine{topo: topo, rng: seed ^ 0x9e3779b97f4a7c15}
}

// Topology returns the simulated machine's topology.
func (e *Engine) Topology() *topology.Topology { return e.topo }

// Now returns the current virtual time in nanoseconds.
func (e *Engine) Now() int64 { return e.now }

// Schedule runs fn after delay virtual nanoseconds.
func (e *Engine) Schedule(delay int64, fn func()) {
	if delay < 0 {
		panic(fmt.Sprintf("ksim: negative delay %d", delay))
	}
	e.seq++
	heap.Push(&e.pq, event{at: e.now + delay, seq: e.seq, fn: fn})
}

// Rand returns a deterministic pseudo-random uint64 (splitmix64).
func (e *Engine) Rand() uint64 {
	e.rng += 0x9e3779b97f4a7c15
	z := e.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Randn returns a deterministic value in [0, n).
func (e *Engine) Randn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(e.Rand() % uint64(n))
}

// Run processes events until the virtual clock reaches until (exclusive)
// or no events remain. It returns the number of events processed.
func (e *Engine) Run(until int64) int {
	n := 0
	for len(e.pq) > 0 {
		if e.pq[0].at >= until {
			break
		}
		ev := heap.Pop(&e.pq).(event)
		if ev.at < e.now {
			panic("ksim: time went backwards")
		}
		e.now = ev.at
		ev.fn()
		n++
	}
	if e.now < until {
		e.now = until
	}
	e.processed += int64(n)
	return n
}

// EventsProcessed reports the total number of events run across every
// Run call — the simulator's work counter for telemetry.
func (e *Engine) EventsProcessed() int64 { return e.processed }

// SimSlice is one traced interval of a simulated run: a wait for or a
// hold of a lock by one proc, in virtual time. The obs package renders
// slices into Perfetto timelines.
type SimSlice struct {
	Name    string
	Proc    int
	CPU     int
	StartNS int64
	DurNS   int64
}

// EnableTrace starts recording slices, keeping at most cap (0 means a
// generous default). Tracing a deterministic run does not perturb it:
// recording happens outside the virtual clock.
func (e *Engine) EnableTrace(capacity int) {
	if capacity <= 0 {
		capacity = 1 << 16
	}
	e.traceCap = capacity
	e.trace = make([]SimSlice, 0, min(capacity, 4096))
}

// TraceSlices returns the recorded slices (nil when tracing is off).
func (e *Engine) TraceSlices() []SimSlice { return e.trace }

// addSlice records one interval if tracing is enabled and under cap.
func (e *Engine) addSlice(s SimSlice) {
	if e.traceCap > 0 && len(e.trace) < e.traceCap {
		e.trace = append(e.trace, s)
	}
}

// Pending reports the number of scheduled events.
func (e *Engine) Pending() int { return len(e.pq) }

// Proc is a simulated thread pinned to a virtual CPU.
type Proc struct {
	ID     int
	CPU    int
	Socket int
	// Speed is the AMP speed class of the CPU (1.0 = full speed); work
	// durations divide by it, so slow cores take longer for the same
	// critical section.
	Speed float64
}

// NewProcs creates n simulated threads spread round-robin across the
// machine's CPUs, the way will-it-scale pins its workers.
func (e *Engine) NewProcs(n int) []*Proc {
	procs := make([]*Proc, n)
	for i := range procs {
		cpu := i % e.topo.NumCPUs()
		procs[i] = &Proc{
			ID: i, CPU: cpu,
			Socket: e.topo.SocketOf(cpu),
			Speed:  float64(e.topo.Speed(cpu)),
		}
	}
	return procs
}

// WorkNS scales a nominal duration by the proc's core speed (AMP):
// slower cores take proportionally longer.
func (p *Proc) WorkNS(nominal int64) int64 {
	if p.Speed <= 0 || p.Speed == 1.0 {
		return nominal
	}
	return int64(float64(nominal) / p.Speed)
}

// CostModel holds the timing constants of the simulated machine. The
// defaults are in the range of measured cacheline-transfer and atomic
// latencies on large x86 NUMA servers; EXPERIMENTS.md records the values
// used for each figure.
type CostModel struct {
	// AtomicNS is an uncontended atomic RMW on an owned line.
	AtomicNS int64
	// LocalTransferNS moves a cacheline between cores of one socket.
	LocalTransferNS int64
	// RemoteTransferNS moves a cacheline across sockets (distance 20);
	// other distances scale linearly against these two anchors.
	RemoteTransferNS int64
	// StormPerWaiterNS is the extra release-side cost per spinning
	// waiter hammering a TAS/ticket lock line (the non-scalable-lock
	// collapse of Boyd-Wickizer et al.).
	StormPerWaiterNS int64
	// DispatchNS is Concord's per-hook-table indirection cost on the
	// acquire/release path (pinning the hook slot, nil checks).
	DispatchNS int64
	// PolicyExecNS is the cost of one interpreted cBPF policy run
	// (cmp_node etc.); native pre-compiled policies cost ~0 extra.
	PolicyExecNS int64

	// Transfers, when non-nil, counts cross-CPU cacheline movements (the
	// telemetry layer's view of simulated coherence traffic). The pointer
	// survives the by-value copies lock models keep.
	Transfers *atomic.Int64
}

// DefaultCosts returns the cost model used by the experiment harness.
func DefaultCosts() CostModel {
	return CostModel{
		AtomicNS:         18,
		LocalTransferNS:  45,
		RemoteTransferNS: 320,
		StormPerWaiterNS: 14,
		DispatchNS:       20,
		PolicyExecNS:     90,
	}
}

// Transfer returns the cost of moving a cacheline from the core of p to
// the core of q, scaled by NUMA distance.
func (c CostModel) Transfer(topo *topology.Topology, fromCPU, toCPU int) int64 {
	if fromCPU == toCPU {
		return c.AtomicNS
	}
	if c.Transfers != nil {
		c.Transfers.Add(1)
	}
	d := topo.Distance(fromCPU, toCPU)
	if d <= 10 {
		return c.LocalTransferNS
	}
	// Linear interpolation anchored at distance 10 (local) and 20
	// (remote); SLIT distances beyond 20 extrapolate.
	return c.LocalTransferNS + (c.RemoteTransferNS-c.LocalTransferNS)*int64(d-10)/10
}
