package livepatch

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"concord/internal/faultinject"
)

func TestSlotBasics(t *testing.T) {
	v1 := "one"
	s := NewSlot(&v1)
	got, release := s.Get()
	if got == nil || *got != "one" {
		t.Fatalf("Get = %v", got)
	}
	release.Release()
	if p := s.Peek(); p == nil || *p != "one" {
		t.Fatalf("Peek = %v", p)
	}
}

func TestZeroSlotHoldsNil(t *testing.T) {
	var s Slot[int]
	got, release := s.Get()
	if got != nil {
		t.Fatalf("zero slot Get = %v, want nil", got)
	}
	release.Release() // must not panic
	if s.Peek() != nil {
		t.Fatal("zero slot Peek non-nil")
	}
}

func TestReplaceVisibleImmediately(t *testing.T) {
	v1, v2 := 1, 2
	s := NewSlot(&v1)
	s.Replace("p1", &v2)
	got, release := s.Get()
	defer release.Release()
	if *got != 2 {
		t.Fatalf("after replace: %d, want 2", *got)
	}
}

func TestPatchWaitDrainsOldReaders(t *testing.T) {
	v1, v2 := 1, 2
	s := NewSlot(&v1)

	old, release := s.Get() // pin old version
	if *old != 1 {
		t.Fatal("wrong pin")
	}

	p := s.Replace("p1", &v2)
	done := make(chan struct{})
	go func() {
		p.Wait()
		close(done)
	}()

	select {
	case <-done:
		t.Fatal("Wait returned while old reader still pinned")
	case <-time.After(20 * time.Millisecond):
	}

	release.Release()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("Wait did not return after release")
	}
}

func TestPatchWaitImmediateWhenUnpinned(t *testing.T) {
	v1, v2 := 1, 2
	s := NewSlot(&v1)
	p := s.Replace("p1", &v2)
	ch := make(chan struct{})
	go func() { p.Wait(); close(ch) }()
	select {
	case <-ch:
	case <-time.After(time.Second):
		t.Fatal("Wait hung with no readers")
	}
}

func TestRollback(t *testing.T) {
	v1, v2 := 1, 2
	s := NewSlot(&v1)
	p := s.Replace("p1", &v2)
	p.Wait()
	rb := p.Rollback()
	rb.Wait()
	got, release := s.Get()
	defer release.Release()
	if *got != 1 {
		t.Fatalf("after rollback: %d, want 1", *got)
	}
	if s.Depth() != 2 {
		t.Fatalf("Depth = %d, want 2 (patch + rollback)", s.Depth())
	}
}

func TestConcurrentGetReplace(t *testing.T) {
	vals := make([]*int, 8)
	for i := range vals {
		v := i
		vals[i] = &v
	}
	s := NewSlot(vals[0])

	var stop atomic.Bool
	var wg sync.WaitGroup
	var reads atomic.Int64
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				v, release := s.Get()
				if v == nil || *v < 0 || *v >= 8 {
					t.Errorf("bad value %v", v)
					release.Release()
					return
				}
				reads.Add(1)
				release.Release()
			}
		}()
	}
	for i := 0; i < 500; i++ {
		p := s.Replace("p", vals[i%8])
		p.Wait() // must never deadlock against the readers
	}
	// On a single-CPU host the readers may not have been scheduled yet;
	// give them a chance before stopping.
	for reads.Load() == 0 {
		runtime.Gosched()
	}
	stop.Store(true)
	wg.Wait()
	if reads.Load() == 0 {
		t.Error("no reads observed")
	}
}

func TestWaitCoversOnlyDisplacedVersion(t *testing.T) {
	v1, v2, v3 := 1, 2, 3
	s := NewSlot(&v1)
	p1 := s.Replace("p1", &v2)
	p1.Wait()

	// Pin v2, then replace with v3: p2 must block, but a fresh patch p3
	// displacing v3 (unpinned) must not.
	_, release := s.Get()
	p2 := s.Replace("p2", &v3)

	blocked := make(chan struct{})
	go func() { p2.Wait(); close(blocked) }()
	select {
	case <-blocked:
		t.Fatal("p2.Wait returned while v2 pinned")
	case <-time.After(10 * time.Millisecond):
	}
	release.Release()
	<-blocked
}

func TestWaitTimeoutNeverQuiescing(t *testing.T) {
	v1, v2 := 1, 2
	s := NewSlot(&v1)

	// A reader that never quiesces: the pin is held across the patch and
	// never released until we decide the "wedge" is over.
	_, release := s.Get()
	p := s.Replace("p1", &v2)

	if p.WaitTimeout(10 * time.Millisecond) {
		t.Fatal("WaitTimeout reported drained while old reader pinned")
	}
	// A failed bounded wait must not consume or corrupt the drain: the
	// same patch completes once the reader finally releases.
	release.Release()
	if !p.WaitTimeout(time.Second) {
		t.Fatal("WaitTimeout did not observe the drain after release")
	}
	p.Wait() // and the unbounded wait agrees, without blocking
}

func TestWaitTimeoutFastPaths(t *testing.T) {
	// Replacing into a zero slot displaces nothing: there is no drain, so
	// even a zero timeout succeeds.
	var s Slot[int]
	v1 := 1
	if p := s.Replace("p0", &v1); !p.WaitTimeout(0) {
		t.Fatal("WaitTimeout on no-drain patch returned false")
	}
	// An already-drained patch succeeds without arming a timer.
	v2 := 2
	p := s.Replace("p1", &v2)
	p.Wait()
	if !p.WaitTimeout(0) {
		t.Fatal("WaitTimeout on drained patch returned false")
	}
}

func TestWaitTimeoutRollbackDegradation(t *testing.T) {
	// The bounded-drain degradation ladder: patch, give the drain a
	// deadline, and on timeout roll back rather than block forever behind
	// a wedged reader. This is the shape core uses for Patch.WaitTimeout
	// → Rollback.
	v1, v2 := 1, 2
	s := NewSlot(&v1)

	old, pin := s.Get() // the wedged invocation
	if *old != 1 {
		t.Fatal("wrong pin")
	}
	p := s.Replace("p1", &v2)
	if p.WaitTimeout(5 * time.Millisecond) {
		t.Fatal("drain completed with a wedged reader")
	}
	rb := p.Rollback()

	// New invocations are back on the old value immediately.
	got, release := s.Get()
	if *got != 1 {
		t.Fatalf("after rollback: %d, want 1", *got)
	}
	release.Release()

	// The wedged reader still holds a valid value and, once it quiesces,
	// the rollback patch's own drain (covering v2's brief reign) and the
	// original patch both complete.
	if *old != 1 {
		t.Fatal("pinned value changed under reader")
	}
	pin.Release()
	p.Wait()
	rb.Wait()
	if s.Depth() != 2 {
		t.Fatalf("Depth = %d, want 2 (patch + rollback)", s.Depth())
	}
}

func TestInjectedDrainStall(t *testing.T) {
	// The livepatch.drain fault site holds a phantom pin on the retiring
	// version: even with zero real readers the drain must stall for the
	// injected delay, then complete on its own.
	defer faultinject.DisarmAll()
	faultinject.LivepatchDrain.Arm(faultinject.Config{
		MaxFires: 1,
		Delay:    40 * time.Millisecond,
	})

	v1, v2 := 1, 2
	s := NewSlot(&v1)
	start := time.Now()
	p := s.Replace("p1", &v2)
	if p.WaitTimeout(2 * time.Millisecond) {
		t.Fatal("phantom pin did not stall the drain")
	}
	p.Wait()
	if elapsed := time.Since(start); elapsed < 30*time.Millisecond {
		t.Errorf("drain completed in %v, injected stall was 40ms", elapsed)
	}

	// The site was capped at one fire: the next patch drains instantly.
	v3 := 3
	if !s.Replace("p2", &v3).WaitTimeout(0) {
		t.Error("second patch stalled after MaxFires exhausted")
	}
}

func TestConcurrentStackRollback(t *testing.T) {
	// Patchers stack Replace+Rollback pairs while readers continuously
	// pin: every observed value must be coherent, every drain must
	// terminate, and the history depth must account for exactly one
	// patch plus one rollback per iteration.
	vals := make([]*int, 4)
	for i := range vals {
		v := i + 100
		vals[i] = &v
	}
	base := 0
	s := NewSlot(&base)

	var stop atomic.Bool
	var wg sync.WaitGroup
	var reads atomic.Int64
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				v, release := s.Get()
				if v == nil || (*v != 0 && (*v < 100 || *v > 103)) {
					t.Errorf("incoherent value %v", v)
					release.Release()
					return
				}
				reads.Add(1)
				release.Release()
			}
		}()
	}

	const patchers, iters = 3, 40
	var pwg sync.WaitGroup
	for w := 0; w < patchers; w++ {
		pwg.Add(1)
		go func(w int) {
			defer pwg.Done()
			for i := 0; i < iters; i++ {
				p := s.Replace("p", vals[w%len(vals)])
				// Interleave bounded and unbounded drains; both must
				// terminate with readers churning.
				if i%2 == 0 {
					p.Wait()
				} else {
					for !p.WaitTimeout(50 * time.Millisecond) {
					}
				}
				p.Rollback().Wait()
			}
		}(w)
	}
	pwg.Wait()
	for reads.Load() == 0 {
		runtime.Gosched()
	}
	stop.Store(true)
	wg.Wait()

	if want := patchers * iters * 2; s.Depth() != want {
		t.Errorf("Depth = %d, want %d", s.Depth(), want)
	}
	if reads.Load() == 0 {
		t.Error("no reads observed")
	}
}

func TestShadowStore(t *testing.T) {
	s := NewShadowStore()
	type obj struct{ x int }
	o1, o2 := &obj{1}, &obj{2}

	if _, ok := s.Get(o1, 1); ok {
		t.Fatal("empty store Get ok")
	}
	calls := 0
	v := s.GetOrAlloc(o1, 1, func() any { calls++; return "shadow1" })
	if v != "shadow1" || calls != 1 {
		t.Fatalf("alloc: %v, calls=%d", v, calls)
	}
	// Second call returns the cached value without re-running ctor.
	v = s.GetOrAlloc(o1, 1, func() any { calls++; return "other" })
	if v != "shadow1" || calls != 1 {
		t.Fatalf("cached: %v, calls=%d", v, calls)
	}
	// Distinct ids and objects are independent.
	s.Attach(o1, 2, "id2")
	s.Attach(o2, 1, "obj2")
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	if v, _ := s.Get(o2, 1); v != "obj2" {
		t.Fatalf("o2 shadow: %v", v)
	}
	if !s.Detach(o1, 1) || s.Detach(o1, 1) {
		t.Fatal("detach semantics")
	}
	if n := s.FreeAll(1); n != 1 {
		t.Fatalf("FreeAll(1) = %d, want 1", n)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
}

func TestShadowStoreConcurrentGetOrAlloc(t *testing.T) {
	s := NewShadowStore()
	obj := new(int)
	var ctorCalls atomic.Int64
	var wg sync.WaitGroup
	results := make([]any, 16)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = s.GetOrAlloc(obj, 7, func() any {
				ctorCalls.Add(1)
				return new(struct{})
			})
		}(i)
	}
	wg.Wait()
	if ctorCalls.Load() != 1 {
		t.Fatalf("ctor ran %d times, want 1", ctorCalls.Load())
	}
	for _, r := range results {
		if r != results[0] {
			t.Fatal("GetOrAlloc returned different values")
		}
	}
}

func TestPatchAnnotation(t *testing.T) {
	s := NewSlot(new(int))
	p := s.Replace("with-report", new(int))
	if p.Annotation() != nil {
		t.Fatal("fresh patch has an annotation")
	}
	type report struct{ Bound int64 }
	p.SetAnnotation(&report{Bound: 42})
	got, ok := p.Annotation().(*report)
	if !ok || got.Bound != 42 {
		t.Fatalf("Annotation() = %#v", p.Annotation())
	}
	// Replacing the annotation is allowed (last writer wins).
	p.SetAnnotation(&report{Bound: 7})
	if p.Annotation().(*report).Bound != 7 {
		t.Fatal("annotation not replaced")
	}
}
