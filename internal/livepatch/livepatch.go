// Package livepatch reimplements, in userspace, the two kernel-livepatch
// mechanisms Concord builds on (paper §4, Figure 1 step 6):
//
//   - atomically redirecting a function (here: a lock's hook table) to a
//     new implementation, with a consistency model: new invocations see
//     the new code immediately, and the patch "lands" only once every
//     in-flight invocation of the old code has drained;
//   - shadow variables (§4.2), which attach out-of-band state to existing
//     objects without recompiling them.
//
// The drain mechanism is an epoch reference count per published version,
// equivalent to what kpatch achieves with stack inspection: Patch.Wait
// returns only when no execution can still observe the replaced value.
package livepatch

import (
	"sync"
	"sync/atomic"
	"time"

	"concord/internal/faultinject"
)

// Instrumentation hooks. The telemetry layer (internal/obs, wired by
// internal/core) observes patch activity through these; livepatch cannot
// import obs directly because the lock hook tables it slots live below
// it in the import graph. Both are process-global: last SetXxx wins, and
// a nil fn disables the hook.
var (
	patchObserver atomic.Pointer[func(patchName string)]
	drainObserver atomic.Pointer[func(patchName string, drainNS int64)]
)

// SetPatchObserver installs fn to be called on every Replace (one call
// per hook-table transition, before any draining).
func SetPatchObserver(fn func(patchName string)) {
	if fn == nil {
		patchObserver.Store(nil)
		return
	}
	patchObserver.Store(&fn)
}

// SetDrainObserver installs fn to be called when a replaced version
// fully drains, with the wall-clock latency from retirement to
// quiescence — the livepatch consistency-point (epoch drain) latency.
// The patch name is the one given to the Replace that retired it.
func SetDrainObserver(fn func(patchName string, drainNS int64)) {
	if fn == nil {
		drainObserver.Store(nil)
		return
	}
	drainObserver.Store(&fn)
}

// version wraps one published value with its drain bookkeeping.
type version[T any] struct {
	val     *T
	refs    atomic.Int64
	retired atomic.Bool
	done    chan struct{}
	once    sync.Once

	// Drain bookkeeping, written (before retired is set) by the Replace
	// that retires this version.
	retiredBy string
	retiredAt int64
}

func (v *version[T]) finish() {
	v.once.Do(func() {
		close(v.done)
		if fn := drainObserver.Load(); fn != nil {
			(*fn)(v.retiredBy, time.Now().UnixNano()-v.retiredAt)
		}
	})
}

func (v *version[T]) release() {
	if v.refs.Add(-1) == 0 && v.retired.Load() {
		v.finish()
	}
}

// Slot is an atomically patchable cell holding a *T (for Concord, a lock
// hook table). Readers pin the current version for the duration of one
// invocation; writers publish a replacement and can wait for old readers
// to drain.
//
// The zero Slot holds nil; use New or Replace to publish a value.
type Slot[T any] struct {
	cur atomic.Pointer[version[T]]

	mu      sync.Mutex // serializes Replace; stack bookkeeping
	history []*Patch
}

// NewSlot returns a slot initially holding val (which may be nil).
func NewSlot[T any](val *T) *Slot[T] {
	s := &Slot[T]{}
	s.cur.Store(&version[T]{val: val, done: make(chan struct{})})
	return s
}

// Held is a pinned reference to one published version. It is a plain
// value (no allocation on the hot path); Release must be called exactly
// once. The zero Held is a valid no-op.
type Held[T any] struct{ v *version[T] }

// Release unpins the version; any Patch waiting on it may then complete.
func (h Held[T]) Release() {
	if h.v != nil {
		h.v.release()
	}
}

// Get pins and returns the current value together with a Held handle.
// The caller must call Release exactly once when it no longer uses the
// value; until then, any Patch that replaced this version does not
// complete.
//
// Get never blocks and is safe from any goroutine; the fast path is two
// atomic operations plus a validation load, with no allocation.
func (s *Slot[T]) Get() (*T, Held[T]) {
	for {
		v := s.cur.Load()
		if v == nil {
			return nil, Held[T]{}
		}
		v.refs.Add(1)
		if s.cur.Load() == v {
			return v.val, Held[T]{v: v}
		}
		// A Replace won the race between our load and pin; back out and
		// retry against the new version.
		v.release()
	}
}

// Peek returns the current value without pinning. Use only when the
// value is immutable or the caller tolerates tearing against Replace.
func (s *Slot[T]) Peek() *T {
	if v := s.cur.Load(); v != nil {
		return v.val
	}
	return nil
}

// Patch is an in-progress or completed replacement of a slot's value.
type Patch struct {
	done     chan struct{} // drain completion; nil when nothing drained
	rollback func() *Patch
	name     string

	annMu      sync.Mutex
	annotation any
}

// Name reports the label given at Replace time.
func (p *Patch) Name() string { return p.name }

// SetAnnotation attaches caller metadata to the patch — Concord records
// the policy's static-analysis reports on the attach patch so the
// installed artifact carries its own proof. The kernel analogue is the
// metadata blob a livepatch module ships alongside its code.
func (p *Patch) SetAnnotation(v any) {
	p.annMu.Lock()
	p.annotation = v
	p.annMu.Unlock()
}

// Annotation returns the metadata set by SetAnnotation, or nil.
func (p *Patch) Annotation() any {
	p.annMu.Lock()
	defer p.annMu.Unlock()
	return p.annotation
}

// Wait blocks until every Get that returned the *previous* value has
// released it — the livepatch consistency point. After Wait, no code is
// still running against the replaced hooks.
func (p *Patch) Wait() {
	if p.done != nil {
		<-p.done
	}
}

// WaitTimeout is Wait with a deadline: it reports whether the drain
// completed within d. A false return means some execution still holds
// the replaced value — the caller can degrade (typically Rollback)
// instead of blocking forever behind a wedged reader.
func (p *Patch) WaitTimeout(d time.Duration) bool {
	if p.done == nil {
		return true
	}
	select {
	case <-p.done:
		return true
	default:
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-p.done:
		return true
	case <-timer.C:
		return false
	}
}

// Rollback re-publishes the value this patch replaced and returns the
// resulting patch (whose Wait drains users of the rolled-back value).
func (p *Patch) Rollback() *Patch { return p.rollback() }

// Replace atomically publishes val and returns a Patch. Concurrent
// Replace calls serialize; each patch's Wait covers the version it
// displaced.
func (s *Slot[T]) Replace(name string, val *T) *Patch {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.replaceLocked(name, val)
}

func (s *Slot[T]) replaceLocked(name string, val *T) *Patch {
	if fn := patchObserver.Load(); fn != nil {
		(*fn)(name)
	}
	next := &version[T]{val: val, done: make(chan struct{})}
	old := s.cur.Swap(next)

	p := &Patch{name: name}
	var oldVal *T
	if old != nil {
		// Injected drain stall: hold a phantom reader pin on the retiring
		// version for the configured delay, exactly as a wedged hook
		// invocation would. Pinned before retirement so the accounting
		// below cannot observe an intermediate state.
		if faultinject.LivepatchDrain.Enabled() {
			if flt, ok := faultinject.LivepatchDrain.Fire(); ok && flt.Delay > 0 {
				old.refs.Add(1)
				time.AfterFunc(flt.Delay, old.release)
			}
		}
		oldVal = old.val
		old.retiredBy = name
		old.retiredAt = time.Now().UnixNano()
		old.retired.Store(true)
		if old.refs.Load() == 0 {
			old.finish()
		}
		p.done = old.done
	}
	p.rollback = func() *Patch {
		return s.Replace(name+"(rollback)", oldVal)
	}
	s.history = append(s.history, p)
	return p
}

// Depth reports how many patches have been applied to this slot.
func (s *Slot[T]) Depth() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.history)
}

// --- Shadow variables ---

type shadowKey struct {
	obj any
	id  uint64
}

// ShadowStore attaches out-of-band data to existing objects, mirroring
// the kernel's klp_shadow_* API. Concord uses it to extend lock queue
// nodes with policy-specific state without changing their layout (§4.2).
type ShadowStore struct {
	mu sync.RWMutex
	m  map[shadowKey]any
}

// NewShadowStore returns an empty store.
func NewShadowStore() *ShadowStore {
	return &ShadowStore{m: make(map[shadowKey]any)}
}

// Get returns the shadow value attached to (obj, id), if any.
func (s *ShadowStore) Get(obj any, id uint64) (any, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	v, ok := s.m[shadowKey{obj, id}]
	return v, ok
}

// GetOrAlloc returns the shadow value for (obj, id), calling ctor to
// create it if absent (klp_shadow_get_or_alloc). ctor runs at most once
// per key.
func (s *ShadowStore) GetOrAlloc(obj any, id uint64, ctor func() any) any {
	k := shadowKey{obj, id}
	s.mu.RLock()
	v, ok := s.m[k]
	s.mu.RUnlock()
	if ok {
		return v
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if v, ok = s.m[k]; ok {
		return v
	}
	v = ctor()
	s.m[k] = v
	return v
}

// Attach stores a shadow value, replacing any existing one.
func (s *ShadowStore) Attach(obj any, id uint64, val any) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[shadowKey{obj, id}] = val
}

// Detach removes the shadow value for (obj, id), reporting whether one
// existed (klp_shadow_free).
func (s *ShadowStore) Detach(obj any, id uint64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	k := shadowKey{obj, id}
	if _, ok := s.m[k]; !ok {
		return false
	}
	delete(s.m, k)
	return true
}

// FreeAll removes every shadow value with the given id across all
// objects (klp_shadow_free_all).
func (s *ShadowStore) FreeAll(id uint64) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for k := range s.m {
		if k.id == id {
			delete(s.m, k)
			n++
		}
	}
	return n
}

// Len reports the number of attached shadow values.
func (s *ShadowStore) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.m)
}
