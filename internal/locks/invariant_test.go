package locks

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"concord/internal/task"
	"concord/internal/topology"
)

// Table-driven invariant harness: every lock type in the repository is
// hammered by churning goroutines (workers retire and are replaced
// mid-run, so queue nodes are taken and freed on many distinct tasks)
// while the harness checks mutual exclusion and, for the queue locks,
// starvation-freedom. Run under -race in CI; the nightly stress job
// runs it un-shortened with -count=2.

// invariantLock adapts both Lock and the write side of RWLock.
type invariantLock struct {
	name string
	mk   func(topo *topology.Topology) Lock
	// fifo marks locks whose queue hands off in strict arrival order,
	// making per-worker progress near-uniform under churn.
	fifo bool
}

func invariantRoster() []invariantLock {
	return []invariantLock{
		{"tas", func(*topology.Topology) Lock { return NewTASLock("inv-tas") }, false},
		{"ttas", func(*topology.Topology) Lock { return NewTTASLock("inv-ttas") }, false},
		{"ticket", func(*topology.Topology) Lock { return NewTicketLock("inv-ticket") }, true},
		{"mcs", func(*topology.Topology) Lock { return NewMCSLock("inv-mcs") }, true},
		{"clh", func(*topology.Topology) Lock { return NewCLHLock("inv-clh") }, true},
		{"qspin", func(*topology.Topology) Lock { return NewQSpinLock("inv-qspin") }, false},
		{"cna", func(*topology.Topology) Lock { return NewCNALock("inv-cna", 0, 0) }, false},
		{"cohort", func(tp *topology.Topology) Lock { return NewCohortLock("inv-cohort", tp, 0) }, false},
		{"shfl", func(*topology.Topology) Lock { return NewShflLock("inv-shfl") }, false},
		{"shfl-block", func(*topology.Topology) Lock {
			return NewShflLock("inv-shflb", WithBlocking(true), WithSpinBudget(16))
		}, false},
		{"rwsem-w", func(*topology.Topology) Lock { return NewRWSem("inv-rwsem") }, false},
		{"switchable-w", func(tp *topology.Topology) Lock {
			return NewSwitchableRWLock("inv-sw", NewRWSem("inv-sw-under"))
		}, false},
	}
}

// invariantParams scales the harness: (workers, generations, ops per
// worker generation). Short mode keeps the tier-1 suite fast; the
// nightly stress job runs the full shape.
func invariantParams(short bool) (workers, generations, ops int) {
	if short {
		return 4, 2, 150
	}
	return 8, 4, 600
}

func TestLockInvariants(t *testing.T) {
	workers, generations, ops := invariantParams(testing.Short())
	for _, tc := range invariantRoster() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			topo := topology.New(2, 4)
			l := tc.mk(topo)

			var inCS atomic.Int32
			var total atomic.Int64
			perWorker := make([]int64, workers)
			var wg sync.WaitGroup

			// Worker churn: each slot runs `generations` short-lived
			// goroutines in sequence, each with a fresh task — so node
			// pools are populated and abandoned across many tasks, the
			// reuse pattern most likely to expose ABA or stale-wakeup
			// bugs.
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for g := 0; g < generations; g++ {
						tk := task.NewOnCPU(topo, (w+g)%topo.NumCPUs())
						for i := 0; i < ops; i++ {
							l.Lock(tk)
							if n := inCS.Add(1); n != 1 {
								t.Errorf("%s: %d tasks in the critical section", tc.name, n)
							}
							if i&15 == 0 {
								runtime.Gosched() // widen the exclusion window
							}
							inCS.Add(-1)
							l.Unlock(tk)
							perWorker[w]++
							total.Add(1)
						}
					}
				}(w)
			}
			wg.Wait()

			want := int64(workers * generations * ops)
			if got := total.Load(); got != want {
				t.Fatalf("%s: completed %d ops, want %d", tc.name, got, want)
			}
			// Starvation check: every worker slot finished its full
			// quota (wg.Wait proved it); additionally, FIFO queue locks
			// must not have let any slot fall behind — with equal work
			// per slot, completion of all slots IS the fairness bound,
			// so assert the accounting matched per slot too.
			for w := 0; w < workers; w++ {
				if perWorker[w] != int64(generations*ops) {
					t.Errorf("%s: worker %d completed %d ops, want %d",
						tc.name, w, perWorker[w], generations*ops)
				}
			}
			_ = tc.fifo
		})
	}
}

// TestLockFIFOOrder checks the strict-FIFO property of the FIFO queue
// locks: with waiters enqueued one at a time (each provably queued
// before the next arrives), service order must equal arrival order.
func TestLockFIFOOrder(t *testing.T) {
	topo := topology.New(2, 4)
	for _, tc := range invariantRoster() {
		if !tc.fifo {
			continue
		}
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			const waiters = 6
			l := tc.mk(topo)

			// OnContended fires only after a waiter's queue position is
			// fixed (tail swapped / ticket taken), so it is a precise
			// "enqueued" signal — no wall-clock guessing.
			var contended atomic.Int32
			l.(Hooked).HookSlot().Replace("count", &Hooks{
				Name:        "count",
				OnContended: func(*Event) { contended.Add(1) },
			})

			holder := task.New(topo)
			l.Lock(holder)

			// Enqueue waiters strictly one after another.
			var order []int
			var mu sync.Mutex
			var wg sync.WaitGroup
			for i := 0; i < waiters; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					tk := task.New(topo)
					l.Lock(tk)
					mu.Lock()
					order = append(order, i)
					mu.Unlock()
					l.Unlock(tk)
				}(i)
				for contended.Load() != int32(i+1) {
					runtime.Gosched()
				}
			}
			l.Unlock(holder)
			wg.Wait()

			for i := range order {
				if order[i] != i {
					t.Fatalf("service order %v is not arrival order", order)
				}
			}
		})
	}
}

// TestTryLockNeverBlocksOrLeaks drives TryLock against a held lock:
// it must fail fast, and the failed attempts must not corrupt queue
// state for subsequent blocking acquisitions (regression cover for the
// pooled-node TryLock paths, including CLH's generation validation).
func TestTryLockNeverBlocksOrLeaks(t *testing.T) {
	topo := topology.New(2, 4)
	for _, tc := range invariantRoster() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			l := tc.mk(topo)
			holder := task.New(topo)
			other := task.New(topo)

			l.Lock(holder)
			for i := 0; i < 100; i++ {
				if l.TryLock(other) {
					t.Fatal("TryLock succeeded on a held lock")
				}
			}
			l.Unlock(holder)

			// The lock must still work normally afterwards.
			if !l.TryLock(other) {
				t.Fatal("TryLock failed on a free lock")
			}
			l.Unlock(other)
			l.Lock(holder)
			l.Unlock(holder)
		})
	}
}
