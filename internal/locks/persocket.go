package locks

import (
	"sync/atomic"

	"concord/internal/task"
	"concord/internal/topology"
)

// paddedCounter is a cacheline-padded reader counter so per-socket
// counters do not false-share.
type paddedCounter struct {
	n atomic.Int64
	_ [7]int64
}

// PerSocketRWLock is the distributed, readers-intensive readers-writer
// design of Calciu et al. (PPoPP '13): readers touch only their own
// socket's counter, writers sweep all of them. It is the lock a C3 user
// switches *to* for read-mostly phases (§3.1.1 scenario (i)) and the
// structural sibling of what BRAVO approximates with its reader table.
type PerSocketRWLock struct {
	profBase
	topo    *topology.Topology
	readers []paddedCounter // one per socket
	writer  atomic.Int32
}

// NewPerSocketRWLock returns a per-socket distributed RW lock on topo.
func NewPerSocketRWLock(name string, topo *topology.Topology) *PerSocketRWLock {
	return &PerSocketRWLock{
		profBase: profBase{hookable: newHookable(name)},
		topo:     topo,
		readers:  make([]paddedCounter, topo.NumSockets()),
	}
}

// RLock implements RWLock.
func (l *PerSocketRWLock) RLock(t *task.T) {
	start := l.noteAcquire(t)
	c := &l.readers[t.Socket()]
	contended := false
	for i := 0; ; i++ {
		c.n.Add(1)
		if l.writer.Load() == 0 {
			break
		}
		// A writer is active or arriving: back out and wait.
		c.n.Add(-1)
		if !contended {
			contended = true
			l.noteContended(t, start)
		}
		for j := 0; l.writer.Load() != 0; j++ {
			spinYield(j)
		}
	}
	l.noteAcquired(t, start, true)
}

// TryRLock implements RWLock.
func (l *PerSocketRWLock) TryRLock(t *task.T) bool {
	start := l.noteAcquire(t)
	c := &l.readers[t.Socket()]
	c.n.Add(1)
	if l.writer.Load() != 0 {
		c.n.Add(-1)
		return false
	}
	l.noteAcquired(t, start, true)
	return true
}

// RUnlock implements RWLock.
func (l *PerSocketRWLock) RUnlock(t *task.T) {
	l.noteRelease(t, true)
	l.readers[t.Socket()].n.Add(-1)
}

// Lock implements Lock (writer side): claim the writer flag, then wait
// for every socket's readers to drain.
func (l *PerSocketRWLock) Lock(t *task.T) {
	start := l.noteAcquire(t)
	if !l.writer.CompareAndSwap(0, 1) {
		l.noteContended(t, start)
		for i := 0; !l.writer.CompareAndSwap(0, 1); i++ {
			spinYield(i)
		}
	}
	for s := range l.readers {
		for i := 0; l.readers[s].n.Load() > 0; i++ {
			spinYield(i)
		}
	}
	l.noteAcquired(t, start, false)
}

// TryLock implements Lock.
func (l *PerSocketRWLock) TryLock(t *task.T) bool {
	start := l.noteAcquire(t)
	if !l.writer.CompareAndSwap(0, 1) {
		return false
	}
	for s := range l.readers {
		if l.readers[s].n.Load() > 0 {
			l.writer.Store(0)
			return false
		}
	}
	l.noteAcquired(t, start, false)
	return true
}

// Unlock implements Lock (writer side).
func (l *PerSocketRWLock) Unlock(t *task.T) {
	l.noteRelease(t, false)
	l.writer.Store(0)
}

var _ RWLock = (*PerSocketRWLock)(nil)
