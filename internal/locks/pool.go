package locks

import (
	"sync/atomic"

	"concord/internal/task"
)

// Queue-node pooling: every queue lock needs one node per contended
// acquisition. A kernel MCS lock keeps that node on the acquiring
// thread's stack; in Go the node must outlive the acquiring frame (it
// is published through atomic pointers), so the naive implementation
// heap-allocates per acquire — the hot-path cost this file removes.
//
// Nodes are cached per *task* (see task.TakeNode/PutNode): the task that
// takes a node is always the task that frees it, on its own goroutine,
// so the cache needs no synchronisation, no sync.Pool GC interaction,
// and no cross-CPU traffic. Nodes of one class chain through an
// intrusive free link. Freed nodes may still be *read* by stragglers
// holding stale pointers (an in-flight unpark, a TryLock that loaded
// the old tail); every such field is atomic, and each take resets state
// before the node is republished, so reuse is race-free. Where reuse
// would break an algorithm's correctness argument — CLH TryLock's
// check-then-CAS assumed single-use nodes — the algorithm carries a
// generation stamp to detect it (see clhNode).
//
// SetNodePooling(false) restores the per-acquire allocation globally;
// the benchmark harness uses it to regenerate the pre-pooling baseline
// (BENCH_seed.json), and it doubles as a kill switch.

// poolingOff disables node reuse when set (inverted so the zero value
// means "pooling on").
var poolingOff atomic.Bool

// SetNodePooling toggles queue-node pooling process-wide. Off means
// every contended acquisition allocates, as the seed implementation did.
func SetNodePooling(on bool) { poolingOff.Store(!on) }

// NodePooling reports whether queue-node pooling is enabled.
func NodePooling() bool { return !poolingOff.Load() }

// qnodeAllocs counts queue-node heap allocations (pool misses). Pool
// hits are deliberately not counted: a per-acquire shared-counter
// increment is exactly the kind of hot-path cacheline traffic this file
// exists to remove, while misses are rare by construction (first
// acquisition per task per nesting depth) and stop growing in steady
// state — which is the signal the telemetry layer exports.
var qnodeAllocs atomic.Int64

// QnodeAllocs reports cumulative queue-node heap allocations; a flat
// curve in steady state is the pooling health signal.
func QnodeAllocs() int64 { return qnodeAllocs.Load() }

// Node cache classes, one per node type (allocated at init, before any
// task exists).
var (
	mcsNodeClass   = task.AllocNodeClass()
	clhNodeClass   = task.AllocNodeClass()
	qspinNodeClass = task.AllocNodeClass()
	cnaNodeClass   = task.AllocNodeClass()
	shflNodeClass  = task.AllocNodeClass()
	semNodeClass   = task.AllocNodeClass()
)

// --- MCS ---

func takeMCSNode(t *task.T) *mcsNode {
	if !poolingOff.Load() {
		if v := t.TakeNode(mcsNodeClass); v != nil {
			n := v.(*mcsNode)
			t.PutNode(mcsNodeClass, anyNode(n.free))
			n.free = nil
			n.locked.Store(false)
			n.next.Store(nil)
			return n
		}
	}
	qnodeAllocs.Add(1)
	return &mcsNode{}
}

func putMCSNode(t *task.T, n *mcsNode) {
	if poolingOff.Load() {
		return
	}
	n.free, _ = t.TakeNode(mcsNodeClass).(*mcsNode)
	t.PutNode(mcsNodeClass, n)
}

// anyNode converts a possibly-nil typed node pointer to the cache's
// `any` without wrapping a typed nil (which TakeNode callers would
// mistake for a non-empty cache).
func anyNode[N any](n *N) any {
	if n == nil {
		return nil
	}
	return n
}

// --- CLH ---

func takeCLHNode(t *task.T) *clhNode {
	if !poolingOff.Load() {
		if v := t.TakeNode(clhNodeClass); v != nil {
			n := v.(*clhNode)
			t.PutNode(clhNodeClass, anyNode(n.free))
			n.free = nil
			// Bump the generation so stale observers of the previous
			// life can detect the reuse; the lock bit starts clear.
			n.state.Store((n.state.Load() &^ clhLocked) + clhGenStep)
			return n
		}
	}
	qnodeAllocs.Add(1)
	return &clhNode{}
}

func putCLHNode(t *task.T, n *clhNode) {
	if poolingOff.Load() {
		return
	}
	n.free, _ = t.TakeNode(clhNodeClass).(*clhNode)
	t.PutNode(clhNodeClass, n)
}

// --- qspinlock ---

func takeQspinNode(t *task.T) *qspinNode {
	if !poolingOff.Load() {
		if v := t.TakeNode(qspinNodeClass); v != nil {
			n := v.(*qspinNode)
			t.PutNode(qspinNodeClass, anyNode(n.free))
			n.free = nil
			n.locked.Store(false)
			n.next.Store(nil)
			return n
		}
	}
	qnodeAllocs.Add(1)
	return &qspinNode{}
}

func putQspinNode(t *task.T, n *qspinNode) {
	if poolingOff.Load() {
		return
	}
	n.free, _ = t.TakeNode(qspinNodeClass).(*qspinNode)
	t.PutNode(qspinNodeClass, n)
}

// --- CNA ---

func takeCNANode(t *task.T, socket int) *cnaNode {
	if !poolingOff.Load() {
		if v := t.TakeNode(cnaNodeClass); v != nil {
			n := v.(*cnaNode)
			t.PutNode(cnaNodeClass, anyNode(n.free))
			n.free = nil
			n.socket = socket
			n.locked.Store(false)
			n.next.Store(nil)
			return n
		}
	}
	qnodeAllocs.Add(1)
	return &cnaNode{socket: socket}
}

func putCNANode(t *task.T, n *cnaNode) {
	if poolingOff.Load() {
		return
	}
	n.free, _ = t.TakeNode(cnaNodeClass).(*cnaNode)
	t.PutNode(cnaNodeClass, n)
}

// --- ShflLock ---

func takeShflNode(t *task.T, enqueueNS int64) *shflNode {
	if !poolingOff.Load() {
		if v := t.TakeNode(shflNodeClass); v != nil {
			n := v.(*shflNode)
			t.PutNode(shflNodeClass, anyNode(n.free))
			n.free = nil
			n.Task = t
			n.EnqueueNS = enqueueNS
			n.bypass.Store(0)
			n.status.Store(shflWaiting)
			n.next.Store(nil)
			// A wakeup posted to the node's previous life may still be
			// pending (or in flight — harmless either way, waiters
			// re-check their status); start this life without it.
			n.park.Drain()
			return n
		}
	}
	qnodeAllocs.Add(1)
	n := &shflNode{Waiter: Waiter{Task: t, EnqueueNS: enqueueNS}}
	// The parker channel is allocated exactly once, before the node is
	// ever published, so a waker's Unpark never races a reuse.
	n.park.Init()
	return n
}

func putShflNode(t *task.T, n *shflNode) {
	if poolingOff.Load() {
		return
	}
	n.free, _ = t.TakeNode(shflNodeClass).(*shflNode)
	t.PutNode(shflNodeClass, n)
}

// --- RWSem waiters ---

func takeSemWaiter(t *task.T) *semWaiter {
	if !poolingOff.Load() {
		if v := t.TakeNode(semNodeClass); v != nil {
			w := v.(*semWaiter)
			t.PutNode(semNodeClass, anyNode(w.free))
			w.free = nil
			w.next = nil
			w.granted.Store(false)
			w.parker.Drain()
			return w
		}
	}
	qnodeAllocs.Add(1)
	w := &semWaiter{}
	w.parker.Init()
	return w
}

func putSemWaiter(t *task.T, w *semWaiter) {
	if poolingOff.Load() {
		return
	}
	w.free, _ = t.TakeNode(semNodeClass).(*semWaiter)
	t.PutNode(semNodeClass, w)
}
