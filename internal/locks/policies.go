package locks

import (
	"sync"

	"concord/internal/task"
)

// Native (compiled-in Go) policy hook tables. These are the
// "pre-compiled versions of the same locks" that the paper's evaluation
// compares Concord against (§5): each corresponds to a policy that can
// equally be expressed as a verified cBPF program and attached through
// the framework. Keeping both lets the benchmarks isolate the cost of
// the policy *mechanism* from the policy itself.

// FIFOHooks returns an empty hook table: strict queue order, no
// shuffling. Attaching it is equivalent to detaching policies.
func FIFOHooks() *Hooks { return &Hooks{Name: "fifo"} }

// NUMAHooks groups waiters from the shuffler's socket together (the
// ShflLock paper's flagship policy; the one used for Figure 2(b)).
func NUMAHooks() *Hooks {
	return &Hooks{
		Name: "numa",
		CmpNode: func(info *ShuffleInfo) bool {
			return info.Curr.Task.Socket() == info.Shuffler.Task.Socket()
		},
	}
}

// PriorityHooks moves waiters with higher scheduling priority than the
// shuffler ahead (lock priority boosting, §3.1.1). Tie-break: very long
// waiters are also grouped so low-priority tasks keep progressing.
func PriorityHooks(longWaitNS int64) *Hooks {
	return &Hooks{
		Name: "priority",
		CmpNode: func(info *ShuffleInfo) bool {
			if info.Curr.Task.Priority() > info.Shuffler.Task.Priority() {
				return true
			}
			return longWaitNS > 0 && info.Curr.WaitNS(info.NowNS) > longWaitNS
		},
	}
}

// InheritanceHooks prioritizes waiters that already hold other locks
// (lock inheritance, §3.1.1): a task deep in a multi-lock operation is
// holding everyone else back, so it is moved toward the head of this
// lock's queue.
func InheritanceHooks() *Hooks {
	return &Hooks{
		Name: "inheritance",
		CmpNode: func(info *ShuffleInfo) bool {
			return info.Curr.Task.HeldCount() > info.Shuffler.Task.HeldCount()
		},
	}
}

// AMPHooks prefers waiters running on fast cores (task-fair locks on
// asymmetric multicore processors, §3.1.2): handing the lock to slow
// cores last keeps critical-section throughput high.
func AMPHooks() *Hooks {
	return &Hooks{
		Name: "amp",
		CmpNode: func(info *ShuffleInfo) bool {
			return info.Curr.Task.Speed() > info.Shuffler.Task.Speed()
		},
	}
}

// SCLHooks approximates scheduler-cooperative locking (Patel et al.,
// EuroSys '20; §3.1.2): waiters whose average critical section is
// shorter than the shuffler's are grouped first, so lock hogs cannot
// subvert scheduling goals.
func SCLHooks() *Hooks {
	return &Hooks{
		Name: "scl",
		CmpNode: func(info *ShuffleInfo) bool {
			return info.Curr.Task.CSAverage() < info.Shuffler.Task.CSAverage()
		},
	}
}

// VCPUHooks prioritizes waiters whose vCPU is running and has quota left
// (exposing scheduler semantics to the lock, §3.1.1), avoiding handoff
// to a preempted vCPU.
func VCPUHooks() *Hooks {
	return &Hooks{
		Name: "vcpu",
		CmpNode: func(info *ShuffleInfo) bool {
			c, s := info.Curr.Task, info.Shuffler.Task
			if c.Preempted() {
				return false
			}
			return s.Preempted() || c.Quota() > s.Quota()
		},
		ScheduleWaiter: func(info *WaitInfo) int {
			if info.Curr.Task.Preempted() {
				return WaitParkNow
			}
			return WaitDefault
		},
	}
}

// SpinThenParkHooks exposes the adaptable parking strategy (§3.1.1):
// waiters keep spinning while their wait is below spinNS and park beyond
// parkNS, with the lock's default in between.
func SpinThenParkHooks(spinNS, parkNS int64) *Hooks {
	return &Hooks{
		Name: "spin-then-park",
		ScheduleWaiter: func(info *WaitInfo) int {
			switch {
			case info.SpinNS < spinNS:
				return WaitKeepSpinning
			case info.SpinNS >= parkNS:
				return WaitParkNow
			default:
				return WaitDefault
			}
		},
	}
}

// BoundedShuffleHooks wraps another table, additionally skipping
// shuffling after maxRounds rounds — the "statically bounding the number
// of shuffling rounds minimizes starvation" invariant of §4.2 expressed
// as a composable policy.
func BoundedShuffleHooks(inner *Hooks, maxRounds int) *Hooks {
	out := *inner
	out.Name = inner.Name + "+bounded"
	prev := inner.SkipShuffle
	out.SkipShuffle = func(info *ShuffleInfo) bool {
		if info.Round > maxRounds {
			return true
		}
		if prev != nil {
			return prev(info)
		}
		return false
	}
	return &out
}

// ComposeHooks merges two tables: decision hooks (cmp_node, skip_shuffle,
// schedule_waiter) come from primary when present, otherwise secondary;
// profiling callbacks are chained so both observe every event. This is
// the simple, conflict-free subset of policy composition; the framework
// layer adds conflict detection on top (§6 "Composing policies").
func ComposeHooks(primary, secondary *Hooks) *Hooks {
	if primary == nil {
		return secondary
	}
	if secondary == nil {
		return primary
	}
	out := &Hooks{Name: primary.Name + "+" + secondary.Name}

	out.CmpNode = primary.CmpNode
	if out.CmpNode == nil {
		out.CmpNode = secondary.CmpNode
	}
	out.SkipShuffle = primary.SkipShuffle
	if out.SkipShuffle == nil {
		out.SkipShuffle = secondary.SkipShuffle
	}
	out.ScheduleWaiter = primary.ScheduleWaiter
	if out.ScheduleWaiter == nil {
		out.ScheduleWaiter = secondary.ScheduleWaiter
	}

	chain := func(a, b func(ev *Event)) func(ev *Event) {
		switch {
		case a == nil:
			return b
		case b == nil:
			return a
		default:
			return func(ev *Event) { a(ev); b(ev) }
		}
	}
	out.OnAcquire = chain(primary.OnAcquire, secondary.OnAcquire)
	out.OnContended = chain(primary.OnContended, secondary.OnContended)
	out.OnAcquired = chain(primary.OnAcquired, secondary.OnAcquired)
	out.OnRelease = chain(primary.OnRelease, secondary.OnRelease)
	return out
}

// PriorityInheritanceHooks returns a hook table implementing priority
// inheritance for one ShflLock (§3.1.2, after Kim et al.'s I/O-stack
// anomaly): when a waiter with higher scheduling priority than the
// current holder arrives, the holder is boosted to the waiter's
// priority; the boost is undone when that holder releases the lock.
func PriorityInheritanceHooks(l *ShflLock) *Hooks {
	type boost struct {
		task *task.T
		orig int64
	}
	var mu sync.Mutex
	var active *boost
	return &Hooks{
		Name: "priority-inheritance",
		OnContended: func(ev *Event) {
			holder := l.Holder()
			if holder == nil || ev.Task == nil {
				return
			}
			want := ev.Task.Priority()
			if want <= holder.Priority() {
				return
			}
			mu.Lock()
			if active == nil {
				active = &boost{task: holder, orig: holder.Priority()}
			}
			mu.Unlock()
			holder.BoostPriority(want)
		},
		OnRelease: func(ev *Event) {
			mu.Lock()
			if active != nil && active.task == ev.Task {
				ev.Task.SetPriority(active.orig)
				active = nil
			}
			mu.Unlock()
		},
	}
}
