package locks

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"concord/internal/task"
	"concord/internal/topology"
)

// buildQueue launches n waiters against a held lock and blocks until all
// are queued, returning a function that records acquisition order.
func buildQueue(t *testing.T, l *ShflLock, topo *topology.Topology, tasks []*task.T) (order *[]int, done *sync.WaitGroup) {
	t.Helper()
	var mu sync.Mutex
	ord := make([]int, 0, len(tasks))
	var wg sync.WaitGroup
	var queued atomic.Int32
	for i, tk := range tasks {
		wg.Add(1)
		go func(i int, tk *task.T) {
			defer wg.Done()
			queued.Add(1)
			l.Lock(tk)
			mu.Lock()
			ord = append(ord, i)
			mu.Unlock()
			l.Unlock(tk)
		}(i, tk)
	}
	// Wait until every waiter is actually in the queue (or the fast-path
	// barger has at least started). QueueLen is what the lock maintains —
	// a semantic signal, so no wall-clock deadline: if a waiter never
	// queues, the test hangs and the binary's deadline dumps goroutines.
	for l.QueueLen() < len(tasks) {
		runtime.Gosched()
	}
	return &ord, &wg
}

func TestShflLockNUMAGrouping(t *testing.T) {
	topo := topology.Paper() // 8 sockets × 10 CPUs
	l := NewShflLock("numa", WithMaxRounds(64), WithMaxScan(32), WithMaxBatch(32))
	l.HookSlot().Replace("numa", NUMAHooks())

	holder := task.New(topo)
	l.Lock(holder)

	// 16 waiters alternating between two sockets.
	tasks := make([]*task.T, 16)
	for i := range tasks {
		tasks[i] = task.NewOnCPU(topo, (i%2)*10) // socket 0 or 1
	}
	order, wg := buildQueue(t, l, topo, tasks)
	// Keep holding until the head waiter has shuffled the queue:
	// shuffling happens while the head spins on the held lock word. The
	// waiters are all queued, so the shuffler is guaranteed to run; wait
	// on its counter rather than racing a wall-clock deadline against a
	// loaded scheduler.
	for {
		if _, moves, _ := l.ShuffleStats(); moves > 0 {
			break
		}
		runtime.Gosched()
	}
	l.Unlock(holder)
	wg.Wait()

	if len(*order) != len(tasks) {
		t.Fatalf("got %d acquisitions, want %d", len(*order), len(tasks))
	}
	// Count socket transitions in acquisition order. Interleaved FIFO
	// would give ~15 transitions; NUMA grouping must do clearly better.
	transitions := 0
	for i := 1; i < len(*order); i++ {
		if tasks[(*order)[i]].Socket() != tasks[(*order)[i-1]].Socket() {
			transitions++
		}
	}
	rounds, moves, _ := l.ShuffleStats()
	if moves == 0 {
		t.Fatalf("shuffler never moved a node (rounds=%d)", rounds)
	}
	if transitions >= len(tasks)-1 {
		t.Errorf("no grouping: %d socket transitions in %v", transitions, *order)
	}
	t.Logf("socket transitions: %d, shuffle rounds: %d, moves: %d", transitions, rounds, moves)
	if got := l.SafetyError(); got != "" {
		t.Errorf("safety tripped: %s", got)
	}
}

func TestShflLockFIFOWithoutPolicy(t *testing.T) {
	topo := topology.Paper()
	l := NewShflLock("fifo")
	holder := task.New(topo)
	l.Lock(holder)
	tasks := make([]*task.T, 8)
	for i := range tasks {
		tasks[i] = task.New(topo)
	}
	_, wg := buildQueue(t, l, topo, tasks)
	l.Unlock(holder)
	wg.Wait()
	rounds, moves, _ := l.ShuffleStats()
	if rounds != 0 || moves != 0 {
		t.Errorf("shuffling without policy: rounds=%d moves=%d", rounds, moves)
	}
}

func TestShflLockAdversarialPolicyStillLive(t *testing.T) {
	// A policy that always says "move" must not break liveness or lose
	// waiters: the batch simply extends in order.
	topo := topology.Paper()
	l := NewShflLock("adversarial", WithMaxRounds(1024))
	l.HookSlot().Replace("always", &Hooks{
		Name:    "always",
		CmpNode: func(*ShuffleInfo) bool { return true },
	})
	exerciseMutex(t, l, topo, 8, 200)
	if got := l.SafetyError(); got != "" {
		t.Errorf("safety tripped: %s", got)
	}
}

func TestShflLockStarvationBound(t *testing.T) {
	// A policy that always favours even-socket waiters: odd-socket
	// waiters must still complete thanks to the bypass budget.
	topo := topology.Paper()
	l := NewShflLock("starve", WithBypassBudget(4), WithMaxRounds(1024))
	l.HookSlot().Replace("evenfirst", &Hooks{
		Name: "evenfirst",
		CmpNode: func(info *ShuffleInfo) bool {
			return info.Curr.Task.Socket()%2 == 0
		},
	})
	// Starvation would keep an odd-socket waiter queued forever: the run
	// never finishes and the test binary's deadline reports the hang with
	// a full goroutine dump — strictly more diagnosable than a local
	// wall-clock bound that flakes on slow machines.
	exerciseMutex(t, l, topo, 10, 200)
}

func TestShflLockScheduleWaiterHookConsulted(t *testing.T) {
	topo := topology.Paper()
	l := NewShflLock("sw", WithBlocking(true), WithSpinBudget(1))
	var consulted atomic.Int64
	l.HookSlot().Replace("spin", &Hooks{
		Name: "spin",
		ScheduleWaiter: func(info *WaitInfo) int {
			consulted.Add(1)
			return WaitKeepSpinning
		},
	})
	exerciseMutex(t, l, topo, 4, 50)
	if consulted.Load() == 0 {
		t.Error("schedule_waiter never consulted")
	}
}

func TestShflLockParkNowDecision(t *testing.T) {
	topo := topology.Paper()
	l := NewShflLock("park", WithBlocking(true), WithSpinBudget(1<<30))
	var parked atomic.Int64
	l.HookSlot().Replace("park", &Hooks{
		Name: "park",
		ScheduleWaiter: func(info *WaitInfo) int {
			parked.Add(1)
			return WaitParkNow
		},
	})
	exerciseMutex(t, l, topo, 4, 50)
	if parked.Load() == 0 {
		t.Error("waiters never hit the park decision")
	}
}

func TestShflLockSkipShuffle(t *testing.T) {
	topo := topology.Paper()
	l := NewShflLock("skip", WithMaxRounds(1024))
	l.HookSlot().Replace("skipall", &Hooks{
		Name:        "skipall",
		CmpNode:     func(*ShuffleInfo) bool { return true },
		SkipShuffle: func(*ShuffleInfo) bool { return true },
	})
	exerciseMutex(t, l, topo, 6, 100)
	_, moves, skips := l.ShuffleStats()
	if moves != 0 {
		t.Errorf("moves = %d despite skip_shuffle", moves)
	}
	if skips == 0 {
		t.Error("skip_shuffle never fired")
	}
}

func TestShflLockDisablePolicyQuarantine(t *testing.T) {
	topo := topology.Paper()
	l := NewShflLock("q")
	var fired atomic.Int64
	l.HookSlot().Replace("h", &Hooks{
		Name:       "h",
		OnAcquired: func(*Event) { fired.Add(1) },
	})
	tk := task.New(topo)
	l.Lock(tk)
	l.Unlock(tk)
	if fired.Load() != 1 {
		t.Fatalf("hook fired %d times, want 1", fired.Load())
	}
	l.disablePolicy("test quarantine")
	l.Lock(tk)
	l.Unlock(tk)
	if fired.Load() != 1 {
		t.Errorf("hook fired after quarantine")
	}
	if l.SafetyError() != "test quarantine" {
		t.Errorf("SafetyError = %q", l.SafetyError())
	}
	l.ResetSafety()
	l.Lock(tk)
	l.Unlock(tk)
	if fired.Load() != 2 {
		t.Errorf("hook did not fire after ResetSafety")
	}
}

func TestCNALockPromotes(t *testing.T) {
	topo := topology.Paper()
	l := NewCNALock("cna", 16, 64)
	var wg sync.WaitGroup
	for w := 0; w < 12; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tk := task.NewOnCPU(topo, (w%4)*10) // four sockets
			for i := 0; i < 200; i++ {
				l.Lock(tk)
				if i&3 == 0 {
					runtime.Gosched()
				}
				l.Unlock(tk)
			}
		}(w)
	}
	wg.Wait()
	t.Logf("CNA promotions: %d", l.Promotions())
}

func TestCohortLockBatching(t *testing.T) {
	topo := topology.New(2, 4)
	l := NewCohortLock("cohort", topo, 4)
	// Socket-ordered handoff under contention; correctness is covered by
	// the mutual-exclusion harness, here we check cross-socket progress.
	var wg sync.WaitGroup
	var acquisitions [2]atomic.Int64
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tk := task.NewOnCPU(topo, (w%2)*4)
			for i := 0; i < 200; i++ {
				l.Lock(tk)
				acquisitions[tk.Socket()].Add(1)
				if i&3 == 0 {
					runtime.Gosched()
				}
				l.Unlock(tk)
			}
		}(w)
	}
	wg.Wait()
	if acquisitions[0].Load() != 800 || acquisitions[1].Load() != 800 {
		t.Errorf("acquisitions = %d/%d, want 800/800",
			acquisitions[0].Load(), acquisitions[1].Load())
	}
}

func TestShflLockHolderTracking(t *testing.T) {
	topo := topology.Paper()
	l := NewShflLock("holder")
	tk := task.New(topo)
	if l.Holder() != nil {
		t.Fatal("free lock has holder")
	}
	l.Lock(tk)
	if l.Holder() != tk {
		t.Fatal("holder not tracked")
	}
	l.Unlock(tk)
	if l.Holder() != nil {
		t.Fatal("holder survived unlock")
	}
}

func TestPriorityInheritance(t *testing.T) {
	topo := topology.Paper()
	l := NewShflLock("pi")
	l.HookSlot().Replace("pi", PriorityInheritanceHooks(l))

	low := task.New(topo)
	low.SetPriority(task.PrioLow)
	high := task.New(topo)
	high.SetPriority(task.PrioHigh)

	l.Lock(low)
	// A high-priority task contends: the holder must be boosted.
	go func() {
		l.Lock(high)
		l.Unlock(high)
	}()
	// The boost happens when the contender enqueues; wait on the priority
	// itself (a hang means the boost never fires and the binary's
	// deadline reports it).
	for low.Priority() != task.PrioHigh {
		runtime.Gosched()
	}
	l.Unlock(low)
	// The boost is undone at release.
	if low.Priority() != task.PrioLow {
		t.Errorf("priority after release = %d, want restored %d", low.Priority(), task.PrioLow)
	}
	// Let the high task finish.
	for l.Holder() != nil {
		runtime.Gosched()
	}
}
