package locks

import (
	"sync/atomic"

	"concord/internal/task"
)

// bravoTableSize is the visible-readers table size. Dice & Kogan use a
// large global table; a per-lock table of this size behaves identically
// for the workloads here and keeps locks independent.
const bravoTableSize = 1024

// bravoInhibitMultiplier N: after a revocation costing R ns, biasing is
// re-enabled only after N*R ns, bounding worst-case writer slowdown to
// roughly 1/N (the paper's accounting argument).
const bravoInhibitMultiplier = 9

// BRAVO wraps any readers-writer lock with Biased Locking for
// Reader-Writer locks (Dice & Kogan, ATC '19), the second lock evaluated
// in the paper (Figure 2(a)). While the bias is enabled, readers publish
// themselves in a visible-readers slot and skip the underlying lock
// entirely; a writer revokes the bias by flipping it off and waiting for
// every slot to drain, then inhibits re-biasing for a window proportional
// to the revocation cost.
//
// Concord's lock-switching use case (§3.1.1) maps to toggling this bias
// at runtime: SetBias(false) degrades the lock to its neutral underlying
// implementation, SetBias(true) restores the distributed reader path.
type BRAVO struct {
	hookable
	under RWLock

	bias         atomic.Bool
	inhibitUntil atomic.Int64
	table        [bravoTableSize]atomic.Pointer[task.T]

	// fastReads / slowReads count read acquisitions taking each path
	// (reports and tests).
	fastReads atomic.Int64
	slowReads atomic.Int64
}

// NewBRAVO wraps under with reader biasing (initially enabled).
func NewBRAVO(name string, under RWLock) *BRAVO {
	b := &BRAVO{hookable: newHookable(name), under: under}
	b.bias.Store(true)
	return b
}

// Underlying returns the wrapped lock.
func (b *BRAVO) Underlying() RWLock { return b.under }

// Biased reports whether reader biasing is currently enabled.
func (b *BRAVO) Biased() bool { return b.bias.Load() }

// SetBias forces the bias state; turning it off performs a writer-style
// revocation so no fast reader remains published. This is the switch a
// Concord lock-switching policy flips.
func (b *BRAVO) SetBias(on bool) {
	if on {
		b.bias.Store(true)
		return
	}
	if b.bias.CompareAndSwap(true, false) {
		b.revoke()
	}
}

// ReadCounts reports fast-path and slow-path read acquisitions.
func (b *BRAVO) ReadCounts() (fast, slow int64) {
	return b.fastReads.Load(), b.slowReads.Load()
}

func (b *BRAVO) slotFor(t *task.T) *atomic.Pointer[task.T] {
	// Mix task identity; a multiplicative hash suffices for slot spread.
	h := uint64(t.ID()) * 0x9e3779b97f4a7c15
	return &b.table[h%bravoTableSize]
}

// RLock implements RWLock.
func (b *BRAVO) RLock(t *task.T) {
	start := b.now()
	if h, release := b.getHooks(); h != nil {
		if h.OnAcquire != nil {
			emit(t, h.OnAcquire, Event{LockID: b.id, Task: t, NowNS: start, Reader: true})
		}
		release.Release()
	} else {
		release.Release()
	}

	if b.bias.Load() {
		slot := b.slotFor(t)
		if slot.CompareAndSwap(nil, t) {
			if b.bias.Load() {
				// Fast path: published as a visible reader.
				b.fastReads.Add(1)
				b.finishRead(t, start)
				return
			}
			// Bias was revoked between the check and the publish; back
			// out and take the slow path.
			slot.Store(nil)
		}
	}

	b.under.RLock(t)
	b.slowReads.Add(1)
	// Readers re-enable the bias once the inhibition window has passed.
	if !b.bias.Load() && b.now() >= b.inhibitUntil.Load() {
		b.bias.Store(true)
	}
	b.finishRead(t, start)
}

// TryRLock implements RWLock.
func (b *BRAVO) TryRLock(t *task.T) bool {
	start := b.now()
	if b.bias.Load() {
		slot := b.slotFor(t)
		if slot.CompareAndSwap(nil, t) {
			if b.bias.Load() {
				b.fastReads.Add(1)
				b.finishRead(t, start)
				return true
			}
			slot.Store(nil)
		}
	}
	if b.under.TryRLock(t) {
		b.slowReads.Add(1)
		b.finishRead(t, start)
		return true
	}
	return false
}

func (b *BRAVO) finishRead(t *task.T, start int64) {
	now := b.now()
	if h, release := b.getHooks(); h != nil {
		if h.OnAcquired != nil {
			emit(t, h.OnAcquired, Event{
				LockID: b.id, Task: t, NowNS: now, WaitNS: now - start, Reader: true,
			})
		}
		release.Release()
	} else {
		release.Release()
	}
	t.NoteAcquired(b.id)
}

// RUnlock implements RWLock.
func (b *BRAVO) RUnlock(t *task.T) {
	slot := b.slotFor(t)
	if slot.Load() == t {
		slot.Store(nil)
	} else {
		b.under.RUnlock(t)
	}
	t.NoteReleased(b.id)
	if h, release := b.getHooks(); h != nil {
		if h.OnRelease != nil {
			emit(t, h.OnRelease, Event{LockID: b.id, Task: t, NowNS: b.now(), Reader: true})
		}
		release.Release()
	} else {
		release.Release()
	}
}

// Lock implements Lock (writer side): take the underlying write lock,
// then revoke the bias so no fast readers remain.
func (b *BRAVO) Lock(t *task.T) {
	b.under.Lock(t)
	if b.bias.Load() {
		b.bias.Store(false)
		b.revoke()
	}
	t.NoteAcquired(b.id)
	t.EnterCS(b.now())
}

// TryLock implements Lock.
func (b *BRAVO) TryLock(t *task.T) bool {
	if !b.under.TryLock(t) {
		return false
	}
	if b.bias.Load() {
		b.bias.Store(false)
		b.revoke()
	}
	t.NoteAcquired(b.id)
	t.EnterCS(b.now())
	return true
}

// revoke waits for every visible-reader slot to drain, then arms the
// re-bias inhibition window proportional to the revocation cost.
func (b *BRAVO) revoke() {
	start := b.now()
	for i := range b.table {
		for j := 0; b.table[i].Load() != nil; j++ {
			spinYield(j)
		}
	}
	cost := b.now() - start
	b.inhibitUntil.Store(b.now() + cost*bravoInhibitMultiplier)
}

// Unlock implements Lock (writer side).
func (b *BRAVO) Unlock(t *task.T) {
	t.ExitCS(b.now())
	t.NoteReleased(b.id)
	b.under.Unlock(t)
}

var _ RWLock = (*BRAVO)(nil)
