package locks

import (
	"sync/atomic"

	"concord/internal/task"
)

// --- MCS lock ---

// mcsNode is one waiter's queue entry, drawn from the acquiring task's
// node cache (see pool.go) so the contended path is allocation-free,
// and padded to a cache line so two pooled nodes spinning side by side
// never share one. The free link is owner-goroutine-only; locked and
// next stay atomic because a straggling predecessor may still read a
// freed node.
type mcsNode struct {
	locked atomic.Bool
	next   atomic.Pointer[mcsNode]
	free   *mcsNode
	_      [40]byte // pad the 24 bytes above to a 64-byte line
}

// MCSLock is the classic Mellor-Crummey/Scott queue lock: each waiter
// spins on its own node, so handoff costs a single cacheline transfer.
// This is the structural ancestor of qspinlock and ShflLock (§2.2).
type MCSLock struct {
	profBase
	_    [64]byte // keep the enqueue word off the hookable's line
	tail atomic.Pointer[mcsNode]
	_    [56]byte // enqueuers hammer tail; owner is release-path-only
	// owner holds the queue node of the current lock holder; a kernel
	// MCS keeps it on the holder's stack, here the lock carries it.
	owner atomic.Pointer[mcsNode]
}

// NewMCSLock returns an MCS queue spinlock.
func NewMCSLock(name string) *MCSLock {
	return &MCSLock{profBase: profBase{hookable: newHookable(name)}}
}

// Lock implements Lock.
func (l *MCSLock) Lock(t *task.T) {
	start := l.noteAcquire(t)
	n := takeMCSNode(t)
	prev := l.tail.Swap(n)
	if prev != nil {
		n.locked.Store(true)
		prev.next.Store(n)
		l.noteContended(t, start)
		for i := 0; n.locked.Load(); i++ {
			spinYield(i)
		}
	}
	l.owner.Store(n)
	l.noteAcquired(t, start, false)
}

// TryLock implements Lock.
func (l *MCSLock) TryLock(t *task.T) bool {
	start := l.noteAcquire(t)
	n := takeMCSNode(t)
	if !l.tail.CompareAndSwap(nil, n) {
		putMCSNode(t, n)
		return false
	}
	l.owner.Store(n)
	l.noteAcquired(t, start, false)
	return true
}

// Unlock implements Lock.
func (l *MCSLock) Unlock(t *task.T) {
	l.noteRelease(t, false)
	n := l.owner.Load()
	next := n.next.Load()
	if next == nil {
		if l.tail.CompareAndSwap(n, nil) {
			// No successor ever saw n; safe to reuse immediately.
			putMCSNode(t, n)
			return
		}
		// An enqueue is in flight; wait for its next-pointer store.
		for i := 0; ; i++ {
			if next = n.next.Load(); next != nil {
				break
			}
			spinYield(i)
		}
	}
	// After the handoff store the successor spins on its own node and
	// the in-flight enqueuer (if any) has finished writing n.next, so n
	// is private again.
	next.locked.Store(false)
	putMCSNode(t, n)
}

// --- CLH lock ---

// CLH node state word: bit 0 is the lock bit, the remaining bits are a
// generation counter bumped on every reuse from the pool. Single-use
// nodes made "tail was X and X was unlocked" a sound acquisition
// argument; with pooled nodes the tail can ABA back to a recycled X, so
// TryLock revalidates the whole state word (same generation, still
// unlocked) after claiming the tail — see TryLock.
const (
	clhLocked  uint64 = 1
	clhGenStep uint64 = 2
)

// clhNode is a CLH queue entry; waiters spin on their *predecessor's*
// node rather than their own. Padded to a cache line (see mcsNode).
type clhNode struct {
	state atomic.Uint64 // gen<<1 | locked
	free  *clhNode
	_     [48]byte
}

// CLHLock is the Craig/Landin/Hagersten queue lock: implicit queue
// through a swapped tail pointer, spinning on the predecessor's flag.
// Nodes recycle through per-task caches in the textbook CLH manner: the
// acquirer adopts its quiescent predecessor node once the spin ends.
type CLHLock struct {
	profBase
	_    [64]byte
	tail atomic.Pointer[clhNode]
	_    [56]byte
	cur  atomic.Pointer[clhNode] // owner's node, released on unlock
}

// NewCLHLock returns a CLH queue spinlock.
func NewCLHLock(name string) *CLHLock {
	l := &CLHLock{profBase: profBase{hookable: newHookable(name)}}
	l.tail.Store(&clhNode{}) // sentinel: initially unlocked
	return l
}

// Lock implements Lock.
func (l *CLHLock) Lock(t *task.T) {
	start := l.noteAcquire(t)
	n := takeCLHNode(t)
	n.state.Or(clhLocked)
	prev := l.tail.Swap(n)
	if prev.state.Load()&clhLocked != 0 {
		l.noteContended(t, start)
		for i := 0; prev.state.Load()&clhLocked != 0; i++ {
			spinYield(i)
		}
	}
	// prev has drained: its owner released and nobody else will touch
	// it again, so this task adopts it for a later acquisition — the
	// classic CLH node-recycling argument.
	putCLHNode(t, prev)
	l.cur.Store(n)
	l.noteAcquired(t, start, false)
}

// TryLock implements Lock.
func (l *CLHLock) TryLock(t *task.T) bool {
	start := l.noteAcquire(t)
	prev := l.tail.Load()
	s0 := prev.state.Load()
	if s0&clhLocked != 0 {
		return false
	}
	n := takeCLHNode(t)
	n.state.Or(clhLocked)
	if !l.tail.CompareAndSwap(prev, n) {
		putCLHNode(t, n)
		return false
	}
	// The CAS proved tail was still prev, but with pooled nodes that is
	// no longer proof prev wasn't recycled and re-enqueued in between
	// (ABA). The generation stamp closes the hole: if prev's state word
	// still reads exactly s0 (same generation, unlocked), prev was
	// quiescent across the window and the acquisition is sound.
	if prev.state.Load() == s0 {
		putCLHNode(t, prev)
		l.cur.Store(n)
		l.noteAcquired(t, start, false)
		return true
	}
	// ABA detected: prev is live in a new life and the lock is actually
	// held. Undo the enqueue if no successor arrived yet.
	if l.tail.CompareAndSwap(n, prev) {
		putCLHNode(t, n)
		return false
	}
	// A successor already queued behind n and spins on it. n cannot be
	// withdrawn, so become a ghost waiter: wait for prev like a normal
	// acquirer (bounded by the holder's critical section — rare², this
	// needs the ABA *and* an enqueue inside the same window), then pass
	// the baton straight through without entering the critical section.
	for i := 0; prev.state.Load()&clhLocked != 0; i++ {
		spinYield(i)
	}
	putCLHNode(t, prev)
	n.state.And(^clhLocked)
	return false
}

// Unlock implements Lock.
func (l *CLHLock) Unlock(t *task.T) {
	l.noteRelease(t, false)
	l.cur.Load().state.And(^clhLocked)
}
