package locks

import (
	"sync/atomic"

	"concord/internal/task"
)

// --- MCS lock ---

// mcsNode is one waiter's queue entry. Nodes are per-acquisition and
// heap-allocated; a sync.Pool would remove the allocation but would also
// blur the algorithmic comparison, so we keep it explicit.
type mcsNode struct {
	locked atomic.Bool // true while the owner must wait
	next   atomic.Pointer[mcsNode]
}

// MCSLock is the classic Mellor-Crummey/Scott queue lock: each waiter
// spins on its own node, so handoff costs a single cacheline transfer.
// This is the structural ancestor of qspinlock and ShflLock (§2.2).
type MCSLock struct {
	profBase
	tail atomic.Pointer[mcsNode]
	// owner holds the queue node of the current lock holder; a kernel
	// MCS keeps it on the holder's stack, here the lock carries it.
	owner atomic.Pointer[mcsNode]
}

// NewMCSLock returns an MCS queue spinlock.
func NewMCSLock(name string) *MCSLock {
	return &MCSLock{profBase: profBase{hookable: newHookable(name)}}
}

// Lock implements Lock.
func (l *MCSLock) Lock(t *task.T) {
	start := l.noteAcquire(t)
	n := &mcsNode{}
	prev := l.tail.Swap(n)
	if prev != nil {
		n.locked.Store(true)
		prev.next.Store(n)
		l.noteContended(t, start)
		for i := 0; n.locked.Load(); i++ {
			spinYield(i)
		}
	}
	l.owner.Store(n)
	l.noteAcquired(t, start, false)
}

// TryLock implements Lock.
func (l *MCSLock) TryLock(t *task.T) bool {
	start := l.noteAcquire(t)
	n := &mcsNode{}
	if !l.tail.CompareAndSwap(nil, n) {
		return false
	}
	l.owner.Store(n)
	l.noteAcquired(t, start, false)
	return true
}

// Unlock implements Lock.
func (l *MCSLock) Unlock(t *task.T) {
	l.noteRelease(t, false)
	n := l.owner.Load()
	next := n.next.Load()
	if next == nil {
		if l.tail.CompareAndSwap(n, nil) {
			return
		}
		// An enqueue is in flight; wait for its next-pointer store.
		for i := 0; ; i++ {
			if next = n.next.Load(); next != nil {
				break
			}
			spinYield(i)
		}
	}
	next.locked.Store(false)
}

// --- CLH lock ---

// clhNode is a CLH queue entry; waiters spin on their *predecessor's*
// node rather than their own.
type clhNode struct {
	locked atomic.Bool
}

// CLHLock is the Craig/Landin/Hagersten queue lock: implicit queue
// through a swapped tail pointer, spinning on the predecessor's flag.
type CLHLock struct {
	profBase
	tail atomic.Pointer[clhNode]
	cur  atomic.Pointer[clhNode] // owner's node, released on unlock
}

// NewCLHLock returns a CLH queue spinlock.
func NewCLHLock(name string) *CLHLock {
	l := &CLHLock{profBase: profBase{hookable: newHookable(name)}}
	n := &clhNode{} // sentinel: initially unlocked
	l.tail.Store(n)
	return l
}

// Lock implements Lock.
func (l *CLHLock) Lock(t *task.T) {
	start := l.noteAcquire(t)
	n := &clhNode{}
	n.locked.Store(true)
	prev := l.tail.Swap(n)
	if prev.locked.Load() {
		l.noteContended(t, start)
		for i := 0; prev.locked.Load(); i++ {
			spinYield(i)
		}
	}
	l.cur.Store(n)
	l.noteAcquired(t, start, false)
}

// TryLock implements Lock.
func (l *CLHLock) TryLock(t *task.T) bool {
	start := l.noteAcquire(t)
	prev := l.tail.Load()
	if prev.locked.Load() {
		return false
	}
	n := &clhNode{}
	n.locked.Store(true)
	if !l.tail.CompareAndSwap(prev, n) {
		return false
	}
	// prev was unlocked and cannot re-lock (nodes are single-use), so we
	// own the lock immediately.
	l.cur.Store(n)
	l.noteAcquired(t, start, false)
	return true
}

// Unlock implements Lock.
func (l *CLHLock) Unlock(t *task.T) {
	l.noteRelease(t, false)
	l.cur.Load().locked.Store(false)
}
