package locks

import (
	"sync"

	"concord/internal/task"
)

// RWSem is the "stock" neutral readers-writer semaphore: a single shared
// structure that every reader and writer serializes through, in the
// style of Linux's rwsem. Its read-side centralization is precisely the
// scalability weakness that Figure 2(a)'s page_fault2 benchmark exposes
// and that BRAVO/per-socket designs fix (§3.1.1 "Lock switching").
//
// Writers waiting block new readers, the usual anti-starvation rule.
type RWSem struct {
	profBase
	mu             sync.Mutex
	readers        int
	writer         bool
	writersWaiting int
	readerCond     *sync.Cond
	writerCond     *sync.Cond
}

// NewRWSem returns a neutral blocking readers-writer semaphore.
func NewRWSem(name string) *RWSem {
	s := &RWSem{profBase: profBase{hookable: newHookable(name)}}
	s.readerCond = sync.NewCond(&s.mu)
	s.writerCond = sync.NewCond(&s.mu)
	return s
}

// RLock implements RWLock.
func (s *RWSem) RLock(t *task.T) {
	start := s.noteAcquire(t)
	s.mu.Lock()
	if s.writer || s.writersWaiting > 0 {
		s.mu.Unlock()
		s.noteContended(t, start)
		s.mu.Lock()
		for s.writer || s.writersWaiting > 0 {
			s.readerCond.Wait()
		}
	}
	s.readers++
	s.mu.Unlock()
	s.noteAcquired(t, start, true)
}

// TryRLock implements RWLock.
func (s *RWSem) TryRLock(t *task.T) bool {
	start := s.noteAcquire(t)
	s.mu.Lock()
	if s.writer || s.writersWaiting > 0 {
		s.mu.Unlock()
		return false
	}
	s.readers++
	s.mu.Unlock()
	s.noteAcquired(t, start, true)
	return true
}

// RUnlock implements RWLock.
func (s *RWSem) RUnlock(t *task.T) {
	s.noteRelease(t, true)
	s.mu.Lock()
	s.readers--
	if s.readers < 0 {
		s.mu.Unlock()
		panic("locks: RUnlock of unlocked RWSem")
	}
	if s.readers == 0 && s.writersWaiting > 0 {
		s.writerCond.Signal()
	}
	s.mu.Unlock()
}

// Lock implements Lock (writer side).
func (s *RWSem) Lock(t *task.T) {
	start := s.noteAcquire(t)
	s.mu.Lock()
	if s.writer || s.readers > 0 {
		s.mu.Unlock()
		s.noteContended(t, start)
		s.mu.Lock()
	}
	s.writersWaiting++
	for s.writer || s.readers > 0 {
		s.writerCond.Wait()
	}
	s.writersWaiting--
	s.writer = true
	s.mu.Unlock()
	s.noteAcquired(t, start, false)
}

// TryLock implements Lock.
func (s *RWSem) TryLock(t *task.T) bool {
	start := s.noteAcquire(t)
	s.mu.Lock()
	if s.writer || s.readers > 0 {
		s.mu.Unlock()
		return false
	}
	s.writer = true
	s.mu.Unlock()
	s.noteAcquired(t, start, false)
	return true
}

// Unlock implements Lock (writer side).
func (s *RWSem) Unlock(t *task.T) {
	s.noteRelease(t, false)
	s.mu.Lock()
	if !s.writer {
		s.mu.Unlock()
		panic("locks: Unlock of unlocked RWSem")
	}
	s.writer = false
	if s.writersWaiting > 0 {
		s.writerCond.Signal()
	} else {
		s.readerCond.Broadcast()
	}
	s.mu.Unlock()
}

// Readers reports the current reader count (tests/monitoring).
func (s *RWSem) Readers() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.readers
}

var _ RWLock = (*RWSem)(nil)
