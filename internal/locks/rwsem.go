package locks

import (
	"sync"
	"sync/atomic"

	"concord/internal/syncx/park"
	"concord/internal/task"
)

// semWaiter is one queued reader or writer of an RWSem, pooled per task
// (see pool.go) and padded to a cache line. The handoff is by direct
// grant: the releaser updates the semaphore state on the waiter's
// behalf, sets granted, and unparks — the woken waiter re-checks
// nothing and never re-acquires the semaphore's mutex.
type semWaiter struct {
	parker  park.Parker
	next    *semWaiter
	free    *semWaiter
	reader  bool
	granted atomic.Bool
	_       [30]byte
}

// semQueue is a FIFO of semWaiters, guarded by the owning RWSem's mu.
type semQueue struct {
	head, tail *semWaiter
	len        int
}

func (q *semQueue) push(w *semWaiter) {
	if q.tail == nil {
		q.head = w
	} else {
		q.tail.next = w
	}
	q.tail = w
	q.len++
}

func (q *semQueue) pop() *semWaiter {
	w := q.head
	q.head = w.next
	if q.head == nil {
		q.tail = nil
	}
	w.next = nil
	q.len--
	return w
}

// semSpinBudget is how many adaptive-spin iterations a semaphore waiter
// performs before parking. Semaphore critical sections are longer than
// spinlock ones, so the budget is modest: enough to ride out a grant
// already in flight, not enough to burn a scheduler quantum.
const semSpinBudget = 64

// grant hands the semaphore to w: the caller has already updated the
// semaphore state on w's behalf under mu. granted is set before the
// unpark, which is what makes the handoff immune to lost and stale
// wakeups and lets the waiter free its node the moment it observes the
// flag (an in-flight unpark only ever touches the node's parker channel,
// which survives pooling).
func (w *semWaiter) grantAndWake() {
	w.granted.Store(true)
	w.parker.Unpark()
}

// RWSem is the "stock" neutral readers-writer semaphore: a single shared
// structure that every reader and writer serializes through, in the
// style of Linux's rwsem. Its read-side centralization is precisely the
// scalability weakness that Figure 2(a)'s page_fault2 benchmark exposes
// and that BRAVO/per-socket designs fix (§3.1.1 "Lock switching").
//
// Writers waiting block new readers, the usual anti-starvation rule.
// Waiters spin-then-park (park.Parker) instead of condvar-waiting, so a
// wait costs no allocation and a missed wakeup heals within one rescue
// interval.
type RWSem struct {
	profBase
	occ     occState // optimistic read tier (occ.go)
	mu      sync.Mutex
	readers int
	writer  bool
	rq, wq  semQueue // queued readers / writers (wq.len ≡ writersWaiting)
}

// NewRWSem returns a neutral blocking readers-writer semaphore.
func NewRWSem(name string) *RWSem {
	return &RWSem{profBase: profBase{hookable: newHookable(name)}}
}

// await blocks the calling task until its waiter is granted, then
// retires the waiter node. Called with mu released.
func (s *RWSem) await(t *task.T, w *semWaiter) {
	w.parker.AwaitFlag(&w.granted, semSpinBudget, parkRescueInterval)
	putSemWaiter(t, w)
}

// RLock implements RWLock.
func (s *RWSem) RLock(t *task.T) {
	start := s.noteAcquire(t)
	s.mu.Lock()
	if !s.writer && s.wq.len == 0 {
		s.readers++
		s.mu.Unlock()
		s.noteAcquired(t, start, true)
		return
	}
	w := takeSemWaiter(t)
	w.reader = true
	s.rq.push(w)
	s.mu.Unlock()
	s.noteContended(t, start)
	s.await(t, w)
	s.noteAcquired(t, start, true)
}

// TryRLock implements RWLock.
func (s *RWSem) TryRLock(t *task.T) bool {
	start := s.noteAcquire(t)
	s.mu.Lock()
	if s.writer || s.wq.len > 0 {
		s.mu.Unlock()
		return false
	}
	s.readers++
	s.mu.Unlock()
	s.noteAcquired(t, start, true)
	return true
}

// RUnlock implements RWLock.
func (s *RWSem) RUnlock(t *task.T) {
	s.noteRelease(t, true)
	s.mu.Lock()
	s.readers--
	if s.readers < 0 {
		s.mu.Unlock()
		panic("locks: RUnlock of unlocked RWSem")
	}
	var wake *semWaiter
	if s.readers == 0 && !s.writer && s.wq.len > 0 {
		wake = s.wq.pop()
		s.writer = true
	}
	s.mu.Unlock()
	if wake != nil {
		wake.grantAndWake()
	}
}

// Lock implements Lock (writer side).
func (s *RWSem) Lock(t *task.T) {
	start := s.noteAcquire(t)
	s.mu.Lock()
	if !s.writer && s.readers == 0 {
		s.writer = true
		s.mu.Unlock()
		s.occ.beginWrite()
		s.noteAcquired(t, start, false)
		return
	}
	w := takeSemWaiter(t)
	w.reader = false
	s.wq.push(w)
	s.mu.Unlock()
	s.noteContended(t, start)
	s.await(t, w)
	s.occ.beginWrite()
	s.noteAcquired(t, start, false)
}

// TryLock implements Lock.
func (s *RWSem) TryLock(t *task.T) bool {
	start := s.noteAcquire(t)
	s.mu.Lock()
	if s.writer || s.readers > 0 {
		s.mu.Unlock()
		return false
	}
	s.writer = true
	s.mu.Unlock()
	s.occ.beginWrite()
	s.noteAcquired(t, start, false)
	return true
}

// Unlock implements Lock (writer side).
func (s *RWSem) Unlock(t *task.T) {
	s.occ.endWrite() // close the write section while exclusion is still held
	s.noteRelease(t, false)
	s.mu.Lock()
	if !s.writer {
		s.mu.Unlock()
		panic("locks: Unlock of unlocked RWSem")
	}
	s.writer = false
	// Next writer if one queued (writers-first, as before); otherwise
	// admit the whole reader queue in one batch.
	var wakeWriter, wakeReaders *semWaiter
	if s.wq.len > 0 {
		wakeWriter = s.wq.pop()
		s.writer = true
	} else if s.rq.len > 0 {
		wakeReaders = s.rq.head
		s.readers += s.rq.len
		s.rq = semQueue{}
	}
	s.mu.Unlock()
	if wakeWriter != nil {
		wakeWriter.grantAndWake()
		return
	}
	// The batch list is private now: granted waiters free their own
	// nodes, so read next before granting each.
	for w := wakeReaders; w != nil; {
		next := w.next
		w.next = nil
		w.grantAndWake()
		w = next
	}
}

// Readers reports the current reader count (tests/monitoring).
func (s *RWSem) Readers() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.readers
}

var _ RWLock = (*RWSem)(nil)
