package locks

import (
	"sync/atomic"

	"concord/internal/task"
)

// QSpinLock state word bits.
const (
	qLocked  uint32 = 1 << 0
	qPending uint32 = 1 << 8
)

// qspinNode is a queued waiter (the MCS tier of the lock), pooled per
// task and padded to a cache line like mcsNode.
type qspinNode struct {
	locked atomic.Bool
	next   atomic.Pointer[qspinNode]
	free   *qspinNode
	_      [40]byte
}

// QSpinLock is the Linux queued spinlock — the "Stock" baseline of
// Figure 2(b): a lock word with a locked byte and a *pending* bit that
// lets the first waiter spin on the word itself (avoiding queue-node
// setup on light contention), backed by an MCS queue for everyone else.
//
// The paper's Stock series is this algorithm in the kernel; the
// simulated counterpart is ksim.SimQspin.
type QSpinLock struct {
	profBase
	_    [64]byte
	val  atomic.Uint32
	_    [60]byte // val (fast path) and tail (queue path) on separate lines
	tail atomic.Pointer[qspinNode]
}

// NewQSpinLock returns a queued spinlock.
func NewQSpinLock(name string) *QSpinLock {
	return &QSpinLock{profBase: profBase{hookable: newHookable(name)}}
}

// Lock implements Lock.
func (l *QSpinLock) Lock(t *task.T) {
	start := l.noteAcquire(t)
	// Fast path: completely free.
	if l.val.CompareAndSwap(0, qLocked) {
		l.noteAcquired(t, start, false)
		return
	}
	l.noteContended(t, start)
	l.slowPath(t)
	l.noteAcquired(t, start, false)
}

func (l *QSpinLock) slowPath(t *task.T) {
	// Pending path: if only the locked bit is set and nobody queues,
	// become the pending waiter and spin on the word.
	for i := 0; ; i++ {
		v := l.val.Load()
		if v == qLocked && l.tail.Load() == nil {
			if l.val.CompareAndSwap(qLocked, qLocked|qPending) {
				// Spin until the holder drops the locked bit, then
				// claim it and clear pending.
				for j := 0; ; j++ {
					v := l.val.Load()
					if v&qLocked == 0 {
						if l.val.CompareAndSwap(v, (v&^qPending)|qLocked) {
							return
						}
					}
					spinYield(j)
				}
			}
			continue
		}
		if v == 0 && l.val.CompareAndSwap(0, qLocked) {
			return // raced to a free lock
		}
		if v&qPending != 0 || l.tail.Load() != nil || i > 2 {
			break // contended beyond pending: join the queue
		}
		spinYield(i)
	}

	// Queue path (MCS).
	n := takeQspinNode(t)
	prev := l.tail.Swap(n)
	if prev != nil {
		n.locked.Store(true)
		prev.next.Store(n)
		for i := 0; n.locked.Load(); i++ {
			spinYield(i)
		}
	}
	// Queue head: wait for both locked and pending to clear, then own.
	for i := 0; ; i++ {
		v := l.val.Load()
		if v&(qLocked|qPending) == 0 {
			if l.val.CompareAndSwap(v, v|qLocked) {
				break
			}
		}
		spinYield(i)
	}
	// Leave the queue, promoting the successor; n is private again once
	// any in-flight enqueuer's next-store has been observed.
	next := n.next.Load()
	if next == nil {
		if !l.tail.CompareAndSwap(n, nil) {
			for i := 0; ; i++ {
				if next = n.next.Load(); next != nil {
					break
				}
				spinYield(i)
			}
		}
	}
	if next != nil {
		next.locked.Store(false)
	}
	putQspinNode(t, n)
}

// TryLock implements Lock.
func (l *QSpinLock) TryLock(t *task.T) bool {
	start := l.noteAcquire(t)
	if l.val.CompareAndSwap(0, qLocked) {
		l.noteAcquired(t, start, false)
		return true
	}
	return false
}

// Unlock implements Lock.
func (l *QSpinLock) Unlock(t *task.T) {
	l.noteRelease(t, false)
	l.val.And(^qLocked)
}

var (
	_ Lock   = (*QSpinLock)(nil)
	_ Hooked = (*QSpinLock)(nil)
)
