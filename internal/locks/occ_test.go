package locks

import (
	"sync"
	"sync/atomic"
	"testing"

	"concord/internal/task"
	"concord/internal/topology"
)

// Optimistic read tier: speculation engages per mode/promotion state,
// validated sections never observe a half-applied write, aborts fall
// back to the pessimistic read lock, and the wrapper-level sequence on
// SwitchableRWLock keeps speculation sound across implementation
// switches.

func occTask() *task.T { return task.New(topology.New(1, 2)) }

func TestOptReadModes(t *testing.T) {
	tk := occTask()
	s := NewRWSem("occ-modes")
	var data uint64 = 42

	// Auto + unpromoted: pessimistic, no speculative read counted.
	var got uint64
	s.OptRead(tk, func() { got = atomic.LoadUint64(&data) })
	if got != 42 {
		t.Fatalf("read %d", got)
	}
	if st := s.OCCStats(); st.Reads != 0 {
		t.Fatalf("unpromoted lock speculated: %+v", st)
	}

	// Promote: speculative reads count.
	if !s.OCCPromote(true) {
		t.Fatal("promotion did not take")
	}
	if s.OCCPromote(true) {
		t.Fatal("re-promotion reported a change")
	}
	s.OptRead(tk, func() { got = atomic.LoadUint64(&data) })
	st := s.OCCStats()
	if st.Reads != 1 || !st.Promoted || st.Promotions != 1 {
		t.Fatalf("promoted stats: %+v", st)
	}

	// Forced off overrides promotion and ignores further requests.
	s.OCCSetMode(OCCOff)
	s.OptRead(tk, func() { got = atomic.LoadUint64(&data) })
	if st := s.OCCStats(); st.Reads != 1 {
		t.Fatalf("OCCOff still speculated: %+v", st)
	}
	if s.OCCPromote(false) {
		t.Fatal("promotion request honoured outside auto mode")
	}

	// Forced on speculates regardless of the (still-promoted) state.
	s.OCCSetMode(OCCOn)
	s.OptRead(tk, func() { got = atomic.LoadUint64(&data) })
	if st := s.OCCStats(); st.Reads != 2 {
		t.Fatalf("OCCOn did not speculate: %+v", st)
	}

	// Demote path bumps the demotion counter.
	s.OCCSetMode(OCCAuto)
	if !s.OCCPromote(false) {
		t.Fatal("demotion did not take")
	}
	if st := s.OCCStats(); st.Demotions != 1 || st.Promoted {
		t.Fatalf("demotion stats: %+v", st)
	}
}

func TestOptReadAbortsWhileWriterHeld(t *testing.T) {
	tk := occTask()
	wk := occTask()
	s := NewRWSem("occ-abort")
	s.OCCSetMode(OCCOn)
	var data uint64

	s.Lock(wk)
	atomic.StoreUint64(&data, 7)
	var got uint64
	done := make(chan struct{})
	go func() {
		defer close(done)
		// Seq is odd for the whole budget, so every attempt aborts and
		// the read falls back to RLock — which blocks until the writer
		// releases, proving the fallback is the pessimistic path.
		s.OptRead(tk, func() { got = atomic.LoadUint64(&data) })
	}()
	st := s.OCCStats()
	for st.Aborts < occRetryBudget {
		st = s.OCCStats()
	}
	s.Unlock(wk)
	<-done
	if got != 7 {
		t.Fatalf("fallback read %d, want 7", got)
	}
	st = s.OCCStats()
	if st.Reads != 0 || st.Aborts < occRetryBudget {
		t.Fatalf("abort stats: %+v", st)
	}
}

// TestOptReadNeverTorn hammers a promoted rwsem with a writer updating
// two words that must stay equal, and speculative readers asserting they
// never validate a torn pair. Runs under -race in CI.
func TestOptReadNeverTorn(t *testing.T) {
	s := NewRWSem("occ-torn")
	s.OCCSetMode(OCCOn)
	var a, b uint64

	const iters = 20000
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		wk := occTask()
		for i := uint64(1); i <= iters; i++ {
			s.Lock(wk)
			atomic.StoreUint64(&a, i)
			atomic.StoreUint64(&b, i)
			s.Unlock(wk)
		}
	}()
	var torn atomic.Int64
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rk := occTask()
			for i := 0; i < iters; i++ {
				var x, y uint64
				s.OptRead(rk, func() {
					x = atomic.LoadUint64(&a)
					y = atomic.LoadUint64(&b)
				})
				if x != y {
					torn.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	if n := torn.Load(); n != 0 {
		t.Fatalf("%d validated sections observed a torn pair", n)
	}
	st := s.OCCStats()
	if st.Reads == 0 {
		t.Fatalf("no speculative reads completed: %+v", st)
	}
}

// TestSwitchableOptReadAcrossSwitch proves the wrapper-level sequence
// survives an implementation switch: speculation keeps validating (and
// keeps being invalidated by writers) after the inner lock is replaced.
func TestSwitchableOptReadAcrossSwitch(t *testing.T) {
	tk := occTask()
	wk := occTask()
	s := NewSwitchableRWLock("occ-switch", NewRWSem("occ-switch-a"))
	s.OCCSetMode(OCCOn)
	var data uint64

	s.OptRead(tk, func() { _ = atomic.LoadUint64(&data) })
	if st := s.OCCStats(); st.Reads != 1 {
		t.Fatalf("pre-switch stats: %+v", st)
	}

	s.Switch(NewRWSem("occ-switch-b")).Wait()

	// Writer through the new implementation still bumps the wrapper seq.
	s.Lock(wk)
	if st := s.OCCStats(); st.Mode != OCCOn {
		t.Fatalf("mode lost across switch: %+v", st)
	}
	before := s.OCCStats().Aborts
	done := make(chan struct{})
	go func() {
		defer close(done)
		s.OptRead(tk, func() { _ = atomic.LoadUint64(&data) })
	}()
	for s.OCCStats().Aborts < before+occRetryBudget {
	}
	s.Unlock(wk)
	<-done

	s.OptRead(tk, func() { _ = atomic.LoadUint64(&data) })
	if st := s.OCCStats(); st.Reads != 2 {
		t.Fatalf("post-switch stats: %+v", st)
	}
}
