package locks

import (
	"sync/atomic"

	"concord/internal/task"
)

// Optimistic read tier, per "Optimistic Concurrency Control for
// Real-world Go Programs": a per-lock sequence word is bumped by every
// writer acquisition and release (odd while a writer holds the lock),
// and promoted locks run read sections speculatively — no lock taken,
// the section re-executed until the sequence validates, with a bounded
// retry budget before falling back to the pessimistic read lock. The
// promotion/demotion decision is per lock instance and closed-loop:
// a policy consuming lock_stats_read window data (read share, p99 wait)
// flips the state through the occ_set helper, realizing that paper's
// dynamic-profiling loop on our own policy plane.

// OCCMode is the per-lock control state of the optimistic tier.
type OCCMode uint32

const (
	// OCCAuto lets the attached policy drive promotion/demotion.
	OCCAuto OCCMode = iota
	// OCCOff forces the pessimistic path (the ablation baseline);
	// policy promotion requests are ignored.
	OCCOff
	// OCCOn forces speculation regardless of policy state.
	OCCOn
)

// String implements fmt.Stringer.
func (m OCCMode) String() string {
	switch m {
	case OCCOff:
		return "off"
	case OCCOn:
		return "on"
	default:
		return "auto"
	}
}

// OCCModeByName parses an OCC mode name.
func OCCModeByName(s string) (OCCMode, bool) {
	switch s {
	case "auto":
		return OCCAuto, true
	case "off":
		return OCCOff, true
	case "on":
		return OCCOn, true
	}
	return OCCAuto, false
}

// occRetryBudget bounds speculative re-execution before the section
// falls back to the pessimistic read lock: enough to ride out a short
// writer, not enough to starve under a write burst.
const occRetryBudget = 3

// OCCStats is the optimistic tier's telemetry snapshot.
type OCCStats struct {
	Reads      uint64 // speculative read sections that validated
	Aborts     uint64 // failed validations (each retry counts)
	Promotions uint64
	Demotions  uint64
	Promoted   bool
	Mode       OCCMode
}

// OCCCapable is implemented by locks carrying an optimistic read tier.
// The framework probes it at attach time to route the occ_set helper
// and the SetOCC ablation control.
type OCCCapable interface {
	// OCCSetMode sets the control mode (auto/off/on).
	OCCSetMode(m OCCMode)
	// OCCGetMode returns the control mode.
	OCCGetMode() OCCMode
	// OCCPromote requests policy-driven promotion (on=true) or demotion.
	// It is a no-op outside OCCAuto; returns whether the state changed.
	OCCPromote(on bool) bool
	// OCCStats snapshots the tier's counters.
	OCCStats() OCCStats
}

// occState embeds the optimistic tier into a readers-writer lock. The
// owning lock must call beginWrite after every writer acquisition and
// endWrite before every writer release; speculative readers never touch
// the lock itself.
type occState struct {
	seq      atomic.Uint64 // odd while a writer holds the lock
	mode     atomic.Uint32 // OCCMode
	promoted atomic.Bool   // policy-driven state, honoured in OCCAuto

	reads      atomic.Uint64
	aborts     atomic.Uint64
	promotions atomic.Uint64
	demotions  atomic.Uint64
}

// beginWrite marks the writer critical section open (seq becomes odd).
// Runs under the lock's exclusion, so bumps are totally ordered.
func (o *occState) beginWrite() { o.seq.Add(1) }

// endWrite marks it closed (seq becomes even again).
func (o *occState) endWrite() { o.seq.Add(1) }

// speculative reports whether read sections should currently speculate.
func (o *occState) speculative() bool {
	switch OCCMode(o.mode.Load()) {
	case OCCOn:
		return true
	case OCCOff:
		return false
	default:
		return o.promoted.Load()
	}
}

// OCCSetMode implements OCCCapable.
func (o *occState) OCCSetMode(m OCCMode) { o.mode.Store(uint32(m)) }

// OCCGetMode implements OCCCapable.
func (o *occState) OCCGetMode() OCCMode { return OCCMode(o.mode.Load()) }

// OCCPromote implements OCCCapable.
func (o *occState) OCCPromote(on bool) bool {
	if OCCMode(o.mode.Load()) != OCCAuto {
		return false
	}
	if !o.promoted.CompareAndSwap(!on, on) {
		return false
	}
	if on {
		o.promotions.Add(1)
	} else {
		o.demotions.Add(1)
	}
	return true
}

// OCCStats implements OCCCapable.
func (o *occState) OCCStats() OCCStats {
	return OCCStats{
		Reads:      o.reads.Load(),
		Aborts:     o.aborts.Load(),
		Promotions: o.promotions.Load(),
		Demotions:  o.demotions.Load(),
		Promoted:   o.promoted.Load(),
		Mode:       OCCMode(o.mode.Load()),
	}
}

// optRead runs fn as a sequence-validated speculative read section when
// the tier is engaged, falling back to the pessimistic closure after the
// retry budget. Contract for fn (standard seqlock rules): it may execute
// several times, so it must only write caller-local state (overwritten
// on re-execution), it must load shared words atomically, and it must
// tolerate observing a torn multi-word snapshot — the final, validated
// (or lock-protected) execution is the one whose results count.
// sampled is invoked once per validated speculative section so the
// profiling plane still observes these reads (keeping the promotion
// policy's read-share signal truthful after promotion).
func (o *occState) optRead(fn func(), pessimistic func(), sampled func()) {
	if o.speculative() {
		for attempt := 0; attempt < occRetryBudget; attempt++ {
			s1 := o.seq.Load()
			if s1&1 == 0 {
				fn()
				if o.seq.Load() == s1 {
					o.reads.Add(1)
					sampled()
					return
				}
			}
			o.aborts.Add(1)
		}
	}
	pessimistic()
}

// --- RWSem wiring ---

// OptRead runs fn as a speculative read section of the semaphore (see
// occState.optRead for the re-execution contract), falling back to
// RLock/RUnlock after the retry budget or while the tier is disengaged.
func (s *RWSem) OptRead(t *task.T, fn func()) {
	s.occ.optRead(fn,
		func() { s.RLock(t); fn(); s.RUnlock(t) },
		func() { s.noteOptRead(t) })
}

// OCCSetMode implements OCCCapable.
func (s *RWSem) OCCSetMode(m OCCMode) { s.occ.OCCSetMode(m) }

// OCCGetMode implements OCCCapable.
func (s *RWSem) OCCGetMode() OCCMode { return s.occ.OCCGetMode() }

// OCCPromote implements OCCCapable.
func (s *RWSem) OCCPromote(on bool) bool { return s.occ.OCCPromote(on) }

// OCCStats implements OCCCapable.
func (s *RWSem) OCCStats() OCCStats { return s.occ.OCCStats() }

// --- SwitchableRWLock wiring ---

// The switchable lock carries the sequence word at the wrapper level:
// every writer passes through SwitchableRWLock.Lock/Unlock regardless of
// which implementation is live, so speculation stays valid across an
// implementation switch (the livepatch drain keeps writer exclusion
// continuous, and the wrapper seq is bumped inside it).

// OptRead runs fn as a speculative read section of the switchable lock,
// falling back to RLock/RUnlock (on the current implementation) after
// the retry budget or while the tier is disengaged.
func (s *SwitchableRWLock) OptRead(t *task.T, fn func()) {
	s.occ.optRead(fn,
		func() { s.RLock(t); fn(); s.RUnlock(t) },
		func() {
			// Report the speculative read against the current inner
			// implementation's profiling plane, when it has one. Peek is
			// enough: this is a stats emission, not an acquisition, and
			// an implementation being drained still has live hook tables.
			if n, ok := s.slot.Peek().l.(interface{ noteOptRead(t *task.T) }); ok {
				n.noteOptRead(t)
			}
		})
}

// OCCSetMode implements OCCCapable.
func (s *SwitchableRWLock) OCCSetMode(m OCCMode) { s.occ.OCCSetMode(m) }

// OCCGetMode implements OCCCapable.
func (s *SwitchableRWLock) OCCGetMode() OCCMode { return s.occ.OCCGetMode() }

// OCCPromote implements OCCCapable.
func (s *SwitchableRWLock) OCCPromote(on bool) bool { return s.occ.OCCPromote(on) }

// OCCStats implements OCCCapable.
func (s *SwitchableRWLock) OCCStats() OCCStats { return s.occ.OCCStats() }

var (
	_ OCCCapable = (*RWSem)(nil)
	_ OCCCapable = (*SwitchableRWLock)(nil)
)
