package locks

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"concord/internal/livepatch"
	"concord/internal/task"
)

// ErrSwitchAborted is returned by SwitchTimeout when the old
// implementation failed to drain within the deadline and the switch was
// rolled back (the lock stays on the old implementation).
var ErrSwitchAborted = errors.New("locks: implementation switch aborted (drain deadline exceeded)")

// SwitchableRWLock realizes §3.1.1's "lock switching" use case literally:
// a readers-writer lock whose *implementation* can be replaced at
// runtime — e.g. from a neutral rwsem to a per-socket readers-intensive
// design for a read-mostly phase, and back for a write burst — without
// stopping the application.
//
// The mechanism is the livepatch slot: every acquisition pins the
// current implementation and remembers it until the matching release,
// so in-flight critical sections always unlock the lock they locked.
// Switch publishes the new implementation for new acquisitions and
// returns a patch whose Wait completes when the old implementation has
// fully drained — at which point it can be torn down.
type SwitchableRWLock struct {
	hookable
	occ  occState // optimistic read tier at wrapper level (occ.go)
	slot *livepatch.Slot[rwImpl]

	// held maps a task to its pinned acquisition state. A task may hold
	// this lock once at a time (read or write), like a kernel rwsem.
	held sync.Map // taskID int64 -> *pinned

	// switchMu serializes switch attempts; residual holds the patches of
	// aborted attempts whose drains are still outstanding (see
	// switchBounded).
	switchMu sync.Mutex
	residual []*livepatch.Patch

	switches atomic.Int64
	aborts   atomic.Int64
}

// Switch resolution states (rwImpl.state). A switched-in implementation
// starts pending; exactly one of the drain goroutine (ready) and the
// deadline path (aborted) wins the CAS from pending, so a switch
// resolves exactly once even when the drain races the deadline.
const (
	rwPending int32 = iota
	rwReady
	rwAborted
)

// rwImpl wraps the underlying lock for slot storage. ready is closed
// once the *previous* implementation has drained: acquisitions on a
// freshly switched-in lock block on it, so holders of the old lock and
// holders of the new one can never overlap — the property that keeps
// mutual exclusion continuous across a switch. aborted is closed
// instead when a bounded switch gave up waiting for that drain; blocked
// acquirers then retry against the rolled-back implementation.
type rwImpl struct {
	l       RWLock
	ready   chan struct{}
	aborted chan struct{} // nil for implementations that can't abort
	state   atomic.Int32
}

// pinned records one in-flight acquisition.
type pinned struct {
	impl    RWLock
	release livepatch.Held[rwImpl]
	reader  bool
}

// NewSwitchableRWLock returns a switchable lock starting with initial.
func NewSwitchableRWLock(name string, initial RWLock) *SwitchableRWLock {
	s := &SwitchableRWLock{hookable: newHookable(name)}
	ready := make(chan struct{})
	close(ready)
	impl := &rwImpl{l: initial, ready: ready}
	impl.state.Store(rwReady)
	s.slot = livepatch.NewSlot(impl)
	return s
}

// Current returns the implementation new acquisitions will use.
func (s *SwitchableRWLock) Current() RWLock { return s.slot.Peek().l }

// Switches reports how many implementation switches have occurred.
func (s *SwitchableRWLock) Switches() int64 { return s.switches.Load() }

// Aborts reports how many switches were aborted at their drain deadline.
func (s *SwitchableRWLock) Aborts() int64 { return s.aborts.Load() }

// Switch atomically replaces the implementation. New acquisitions
// target next immediately but block until every acquisition made on the
// previous implementation has been released (so exclusion is continuous
// across the switch); the returned patch's Wait observes the same drain
// point.
func (s *SwitchableRWLock) Switch(next RWLock) *livepatch.Patch {
	patch, _ := s.switchBounded(next, 0)
	return patch
}

// SwitchTimeout is Switch with bounded-time degradation: if the old
// implementation has not drained within d, the switch is aborted — the
// lock stays on (rolls back to) the old implementation, acquirers
// blocked behind the switch retry against it, and ErrSwitchAborted is
// returned along with the rollback patch. A wedged critical section
// then costs a bounded stall instead of wedging every future acquirer.
func (s *SwitchableRWLock) SwitchTimeout(next RWLock, d time.Duration) (*livepatch.Patch, error) {
	return s.switchBounded(next, d)
}

func (s *SwitchableRWLock) switchBounded(next RWLock, d time.Duration) (*livepatch.Patch, error) {
	s.switchMu.Lock()
	defer s.switchMu.Unlock()
	s.switches.Add(1)

	// An aborted switch rolls back by republishing the old implementation
	// as a *fresh* livepatch version, which splits that implementation's
	// holders across two epochs: holders from before the aborted attempt
	// stay pinned on the original version, which no later Replace drains.
	// Their patches are kept here as residual drains, and every subsequent
	// switch's ready gate waits for them too — otherwise a long-lived
	// pre-abort holder could still be inside its critical section when a
	// later switch opens the new implementation, breaking exclusion.
	kept := s.residual[:0]
	for _, r := range s.residual {
		if !r.WaitTimeout(0) {
			kept = append(kept, r)
		}
	}
	s.residual = kept
	residual := append([]*livepatch.Patch(nil), kept...)

	impl := &rwImpl{l: next, ready: make(chan struct{}), aborted: make(chan struct{})}
	patch := s.slot.Replace("switch:"+next.Name(), impl)
	go func() {
		patch.Wait()
		for _, r := range residual {
			r.Wait()
		}
		if impl.state.CompareAndSwap(rwPending, rwReady) {
			close(impl.ready)
		}
	}()
	if d <= 0 {
		return patch, nil
	}
	// Bounded switch: wait on the full ready gate (slot drain plus
	// residual drains), not just the slot drain, so the deadline honours
	// its degradation promise even behind residue of an earlier abort.
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-impl.ready:
		return patch, nil
	case <-timer.C:
	}
	if !impl.state.CompareAndSwap(rwPending, rwAborted) {
		return patch, nil // drain won the race after all
	}
	close(impl.aborted)
	s.aborts.Add(1)
	s.residual = append(s.residual, patch)
	// Republish the old implementation; its ready channel is already
	// closed, so retrying acquirers proceed on it immediately.
	return patch.Rollback(), ErrSwitchAborted
}

func (s *SwitchableRWLock) pin(t *task.T, reader bool) *pinned {
	for {
		impl, release := s.slot.Get()
		select {
		case <-impl.ready:
			// Previous implementation drained; impl is live.
		case <-impl.aborted:
			// Switch to impl was aborted; retry against the rolled-back
			// implementation now in the slot.
			release.Release()
			continue
		}
		p := &pinned{impl: impl.l, release: release, reader: reader}
		if _, loaded := s.held.LoadOrStore(t.ID(), p); loaded {
			release.Release()
			panic("locks: SwitchableRWLock does not support nested acquisition by one task")
		}
		return p
	}
}

func (s *SwitchableRWLock) unpin(t *task.T, reader bool) *pinned {
	v, ok := s.held.Load(t.ID())
	if !ok {
		panic("locks: unlock of SwitchableRWLock not held by task")
	}
	p := v.(*pinned)
	if p.reader != reader {
		// Leave the acquisition intact so the caller can still release
		// it correctly after observing the panic.
		panic("locks: SwitchableRWLock lock/unlock mode mismatch")
	}
	s.held.Delete(t.ID())
	return p
}

// Lock implements Lock (writer side).
func (s *SwitchableRWLock) Lock(t *task.T) {
	p := s.pin(t, false)
	p.impl.Lock(t)
	s.occ.beginWrite()
	t.NoteAcquired(s.id)
}

// tryPin is pin for Try paths: it fails instead of blocking when a
// switch is still draining.
func (s *SwitchableRWLock) tryPin(t *task.T, reader bool) (*pinned, bool) {
	impl, release := s.slot.Get()
	select {
	case <-impl.ready:
	default:
		release.Release()
		return nil, false
	}
	p := &pinned{impl: impl.l, release: release, reader: reader}
	if _, loaded := s.held.LoadOrStore(t.ID(), p); loaded {
		release.Release()
		panic("locks: SwitchableRWLock does not support nested acquisition by one task")
	}
	return p, true
}

// TryLock implements Lock.
func (s *SwitchableRWLock) TryLock(t *task.T) bool {
	p, ok := s.tryPin(t, false)
	if !ok {
		return false
	}
	if !p.impl.TryLock(t) {
		s.held.Delete(t.ID())
		p.release.Release()
		return false
	}
	s.occ.beginWrite()
	t.NoteAcquired(s.id)
	return true
}

// Unlock implements Lock.
func (s *SwitchableRWLock) Unlock(t *task.T) {
	p := s.unpin(t, false)
	s.occ.endWrite() // close the write section while exclusion is still held
	t.NoteReleased(s.id)
	p.impl.Unlock(t)
	p.release.Release()
}

// RLock implements RWLock.
func (s *SwitchableRWLock) RLock(t *task.T) {
	p := s.pin(t, true)
	p.impl.RLock(t)
	t.NoteAcquired(s.id)
}

// TryRLock implements RWLock.
func (s *SwitchableRWLock) TryRLock(t *task.T) bool {
	p, ok := s.tryPin(t, true)
	if !ok {
		return false
	}
	if !p.impl.TryRLock(t) {
		s.held.Delete(t.ID())
		p.release.Release()
		return false
	}
	t.NoteAcquired(s.id)
	return true
}

// RUnlock implements RWLock.
func (s *SwitchableRWLock) RUnlock(t *task.T) {
	p := s.unpin(t, true)
	t.NoteReleased(s.id)
	p.impl.RUnlock(t)
	p.release.Release()
}

var _ RWLock = (*SwitchableRWLock)(nil)
