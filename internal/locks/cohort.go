package locks

import (
	"sync/atomic"

	"concord/internal/task"
	"concord/internal/topology"
)

// cohortSocket is the per-socket tier of a cohort lock.
type cohortSocket struct {
	local   atomic.Int32
	waiters atomic.Int32
	// ownsGlobal and batch are only touched while local is held.
	ownsGlobal bool
	batch      int32
	_          [48]byte // pad to a full line: sockets sit in one slice
}

// CohortLock is a two-level hierarchical NUMA lock in the style of lock
// cohorting (Dice/Marathe/Shavit, PPoPP '12): a global lock plus one
// local lock per socket. A releasing holder hands the lock to a waiter
// on its own socket when one exists (keeping the global lock owned by
// the socket), bounding consecutive local handoffs to keep inter-socket
// fairness. This is the "hierarchical lock" whose memory overhead and
// low-core-count regression motivated CNA and ShflLock (§2.2).
type CohortLock struct {
	profBase
	topo     *topology.Topology
	sockets  []cohortSocket
	maxBatch int32
	_        [64]byte // the contended global word gets a line of its own
	global   atomic.Int32
}

// NewCohortLock returns a cohort lock over topo. maxBatch bounds
// consecutive same-socket handoffs (0 means the default of 64).
func NewCohortLock(name string, topo *topology.Topology, maxBatch int) *CohortLock {
	if maxBatch <= 0 {
		maxBatch = 64
	}
	return &CohortLock{
		profBase: profBase{hookable: newHookable(name)},
		topo:     topo,
		sockets:  make([]cohortSocket, topo.NumSockets()),
		maxBatch: int32(maxBatch),
	}
}

// Lock implements Lock. The acquiring task must Unlock from the same
// socket (tasks do not migrate inside a critical section, as in the
// kernel, where preemption is disabled while a spinlock is held).
func (l *CohortLock) Lock(t *task.T) {
	start := l.noteAcquire(t)
	s := &l.sockets[t.Socket()]
	s.waiters.Add(1)
	if !s.local.CompareAndSwap(0, 1) {
		l.noteContended(t, start)
		for i := 0; !s.local.CompareAndSwap(0, 1); i++ {
			spinYield(i)
		}
	}
	s.waiters.Add(-1)
	if !s.ownsGlobal {
		for i := 0; !l.global.CompareAndSwap(0, 1); i++ {
			spinYield(i)
		}
		s.ownsGlobal = true
		s.batch = 0
	}
	l.noteAcquired(t, start, false)
}

// TryLock implements Lock.
func (l *CohortLock) TryLock(t *task.T) bool {
	start := l.noteAcquire(t)
	s := &l.sockets[t.Socket()]
	if !s.local.CompareAndSwap(0, 1) {
		return false
	}
	if !s.ownsGlobal {
		if !l.global.CompareAndSwap(0, 1) {
			s.local.Store(0)
			return false
		}
		s.ownsGlobal = true
		s.batch = 0
	}
	l.noteAcquired(t, start, false)
	return true
}

// Unlock implements Lock.
func (l *CohortLock) Unlock(t *task.T) {
	l.noteRelease(t, false)
	s := &l.sockets[t.Socket()]
	if s.waiters.Load() > 0 && s.batch < l.maxBatch {
		// Cohort handoff: keep the global lock socket-owned and pass
		// only the local lock.
		s.batch++
		s.local.Store(0)
		return
	}
	s.ownsGlobal = false
	l.global.Store(0)
	s.local.Store(0)
}

// --- CNA-style lock ---

// cnaNode is a queue entry of CNALock, pooled per task and padded to a
// cache line like mcsNode.
type cnaNode struct {
	socket int
	locked atomic.Bool
	next   atomic.Pointer[cnaNode]
	free   *cnaNode
	_      [32]byte
}

// CNALock is a compact NUMA-aware queue lock in the spirit of CNA
// (Dice & Kogan, EuroSys '19): a plain MCS queue whose *releasing owner*
// promotes the nearest same-socket waiter to the queue head before
// handing off, so consecutive owners tend to share a socket. Unlike full
// CNA it keeps bypassed remote waiters in place (shifted back one slot)
// rather than on a secondary queue — compact state, same NUMA batching —
// and reverts to FIFO handoff after maxHandoffs consecutive same-socket
// transfers to bound remote-waiter starvation.
type CNALock struct {
	profBase
	_     [64]byte
	tail  atomic.Pointer[cnaNode]
	_     [56]byte // enqueuers hammer tail; owner is release-path-only
	owner atomic.Pointer[cnaNode]

	scanWindow  int
	maxHandoffs int32
	handoffs    atomic.Int32 // consecutive same-socket handoffs
	promoted    atomic.Int64 // stat: NUMA promotions performed
}

// NewCNALock returns a CNA-style NUMA lock. scanWindow bounds how far
// the releaser searches for a same-socket successor (default 16);
// maxHandoffs bounds consecutive intra-socket transfers (default 64).
func NewCNALock(name string, scanWindow, maxHandoffs int) *CNALock {
	if scanWindow <= 0 {
		scanWindow = 16
	}
	if maxHandoffs <= 0 {
		maxHandoffs = 64
	}
	return &CNALock{
		profBase:    profBase{hookable: newHookable(name)},
		scanWindow:  scanWindow,
		maxHandoffs: int32(maxHandoffs),
	}
}

// Promotions reports how many NUMA promotions the lock has performed.
func (l *CNALock) Promotions() int64 { return l.promoted.Load() }

// Lock implements Lock.
func (l *CNALock) Lock(t *task.T) {
	start := l.noteAcquire(t)
	n := takeCNANode(t, t.Socket())
	prev := l.tail.Swap(n)
	if prev != nil {
		n.locked.Store(true)
		prev.next.Store(n)
		l.noteContended(t, start)
		for i := 0; n.locked.Load(); i++ {
			spinYield(i)
		}
	}
	l.owner.Store(n)
	l.noteAcquired(t, start, false)
}

// TryLock implements Lock.
func (l *CNALock) TryLock(t *task.T) bool {
	start := l.noteAcquire(t)
	n := takeCNANode(t, t.Socket())
	if !l.tail.CompareAndSwap(nil, n) {
		putCNANode(t, n)
		return false
	}
	l.owner.Store(n)
	l.noteAcquired(t, start, false)
	return true
}

// Unlock implements Lock.
func (l *CNALock) Unlock(t *task.T) {
	l.noteRelease(t, false)
	n := l.owner.Load()
	next := n.next.Load()
	if next == nil {
		if l.tail.CompareAndSwap(n, nil) {
			putCNANode(t, n)
			return
		}
		for i := 0; ; i++ {
			if next = n.next.Load(); next != nil {
				break
			}
			spinYield(i)
		}
	}

	// NUMA handoff: promote the nearest same-socket waiter to the front.
	// The releasing owner is the only interior-pointer mutator, and the
	// scan never touches a node whose next pointer is still nil (the
	// tail, or an enqueue in flight) — the same safety argument as the
	// ShflLock shuffler.
	if next.socket != n.socket && l.handoffs.Load() < l.maxHandoffs {
		prev := next
		curr := next.next.Load()
		for i := 0; curr != nil && i < l.scanWindow; i++ {
			following := curr.next.Load()
			if curr.socket == n.socket && following != nil {
				// Splice curr out and put it at the head.
				prev.next.Store(following)
				curr.next.Store(next)
				next = curr
				l.promoted.Add(1)
				break
			}
			if following == nil {
				break
			}
			prev = curr
			curr = following
		}
	}
	if next.socket == n.socket {
		l.handoffs.Add(1)
	} else {
		l.handoffs.Store(0)
	}
	next.locked.Store(false)
	putCNANode(t, n)
}
