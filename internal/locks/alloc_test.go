package locks

import (
	"runtime"
	"sync/atomic"
	"testing"

	"concord/internal/task"
	"concord/internal/topology"
)

// Zero-alloc assertions for the lock hot paths: after queue-node
// pooling, neither the uncontended fast path nor the contended slow
// path of any pooled lock may allocate in steady state. The first
// acquisition per task legitimately allocates (a pool miss) — each
// measurement warms up first.

func allocRoster(topo *topology.Topology) []struct {
	name string
	l    Lock
} {
	return []struct {
		name string
		l    Lock
	}{
		{"mcs", NewMCSLock("alloc-mcs")},
		{"clh", NewCLHLock("alloc-clh")},
		{"qspin", NewQSpinLock("alloc-qspin")},
		{"cna", NewCNALock("alloc-cna", 0, 0)},
		{"shfl", NewShflLock("alloc-shfl")},
		{"shfl-block", NewShflLock("alloc-shflb", WithBlocking(true), WithSpinBudget(0))},
		{"rwsem-w", NewRWSem("alloc-rwsem")},
	}
}

func TestFastPathZeroAlloc(t *testing.T) {
	topo := topology.New(2, 4)
	for _, tc := range allocRoster(topo) {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			tk := task.New(topo)
			op := func() {
				tc.l.Lock(tk)
				tc.l.Unlock(tk)
			}
			op() // warmup: pool miss + lazily-allocated scratch
			if avg := testing.AllocsPerRun(200, op); avg != 0 {
				t.Errorf("uncontended Lock/Unlock allocates %.2f/op", avg)
			}
		})
	}
}

// TestContendedPathZeroAlloc drives every measured acquisition through
// the contended slow path: a partner goroutine holds the lock until the
// main task's OnContended hook proves it has enqueued (its queue
// position is fixed), then releases. Parkers and pooled nodes are
// warmed before measuring.
func TestContendedPathZeroAlloc(t *testing.T) {
	topo := topology.New(2, 4)
	for _, tc := range allocRoster(topo) {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			mt := task.New(topo)
			pt := task.New(topo)

			var queued atomic.Bool
			tc.l.(Hooked).HookSlot().Replace("alloc", &Hooks{
				Name: "alloc",
				OnContended: func(ev *Event) {
					if ev.Task == mt {
						queued.Store(true)
					}
				},
			})

			acquire := make(chan struct{})
			stop := make(chan struct{})
			held := make(chan struct{})
			done := make(chan struct{})
			go func() {
				defer close(done)
				for {
					select {
					case <-stop:
						return
					case <-acquire:
					}
					tc.l.Lock(pt)
					// Deliberate rendezvous: the test must observe the lock
					// held before it queues a contender.
					held <- struct{}{} //vet:ignore blockingunderlock
					for !queued.Load() {
						runtime.Gosched()
					}
					queued.Store(false)
					tc.l.Unlock(pt)
				}
			}()

			op := func() {
				acquire <- struct{}{}
				<-held
				tc.l.Lock(mt) // partner holds: this acquire contends
				tc.l.Unlock(mt)
			}
			for i := 0; i < 3; i++ {
				op() // warmup: nodes, parker timers, hook scratch
			}
			before := QnodeAllocs()
			if avg := testing.AllocsPerRun(100, op); avg != 0 {
				t.Errorf("contended Lock/Unlock allocates %.2f/op", avg)
			}
			if misses := QnodeAllocs() - before; misses != 0 {
				t.Errorf("steady state took %d pool misses", misses)
			}
			close(stop)
			<-done
		})
	}
}

// TestPoolingKillSwitch pins the baseline behavior the harness measures
// against: with pooling off, every contended MCS acquire allocates its
// queue node, as the seed implementation did.
func TestPoolingKillSwitch(t *testing.T) {
	SetNodePooling(false)
	defer SetNodePooling(true)
	if NodePooling() {
		t.Fatal("kill switch did not disable pooling")
	}
	topo := topology.New(2, 4)
	l := NewMCSLock("alloc-unpooled")
	tk := task.New(topo)
	before := QnodeAllocs()
	for i := 0; i < 10; i++ {
		l.Lock(tk)
		l.Unlock(tk)
	}
	if misses := QnodeAllocs() - before; misses != 10 {
		t.Fatalf("unpooled MCS took %d node allocations over 10 ops, want 10", misses)
	}
}
